package flowsyn

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSolverSessionPublicAPI(t *testing.T) {
	a, opts, err := Benchmark("PCR")
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = HeuristicEngine

	s, _ := New(Config{Workers: 2})
	defer s.Close()

	tk, err := s.Submit(context.Background(), Job{Assay: a, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if tk.ID() == 0 || tk.Name() != "PCR" {
		t.Errorf("ticket identity: id=%d name=%q", tk.ID(), tk.Name())
	}
	res, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan() <= 0 {
		t.Error("non-positive makespan")
	}
	js := res.JobStats()
	if js == nil {
		t.Fatal("session result without JobStats")
	}
	if js.CacheHit {
		t.Error("first solve reported a cache hit")
	}
	if !strings.Contains(res.SolverSummary(), "svc queue") {
		t.Errorf("SolverSummary misses service metrics: %q", res.SolverSummary())
	}
	if strings.Contains(res.Summary(), "svc queue") {
		t.Errorf("Summary must stay deterministic, got %q", res.Summary())
	}

	// Second identical submit: result-cache hit with identical numbers.
	tk2, err := s.Submit(context.Background(), Job{Assay: a, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := tk2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.JobStats().CacheHit {
		t.Errorf("identical job missed the cache: %+v", res2.JobStats())
	}
	if res2.Summary() != res.Summary() {
		t.Errorf("cached summary %q != cold %q", res2.Summary(), res.Summary())
	}

	st := s.Stats()
	if st.Submitted != 2 || st.Completed != 2 || st.ResultCacheHits != 1 {
		t.Errorf("session stats: %+v", st)
	}

	// Progress stream: terminal event last, done carries the makespan.
	var last Progress
	n := 0
	for e := range tk2.Events() {
		last = e
		n++
	}
	if n == 0 || last.Kind != ProgressDone {
		t.Errorf("stream ended with %q after %d events", last.Kind, n)
	}
	if last.Makespan != res2.Makespan() {
		t.Errorf("done event makespan %d != result %d", last.Makespan, res2.Makespan())
	}
}

func TestOptionsValidateTyped(t *testing.T) {
	cases := []struct {
		name  string
		opts  Options
		field string
	}{
		{"zero devices", Options{}, "Devices"},
		{"negative transport", Options{Devices: 2, Transport: -1}, "Transport"},
		{"1-row grid", Options{Devices: 2, GridRows: 1}, "GridRows"},
		{"negative cols", Options{Devices: 2, GridCols: -4}, "GridCols"},
		{"bad objective", Options{Devices: 2, Objective: Objective(9)}, "Objective"},
		{"bad engine", Options{Devices: 2, Engine: Engine(9)}, "Engine"},
		{"negative time limit", Options{Devices: 2, ILPTimeLimit: -time.Second}, "ILPTimeLimit"},
	}
	for _, c := range cases {
		err := c.opts.Validate()
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Errorf("%s: got %v, want *OptionError", c.name, err)
			continue
		}
		if oe.Field != c.field {
			t.Errorf("%s: field %q, want %q", c.name, oe.Field, c.field)
		}
		if !strings.Contains(oe.Error(), c.field) {
			t.Errorf("%s: message %q does not name the field", c.name, oe.Error())
		}
	}
	ok := Options{Devices: 2}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}

	// The same eager validation guards the one-shot path.
	a, _, err := Benchmark("PCR")
	if err != nil {
		t.Fatal(err)
	}
	var oe *OptionError
	if _, err := Synthesize(a, Options{}); !errors.As(err, &oe) || oe.Field != "Devices" {
		t.Errorf("Synthesize with zero devices: %v, want *OptionError on Devices", err)
	}
}

func TestGridRangeValidation(t *testing.T) {
	a, opts, err := Benchmark("PCR")
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = HeuristicEngine
	ctx := context.Background()

	var oe *OptionError
	if _, err := ExploreGrids(ctx, a, opts, GridRange{MinSize: 0, MaxSize: 5}); !errors.As(err, &oe) || oe.Field != "GridRange.MinSize" {
		t.Errorf("zero MinSize: %v", err)
	}
	if _, err := ExploreGrids(ctx, a, opts, GridRange{MinSize: 6, MaxSize: 4}); !errors.As(err, &oe) || oe.Field != "GridRange.MaxSize" {
		t.Errorf("inverted range: %v", err)
	}
}

// TestExploreGridsUsesScheduleCache is the public acceptance check: a sweep
// performs measurably fewer full scheduling solves than grid points, visible
// in the session stats.
func TestExploreGridsUsesScheduleCache(t *testing.T) {
	a, opts, err := Benchmark("PCR")
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = HeuristicEngine

	s, _ := New(Config{Workers: 4})
	defer s.Close()
	sweep, err := s.ExploreGrids(context.Background(), a, opts, GridRange{MinSize: 4, MaxSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	points := 0
	for _, p := range sweep {
		if p.Err == nil {
			points++
		}
	}
	if points < 3 {
		t.Fatalf("only %d grid points synthesized", points)
	}
	st := s.Stats()
	if st.ScheduleSolves >= int64(points) {
		t.Errorf("%d schedule solves for %d grid points: cache bought nothing (stats %+v)", st.ScheduleSolves, points, st)
	}
	if st.ScheduleCacheHits == 0 {
		t.Error("sweep reported no schedule-cache hits")
	}
	hits := 0
	for _, p := range sweep {
		if p.Err == nil && (p.Result.JobStats().ScheduleCacheHit || p.Result.JobStats().CacheHit) {
			hits++
		}
	}
	if hits == 0 {
		t.Error("no per-result cache provenance recorded")
	}
}

func TestResynthesizePublic(t *testing.T) {
	a, opts, err := Benchmark("PCR")
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = HeuristicEngine

	s, _ := New(Config{Workers: 1})
	defer s.Close()
	prior, err := s.Submit(context.Background(), Job{Assay: a, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prior.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Local edit: stretch one operation of a rebuilt PCR.
	edited := NewAssay("PCR")
	type opRef struct{ op Op }
	var ops []opRef
	src, _, _ := Benchmark("PCR")
	for _, o := range srcOps(src) {
		dur := o.dur
		if len(ops) == 0 {
			dur += 20
		}
		op, err := edited.AddOperation(o.name, o.kind, dur, o.inputs)
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, opRef{op})
	}
	for _, e := range srcEdges(src) {
		if err := edited.AddDependency(ops[e[0]].op, ops[e[1]].op); err != nil {
			t.Fatal(err)
		}
	}

	tk, err := s.Resynthesize(context.Background(), prior, edited)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	js := res.JobStats()
	if js.ReusedOps == 0 {
		t.Errorf("resynthesis reused nothing: %+v", js)
	}
	if js.EditedOps == 0 {
		t.Errorf("resynthesis detected no edit: %+v", js)
	}
	if err := res.Verify(); err != nil {
		t.Errorf("resynthesized result fails verification: %v", err)
	}

	// Resynthesize from an unfinished/failed ticket is rejected.
	if _, err := s.Resynthesize(context.Background(), nil, edited); err == nil {
		t.Error("nil prior accepted")
	}
	if _, err := s.Resynthesize(context.Background(), prior, nil); err == nil {
		t.Error("nil edited assay accepted")
	}
}

// srcOps / srcEdges expose a benchmark's structure for rebuilding edited
// variants in tests.
type srcOp struct {
	name               string
	kind               OpKind
	dur, inputs, index int
}

func srcOps(a *Assay) []srcOp {
	var out []srcOp
	for _, op := range a.g.Operations() {
		kind := Mix
		switch op.Kind.String() {
		case "dilute":
			kind = Dilute
		case "heat":
			kind = Heat
		case "detect":
			kind = Detect
		}
		out = append(out, srcOp{name: op.Name, kind: kind, dur: op.Duration, inputs: op.Inputs, index: int(op.ID)})
	}
	return out
}

func srcEdges(a *Assay) [][2]int {
	var out [][2]int
	for _, e := range a.g.Edges() {
		out = append(out, [2]int{int(e.Parent), int(e.Child)})
	}
	return out
}

func TestSolverClosedAndSentinels(t *testing.T) {
	a, opts, err := Benchmark("PCR")
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = HeuristicEngine
	s, _ := New(Config{Workers: 1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), Job{Assay: a, Options: opts}); !errors.Is(err, ErrSolverClosed) {
		t.Errorf("submit after close: %v, want ErrSolverClosed", err)
	}

	s2, _ := New(Config{Workers: 1})
	defer s2.Close()
	tk, err := s2.Submit(context.Background(), Job{Assay: a, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Result(); err != nil && !errors.Is(err, ErrJobPending) {
		t.Errorf("pending result: %v, want ErrJobPending or success", err)
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Result(); err != nil {
		t.Errorf("finished result: %v", err)
	}
}
