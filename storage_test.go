package flowsyn

import (
	"context"
	"testing"

	"flowsyn/internal/dedicated"
)

// TestDedicatedSynthesisIsNotRetiming is the acceptance criterion of the
// strategy subsystem: synthesizing under the dedicated-unit strategy must
// produce a genuinely different plan than degrading the distributed schedule
// after the fact (the old Fig. 10 baseline, dedicated.Execute). The scheduler
// sees port contention while placing operations, so on at least one benchmark
// assay the operation timings must differ from the re-timed distributed plan.
func TestDedicatedSynthesisIsNotRetiming(t *testing.T) {
	differs := 0
	for _, name := range BenchmarkNames() {
		a, opts, err := Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		opts.Engine = HeuristicEngine

		distRes, err := Synthesize(a, opts)
		if err != nil {
			t.Fatalf("%s distributed: %v", name, err)
		}
		retimed, err := dedicated.Execute(distRes.inner.Schedule)
		if err != nil {
			t.Fatalf("%s re-timing: %v", name, err)
		}

		opts.Storage = DedicatedStorage
		opts.Verify = true
		dedRes, err := Synthesize(a, opts)
		if err != nil {
			t.Fatalf("%s dedicated synthesis: %v", name, err)
		}
		ds := dedRes.inner.Schedule

		same := ds.Makespan == retimed.Makespan
		if same {
			for id := range ds.Assignments {
				if ds.Assignments[id].Start != retimed.Starts[id] {
					same = false
					break
				}
			}
		}
		if !same {
			differs++
			t.Logf("%s: synthesized dedicated plan (tE=%d) differs from re-timed distributed plan (tE=%d)",
				name, ds.Makespan, retimed.Makespan)
		}
		// No makespan dominance is asserted between the two: the strategy's
		// port model charges costs (chamber-readiness floor, unit windows for
		// displaced same-device fluids) the legacy re-timing never modeled.
	}
	if differs == 0 {
		t.Error("dedicated synthesis reproduced the re-timed distributed plan on every benchmark — the strategy is not reaching the scheduler")
	}
}

// TestExploreGridsStrategyAxis: GridRange.Strategies turns the grid sweep
// into a (size × strategy) matrix, each point tagged with its policy.
func TestExploreGridsStrategyAxis(t *testing.T) {
	a := RandomAssay(8, 2, 5)
	opts := Options{Devices: 2, Transport: 8, GridRows: 6, GridCols: 6, Engine: HeuristicEngine}
	strategies := []StoragePolicy{DistributedStorage, DedicatedStorage, HybridStorage}
	results, err := ExploreGrids(context.Background(), a, opts, GridRange{
		MinSize: 6, MaxSize: 7, Strategies: strategies,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(strategies); len(results) != want {
		t.Fatalf("sweep returned %d points, want %d", len(results), want)
	}
	for i, r := range results {
		wantSize := 6 + i/len(strategies)
		wantPol := strategies[i%len(strategies)]
		if r.Rows != wantSize || r.Cols != wantSize || r.Storage != wantPol {
			t.Errorf("point %d: grid %dx%d policy %s, want %dx%d policy %s",
				i, r.Rows, r.Cols, r.Storage, wantSize, wantSize, wantPol)
		}
		if r.Err != nil {
			continue // a serialized strategy may be unroutable on a tiny grid
		}
		if got := r.Result.StoragePolicy(); got != wantPol {
			t.Errorf("point %d: result reports policy %s, want %s", i, got, wantPol)
		}
	}
	if _, err := ExploreGrids(context.Background(), a, opts, GridRange{
		MinSize: 6, MaxSize: 6, Strategies: []StoragePolicy{StoragePolicy(9)},
	}); err == nil {
		t.Error("sweep accepted an unknown storage policy")
	}
}

// TestStoragePolicyOptions covers the public option surface: parsing, option
// validation and the report accessors.
func TestStoragePolicyOptions(t *testing.T) {
	if p, err := ParseStoragePolicy("unit"); err != nil || p != DedicatedStorage {
		t.Errorf("ParseStoragePolicy(unit) = %v, %v", p, err)
	}
	if _, err := ParseStoragePolicy("bogus"); err == nil {
		t.Error("ParseStoragePolicy accepted an unknown policy")
	}
	bad := Options{Devices: 2, Transport: 8, GridRows: 6, GridCols: 6, CacheSlots: -1}
	if _, err := Synthesize(RandomAssay(5, 2, 1), bad); err == nil {
		t.Error("negative CacheSlots accepted")
	}
	bad = Options{Devices: 2, Transport: 8, GridRows: 6, GridCols: 6, Eviction: "random"}
	if _, err := Synthesize(RandomAssay(5, 2, 1), bad); err == nil {
		t.Error("unknown eviction policy accepted")
	}

	a, opts, err := Benchmark("PCR")
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = HeuristicEngine
	opts.Storage = DedicatedStorage
	opts.Verify = true
	res, err := Synthesize(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.StoragePolicy() != DedicatedStorage {
		t.Errorf("StoragePolicy() = %s, want dedicated", res.StoragePolicy())
	}
	if res.UnitStoreCount() == 0 {
		t.Error("dedicated PCR stores nothing in the unit")
	}
	if res.UnitCells() < 0 || res.UnitValves() < 0 || res.UnitQueueDelay() < 0 {
		t.Errorf("negative unit accounting: cells=%d valves=%d queue=%d",
			res.UnitCells(), res.UnitValves(), res.UnitQueueDelay())
	}
}
