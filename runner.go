package flowsyn

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Job is one (assay, options) synthesis request in a batch.
type Job struct {
	// Name labels the job in results and reports; defaults to the assay name.
	Name string
	// Assay is the bioassay to synthesize.
	Assay *Assay
	// Options configures the synthesis flow for this job.
	Options Options
}

// JobResult pairs one batch job with its outcome. Exactly one of Result and
// Err is meaningful.
type JobResult struct {
	// Job echoes the submitted job (with Name defaulted).
	Job Job
	// Result is the synthesized chip, nil when Err is set.
	Result *Result
	// Err is the synthesis error, including ctx.Err() for jobs cancelled or
	// never started when the batch context ends.
	Err error
	// Runtime is the job's wall-clock time inside its worker.
	Runtime time.Duration
}

// BatchOptions configures SynthesizeBatch.
type BatchOptions struct {
	// Concurrency is the number of worker goroutines; 0 or negative means
	// runtime.GOMAXPROCS(0).
	Concurrency int
	// Verify forces the verification stage on for every job in the batch
	// (see Options.Verify), regardless of the per-job option — the mode the
	// property-based test harness and paperbench -verify run in.
	Verify bool
}

// SynthesizeBatch synthesizes many jobs concurrently on a worker pool and
// returns one JobResult per job, in job order regardless of completion order
// — results are deterministic under any Concurrency for deterministic
// engines. Individual job failures are reported per result and do not stop
// the batch; cancelling ctx stops workers promptly, marks unfinished jobs
// with ctx.Err(), and returns ctx.Err().
func SynthesizeBatch(ctx context.Context, jobs []Job, opts BatchOptions) ([]JobResult, error) {
	workers := opts.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([]JobResult, len(jobs))
	for i, job := range jobs {
		if job.Name == "" && job.Assay != nil {
			job.Name = job.Assay.Name()
		}
		if opts.Verify {
			job.Options.Verify = true
		}
		results[i] = JobResult{Job: job}
	}
	if len(jobs) == 0 {
		return results, ctx.Err()
	}

	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				r := &results[i]
				start := time.Now()
				if r.Job.Assay == nil {
					r.Err = fmt.Errorf("flowsyn: batch job %d (%s) has no assay", i, r.Job.Name)
					continue
				}
				r.Result, r.Err = SynthesizeContext(ctx, r.Job.Assay, r.Job.Options)
				r.Runtime = time.Since(start)
			}
		}()
	}

feed:
	for i := range jobs {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Result == nil && results[i].Err == nil {
				results[i].Err = err
			}
		}
		return results, err
	}
	return results, nil
}

// GridRange describes a square connection-grid sweep for ExploreGrids.
type GridRange struct {
	// MinSize and MaxSize bound the square grid sizes to explore,
	// inclusive. Both must be >= 2.
	MinSize, MaxSize int
	// Concurrency is the worker count, as in BatchOptions.
	Concurrency int
}

// GridResult is the outcome of synthesizing one grid size in a sweep.
type GridResult struct {
	// Rows and Cols are the explored connection-grid dimensions.
	Rows, Cols int
	// Result is the synthesized chip, nil when Err is set (e.g. when the
	// assay does not route on a grid this small).
	Result *Result
	// Err is the synthesis error for this grid size.
	Err error
}

// ExploreGrids synthesizes the assay once per square grid size in r,
// concurrently, and returns the outcomes ordered by ascending size — the
// scenario sweep behind the paper's Fig. 8 resource-confinement claim. opts
// carries the non-grid synthesis options; its GridRows/GridCols are
// overridden per scenario.
func ExploreGrids(ctx context.Context, a *Assay, opts Options, r GridRange) ([]GridResult, error) {
	if r.MinSize < 2 || r.MaxSize < r.MinSize {
		return nil, fmt.Errorf("flowsyn: invalid grid range [%d, %d]", r.MinSize, r.MaxSize)
	}
	jobs := make([]Job, 0, r.MaxSize-r.MinSize+1)
	for size := r.MinSize; size <= r.MaxSize; size++ {
		o := opts
		o.GridRows, o.GridCols = size, size
		jobs = append(jobs, Job{
			Name:    fmt.Sprintf("%s@%dx%d", a.Name(), size, size),
			Assay:   a,
			Options: o,
		})
	}
	batch, err := SynthesizeBatch(ctx, jobs, BatchOptions{Concurrency: r.Concurrency})
	out := make([]GridResult, len(batch))
	for i, b := range batch {
		size := r.MinSize + i
		out[i] = GridResult{Rows: size, Cols: size, Result: b.Result, Err: b.Err}
	}
	return out, err
}
