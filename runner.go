package flowsyn

import (
	"context"
	"fmt"
	"runtime"
	"time"
)

// Job is one (assay, options) synthesis request — submitted to a Solver
// session or run in a batch.
type Job struct {
	// Name labels the job in results and reports; defaults to the assay name.
	Name string
	// Assay is the bioassay to synthesize.
	Assay *Assay
	// Options configures the synthesis flow for this job.
	Options Options
	// Tenant attributes the job to a client for admission quotas and
	// accounting (Config.TenantQueueDepth); empty means the anonymous
	// default tenant.
	Tenant string
	// Priority orders admission: higher classes are served first, equal
	// classes by earliest Deadline, then FIFO. 0 is the normal class.
	Priority int
	// Deadline, if set, orders the job within its priority class and evicts
	// it with ErrJobExpired if still queued when the deadline passes.
	Deadline time.Time
}

// JobResult pairs one batch job with its outcome. Exactly one of Result and
// Err is meaningful.
type JobResult struct {
	// Job echoes the submitted job (with Name defaulted).
	Job Job
	// Result is the synthesized chip, nil when Err is set.
	Result *Result
	// Err is the synthesis error, including ctx.Err() for jobs cancelled or
	// never started when the batch context ends.
	Err error
	// Runtime is the job's wall-clock time inside its worker.
	Runtime time.Duration
}

// BatchOptions configures SynthesizeBatch.
type BatchOptions struct {
	// Concurrency is the number of worker goroutines; 0 or negative means
	// runtime.GOMAXPROCS(0).
	Concurrency int
	// Verify forces the verification stage on for every job in the batch
	// (see Options.Verify), regardless of the per-job option — the mode the
	// property-based test harness and paperbench -verify run in.
	Verify bool
}

// SynthesizeBatch synthesizes many jobs concurrently and returns one
// JobResult per job, in job order regardless of completion order — results
// are deterministic under any Concurrency for deterministic engines. It is a
// thin wrapper over an ephemeral Solver session sized to the batch: workers
// form the session's pool, and identical or schedule-compatible jobs inside
// one batch share the session caches. Individual job failures are reported
// per result and do not stop the batch; cancelling ctx aborts queued and
// running jobs promptly, marks unfinished jobs with ctx.Err(), and returns
// ctx.Err().
func SynthesizeBatch(ctx context.Context, jobs []Job, opts BatchOptions) ([]JobResult, error) {
	workers := opts.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([]JobResult, len(jobs))
	for i, job := range jobs {
		if job.Name == "" && job.Assay != nil {
			job.Name = job.Assay.Name()
		}
		if opts.Verify {
			job.Options.Verify = true
		}
		results[i] = JobResult{Job: job}
	}
	if len(jobs) == 0 {
		return results, ctx.Err()
	}

	s, err := New(Config{Workers: workers, QueueDepth: len(jobs)})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	tickets := make([]*Ticket, len(jobs))
	for i := range results {
		if results[i].Job.Assay == nil {
			results[i].Err = fmt.Errorf("flowsyn: batch job %d (%s) has no assay", i, results[i].Job.Name)
			continue
		}
		t, err := s.Submit(ctx, results[i].Job)
		if err != nil {
			results[i].Err = err
			continue
		}
		tickets[i] = t
	}
	for i, t := range tickets {
		if t == nil {
			continue
		}
		res, err := t.Wait(context.Background())
		results[i].Result, results[i].Err = res, err
		results[i].Runtime = t.Stats().Runtime
	}

	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Result == nil && results[i].Err == nil {
				results[i].Err = err
			}
		}
		return results, err
	}
	return results, nil
}

// GridRange describes a square connection-grid sweep for ExploreGrids.
type GridRange struct {
	// MinSize and MaxSize bound the square grid sizes to explore,
	// inclusive. Both must be >= 2 and MaxSize >= MinSize.
	MinSize, MaxSize int
	// Concurrency is the worker count, as in BatchOptions.
	Concurrency int
	// Strategies, when non-empty, adds a storage-strategy axis to the sweep:
	// every grid size is synthesized once per listed strategy (in the given
	// order), overriding Options.Storage per scenario. Hybrid entries take
	// their cache bound and eviction policy from the base Options. Empty means
	// the single strategy in Options.Storage.
	Strategies []StoragePolicy
	// FaultSamples, when positive, adds a fault-tolerance axis to the sweep:
	// each successfully synthesized grid point is stress-tested with this
	// many deterministic single faults (device, channel and storage kinds at
	// instants spread across the execution), each recovered online via
	// Solver.Recover. GridResult.FaultRecoveries counts the faults the grid
	// size absorbed; a point where every injected fault recovers is
	// fault-tolerant at this sampling density.
	FaultSamples int
}

// validate rejects degenerate sweeps with a typed *OptionError naming the
// bad field.
func (r GridRange) validate() error {
	if r.MinSize < 2 {
		return &OptionError{Field: "GridRange.MinSize", Value: r.MinSize, Reason: "grid sizes start at 2"}
	}
	if r.MaxSize < r.MinSize {
		return &OptionError{Field: "GridRange.MaxSize", Value: r.MaxSize,
			Reason: fmt.Sprintf("inverted range: MaxSize must be >= MinSize (%d)", r.MinSize)}
	}
	if r.FaultSamples < 0 {
		return &OptionError{Field: "GridRange.FaultSamples", Value: r.FaultSamples,
			Reason: "fault sample count must be >= 0"}
	}
	for _, p := range r.Strategies {
		if p != DistributedStorage && p != DedicatedStorage && p != HybridStorage {
			return &OptionError{Field: "GridRange.Strategies", Value: int(p), Reason: "unknown storage policy"}
		}
	}
	return nil
}

// GridResult is the outcome of synthesizing one grid size in a sweep.
type GridResult struct {
	// Rows and Cols are the explored connection-grid dimensions.
	Rows, Cols int
	// Storage is the storage strategy this scenario synthesized under
	// (relevant when GridRange.Strategies swept more than one).
	Storage StoragePolicy
	// Result is the synthesized chip, nil when Err is set (e.g. when the
	// assay does not route on a grid this small).
	Result *Result
	// Err is the synthesis error for this grid size.
	Err error
	// FaultsInjected and FaultRecoveries report the fault-tolerance axis
	// (GridRange.FaultSamples): how many single faults were injected into
	// this grid point's execution and how many were recovered online.
	// WorstRecoveryMakespan is the largest recovered makespan observed (zero
	// when no fault recovered). All zero when the axis is off.
	FaultsInjected, FaultRecoveries int
	WorstRecoveryMakespan           int
}

// ExploreGrids synthesizes the assay once per square grid size in r (times
// one scenario per storage strategy when r.Strategies sweeps several) on an
// ephemeral Solver session and returns the outcomes ordered by ascending
// size, then strategy order — the scenario sweep behind the paper's Fig. 8
// resource-confinement claim. opts carries the non-grid synthesis options;
// its GridRows/GridCols (and Storage, under a strategy sweep) are overridden
// per scenario.
//
// Because the schedule depends on the assay and device options but not on
// the grid, the session's schedule cache makes the sweep perform strictly
// fewer full scheduling solves than grid points: the expensive solve runs
// once and every further size re-runs only architectural and physical
// design. Hold your own Solver and call its ExploreGrids to keep that cache
// across sweeps.
func ExploreGrids(ctx context.Context, a *Assay, opts Options, r GridRange) ([]GridResult, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	workers := r.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobs := (r.MaxSize - r.MinSize + 1) * max(1, len(r.Strategies))
	if workers > jobs {
		workers = jobs
	}
	s, err := New(Config{Workers: workers, QueueDepth: jobs})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.ExploreGrids(ctx, a, opts, r)
}

// ExploreGrids runs the grid sweep on this session, sharing its schedule and
// result caches with every other job the session serves. See the package
// function of the same name for semantics.
func (s *Solver) ExploreGrids(ctx context.Context, a *Assay, opts Options, r GridRange) ([]GridResult, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	if a == nil {
		return nil, fmt.Errorf("flowsyn: no assay")
	}
	strategies := r.Strategies
	if len(strategies) == 0 {
		strategies = []StoragePolicy{opts.Storage}
	}
	sizes := r.MaxSize - r.MinSize + 1
	n := sizes * len(strategies)
	out := make([]GridResult, n)
	tickets := make([]*Ticket, n)
	for i := 0; i < n; i++ {
		size := r.MinSize + i/len(strategies)
		pol := strategies[i%len(strategies)]
		out[i] = GridResult{Rows: size, Cols: size, Storage: pol}
		o := opts
		o.GridRows, o.GridCols = size, size
		o.Storage = pol
		name := fmt.Sprintf("%s@%dx%d", a.Name(), size, size)
		if len(strategies) > 1 {
			name += "@" + pol.String()
		}
		t, err := s.Submit(ctx, Job{
			Name:    name,
			Assay:   a,
			Options: o,
		})
		if err != nil {
			out[i].Err = err
			continue
		}
		tickets[i] = t
	}
	for i, t := range tickets {
		if t == nil {
			continue
		}
		out[i].Result, out[i].Err = t.Wait(context.Background())
	}
	if r.FaultSamples > 0 && ctx.Err() == nil {
		s.exploreFaults(ctx, out, tickets, r.FaultSamples)
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}
