// Package flowsyn synthesizes flow-based microfluidic biochips with
// distributed channel storage, reproducing "Transport or Store? Synthesizing
// Flow-based Microfluidic Biochips using Distributed Channel Storage"
// (Liu, Li, Yao, Pop, Ho, Schlichtmann — DAC 2017).
//
// A bioassay is described as a sequencing graph of fluidic operations. The
// synthesis flow
//
//  1. schedules and binds the operations onto a bounded set of devices while
//     minimizing intermediate-fluid storage (ILP or storage-aware list
//     scheduling),
//  2. synthesizes a chip architecture on a connection grid, realizing every
//     fluid transport as a time-multiplexed path of channel segments and
//     caching intermediate fluids directly in channel segments (distributed
//     storage), and
//  3. compresses the resulting planar connection graph into a compact
//     physical layout.
//
// Quick start:
//
//	assay, opts, _ := flowsyn.Benchmark("PCR")
//	res, err := flowsyn.Synthesize(assay, opts)
//	if err != nil { ... }
//	fmt.Println(res.Summary())
package flowsyn

import (
	"fmt"
	"io"

	"flowsyn/internal/assay"
	"flowsyn/internal/seqgraph"
)

// OpKind classifies an operation in an assay.
type OpKind int

const (
	// Mix merges fluids inside a mixer device.
	Mix OpKind = iota
	// Dilute mixes a sample with buffer.
	Dilute
	// Heat incubates a fluid.
	Heat
	// Detect reads a fluid out.
	Detect
)

func (k OpKind) internal() seqgraph.OpKind {
	switch k {
	case Dilute:
		return seqgraph.Dilute
	case Heat:
		return seqgraph.Heat
	case Detect:
		return seqgraph.Detect
	default:
		return seqgraph.Mix
	}
}

// Assay is a bioassay protocol: a DAG of fluidic operations.
type Assay struct {
	g *seqgraph.Graph
}

// NewAssay returns an empty assay with the given name.
func NewAssay(name string) *Assay {
	return &Assay{g: seqgraph.New(name)}
}

// Name returns the assay name.
func (a *Assay) Name() string { return a.g.Name }

// NumOperations returns |O|.
func (a *Assay) NumOperations() int { return a.g.NumOps() }

// AddOperation appends an operation and returns its handle. Duration is in
// seconds; inputs counts external reagent/sample inputs.
func (a *Assay) AddOperation(name string, kind OpKind, durationSeconds, inputs int) (Op, error) {
	id, err := a.g.AddOperation(name, kind.internal(), durationSeconds, inputs)
	if err != nil {
		return Op{}, err
	}
	return Op{id: id}, nil
}

// AddDependency records that child consumes parent's product.
func (a *Assay) AddDependency(parent, child Op) error {
	return a.g.AddDependency(parent.id, child.id)
}

// Validate checks that the assay is a non-empty DAG with positive durations.
func (a *Assay) Validate() error { return a.g.Validate() }

// WriteJSON serializes the assay in the stable JSON schema.
func (a *Assay) WriteJSON(w io.Writer) error { return seqgraph.Write(w, a.g) }

// WriteDOT renders the assay as a Graphviz document.
func (a *Assay) WriteDOT(w io.Writer) error { return seqgraph.WriteDOT(w, a.g) }

// ReadAssay parses an assay from its JSON representation.
func ReadAssay(r io.Reader) (*Assay, error) {
	g, err := seqgraph.Read(r)
	if err != nil {
		return nil, err
	}
	return &Assay{g: g}, nil
}

// Op is a handle to an operation inside an Assay.
type Op struct {
	id seqgraph.OpID
}

// Benchmark returns one of the paper's evaluation assays (PCR, IVD, CPA,
// RA30, RA70, RA100) together with the synthesis options used in Table 2.
func Benchmark(name string) (*Assay, Options, error) {
	b, err := assay.Get(name)
	if err != nil {
		return nil, Options{}, err
	}
	return &Assay{g: b.Graph}, Options{
		Devices:   b.Devices,
		Transport: b.Transport,
		GridRows:  b.GridRows,
		GridCols:  b.GridCols,
		ModelIO:   b.ModelIO,
	}, nil
}

// BenchmarkNames lists the available benchmark assays in Table 2 order.
func BenchmarkNames() []string { return assay.Names() }

// RandomAssay generates a seeded random assay with n operations, as used
// for the paper's RA30/RA70/RA100 benchmarks.
func RandomAssay(n, width int, seed int64) *Assay {
	return &Assay{g: assay.Random(n, width, seed)}
}

// String summarizes the assay.
func (a *Assay) String() string {
	return fmt.Sprintf("%s (%d operations)", a.g.Name, a.g.NumOps())
}
