package flowsyn

import (
	"errors"
	"testing"
)

// FuzzSynthesizeVerify drives the whole pipeline with fuzzer-chosen assay
// shapes and synthesis options, verification forced on. Synthesis may
// legitimately fail (e.g. the connection grid is too small for the traffic
// the schedule generates) — but if it claims success, the independent
// invariant checker must accept the result; a *VerifyError is always a bug.
//
// Run it as a smoke job with
//
//	go test -fuzz=FuzzSynthesizeVerify -fuzztime=30s -run='^$' .
func FuzzSynthesizeVerify(f *testing.F) {
	f.Add(int64(1), 8, 2, 3, 6, 10, false)
	f.Add(int64(42), 20, 3, 4, 5, 7, true)
	f.Add(int64(7), 12, 4, 2, 4, 12, false)
	f.Add(int64(-3), 1, 1, 1, 4, 1, true)
	f.Fuzz(func(t *testing.T, seed int64, n, width, devices, grid, transport int, timeOnly bool) {
		// Clamp the fuzzed shape into ranges where a single synthesis stays
		// fast on one core; the heuristic engine keeps each execution in the
		// low milliseconds.
		n = 1 + mod(n, 24)
		width = 1 + mod(width, 4)
		devices = 1 + mod(devices, 4)
		grid = 4 + mod(grid, 4)
		transport = 1 + mod(transport, 15)

		opts := Options{
			Devices:   devices,
			Transport: transport,
			GridRows:  grid,
			GridCols:  grid,
			Engine:    HeuristicEngine,
			Verify:    true,
		}
		if timeOnly {
			opts.Objective = MinimizeTimeOnly
		}
		res, err := Synthesize(RandomAssay(n, width, seed), opts)
		if err != nil {
			var verr *VerifyError
			if errors.As(err, &verr) {
				t.Fatalf("n=%d width=%d devices=%d grid=%d transport=%d timeOnly=%v: synthesized result failed verification: %v",
					n, width, devices, grid, transport, timeOnly, verr)
			}
			// Any other failure (routing congestion, infeasible options) is a
			// legitimate rejection, not a correctness bug.
			t.Skip()
		}
		if !res.Verified() {
			t.Fatal("verify stage did not run despite Options.Verify")
		}
		if err := res.Verify(); err != nil {
			t.Fatalf("re-verification failed: %v", err)
		}
	})
}

// mod is a non-negative modulus for fuzzer-chosen ints.
func mod(x, m int) int {
	r := x % m
	if r < 0 {
		r += m
	}
	return r
}
