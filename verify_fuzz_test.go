package flowsyn

import (
	"context"
	"errors"
	"testing"
)

// FuzzSynthesizeVerify drives the whole pipeline with fuzzer-chosen assay
// shapes and synthesis options — including the storage strategy (distributed
// channels, dedicated unit, hybrid cache with fuzzed slot count and eviction
// policy), verification forced on. Synthesis may legitimately fail (e.g. the
// connection grid is too small for the traffic the schedule generates, or a
// unit port window is unroutable) — but if it claims success, the independent
// invariant checker must accept the result; a *VerifyError is always a bug.
//
// Run it as a smoke job with
//
//	go test -fuzz=FuzzSynthesizeVerify -fuzztime=30s -run='^$' .
func FuzzSynthesizeVerify(f *testing.F) {
	f.Add(int64(1), 8, 2, 3, 6, 10, false, 0, 0)
	f.Add(int64(42), 20, 3, 4, 5, 7, true, 0, 0)
	f.Add(int64(7), 12, 4, 2, 4, 12, false, 0, 0)
	f.Add(int64(-3), 1, 1, 1, 4, 1, true, 0, 0)
	// Dedicated-unit and hybrid-cache seeds: the last exercises the eviction
	// path hard — a wide 18-op assay on 2 devices with a single cache slot
	// forces repeated demotions from the channel cache into the unit.
	f.Add(int64(9), 14, 3, 3, 6, 8, false, 1, 0)
	f.Add(int64(11), 18, 4, 2, 6, 9, false, 2, 0)
	f.Add(int64(13), 18, 4, 2, 6, 9, false, 2, 1)
	f.Fuzz(func(t *testing.T, seed int64, n, width, devices, grid, transport int, timeOnly bool, storage, slotsEvict int) {
		// Clamp the fuzzed shape into ranges where a single synthesis stays
		// fast on one core; the heuristic engine keeps each execution in the
		// low milliseconds.
		n = 1 + mod(n, 24)
		width = 1 + mod(width, 4)
		devices = 1 + mod(devices, 4)
		grid = 4 + mod(grid, 4)
		transport = 1 + mod(transport, 15)

		opts := Options{
			Devices:   devices,
			Transport: transport,
			GridRows:  grid,
			GridCols:  grid,
			Engine:    HeuristicEngine,
			Verify:    true,
			Storage:   StoragePolicy(mod(storage, 3)),
		}
		if opts.Storage == HybridStorage {
			opts.CacheSlots = 1 + mod(slotsEvict, 3)
			if mod(slotsEvict, 2) == 0 {
				opts.Eviction = "lru"
			} else {
				opts.Eviction = "earliest-next-fetch"
			}
		}
		if opts.Storage != DistributedStorage {
			// The storage objective is the one the serialized strategies
			// model; keep their arms on it.
			timeOnly = false
		}
		if timeOnly {
			opts.Objective = MinimizeTimeOnly
		}
		res, err := Synthesize(RandomAssay(n, width, seed), opts)
		if err != nil {
			var verr *VerifyError
			if errors.As(err, &verr) {
				t.Fatalf("n=%d width=%d devices=%d grid=%d transport=%d timeOnly=%v storage=%s slots=%d: synthesized result failed verification: %v",
					n, width, devices, grid, transport, timeOnly, opts.Storage, opts.CacheSlots, verr)
			}
			// Any other failure (routing congestion, infeasible options) is a
			// legitimate rejection, not a correctness bug.
			t.Skip()
		}
		if !res.Verified() {
			t.Fatal("verify stage did not run despite Options.Verify")
		}
		if err := res.Verify(); err != nil {
			t.Fatalf("re-verification failed: %v", err)
		}
	})
}

// FuzzRecoverVerify drives the fault-injection splice with fuzzer-chosen
// assay shapes, fault kinds and injection instants, verification forced on.
// A recovery may legitimately be rejected (a device fault with one device, an
// unroutable mask) — but if it claims success, the splice-point checker
// (verify.CheckRecovery, replaying the faulted execution end to end) must
// accept it; a *VerifyError is always a bug.
//
// Run it as a smoke job with
//
//	go test -fuzz=FuzzRecoverVerify -fuzztime=30s -run='^$' .
func FuzzRecoverVerify(f *testing.F) {
	f.Add(int64(1), 10, 2, 3, 6, 0, 50)  // device fault mid-execution
	f.Add(int64(42), 16, 3, 4, 5, 1, 10) // channel fault early
	f.Add(int64(7), 8, 2, 2, 4, 2, 500)  // storage fault near/after the end
	f.Add(int64(-3), 5, 1, 3, 4, 0, 0)   // fault at t=0: full re-synthesis
	f.Fuzz(func(t *testing.T, seed int64, n, width, devices, grid, kind, at int) {
		n = 1 + mod(n, 20)
		width = 1 + mod(width, 4)
		devices = 1 + mod(devices, 4)
		grid = 4 + mod(grid, 3)

		s, _ := New(Config{Workers: 1, QueueDepth: 2, CacheEntries: -1})
		defer s.Close()
		prior, err := s.Submit(context.Background(), Job{
			Assay: RandomAssay(n, width, seed),
			Options: Options{
				Devices: devices, GridRows: grid, GridCols: grid,
				Engine: HeuristicEngine, Verify: true,
			},
		})
		if err != nil {
			t.Skip()
		}
		res, err := prior.Wait(context.Background())
		if err != nil {
			t.Skip() // congestion on a small grid: legitimate rejection
		}

		fault := Fault{Kind: FaultKind(mod(kind, 3)), Time: mod(at, res.Makespan()+10)}
		switch fault.Kind {
		case DeviceFault:
			fault.Device = mod(at, devices)
		default:
			edges := res.inner.Architecture.UsedEdges
			if len(edges) == 0 {
				t.Skip()
			}
			fault.Channel = int(edges[mod(at, len(edges))])
		}
		tk, err := s.Recover(context.Background(), prior, fault)
		if err != nil {
			t.Skip() // e.g. device fault with every device in use
		}
		rec, err := tk.Wait(context.Background())
		if err != nil {
			var verr *VerifyError
			if errors.As(err, &verr) {
				t.Fatalf("n=%d width=%d devices=%d grid=%d fault=%v: spliced plan failed the recovery checker: %v",
					n, width, devices, grid, fault, verr)
			}
			t.Skip() // unroutable mask: legitimate rejection
		}
		if !rec.Verified() {
			t.Fatal("recovery verify stage did not run despite Options.Verify")
		}
	})
}

// mod is a non-negative modulus for fuzzer-chosen ints.
func mod(x, m int) int {
	r := x % m
	if r < 0 {
		r += m
	}
	return r
}
