// Command assaygen generates random bioassay sequencing graphs in the JSON
// schema understood by the flowsyn tools — the generator behind the paper's
// RA30/RA70/RA100 benchmarks.
//
// Usage:
//
//	assaygen -n 30 -width 5 -seed 1 > ra30.json
//	assaygen -n 30 -dot > ra30.dot      # Graphviz output instead of JSON
package main

import (
	"flag"
	"log"
	"os"

	"flowsyn/internal/assay"
	"flowsyn/internal/seqgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("assaygen: ")
	var (
		n     = flag.Int("n", 30, "number of operations")
		width = flag.Int("width", 5, "maximum operations per level")
		seed  = flag.Int64("seed", 1, "random seed (same seed, same assay)")
		dot   = flag.Bool("dot", false, "emit Graphviz DOT instead of JSON")
	)
	flag.Parse()
	if *n < 1 {
		log.Fatal("-n must be positive")
	}

	g := assay.Random(*n, *width, *seed)
	var err error
	if *dot {
		err = seqgraph.WriteDOT(os.Stdout, g)
	} else {
		err = seqgraph.Write(os.Stdout, g)
	}
	if err != nil {
		log.Fatal(err)
	}
}
