package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeFleet emulates N flowsynd replicas sharing one persistent store: the
// first submission of a key anywhere in the fleet counts one cold solve on
// that replica, every repeat anywhere is a store hit. It exercises the whole
// client side of the harness (submit, poll, resynthesize, recover, stats)
// without solving anything.
type fakeFleet struct {
	mu     sync.Mutex
	solved map[string]bool // shared store: key -> already solved fleet-wide
	solves []int64         // cold solves per replica
	jobs   map[string]*fakeJob
	nextID int
	// failJobs makes every Nth submission come back failed (0 = never).
	failEvery int
	submitted int
}

type fakeJob struct {
	key     string
	warm    bool
	fail    bool
	readyAt time.Time // cold jobs "solve" for a while; warm jobs are instant
}

// fakeColdSolve is the emulated cold-solve latency; warm jobs finish
// immediately, so the harness's warm-vs-cold speedup check has a real margin
// to measure.
const fakeColdSolve = 40 * time.Millisecond

func newFakeFleet(replicas int) *fakeFleet {
	return &fakeFleet{
		solved: map[string]bool{},
		solves: make([]int64, replicas),
		jobs:   map[string]*fakeJob{},
	}
}

// admit records one job for a key: the fleet-wide first sight of a key is a
// cold solve on this replica, everything after is warm.
func (ff *fakeFleet) admit(rep int, key string) *fakeJob {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	ff.submitted++
	j := &fakeJob{key: key, warm: ff.solved[key]}
	if !j.warm {
		ff.solved[key] = true
		ff.solves[rep]++
		j.readyAt = time.Now().Add(fakeColdSolve)
	}
	if ff.failEvery > 0 && ff.submitted%ff.failEvery == 0 {
		j.fail = true
	}
	ff.nextID++
	id := fmt.Sprintf("job-%d", ff.nextID)
	ff.jobs[id] = j
	return j
}

func (ff *fakeFleet) id(j *fakeJob) string {
	for id, job := range ff.jobs {
		if job == j {
			return id
		}
	}
	return ""
}

func (ff *fakeFleet) handler(rep int) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Options map[string]any `json:"options"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		key := fmt.Sprintf("opts|%v", req.Options["transport"])
		j := ff.admit(rep, key)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": ff.id(j)})
	})
	mux.HandleFunc("POST /v1/jobs/{id}/resynthesize", func(w http.ResponseWriter, r *http.Request) {
		ff.mu.Lock()
		prior := ff.jobs[r.PathValue("id")]
		ff.mu.Unlock()
		if prior == nil {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "unknown job"})
			return
		}
		// The edited graph keeps the seed's options, so its store key is the
		// seed's with an edit marker — one extra cold solve per edited key.
		j := ff.admit(rep, "edit|"+prior.key)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": ff.id(j)})
	})
	mux.HandleFunc("POST /v1/jobs/{id}/recover", func(w http.ResponseWriter, r *http.Request) {
		// Recoveries bypass every cache and never count a schedule solve.
		ff.mu.Lock()
		ff.nextID++
		id := fmt.Sprintf("job-%d", ff.nextID)
		ff.jobs[id] = &fakeJob{}
		ff.mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		ff.mu.Lock()
		j := ff.jobs[r.PathValue("id")]
		ff.mu.Unlock()
		if j == nil {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "unknown job"})
			return
		}
		state := "done"
		switch {
		case j.fail:
			state = "failed"
		case time.Now().Before(j.readyAt):
			state = "running"
		}
		json.NewEncoder(w).Encode(map[string]any{
			"id": r.PathValue("id"), "state": state,
			"stats": map[string]any{
				"runtime_ms": 1.0,
				"store_hit":  j.warm,
			},
		})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"makespan_s": 100})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		ff.mu.Lock()
		n := ff.solves[rep]
		ff.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"schedule_solves": n})
	})
	return mux
}

func startFakeFleet(t *testing.T, ff *fakeFleet) []string {
	t.Helper()
	urls := make([]string, len(ff.solves))
	for i := range urls {
		ts := httptest.NewServer(ff.handler(i))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// TestRunAgainstFakeFleet drives the whole harness — seed phase, mixed
// phase with edits and recoveries, fleet stats, checks, artifact — against
// two emulated replicas sharing a store. The single-flight accounting must
// come out exact: unique keys + distinct edited keys, nothing more.
func TestRunAgainstFakeFleet(t *testing.T) {
	resetEditedAssayCache()
	ff := newFakeFleet(2)
	urls := startFakeFleet(t, ff)
	benchPath := filepath.Join(t.TempDir(), "bench.json")

	code := run(runConfig{
		replicas:  urls,
		benchmark: "PCR",
		unique:    4,
		jobs:      40,
		conc:      6,
		resynth:   0.2,
		recover:   0.2,
		seed:      7,
		timeout:   10 * time.Second,
		benchJSON: benchPath,
		notes:     "fake fleet",
		check:     true,
	})
	if code != 0 {
		t.Fatalf("run exited %d against a healthy fake fleet", code)
	}

	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		LoadRuns []loadRun `json:"load_runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.LoadRuns) != 1 {
		t.Fatalf("artifact has %d load runs", len(doc.LoadRuns))
	}
	lr := doc.LoadRuns[0]
	if !lr.SingleFlight {
		t.Errorf("single flight false: %d solves for %d expected",
			lr.FleetScheduleSolve, lr.ExpectedColdSolves)
	}
	if lr.FailedJobs != 0 {
		t.Errorf("%d failed jobs against a fake fleet", lr.FailedJobs)
	}
	if lr.Jobs != 44 { // 4 seeds + 40 mixed
		t.Errorf("recorded %d jobs, want 44", lr.Jobs)
	}
	if lr.ColdJobs != 4 {
		t.Errorf("cold jobs %d, want the 4 seeds", lr.ColdJobs)
	}
	if lr.ThroughputJPS <= 0 || lr.DurationMS <= 0 {
		t.Errorf("degenerate throughput: %+v", lr)
	}
}

// A fleet that breaks the single-solve property (here: a replica whose
// store writes are invisible to the other, emulated by failing jobs) must
// fail -check.
func TestRunCheckFailsOnBrokenFleet(t *testing.T) {
	resetEditedAssayCache()
	ff := newFakeFleet(2)
	ff.failEvery = 5
	urls := startFakeFleet(t, ff)

	code := run(runConfig{
		replicas:  urls,
		benchmark: "PCR",
		unique:    2,
		jobs:      20,
		conc:      4,
		seed:      1,
		timeout:   10 * time.Second,
		check:     true,
	})
	if code == 0 {
		t.Fatal("run passed -check against a fleet with failing jobs")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if code := run(runConfig{unique: 0, conc: 1}); code != 2 {
		t.Errorf("unique=0 exited %d, want 2", code)
	}
	if code := run(runConfig{unique: 1, jobs: -1, conc: 1}); code != 2 {
		t.Errorf("n=-1 exited %d, want 2", code)
	}
}

func TestRunFailsOnUnhealthyReplica(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)
	cfg := runConfig{
		replicas: []string{ts.URL}, benchmark: "PCR",
		unique: 1, jobs: 0, conc: 1, timeout: time.Second,
	}
	if code := run(cfg); code != 1 {
		t.Errorf("unhealthy replica exited %d, want 1", code)
	}
}

// resetEditedAssayCache clears the process-wide edited-assay memoization so
// each test builds it fresh.
func resetEditedAssayCache() {
	editedAssayOnce = struct {
		sync.Once
		doc json.RawMessage
		err error
	}{}
}

// The harness health wait must tolerate a replica that comes up late.
func TestWaitHealthyRetries(t *testing.T) {
	var mu sync.Mutex
	healthy := false
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ok := healthy
		mu.Unlock()
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(ts.Close)
	go func() {
		time.Sleep(200 * time.Millisecond)
		mu.Lock()
		healthy = true
		mu.Unlock()
	}()
	f := newFleet(&http.Client{Timeout: 5 * time.Second}, []string{ts.URL}, time.Second, "PCR")
	if err := f.waitHealthy(0); err != nil {
		t.Fatalf("late-healthy replica not tolerated: %v", err)
	}
	if !strings.HasPrefix(f.replicas[0], "http://") {
		t.Fatalf("replica URL mangled: %q", f.replicas[0])
	}
}
