package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	cases := []struct {
		values []float64
		p      float64
		want   float64
	}{
		{nil, 50, 0},
		{[]float64{7}, 50, 7},
		{[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 50, 5},
		{[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 95, 10},
		{[]float64{10, 1, 5}, 99, 10}, // unsorted input
		{[]float64{1, 2, 3, 4}, 1, 1}, // rank clamps at the floor
	}
	for _, c := range cases {
		if got := percentile(c.values, c.p); got != c.want {
			t.Errorf("percentile(%v, %v) = %v, want %v", c.values, c.p, got, c.want)
		}
	}
	// percentile must not reorder the caller's slice.
	values := []float64{3, 1, 2}
	percentile(values, 50)
	if values[0] != 3 || values[2] != 2 {
		t.Errorf("input mutated: %v", values)
	}
}

func TestSummarizeClassification(t *testing.T) {
	outcomes := []jobOutcome{
		{kind: kindSubmit, latencyMS: 100},           // cold
		{kind: kindSubmit, latencyMS: 2, warm: true}, // warm
		{kind: kindSubmit, latencyMS: 3, warm: true}, // warm
		{kind: kindResynth, latencyMS: 50},           // neither population
		{kind: kindRecover, latencyMS: 40},           // neither population
		{kind: kindSubmit, failed: true},             // excluded entirely
	}
	cfg := runConfig{replicas: []string{"http://a"}, benchmark: "PCR", unique: 1, conc: 2}
	rep := summarize(outcomes, 2*time.Second, 2, 2, cfg)

	if rep.ColdJobs != 1 || rep.WarmJobs != 2 || rep.ResynthJobs != 1 || rep.RecoverJobs != 1 || rep.FailedJobs != 1 {
		t.Fatalf("classification off: %+v", rep)
	}
	if rep.ColdP50MS != 100 {
		t.Errorf("cold p50 = %v, want 100", rep.ColdP50MS)
	}
	if rep.CachedP50MS != 2 {
		t.Errorf("cached p50 = %v, want 2", rep.CachedP50MS)
	}
	if !rep.SingleFlight || rep.FleetScheduleSolve != 2 {
		t.Errorf("single-flight accounting off: %+v", rep)
	}
	// 5 completed jobs over 2 seconds.
	if rep.ThroughputJPS != 2.5 {
		t.Errorf("throughput = %v, want 2.5", rep.ThroughputJPS)
	}
}

// The artifact writer must merge into an existing flowsyn-bench/v1 file,
// preserving foreign sections, not clobber it.
func TestWriteBenchArtifactMerges(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	existing := map[string]any{
		"schema": "flowsyn-bench/v1",
		"runs":   []any{map[string]any{"assay": "PCR"}},
	}
	data, _ := json.Marshal(existing)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep := loadRun{Benchmark: "PCR", Jobs: 10, SingleFlight: true}
	if err := writeBenchArtifact(path, rep, "smoke"); err != nil {
		t.Fatal(err)
	}

	merged, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(merged, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["schema"] != "flowsyn-bench/v1" {
		t.Errorf("schema lost: %v", doc["schema"])
	}
	if _, ok := doc["runs"]; !ok {
		t.Error("pre-existing runs section dropped")
	}
	loads, ok := doc["load_runs"].([]any)
	if !ok || len(loads) != 1 {
		t.Fatalf("load_runs = %v", doc["load_runs"])
	}
	lr := loads[0].(map[string]any)
	if lr["notes"] != "smoke" || lr["single_flight"] != true {
		t.Errorf("load run fields off: %v", lr)
	}
}

func TestWriteBenchArtifactFreshFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeBenchArtifact(path, loadRun{Benchmark: "IVD"}, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["schema"] != "flowsyn-bench/v1" {
		t.Errorf("fresh artifact missing schema: %v", doc["schema"])
	}
}

func TestBuildEditedAssay(t *testing.T) {
	doc, err := buildEditedAssay("PCR")
	if err != nil {
		t.Fatal(err)
	}
	var edited struct {
		Name       string   `json:"name"`
		Operations []jsonOp `json:"operations"`
	}
	if err := json.Unmarshal(doc, &edited); err != nil {
		t.Fatal(err)
	}
	orig, err := buildEditedAssay("nope")
	if err == nil {
		t.Fatalf("unknown benchmark accepted: %s", orig)
	}
	if len(edited.Operations) == 0 {
		t.Fatal("edited assay has no operations")
	}
	if edited.Name != "PCR-edited" {
		t.Errorf("name = %q", edited.Name)
	}
}
