// Command flowsynload is the fleet load harness: it drives a mixed workload
// of cold, cached, resynthesize and recover jobs against one or more
// flowsynd replicas, measures client-observed latency percentiles and
// throughput, and checks the fleet-wide single-flight property — N replicas
// sharing one persistent store must perform exactly one cold scheduling
// solve per unique (assay, options) key.
//
// Usage (two replicas over one shared store):
//
//	flowsynd -addr :8080 -store-dir /tmp/fleet &
//	flowsynd -addr :8081 -store-dir /tmp/fleet &
//	flowsynload -replicas http://127.0.0.1:8080,http://127.0.0.1:8081 \
//	    -n 200 -c 16 -unique 8 -check -bench-json BENCH.json
//
// With -bench-json the results land in the repo's bench artifact schema
// (flowsyn-bench/v1) under "load_runs"; an existing file is merged, not
// overwritten, so one artifact can carry paperbench and fleet numbers
// together. -check exits non-zero when the single-flight property or the
// warm-path speedup fails, which is how CI consumes it.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowsynload: ")
	var (
		replicas  = flag.String("replicas", "http://127.0.0.1:8080", "comma-separated flowsynd base URLs")
		benchmark = flag.String("benchmark", "PCR", "built-in benchmark assay to drive")
		unique    = flag.Int("unique", 8, "unique (assay, options) keys in the workload")
		jobs      = flag.Int("n", 100, "mixed jobs to submit after seeding")
		conc      = flag.Int("c", 8, "concurrent client workers")
		resynth   = flag.Float64("resynth", 0.1, "fraction of mixed jobs that resynthesize an edit")
		recover   = flag.Float64("recover", 0.1, "fraction of mixed jobs that inject and recover a fault")
		seed      = flag.Int64("seed", 1, "workload shuffle seed")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-job completion timeout")
		benchJSON = flag.String("bench-json", "", "write (or merge into) a flowsyn-bench/v1 artifact")
		notes     = flag.String("notes", "", "free-form notes recorded in the artifact")
		check     = flag.Bool("check", false, "exit non-zero unless single-flight and warm-speedup hold")
	)
	flag.Parse()
	os.Exit(run(runConfig{
		replicas:  strings.Split(*replicas, ","),
		benchmark: *benchmark,
		unique:    *unique,
		jobs:      *jobs,
		conc:      *conc,
		resynth:   *resynth,
		recover:   *recover,
		seed:      *seed,
		timeout:   *timeout,
		benchJSON: *benchJSON,
		notes:     *notes,
		check:     *check,
	}))
}

type runConfig struct {
	replicas  []string
	benchmark string
	unique    int
	jobs      int
	conc      int
	resynth   float64
	recover   float64
	seed      int64
	timeout   time.Duration
	benchJSON string
	notes     string
	check     bool
}

// jobKind classifies one workload entry.
type jobKind int

const (
	kindSubmit jobKind = iota
	kindResynth
	kindRecover
)

// workItem is one planned request of the mixed phase.
type workItem struct {
	kind    jobKind
	key     int // unique-key index
	replica int
}

// jobOutcome is one completed (or failed) job as the client observed it.
type jobOutcome struct {
	kind      jobKind
	key       int
	latencyMS float64 // client wall: submit to observed completion
	warm      bool    // served from any cache/store/coalesce tier
	failed    bool
}

// seedRef locates a key's seed job for resynthesize/recover follow-ups.
type seedRef struct {
	replica  int
	id       string
	makespan int
}

func run(cfg runConfig) int {
	if cfg.unique < 1 || cfg.jobs < 0 || cfg.conc < 1 {
		log.Print("need -unique >= 1, -n >= 0, -c >= 1")
		return 2
	}
	client := &http.Client{Timeout: 30 * time.Second}
	fleet := newFleet(client, cfg.replicas, cfg.timeout, cfg.benchmark)

	for i, base := range cfg.replicas {
		if err := fleet.waitHealthy(i); err != nil {
			log.Printf("replica %s not healthy: %v", base, err)
			return 1
		}
	}

	start := time.Now()
	// Seed phase: run every unique key once through the fleet, round-robin.
	// These are the fleet's cold solves (exactly one per key if the
	// cross-replica single-flight works; the store serves the rest).
	seeds := make([]seedRef, cfg.unique)
	var outcomes []jobOutcome
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.conc)
	for k := 0; k < cfg.unique; k++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(k int) {
			defer wg.Done()
			defer func() { <-sem }()
			rep := k % len(fleet.replicas)
			out, ref := fleet.submitAndWait(rep, cfg.benchmark, k)
			mu.Lock()
			outcomes = append(outcomes, out)
			seeds[k] = ref
			mu.Unlock()
		}(k)
	}
	wg.Wait()

	for k, ref := range seeds {
		if ref.id == "" {
			log.Printf("seed job for key %d failed; aborting", k)
			return 1
		}
	}

	// Mixed phase: a shuffled stream of repeats, edits and recoveries.
	rng := rand.New(rand.NewSource(cfg.seed))
	plan := make([]workItem, cfg.jobs)
	resynthKeys := map[int]bool{}
	for i := range plan {
		it := workItem{key: rng.Intn(cfg.unique), replica: rng.Intn(len(fleet.replicas))}
		switch r := rng.Float64(); {
		case r < cfg.resynth:
			it.kind = kindResynth
			resynthKeys[it.key] = true
		case r < cfg.resynth+cfg.recover:
			it.kind = kindRecover
		}
		plan[i] = it
	}
	for _, it := range plan {
		wg.Add(1)
		sem <- struct{}{}
		go func(it workItem) {
			defer wg.Done()
			defer func() { <-sem }()
			var out jobOutcome
			switch it.kind {
			case kindSubmit:
				out, _ = fleet.submitAndWait(it.replica, cfg.benchmark, it.key)
			case kindResynth:
				out = fleet.resynthAndWait(seeds[it.key], it.key)
			case kindRecover:
				out = fleet.recoverAndWait(seeds[it.key], it.key)
			}
			mu.Lock()
			outcomes = append(outcomes, out)
			mu.Unlock()
		}(it)
	}
	wg.Wait()
	wall := time.Since(start)

	// Fleet accounting: the single-flight property. Every unique key costs
	// one engine solve, plus one per distinct edited key (an edit is a new
	// fingerprint, legitimately cold the first time fleet-wide).
	var fleetSolves int64
	for i := range fleet.replicas {
		st, err := fleet.stats(i)
		if err != nil {
			log.Printf("stats from %s: %v", fleet.replicas[i], err)
			return 1
		}
		fleetSolves += st.ScheduleSolves
	}
	expected := int64(cfg.unique + len(resynthKeys))
	singleFlight := fleetSolves == expected

	rep := summarize(outcomes, wall, fleetSolves, expected, cfg)
	printReport(rep, singleFlight)

	if cfg.benchJSON != "" {
		if err := writeBenchArtifact(cfg.benchJSON, rep, cfg.notes); err != nil {
			log.Printf("bench artifact: %v", err)
			return 1
		}
		log.Printf("wrote load_runs into %s", cfg.benchJSON)
	}

	if cfg.check {
		fail := false
		if !singleFlight {
			log.Printf("CHECK FAILED: fleet performed %d cold solves, expected %d", fleetSolves, expected)
			fail = true
		}
		if rep.FailedJobs > 0 {
			log.Printf("CHECK FAILED: %d jobs failed", rep.FailedJobs)
			fail = true
		}
		if rep.ColdP50MS > 1.0 && rep.CachedP50MS > rep.ColdP50MS/2 {
			log.Printf("CHECK FAILED: cached p50 %.2fms not under half of cold p50 %.2fms",
				rep.CachedP50MS, rep.ColdP50MS)
			fail = true
		}
		if fail {
			return 1
		}
		log.Print("all checks passed")
	}
	return 0
}

// loadRun is the artifact record of one harness run; it must stay
// JSON-compatible with cmd/paperbench's benchLoadRun.
type loadRun struct {
	Fleet              []string `json:"fleet"`
	Benchmark          string   `json:"benchmark"`
	UniqueKeys         int      `json:"unique_keys"`
	Jobs               int      `json:"jobs"`
	Concurrency        int      `json:"concurrency"`
	DurationMS         float64  `json:"duration_ms"`
	ThroughputJPS      float64  `json:"throughput_jps"`
	ColdJobs           int      `json:"cold_jobs"`
	WarmJobs           int      `json:"warm_jobs"`
	ResynthJobs        int      `json:"resynth_jobs"`
	RecoverJobs        int      `json:"recover_jobs"`
	FailedJobs         int      `json:"failed_jobs"`
	P50MS              float64  `json:"p50_ms"`
	P95MS              float64  `json:"p95_ms"`
	P99MS              float64  `json:"p99_ms"`
	ColdP50MS          float64  `json:"cold_p50_ms"`
	ColdP95MS          float64  `json:"cold_p95_ms"`
	ColdP99MS          float64  `json:"cold_p99_ms"`
	CachedP50MS        float64  `json:"cached_p50_ms"`
	CachedP95MS        float64  `json:"cached_p95_ms"`
	CachedP99MS        float64  `json:"cached_p99_ms"`
	FleetScheduleSolve int64    `json:"fleet_schedule_solves"`
	ExpectedColdSolves int64    `json:"expected_cold_solves"`
	SingleFlight       bool     `json:"single_flight"`
	Notes              string   `json:"notes,omitempty"`
}

// summarize folds the raw outcomes into the artifact record.
func summarize(outcomes []jobOutcome, wall time.Duration, fleetSolves, expected int64, cfg runConfig) loadRun {
	var all, cold, cached []float64
	rep := loadRun{
		Fleet:              cfg.replicas,
		Benchmark:          cfg.benchmark,
		UniqueKeys:         cfg.unique,
		Jobs:               len(outcomes),
		Concurrency:        cfg.conc,
		DurationMS:         float64(wall.Microseconds()) / 1e3,
		FleetScheduleSolve: fleetSolves,
		ExpectedColdSolves: expected,
		SingleFlight:       fleetSolves == expected,
	}
	for _, o := range outcomes {
		if o.failed {
			rep.FailedJobs++
			continue
		}
		all = append(all, o.latencyMS)
		switch o.kind {
		case kindResynth:
			rep.ResynthJobs++
		case kindRecover:
			rep.RecoverJobs++
		default:
			if o.warm {
				rep.WarmJobs++
				cached = append(cached, o.latencyMS)
			} else {
				rep.ColdJobs++
				cold = append(cold, o.latencyMS)
			}
		}
	}
	if wall > 0 {
		rep.ThroughputJPS = float64(len(all)) / wall.Seconds()
	}
	rep.P50MS, rep.P95MS, rep.P99MS = percentile(all, 50), percentile(all, 95), percentile(all, 99)
	rep.ColdP50MS, rep.ColdP95MS, rep.ColdP99MS = percentile(cold, 50), percentile(cold, 95), percentile(cold, 99)
	rep.CachedP50MS, rep.CachedP95MS, rep.CachedP99MS = percentile(cached, 50), percentile(cached, 95), percentile(cached, 99)
	return rep
}

// percentile returns the p-th percentile of values (nearest-rank), 0 when
// empty.
func percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func printReport(rep loadRun, singleFlight bool) {
	log.Printf("fleet of %d, %d jobs (%d unique keys) in %.1fms: %.1f jobs/s",
		len(rep.Fleet), rep.Jobs, rep.UniqueKeys, rep.DurationMS, rep.ThroughputJPS)
	log.Printf("  cold %d (p50 %.2fms p95 %.2fms p99 %.2fms)", rep.ColdJobs, rep.ColdP50MS, rep.ColdP95MS, rep.ColdP99MS)
	log.Printf("  warm %d (p50 %.2fms p95 %.2fms p99 %.2fms)", rep.WarmJobs, rep.CachedP50MS, rep.CachedP95MS, rep.CachedP99MS)
	log.Printf("  resynth %d, recover %d, failed %d", rep.ResynthJobs, rep.RecoverJobs, rep.FailedJobs)
	log.Printf("  fleet cold solves %d (expected %d): single-flight %v",
		rep.FleetScheduleSolve, rep.ExpectedColdSolves, singleFlight)
}

// writeBenchArtifact merges the run into a flowsyn-bench/v1 file: existing
// sections (runs, cache_runs, ...) are preserved, load_runs is replaced.
func writeBenchArtifact(path string, rep loadRun, notes string) error {
	rep.Notes = notes
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing artifact %s unreadable: %w", path, err)
		}
	}
	if _, ok := doc["schema"]; !ok {
		doc["schema"] = "flowsyn-bench/v1"
	}
	doc["load_runs"] = []loadRun{rep}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// fleet is the HTTP client side of the harness.
type fleet struct {
	client    *http.Client
	replicas  []string
	timeout   time.Duration
	benchmark string
}

func newFleet(client *http.Client, replicas []string, timeout time.Duration, benchmark string) *fleet {
	for i := range replicas {
		replicas[i] = strings.TrimRight(strings.TrimSpace(replicas[i]), "/")
	}
	return &fleet{client: client, replicas: replicas, timeout: timeout, benchmark: benchmark}
}

func (f *fleet) waitHealthy(i int) error {
	deadline := time.Now().Add(f.timeout)
	for {
		resp, err := f.client.Get(f.replicas[i] + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err == nil {
				return fmt.Errorf("status %d", resp.StatusCode)
			}
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// jobStatus is the slice of the daemon's status document the harness reads.
type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
	Stats struct {
		RuntimeMS        float64 `json:"runtime_ms"`
		CacheHit         bool    `json:"cache_hit"`
		ScheduleCacheHit bool    `json:"schedule_cache_hit"`
		StoreHit         bool    `json:"store_hit"`
		Coalesced        bool    `json:"coalesced"`
	} `json:"stats"`
	Summary string `json:"summary"`
}

type resultDoc struct {
	MakespanS int `json:"makespan_s"`
}

type replicaStats struct {
	ScheduleSolves int64 `json:"schedule_solves"`
	StoreHits      int64 `json:"store_hits"`
	StorePuts      int64 `json:"store_puts"`
}

// submitAndWait submits one unique-key job to a replica and polls it to
// completion. The key lands in the synthesis options (a distinct transport
// time per key), so every key is a distinct schedule-cache entry fleet-wide.
func (f *fleet) submitAndWait(rep int, benchmark string, key int) (jobOutcome, seedRef) {
	body := map[string]any{
		"benchmark": benchmark,
		"name":      fmt.Sprintf("load-k%d", key),
		"tenant":    "flowsynload",
		"options":   map[string]any{"transport": 11 + key},
	}
	out := jobOutcome{kind: kindSubmit, key: key}
	start := time.Now()
	id, err := f.post(rep, "/v1/jobs", body)
	if err != nil {
		out.failed = true
		return out, seedRef{}
	}
	st, err := f.poll(rep, id)
	out.latencyMS = float64(time.Since(start).Microseconds()) / 1e3
	if err != nil || st.State != "done" {
		out.failed = true
		return out, seedRef{}
	}
	out.warm = st.Stats.CacheHit || st.Stats.ScheduleCacheHit || st.Stats.StoreHit || st.Stats.Coalesced
	ref := seedRef{replica: rep, id: id}
	if doc, err := f.result(rep, id); err == nil {
		ref.makespan = doc.MakespanS
	}
	return out, ref
}

// resynthAndWait edits the seed job's assay (one operation runs a second
// longer) and submits the incremental re-synthesis on the seed's replica.
func (f *fleet) resynthAndWait(seed seedRef, key int) jobOutcome {
	out := jobOutcome{kind: kindResynth, key: key}
	assay, err := f.editedAssay()
	if err != nil {
		out.failed = true
		return out
	}
	start := time.Now()
	id, err := f.post(seed.replica, "/v1/jobs/"+seed.id+"/resynthesize", map[string]any{"assay": assay})
	if err != nil {
		out.failed = true
		return out
	}
	st, err := f.poll(seed.replica, id)
	out.latencyMS = float64(time.Since(start).Microseconds()) / 1e3
	out.failed = err != nil || st.State != "done"
	if !out.failed {
		out.warm = st.Stats.CacheHit || st.Stats.ScheduleCacheHit || st.Stats.StoreHit || st.Stats.Coalesced
	}
	return out
}

// editedAssay builds the benchmark-with-one-edit document once per process
// and caches it; every resynthesize request replays the same edit, so edits
// of one key coalesce into a single extra cold solve fleet-wide.
var editedAssayOnce struct {
	sync.Once
	doc json.RawMessage
	err error
}

func (f *fleet) editedAssay() (json.RawMessage, error) {
	editedAssayOnce.Do(func() {
		editedAssayOnce.doc, editedAssayOnce.err = buildEditedAssay(f.benchmark)
	})
	return editedAssayOnce.doc, editedAssayOnce.err
}

// recoverAndWait injects a fault halfway through the seed job's execution
// and waits for the online re-synthesis of the suffix. The fault kind is
// chosen per benchmark (see benchmarkFault).
func (f *fleet) recoverAndWait(seed seedRef, key int) jobOutcome {
	out := jobOutcome{kind: kindRecover, key: key}
	fault, err := benchmarkFault(f.benchmark)
	if err != nil {
		out.failed = true
		return out
	}
	at := seed.makespan / 2
	if at < 1 {
		at = 1
	}
	body := map[string]any{"time": at}
	for k, v := range fault {
		body[k] = v
	}
	start := time.Now()
	id, err := f.post(seed.replica, "/v1/jobs/"+seed.id+"/recover", body)
	if err != nil {
		out.failed = true
		return out
	}
	st, err := f.poll(seed.replica, id)
	out.latencyMS = float64(time.Since(start).Microseconds()) / 1e3
	out.failed = err != nil || st.State != "done"
	return out
}

func (f *fleet) post(rep int, path string, body any) (string, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return "", err
	}
	resp, err := f.client.Post(f.replicas[rep]+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var doc struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, doc.Error)
	}
	return doc.ID, nil
}

func (f *fleet) poll(rep int, id string) (jobStatus, error) {
	deadline := time.Now().Add(f.timeout)
	for {
		var st jobStatus
		if err := f.getJSON(rep, "/v1/jobs/"+id, &st); err != nil {
			return st, err
		}
		if st.State == "done" || st.State == "failed" {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s timed out in state %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (f *fleet) result(rep int, id string) (resultDoc, error) {
	var doc resultDoc
	err := f.getJSON(rep, "/v1/jobs/"+id+"/result", &doc)
	return doc, err
}

func (f *fleet) stats(rep int) (replicaStats, error) {
	var st replicaStats
	err := f.getJSON(rep, "/v1/stats", &st)
	return st, err
}

func (f *fleet) getJSON(rep int, path string, out any) error {
	resp, err := f.client.Get(f.replicas[rep] + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
