package main

import (
	"bytes"
	"encoding/json"
	"fmt"

	"flowsyn"
)

// buildEditedAssay renders the named built-in benchmark to its wire form and
// stretches the first operation by one second. That is the canonical "small
// protocol edit" of the incremental re-synthesis path: same shape, one
// duration off, so the daemon diffs it against the seed job's graph and
// re-solves only the affected suffix.
func buildEditedAssay(benchmark string) (json.RawMessage, error) {
	a, _, err := flowsyn.Benchmark(benchmark)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		return nil, err
	}
	var doc struct {
		Name       string      `json:"name"`
		Operations []jsonOp    `json:"operations"`
		Edges      [][2]string `json:"edges"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		return nil, err
	}
	if len(doc.Operations) == 0 {
		return nil, fmt.Errorf("benchmark %s has no operations", benchmark)
	}
	doc.Operations[0].Duration++
	doc.Name += "-edited"
	return json.Marshal(doc)
}

// benchmarkFault picks a recoverable fault for the named benchmark: a
// device fault needs a second device to absorb the work, so single-device
// assays (PCR) get a degraded-storage fault on a channel segment instead —
// every benchmark grid has segments to spare.
func benchmarkFault(benchmark string) (map[string]any, error) {
	_, opts, err := flowsyn.Benchmark(benchmark)
	if err != nil {
		return nil, err
	}
	if opts.Devices >= 2 {
		return map[string]any{"kind": "device", "device": 1}, nil
	}
	return map[string]any{"kind": "storage", "channel": 0}, nil
}

type jsonOp struct {
	Name     string `json:"name"`
	Kind     string `json:"kind,omitempty"`
	Duration int    `json:"duration"`
	Inputs   int    `json:"inputs,omitempty"`
}
