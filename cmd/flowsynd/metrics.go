package main

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"flowsyn"
)

// handleMetrics serves the session counters in the Prometheus text exposition
// format (hand-rolled: the repo carries no dependencies). Everything a fleet
// dashboard needs to see the serve path working: queue depth, cache hits by
// tier, store and lease traffic, solve wall histograms, per-tenant admission.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.solver.Stats()
	s.mu.Lock()
	tracked := len(s.jobs)
	s.mu.Unlock()

	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("flowsyn_queue_depth", "Jobs currently queued for admission.", float64(st.Queued))
	gauge("flowsyn_inflight_jobs", "Jobs currently running in the worker pool.", float64(st.InFlight))
	gauge("flowsyn_tracked_jobs", "Job records held in the daemon history.", float64(tracked))
	gauge("flowsyn_draining", "1 while the daemon is draining.", boolGauge(s.draining.Load()))
	gauge("flowsyn_uptime_seconds", "Daemon uptime.", timeSinceStart(s))

	counter("flowsyn_jobs_submitted_total", "Jobs admitted over the session lifetime.", st.Submitted)
	counter("flowsyn_jobs_completed_total", "Jobs finished successfully.", st.Completed)
	counter("flowsyn_jobs_failed_total", "Jobs that failed (including expiries).", st.Failed)
	counter("flowsyn_jobs_expired_total", "Queued jobs evicted by TTL or deadline.", st.Expired)
	counter("flowsyn_events_dropped_total", "Progress events dropped past slow subscribers.", st.EventsDropped)

	fmt.Fprintf(&b, "# HELP flowsyn_cache_hits_total Jobs served warm, by tier.\n# TYPE flowsyn_cache_hits_total counter\n")
	fmt.Fprintf(&b, "flowsyn_cache_hits_total{tier=\"result\"} %d\n", st.ResultCacheHits)
	fmt.Fprintf(&b, "flowsyn_cache_hits_total{tier=\"schedule\"} %d\n", st.ScheduleCacheHits)
	fmt.Fprintf(&b, "flowsyn_cache_hits_total{tier=\"store\"} %d\n", st.StoreHits)
	fmt.Fprintf(&b, "flowsyn_cache_hits_total{tier=\"coalesced\"} %d\n", st.Coalesced)

	counter("flowsyn_schedule_solves_total", "Cold scheduling-engine solves executed by this replica.", st.ScheduleSolves)
	counter("flowsyn_store_puts_total", "Schedules written through to the persistent store.", st.StorePuts)
	counter("flowsyn_store_errors_total", "Failed store operations (each degraded to a local solve).", st.StoreErrors)
	counter("flowsyn_lease_waits_total", "Jobs that waited on another replica's single-flight lease.", st.LeaseWaits)
	fmt.Fprintf(&b, "# HELP flowsyn_lease_wait_seconds_total Total time spent waiting on foreign leases.\n# TYPE flowsyn_lease_wait_seconds_total counter\nflowsyn_lease_wait_seconds_total %s\n",
		formatFloat(st.LeaseWaitTotal.Seconds()))

	writeWallHistogram(&b, "cold", st.ColdWall)
	writeWallHistogram(&b, "warm", st.WarmWall)

	if len(st.Tenants) > 0 {
		names := make([]string, 0, len(st.Tenants))
		for name := range st.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "# HELP flowsyn_tenant_admitted_total Jobs admitted, per tenant.\n# TYPE flowsyn_tenant_admitted_total counter\n")
		for _, name := range names {
			fmt.Fprintf(&b, "flowsyn_tenant_admitted_total{tenant=%q} %d\n", tenantLabel(name), st.Tenants[name].Admitted)
		}
		fmt.Fprintf(&b, "# HELP flowsyn_tenant_rejected_total Submissions refused, per tenant and reason.\n# TYPE flowsyn_tenant_rejected_total counter\n")
		for _, name := range names {
			ts := st.Tenants[name]
			fmt.Fprintf(&b, "flowsyn_tenant_rejected_total{tenant=%q,reason=\"quota\"} %d\n", tenantLabel(name), ts.RejectedQuota)
			fmt.Fprintf(&b, "flowsyn_tenant_rejected_total{tenant=%q,reason=\"queue_full\"} %d\n", tenantLabel(name), ts.RejectedFull)
		}
		fmt.Fprintf(&b, "# HELP flowsyn_tenant_completed_total Jobs finished successfully, per tenant.\n# TYPE flowsyn_tenant_completed_total counter\n")
		for _, name := range names {
			fmt.Fprintf(&b, "flowsyn_tenant_completed_total{tenant=%q} %d\n", tenantLabel(name), st.Tenants[name].Completed)
		}
		fmt.Fprintf(&b, "# HELP flowsyn_tenant_failed_total Jobs failed, per tenant.\n# TYPE flowsyn_tenant_failed_total counter\n")
		for _, name := range names {
			fmt.Fprintf(&b, "flowsyn_tenant_failed_total{tenant=%q} %d\n", tenantLabel(name), st.Tenants[name].Failed)
		}
		fmt.Fprintf(&b, "# HELP flowsyn_tenant_queued Jobs currently queued, per tenant.\n# TYPE flowsyn_tenant_queued gauge\n")
		for _, name := range names {
			fmt.Fprintf(&b, "flowsyn_tenant_queued{tenant=%q} %d\n", tenantLabel(name), st.Tenants[name].Queued)
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, b.String())
}

// writeWallHistogram emits one solve-wall histogram in Prometheus cumulative
// form, converted from the service's millisecond buckets to seconds.
func writeWallHistogram(b *strings.Builder, tier string, h flowsyn.Histogram) {
	name := "flowsyn_solve_wall_seconds"
	fmt.Fprintf(b, "# HELP %s Job wall time inside a worker (%s path).\n# TYPE %s histogram\n", name, tier, name)
	cum := int64(0)
	for i, bound := range flowsyn.WallBucketsMS {
		cum += h.Counts[i]
		fmt.Fprintf(b, "%s_bucket{tier=%q,le=\"%s\"} %d\n", name, tier, formatFloat(bound/1000), cum)
	}
	cum += h.Counts[len(flowsyn.WallBucketsMS)]
	fmt.Fprintf(b, "%s_bucket{tier=%q,le=\"+Inf\"} %d\n", name, tier, cum)
	fmt.Fprintf(b, "%s_sum{tier=%q} %s\n", name, tier, formatFloat(h.SumMS/1000))
	fmt.Fprintf(b, "%s_count{tier=%q} %d\n", name, tier, h.Count)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func boolGauge(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

func timeSinceStart(s *server) float64 {
	return time.Since(s.started).Seconds()
}

// tenantLabel names the anonymous default tenant in label values.
func tenantLabel(name string) string {
	if name == "" {
		return "default"
	}
	return name
}
