// Command flowsynd is the flowsyn synthesis daemon: a long-lived HTTP/JSON
// service wrapping one flowsyn.Solver session — bounded worker pool,
// content-addressed result and schedule caches, per-job progress streams and
// incremental re-synthesis — behind submit/status/result/stream endpoints.
//
// Usage:
//
//	flowsynd -addr :8080 -workers 4
//
// Submit a benchmark job and follow it:
//
//	curl -s localhost:8080/v1/jobs -d '{"benchmark":"PCR"}'
//	curl -N localhost:8080/v1/jobs/job-1/stream
//	curl -s localhost:8080/v1/jobs/job-1/result
//
// Inject a fault into a finished job and recover the remaining suffix
// online:
//
//	curl -s localhost:8080/v1/jobs/job-1/recover -d '{"kind":"device","time":130,"device":2}'
//
// On SIGTERM/SIGINT the daemon drains: new submissions are refused with 503,
// the server's job-lifetime context is cancelled — queued jobs fail promptly
// and running solves abort at their next checkpoint — and the process exits
// once the solver winds down (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flowsyn"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("flowsynd: ")
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "synthesis worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 256, "submit queue depth (backpressure bound)")
		cacheEntries = flag.Int("cache", 512, "result/schedule cache entries each (negative disables)")
		storeDir     = flag.String("store-dir", "", "persistent solve store directory, shared across restarts and replicas (empty disables)")
		jobTTL       = flag.Duration("job-ttl", 0, "evict jobs still queued after this long (0 disables)")
		tenantQueue  = flag.Int("tenant-queue", 0, "per-tenant queued-job quota (0 disables)")
		jobRetention = flag.Duration("job-retention", 10*time.Minute, "drop finished job records after this long (0 keeps until the count cap)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
	)
	flag.Parse()

	solver, err := flowsyn.New(flowsyn.Config{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		CacheEntries:     *cacheEntries,
		StoreDir:         *storeDir,
		JobTTL:           *jobTTL,
		TenantQueueDepth: *tenantQueue,
	})
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	srv := newServer(solver, *jobRetention)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (workers=%d queue=%d cache=%d)", *addr, *workers, *queueDepth, *cacheEntries)
		errCh <- httpSrv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		log.Printf("received %v, draining (timeout %s)", sig, *drainTimeout)
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	}

	// Drain: refuse new jobs and cancel the job-lifetime context so queued
	// and running solver work winds down, let the HTTP layer finish in-flight
	// requests (streams included), then close the solver.
	srv.beginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	done := make(chan struct{})
	go func() {
		solver.Close()
		close(done)
	}()
	select {
	case <-done:
		log.Printf("drained cleanly")
	case <-ctx.Done():
		log.Printf("drain timeout exceeded, exiting with jobs in flight")
	}
}
