package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flowsyn"
)

// server exposes one flowsyn.Solver session over HTTP/JSON:
//
//	POST /v1/jobs                      submit a synthesis job
//	GET  /v1/jobs/{id}                 job status + service metrics
//	GET  /v1/jobs/{id}/result          finished result document
//	GET  /v1/jobs/{id}/stream          progress events as SSE
//	POST /v1/jobs/{id}/resynthesize    incremental re-synthesis of an edit
//	POST /v1/jobs/{id}/recover         online recovery from an injected fault
//	GET  /v1/stats                     session counters
//	GET  /healthz                      liveness + drain state
type server struct {
	solver   *flowsyn.Solver
	started  time.Time
	draining atomic.Bool
	nextID   atomic.Uint64
	// retention drops finished job records this long after they end (the
	// count bound below still applies); 0 keeps them until the count cap.
	retention time.Duration

	// ctx is the server's lifetime context: every solver job is submitted
	// under it, so a drain cancels queued jobs and aborts running solves at
	// their next checkpoint instead of pinning the process past its drain
	// timeout.
	ctx    context.Context
	cancel context.CancelFunc

	mu sync.Mutex
	// jobs is bounded: once more than maxJobs records are tracked, the
	// oldest finished ones are evicted (running jobs are never dropped), so
	// a long-lived daemon does not pin every result ever produced.
	jobs    map[string]*jobRecord
	order   []string // insertion order, for eviction
	maxJobs int
}

// jobRecord tracks one submitted job and replays its progress events to any
// number of stream subscribers, late ones included.
type jobRecord struct {
	id     string
	name   string
	ticket *flowsyn.Ticket

	mu sync.Mutex
	// events is the bounded replay buffer: it holds the most recent
	// maxReplayEvents, and dropped counts those aged out of the front, so a
	// subscriber's absolute position keeps meaning (lost events appear as
	// Seq gaps, exactly like the solver's own overflow behavior).
	events  []flowsyn.Progress
	dropped int
	changed chan struct{} // replaced on every append; closed to broadcast
	ended   bool
	// finishedAt stamps the terminal event for retention-based eviction.
	finishedAt time.Time
}

// defaultMaxJobs bounds the tracked-job history of one daemon process.
const defaultMaxJobs = 1024

// maxReplayEvents bounds one job's SSE replay buffer: a long exact solve can
// emit thousands of incumbent events, and an unbounded replay buffer times
// the job history is an OOM waiting to happen.
const maxReplayEvents = 256

// reapInterval is how often the janitor scans for finished records past the
// retention horizon.
const reapInterval = 30 * time.Second

func newServer(solver *flowsyn.Solver, retention time.Duration) *server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &server{
		solver:    solver,
		started:   time.Now(),
		retention: retention,
		jobs:      make(map[string]*jobRecord),
		maxJobs:   defaultMaxJobs,
		ctx:       ctx,
		cancel:    cancel,
	}
	go s.janitor()
	return s
}

// janitor ages finished job records out of the history (server.retention)
// until the server's lifetime context ends.
func (s *server) janitor() {
	t := time.NewTicker(reapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.reapFinished(time.Now())
		}
	}
}

// reapFinished drops finished records whose terminal event is older than the
// retention horizon. Running or queued jobs are never dropped.
func (s *server) reapFinished(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retention <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		rec := s.jobs[id]
		rec.mu.Lock()
		stale := rec.ended && now.Sub(rec.finishedAt) > s.retention
		rec.mu.Unlock()
		if stale {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/jobs/{id}/resynthesize", s.handleResynthesize)
	mux.HandleFunc("POST /v1/jobs/{id}/recover", s.handleRecover)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// beginDrain stops accepting new jobs and cancels the server's lifetime
// context: queued jobs fail with context.Canceled at worker pickup and
// running solves abort at their next cancellation checkpoint.
func (s *server) beginDrain() {
	s.draining.Store(true)
	s.cancel()
}

// jobRequest is the submit payload: a built-in benchmark or an inline assay
// document, plus optional option overrides.
type jobRequest struct {
	Name string `json:"name,omitempty"`
	// Benchmark selects a built-in assay (PCR, IVD, CPA, RA30, RA70, RA100)
	// together with its paper options; Assay carries an inline sequencing
	// graph in the stable assay JSON schema. Exactly one must be set.
	Benchmark string          `json:"benchmark,omitempty"`
	Assay     json.RawMessage `json:"assay,omitempty"`
	Options   *jobOptions     `json:"options,omitempty"`
	// Tenant attributes the job for per-tenant quotas and admission
	// accounting; Priority orders admission (higher first, 0 normal);
	// DeadlineMS, if positive, sets the job deadline this many milliseconds
	// from submission (earliest-deadline-first within a priority class, and
	// the job expires if still queued past it).
	Tenant     string `json:"tenant,omitempty"`
	Priority   int    `json:"priority,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
}

// jobOptions mirrors flowsyn.Options with JSON-friendly field encodings;
// nil/omitted fields keep the benchmark or library defaults.
type jobOptions struct {
	Devices        *int   `json:"devices,omitempty"`
	Transport      *int   `json:"transport,omitempty"`
	GridRows       *int   `json:"grid_rows,omitempty"`
	GridCols       *int   `json:"grid_cols,omitempty"`
	Objective      string `json:"objective,omitempty"` // "time+storage" (default) | "time"
	Engine         string `json:"engine,omitempty"`    // "auto" (default) | "heuristic" | "exact-ilp"
	ILPTimeLimitMS *int64 `json:"ilp_time_limit_ms,omitempty"`
	ModelIO        *bool  `json:"model_io,omitempty"`
	Verify         *bool  `json:"verify,omitempty"`
	Storage        string `json:"storage,omitempty"`     // "distributed" (default) | "dedicated" | "hybrid"
	CacheSlots     *int   `json:"cache_slots,omitempty"` // hybrid channel-cache slots (0 = default)
	Eviction       string `json:"eviction,omitempty"`    // hybrid eviction: "lru" | "earliest-next-fetch"
}

func (o *jobOptions) apply(base flowsyn.Options) (flowsyn.Options, error) {
	if o == nil {
		return base, nil
	}
	if o.Devices != nil {
		base.Devices = *o.Devices
	}
	if o.Transport != nil {
		base.Transport = *o.Transport
	}
	if o.GridRows != nil {
		base.GridRows = *o.GridRows
	}
	if o.GridCols != nil {
		base.GridCols = *o.GridCols
	}
	switch o.Objective {
	case "", "time+storage":
	case "time":
		base.Objective = flowsyn.MinimizeTimeOnly
	default:
		return base, fmt.Errorf("unknown objective %q (want \"time+storage\" or \"time\")", o.Objective)
	}
	switch o.Engine {
	case "", "auto":
	case "heuristic":
		base.Engine = flowsyn.HeuristicEngine
	case "exact-ilp":
		base.Engine = flowsyn.ILPEngine
	default:
		return base, fmt.Errorf("unknown engine %q (want \"auto\", \"heuristic\" or \"exact-ilp\")", o.Engine)
	}
	if o.ILPTimeLimitMS != nil {
		base.ILPTimeLimit = time.Duration(*o.ILPTimeLimitMS) * time.Millisecond
	}
	if o.ModelIO != nil {
		base.ModelIO = *o.ModelIO
	}
	if o.Verify != nil {
		base.Verify = *o.Verify
	}
	if o.Storage != "" {
		pol, err := flowsyn.ParseStoragePolicy(o.Storage)
		if err != nil {
			return base, err
		}
		base.Storage = pol
	}
	if o.CacheSlots != nil {
		base.CacheSlots = *o.CacheSlots
	}
	if o.Eviction != "" {
		base.Eviction = o.Eviction
	}
	return base, nil
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeSubmitError(w, http.StatusServiceUnavailable, "daemon draining, not accepting jobs")
		return
	}
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	rec, status, err := s.submit(req)
	if err != nil {
		s.writeSubmitError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, s.submitResponse(rec))
}

func (s *server) submitResponse(rec *jobRecord) map[string]any {
	return map[string]any{
		"id":     rec.id,
		"name":   rec.name,
		"status": "/v1/jobs/" + rec.id,
		"result": "/v1/jobs/" + rec.id + "/result",
		"stream": "/v1/jobs/" + rec.id + "/stream",
	}
}

func (s *server) submit(req jobRequest) (*jobRecord, int, error) {
	var (
		a    *flowsyn.Assay
		opts flowsyn.Options
		err  error
	)
	switch {
	case req.Benchmark != "" && len(req.Assay) > 0:
		return nil, http.StatusBadRequest, errors.New("set either benchmark or assay, not both")
	case req.Benchmark != "":
		a, opts, err = flowsyn.Benchmark(req.Benchmark)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
	case len(req.Assay) > 0:
		a, err = flowsyn.ReadAssay(bytes.NewReader(req.Assay))
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
	default:
		return nil, http.StatusBadRequest, errors.New("missing assay: set benchmark or assay")
	}
	if opts, err = req.Options.apply(opts); err != nil {
		return nil, http.StatusBadRequest, err
	}
	job := flowsyn.Job{
		Name:     req.Name,
		Assay:    a,
		Options:  opts,
		Tenant:   req.Tenant,
		Priority: req.Priority,
	}
	if req.DeadlineMS > 0 {
		job.Deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	ticket, err := s.solver.Submit(s.ctx, job)
	if err != nil {
		return nil, submitErrorStatus(err), err
	}
	return s.track(ticket), 0, nil
}

func submitErrorStatus(err error) int {
	var oe *flowsyn.OptionError
	switch {
	case errors.As(err, &oe):
		return http.StatusBadRequest
	case errors.Is(err, flowsyn.ErrQueueFull), errors.Is(err, flowsyn.ErrTenantQuota):
		return http.StatusTooManyRequests
	case errors.Is(err, flowsyn.ErrSolverClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// retryAfterSeconds estimates when admission pressure should have cleared:
// the current queue times the observed mean cold solve wall, clamped to
// [1s, 60s]. Advisory — clients may retry sooner.
func (s *server) retryAfterSeconds() int {
	st := s.solver.Stats()
	avgMS := 100.0 // optimistic default before any cold solve finished
	if st.ColdWall.Count > 0 {
		avgMS = st.ColdWall.SumMS / float64(st.ColdWall.Count)
	}
	secs := int(float64(st.Queued)*avgMS/1000 + 0.5)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// writeSubmitError writes an admission failure, attaching Retry-After on
// overload statuses (429/503) so well-behaved clients back off usefully.
func (s *server) writeSubmitError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
	}
	writeError(w, status, msg)
}

// track registers a ticket and starts its event pump.
func (s *server) track(ticket *flowsyn.Ticket) *jobRecord {
	rec := &jobRecord{
		id:      fmt.Sprintf("job-%d", s.nextID.Add(1)),
		name:    ticket.Name(),
		ticket:  ticket,
		changed: make(chan struct{}),
	}
	s.mu.Lock()
	s.jobs[rec.id] = rec
	s.order = append(s.order, rec.id)
	s.evictLocked()
	s.mu.Unlock()
	go rec.pump()
	return rec
}

// evictLocked drops the oldest finished records once the history bound is
// exceeded. Running or queued jobs are never dropped — they stay addressable
// until they terminate and age out.
func (s *server) evictLocked() {
	if len(s.jobs) <= s.maxJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		rec := s.jobs[id]
		finished := false
		select {
		case <-rec.ticket.Done():
			finished = true
		default:
		}
		if finished && len(s.jobs) > s.maxJobs {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// pump drains the ticket's event stream into the bounded replay buffer,
// aging the oldest events out of the front once it is full.
func (r *jobRecord) pump() {
	for e := range r.ticket.Events() {
		r.mu.Lock()
		r.appendEvent(e)
		close(r.changed)
		r.changed = make(chan struct{})
		r.mu.Unlock()
	}
	r.mu.Lock()
	r.ended = true
	r.finishedAt = time.Now()
	close(r.changed)
	r.changed = make(chan struct{})
	r.mu.Unlock()
}

// appendEvent adds one event to the bounded replay buffer, aging the oldest
// out of the front once it is full. Compaction copies into a fresh backing
// array so snapshot slices handed to stream readers outside the lock stay
// valid. Caller holds r.mu.
func (r *jobRecord) appendEvent(e flowsyn.Progress) {
	r.events = append(r.events, e)
	if len(r.events) > maxReplayEvents {
		over := len(r.events) - maxReplayEvents
		r.events = append(r.events[:0:0], r.events[over:]...)
		r.dropped += over
	}
}

func (s *server) record(r *http.Request) *jobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[r.PathValue("id")]
}

// state summarizes a job's lifecycle for the status document.
func (r *jobRecord) state() string {
	select {
	case <-r.ticket.Done():
		if _, err := r.ticket.Result(); err != nil {
			return "failed"
		}
		return "done"
	default:
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.events {
		if e.Kind != flowsyn.ProgressQueued {
			return "running"
		}
	}
	return "queued"
}

func jobStatsJSON(js flowsyn.JobStats) map[string]any {
	return map[string]any{
		"queue_wait_ms":      float64(js.QueueWait.Microseconds()) / 1e3,
		"runtime_ms":         float64(js.Runtime.Microseconds()) / 1e3,
		"cache_hit":          js.CacheHit,
		"schedule_cache_hit": js.ScheduleCacheHit,
		"coalesced":          js.Coalesced,
		"store_hit":          js.StoreHit,
		"lease_wait_ms":      float64(js.LeaseWait.Microseconds()) / 1e3,
		"events":             js.Events,
		"dropped_events":     js.DroppedEvents,
		"reused_ops":         js.ReusedOps,
		"edited_ops":         js.EditedOps,
	}
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	rec := s.record(r)
	if rec == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	doc := map[string]any{
		"id":    rec.id,
		"name":  rec.name,
		"state": rec.state(),
	}
	if res, err := rec.ticket.Result(); err == nil {
		doc["summary"] = res.Summary()
		doc["stats"] = jobStatsJSON(rec.ticket.Stats())
	} else if !errors.Is(err, flowsyn.ErrJobPending) {
		doc["error"] = err.Error()
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	rec := s.record(r)
	if rec == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	res, err := rec.ticket.Result()
	switch {
	case errors.Is(err, flowsyn.ErrJobPending):
		writeError(w, http.StatusConflict, "job still "+rec.state())
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"id": rec.id, "state": "failed", "error": err.Error(),
		})
		return
	}
	dr, de, dp := res.ChipDimensions()
	doc := map[string]any{
		"id":               rec.id,
		"name":             rec.name,
		"state":            "done",
		"summary":          res.Summary(),
		"makespan_s":       res.Makespan(),
		"stores":           res.StoreCount(),
		"storage_capacity": res.StorageCapacity(),
		"transports":       res.Transports(),
		"channel_segments": res.ChannelSegments(),
		"valves":           res.Valves(),
		"edge_ratio":       res.EdgeRatio(),
		"valve_ratio":      res.ValveRatio(),
		"dimensions":       map[string]string{"after_synthesis": dr, "after_devices": de, "compressed": dp},
		"verified":         res.Verified(),
		"stats":            jobStatsJSON(rec.ticket.Stats()),
	}
	if pol := res.StoragePolicy(); pol != flowsyn.DistributedStorage {
		doc["storage"] = map[string]any{
			"strategy":           pol.String(),
			"unit_stores":        res.UnitStoreCount(),
			"unit_cells":         res.UnitCells(),
			"unit_valves":        res.UnitValves(),
			"port_queue_delay_s": res.UnitQueueDelay(),
		}
	}
	if rs := res.Recovery(); rs != nil {
		doc["recovery"] = map[string]any{
			"fault":               rs.Fault.String(),
			"preserved_ops":       rs.PreservedOps,
			"preserved_routes":    rs.PreservedRoutes,
			"rerouted_transports": rs.ReroutedTransports,
			"old_makespan_s":      rs.OldMakespan,
			"new_makespan_s":      rs.NewMakespan,
			"makespan_delta_s":    rs.MakespanDelta,
		}
	}
	var stages []map[string]any
	for _, st := range res.StageTimings() {
		stages = append(stages, map[string]any{
			"stage": st.Name, "ms": float64(st.Duration.Microseconds()) / 1e3,
		})
	}
	doc["stage_timings"] = stages
	if sv := res.SolverStats(); sv != nil {
		doc["solver"] = map[string]any{
			"status":          sv.Status,
			"objective":       sv.Objective,
			"nodes":           sv.Nodes,
			"iterations":      sv.Iterations,
			"warm_start_rate": sv.WarmStartRate,
			"gap":             sv.Gap,
			"kernel":          sv.Kernel,
			"workers":         sv.Workers,
			"runtime_ms":      float64(sv.Runtime.Microseconds()) / 1e3,
			"winner":          sv.Winner,
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleStream serves the job's progress events as server-sent events,
// replaying the full history for late subscribers and following live until
// the terminal done/failed event.
func (s *server) handleStream(w http.ResponseWriter, r *http.Request) {
	rec := s.record(r)
	if rec == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// idx is the subscriber's absolute stream position; the replay buffer is
	// bounded, so a slow subscriber may find its position aged out and skips
	// forward (Seq gaps mark the lost events, as in the solver's own stream).
	idx := 0
	for {
		rec.mu.Lock()
		start := idx - rec.dropped
		if start < 0 {
			idx = rec.dropped
			start = 0
		}
		pending := rec.events[start:]
		ch := rec.changed
		ended := rec.ended
		rec.mu.Unlock()

		for _, e := range pending {
			data, err := json.Marshal(map[string]any{
				"seq":       e.Seq,
				"kind":      e.Kind,
				"time":      e.Time.UTC().Format(time.RFC3339Nano),
				"stage":     e.Stage,
				"ms":        float64(e.Duration.Microseconds()) / 1e3,
				"makespan":  e.Makespan,
				"objective": e.Objective,
				"nodes":     e.Nodes,
				"gap":       e.Gap,
				"error":     e.Err,
			})
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Kind, data)
		}
		idx += len(pending)
		fl.Flush()
		if ended && len(pending) == 0 {
			return
		}
		if !ended && len(pending) == 0 {
			select {
			case <-ch:
			case <-r.Context().Done():
				return
			}
		}
	}
}

func (s *server) handleResynthesize(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "daemon draining, not accepting jobs")
		return
	}
	rec := s.record(r)
	if rec == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	var req struct {
		Assay json.RawMessage `json:"assay"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	if len(req.Assay) == 0 {
		writeError(w, http.StatusBadRequest, "missing edited assay")
		return
	}
	edited, err := flowsyn.ReadAssay(bytes.NewReader(req.Assay))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ticket, err := s.solver.Resynthesize(s.ctx, rec.ticket, edited)
	if err != nil {
		status := http.StatusConflict // prior unfinished/failed
		if errors.Is(err, flowsyn.ErrQueueFull) || errors.Is(err, flowsyn.ErrTenantQuota) || errors.Is(err, flowsyn.ErrSolverClosed) {
			status = submitErrorStatus(err)
		}
		s.writeSubmitError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, s.submitResponse(s.track(ticket)))
}

// faultRequest is the recover payload: one mid-execution fault to inject
// into a finished job's execution.
type faultRequest struct {
	Kind    string `json:"kind"` // "device" | "channel" | "storage"
	Time    int    `json:"time"` // injection instant, seconds from assay start
	Device  int    `json:"device,omitempty"`
	Channel int    `json:"channel,omitempty"`
}

func (f faultRequest) fault() (flowsyn.Fault, error) {
	out := flowsyn.Fault{Time: f.Time, Device: f.Device, Channel: f.Channel}
	switch f.Kind {
	case "device":
		out.Kind = flowsyn.DeviceFault
	case "channel":
		out.Kind = flowsyn.ChannelFault
	case "storage":
		out.Kind = flowsyn.StorageFault
	default:
		return out, fmt.Errorf("unknown fault kind %q (want \"device\", \"channel\" or \"storage\")", f.Kind)
	}
	return out, nil
}

// handleRecover injects a fault into a finished job's execution and submits
// the online re-synthesis of its suffix (see flowsyn.Solver.Recover). The
// response is a fresh trackable job; its result document carries a
// "recovery" block with the preservation and makespan metrics.
func (s *server) handleRecover(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "daemon draining, not accepting jobs")
		return
	}
	rec := s.record(r)
	if rec == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	var req faultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	fault, err := req.fault()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ticket, err := s.solver.Recover(s.ctx, rec.ticket, fault)
	if err != nil {
		status := http.StatusBadRequest // fault rejected against the prior plan
		switch {
		case errors.Is(err, flowsyn.ErrJobPending):
			status = http.StatusConflict
		case errors.Is(err, flowsyn.ErrQueueFull), errors.Is(err, flowsyn.ErrTenantQuota), errors.Is(err, flowsyn.ErrSolverClosed):
			status = submitErrorStatus(err)
		}
		s.writeSubmitError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, s.submitResponse(s.track(ticket)))
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.solver.Stats()
	s.mu.Lock()
	tracked := len(s.jobs)
	s.mu.Unlock()
	doc := map[string]any{
		"uptime_s":             time.Since(s.started).Seconds(),
		"draining":             s.draining.Load(),
		"jobs_tracked":         tracked,
		"submitted":            st.Submitted,
		"completed":            st.Completed,
		"failed":               st.Failed,
		"expired":              st.Expired,
		"result_cache_hits":    st.ResultCacheHits,
		"result_cache_misses":  st.ResultCacheMisses,
		"schedule_cache_hits":  st.ScheduleCacheHits,
		"schedule_solves":      st.ScheduleSolves,
		"store_hits":           st.StoreHits,
		"store_puts":           st.StorePuts,
		"store_errors":         st.StoreErrors,
		"lease_waits":          st.LeaseWaits,
		"lease_wait_total_ms":  float64(st.LeaseWaitTotal.Microseconds()) / 1e3,
		"coalesced":            st.Coalesced,
		"in_flight":            st.InFlight,
		"queued":               st.Queued,
		"events_dropped":       st.EventsDropped,
		"cold_solves_observed": st.ColdWall.Count,
		"warm_serves_observed": st.WarmWall.Count,
	}
	if len(st.Tenants) > 0 {
		tenants := make(map[string]any, len(st.Tenants))
		for name, ts := range st.Tenants {
			if name == "" {
				name = "default"
			}
			tenants[name] = map[string]any{
				"admitted":       ts.Admitted,
				"rejected_quota": ts.RejectedQuota,
				"rejected_full":  ts.RejectedFull,
				"completed":      ts.Completed,
				"failed":         ts.Failed,
				"expired":        ts.Expired,
				"queued":         ts.Queued,
			}
		}
		doc["tenants"] = tenants
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"draining": s.draining.Load(),
	})
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": strings.TrimSpace(msg)})
}
