package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"flowsyn"
)

// TestMetricsEndpoint scrapes /metrics after one attributed job and checks
// the Prometheus exposition carries the serve-path metric families.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	resp, doc := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"benchmark": "PCR", "tenant": "acme", "priority": 3,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, doc)
	}
	waitForState(t, ts.URL, doc["id"].(string), "done")

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if len(text) == 0 {
		t.Fatal("/metrics returned an empty body")
	}
	for _, want := range []string{
		"flowsyn_jobs_submitted_total 1",
		"flowsyn_jobs_completed_total 1",
		"flowsyn_queue_depth",
		`flowsyn_cache_hits_total{tier="store"}`,
		"flowsyn_schedule_solves_total 1",
		"flowsyn_store_puts_total",
		"flowsyn_lease_waits_total",
		`flowsyn_solve_wall_seconds_bucket{tier="cold",le="+Inf"} 1`,
		`flowsyn_solve_wall_seconds_count{tier="cold"} 1`,
		`flowsyn_tenant_admitted_total{tenant="acme"} 1`,
		`flowsyn_tenant_completed_total{tenant="acme"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSubmitAdmissionFields drives tenant/priority/deadline_ms through the
// wire format and checks the stats document attributes the tenant.
func TestSubmitAdmissionFields(t *testing.T) {
	_, ts := newTestServer(t)

	resp, doc := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"benchmark":   "PCR",
		"tenant":      "acme",
		"priority":    5,
		"deadline_ms": 60_000,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, doc)
	}
	waitForState(t, ts.URL, doc["id"].(string), "done")

	_, stats := getJSON(t, ts.URL+"/v1/stats")
	tenants, ok := stats["tenants"].(map[string]any)
	if !ok {
		t.Fatalf("stats without tenants section: %v", stats)
	}
	acme, ok := tenants["acme"].(map[string]any)
	if !ok {
		t.Fatalf("tenant acme not attributed: %v", tenants)
	}
	if acme["admitted"] != float64(1) || acme["completed"] != float64(1) {
		t.Errorf("tenant counters off: %v", acme)
	}
}

func TestSubmitErrorStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{flowsyn.ErrQueueFull, http.StatusTooManyRequests},
		{flowsyn.ErrTenantQuota, http.StatusTooManyRequests},
		{fmt.Errorf("wrapped: %w", flowsyn.ErrTenantQuota), http.StatusTooManyRequests},
		{flowsyn.ErrSolverClosed, http.StatusServiceUnavailable},
		{fmt.Errorf("anything else"), http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := submitErrorStatus(c.err); got != c.want {
			t.Errorf("submitErrorStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// Overload statuses must carry an advisory Retry-After; client errors must
// not.
func TestWriteSubmitErrorRetryAfter(t *testing.T) {
	srv, _ := newTestServer(t)

	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		w := httptest.NewRecorder()
		srv.writeSubmitError(w, status, "overloaded")
		ra := w.Header().Get("Retry-After")
		if ra == "" {
			t.Fatalf("status %d: no Retry-After header", status)
		}
		secs, err := strconv.Atoi(ra)
		if err != nil || secs < 1 || secs > 60 {
			t.Errorf("status %d: Retry-After %q outside [1,60]", status, ra)
		}
	}

	w := httptest.NewRecorder()
	srv.writeSubmitError(w, http.StatusBadRequest, "bad options")
	if ra := w.Header().Get("Retry-After"); ra != "" {
		t.Errorf("400 carries Retry-After %q", ra)
	}
}

// TestReplayBufferBounded exercises the SSE replay compaction: the buffer
// never exceeds maxReplayEvents, dropped counts the aged-out prefix, and a
// snapshot slice taken before compaction keeps its contents (stream readers
// hold such snapshots outside the lock).
func TestReplayBufferBounded(t *testing.T) {
	rec := &jobRecord{}
	total := maxReplayEvents + 44
	var snapshot []flowsyn.Progress
	for i := 0; i < total; i++ {
		if i == maxReplayEvents {
			snapshot = rec.events // full buffer, about to compact
		}
		rec.appendEvent(flowsyn.Progress{Seq: i})
	}
	if len(rec.events) != maxReplayEvents {
		t.Fatalf("buffer len %d, want %d", len(rec.events), maxReplayEvents)
	}
	if rec.dropped != 44 {
		t.Fatalf("dropped %d, want 44", rec.dropped)
	}
	if got := rec.events[0].Seq; got != 44 {
		t.Errorf("front of buffer Seq %d, want 44", got)
	}
	if got := rec.events[len(rec.events)-1].Seq; got != total-1 {
		t.Errorf("back of buffer Seq %d, want %d", got, total-1)
	}
	// The pre-compaction snapshot still reads 0..maxReplayEvents-1.
	for i, e := range snapshot {
		if e.Seq != i {
			t.Fatalf("snapshot[%d].Seq = %d: compaction overwrote a reader's slice", i, e.Seq)
		}
	}
}

// TestReapFinished checks the janitor's eviction rule directly: finished
// records past retention vanish, running records and fresh finishes stay.
func TestReapFinished(t *testing.T) {
	solver, err := flowsyn.New(flowsyn.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(solver, 50*time.Millisecond)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		ts.Close()
		solver.Close()
	})

	resp, doc := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "PCR"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, doc)
	}
	id := doc["id"].(string)
	waitForState(t, ts.URL, id, "done")

	// The pump marks the record ended shortly after the terminal event.
	deadline := time.Now().Add(2 * time.Second)
	for {
		srv.mu.Lock()
		rec := srv.jobs[id]
		srv.mu.Unlock()
		rec.mu.Lock()
		ended := rec.ended
		rec.mu.Unlock()
		if ended {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("record never marked ended")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A synthetic still-running record must survive any horizon.
	srv.mu.Lock()
	srv.jobs["running"] = &jobRecord{id: "running"}
	srv.order = append(srv.order, "running")
	srv.mu.Unlock()

	// Within retention: nothing reaped.
	srv.reapFinished(time.Now())
	if r, _ := getJSON(t, ts.URL+"/v1/jobs/"+id); r.StatusCode != http.StatusOK {
		t.Fatalf("fresh finish reaped early: status %d", r.StatusCode)
	}

	// Far past retention: the finished record goes, the running one stays.
	srv.reapFinished(time.Now().Add(time.Hour))
	if r, _ := getJSON(t, ts.URL+"/v1/jobs/"+id); r.StatusCode != http.StatusNotFound {
		t.Fatalf("finished record not reaped: status %d", r.StatusCode)
	}
	srv.mu.Lock()
	_, stillThere := srv.jobs["running"]
	srv.mu.Unlock()
	if !stillThere {
		t.Fatal("running record reaped")
	}

	// Retention <= 0 disables reaping entirely.
	srv.mu.Lock()
	srv.retention = 0
	srv.jobs["done-forever"] = &jobRecord{id: "done-forever", ended: true}
	srv.order = append(srv.order, "done-forever")
	srv.mu.Unlock()
	srv.reapFinished(time.Now().Add(24 * time.Hour))
	srv.mu.Lock()
	_, kept := srv.jobs["done-forever"]
	srv.mu.Unlock()
	if !kept {
		t.Fatal("retention 0 should keep records forever")
	}
}
