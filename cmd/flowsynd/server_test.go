package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flowsyn"
)

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	solver, err := flowsyn.New(flowsyn.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(solver, 0)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		ts.Close()
		solver.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding %s body: %v", resp.Request.URL, err)
	}
	return doc
}

// TestDaemonSubmitStreamResult is the end-to-end acceptance path: submit PCR,
// follow the SSE progress stream to the terminal event, then fetch the
// finished result document.
func TestDaemonSubmitStreamResult(t *testing.T) {
	_, ts := newTestServer(t)

	resp, doc := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "PCR"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, doc)
	}
	id, _ := doc["id"].(string)
	if id == "" {
		t.Fatalf("submit response without id: %v", doc)
	}

	// Follow the stream until the terminal event.
	streamResp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("stream content type %q", ct)
	}
	var kinds []string
	var lastData map[string]any
	scanner := bufio.NewScanner(streamResp.Body)
	deadline := time.After(2 * time.Minute)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for scanner.Scan() {
			lines <- scanner.Text()
		}
	}()
	terminal := false
scan:
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				break scan
			}
			switch {
			case strings.HasPrefix(line, "event: "):
				kind := strings.TrimPrefix(line, "event: ")
				kinds = append(kinds, kind)
				terminal = kind == flowsyn.ProgressDone || kind == flowsyn.ProgressFailed
			case strings.HasPrefix(line, "data: "):
				lastData = map[string]any{}
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &lastData); err != nil {
					t.Fatalf("bad SSE data %q: %v", line, err)
				}
				if terminal {
					break scan
				}
			}
		case <-deadline:
			t.Fatalf("stream did not terminate; kinds so far: %v", kinds)
		}
	}
	if len(kinds) < 3 {
		t.Fatalf("only %d stream events: %v", len(kinds), kinds)
	}
	if kinds[0] != flowsyn.ProgressQueued {
		t.Errorf("first stream event %q, want queued", kinds[0])
	}
	if last := kinds[len(kinds)-1]; last != flowsyn.ProgressDone {
		t.Fatalf("terminal stream event %q: %v", last, lastData)
	}
	if mk, _ := lastData["makespan"].(float64); mk <= 0 {
		t.Errorf("done event carries no makespan: %v", lastData)
	}

	// Status: done, with summary and service stats.
	resp, status := getJSON(t, ts.URL+"/v1/jobs/"+id)
	if resp.StatusCode != http.StatusOK || status["state"] != "done" {
		t.Fatalf("status %d %v", resp.StatusCode, status)
	}
	if _, ok := status["summary"].(string); !ok {
		t.Errorf("status without summary: %v", status)
	}

	// Result document.
	resp, result := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %v", resp.StatusCode, result)
	}
	if mk, _ := result["makespan_s"].(float64); mk <= 0 {
		t.Errorf("result without makespan: %v", result)
	}
	if _, ok := result["stats"].(map[string]any); !ok {
		t.Errorf("result without service stats: %v", result)
	}

	// A second identical submission is served from cache.
	_, doc2 := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "PCR"})
	id2, _ := doc2["id"].(string)
	waitForState(t, ts.URL, id2, "done")
	_, res2 := getJSON(t, ts.URL+"/v1/jobs/"+id2+"/result")
	stats2, _ := res2["stats"].(map[string]any)
	if hit, _ := stats2["cache_hit"].(bool); !hit {
		t.Errorf("repeated submission missed the cache: %v", stats2)
	}

	// Session counters reflect the cache hit.
	_, sessionStats := getJSON(t, ts.URL+"/v1/stats")
	if hits, _ := sessionStats["result_cache_hits"].(float64); hits < 1 {
		t.Errorf("session stats report no cache hits: %v", sessionStats)
	}
}

func waitForState(t *testing.T, base, id, want string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		_, doc := getJSON(t, base+"/v1/jobs/"+id)
		if doc["state"] == want || doc["state"] == "failed" {
			if doc["state"] != want {
				t.Fatalf("job %s reached %v, want %s: %v", id, doc["state"], want, doc)
			}
			return doc
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return nil
}

func TestDaemonInlineAssayAndOptions(t *testing.T) {
	_, ts := newTestServer(t)
	assayJSON := map[string]any{
		"name": "custom",
		"operations": []map[string]any{
			{"name": "mix1", "duration": 30, "inputs": 2},
			{"name": "heat1", "kind": "heat", "duration": 60},
		},
		"edges": [][2]string{{"mix1", "heat1"}},
	}
	resp, doc := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"name":  "custom-run",
		"assay": assayJSON,
		"options": map[string]any{
			"devices": 2, "engine": "heuristic", "grid_rows": 4, "grid_cols": 4,
		},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, doc)
	}
	id, _ := doc["id"].(string)
	waitForState(t, ts.URL, id, "done")
	_, result := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result")
	if result["name"] != "custom-run" {
		t.Errorf("name %v", result["name"])
	}
}

func TestDaemonResynthesize(t *testing.T) {
	_, ts := newTestServer(t)
	_, doc := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"benchmark": "PCR",
		"options":   map[string]any{"engine": "heuristic"},
	})
	id, _ := doc["id"].(string)
	waitForState(t, ts.URL, id, "done")

	// Edit PCR: serialize the benchmark, tweak one duration via the JSON.
	a, _, err := flowsyn.Benchmark("PCR")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var edited map[string]any
	if err := json.Unmarshal(buf.Bytes(), &edited); err != nil {
		t.Fatal(err)
	}
	ops := edited["operations"].([]any)
	first := ops[0].(map[string]any)
	first["duration"] = first["duration"].(float64) + 25

	resp, rdoc := postJSON(t, ts.URL+"/v1/jobs/"+id+"/resynthesize", map[string]any{"assay": edited})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resynthesize status %d: %v", resp.StatusCode, rdoc)
	}
	rid, _ := rdoc["id"].(string)
	waitForState(t, ts.URL, rid, "done")
	_, result := getJSON(t, ts.URL+"/v1/jobs/"+rid+"/result")
	stats, _ := result["stats"].(map[string]any)
	if reused, _ := stats["reused_ops"].(float64); reused == 0 {
		t.Errorf("resynthesis reused nothing: %v", stats)
	}
}

func TestDaemonResynthesizeErrorPaths(t *testing.T) {
	srv, ts := newTestServer(t)
	_, doc := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"benchmark": "PCR",
		"options":   map[string]any{"engine": "heuristic"},
	})
	id, _ := doc["id"].(string)
	waitForState(t, ts.URL, id, "done")

	if resp, _ := postJSON(t, ts.URL+"/v1/jobs/nope/resynthesize", map[string]any{"assay": map[string]any{}}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job resynthesize: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs/"+id+"/resynthesize", map[string]any{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing assay: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs/"+id+"/resynthesize", map[string]any{"assay": map[string]any{"name": "empty"}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid assay: %d", resp.StatusCode)
	}
	srv.beginDrain()
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs/"+id+"/resynthesize", map[string]any{"assay": map[string]any{}}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining resynthesize: %d", resp.StatusCode)
	}
}

func TestDaemonFullOptionSurface(t *testing.T) {
	_, ts := newTestServer(t)
	resp, doc := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"benchmark": "PCR",
		"options": map[string]any{
			"devices": 2, "transport": 8, "grid_rows": 5, "grid_cols": 5,
			"objective": "time", "engine": "heuristic",
			"ilp_time_limit_ms": 5000, "model_io": false, "verify": true,
		},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, doc)
	}
	id, _ := doc["id"].(string)
	waitForState(t, ts.URL, id, "done")
	_, result := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result")
	if result["verified"] != true {
		t.Errorf("verify option not honored: %v", result["verified"])
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"benchmark": "PCR", "options": map[string]any{"objective": "fastest"},
	}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad objective: %d", resp.StatusCode)
	}
}

func TestDaemonErrorPaths(t *testing.T) {
	srv, ts := newTestServer(t)

	cases := []struct {
		name   string
		body   any
		status int
	}{
		{"empty body", map[string]any{}, http.StatusBadRequest},
		{"unknown benchmark", map[string]any{"benchmark": "NOPE"}, http.StatusBadRequest},
		{"both sources", map[string]any{"benchmark": "PCR", "assay": map[string]any{"name": "x"}}, http.StatusBadRequest},
		{"bad engine", map[string]any{"benchmark": "PCR", "options": map[string]any{"engine": "quantum"}}, http.StatusBadRequest},
		{"bad options", map[string]any{"benchmark": "PCR", "options": map[string]any{"devices": -1}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, doc := postJSON(t, ts.URL+"/v1/jobs", c.body)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (%v)", c.name, resp.StatusCode, c.status, doc)
		}
		if _, ok := doc["error"].(string); !ok {
			t.Errorf("%s: no error message: %v", c.name, doc)
		}
	}

	if resp, _ := getJSON(t, ts.URL+"/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d", resp.StatusCode)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/jobs/nope/result"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job result %d", resp.StatusCode)
	}

	// Health and drain.
	resp, health := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || health["ok"] != true {
		t.Fatalf("health %d %v", resp.StatusCode, health)
	}
	srv.beginDrain()
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"benchmark": "PCR"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining submit status %d, want 503", resp.StatusCode)
	}
	_, health = getJSON(t, ts.URL+"/healthz")
	if health["draining"] != true {
		t.Errorf("health does not report draining: %v", health)
	}
}

// TestDaemonRecover injects a device fault into a finished job through the
// recover endpoint and checks the recovered job's result document carries the
// recovery block, plus the endpoint's error paths.
func TestDaemonRecover(t *testing.T) {
	srv, ts := newTestServer(t)
	_, doc := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"benchmark": "CPA",
		"options":   map[string]any{"engine": "heuristic", "verify": true},
	})
	id, _ := doc["id"].(string)
	waitForState(t, ts.URL, id, "done")
	_, prior := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result")
	makespan := int(prior["makespan_s"].(float64))

	resp, rdoc := postJSON(t, ts.URL+"/v1/jobs/"+id+"/recover", map[string]any{
		"kind": "device", "time": makespan / 2, "device": 1,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("recover status %d: %v", resp.StatusCode, rdoc)
	}
	rid, _ := rdoc["id"].(string)
	waitForState(t, ts.URL, rid, "done")
	_, result := getJSON(t, ts.URL+"/v1/jobs/"+rid+"/result")
	recovery, ok := result["recovery"].(map[string]any)
	if !ok {
		t.Fatalf("recovered result without recovery block: %v", result)
	}
	if f, _ := recovery["fault"].(string); f != fmt.Sprintf("device 1 @ t=%d", makespan/2) {
		t.Errorf("recovery fault %q", f)
	}
	if old, _ := recovery["old_makespan_s"].(float64); int(old) != makespan {
		t.Errorf("recovery old makespan %v, prior had %d", recovery["old_makespan_s"], makespan)
	}
	if result["verified"] != true {
		t.Errorf("recovery not verified: %v", result["verified"])
	}
	// An ordinary job's result document has no recovery block.
	if _, ok := prior["recovery"]; ok {
		t.Errorf("prior result carries a recovery block: %v", prior["recovery"])
	}

	// Error paths: unknown job, bad kind, fault the plan rejects, drain.
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs/nope/recover", map[string]any{"kind": "device"}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job recover: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs/"+id+"/recover", map[string]any{"kind": "meteor"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown fault kind: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs/"+id+"/recover", map[string]any{"kind": "device", "device": 99}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range device: %d", resp.StatusCode)
	}
	srv.beginDrain()
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs/"+id+"/recover", map[string]any{"kind": "device"}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining recover: %d", resp.StatusCode)
	}
}

// TestDaemonDrainCancelsJobs is the regression test for jobs being submitted
// under context.Background(): a drain must reach queued and running solver
// work. One worker is pinned by a long exact solve, a second job queues
// behind it; beginDrain cancels the server's job-lifetime context, so the
// queued job must fail with context.Canceled instead of running to
// completion.
func TestDaemonDrainCancelsJobs(t *testing.T) {
	solver, err := flowsyn.New(flowsyn.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(solver, 0)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		ts.Close()
		solver.Close()
	})

	// Job A pins the single worker: RA30 exact is far beyond the
	// exact-tractable size, so it solves until cancelled or timed out.
	_, docA := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"benchmark": "RA30",
		"options":   map[string]any{"engine": "exact-ilp", "ilp_time_limit_ms": 120000},
	})
	idA, _ := docA["id"].(string)
	if idA == "" {
		t.Fatalf("submit A: %v", docA)
	}
	// Job B queues behind it.
	_, docB := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"benchmark": "PCR",
		"options":   map[string]any{"engine": "heuristic"},
	})
	idB, _ := docB["id"].(string)
	if idB == "" {
		t.Fatalf("submit B: %v", docB)
	}

	// Wait until A is actually inside the worker, then drain.
	deadline := time.Now().Add(time.Minute)
	for {
		_, st := getJSON(t, ts.URL+"/v1/jobs/"+idA)
		if st["state"] == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job A never started running: %v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.beginDrain()

	// Both jobs must observe the cancellation: B at worker pickup, A at the
	// solver's next cancellation checkpoint.
	for _, id := range []string{idB, idA} {
		var st map[string]any
		for time.Now().Before(deadline) {
			_, st = getJSON(t, ts.URL+"/v1/jobs/"+id)
			if st["state"] == "failed" || st["state"] == "done" {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if st["state"] != "failed" {
			t.Fatalf("job %s state %v after drain, want failed", id, st["state"])
		}
		if msg, _ := st["error"].(string); !strings.Contains(msg, "context canceled") {
			t.Errorf("job %s failed with %q, want context.Canceled", id, msg)
		}
	}
}

// TestDaemonJobHistoryBounded submits more jobs than the tracking bound and
// checks the oldest finished records are evicted while recent ones survive.
func TestDaemonJobHistoryBounded(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.maxJobs = 2

	var ids []string
	for i := 0; i < 5; i++ {
		_, doc := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
			"benchmark": "PCR",
			"options":   map[string]any{"engine": "heuristic", "grid_rows": 4 + i, "grid_cols": 4 + i},
		})
		id, _ := doc["id"].(string)
		if id == "" {
			t.Fatalf("submit %d: %v", i, doc)
		}
		ids = append(ids, id)
		waitForState(t, ts.URL, id, "done")
	}

	srv.mu.Lock()
	tracked := len(srv.jobs)
	srv.mu.Unlock()
	if tracked > srv.maxJobs+1 {
		t.Errorf("tracking %d jobs, bound is %d", tracked, srv.maxJobs)
	}
	// The newest job must still be addressable; the oldest must be gone.
	if resp, _ := getJSON(t, ts.URL+"/v1/jobs/"+ids[len(ids)-1]); resp.StatusCode != http.StatusOK {
		t.Errorf("newest job evicted (status %d)", resp.StatusCode)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/jobs/"+ids[0]); resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest finished job still tracked (status %d)", resp.StatusCode)
	}
}

// TestDaemonLateStreamSubscriber fetches the stream only after the job is
// done: the replay buffer must serve the full history.
func TestDaemonLateStreamSubscriber(t *testing.T) {
	_, ts := newTestServer(t)
	_, doc := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"benchmark": "PCR",
		"options":   map[string]any{"engine": "heuristic"},
	})
	id, _ := doc["id"].(string)
	waitForState(t, ts.URL, id, "done")

	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/stream", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var kinds []string
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		if line := scanner.Text(); strings.HasPrefix(line, "event: ") {
			kinds = append(kinds, strings.TrimPrefix(line, "event: "))
		}
	}
	if len(kinds) == 0 || kinds[0] != flowsyn.ProgressQueued || kinds[len(kinds)-1] != flowsyn.ProgressDone {
		t.Errorf("late replay kinds: %v", kinds)
	}
}
