package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"flowsyn"
)

// benchRun is one (assay, engine) measurement in the -bench-json output.
type benchRun struct {
	Assay  string `json:"assay"`
	Engine string `json:"engine"`
	Ops    int    `json:"ops"`

	WallMS  float64 `json:"wall_ms"`  // full pipeline wall-clock
	SchedMS float64 `json:"sched_ms"` // schedule stage (the paper's t_s)

	Makespan int `json:"makespan"`
	Stores   int `json:"stores"`
	Segments int `json:"segments"`
	Valves   int `json:"valves"`

	// Solver is present exactly when the exact engine ran; its numeric
	// fields deliberately avoid omitempty so a proven-optimal gap of 0 (or
	// an all-cold warm-start rate of 0) stays distinguishable from missing
	// data in the trajectory.
	Solver *benchSolver `json:"solver,omitempty"`
}

// benchSolver is the MILP diagnostics block of one exact-engine run.
type benchSolver struct {
	Status        string  `json:"status"`
	Nodes         int     `json:"nodes"`
	Iterations    int     `json:"iterations"`
	WarmStartRate float64 `json:"warm_start_rate"`
	Gap           float64 `json:"gap"`
	PresolveCols  int     `json:"presolve_cols"`
	PresolveRows  int     `json:"presolve_rows"`
	Workers       int     `json:"workers"`
	Winner        string  `json:"winner"`

	// Basis-factorization kernel and node-propagation diagnostics (PR 4).
	Kernel           string  `json:"kernel,omitempty"`
	Refactorizations int     `json:"refactorizations"`
	FTUpdates        int     `json:"ft_updates"`
	FTRejected       int     `json:"ft_rejected"`
	FillRatio        float64 `json:"fill_ratio"`
	PropTightenings  int     `json:"prop_tightenings"`
	PropPrunes       int     `json:"prop_prunes"`
}

// benchFile is the schema of the machine-readable benchmark artifact; the
// perf trajectory across PRs compares these files.
type benchFile struct {
	Schema     string     `json:"schema"`
	Generated  string     `json:"generated"`
	GoVersion  string     `json:"go"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Notes      string     `json:"notes,omitempty"`
	Runs       []benchRun `json:"runs"`
}

// runBenchJSON synthesizes every requested assay once per engine, collecting
// wall-clock and solver statistics, and writes the JSON artifact.
func runBenchJSON(ctx context.Context, path, assays, notes string) error {
	names := flowsyn.BenchmarkNames()
	if assays != "" {
		names = nil
		for _, n := range strings.Split(assays, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	out := benchFile{
		Schema:     "flowsyn-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Notes:      notes,
	}
	for _, name := range names {
		for _, eng := range []struct {
			label  string
			engine flowsyn.Engine
		}{
			{"heuristic", flowsyn.HeuristicEngine},
			{"exact-ilp", flowsyn.ILPEngine},
		} {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			a, opts, err := flowsyn.Benchmark(name)
			if err != nil {
				return err
			}
			opts.Engine = eng.engine
			opts.ILPTimeLimit = 20 * time.Second
			start := time.Now()
			res, err := flowsyn.SynthesizeContext(ctx, a, opts)
			wall := time.Since(start)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, eng.label, err)
			}
			run := benchRun{
				Assay:    name,
				Engine:   eng.label,
				Ops:      a.NumOperations(),
				WallMS:   float64(wall.Microseconds()) / 1e3,
				SchedMS:  float64(res.SchedulingTime().Microseconds()) / 1e3,
				Makespan: res.Makespan(),
				Stores:   res.StoreCount(),
				Segments: res.ChannelSegments(),
				Valves:   res.Valves(),
			}
			if sv := res.SolverStats(); sv != nil {
				run.Solver = &benchSolver{
					Status:           sv.Status,
					Nodes:            sv.Nodes,
					Iterations:       sv.Iterations,
					WarmStartRate:    sv.WarmStartRate,
					Gap:              sv.Gap,
					PresolveCols:     sv.PresolveFixedCols,
					PresolveRows:     sv.PresolveRemovedRows,
					Workers:          sv.Workers,
					Winner:           sv.Winner,
					Kernel:           sv.Kernel,
					Refactorizations: sv.Refactorizations,
					FTUpdates:        sv.FTUpdates,
					FTRejected:       sv.FTUpdatesRejected,
					FillRatio:        sv.FillRatio,
					PropTightenings:  sv.PropagationTightenings,
					PropPrunes:       sv.PropagationPrunes,
				}
			}
			out.Runs = append(out.Runs, run)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmark runs to %s\n", len(out.Runs), path)
	return nil
}

// benchRegressLimit is the wall-clock regression factor the baseline check
// tolerates: CI machines differ from the machine that recorded the
// checked-in baseline, so only a >3× slowdown of a proven-optimal exact
// solve counts as a regression.
const benchRegressLimit = 3.0

// checkBenchRegression compares a fresh -bench-json emission against a
// checked-in baseline (e.g. BENCH_pr3.json). For every exact-ILP run the
// baseline proved optimal, the fresh run must reach the identical makespan
// and stay within benchRegressLimit of the baseline wall time; a heuristic
// run changing its makespan also fails, since those are fully deterministic.
func checkBenchRegression(freshPath, baselinePath string) error {
	read := func(path string) (*benchFile, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var f benchFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &f, nil
	}
	fresh, err := read(freshPath)
	if err != nil {
		return err
	}
	base, err := read(baselinePath)
	if err != nil {
		return err
	}
	freshRuns := make(map[[2]string]*benchRun, len(fresh.Runs))
	for i := range fresh.Runs {
		r := &fresh.Runs[i]
		freshRuns[[2]string{r.Assay, r.Engine}] = r
	}
	var failures []string
	checked := 0
	for i := range base.Runs {
		b := &base.Runs[i]
		f, ok := freshRuns[[2]string{b.Assay, b.Engine}]
		if !ok {
			continue
		}
		switch {
		case b.Engine == "exact-ilp" && b.Solver != nil && b.Solver.Status == "optimal":
			checked++
			if f.Makespan != b.Makespan {
				failures = append(failures, fmt.Sprintf(
					"%s/%s: proven-optimal makespan changed %d -> %d",
					b.Assay, b.Engine, b.Makespan, f.Makespan))
			}
			if f.WallMS > benchRegressLimit*b.WallMS {
				failures = append(failures, fmt.Sprintf(
					"%s/%s: wall time regressed %.3fms -> %.3fms (>%gx)",
					b.Assay, b.Engine, b.WallMS, f.WallMS, benchRegressLimit))
			}
		case b.Engine == "heuristic":
			checked++
			if f.Makespan != b.Makespan {
				failures = append(failures, fmt.Sprintf(
					"%s/%s: deterministic heuristic makespan changed %d -> %d",
					b.Assay, b.Engine, b.Makespan, f.Makespan))
			}
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "bench-regression: "+f)
		}
		return fmt.Errorf("%d benchmark regression(s) against %s", len(failures), baselinePath)
	}
	if checked == 0 {
		// A gate that matched nothing is not a passing gate: renamed engines,
		// a dropped assay, or an over-narrow -bench-assays filter would
		// otherwise keep CI green while checking nothing at all.
		return fmt.Errorf("no fresh run matched any baseline run in %s; the regression gate checked nothing", baselinePath)
	}
	fmt.Printf("bench-regression: %d runs checked against %s, no regressions\n", checked, baselinePath)
	return nil
}
