package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"flowsyn"
)

// benchRun is one (assay, engine) measurement in the -bench-json output.
type benchRun struct {
	Assay  string `json:"assay"`
	Engine string `json:"engine"`
	Ops    int    `json:"ops"`

	WallMS  float64 `json:"wall_ms"`  // full pipeline wall-clock
	SchedMS float64 `json:"sched_ms"` // schedule stage (the paper's t_s)

	Makespan int `json:"makespan"`
	Stores   int `json:"stores"`
	Segments int `json:"segments"`
	Valves   int `json:"valves"`

	// Solver is present exactly when the exact engine ran; its numeric
	// fields deliberately avoid omitempty so a proven-optimal gap of 0 (or
	// an all-cold warm-start rate of 0) stays distinguishable from missing
	// data in the trajectory.
	Solver *benchSolver `json:"solver,omitempty"`
}

// benchSolver is the MILP diagnostics block of one exact-engine run.
type benchSolver struct {
	Status        string  `json:"status"`
	Nodes         int     `json:"nodes"`
	Iterations    int     `json:"iterations"`
	WarmStartRate float64 `json:"warm_start_rate"`
	Gap           float64 `json:"gap"`
	PresolveCols  int     `json:"presolve_cols"`
	PresolveRows  int     `json:"presolve_rows"`
	Workers       int     `json:"workers"`
	Winner        string  `json:"winner"`
}

// benchFile is the schema of the machine-readable benchmark artifact; the
// perf trajectory across PRs compares these files.
type benchFile struct {
	Schema     string     `json:"schema"`
	Generated  string     `json:"generated"`
	GoVersion  string     `json:"go"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Notes      string     `json:"notes,omitempty"`
	Runs       []benchRun `json:"runs"`
}

// runBenchJSON synthesizes every requested assay once per engine, collecting
// wall-clock and solver statistics, and writes the JSON artifact.
func runBenchJSON(ctx context.Context, path, assays, notes string) error {
	names := flowsyn.BenchmarkNames()
	if assays != "" {
		names = nil
		for _, n := range strings.Split(assays, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	out := benchFile{
		Schema:     "flowsyn-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Notes:      notes,
	}
	for _, name := range names {
		for _, eng := range []struct {
			label  string
			engine flowsyn.Engine
		}{
			{"heuristic", flowsyn.HeuristicEngine},
			{"exact-ilp", flowsyn.ILPEngine},
		} {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			a, opts, err := flowsyn.Benchmark(name)
			if err != nil {
				return err
			}
			opts.Engine = eng.engine
			opts.ILPTimeLimit = 20 * time.Second
			start := time.Now()
			res, err := flowsyn.SynthesizeContext(ctx, a, opts)
			wall := time.Since(start)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, eng.label, err)
			}
			run := benchRun{
				Assay:    name,
				Engine:   eng.label,
				Ops:      a.NumOperations(),
				WallMS:   float64(wall.Microseconds()) / 1e3,
				SchedMS:  float64(res.SchedulingTime().Microseconds()) / 1e3,
				Makespan: res.Makespan(),
				Stores:   res.StoreCount(),
				Segments: res.ChannelSegments(),
				Valves:   res.Valves(),
			}
			if sv := res.SolverStats(); sv != nil {
				run.Solver = &benchSolver{
					Status:        sv.Status,
					Nodes:         sv.Nodes,
					Iterations:    sv.Iterations,
					WarmStartRate: sv.WarmStartRate,
					Gap:           sv.Gap,
					PresolveCols:  sv.PresolveFixedCols,
					PresolveRows:  sv.PresolveRemovedRows,
					Workers:       sv.Workers,
					Winner:        sv.Winner,
				}
			}
			out.Runs = append(out.Runs, run)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmark runs to %s\n", len(out.Runs), path)
	return nil
}
