package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"flowsyn"
	"flowsyn/internal/assay"
	"flowsyn/internal/milp"
	"flowsyn/internal/sched"
)

// benchRun is one (assay, engine) measurement in the -bench-json output.
type benchRun struct {
	Assay  string `json:"assay"`
	Engine string `json:"engine"`
	Ops    int    `json:"ops"`

	WallMS  float64 `json:"wall_ms"`  // full pipeline wall-clock
	SchedMS float64 `json:"sched_ms"` // schedule stage (the paper's t_s)

	Makespan int `json:"makespan"`
	Stores   int `json:"stores"`
	Segments int `json:"segments"`
	Valves   int `json:"valves"`

	// Solver is present exactly when the exact engine ran; its numeric
	// fields deliberately avoid omitempty so a proven-optimal gap of 0 (or
	// an all-cold warm-start rate of 0) stays distinguishable from missing
	// data in the trajectory.
	Solver *benchSolver `json:"solver,omitempty"`
}

// benchSolver is the MILP diagnostics block of one exact-engine run.
type benchSolver struct {
	Status        string  `json:"status"`
	Nodes         int     `json:"nodes"`
	Iterations    int     `json:"iterations"`
	WarmStartRate float64 `json:"warm_start_rate"`
	Gap           float64 `json:"gap"`
	PresolveCols  int     `json:"presolve_cols"`
	PresolveRows  int     `json:"presolve_rows"`
	Workers       int     `json:"workers"`
	Winner        string  `json:"winner"`

	// Basis-factorization kernel and node-propagation diagnostics (PR 4).
	Kernel           string  `json:"kernel,omitempty"`
	Refactorizations int     `json:"refactorizations"`
	FTUpdates        int     `json:"ft_updates"`
	FTRejected       int     `json:"ft_rejected"`
	FillRatio        float64 `json:"fill_ratio"`
	PropTightenings  int     `json:"prop_tightenings"`
	PropPrunes       int     `json:"prop_prunes"`

	// Cut-and-branch diagnostics (PR 6): root cutting planes, pseudo-cost
	// reliability probes, node-heuristic incumbents, reduced-cost fixings,
	// and the incremental-vs-full pricing pivot split.
	CutsSeparated     int `json:"cuts_separated"`
	CutsApplied       int `json:"cuts_applied"`
	CutsAgedOut       int `json:"cuts_aged_out"`
	CutRounds         int `json:"cut_rounds"`
	PseudoCostInits   int `json:"pseudo_cost_inits"`
	HeuristicIncumb   int `json:"heuristic_incumbents"`
	RCFixings         int `json:"rc_fixings"`
	IncrementalPivots int `json:"incremental_pivots"`
	FullPricingPivots int `json:"full_pricing_pivots"`

	// Storage-side dual-gap diagnostics (PR 8): conflict-graph clique cuts,
	// lifted cover cuts, local-branching incumbents and the parallel
	// separation wall-clock.
	CliqueCuts        int     `json:"clique_cuts"`
	LiftedCovers      int     `json:"lifted_covers"`
	LocalBranchIncumb int     `json:"local_branching_incumbents"`
	SeparationWallMS  float64 `json:"separation_wall_ms"`
}

// benchStrategyRun is one cell of the storage-strategy head-to-head matrix:
// the benchmark synthesized from scratch under one storage strategy (the
// Fig. 10 comparison done by synthesis, not by re-timing the distributed
// schedule). Every cell runs with verification forced on; Verified echoes the
// checker's confirmation so the artifact is self-certifying.
type benchStrategyRun struct {
	Assay    string `json:"assay"`
	Strategy string `json:"strategy"`
	Engine   string `json:"engine"`

	Makespan int `json:"makespan"`
	// StorageTime is the total channel-storage time Σu_c the schedule pays
	// (the paper's storage term of objective (6)).
	StorageTime int `json:"storage_time"`
	Stores      int `json:"stores"`
	// UnitStores counts the stores routed through the dedicated unit;
	// QueueDelay is the port-contention wait those stores accumulated.
	UnitStores int `json:"unit_stores"`
	QueueDelay int `json:"queue_delay"`

	Segments   int `json:"segments"`
	Valves     int `json:"valves"`
	UnitCells  int `json:"unit_cells"`
	UnitValves int `json:"unit_valves"`

	WallMS   float64 `json:"wall_ms"`
	Verified bool    `json:"verified"`
}

// benchGapRun is one instance of the seeded random-DAG gap suite: a synthetic
// assay DAG scheduled by the exact engine under the default benchmark time
// limit. The suite tracks how often the cut-and-branch engine closes the
// optimality gap outright; the baseline gate refuses regressions from proven
// optimal back to a positive gap.
type benchGapRun struct {
	Ops    int     `json:"ops"`
	Seed   int64   `json:"seed"`
	Status string  `json:"status"`
	Gap    float64 `json:"gap"`
	Nodes  int     `json:"nodes"`
	WallMS float64 `json:"wall_ms"`
	Winner string  `json:"winner"`
	// Optimal reports a full optimality proof (gap 0) inside the limit.
	Optimal bool `json:"optimal"`
}

// benchCacheRun measures the session Solver's caches on one assay: a cold
// solve, an identical cached resolve, and a grid sweep sharing the schedule
// cache. The baseline gate fails loudly when the cache stops paying for
// itself (see checkCacheRuns).
type benchCacheRun struct {
	Assay string `json:"assay"`
	// ColdMS is the first solve's wall-clock; CachedMS the identical
	// resubmission's.
	ColdMS   float64 `json:"cold_ms"`
	CachedMS float64 `json:"cached_ms"`
	// CacheHit reports the resubmission was served from the result cache.
	CacheHit bool `json:"cache_hit"`
	// SweepPoints grid sizes were explored on the same session performing
	// SweepScheduleSolves full scheduling solves (SweepScheduleHits served
	// from the schedule cache).
	SweepPoints         int   `json:"sweep_points"`
	SweepScheduleSolves int64 `json:"sweep_schedule_solves"`
	SweepScheduleHits   int64 `json:"sweep_schedule_hits"`
}

// benchRecoveryRun measures fault-tolerant online re-synthesis on one assay:
// a mid-execution device fault is injected into a finished solve and the
// suffix recovered via Solver.Recover, against the cold alternative of
// re-synthesizing the whole assay from scratch on the masked chip (one device
// fewer). The baseline gate is self-relative, like the cache gate: online
// recovery losing to the cold restart means the splice stopped paying.
type benchRecoveryRun struct {
	Assay string `json:"assay"`
	// Fault renders the injected fault, e.g. "device 1 @ t=130".
	Fault string `json:"fault"`
	// RecoverMS is the online recovery's wall-clock; ColdMS the full cold
	// re-synthesis on the masked chip.
	RecoverMS float64 `json:"recover_ms"`
	ColdMS    float64 `json:"cold_ms"`
	// PreservedOps counts executed operations the splice carried over.
	PreservedOps int `json:"preserved_ops"`
	// OldMakespan/NewMakespan/MakespanDelta report what the fault cost the
	// recovered plan; ColdMakespan is the cold restart's for comparison.
	OldMakespan   int `json:"old_makespan"`
	NewMakespan   int `json:"new_makespan"`
	MakespanDelta int `json:"makespan_delta"`
	ColdMakespan  int `json:"cold_makespan"`
}

// benchLoadRun is one fleet load-harness measurement, written into the
// artifact by cmd/flowsynload (the JSON layout is shared; paperbench only
// reads it for the regression gate). The fleet fields record the single-solve
// property: N replicas sharing one persistent store must perform exactly
// ExpectedColdSolves scheduling solves between them.
type benchLoadRun struct {
	Fleet              []string `json:"fleet"`
	Benchmark          string   `json:"benchmark"`
	UniqueKeys         int      `json:"unique_keys"`
	Jobs               int      `json:"jobs"`
	Concurrency        int      `json:"concurrency"`
	DurationMS         float64  `json:"duration_ms"`
	ThroughputJPS      float64  `json:"throughput_jps"`
	ColdJobs           int      `json:"cold_jobs"`
	WarmJobs           int      `json:"warm_jobs"`
	ResynthJobs        int      `json:"resynth_jobs"`
	RecoverJobs        int      `json:"recover_jobs"`
	FailedJobs         int      `json:"failed_jobs"`
	P50MS              float64  `json:"p50_ms"`
	P95MS              float64  `json:"p95_ms"`
	P99MS              float64  `json:"p99_ms"`
	ColdP50MS          float64  `json:"cold_p50_ms"`
	ColdP95MS          float64  `json:"cold_p95_ms"`
	ColdP99MS          float64  `json:"cold_p99_ms"`
	CachedP50MS        float64  `json:"cached_p50_ms"`
	CachedP95MS        float64  `json:"cached_p95_ms"`
	CachedP99MS        float64  `json:"cached_p99_ms"`
	FleetScheduleSolve int64    `json:"fleet_schedule_solves"`
	ExpectedColdSolves int64    `json:"expected_cold_solves"`
	SingleFlight       bool     `json:"single_flight"`
	Notes              string   `json:"notes,omitempty"`
}

// benchFile is the schema of the machine-readable benchmark artifact; the
// perf trajectory across PRs compares these files.
type benchFile struct {
	Schema       string             `json:"schema"`
	Generated    string             `json:"generated"`
	GoVersion    string             `json:"go"`
	GOMAXPROCS   int                `json:"gomaxprocs"`
	Notes        string             `json:"notes,omitempty"`
	Runs         []benchRun         `json:"runs"`
	StrategyRuns []benchStrategyRun `json:"strategy_runs,omitempty"`
	CacheRuns    []benchCacheRun    `json:"cache_runs,omitempty"`
	GapRuns      []benchGapRun      `json:"gap_runs,omitempty"`
	RecoveryRuns []benchRecoveryRun `json:"recovery_runs,omitempty"`
	LoadRuns     []benchLoadRun     `json:"load_runs,omitempty"`
}

// runBenchJSON synthesizes every requested assay once per engine, collecting
// wall-clock and solver statistics, and writes the JSON artifact. strategies,
// when non-empty, additionally emits the storage-strategy head-to-head matrix.
func runBenchJSON(ctx context.Context, path, assays, notes, strategies string) error {
	names := flowsyn.BenchmarkNames()
	if assays != "" {
		names = nil
		for _, n := range strings.Split(assays, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	out := benchFile{
		Schema:     "flowsyn-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Notes:      notes,
	}
	for _, name := range names {
		for _, eng := range []struct {
			label  string
			engine flowsyn.Engine
		}{
			{"heuristic", flowsyn.HeuristicEngine},
			{"exact-ilp", flowsyn.ILPEngine},
		} {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			a, opts, err := flowsyn.Benchmark(name)
			if err != nil {
				return err
			}
			opts.Engine = eng.engine
			opts.ILPTimeLimit = 20 * time.Second
			start := time.Now()
			res, err := flowsyn.SynthesizeContext(ctx, a, opts)
			wall := time.Since(start)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, eng.label, err)
			}
			run := benchRun{
				Assay:    name,
				Engine:   eng.label,
				Ops:      a.NumOperations(),
				WallMS:   float64(wall.Microseconds()) / 1e3,
				SchedMS:  float64(res.SchedulingTime().Microseconds()) / 1e3,
				Makespan: res.Makespan(),
				Stores:   res.StoreCount(),
				Segments: res.ChannelSegments(),
				Valves:   res.Valves(),
			}
			if sv := res.SolverStats(); sv != nil {
				run.Solver = &benchSolver{
					Status:           sv.Status,
					Nodes:            sv.Nodes,
					Iterations:       sv.Iterations,
					WarmStartRate:    sv.WarmStartRate,
					Gap:              sv.Gap,
					PresolveCols:     sv.PresolveFixedCols,
					PresolveRows:     sv.PresolveRemovedRows,
					Workers:          sv.Workers,
					Winner:           sv.Winner,
					Kernel:           sv.Kernel,
					Refactorizations: sv.Refactorizations,
					FTUpdates:        sv.FTUpdates,
					FTRejected:       sv.FTUpdatesRejected,
					FillRatio:        sv.FillRatio,
					PropTightenings:  sv.PropagationTightenings,
					PropPrunes:       sv.PropagationPrunes,

					CutsSeparated:     sv.CutsSeparated,
					CutsApplied:       sv.CutsApplied,
					CutsAgedOut:       sv.CutsAgedOut,
					CutRounds:         sv.CutRounds,
					PseudoCostInits:   sv.PseudoCostInits,
					HeuristicIncumb:   sv.HeuristicIncumbents,
					RCFixings:         sv.ReducedCostFixings,
					IncrementalPivots: sv.IncrementalPivots,
					FullPricingPivots: sv.FullPricingPivots,

					CliqueCuts:        sv.CliqueCuts,
					LiftedCovers:      sv.LiftedCovers,
					LocalBranchIncumb: sv.LocalBranchingIncumbents,
					SeparationWallMS:  float64(sv.SeparationWall.Microseconds()) / 1e3,
				}
			}
			out.Runs = append(out.Runs, run)
		}
	}
	if strategies != "" {
		sr, err := runStrategyMatrix(ctx, names, strategies)
		if err != nil {
			return err
		}
		out.StrategyRuns = sr
	}
	for _, name := range names {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		cr, err := runCacheBench(ctx, name)
		if err != nil {
			return fmt.Errorf("%s/cache: %w", name, err)
		}
		out.CacheRuns = append(out.CacheRuns, cr)
	}
	for _, name := range names {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		rr, ok, err := runRecoveryBench(ctx, name)
		if err != nil {
			return fmt.Errorf("%s/recovery: %w", name, err)
		}
		if ok {
			out.RecoveryRuns = append(out.RecoveryRuns, rr)
		}
	}
	gapRuns, err := runGapSuite(ctx)
	if err != nil {
		return err
	}
	out.GapRuns = gapRuns
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmark runs to %s\n", len(out.Runs), path)
	return nil
}

// runStrategyMatrix synthesizes each benchmark from scratch under every
// requested storage strategy — the Fig. 10 head-to-head by synthesis, not
// re-timing. Every cell runs the deterministic heuristic engine (so the
// checked-in artifact is byte-stable) with verification forced on: a cell
// whose strategy-aware invariants fail aborts the emission.
func runStrategyMatrix(ctx context.Context, names []string, strategies string) ([]benchStrategyRun, error) {
	var policies []flowsyn.StoragePolicy
	for _, s := range strings.Split(strategies, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		pol, err := flowsyn.ParseStoragePolicy(s)
		if err != nil {
			return nil, fmt.Errorf("-strategies: %w", err)
		}
		policies = append(policies, pol)
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("-strategies: no strategies given")
	}
	var runs []benchStrategyRun
	for _, name := range names {
		for _, pol := range policies {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			a, opts, err := flowsyn.Benchmark(name)
			if err != nil {
				return nil, err
			}
			opts.Engine = flowsyn.HeuristicEngine
			opts.Storage = pol
			opts.Verify = true
			start := time.Now()
			res, err := flowsyn.SynthesizeContext(ctx, a, opts)
			wall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, pol, err)
			}
			runs = append(runs, benchStrategyRun{
				Assay:       name,
				Strategy:    pol.String(),
				Engine:      "heuristic",
				Makespan:    res.Makespan(),
				StorageTime: res.StorageCapacity(),
				Stores:      res.StoreCount(),
				UnitStores:  res.UnitStoreCount(),
				QueueDelay:  res.UnitQueueDelay(),
				Segments:    res.ChannelSegments(),
				Valves:      res.Valves(),
				UnitCells:   res.UnitCells(),
				UnitValves:  res.UnitValves(),
				WallMS:      float64(wall.Microseconds()) / 1e3,
				Verified:    res.Verified(),
			})
		}
	}
	return runs, nil
}

// runCacheBench measures the session Solver's caches on one benchmark: a
// cold solve, an identical resubmission (result cache) and a 4-point grid
// sweep (schedule cache), all on one session.
func runCacheBench(ctx context.Context, name string) (benchCacheRun, error) {
	a, opts, err := flowsyn.Benchmark(name)
	if err != nil {
		return benchCacheRun{}, err
	}
	opts.ILPTimeLimit = 20 * time.Second
	s, err := flowsyn.New(flowsyn.Config{Workers: 1})
	if err != nil {
		return benchCacheRun{}, err
	}
	defer s.Close()

	solve := func() (*flowsyn.Result, time.Duration, error) {
		start := time.Now()
		t, err := s.Submit(ctx, flowsyn.Job{Name: name, Assay: a, Options: opts})
		if err != nil {
			return nil, 0, err
		}
		res, err := t.Wait(ctx)
		return res, time.Since(start), err
	}
	_, cold, err := solve()
	if err != nil {
		return benchCacheRun{}, err
	}
	cachedRes, cached, err := solve()
	if err != nil {
		return benchCacheRun{}, err
	}
	cr := benchCacheRun{
		Assay:    name,
		ColdMS:   float64(cold.Microseconds()) / 1e3,
		CachedMS: float64(cached.Microseconds()) / 1e3,
		CacheHit: cachedRes.JobStats() != nil && cachedRes.JobStats().CacheHit,
	}

	before := s.Stats()
	sweep, err := s.ExploreGrids(ctx, a, opts, flowsyn.GridRange{
		MinSize: opts.GridRows, MaxSize: opts.GridRows + 3, Concurrency: 1,
	})
	if err != nil {
		return benchCacheRun{}, err
	}
	after := s.Stats()
	for _, p := range sweep {
		if p.Err == nil {
			cr.SweepPoints++
		}
	}
	cr.SweepScheduleSolves = after.ScheduleSolves - before.ScheduleSolves
	cr.SweepScheduleHits = after.ScheduleCacheHits - before.ScheduleCacheHits
	return cr, nil
}

// runRecoveryBench injects one mid-execution device fault into a finished
// synthesis of the benchmark and times the online recovery of its suffix
// against a cold full re-synthesis on the masked chip (one device fewer, no
// caches). Benchmarks with a single device cannot absorb a device fault and
// are skipped (ok false).
func runRecoveryBench(ctx context.Context, name string) (benchRecoveryRun, bool, error) {
	a, opts, err := flowsyn.Benchmark(name)
	if err != nil {
		return benchRecoveryRun{}, false, err
	}
	if opts.Devices < 2 {
		return benchRecoveryRun{}, false, nil
	}
	opts.ILPTimeLimit = 20 * time.Second
	s, err := flowsyn.New(flowsyn.Config{Workers: 1, CacheEntries: -1})
	if err != nil {
		return benchRecoveryRun{}, false, err
	}
	defer s.Close()

	prior, err := s.Submit(ctx, flowsyn.Job{Name: name, Assay: a, Options: opts})
	if err != nil {
		return benchRecoveryRun{}, false, err
	}
	res, err := prior.Wait(ctx)
	if err != nil {
		return benchRecoveryRun{}, false, err
	}

	fault := flowsyn.Fault{Kind: flowsyn.DeviceFault, Time: res.Makespan() / 2, Device: 1}
	start := time.Now()
	rt, err := s.Recover(ctx, prior, fault)
	if err != nil {
		return exemptRecovery(ctx, name, fault, err)
	}
	rec, err := rt.Wait(ctx)
	recoverWall := time.Since(start)
	if err != nil {
		return exemptRecovery(ctx, name, fault, err)
	}
	stats := rec.Recovery()

	// The cold alternative: forget the interrupted execution and re-run the
	// whole assay from scratch on a chip without the failed device.
	masked := opts
	masked.Devices--
	start = time.Now()
	coldT, err := s.Submit(ctx, flowsyn.Job{Name: name + "-masked", Assay: a, Options: masked})
	if err != nil {
		return exemptRecovery(ctx, name, fault, err)
	}
	coldRes, err := coldT.Wait(ctx)
	coldWall := time.Since(start)
	if err != nil {
		return exemptRecovery(ctx, name, fault, err)
	}

	return benchRecoveryRun{
		Assay:         name,
		Fault:         fault.String(),
		RecoverMS:     float64(recoverWall.Microseconds()) / 1e3,
		ColdMS:        float64(coldWall.Microseconds()) / 1e3,
		PreservedOps:  stats.PreservedOps,
		OldMakespan:   stats.OldMakespan,
		NewMakespan:   stats.NewMakespan,
		MakespanDelta: stats.MakespanDelta,
		ColdMakespan:  coldRes.Makespan(),
	}, true, nil
}

// exemptRecovery logs and skips a benchmark whose fault recovery (or masked
// cold restart) is infeasible: storage-tight assays like RA70 genuinely
// cannot absorb the loss of a device mid-execution — the degraded chip has
// no storage segment left for the suffix. That is a property of the
// instance, not a solver regression, so it is exempted from recovery_runs
// rather than failing the emission. Context cancellation still aborts.
func exemptRecovery(ctx context.Context, name string, fault flowsyn.Fault, err error) (benchRecoveryRun, bool, error) {
	if ctx.Err() != nil {
		return benchRecoveryRun{}, false, ctx.Err()
	}
	fmt.Fprintf(os.Stderr,
		"bench-json: %s: recovery from %s infeasible, exempted from recovery_runs: %v\n",
		name, fault, err)
	return benchRecoveryRun{}, false, nil
}

// gapSuiteLimit is the per-instance time limit of the seeded gap suite; it
// matches the exact engine's 30-second default (ILPOptions.TimeLimit zero).
const gapSuiteLimit = 30 * time.Second

// gapGateMargin is the fraction of gapSuiteLimit a baseline run must have
// closed within for the regression gate to require a fresh proof: instances
// that barely made the limit on the recording machine would gate flakily on
// slower hardware, so only comfortable proofs are binding.
const gapGateMargin = 0.5

// runGapSuite schedules the seeded random-DAG instances (16-20 operations,
// two seeds each) with the exact engine and records whether each closed to a
// full optimality proof. The instances are deterministic, so a fresh emission
// is directly comparable with a checked-in baseline.
func runGapSuite(ctx context.Context) ([]benchGapRun, error) {
	var runs []benchGapRun
	for ops := 16; ops <= 20; ops++ {
		for seed := int64(1); seed <= 2; seed++ {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			g := assay.Random(ops, 3, seed)
			start := time.Now()
			_, info, err := sched.ILPScheduleContext(ctx, g, sched.ILPOptions{
				Devices: 4, Transport: 10, WarmStart: true, TimeLimit: gapSuiteLimit,
			})
			wall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("gap suite ops=%d seed=%d: %w", ops, seed, err)
			}
			runs = append(runs, benchGapRun{
				Ops:     ops,
				Seed:    seed,
				Status:  info.Status.String(),
				Gap:     info.Solver.Gap,
				Nodes:   info.Solver.Nodes,
				WallMS:  float64(wall.Microseconds()) / 1e3,
				Winner:  info.Winner,
				Optimal: info.Status == milp.StatusOptimal,
			})
		}
	}
	return runs, nil
}

// benchRegressLimit is the wall-clock regression factor the baseline check
// tolerates: CI machines differ from the machine that recorded the
// checked-in baseline, so only a >3× slowdown of a proven-optimal exact
// solve counts as a regression.
const benchRegressLimit = 3.0

// benchRecoverLimit is the self-relative factor online recovery may cost
// versus the cold masked re-synthesis measured in the same emission before
// the gate fails: the splice solves a strictly smaller problem, so parity is
// expected and the margin only absorbs within-run timer jitter.
const benchRecoverLimit = 1.25

// benchRecoverSlackMS is an absolute grace on top of the relative recovery
// gate: on millisecond-scale solves a single scheduler hiccup can multiply
// the measured wall several-fold without any code regression, so the gate
// only binds once the recovery is both relatively and absolutely slower.
const benchRecoverSlackMS = 2.0

// checkBenchRegression compares a fresh -bench-json emission against a
// checked-in baseline (e.g. BENCH_pr3.json). For every exact-ILP run the
// baseline proved optimal, the fresh run must reach the identical makespan
// and stay within benchRegressLimit of the baseline wall time; a heuristic
// run changing its makespan also fails, since those are fully deterministic.
func checkBenchRegression(freshPath, baselinePath string) error {
	read := func(path string) (*benchFile, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var f benchFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &f, nil
	}
	fresh, err := read(freshPath)
	if err != nil {
		return err
	}
	base, err := read(baselinePath)
	if err != nil {
		return err
	}
	freshRuns := make(map[[2]string]*benchRun, len(fresh.Runs))
	for i := range fresh.Runs {
		r := &fresh.Runs[i]
		freshRuns[[2]string{r.Assay, r.Engine}] = r
	}
	var failures []string
	checked := 0
	for i := range base.Runs {
		b := &base.Runs[i]
		f, ok := freshRuns[[2]string{b.Assay, b.Engine}]
		if !ok {
			continue
		}
		switch {
		case b.Engine == "exact-ilp" && b.Solver != nil && b.Solver.Status == "optimal":
			checked++
			if f.Makespan != b.Makespan {
				failures = append(failures, fmt.Sprintf(
					"%s/%s: proven-optimal makespan changed %d -> %d",
					b.Assay, b.Engine, b.Makespan, f.Makespan))
			}
			if f.WallMS > benchRegressLimit*b.WallMS {
				failures = append(failures, fmt.Sprintf(
					"%s/%s: wall time regressed %.3fms -> %.3fms (>%gx)",
					b.Assay, b.Engine, b.WallMS, f.WallMS, benchRegressLimit))
			}
		case b.Engine == "heuristic":
			checked++
			if f.Makespan != b.Makespan {
				failures = append(failures, fmt.Sprintf(
					"%s/%s: deterministic heuristic makespan changed %d -> %d",
					b.Assay, b.Engine, b.Makespan, f.Makespan))
			}
		}
	}
	// Gap-suite gate: an instance the baseline proved optimal must stay
	// proven optimal (a regression to a positive gap means the cut-and-branch
	// engine lost proving power), and its wall time must stay within the same
	// cross-machine regression factor as the assay runs. Baselines predating
	// the gap suite carry no gap runs and skip the gate.
	gapChecked := 0
	freshGaps := make(map[[2]int64]*benchGapRun, len(fresh.GapRuns))
	for i := range fresh.GapRuns {
		r := &fresh.GapRuns[i]
		freshGaps[[2]int64{int64(r.Ops), r.Seed}] = r
	}
	for i := range base.GapRuns {
		b := &base.GapRuns[i]
		// Only instances the baseline proved with comfortable margin are
		// binding: a proof that barely made the recording machine's limit
		// would flake on slower CI hardware.
		if !b.Optimal || b.WallMS > gapGateMargin*float64(gapSuiteLimit.Milliseconds()) {
			continue
		}
		f, ok := freshGaps[[2]int64{int64(b.Ops), b.Seed}]
		if !ok {
			failures = append(failures, fmt.Sprintf(
				"gap ops=%d seed=%d: baseline-proven instance missing from fresh emission",
				b.Ops, b.Seed))
			continue
		}
		gapChecked++
		if !f.Optimal {
			failures = append(failures, fmt.Sprintf(
				"gap ops=%d seed=%d: proven optimal regressed to gap %.4f (%s)",
				b.Ops, b.Seed, f.Gap, f.Status))
		}
		if f.WallMS > benchRegressLimit*b.WallMS {
			failures = append(failures, fmt.Sprintf(
				"gap ops=%d seed=%d: wall time regressed %.3fms -> %.3fms (>%gx)",
				b.Ops, b.Seed, b.WallMS, f.WallMS, benchRegressLimit))
		}
	}

	cacheChecked, recoveryChecked, loadChecked, strategyChecked, selfFailures := selfRelativeGates(fresh)
	failures = append(failures, selfFailures...)
	// Strategy-matrix baseline gate: the matrix runs the deterministic
	// heuristic engine, so any makespan drift against a baseline that carries
	// the same (assay, strategy) cell is a real behavior change.
	freshStrats := make(map[[2]string]*benchStrategyRun, len(fresh.StrategyRuns))
	for i := range fresh.StrategyRuns {
		r := &fresh.StrategyRuns[i]
		freshStrats[[2]string{r.Assay, r.Strategy}] = r
	}
	for i := range base.StrategyRuns {
		b := &base.StrategyRuns[i]
		f, ok := freshStrats[[2]string{b.Assay, b.Strategy}]
		if !ok {
			continue
		}
		strategyChecked++
		if f.Makespan != b.Makespan {
			failures = append(failures, fmt.Sprintf(
				"%s/%s: deterministic strategy makespan changed %d -> %d",
				b.Assay, b.Strategy, b.Makespan, f.Makespan))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "bench-regression: "+f)
		}
		return fmt.Errorf("%d benchmark regression(s) against %s", len(failures), baselinePath)
	}
	if cacheChecked == 0 {
		return fmt.Errorf("fresh emission carries no cache runs; the cache gate checked nothing")
	}
	if checked == 0 {
		// A gate that matched nothing is not a passing gate: renamed engines,
		// a dropped assay, or an over-narrow -bench-assays filter would
		// otherwise keep CI green while checking nothing at all.
		return fmt.Errorf("no fresh run matched any baseline run in %s; the regression gate checked nothing", baselinePath)
	}
	fmt.Printf("bench-regression: %d runs + %d cache runs + %d gap runs + %d recovery runs + %d load runs + %d strategy runs checked against %s, no regressions\n",
		checked, cacheChecked, gapChecked, recoveryChecked, loadChecked, strategyChecked, baselinePath)
	return nil
}

// selfRelativeGates runs the gates needing no baseline file: cache, recovery
// and fleet-load measurements each compare two populations inside one
// emission (cached vs cold, recovery vs cold restart, warm vs cold fleet
// percentiles), so they bind on any machine regardless of what hardware
// recorded the checked-in baseline.
func selfRelativeGates(fresh *benchFile) (cacheChecked, recoveryChecked, loadChecked, strategyChecked int, failures []string) {
	// The strategy-matrix gate restates the paper's thesis as an invariant:
	// synthesized under the same engine, distributed channel storage must
	// never lose to the dedicated storage unit on a benchmark assay (the unit
	// only adds port serialization and transport legs). Every cell must also
	// carry the verifier's confirmation — an unverified cell means the
	// emission lost its strategy-aware invariant checking.
	dist := make(map[string]*benchStrategyRun)
	ded := make(map[string]*benchStrategyRun)
	for i := range fresh.StrategyRuns {
		sr := &fresh.StrategyRuns[i]
		strategyChecked++
		if !sr.Verified {
			failures = append(failures, fmt.Sprintf(
				"%s/%s: strategy run not verified", sr.Assay, sr.Strategy))
		}
		switch sr.Strategy {
		case "distributed":
			dist[sr.Assay] = sr
		case "dedicated":
			ded[sr.Assay] = sr
		}
	}
	for assay, d := range dist {
		u, ok := ded[assay]
		if !ok {
			continue
		}
		if d.Makespan > u.Makespan {
			failures = append(failures, fmt.Sprintf(
				"%s/strategy: distributed makespan %d lost to dedicated %d (paper's Fig. 10 inverted)",
				assay, d.Makespan, u.Makespan))
		}
	}
	for i := range fresh.CacheRuns {
		cr := &fresh.CacheRuns[i]
		cacheChecked++
		if !cr.CacheHit {
			failures = append(failures, fmt.Sprintf(
				"%s/cache: identical resubmission missed the result cache", cr.Assay))
		}
		// A cached resolve re-running a meaningful fraction of the pipeline
		// is a regression; sub-millisecond colds are below timer noise.
		if cr.CachedMS > 0.5*cr.ColdMS && cr.CachedMS > 1.0 {
			failures = append(failures, fmt.Sprintf(
				"%s/cache: cached resolve %.3fms vs cold %.3fms (cache stopped paying)",
				cr.Assay, cr.CachedMS, cr.ColdMS))
		}
		if cr.SweepPoints > 1 && cr.SweepScheduleSolves >= int64(cr.SweepPoints) {
			failures = append(failures, fmt.Sprintf(
				"%s/cache: grid sweep ran %d schedule solves for %d points (schedule cache dead)",
				cr.Assay, cr.SweepScheduleSolves, cr.SweepPoints))
		}
	}
	// Online recovery re-plans only the post-fault suffix while the cold
	// restart re-plans everything, so a recovery meaningfully slower than the
	// cold restart in the same run means the splice stopped paying.
	// benchRecoverLimit leaves relative headroom and benchRecoverSlackMS
	// absolute headroom for within-run timer jitter; sub-millisecond runs are
	// below timer noise entirely.
	for i := range fresh.RecoveryRuns {
		rr := &fresh.RecoveryRuns[i]
		recoveryChecked++
		if rr.NewMakespan <= 0 {
			failures = append(failures, fmt.Sprintf(
				"%s/recovery: no recovered plan (makespan %d)", rr.Assay, rr.NewMakespan))
		}
		if rr.RecoverMS > benchRecoverLimit*rr.ColdMS+benchRecoverSlackMS && rr.RecoverMS > 1.0 {
			failures = append(failures, fmt.Sprintf(
				"%s/recovery: online recovery %.3fms vs cold re-synthesis %.3fms (>%gx+%gms, splice stopped paying)",
				rr.Assay, rr.RecoverMS, rr.ColdMS, benchRecoverLimit, benchRecoverSlackMS))
		}
	}
	// The fleet-load gate: the persistent store plus cross-replica
	// single-flight must have held (exactly one cold solve per unique key
	// fleet-wide), no job may have failed, and the warm path must be at
	// least twice as fast as the cold path at the median once cold solves
	// rise above timer noise.
	for i := range fresh.LoadRuns {
		lr := &fresh.LoadRuns[i]
		loadChecked++
		if !lr.SingleFlight {
			failures = append(failures, fmt.Sprintf(
				"%s/load: fleet of %d performed %d cold solves for %d expected (single-flight broken)",
				lr.Benchmark, len(lr.Fleet), lr.FleetScheduleSolve, lr.ExpectedColdSolves))
		}
		if lr.FailedJobs > 0 {
			failures = append(failures, fmt.Sprintf(
				"%s/load: %d of %d jobs failed", lr.Benchmark, lr.FailedJobs, lr.Jobs))
		}
		if lr.ColdP50MS > 1.0 && lr.CachedP50MS > 0.5*lr.ColdP50MS {
			failures = append(failures, fmt.Sprintf(
				"%s/load: warm p50 %.3fms vs cold p50 %.3fms (serve path stopped paying)",
				lr.Benchmark, lr.CachedP50MS, lr.ColdP50MS))
		}
	}
	return cacheChecked, recoveryChecked, loadChecked, strategyChecked, failures
}

// checkBenchFile runs only the self-relative gates on an existing artifact
// (no fresh emission, no baseline): the -bench-check mode CI uses to gate a
// flowsynload artifact produced against a live fleet.
func checkBenchFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	cacheChecked, recoveryChecked, loadChecked, strategyChecked, failures := selfRelativeGates(&f)
	if len(failures) > 0 {
		for _, msg := range failures {
			fmt.Fprintln(os.Stderr, "bench-check: "+msg)
		}
		return fmt.Errorf("%d failure(s) in %s", len(failures), path)
	}
	if cacheChecked+recoveryChecked+loadChecked+strategyChecked == 0 {
		return fmt.Errorf("%s carries no cache, recovery, load or strategy runs; the gate checked nothing", path)
	}
	fmt.Printf("bench-check: %d cache runs + %d recovery runs + %d load runs + %d strategy runs checked in %s, no failures\n",
		cacheChecked, recoveryChecked, loadChecked, strategyChecked, path)
	return nil
}
