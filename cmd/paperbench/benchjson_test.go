package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name string, f benchFile) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// goodBench returns a fresh emission that passes every self-relative gate and
// matches the baseline runs.
func goodBench() benchFile {
	return benchFile{
		Schema: "flowsyn-bench/v1",
		Runs: []benchRun{
			{Assay: "PCR", Engine: "heuristic", Makespan: 310, WallMS: 1.0},
			{Assay: "PCR", Engine: "exact-ilp", Makespan: 310, WallMS: 2.0,
				Solver: &benchSolver{Status: "optimal"}},
		},
		CacheRuns: []benchCacheRun{{
			Assay: "PCR", ColdMS: 10, CachedMS: 0.1, CacheHit: true,
			SweepPoints: 4, SweepScheduleSolves: 1, SweepScheduleHits: 3,
		}},
		RecoveryRuns: []benchRecoveryRun{{
			Assay: "CPA", Fault: "device 1 @ t=345",
			RecoverMS: 0.4, ColdMS: 0.6,
			PreservedOps: 26, OldMakespan: 690, NewMakespan: 775,
			MakespanDelta: 85, ColdMakespan: 810,
		}},
	}
}

func TestCheckBenchRegressionRecoveryGate(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", goodBench())

	// A healthy emission passes.
	fresh := writeBench(t, dir, "fresh.json", goodBench())
	if err := checkBenchRegression(fresh, base); err != nil {
		t.Fatalf("healthy emission flagged: %v", err)
	}

	// Online recovery meaningfully slower than the cold masked restart fails
	// the self-relative gate.
	slow := goodBench()
	slow.RecoveryRuns[0].RecoverMS = 10
	slow.RecoveryRuns[0].ColdMS = 1
	fresh = writeBench(t, dir, "slow.json", slow)
	if err := checkBenchRegression(fresh, base); err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("slow recovery passed the gate: %v", err)
	}

	// A recovery that produced no plan fails.
	empty := goodBench()
	empty.RecoveryRuns[0].NewMakespan = 0
	fresh = writeBench(t, dir, "empty.json", empty)
	if err := checkBenchRegression(fresh, base); err == nil {
		t.Error("empty recovery plan passed the gate")
	}

	// Sub-millisecond jitter does not flake the gate.
	noisy := goodBench()
	noisy.RecoveryRuns[0].RecoverMS = 0.9
	noisy.RecoveryRuns[0].ColdMS = 0.2
	fresh = writeBench(t, dir, "noisy.json", noisy)
	if err := checkBenchRegression(fresh, base); err != nil {
		t.Errorf("sub-millisecond recovery jitter flagged: %v", err)
	}

	// The existing gates still bite: a proven-optimal makespan change fails.
	drift := goodBench()
	drift.Runs[1].Makespan = 400
	fresh = writeBench(t, dir, "drift.json", drift)
	if err := checkBenchRegression(fresh, base); err == nil {
		t.Error("proven-optimal makespan drift passed the gate")
	}
}
