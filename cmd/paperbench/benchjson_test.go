package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name string, f benchFile) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// goodBench returns a fresh emission that passes every self-relative gate and
// matches the baseline runs.
func goodBench() benchFile {
	return benchFile{
		Schema: "flowsyn-bench/v1",
		Runs: []benchRun{
			{Assay: "PCR", Engine: "heuristic", Makespan: 310, WallMS: 1.0},
			{Assay: "PCR", Engine: "exact-ilp", Makespan: 310, WallMS: 2.0,
				Solver: &benchSolver{Status: "optimal"}},
		},
		CacheRuns: []benchCacheRun{{
			Assay: "PCR", ColdMS: 10, CachedMS: 0.1, CacheHit: true,
			SweepPoints: 4, SweepScheduleSolves: 1, SweepScheduleHits: 3,
		}},
		RecoveryRuns: []benchRecoveryRun{{
			Assay: "CPA", Fault: "device 1 @ t=345",
			RecoverMS: 0.4, ColdMS: 0.6,
			PreservedOps: 26, OldMakespan: 690, NewMakespan: 775,
			MakespanDelta: 85, ColdMakespan: 810,
		}},
	}
}

func TestCheckBenchRegressionRecoveryGate(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", goodBench())

	// A healthy emission passes.
	fresh := writeBench(t, dir, "fresh.json", goodBench())
	if err := checkBenchRegression(fresh, base); err != nil {
		t.Fatalf("healthy emission flagged: %v", err)
	}

	// Online recovery meaningfully slower than the cold masked restart fails
	// the self-relative gate.
	slow := goodBench()
	slow.RecoveryRuns[0].RecoverMS = 10
	slow.RecoveryRuns[0].ColdMS = 1
	fresh = writeBench(t, dir, "slow.json", slow)
	if err := checkBenchRegression(fresh, base); err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("slow recovery passed the gate: %v", err)
	}

	// A recovery that produced no plan fails.
	empty := goodBench()
	empty.RecoveryRuns[0].NewMakespan = 0
	fresh = writeBench(t, dir, "empty.json", empty)
	if err := checkBenchRegression(fresh, base); err == nil {
		t.Error("empty recovery plan passed the gate")
	}

	// Sub-millisecond jitter does not flake the gate.
	noisy := goodBench()
	noisy.RecoveryRuns[0].RecoverMS = 0.9
	noisy.RecoveryRuns[0].ColdMS = 0.2
	fresh = writeBench(t, dir, "noisy.json", noisy)
	if err := checkBenchRegression(fresh, base); err != nil {
		t.Errorf("sub-millisecond recovery jitter flagged: %v", err)
	}

	// The existing gates still bite: a proven-optimal makespan change fails.
	drift := goodBench()
	drift.Runs[1].Makespan = 400
	fresh = writeBench(t, dir, "drift.json", drift)
	if err := checkBenchRegression(fresh, base); err == nil {
		t.Error("proven-optimal makespan drift passed the gate")
	}

	// The recovery gate's absolute slack absorbs scheduler hiccups on
	// millisecond-scale solves: 3ms vs 1.5ms is over the 1.25x factor but
	// under factor+2ms.
	jitter := goodBench()
	jitter.RecoveryRuns[0].RecoverMS = 3
	jitter.RecoveryRuns[0].ColdMS = 1.5
	fresh = writeBench(t, dir, "jitter.json", jitter)
	if err := checkBenchRegression(fresh, base); err != nil {
		t.Errorf("millisecond-scale recovery jitter flagged despite slack: %v", err)
	}
}

// goodLoadRun passes every clause of the fleet-load gate.
func goodLoadRun() benchLoadRun {
	return benchLoadRun{
		Fleet:      []string{"http://a", "http://b"},
		Benchmark:  "PCR",
		UniqueKeys: 8, Jobs: 100, Concurrency: 8,
		ColdJobs: 8, WarmJobs: 80,
		ColdP50MS: 40, CachedP50MS: 2,
		FleetScheduleSolve: 10, ExpectedColdSolves: 10,
		SingleFlight: true,
	}
}

func TestCheckBenchRegressionLoadGate(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", goodBench())

	healthy := goodBench()
	healthy.LoadRuns = []benchLoadRun{goodLoadRun()}
	fresh := writeBench(t, dir, "healthy.json", healthy)
	if err := checkBenchRegression(fresh, base); err != nil {
		t.Fatalf("healthy load run flagged: %v", err)
	}

	// A broken single-flight (two replicas both solved a key) fails.
	dup := healthy
	dup.LoadRuns = []benchLoadRun{goodLoadRun()}
	dup.LoadRuns[0].FleetScheduleSolve = 12
	dup.LoadRuns[0].SingleFlight = false
	fresh = writeBench(t, dir, "dup.json", dup)
	if err := checkBenchRegression(fresh, base); err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("broken single-flight passed the gate: %v", err)
	}

	// A warm path no faster than cold fails once cold is above timer noise.
	slowWarm := healthy
	slowWarm.LoadRuns = []benchLoadRun{goodLoadRun()}
	slowWarm.LoadRuns[0].CachedP50MS = 30
	fresh = writeBench(t, dir, "slowwarm.json", slowWarm)
	if err := checkBenchRegression(fresh, base); err == nil {
		t.Error("slow warm path passed the gate")
	}

	// Sub-millisecond cold solves are exempt from the speedup clause.
	tiny := healthy
	tiny.LoadRuns = []benchLoadRun{goodLoadRun()}
	tiny.LoadRuns[0].ColdP50MS = 0.8
	tiny.LoadRuns[0].CachedP50MS = 0.7
	fresh = writeBench(t, dir, "tiny.json", tiny)
	if err := checkBenchRegression(fresh, base); err != nil {
		t.Errorf("sub-millisecond load run flagged: %v", err)
	}

	// Failed jobs fail the gate.
	failed := healthy
	failed.LoadRuns = []benchLoadRun{goodLoadRun()}
	failed.LoadRuns[0].FailedJobs = 3
	fresh = writeBench(t, dir, "failed.json", failed)
	if err := checkBenchRegression(fresh, base); err == nil {
		t.Error("failed jobs passed the gate")
	}
}

// TestCheckBenchFile covers the standalone -bench-check mode: self-relative
// gates only, no baseline, and an artifact checking nothing is an error.
func TestCheckBenchFile(t *testing.T) {
	dir := t.TempDir()

	loadOnly := benchFile{
		Schema:   "flowsyn-bench/v1",
		LoadRuns: []benchLoadRun{goodLoadRun()},
	}
	path := writeBench(t, dir, "load.json", loadOnly)
	if err := checkBenchFile(path); err != nil {
		t.Fatalf("load-only artifact flagged: %v", err)
	}

	broken := loadOnly
	broken.LoadRuns = []benchLoadRun{goodLoadRun()}
	broken.LoadRuns[0].SingleFlight = false
	path = writeBench(t, dir, "broken.json", broken)
	if err := checkBenchFile(path); err == nil {
		t.Error("broken single-flight passed -bench-check")
	}

	empty := benchFile{Schema: "flowsyn-bench/v1"}
	path = writeBench(t, dir, "empty.json", empty)
	if err := checkBenchFile(path); err == nil || !strings.Contains(err.Error(), "checked nothing") {
		t.Errorf("empty artifact did not fail the checked-nothing guard: %v", err)
	}

	if err := checkBenchFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing artifact passed -bench-check")
	}
}
