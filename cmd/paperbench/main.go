// Command paperbench regenerates the evaluation artifacts of "Transport or
// Store?" (DAC 2017): Table 2 and Figures 8, 9, 10 and 11. Each experiment
// prints a text table with the same rows/series the paper reports.
//
// Usage:
//
//	paperbench -table2          # scheduling / architecture / physical design
//	paperbench -fig8            # edge and valve ratios vs the full grid
//	paperbench -fig9            # storage optimization on/off comparison
//	paperbench -fig10           # channel caching vs dedicated storage unit
//	paperbench -fig11           # execution snapshots of RA30
//	paperbench -all             # everything
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"flowsyn/internal/assay"
	"flowsyn/internal/core"
	"flowsyn/internal/dedicated"
	"flowsyn/internal/sched"
	"flowsyn/internal/sim"
)

func main() {
	var (
		table2 = flag.Bool("table2", false, "reproduce Table 2")
		fig8   = flag.Bool("fig8", false, "reproduce Fig. 8 (edge/valve ratios)")
		fig9   = flag.Bool("fig9", false, "reproduce Fig. 9 (storage optimization)")
		fig10  = flag.Bool("fig10", false, "reproduce Fig. 10 (dedicated storage baseline)")
		fig11  = flag.Bool("fig11", false, "reproduce Fig. 11 (execution snapshots)")
		all    = flag.Bool("all", false, "reproduce everything")
	)
	flag.Parse()
	if !*table2 && !*fig8 && !*fig9 && !*fig10 && !*fig11 && !*all {
		flag.Usage()
		os.Exit(2)
	}
	if *table2 || *all {
		runTable2()
	}
	if *fig8 || *all {
		runFig8()
	}
	if *fig9 || *all {
		runFig9()
	}
	if *fig10 || *all {
		runFig10()
	}
	if *fig11 || *all {
		runFig11()
	}
}

// synthesize runs the full flow for one benchmark with the given objective.
// extraGrid enlarges the connection grid by that many rows and columns.
func synthesize(name string, mode sched.Mode, extraGrid int) (*core.Result, assay.Benchmark, error) {
	b, err := assay.Get(name)
	if err != nil {
		return nil, b, err
	}
	b.GridRows += extraGrid
	b.GridCols += extraGrid
	res, err := core.Synthesize(b.Graph, core.Options{
		Devices:      b.Devices,
		Transport:    b.Transport,
		GridRows:     b.GridRows,
		GridCols:     b.GridCols,
		Mode:         mode,
		Engine:       core.Auto,
		ModelIO:      b.ModelIO,
		ILPTimeLimit: 20 * time.Second,
	})
	return res, b, err
}

func runTable2() {
	fmt.Println("== Table 2: Results of Scheduling and Synthesis ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Assay\t|O|\ttE\tts(s)\tG\tne\tnv\ttr(s)\tdr\tde\tdp\ttp(s)")
	for _, name := range assay.Names() {
		res, b, err := synthesize(name, sched.TimeAndStorage, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			continue
		}
		p := res.Physical
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%dx%d\t%d\t%d\t%.3f\t%s\t%s\t%s\t%.3f\n",
			name,
			b.Graph.NumOps(),
			res.Schedule.Makespan,
			res.SchedulingTime.Seconds(),
			b.GridRows, b.GridCols,
			res.Architecture.NumEdges,
			res.Architecture.NumValves,
			res.Architecture.Runtime.Seconds(),
			p.AfterSynthesis, p.AfterDevices, p.Compressed,
			p.Runtime.Seconds(),
		)
	}
	w.Flush()
	fmt.Println()
}

func runFig8() {
	fmt.Println("== Fig. 8: Edge and valve ratios (used / full grid) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Assay\tEdgeRatio\tValveRatio")
	for _, name := range assay.Names() {
		res, _, err := synthesize(name, sched.TimeAndStorage, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			continue
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\n", name, res.Architecture.EdgeRatio, res.Architecture.ValveRatio)
	}
	w.Flush()
	fmt.Println()
}

func runFig9() {
	fmt.Println("== Fig. 9: Optimize execution time only vs time and storage ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Assay\ttE(time)\ttE(t+s)\tne(time)\tne(t+s)\tnv(time)\tnv(t+s)\tstores(time)\tstores(t+s)")
	for _, name := range []string{"CPA", "RA30", "IVD", "PCR"} {
		// CPA's time-only baseline parks 12 fluids at once — it needs one
		// extra grid row/column to route at all; both modes are compared on
		// the same enlarged grid.
		extra := 0
		if name == "CPA" {
			extra = 2
		}
		timeOnly, _, err := synthesize(name, sched.TimeOnly, extra)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s (time-only): %v\n", name, err)
			continue
		}
		both, _, err := synthesize(name, sched.TimeAndStorage, extra)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s (time+storage): %v\n", name, err)
			continue
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			name,
			timeOnly.Schedule.Makespan, both.Schedule.Makespan,
			timeOnly.Architecture.NumEdges, both.Architecture.NumEdges,
			timeOnly.Architecture.NumValves, both.Architecture.NumValves,
			timeOnly.Schedule.StoreCount(), both.Schedule.StoreCount(),
		)
	}
	w.Flush()
	fmt.Println()
}

func runFig10() {
	fmt.Println("== Fig. 10: Channel caching vs dedicated storage unit ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Assay\ttE(dist)\ttE(ded)\tExecRatio\tnv(dist)\tnv(ded)\tValveRatio")
	for _, name := range assay.Names() {
		res, _, err := synthesize(name, sched.TimeAndStorage, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			continue
		}
		cmp, err := dedicated.Compare(res.Schedule, res.Architecture.NumValves)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			continue
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%d\t%d\t%.2f\n",
			name,
			cmp.DistributedMakespan, cmp.DedicatedMakespan, cmp.ExecRatio,
			cmp.DistributedValves, cmp.DedicatedValves, cmp.ValveRatio,
		)
	}
	w.Flush()
	fmt.Println()
}

func runFig11() {
	fmt.Println("== Fig. 11: Execution snapshots of RA30 ==")
	res, _, err := synthesize("RA30", sched.TimeAndStorage, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "RA30: %v\n", err)
		return
	}
	s := res.Simulator()
	// Pick two snapshot times: one with a live transport, one while caching
	// (the paper shows t=35 s and t=45 s).
	var withTransport, withCache *sim.Snapshot
	for _, t := range s.InterestingTimes() {
		snap := s.At(t)
		if withCache == nil && snap.CachedSamples > 0 && len(snap.ActiveRoutes) > 1 {
			withCache = snap
		}
		if withTransport == nil && len(snap.ActiveRoutes) > 0 {
			withTransport = snap
		}
		if withCache != nil && withTransport != nil {
			break
		}
	}
	if withTransport != nil {
		fmt.Println(sim.RenderASCII(res.Architecture, withTransport))
	}
	if withCache != nil {
		fmt.Println(sim.RenderASCII(res.Architecture, withCache))
	}
}
