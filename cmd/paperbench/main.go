// Command paperbench regenerates the evaluation artifacts of "Transport or
// Store?" (DAC 2017): Table 2 and Figures 8, 9, 10 and 11. Each experiment
// prints a text table with the same rows/series the paper reports.
//
// The per-assay experiments run on the concurrent batch runner; -j sets the
// worker count. Results print in benchmark order regardless of parallelism;
// the heuristic-engine numbers are fully deterministic under any -j, and the
// exact-ILP rows are stable in practice because the warm-start incumbent
// dominates within the time limit (the ts/tr/tp wall-clock columns do vary
// run to run). Ctrl-C cancels the whole run cleanly.
//
// Usage:
//
//	paperbench -table2          # scheduling / architecture / physical design
//	paperbench -fig8            # edge and valve ratios vs the full grid
//	paperbench -fig9            # storage optimization on/off comparison
//	paperbench -fig10           # channel caching vs dedicated storage unit
//	paperbench -fig11           # execution snapshots of RA30
//	paperbench -all -j 4        # everything, four synthesis workers
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"
	"time"

	"flowsyn"
	"flowsyn/internal/assay"
	"flowsyn/internal/core"
	"flowsyn/internal/sim"
)

// main defers to run so that profile teardown (registered with defer) runs on
// every exit path; os.Exit would skip it.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		table2        = flag.Bool("table2", false, "reproduce Table 2")
		fig8          = flag.Bool("fig8", false, "reproduce Fig. 8 (edge/valve ratios)")
		fig9          = flag.Bool("fig9", false, "reproduce Fig. 9 (storage optimization)")
		fig10         = flag.Bool("fig10", false, "reproduce Fig. 10 (dedicated storage baseline)")
		fig11         = flag.Bool("fig11", false, "reproduce Fig. 11 (execution snapshots)")
		all           = flag.Bool("all", false, "reproduce everything")
		workers       = flag.Int("j", 1, "parallel synthesis workers (0 = GOMAXPROCS)")
		benchJSON     = flag.String("bench-json", "", "write machine-readable per-assay per-engine benchmark results (wall-clock, solver nodes/iterations, makespan) to this JSON file")
		benchAssays   = flag.String("bench-assays", "", "comma-separated assay subset for -bench-json (default: all benchmarks)")
		benchNotes    = flag.String("bench-notes", "", "free-form note embedded in the -bench-json output")
		strategies    = flag.String("strategies", "", "comma-separated storage strategies (distributed,dedicated,hybrid) to synthesize head-to-head into the -bench-json strategy_runs matrix; every cell is verified")
		benchBaseline = flag.String("bench-baseline", "", "compare the fresh -bench-json emission against this baseline file and exit nonzero on a perf or makespan regression")
		benchCheck    = flag.String("bench-check", "", "run only the self-relative gates (cache, recovery, fleet load) on this existing artifact and exit nonzero on failure; no fresh emission")
		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (inspect with go tool pprof)")
		memProfile    = flag.String("memprofile", "", "write a heap profile taken at exit to this file (inspect with go tool pprof)")
	)
	flag.BoolVar(&verifyResults, "verify", false,
		"re-check every result with the independent invariant checker")
	flag.Parse()
	if !*table2 && !*fig8 && !*fig9 && !*fig10 && !*fig11 && !*all && *benchJSON == "" && *benchCheck == "" {
		flag.Usage()
		return 2
	}
	if *benchCheck != "" {
		if err := checkBenchFile(*benchCheck); err != nil {
			fmt.Fprintf(os.Stderr, "bench-check: %v\n", err)
			return 1
		}
		return 0
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// ctx.Err() guards stop the run at the next experiment once Ctrl-C
	// lands, instead of spraying per-assay cancellation errors for every
	// remaining figure.
	if *benchJSON != "" {
		if err := runBenchJSON(ctx, *benchJSON, *benchAssays, *benchNotes, *strategies); err != nil {
			fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
			if ctx.Err() == nil {
				return 1
			}
		}
		if *benchBaseline != "" && ctx.Err() == nil {
			if err := checkBenchRegression(*benchJSON, *benchBaseline); err != nil {
				fmt.Fprintf(os.Stderr, "bench-baseline: %v\n", err)
				return 1
			}
		}
	}
	if (*table2 || *all) && ctx.Err() == nil {
		runTable2(ctx, *workers)
	}
	if (*fig8 || *all) && ctx.Err() == nil {
		runFig8(ctx, *workers)
	}
	if (*fig9 || *all) && ctx.Err() == nil {
		runFig9(ctx, *workers)
	}
	if (*fig10 || *all) && ctx.Err() == nil {
		runFig10(ctx, *workers)
	}
	if (*fig11 || *all) && ctx.Err() == nil {
		runFig11(ctx)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "paperbench: interrupted")
		return 1
	}
	return 0
}

// benchmarkJobs builds one synthesis job per benchmark with the Table 2
// options. extraGrid enlarges the connection grid by that many rows and
// columns for the named assays.
func benchmarkJobs(names []string, objective flowsyn.Objective, extraGrid map[string]int) ([]flowsyn.Job, error) {
	jobs := make([]flowsyn.Job, 0, len(names))
	for _, name := range names {
		a, opts, err := flowsyn.Benchmark(name)
		if err != nil {
			return nil, err
		}
		extra := extraGrid[name]
		opts.GridRows += extra
		opts.GridCols += extra
		opts.Objective = objective
		opts.ILPTimeLimit = 20 * time.Second
		jobs = append(jobs, flowsyn.Job{Name: name, Assay: a, Options: opts})
	}
	return jobs, nil
}

// verifyResults, set by -verify, forces the verification stage onto every
// synthesis this command runs.
var verifyResults bool

// runBatch synthesizes the jobs on the batch runner and returns the results
// in job order.
func runBatch(ctx context.Context, jobs []flowsyn.Job, workers int) []flowsyn.JobResult {
	results, err := flowsyn.SynthesizeBatch(ctx, jobs, flowsyn.BatchOptions{
		Concurrency: workers,
		Verify:      verifyResults,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "batch: %v\n", err)
	}
	return results
}

func runTable2(ctx context.Context, workers int) {
	fmt.Println("== Table 2: Results of Scheduling and Synthesis ==")
	jobs, err := benchmarkJobs(flowsyn.BenchmarkNames(), flowsyn.MinimizeTimeAndStorage, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Assay\t|O|\ttE\tts(s)\tG\tne\tnv\ttr(s)\tdr\tde\tdp\ttp(s)")
	results := runBatch(ctx, jobs, workers)
	for _, jr := range results {
		if jr.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", jr.Job.Name, jr.Err)
			continue
		}
		res := jr.Result
		dr, de, dp := res.ChipDimensions()
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%dx%d\t%d\t%d\t%.3f\t%s\t%s\t%s\t%.3f\n",
			jr.Job.Name,
			jr.Job.Assay.NumOperations(),
			res.Makespan(),
			res.SchedulingTime().Seconds(),
			jr.Job.Options.GridRows, jr.Job.Options.GridCols,
			res.ChannelSegments(),
			res.Valves(),
			res.StageDuration(flowsyn.StageArch).Seconds(),
			dr, de, dp,
			res.StageDuration(flowsyn.StagePhys).Seconds(),
		)
	}
	w.Flush()
	// Solver diagnostics for the assays the exact engine attempted (the Auto
	// engine races the ILP only below the exact size cap).
	for _, jr := range results {
		if jr.Err != nil {
			continue
		}
		if sv := jr.Result.SolverSummary(); sv != "" {
			fmt.Printf("  %s solver: %s\n", jr.Job.Name, sv)
		}
	}
	fmt.Println()
}

func runFig8(ctx context.Context, workers int) {
	fmt.Println("== Fig. 8: Edge and valve ratios (used / full grid) ==")
	jobs, err := benchmarkJobs(flowsyn.BenchmarkNames(), flowsyn.MinimizeTimeAndStorage, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Assay\tEdgeRatio\tValveRatio")
	for _, jr := range runBatch(ctx, jobs, workers) {
		if jr.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", jr.Job.Name, jr.Err)
			continue
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\n", jr.Job.Name, jr.Result.EdgeRatio(), jr.Result.ValveRatio())
	}
	w.Flush()
	fmt.Println()
}

func runFig9(ctx context.Context, workers int) {
	fmt.Println("== Fig. 9: Optimize execution time only vs time and storage ==")
	names := []string{"CPA", "RA30", "IVD", "PCR"}
	// CPA's time-only baseline parks 12 fluids at once — it needs one extra
	// grid row/column to route at all; both modes are compared on the same
	// enlarged grid.
	extra := map[string]int{"CPA": 2}
	timeJobs, err := benchmarkJobs(names, flowsyn.MinimizeTimeOnly, extra)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	bothJobs, err := benchmarkJobs(names, flowsyn.MinimizeTimeAndStorage, extra)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	// One combined batch keeps all 2×len(names) independent jobs in flight
	// at once; results come back in job order, so the halves split cleanly.
	combined := runBatch(ctx, append(append([]flowsyn.Job(nil), timeJobs...), bothJobs...), workers)
	timeRes, bothRes := combined[:len(names)], combined[len(names):]
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Assay\ttE(time)\ttE(t+s)\tne(time)\tne(t+s)\tnv(time)\tnv(t+s)\tstores(time)\tstores(t+s)")
	for i, name := range names {
		to, ts := timeRes[i], bothRes[i]
		if to.Err != nil {
			fmt.Fprintf(os.Stderr, "%s (time-only): %v\n", name, to.Err)
			continue
		}
		if ts.Err != nil {
			fmt.Fprintf(os.Stderr, "%s (time+storage): %v\n", name, ts.Err)
			continue
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			name,
			to.Result.Makespan(), ts.Result.Makespan(),
			to.Result.ChannelSegments(), ts.Result.ChannelSegments(),
			to.Result.Valves(), ts.Result.Valves(),
			to.Result.StoreCount(), ts.Result.StoreCount(),
		)
	}
	w.Flush()
	fmt.Println()
}

func runFig10(ctx context.Context, workers int) {
	fmt.Println("== Fig. 10: Channel caching vs dedicated storage unit ==")
	jobs, err := benchmarkJobs(flowsyn.BenchmarkNames(), flowsyn.MinimizeTimeAndStorage, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Assay\ttE(dist)\ttE(ded)\tExecRatio\tnv(dist)\tnv(ded)\tValveRatio")
	for _, jr := range runBatch(ctx, jobs, workers) {
		if jr.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", jr.Job.Name, jr.Err)
			continue
		}
		cmp, err := jr.Result.CompareDedicated()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", jr.Job.Name, err)
			continue
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%d\t%d\t%.2f\n",
			jr.Job.Name,
			cmp.DistributedMakespan, cmp.DedicatedMakespan, cmp.ExecRatio,
			cmp.DistributedValves, cmp.DedicatedValves, cmp.ValveRatio,
		)
	}
	w.Flush()
	fmt.Println()
}

func runFig11(ctx context.Context) {
	fmt.Println("== Fig. 11: Execution snapshots of RA30 ==")
	// The snapshot picker needs the simulator internals (cached-sample and
	// active-route counts), so this one experiment runs on the core API.
	b, err := assay.Get("RA30")
	if err != nil {
		fmt.Fprintf(os.Stderr, "RA30: %v\n", err)
		return
	}
	res, err := core.SynthesizeContext(ctx, b.Graph, core.Options{
		Devices:      b.Devices,
		Transport:    b.Transport,
		GridRows:     b.GridRows,
		GridCols:     b.GridCols,
		ModelIO:      b.ModelIO,
		ILPTimeLimit: 20 * time.Second,
		Verify:       verifyResults,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "RA30: %v\n", err)
		return
	}
	s := res.Simulator()
	// Pick two snapshot times: one with a live transport, one while caching
	// (the paper shows t=35 s and t=45 s).
	var withTransport, withCache *sim.Snapshot
	for _, t := range s.InterestingTimes() {
		snap := s.At(t)
		if withCache == nil && snap.CachedSamples > 0 && len(snap.ActiveRoutes) > 1 {
			withCache = snap
		}
		if withTransport == nil && len(snap.ActiveRoutes) > 0 {
			withTransport = snap
		}
		if withCache != nil && withTransport != nil {
			break
		}
	}
	if withTransport != nil {
		fmt.Println(sim.RenderASCII(res.Architecture, withTransport))
	}
	if withCache != nil {
		fmt.Println(sim.RenderASCII(res.Architecture, withCache))
	}
}
