// Command flowsyn synthesizes a flow-based microfluidic biochip with
// distributed channel storage from a bioassay description.
//
// The assay is either one of the built-in benchmarks (-benchmark) or a JSON
// sequencing graph read from a file (-assay). The tool prints the synthesis
// summary (Table 2 columns), optionally a Gantt chart of the schedule, and
// can write execution snapshots as SVG.
//
// Usage:
//
//	flowsyn -benchmark PCR
//	flowsyn -assay my_assay.json -devices 3 -grid 5x5 -gantt
//	flowsyn -benchmark RA30 -snapshot-dir out/   # writes Fig.11-style SVGs
//	flowsyn -benchmark CPA -fault device:1@130   # fail device 1 at t=130, recover online
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"flowsyn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowsyn: ")
	var (
		benchmark = flag.String("benchmark", "", "built-in benchmark name ("+strings.Join(flowsyn.BenchmarkNames(), ", ")+")")
		assayPath = flag.String("assay", "", "path to an assay JSON file")
		devices   = flag.Int("devices", 0, "maximum number of devices (required with -assay)")
		transport = flag.Int("transport", 10, "device-to-device transport time u_c in seconds")
		gridSpec  = flag.String("grid", "4x4", "connection grid size, e.g. 4x4")
		timeOnly  = flag.Bool("time-only", false, "optimize execution time only (disable storage minimization)")
		gantt     = flag.Bool("gantt", false, "print the schedule as a per-device timeline")
		ascii     = flag.Bool("ascii", false, "print an execution snapshot as ASCII art")
		snapDir   = flag.String("snapshot-dir", "", "write SVG snapshots of interesting execution moments to this directory")
		layoutSVG = flag.String("layout-svg", "", "write the compressed physical layout to this SVG file")
		compare   = flag.Bool("compare-dedicated", false, "also report the dedicated-storage baseline (Fig. 10)")
		storageF  = flag.String("storage", "distributed", "storage strategy: distributed (paper), dedicated (single unit behind a serialized port) or hybrid (bounded channel cache in front of the unit)")
		cacheSlot = flag.Int("cache-slots", 0, "hybrid cache slots (0 selects the default 2)")
		eviction  = flag.String("eviction", "lru", "hybrid cache eviction policy: lru or earliest-next-fetch")
		doVerify  = flag.Bool("verify", false, "re-check the result with the independent invariant checker")
		progress  = flag.Bool("progress", false, "print live pipeline progress (stages, solver incumbents) while synthesizing")
		faultSpec = flag.String("fault", "", "inject a mid-execution fault and recover the suffix online, as kind:index@time (device:1@130, channel:5@40, storage:5@40); renders show the recovered plan")
	)
	flag.Parse()

	var fault flowsyn.Fault
	if *faultSpec != "" {
		var err error
		if fault, err = parseFault(*faultSpec); err != nil {
			log.Fatal(err)
		}
	}

	var (
		a    *flowsyn.Assay
		opts flowsyn.Options
		err  error
	)
	switch {
	case *benchmark != "":
		a, opts, err = flowsyn.Benchmark(*benchmark)
		if err != nil {
			log.Fatal(err)
		}
	case *assayPath != "":
		f, err := os.Open(*assayPath)
		if err != nil {
			log.Fatal(err)
		}
		a, err = flowsyn.ReadAssay(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if *devices < 1 {
			log.Fatal("-devices is required with -assay")
		}
		rows, cols, err := parseGrid(*gridSpec)
		if err != nil {
			log.Fatal(err)
		}
		opts = flowsyn.Options{Devices: *devices, Transport: *transport, GridRows: rows, GridCols: cols}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *timeOnly {
		opts.Objective = flowsyn.MinimizeTimeOnly
	}
	policy, err := flowsyn.ParseStoragePolicy(*storageF)
	if err != nil {
		log.Fatal(err)
	}
	opts.Storage = policy
	opts.CacheSlots = *cacheSlot
	opts.Eviction = *eviction
	opts.Verify = *doVerify

	// An interrupt cancels the synthesis cleanly: the pipeline observes the
	// context all the way down to the MILP solver and exits within
	// milliseconds.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The one-shot CLI runs on the same session API as the flowsynd daemon:
	// a single-worker Solver whose ticket exposes the progress stream and
	// the per-job service metrics.
	solver, err := flowsyn.New(flowsyn.Config{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	if err != nil {
		log.Fatal(err)
	}
	defer solver.Close()
	ticket, err := solver.Submit(ctx, flowsyn.Job{Assay: a, Options: opts})
	if err != nil {
		log.Fatal(err)
	}
	if *progress {
		for e := range ticket.Events() {
			switch e.Kind {
			case flowsyn.ProgressStageStart:
				fmt.Printf("progress: %s...\n", e.Stage)
			case flowsyn.ProgressStageEnd:
				fmt.Printf("progress: %s done in %v\n", e.Stage, e.Duration.Round(time.Microsecond))
			case flowsyn.ProgressIncumbent:
				fmt.Printf("progress: incumbent makespan %d (objective %.0f, node %d)\n", e.Makespan, e.Objective, e.Nodes)
			case flowsyn.ProgressSolver:
				fmt.Printf("progress: solver finished: makespan %d, %d nodes, gap %s\n", e.Makespan, e.Nodes, gapString(e.Gap))
			case flowsyn.ProgressFailed:
				fmt.Printf("progress: failed: %s\n", e.Err)
			}
		}
	}
	res, err := ticket.Wait(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}
	fmt.Printf("%s: %s\n", a.Name(), res.Summary())
	fmt.Printf("stores=%d peak-capacity=%d channel-utilization=%.1f%%\n",
		res.StoreCount(), res.StorageCapacity(), 100*res.ChannelUtilization())
	if res.StoragePolicy() != flowsyn.DistributedStorage {
		fmt.Printf("storage: %s | %d unit stores, %d cells, %d unit valves, %d s port queue delay\n",
			res.StoragePolicy(), res.UnitStoreCount(), res.UnitCells(), res.UnitValves(), res.UnitQueueDelay())
	}
	if sv := res.SolverStats(); sv != nil {
		fmt.Printf("solver: %s in %v | model %dv/%dc | %d nodes, %d pivots, warm-start %.0f%%, gap %s | presolve -%d cols -%d rows\n",
			sv.Status, sv.Runtime.Round(time.Millisecond),
			sv.ModelVars, sv.ModelConstraints,
			sv.Nodes, sv.Iterations, 100*sv.WarmStartRate, gapString(sv.Gap),
			sv.PresolveFixedCols, sv.PresolveRemovedRows)
		if sv.Kernel != "" {
			fmt.Printf("kernel: %s | %d refactorizations, %d updates (%d rejected), fill %.2f | node propagation: %d tightenings, %d prunes\n",
				sv.Kernel, sv.Refactorizations, sv.FTUpdates, sv.FTUpdatesRejected,
				sv.FillRatio, sv.PropagationTightenings, sv.PropagationPrunes)
		}
		if sv.CutsSeparated > 0 || sv.PseudoCostInits > 0 || sv.HeuristicIncumbents > 0 || sv.ReducedCostFixings > 0 {
			fmt.Printf("cut-and-branch: %d cuts separated (%d rounds, %d clique, %d lifted covers, sep %v), %d applied, %d aged out | %d pseudo-cost probes, %d heuristic + %d local-branching incumbents, %d reduced-cost fixings\n",
				sv.CutsSeparated, sv.CutRounds, sv.CliqueCuts, sv.LiftedCovers,
				sv.SeparationWall.Round(time.Microsecond),
				sv.CutsApplied, sv.CutsAgedOut,
				sv.PseudoCostInits, sv.HeuristicIncumbents, sv.LocalBranchingIncumbents,
				sv.ReducedCostFixings)
		}
		if tot := sv.IncrementalPivots + sv.FullPricingPivots; tot > 0 {
			fmt.Printf("pricing: %d incremental / %d full pivots (%.0f%% incremental)\n",
				sv.IncrementalPivots, sv.FullPricingPivots,
				100*float64(sv.IncrementalPivots)/float64(tot))
		}
	}
	if js := res.JobStats(); js != nil {
		cache := "miss"
		switch {
		case js.CacheHit:
			cache = "hit"
		case js.ScheduleCacheHit:
			cache = "schedule-hit"
		}
		fmt.Printf("service: queue %v, runtime %v, cache %s, %d progress events\n",
			js.QueueWait.Round(time.Microsecond), js.Runtime.Round(time.Microsecond), cache, js.Events)
	}
	if *doVerify {
		fmt.Println("verified: all invariants hold (precedence, exclusivity, storage, metrics, sim agreement)")
	}

	if *faultSpec != "" {
		rt, err := solver.Recover(ctx, ticket, fault)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := rt.Wait(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				log.Fatal("interrupted")
			}
			log.Fatal(err)
		}
		rs := rec.Recovery()
		fmt.Printf("\nRecovery from %s:\n", rs.Fault)
		fmt.Printf("  preserved %d ops and %d routes, re-planned %d transports\n",
			rs.PreservedOps, rs.PreservedRoutes, rs.ReroutedTransports)
		fmt.Printf("  makespan %d -> %d (%+d s)\n", rs.OldMakespan, rs.NewMakespan, rs.MakespanDelta)
		// Everything rendered below shows the recovered plan.
		res = rec
	}

	if *gantt {
		fmt.Println("\nSchedule:")
		fmt.Print(res.GanttChart())
	}
	if *ascii {
		times := res.InterestingTimes()
		if len(times) > 0 {
			fmt.Println()
			fmt.Print(res.SnapshotASCII(times[len(times)/2]))
		}
	}
	if *compare {
		cmp, err := res.CompareDedicated()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nDedicated-storage baseline: tE %d -> %d (ratio %.2f), valves %d -> %d (ratio %.2f)\n",
			cmp.DedicatedMakespan, cmp.DistributedMakespan, cmp.ExecRatio,
			cmp.DedicatedValves, cmp.DistributedValves, cmp.ValveRatio)
	}
	if *layoutSVG != "" {
		if err := os.WriteFile(*layoutSVG, []byte(res.LayoutSVG()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote layout to %s\n", *layoutSVG)
	}
	if *snapDir != "" {
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, t := range res.InterestingTimes() {
			name := filepath.Join(*snapDir, fmt.Sprintf("%s_t%04d.svg", a.Name(), t))
			if err := os.WriteFile(name, []byte(res.SnapshotSVG(t)), 0o644); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("wrote %d snapshots to %s\n", len(res.InterestingTimes()), *snapDir)
	}
}

// gapString renders a relative MIP gap, with -1 meaning no bound survived.
func gapString(g float64) string {
	if g < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*g)
}

func parseGrid(spec string) (rows, cols int, err error) {
	if _, err := fmt.Sscanf(spec, "%dx%d", &rows, &cols); err != nil {
		return 0, 0, fmt.Errorf("invalid grid %q (want e.g. 4x4)", spec)
	}
	return rows, cols, nil
}

// parseFault reads a kind:index@time fault spec like "device:1@130".
func parseFault(spec string) (flowsyn.Fault, error) {
	var f flowsyn.Fault
	head, at, ok := strings.Cut(spec, "@")
	kind, idx, ok2 := strings.Cut(head, ":")
	if !ok || !ok2 {
		return f, fmt.Errorf("invalid fault %q (want kind:index@time, e.g. device:1@130)", spec)
	}
	n, err := strconv.Atoi(idx)
	if err != nil {
		return f, fmt.Errorf("invalid fault index %q: %v", idx, err)
	}
	if f.Time, err = strconv.Atoi(at); err != nil {
		return f, fmt.Errorf("invalid fault time %q: %v", at, err)
	}
	switch kind {
	case "device":
		f.Kind, f.Device = flowsyn.DeviceFault, n
	case "channel":
		f.Kind, f.Channel = flowsyn.ChannelFault, n
	case "storage":
		f.Kind, f.Channel = flowsyn.StorageFault, n
	default:
		return f, fmt.Errorf("unknown fault kind %q (want device, channel or storage)", kind)
	}
	return f, nil
}
