package main

import (
	"testing"

	"flowsyn"
)

func TestParseGrid(t *testing.T) {
	rows, cols, err := parseGrid("5x7")
	if err != nil || rows != 5 || cols != 7 {
		t.Errorf("parseGrid(5x7) = %d,%d,%v", rows, cols, err)
	}
	if _, _, err := parseGrid("big"); err == nil {
		t.Error("parseGrid accepted garbage")
	}
}

func TestParseFault(t *testing.T) {
	cases := []struct {
		spec string
		want flowsyn.Fault
	}{
		{"device:1@130", flowsyn.Fault{Kind: flowsyn.DeviceFault, Device: 1, Time: 130}},
		{"channel:5@40", flowsyn.Fault{Kind: flowsyn.ChannelFault, Channel: 5, Time: 40}},
		{"storage:5@40", flowsyn.Fault{Kind: flowsyn.StorageFault, Channel: 5, Time: 40}},
	}
	for _, c := range cases {
		got, err := parseFault(c.spec)
		if err != nil || got != c.want {
			t.Errorf("parseFault(%q) = %+v, %v; want %+v", c.spec, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "device:1", "device@130", "meteor:1@130", "device:x@130", "device:1@now"} {
		if _, err := parseFault(bad); err == nil {
			t.Errorf("parseFault(%q) accepted", bad)
		}
	}
}

func TestGapString(t *testing.T) {
	if s := gapString(-1); s != "n/a" {
		t.Errorf("gapString(-1) = %q", s)
	}
	if s := gapString(0.051); s != "5.10%" {
		t.Errorf("gapString(0.051) = %q", s)
	}
}
