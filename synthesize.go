package flowsyn

import (
	"context"
	"time"

	"flowsyn/internal/core"
	"flowsyn/internal/sched"
)

// Objective selects the scheduling objective, matching the two
// configurations the paper compares in Fig. 9.
type Objective int

const (
	// MinimizeTimeAndStorage is the paper's objective (6) with β > 0.
	MinimizeTimeAndStorage Objective = iota
	// MinimizeTimeOnly is the β = 0 baseline.
	MinimizeTimeOnly
)

// Engine selects the scheduling engine.
type Engine int

const (
	// AutoEngine solves small assays exactly (ILP) and larger ones with the
	// storage-aware list scheduler, mirroring the paper's best-effort solver
	// cap.
	AutoEngine Engine = iota
	// HeuristicEngine always uses the list scheduler.
	HeuristicEngine
	// ILPEngine always attempts the exact ILP.
	ILPEngine
)

// Options configures synthesis. The zero value is not valid: Devices must be
// set. Unset fields take the defaults documented per field.
type Options struct {
	// Devices is the maximum number of devices allowed on the chip.
	Devices int
	// Transport is the pure device-to-device transport time u_c in seconds
	// (default 10).
	Transport int
	// GridRows and GridCols set the connection grid (default 4×4).
	GridRows, GridCols int
	// Objective selects the scheduling objective.
	Objective Objective
	// Engine selects the scheduling engine.
	Engine Engine
	// ILPTimeLimit caps the exact scheduler (default 30 s).
	ILPTimeLimit time.Duration
	// ModelIO routes reagent loading and product unloading through two chip
	// boundary ports during architectural synthesis. Leave it off for dense
	// assays that already saturate their connection grid.
	ModelIO bool
	// Verify appends a verification stage to the pipeline: the finished
	// result is re-checked from first principles by an independent invariant
	// checker (precedence with transport latencies, device and channel
	// exclusivity, storage accounting, metric recomputation, simulator
	// cross-check). Any violation fails the synthesis with a VerifyError.
	Verify bool
}

func (o Options) internal() core.Options {
	mode := sched.TimeAndStorage
	if o.Objective == MinimizeTimeOnly {
		mode = sched.TimeOnly
	}
	engine := core.Auto
	switch o.Engine {
	case HeuristicEngine:
		engine = core.Heuristic
	case ILPEngine:
		engine = core.ExactILP
	}
	return core.Options{
		Devices:      o.Devices,
		Transport:    o.Transport,
		GridRows:     o.GridRows,
		GridCols:     o.GridCols,
		Mode:         mode,
		Engine:       engine,
		ILPTimeLimit: o.ILPTimeLimit,
		ModelIO:      o.ModelIO,
		Verify:       o.Verify,
	}
}

// Synthesize runs the full flow — scheduling and binding, architectural
// synthesis with distributed channel storage, and physical design — on the
// assay and returns the synthesized chip.
func Synthesize(a *Assay, opts Options) (*Result, error) {
	return SynthesizeContext(context.Background(), a, opts)
}

// SynthesizeContext is Synthesize bounded by a context. Cancelling ctx aborts
// the pipeline promptly — every stage down to the MILP branch-and-bound loop
// observes the context — and the returned error wraps ctx.Err().
func SynthesizeContext(ctx context.Context, a *Assay, opts Options) (*Result, error) {
	inner, err := core.SynthesizeContext(ctx, a.g, opts.internal())
	if err != nil {
		// A verify-stage rejection surfaces as the exported *VerifyError so
		// callers can tell "the result is wrong" from "synthesis failed".
		return nil, publicVerifyError(err)
	}
	return &Result{inner: inner}, nil
}
