package flowsyn

import (
	"context"
	"fmt"
	"time"

	"flowsyn/internal/core"
	"flowsyn/internal/sched"
	"flowsyn/internal/storage"
)

// Objective selects the scheduling objective, matching the two
// configurations the paper compares in Fig. 9.
type Objective int

const (
	// MinimizeTimeAndStorage is the paper's objective (6) with β > 0.
	MinimizeTimeAndStorage Objective = iota
	// MinimizeTimeOnly is the β = 0 baseline.
	MinimizeTimeOnly
)

// StoragePolicy selects where intermediate fluids wait between their
// producer and consumer operations.
type StoragePolicy int

const (
	// DistributedStorage is the paper's method (default): fluids wait in the
	// transportation channels around the devices.
	DistributedStorage StoragePolicy = StoragePolicy(storage.Distributed)
	// DedicatedStorage stores every fluid in a single storage unit behind a
	// serialized port; each stored fluid pays a full store plus a full fetch
	// transport through that port, and the unit charges mux-tree valves for
	// its cells.
	DedicatedStorage StoragePolicy = StoragePolicy(storage.Dedicated)
	// HybridStorage caches fluids in a bounded set of channel segments in
	// front of the dedicated unit, with a pluggable eviction policy
	// (Options.CacheSlots and Options.Eviction).
	HybridStorage StoragePolicy = StoragePolicy(storage.Hybrid)
)

// String names the policy as the CLI flags spell it.
func (p StoragePolicy) String() string { return storage.Policy(p).String() }

// ParseStoragePolicy converts a CLI spelling ("distributed", "dedicated",
// "hybrid", plus aliases "channels", "unit", "cache") into a StoragePolicy.
func ParseStoragePolicy(s string) (StoragePolicy, error) {
	p, err := storage.ParsePolicy(s)
	return StoragePolicy(p), err
}

// Engine selects the scheduling engine.
type Engine int

const (
	// AutoEngine solves small assays exactly (ILP) and larger ones with the
	// storage-aware list scheduler, mirroring the paper's best-effort solver
	// cap.
	AutoEngine Engine = iota
	// HeuristicEngine always uses the list scheduler.
	HeuristicEngine
	// ILPEngine always attempts the exact ILP.
	ILPEngine
)

// Options configures synthesis. The zero value is not valid: Devices must be
// set. Unset fields take the defaults documented per field.
type Options struct {
	// Devices is the maximum number of devices allowed on the chip.
	Devices int
	// Transport is the pure device-to-device transport time u_c in seconds
	// (default 10).
	Transport int
	// GridRows and GridCols set the connection grid (default 4×4).
	GridRows, GridCols int
	// Objective selects the scheduling objective.
	Objective Objective
	// Engine selects the scheduling engine.
	Engine Engine
	// ILPTimeLimit caps the exact scheduler (default 30 s).
	ILPTimeLimit time.Duration
	// ModelIO routes reagent loading and product unloading through two chip
	// boundary ports during architectural synthesis. Leave it off for dense
	// assays that already saturate their connection grid.
	ModelIO bool
	// Storage selects the storage strategy: distributed channel storage (the
	// paper's method, default), a dedicated storage unit, or a hybrid channel
	// cache in front of the unit. Both scheduling engines, architectural
	// synthesis and verification honor the strategy end to end.
	Storage StoragePolicy
	// CacheSlots bounds the hybrid strategy's channel cache (0 selects the
	// default 2). Ignored by the other strategies.
	CacheSlots int
	// Eviction picks the hybrid cache's eviction policy: "lru" (default) or
	// "earliest-next-fetch". Ignored by the other strategies.
	Eviction string
	// Verify appends a verification stage to the pipeline: the finished
	// result is re-checked from first principles by an independent invariant
	// checker (precedence with transport latencies, device and channel
	// exclusivity, storage accounting, metric recomputation, simulator
	// cross-check). Any violation fails the synthesis with a VerifyError.
	Verify bool
}

// OptionError reports an invalid Options (or GridRange) field, named so
// callers can surface precise configuration feedback. All public entry
// points validate eagerly: a bad field fails before any work is queued
// instead of surfacing as a late pipeline failure.
type OptionError struct {
	// Field names the offending field, e.g. "Devices" or "GridRange.MinSize".
	Field string
	// Value is the rejected value.
	Value any
	// Reason explains the constraint that was violated.
	Reason string
}

// Error renders the validation failure.
func (e *OptionError) Error() string {
	return fmt.Sprintf("flowsyn: invalid %s %v: %s", e.Field, e.Value, e.Reason)
}

// Validate checks every Options field eagerly and returns a *OptionError
// naming the first bad one, or nil. Zero values documented as defaults
// (Transport, GridRows, GridCols, ILPTimeLimit) are valid.
func (o Options) Validate() error {
	if o.Devices < 1 {
		return &OptionError{Field: "Devices", Value: o.Devices, Reason: "need at least one device"}
	}
	if o.Transport < 0 {
		return &OptionError{Field: "Transport", Value: o.Transport, Reason: "transport time must be >= 1 (0 selects the default 10)"}
	}
	if o.GridRows < 0 || (o.GridRows > 0 && o.GridRows < 2) {
		return &OptionError{Field: "GridRows", Value: o.GridRows, Reason: "connection grid needs at least 2 rows (0 selects the default 4)"}
	}
	if o.GridCols < 0 || (o.GridCols > 0 && o.GridCols < 2) {
		return &OptionError{Field: "GridCols", Value: o.GridCols, Reason: "connection grid needs at least 2 columns (0 selects the default 4)"}
	}
	if o.Objective != MinimizeTimeAndStorage && o.Objective != MinimizeTimeOnly {
		return &OptionError{Field: "Objective", Value: int(o.Objective), Reason: "unknown objective"}
	}
	if o.Engine != AutoEngine && o.Engine != HeuristicEngine && o.Engine != ILPEngine {
		return &OptionError{Field: "Engine", Value: int(o.Engine), Reason: "unknown engine"}
	}
	if o.ILPTimeLimit < 0 {
		return &OptionError{Field: "ILPTimeLimit", Value: o.ILPTimeLimit, Reason: "time limit must be >= 0 (0 selects the default 30s)"}
	}
	if o.Storage != DistributedStorage && o.Storage != DedicatedStorage && o.Storage != HybridStorage {
		return &OptionError{Field: "Storage", Value: int(o.Storage), Reason: "unknown storage policy"}
	}
	if o.CacheSlots < 0 {
		return &OptionError{Field: "CacheSlots", Value: o.CacheSlots, Reason: "cache slots must be >= 0 (0 selects the default 2)"}
	}
	if _, err := storage.ParseEviction(o.Eviction); err != nil {
		return &OptionError{Field: "Eviction", Value: o.Eviction, Reason: "unknown eviction policy (want lru or earliest-next-fetch)"}
	}
	return nil
}

// storageConfig maps the public storage fields onto the internal subsystem's
// config. Validate has already rejected bad spellings.
func (o Options) storageConfig() storage.Config {
	ev, _ := storage.ParseEviction(o.Eviction)
	return storage.Config{
		Policy:     storage.Policy(o.Storage),
		CacheSlots: o.CacheSlots,
		Eviction:   ev,
	}
}

func (o Options) internal() core.Options {
	mode := sched.TimeAndStorage
	if o.Objective == MinimizeTimeOnly {
		mode = sched.TimeOnly
	}
	engine := core.Auto
	switch o.Engine {
	case HeuristicEngine:
		engine = core.Heuristic
	case ILPEngine:
		engine = core.ExactILP
	}
	return core.Options{
		Devices:      o.Devices,
		Transport:    o.Transport,
		GridRows:     o.GridRows,
		GridCols:     o.GridCols,
		Mode:         mode,
		Engine:       engine,
		ILPTimeLimit: o.ILPTimeLimit,
		ModelIO:      o.ModelIO,
		Storage:      o.storageConfig(),
		Verify:       o.Verify,
	}
}

// Synthesize runs the full flow — scheduling and binding, architectural
// synthesis with distributed channel storage, and physical design — on the
// assay and returns the synthesized chip.
func Synthesize(a *Assay, opts Options) (*Result, error) {
	return SynthesizeContext(context.Background(), a, opts)
}

// SynthesizeContext is Synthesize bounded by a context. Cancelling ctx aborts
// the pipeline promptly — every stage down to the MILP branch-and-bound loop
// observes the context — and the returned error wraps ctx.Err().
//
// It is a thin wrapper over the session API: an ephemeral single-worker
// Solver (no cache) runs the one job. Callers synthesizing the same or
// related assays repeatedly should hold a Solver of their own (see New) to
// benefit from the result and schedule caches.
func SynthesizeContext(ctx context.Context, a *Assay, opts Options) (*Result, error) {
	if a == nil {
		return nil, fmt.Errorf("flowsyn: no assay")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	// New cannot fail without a StoreDir.
	s, _ := New(Config{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	defer s.Close()
	t, err := s.Submit(ctx, Job{Assay: a, Options: opts})
	if err != nil {
		return nil, err
	}
	return t.Wait(ctx)
}
