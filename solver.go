package flowsyn

import (
	"context"
	"errors"
	"sync"
	"time"

	"flowsyn/internal/core"
	"flowsyn/internal/service"
	"flowsyn/internal/store"
)

// Config sizes a Solver session created by New.
type Config struct {
	// Workers is the synthesis worker pool size; 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the submit queue; Submit returns ErrQueueFull
	// beyond it. 0 selects 256.
	QueueDepth int
	// CacheEntries bounds the content-addressed result and schedule caches
	// (each). 0 selects 512; negative disables caching (including the
	// persistent store tier).
	CacheEntries int
	// StoreDir, if non-empty, opens a persistent disk store rooted there and
	// write-through-backs the schedule cache with it: restarts start warm,
	// and N replicas sharing the directory perform each cold solve exactly
	// once fleet-wide (cross-replica single-flight leases).
	StoreDir string
	// LeaseTTL is the cross-replica single-flight lease expiry horizon (a
	// crashed replica's claim becomes stealable after this long); 0 selects
	// the store default (10s). Ignored without StoreDir.
	LeaseTTL time.Duration
	// JobTTL evicts jobs still queued after this long (they fail with
	// ErrJobExpired). 0 disables queue-age eviction.
	JobTTL time.Duration
	// TenantQueueDepth caps the queued jobs of any single tenant; Submit
	// returns ErrTenantQuota beyond it. 0 disables per-tenant quotas.
	TenantQueueDepth int
}

// Sentinel errors of the session API. Compare with errors.Is.
var (
	// ErrSolverClosed reports a Submit to a closed Solver.
	ErrSolverClosed = service.ErrClosed
	// ErrQueueFull reports that the bounded submit queue is at capacity;
	// back off and retry.
	ErrQueueFull = service.ErrQueueFull
	// ErrTenantQuota reports that the submitting tenant is at its queued-job
	// quota (Config.TenantQueueDepth); other tenants are unaffected.
	ErrTenantQuota = service.ErrTenantQuota
	// ErrJobExpired reports a queued job evicted before running: it outlived
	// Config.JobTTL, or its deadline passed while it waited.
	ErrJobExpired = service.ErrExpired
	// ErrJobPending reports a Ticket.Result call before the job finished.
	ErrJobPending = service.ErrPending
)

// Solver is a long-lived synthesis session: a bounded worker pool with a
// content-addressed result cache keyed by the canonical assay serialization
// plus the synthesis options, a schedule cache shared across grid scenarios,
// and per-job progress streams. One Solver serves many concurrent callers;
// repeated and design-space-exploration requests are answered from cache
// instead of re-solving.
//
// The one-shot entry points (Synthesize, SynthesizeBatch, ExploreGrids) are
// thin wrappers that run an ephemeral session per call.
type Solver struct {
	inner *service.Solver
}

// New starts a solver session. Close it when done to drain the worker pool.
// It fails only when Config.StoreDir names a persistent store that cannot be
// opened.
func New(cfg Config) (*Solver, error) {
	var st store.Store
	if cfg.StoreDir != "" {
		disk, err := store.OpenDisk(cfg.StoreDir, store.DiskOptions{LeaseTTL: cfg.LeaseTTL})
		if err != nil {
			return nil, err
		}
		st = disk
	}
	return &Solver{inner: service.New(service.Config{
		Workers:      cfg.Workers,
		QueueDepth:   cfg.QueueDepth,
		CacheEntries: cfg.CacheEntries,
		Store:        st,
		JobTTL:       cfg.JobTTL,
		TenantQueue:  cfg.TenantQueueDepth,
	})}, nil
}

// Submit validates and enqueues a synthesis job, returning its Ticket
// immediately. The job runs under ctx: cancelling it aborts the job whether
// queued or mid-solve. Options are validated eagerly — a bad field returns a
// *OptionError before any work is queued.
func (s *Solver) Submit(ctx context.Context, job Job) (*Ticket, error) {
	if job.Assay == nil {
		return nil, errors.New("flowsyn: job has no assay")
	}
	if err := job.Options.Validate(); err != nil {
		return nil, err
	}
	inner, err := s.inner.Submit(ctx, service.Job{
		Name:     job.Name,
		Graph:    job.Assay.g,
		Options:  job.Options.internal(),
		Tenant:   job.Tenant,
		Priority: job.Priority,
		Deadline: job.Deadline,
	})
	if err != nil {
		return nil, err
	}
	return &Ticket{inner: inner}, nil
}

// Resynthesize submits an edited assay as an incremental re-synthesis of a
// finished job: the sequencing graphs are diffed, the prior schedule's
// binding is reused for the unchanged prefix, and the exact engines
// warm-start the MILP from the prior solution. Options are inherited from
// the prior job. The prior ticket must have completed successfully.
func (s *Solver) Resynthesize(ctx context.Context, prior *Ticket, edited *Assay) (*Ticket, error) {
	if prior == nil {
		return nil, errors.New("flowsyn: resynthesize needs a prior ticket")
	}
	if edited == nil {
		return nil, errors.New("flowsyn: resynthesize needs an edited assay")
	}
	inner, err := s.inner.Resynthesize(ctx, prior.inner, service.Job{Graph: edited.g})
	if err != nil {
		return nil, err
	}
	return &Ticket{inner: inner}, nil
}

// Stats returns a snapshot of the session counters.
func (s *Solver) Stats() Stats {
	st := s.inner.Stats()
	out := Stats{
		Submitted:         st.Submitted,
		Completed:         st.Completed,
		Failed:            st.Failed,
		Expired:           st.Expired,
		ResultCacheHits:   st.ResultHits,
		ResultCacheMisses: st.ResultMisses,
		ScheduleCacheHits: st.ScheduleHits,
		ScheduleSolves:    st.ScheduleSolves,
		StoreHits:         st.StoreHits,
		StorePuts:         st.StorePuts,
		StoreErrors:       st.StoreErrors,
		LeaseWaits:        st.LeaseWaits,
		LeaseWaitTotal:    st.LeaseWaitTotal,
		Coalesced:         st.Coalesced,
		InFlight:          st.InFlight,
		Queued:            st.Queued,
		EventsDropped:     st.EventsDropped,
		ColdWall:          Histogram(st.ColdWall),
		WarmWall:          Histogram(st.WarmWall),
	}
	if len(st.Tenants) > 0 {
		out.Tenants = make(map[string]TenantStats, len(st.Tenants))
		for name, ts := range st.Tenants {
			out.Tenants[name] = TenantStats(ts)
		}
	}
	return out
}

// Close stops accepting jobs, drains the queue (queued jobs still complete
// under their own contexts) and waits for the workers to exit. Closing twice
// is a no-op.
func (s *Solver) Close() error { return s.inner.Close() }

// Stats is a snapshot of a Solver session's counters.
type Stats struct {
	// Submitted, Completed and Failed count jobs over the session lifetime;
	// Expired counts jobs evicted from the queue (JobTTL or deadline), a
	// subset of Failed.
	Submitted, Completed, Failed, Expired int64
	// ResultCacheHits and ResultCacheMisses count full-result cache
	// lookups; a hit serves the finished chip without running any stage.
	ResultCacheHits, ResultCacheMisses int64
	// ScheduleCacheHits counts jobs that reused a cached schedule (only the
	// architectural and physical stages ran); ScheduleSolves counts
	// scheduling solves that actually executed — the full solves a grid
	// exploration avoids and a fleet performs exactly once per unique key.
	ScheduleCacheHits, ScheduleSolves int64
	// StoreHits counts schedules loaded from the persistent store tier;
	// StorePuts write-throughs; StoreErrors failed store operations (each
	// degrades to a local solve, never a job failure).
	StoreHits, StorePuts, StoreErrors int64
	// LeaseWaits counts jobs that waited on another replica's single-flight
	// lease; LeaseWaitTotal accumulates that waiting time.
	LeaseWaits     int64
	LeaseWaitTotal time.Duration
	// Coalesced counts jobs served by waiting on an identical in-flight
	// solve instead of starting their own.
	Coalesced int64
	// InFlight and Queued describe the instantaneous pool state.
	InFlight, Queued int
	// EventsDropped counts progress events discarded past slow subscribers.
	EventsDropped int64
	// ColdWall observes the wall time of jobs that ran a scheduling engine;
	// WarmWall of jobs served from any warm tier (result cache, schedule
	// cache, persistent store, coalesced flight).
	ColdWall, WarmWall Histogram
	// Tenants snapshots per-tenant admission counters, keyed by tenant name
	// ("" is the anonymous default tenant). Nil before the first submit.
	Tenants map[string]TenantStats
}

// WallBucketsMS are the Histogram bucket upper bounds in milliseconds; the
// last Counts slot is the overflow bucket.
var WallBucketsMS = service.WallBucketsMS

// Histogram is a fixed-bucket solve-wall latency histogram (bounds
// WallBucketsMS plus overflow).
type Histogram service.Histogram

// TenantStats counts one tenant's admission outcomes.
type TenantStats service.TenantStats

// Progress event kinds, in the order they can occur in a stream.
const (
	// ProgressQueued is emitted once at submission.
	ProgressQueued = service.EventQueued
	// ProgressStarted is emitted when a worker picks the job up.
	ProgressStarted = service.EventStarted
	// ProgressCacheHit is emitted when the finished result is served from
	// the result cache or a coalesced identical in-flight solve.
	ProgressCacheHit = service.EventCacheHit
	// ProgressStoreHit is emitted when the schedule is loaded from the
	// fleet's persistent store instead of being solved by this replica.
	ProgressStoreHit = service.EventStoreHit
	// ProgressStageStart and ProgressStageEnd bracket each pipeline stage
	// (StageSchedule, StageBind, StageArch, StagePhys, StageVerify).
	ProgressStageStart = service.EventStageStart
	ProgressStageEnd   = service.EventStageEnd
	// ProgressIncumbent reports an improving incumbent of the exact solve:
	// its makespan, objective and branch-and-bound node count.
	ProgressIncumbent = service.EventIncumbent
	// ProgressSolver summarizes a finished exact solve: final makespan,
	// objective, node count and MIP gap.
	ProgressSolver = service.EventSolver
	// ProgressDone and ProgressFailed terminate every stream.
	ProgressDone   = service.EventDone
	ProgressFailed = service.EventFailed
)

// Progress is one observation in a job's event stream.
type Progress struct {
	// Seq numbers the events of one job from 1, monotonically; gaps mark
	// events dropped past a slow subscriber.
	Seq int
	// Kind is one of the Progress* constants.
	Kind string
	// Time stamps the emission.
	Time time.Time
	// Stage names the pipeline stage (stage and incumbent events).
	Stage string
	// Duration is the stage wall-clock time (ProgressStageEnd only).
	Duration time.Duration
	// Makespan, Objective and Nodes describe an incumbent
	// (ProgressIncumbent), a finished solve (ProgressSolver), or the final
	// makespan (ProgressDone).
	Makespan  int
	Objective float64
	Nodes     int
	// Gap is the relative MIP gap at termination (ProgressSolver only): 0
	// for a proven optimum, -1 when no dual bound survived.
	Gap float64
	// Err carries the failure message (ProgressFailed only).
	Err string
}

// JobStats reports the per-job service diagnostics of a result produced
// through a Solver session: queueing, cache usage and re-synthesis reuse.
type JobStats struct {
	// QueueWait is the time the job spent queued; Runtime its wall-clock
	// time inside a worker (near zero on a cache hit).
	QueueWait, Runtime time.Duration
	// CacheHit reports the complete result came from the result cache;
	// ScheduleCacheHit that only the schedule was reused; Coalesced that
	// the job waited on an identical in-flight solve; StoreHit that the
	// schedule came from the fleet's persistent store.
	CacheHit, ScheduleCacheHit, Coalesced, StoreHit bool
	// LeaseWait is the time spent waiting on another replica's cross-fleet
	// single-flight lease.
	LeaseWait time.Duration
	// Events counts emitted progress events; DroppedEvents those lost past
	// a slow subscriber.
	Events, DroppedEvents int
	// ReusedOps and EditedOps summarize an incremental re-synthesis (both
	// zero outside Resynthesize).
	ReusedOps, EditedOps int
}

// Ticket is the handle to one submitted job: wait on it, read its result,
// and stream its progress events.
type Ticket struct {
	inner *service.Ticket

	once   sync.Once
	events chan Progress
}

// ID returns the session-unique job id.
func (t *Ticket) ID() uint64 { return t.inner.ID() }

// Name returns the job label.
func (t *Ticket) Name() string { return t.inner.Name }

// Done returns a channel closed when the job has finished or failed.
func (t *Ticket) Done() <-chan struct{} { return t.inner.Done() }

// Wait blocks until the job finishes or ctx is cancelled, then returns the
// result. The job keeps running under its submission context if the waiter's
// ctx ends first.
func (t *Ticket) Wait(ctx context.Context) (*Result, error) {
	res, err := t.inner.Wait(ctx)
	if err != nil {
		return nil, publicVerifyError(err)
	}
	return &Result{inner: res}, nil
}

// Result returns the finished result without blocking, or ErrJobPending
// while the job is still queued or running.
func (t *Ticket) Result() (*Result, error) {
	res, err := t.inner.Result()
	if err != nil {
		return nil, publicVerifyError(err)
	}
	return &Result{inner: res}, nil
}

// Events returns the job's progress stream: buffered, closed after the
// terminal done/failed event. A subscriber that falls far behind (or stops
// reading) loses intermediate events — visible as Seq gaps — never the
// terminal one; the forwarding goroutine itself never blocks on a stalled
// subscriber, so abandoning the channel mid-stream leaks nothing.
func (t *Ticket) Events() <-chan Progress {
	t.once.Do(func() {
		ch := make(chan Progress, 256)
		go func() {
			defer close(ch)
			for e := range t.inner.Events() {
				p := Progress{
					Seq:       e.Seq,
					Kind:      e.Kind,
					Time:      e.Time,
					Stage:     e.Stage,
					Duration:  e.Duration,
					Makespan:  e.Makespan,
					Objective: e.Objective,
					Nodes:     e.Nodes,
					Gap:       e.Gap,
					Err:       e.Err,
				}
				if p.Kind == ProgressDone || p.Kind == ProgressFailed {
					// Guarantee delivery of the terminal event by evicting
					// the oldest buffered one if the subscriber stalled.
					for {
						select {
						case ch <- p:
						default:
							select {
							case <-ch:
								continue
							default:
								continue
							}
						}
						break
					}
					continue
				}
				select {
				case ch <- p:
				default: // subscriber behind: drop, like the inner stream
				}
			}
		}()
		t.events = ch
	})
	return t.events
}

// jobStatsFrom maps the internal per-job metrics onto the public JobStats.
func jobStatsFrom(m core.ServiceMetrics) JobStats {
	return JobStats{
		QueueWait:        m.QueueWait,
		Runtime:          m.Runtime,
		CacheHit:         m.CacheHit,
		ScheduleCacheHit: m.ScheduleCacheHit,
		Coalesced:        m.Coalesced,
		StoreHit:         m.StoreHit,
		LeaseWait:        m.LeaseWait,
		Events:           m.Events,
		DroppedEvents:    m.Dropped,
		ReusedOps:        m.ReusedOps,
		EditedOps:        m.EditedOps,
	}
}

// Stats returns the job's service diagnostics; the zero value until Done.
func (t *Ticket) Stats() JobStats {
	return jobStatsFrom(t.inner.Metrics())
}

// JobStats reports the service diagnostics of a result synthesized through a
// Solver session (every public entry point), or nil for a result built
// directly by internal pipelines.
func (r *Result) JobStats() *JobStats {
	m := r.inner.Service
	if m == nil {
		return nil
	}
	js := jobStatsFrom(*m)
	return &js
}
