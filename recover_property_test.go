package flowsyn

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// The fault-recovery property harness: every seeded assay of the property
// sweep's (n, width, seed) grid is synthesized, hit with one pseudo-random
// single fault at a pseudo-random mid-execution instant, and recovered
// online. Verification is forced on, so each recovery is replayed end to end
// by the splice checker (verify.CheckRecovery): full invariant suite on the
// spliced plan, zero re-executed prefix work, suffix floored at the fault,
// fault masks honored, devices unmoved.

// recoveryCase is one assay of the fault-injection sweep.
type recoveryCase struct {
	n, width int
	seed     int64
}

// recoverySweep returns the assay grid of the property sweep (50 assays; 20
// in -short mode, matching propertySweep's reduction).
func recoverySweep(short bool) []recoveryCase {
	ns := []int{5, 8, 11, 14, 17}
	widths := []int{2, 3}
	seeds := []int64{1, 2, 3, 4, 5}
	if short {
		seeds = seeds[:2]
	}
	var cases []recoveryCase
	for _, n := range ns {
		for _, w := range widths {
			for _, seed := range seeds {
				cases = append(cases, recoveryCase{n: n, width: w, seed: seed})
			}
		}
	}
	return cases
}

// randomFault derives a deterministic pseudo-random single fault for a
// synthesized result: a kind drawn among the applicable ones and an instant
// inside the execution.
func randomFault(rng *rand.Rand, res *Result) Fault {
	devices := res.inner.Schedule.Devices
	edges := res.inner.Architecture.UsedEdges
	var kinds []FaultKind
	if devices > 1 {
		kinds = append(kinds, DeviceFault)
	}
	if len(edges) > 0 {
		kinds = append(kinds, ChannelFault, StorageFault)
	}
	f := Fault{Kind: kinds[rng.Intn(len(kinds))], Time: 1 + rng.Intn(res.Makespan())}
	switch f.Kind {
	case DeviceFault:
		f.Device = rng.Intn(devices)
	default:
		f.Channel = int(edges[rng.Intn(len(edges))])
	}
	return f
}

func TestPropertyFaultRecovery(t *testing.T) {
	cases := recoverySweep(testing.Short())
	if !testing.Short() && len(cases) < 50 {
		t.Fatalf("sweep covers %d assays, want >= 50", len(cases))
	}
	s, _ := New(Config{QueueDepth: 2 * len(cases)})
	defer s.Close()
	ctx := context.Background()

	// Synthesize every assay (verification on), then inject one seeded
	// random fault each and recover, all through the session API.
	priors := make([]*Ticket, len(cases))
	for i, c := range cases {
		tk, err := s.Submit(ctx, Job{
			Name:  fmt.Sprintf("n%d-w%d-s%d", c.n, c.width, c.seed),
			Assay: RandomAssay(c.n, c.width, c.seed),
			Options: Options{
				Devices: 3, Transport: 10, GridRows: 6, GridCols: 6,
				Engine: HeuristicEngine, Verify: true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		priors[i] = tk
	}
	recoveries := make([]*Ticket, len(cases))
	faults := make([]Fault, len(cases))
	for i, tk := range priors {
		res, err := tk.Wait(ctx)
		if err != nil {
			t.Fatalf("%s: synthesis failed: %v", tk.Name(), err)
		}
		rng := rand.New(rand.NewSource(cases[i].seed*1_000_003 + int64(cases[i].n)*31 + int64(cases[i].width)))
		faults[i] = randomFault(rng, res)
		rt, err := s.Recover(ctx, tk, faults[i])
		if err != nil {
			t.Fatalf("%s: recover(%s) rejected: %v", tk.Name(), faults[i], err)
		}
		recoveries[i] = rt
	}

	for i, rt := range recoveries {
		rec, err := rt.Wait(ctx)
		if err != nil {
			t.Errorf("%s: recovery from %s failed: %v", rt.Name(), faults[i], err)
			continue
		}
		if !rec.Verified() {
			t.Errorf("%s: recovery not verified despite Verify option", rt.Name())
		}
		stats := rec.Recovery()
		if stats == nil {
			t.Errorf("%s: no recovery stats", rt.Name())
			continue
		}
		if stats.Fault != faults[i] {
			t.Errorf("%s: recovery reports fault %v, injected %v", rt.Name(), stats.Fault, faults[i])
		}
		// Zero re-executed prefix work, asserted directly on top of the
		// splice checker: every operation started before the fault keeps its
		// exact assignment.
		prior, _ := priors[i].Result()
		preserved := 0
		for _, a := range prior.inner.Schedule.Assignments {
			if a.Start < faults[i].Time {
				preserved++
				if rec.inner.Schedule.Assignments[a.Op] != a {
					t.Errorf("%s: executed op %d re-planned under %s", rt.Name(), a.Op, faults[i])
				}
			}
		}
		if stats.PreservedOps != preserved {
			t.Errorf("%s: PreservedOps = %d, want %d", rt.Name(), stats.PreservedOps, preserved)
		}
		if stats.NewMakespan != rec.Makespan() || stats.MakespanDelta != stats.NewMakespan-stats.OldMakespan {
			t.Errorf("%s: inconsistent recovery metrics %+v", rt.Name(), stats)
		}
	}
}

// TestSolverRecoverPublicAPI exercises the session recovery surface end to
// end: ticket lifecycle, progress stream, validation errors.
func TestSolverRecoverPublicAPI(t *testing.T) {
	s, _ := New(Config{Workers: 2})
	defer s.Close()
	assay, opts, err := Benchmark("CPA")
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = HeuristicEngine
	opts.Verify = true
	prior, err := s.Submit(context.Background(), Job{Assay: assay, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	res := waitOK(t, prior)

	fault := Fault{Kind: DeviceFault, Time: res.Makespan() / 2, Device: 1}
	tk, err := s.Recover(context.Background(), prior, fault)
	if err != nil {
		t.Fatal(err)
	}
	rec := waitOK(t, tk)
	stats := rec.Recovery()
	if stats == nil || stats.Fault != fault {
		t.Fatalf("recovery stats = %+v, want fault %v", stats, fault)
	}
	if res.Recovery() != nil {
		t.Error("ordinary synthesis reports recovery stats")
	}
	if js := rec.JobStats(); js == nil || js.CacheHit || js.ScheduleCacheHit {
		t.Errorf("recovery job must bypass the caches, stats %+v", js)
	}

	if _, err := s.Recover(context.Background(), nil, fault); err == nil {
		t.Error("nil prior accepted")
	}
	if _, err := s.Recover(context.Background(), prior, Fault{Kind: FaultKind(9)}); err == nil {
		t.Error("unknown fault kind accepted")
	}
	if _, err := s.Recover(context.Background(), prior, Fault{Time: -5}); err == nil {
		t.Error("negative fault time accepted")
	}
}

func TestFaultStrings(t *testing.T) {
	for _, c := range []struct {
		fault Fault
		want  string
	}{
		{Fault{Kind: DeviceFault, Device: 2, Time: 130}, "device 2 @ t=130"},
		{Fault{Kind: ChannelFault, Channel: 5, Time: 40}, "channel 5 @ t=40"},
		{Fault{Kind: StorageFault, Channel: 5, Time: 40}, "storage 5 @ t=40"},
	} {
		if got := c.fault.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.fault, got, c.want)
		}
	}
	for k, want := range map[FaultKind]string{
		DeviceFault: "device", ChannelFault: "channel", StorageFault: "storage",
	} {
		if got := k.String(); got != want {
			t.Errorf("FaultKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	// The public kinds round-trip through the internal fault model.
	for _, k := range []FaultKind{DeviceFault, ChannelFault, StorageFault} {
		f := Fault{Kind: k, Time: 9, Device: 1, Channel: 4}
		if back := faultFrom(f.internal()); back != f {
			t.Errorf("fault %+v round-tripped to %+v", f, back)
		}
	}
}

func waitOK(t *testing.T, tk *Ticket) *Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := tk.Wait(ctx)
	if err != nil {
		t.Fatalf("job %s: %v", tk.Name(), err)
	}
	return res
}

// TestExploreGridsFaultSamples exercises the k-fault-tolerance axis of a grid
// sweep: every sampled fault on every feasible grid point must recover.
func TestExploreGridsFaultSamples(t *testing.T) {
	assay, opts, err := Benchmark("CPA")
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = HeuristicEngine
	out, err := ExploreGrids(context.Background(), assay, opts, GridRange{
		MinSize: 4, MaxSize: 5, FaultSamples: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, gr := range out {
		if gr.Err != nil {
			t.Logf("grid %dx%d infeasible: %v", gr.Rows, gr.Cols, gr.Err)
			continue
		}
		if gr.FaultsInjected != 3 {
			t.Errorf("grid %dx%d: injected %d faults, want 3", gr.Rows, gr.Cols, gr.FaultsInjected)
		}
		if gr.FaultRecoveries != gr.FaultsInjected {
			t.Errorf("grid %dx%d: recovered %d of %d faults", gr.Rows, gr.Cols, gr.FaultRecoveries, gr.FaultsInjected)
		}
		if gr.FaultRecoveries > 0 && gr.WorstRecoveryMakespan <= 0 {
			t.Errorf("grid %dx%d: recoveries counted but no worst makespan recorded", gr.Rows, gr.Cols)
		}
	}
	if _, err := ExploreGrids(context.Background(), assay, opts, GridRange{MinSize: 4, MaxSize: 5, FaultSamples: -1}); err == nil {
		t.Error("negative FaultSamples accepted")
	}
}
