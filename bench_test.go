// Benchmark harness reproducing the paper's evaluation artifacts.
//
// One benchmark per table/figure: running
//
//	go test -bench=. -benchmem
//
// regenerates the quantities behind Table 2 (per-assay synthesis results),
// Fig. 8 (edge/valve ratios), Fig. 9 (storage optimization on/off), Fig. 10
// (channel caching vs dedicated storage) and Fig. 11 (execution snapshots),
// reported as custom benchmark metrics. Ablation benchmarks cover the design
// choices called out in DESIGN.md. Use cmd/paperbench for the same data as
// formatted tables.
package flowsyn

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"flowsyn/internal/arch"
	"flowsyn/internal/assay"
	"flowsyn/internal/core"
	"flowsyn/internal/dedicated"
	"flowsyn/internal/sched"
)

// run synthesizes one benchmark with the heuristic engine (the engine the
// paper effectively falls back to beyond IVD size; keeps benches fast).
func run(b *testing.B, name string, mode sched.Mode) (*core.Result, assay.Benchmark) {
	b.Helper()
	bench := assay.MustGet(name)
	res, err := core.Synthesize(bench.Graph, core.Options{
		Devices:   bench.Devices,
		Transport: bench.Transport,
		GridRows:  bench.GridRows,
		GridCols:  bench.GridCols,
		Mode:      mode,
		Engine:    core.Heuristic,
		ModelIO:   bench.ModelIO,
	})
	if err != nil {
		b.Fatalf("%s: %v", name, err)
	}
	return res, bench
}

// BenchmarkTable2 regenerates every row of Table 2: execution time tE,
// architecture size (ne channel segments, nv valves) and physical dimensions
// (reported as areas).
func BenchmarkTable2(b *testing.B) {
	for _, name := range assay.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res, _ = run(b, name, sched.TimeAndStorage)
			}
			b.ReportMetric(float64(res.Schedule.Makespan), "tE_s")
			b.ReportMetric(float64(res.Architecture.NumEdges), "ne")
			b.ReportMetric(float64(res.Architecture.NumValves), "nv")
			b.ReportMetric(float64(res.Physical.AfterSynthesis.Area()), "dr_area")
			b.ReportMetric(float64(res.Physical.AfterDevices.Area()), "de_area")
			b.ReportMetric(float64(res.Physical.Compressed.Area()), "dp_area")
		})
	}
}

// BenchmarkFig8_EdgeValveRatio regenerates Fig. 8: the ratio of used channel
// segments and valves to the full connection grid, per assay (all < 1).
func BenchmarkFig8_EdgeValveRatio(b *testing.B) {
	for _, name := range assay.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res, _ = run(b, name, sched.TimeAndStorage)
			}
			b.ReportMetric(res.Architecture.EdgeRatio, "edge_ratio")
			b.ReportMetric(res.Architecture.ValveRatio, "valve_ratio")
		})
	}
}

// BenchmarkFig9_StorageOptimization regenerates Fig. 9: execution time,
// edges and valves with storage optimization on versus off, for the three
// assays the paper plots (RA30, IVD, PCR).
func BenchmarkFig9_StorageOptimization(b *testing.B) {
	for _, name := range []string{"RA30", "IVD", "PCR"} {
		for _, mode := range []sched.Mode{sched.TimeOnly, sched.TimeAndStorage} {
			name, mode := name, mode
			b.Run(fmt.Sprintf("%s/%v", name, mode), func(b *testing.B) {
				var res *core.Result
				for i := 0; i < b.N; i++ {
					res, _ = run(b, name, mode)
				}
				b.ReportMetric(float64(res.Schedule.Makespan), "tE_s")
				b.ReportMetric(float64(res.Architecture.NumEdges), "ne")
				b.ReportMetric(float64(res.Architecture.NumValves), "nv")
				b.ReportMetric(float64(res.Schedule.StoreCount()), "stores")
			})
		}
	}
}

// BenchmarkFig10_DedicatedStorage regenerates Fig. 10: execution-time and
// valve ratios of the distributed-channel-storage chip versus the same
// schedule executed with a dedicated storage unit (both ratios < 1; the
// paper reports up to ~28% execution-time reduction on RA100).
func BenchmarkFig10_DedicatedStorage(b *testing.B) {
	for _, name := range assay.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			var cmp *dedicated.Comparison
			for i := 0; i < b.N; i++ {
				res, _ := run(b, name, sched.TimeAndStorage)
				var err error
				cmp, err = dedicated.Compare(res.Schedule, res.Architecture.NumValves)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cmp.ExecRatio, "exec_ratio")
			b.ReportMetric(cmp.ValveRatio, "valve_ratio")
		})
	}
}

// BenchmarkFig11_Snapshots regenerates Fig. 11: execution snapshots of the
// synthesized RA30 chip, measuring snapshot extraction and reporting how
// many moments show live caching.
func BenchmarkFig11_Snapshots(b *testing.B) {
	res, _ := run(b, "RA30", sched.TimeAndStorage)
	s := res.Simulator()
	times := s.InterestingTimes()
	caching := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		caching = 0
		for _, t := range times {
			if s.At(t).CachedSamples > 0 {
				caching++
			}
		}
	}
	b.ReportMetric(float64(len(times)), "snapshots")
	b.ReportMetric(float64(caching), "with_caching")
}

// BenchmarkAblationBeta compares the scheduler's storage term (the β weight
// of objective (6)) off/on through total storage time Σu.
func BenchmarkAblationBeta(b *testing.B) {
	for _, mode := range []sched.Mode{sched.TimeOnly, sched.TimeAndStorage} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			bench := assay.MustGet("CPA")
			var s *sched.Schedule
			for i := 0; i < b.N; i++ {
				var err error
				s, err = sched.ListSchedule(bench.Graph, sched.ListOptions{
					Devices: bench.Devices, Transport: bench.Transport, Mode: mode,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.StorageTime()), "sum_u_s")
			b.ReportMetric(float64(s.StoreCount()), "stores")
			b.ReportMetric(float64(s.Makespan), "tE_s")
		})
	}
}

// BenchmarkAblationEdgeReuse compares reuse-preferring routing costs (the
// greedy form of objective (12)) against flat costs.
func BenchmarkAblationEdgeReuse(b *testing.B) {
	bench := assay.MustGet("RA30")
	s, err := sched.ListSchedule(bench.Graph, sched.ListOptions{
		Devices: bench.Devices, Transport: bench.Transport, Mode: sched.TimeAndStorage,
	})
	if err != nil {
		b.Fatal(err)
	}
	grid, err := arch.NewGrid(bench.GridRows, bench.GridCols)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		label        string
		reuseC, newC int
	}{
		{"reuse-preferring", 10, 30},
		{"flat-cost", 10, 10},
	} {
		cfg := cfg
		b.Run(cfg.label, func(b *testing.B) {
			var res *arch.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = arch.Synthesize(s, grid, arch.Options{ReuseCost: cfg.reuseC, NewCost: cfg.newC})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.NumEdges), "ne")
			b.ReportMetric(float64(res.NumValves), "nv")
		})
	}
}

// BenchmarkAblationExactVsHeuristic compares the exact ILP scheduler against
// the list scheduler on PCR (the scale where both run).
func BenchmarkAblationExactVsHeuristic(b *testing.B) {
	bench := assay.MustGet("PCR")
	b.Run("heuristic", func(b *testing.B) {
		var s *sched.Schedule
		for i := 0; i < b.N; i++ {
			var err error
			s, err = sched.ListSchedule(bench.Graph, sched.ListOptions{
				Devices: bench.Devices, Transport: bench.Transport, Mode: sched.TimeAndStorage,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(s.Makespan), "tE_s")
	})
	b.Run("exact-ilp", func(b *testing.B) {
		var s *sched.Schedule
		for i := 0; i < b.N; i++ {
			var err error
			s, _, err = sched.ILPSchedule(bench.Graph, sched.ILPOptions{
				Devices: bench.Devices, Transport: bench.Transport, WarmStart: true,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(s.Makespan), "tE_s")
	})
}

// BenchmarkAblationPlacement compares the communication-weighted placement
// against naive row-major placement.
func BenchmarkAblationPlacement(b *testing.B) {
	bench := assay.MustGet("RA30")
	s, err := sched.ListSchedule(bench.Graph, sched.ListOptions{
		Devices: bench.Devices, Transport: bench.Transport, Mode: sched.TimeAndStorage,
	})
	if err != nil {
		b.Fatal(err)
	}
	grid, err := arch.NewGrid(bench.GridRows, bench.GridCols)
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []arch.PlacementStrategy{arch.CommWeighted, arch.RowMajor} {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			var res *arch.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = arch.Synthesize(s, grid, arch.Options{Strategy: strat})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.NumEdges), "ne")
			b.ReportMetric(float64(res.NumValves), "nv")
		})
	}
}

// BenchmarkMILPSolver measures the in-repo MILP substrate on the PCR
// scheduling formulation (the substitution for the paper's Gurobi runs),
// reporting the sparse warm-started branch-and-bound diagnostics alongside
// the wall clock. The pre-sparse dense-tableau core needed 3.3–8.3 s per
// solve here; the node/pivot metrics keep the trajectory comparable.
func BenchmarkMILPSolver(b *testing.B) {
	bench := assay.MustGet("PCR")
	var info *sched.ILPInfo
	for i := 0; i < b.N; i++ {
		var err error
		if _, info, err = sched.ILPSchedule(bench.Graph, sched.ILPOptions{
			Devices: bench.Devices, Transport: bench.Transport, WarmStart: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(info.Solver.Nodes), "nodes")
	b.ReportMetric(float64(info.Solver.SimplexIters), "pivots")
	b.ReportMetric(info.Solver.WarmStartRate(), "warm_rate")
	b.ReportMetric(float64(info.Solver.Presolve.FixedCols), "presolve_cols")
	b.ReportMetric(float64(info.Solver.Cuts.Clique), "clique_cuts")
	b.ReportMetric(float64(info.Solver.Cuts.LiftedCover), "lifted_covers")
	b.ReportMetric(float64(info.Solver.SeparationWall.Microseconds())/1e3, "sep_ms")
}

// BenchmarkBatchRunner measures the concurrent batch runner over all Table 2
// assays (heuristic engine) with one worker versus GOMAXPROCS workers — the
// wall-clock gap is the batch-level speedup on multi-core.
func BenchmarkBatchRunner(b *testing.B) {
	var jobs []Job
	for _, name := range assay.Names() {
		a, opts, err := Benchmark(name)
		if err != nil {
			b.Fatal(err)
		}
		opts.Engine = HeuristicEngine
		jobs = append(jobs, Job{Name: name, Assay: a, Options: opts})
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := SynthesizeBatch(context.Background(), jobs, BatchOptions{Concurrency: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatalf("%s: %v", r.Job.Name, r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkEndToEnd measures the complete pipeline per assay (the paper's
// t_s + t_r + t_p columns in one number).
func BenchmarkEndToEnd(b *testing.B) {
	for _, name := range assay.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run(b, name, sched.TimeAndStorage)
			}
		})
	}
}
