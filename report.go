package flowsyn

import (
	"errors"
	"fmt"
	"time"

	"flowsyn/internal/core"
	"flowsyn/internal/sim"
	"flowsyn/internal/verify"
)

// Result is a synthesized biochip: the schedule, the chip architecture with
// distributed channel storage, and the compacted physical layout.
type Result struct {
	inner *core.Result
}

// Makespan returns the assay execution time t^E in seconds.
func (r *Result) Makespan() int { return r.inner.Schedule.Makespan }

// StoreCount returns how many intermediate fluids are cached in channel
// segments during execution.
func (r *Result) StoreCount() int { return r.inner.Schedule.StoreCount() }

// StorageCapacity returns the peak number of simultaneously cached fluids.
func (r *Result) StorageCapacity() int { return r.inner.Schedule.StorageCapacity() }

// StoragePolicy returns the storage strategy the result was synthesized
// under.
func (r *Result) StoragePolicy() StoragePolicy {
	return StoragePolicy(r.inner.Storage.Policy)
}

// UnitStoreCount returns how many stored fluids were routed through the
// dedicated storage unit (0 under the distributed strategy).
func (r *Result) UnitStoreCount() int { return r.inner.Binding.Unit }

// UnitQueueDelay returns the total seconds stored fluids waited for the
// dedicated unit's serialized port beyond the earliest instants they could
// have moved (0 under the distributed strategy).
func (r *Result) UnitQueueDelay() int { return r.inner.Schedule.UnitQueueDelay }

// UnitCells returns the cell count of the dedicated storage unit — the peak
// number of fluids resident in it at once (0 when no unit is placed).
func (r *Result) UnitCells() int { return r.inner.Architecture.UnitCells }

// UnitValves returns the mux-tree valve cost of the dedicated storage unit,
// reported separately from Valves (0 when no unit is placed).
func (r *Result) UnitValves() int { return r.inner.Architecture.UnitValves }

// ChannelSegments returns n_e: the number of channel segments in the chip.
func (r *Result) ChannelSegments() int { return r.inner.Architecture.NumEdges }

// Valves returns n_v: the number of switch valves in the chip (device-
// internal valves excluded, as in the paper).
func (r *Result) Valves() int { return r.inner.Architecture.NumValves }

// EdgeRatio returns the used-to-available channel-segment ratio (Fig. 8).
func (r *Result) EdgeRatio() float64 { return r.inner.Architecture.EdgeRatio }

// ValveRatio returns the used-to-available valve ratio (Fig. 8).
func (r *Result) ValveRatio() float64 { return r.inner.Architecture.ValveRatio }

// ChipDimensions returns the layout sizes after architectural synthesis
// (d_r), after device insertion (d_e) and after iterative compression (d_p),
// each formatted like "15x10".
func (r *Result) ChipDimensions() (afterSynthesis, afterDevices, compressed string) {
	p := r.inner.Physical
	return p.AfterSynthesis.String(), p.AfterDevices.String(), p.Compressed.String()
}

// Summary renders the headline numbers in the paper's Table 2 column order,
// plus the MILP solver diagnostics when the exact engine ran.
func (r *Result) Summary() string { return r.inner.Summary() }

// SolverStats reports the exact scheduling engine's MILP solver diagnostics:
// how the sparse warm-started branch-and-bound search went, sized against
// the formulation it solved. It is nil-safe to format with %+v.
type SolverStats struct {
	// Status is the solver verdict ("optimal", "time-limit", ...).
	Status string
	// Objective is the solved α·tE + β·Σu objective value.
	Objective float64
	// Nodes and Iterations count branch-and-bound nodes and simplex pivots.
	Nodes, Iterations int
	// WarmStartRate is the fraction of node relaxations served by a
	// dual-simplex warm start from the parent basis, in [0, 1].
	WarmStartRate float64
	// Gap is the relative MIP gap at termination: 0 for a proven optimum,
	// -1 when no dual bound survived.
	Gap float64
	// PresolveFixedCols, PresolveRemovedRows and PresolveTightenedBounds
	// report the root presolve reductions.
	PresolveFixedCols, PresolveRemovedRows, PresolveTightenedBounds int
	// Kernel names the basis-factorization kernel the simplex ran on:
	// "dense" (explicit inverse with eta updates) below the row-count
	// crossover, "sparse-lu" (Markowitz LU with Forrest–Tomlin updates)
	// above it.
	Kernel string
	// Refactorizations, FTUpdates and FTUpdatesRejected count from-scratch
	// basis factorizations, accepted basis-change updates, and updates the
	// kernel refused for stability (each forcing a refactorization).
	Refactorizations, FTUpdates, FTUpdatesRejected int
	// FillRatio is the peak LU fill-in — (L+U nonzeros)/(basis nonzeros) —
	// the sparse kernel observed; 0 under the dense kernel.
	FillRatio float64
	// PropagationTightenings and PropagationPrunes report node-level bound
	// propagation: integer-bound tightenings derived after branching, and
	// nodes pruned infeasible before their relaxation was solved.
	PropagationTightenings, PropagationPrunes int
	// CutsSeparated counts root cutting planes separated (Gomory
	// mixed-integer, knapsack covers, and conflict-graph cliques),
	// CutsApplied the cut rows the branch-and-bound instance finally
	// carried, and CutsAgedOut the cuts retired by activity-based aging
	// before the tree search.
	CutsSeparated, CutsApplied, CutsAgedOut int
	// CliqueCuts counts the conflict-graph clique cuts within CutsSeparated;
	// LiftedCovers counts the cover cuts that carried at least one lifted
	// non-cover coefficient.
	CliqueCuts, LiftedCovers int
	// CutRounds is the number of separate-apply-resolve rounds at the root.
	CutRounds int
	// SeparationWall is the wall-clock time spent separating cuts at the
	// root (all families, summed over rounds).
	SeparationWall time.Duration
	// PseudoCostInits counts reliability-initialization probes (truncated
	// strong branches) seeding the pseudo-cost branching tables.
	PseudoCostInits int
	// HeuristicIncumbents counts improving incumbents found by the node
	// heuristics (RINS and feasibility diving).
	HeuristicIncumbents int
	// LocalBranchingIncumbents counts improving incumbents found by the
	// local-branching sub-MIP around the shared incumbent.
	LocalBranchingIncumbents int
	// IncrementalPivots and FullPricingPivots split simplex pivots by
	// whether the iteration priced incrementally maintained reduced costs
	// (O(nnz) per pivot) or paid a from-scratch refresh.
	IncrementalPivots, FullPricingPivots int
	// ReducedCostFixings counts variable bounds tightened by reduced-cost
	// fixing against the incumbent cutoff at branch-and-bound nodes.
	ReducedCostFixings int
	// Workers is the branch-and-bound worker pool size.
	Workers int
	// Runtime is the wall-clock solve time (the paper's t_s column).
	Runtime time.Duration
	// ModelVars and ModelConstraints size the formulation before presolve.
	ModelVars, ModelConstraints int
	// Winner names the engine whose schedule was kept: "ilp" or "list".
	Winner string
}

// SolverStats returns the exact engine's solver diagnostics, or nil when the
// heuristic list scheduler produced the result (no ILP ran).
func (r *Result) SolverStats() *SolverStats {
	info := r.inner.SchedInfo
	if info == nil {
		return nil
	}
	return &SolverStats{
		Status:                   info.Status.String(),
		Objective:                info.Objective,
		Nodes:                    info.Solver.Nodes,
		Iterations:               info.Solver.SimplexIters,
		WarmStartRate:            info.Solver.WarmStartRate(),
		Gap:                      info.Solver.Gap,
		PresolveFixedCols:        info.Solver.Presolve.FixedCols,
		PresolveRemovedRows:      info.Solver.Presolve.RemovedRows,
		PresolveTightenedBounds:  info.Solver.Presolve.TightenedBounds,
		Kernel:                   info.Solver.Factor.Kernel,
		Refactorizations:         info.Solver.Factor.Refactorizations,
		FTUpdates:                info.Solver.Factor.Updates,
		FTUpdatesRejected:        info.Solver.Factor.UpdatesRejected,
		FillRatio:                info.Solver.Factor.FillRatio,
		PropagationTightenings:   info.Solver.PropagationTightenings,
		PropagationPrunes:        info.Solver.PropagationPrunes,
		CutsSeparated:            info.Solver.Cuts.Gomory + info.Solver.Cuts.Cover + info.Solver.Cuts.Clique,
		CutsApplied:              info.Solver.Cuts.Applied,
		CutsAgedOut:              info.Solver.Cuts.AgedOut,
		CliqueCuts:               info.Solver.Cuts.Clique,
		LiftedCovers:             info.Solver.Cuts.LiftedCover,
		CutRounds:                info.Solver.Cuts.Rounds,
		SeparationWall:           info.Solver.SeparationWall,
		PseudoCostInits:          info.Solver.PseudoCostInits,
		HeuristicIncumbents:      info.Solver.HeuristicIncumbents,
		LocalBranchingIncumbents: info.Solver.LocalBranchingIncumbents,
		IncrementalPivots:        info.Solver.IncrementalPivots,
		FullPricingPivots:        info.Solver.FullPricingPivots,
		ReducedCostFixings:       info.Solver.ReducedCostFixings,
		Workers:                  info.Solver.Workers,
		Runtime:                  info.Runtime,
		ModelVars:                info.ModelStats.Vars,
		ModelConstraints:         info.ModelStats.Constraints,
		Winner:                   info.Winner,
	}
}

// SolverSummary renders the solver diagnostics in one line, or "" when no
// ILP ran.
func (r *Result) SolverSummary() string { return r.inner.SolverSummary() }

// Stage names of the synthesis pipeline, in execution order.
const (
	// StageSchedule schedules and binds the assay (t_s in Table 2).
	StageSchedule = core.StageSchedule
	// StageBind validates the binding and derives the transport workload.
	StageBind = core.StageBind
	// StageArch synthesizes the connection graph (t_r in Table 2).
	StageArch = core.StageArch
	// StagePhys compacts the physical layout (t_p in Table 2).
	StagePhys = core.StagePhys
	// StageVerify re-checks the result with the independent invariant
	// checker (runs when Options.Verify is set).
	StageVerify = core.StageVerify
)

// VerifyError reports the invariants a result verification found broken.
// Synthesis with Options.Verify and Result.Verify both return it (wrapped)
// when the checker rejects a result.
type VerifyError struct {
	// Violations lists every broken invariant as "<invariant>: <detail>",
	// e.g. "precedence: edge o1->o3: parent ends 80, child starts 75, ...".
	Violations []string
}

// Error summarizes the violations.
func (e *VerifyError) Error() string {
	switch len(e.Violations) {
	case 0:
		return "flowsyn: verification failed"
	case 1:
		return "flowsyn: verification failed: " + e.Violations[0]
	default:
		return fmt.Sprintf("flowsyn: verification failed with %d violations: %s; ...",
			len(e.Violations), e.Violations[0])
	}
}

// publicVerifyError converts an internal checker error into the exported
// *VerifyError, passing every other error through unchanged.
func publicVerifyError(err error) error {
	var verr *verify.Error
	if !errors.As(err, &verr) {
		return err
	}
	out := &VerifyError{Violations: make([]string, len(verr.Violations))}
	for i, v := range verr.Violations {
		out.Violations[i] = v.Error()
	}
	return out
}

// Verify re-checks this result from first principles with the independent
// invariant checker: precedence with transport latencies, device and channel
// exclusivity, storage accounting, metric recomputation, and agreement of
// the execution simulator with the checker's per-instant accounting. It
// returns nil for a correct result and a *VerifyError otherwise.
//
// Synthesizing with Options.Verify runs the same check as a pipeline stage;
// this method re-runs it on demand.
func (r *Result) Verify() error {
	err := r.inner.Verify()
	if err == nil {
		return nil
	}
	return publicVerifyError(err)
}

// Verified reports whether this result has passed verification — either via
// the verify pipeline stage (Options.Verify) or a Verify call.
func (r *Result) Verified() bool { return r.inner.Verified }

// StageTiming reports the wall-clock duration of one synthesis pipeline
// stage ("schedule", "bind", "arch", "phys" or, with Options.Verify,
// "verify").
type StageTiming struct {
	// Name identifies the stage.
	Name string
	// Duration is the stage's wall-clock time.
	Duration time.Duration
}

// StageTimings returns per-stage wall-clock durations in pipeline order. The
// schedule, arch and phys entries correspond to the paper's t_s, t_r and t_p
// columns of Table 2.
func (r *Result) StageTimings() []StageTiming {
	out := make([]StageTiming, len(r.inner.Stages))
	for i, s := range r.inner.Stages {
		out[i] = StageTiming{Name: s.Name, Duration: s.Duration}
	}
	return out
}

// StageDuration returns the recorded wall-clock of the named stage (zero when
// the stage did not run).
func (r *Result) StageDuration(name string) time.Duration {
	return r.inner.StageDuration(name)
}

// SchedulingTime returns the wall-clock scheduling time (t_s in Table 2).
func (r *Result) SchedulingTime() time.Duration {
	return r.inner.SchedulingTime
}

// Transports returns the total number of device-to-device transportation
// tasks derived from the schedule by the Bind stage. The stored subset is
// StoreCount.
func (r *Result) Transports() int { return r.inner.Binding.Transports }

// GanttChart renders the schedule as a per-device text timeline.
func (r *Result) GanttChart() string { return r.inner.Schedule.Gantt() }

// SnapshotASCII draws the chip state at time t in the style of the paper's
// Fig. 11 (devices, switches, transporting and caching segments).
func (r *Result) SnapshotASCII(t int) string {
	return sim.RenderASCII(r.inner.Architecture, r.inner.Simulator().At(t))
}

// SnapshotSVG draws the chip state at time t as an SVG document.
func (r *Result) SnapshotSVG(t int) string {
	return sim.RenderSVG(r.inner.Architecture, r.inner.Simulator().At(t))
}

// LayoutSVG renders the compressed physical layout as an SVG document.
func (r *Result) LayoutSVG() string { return r.inner.Physical.SVG() }

// InterestingTimes lists the moments when caching activity changes — good
// snapshot candidates.
func (r *Result) InterestingTimes() []int {
	return r.inner.Simulator().InterestingTimes()
}

// ChannelUtilization returns the mean busy fraction of the built channel
// segments over the whole execution, in [0, 1].
func (r *Result) ChannelUtilization() float64 {
	return r.inner.Simulator().Utilization().MeanUtilization
}

// DedicatedComparison reports how the same schedule would perform with a
// dedicated storage unit instead of distributed channel storage — the
// paper's Fig. 10 baseline.
type DedicatedComparison struct {
	// DistributedMakespan and DedicatedMakespan compare execution times.
	DistributedMakespan, DedicatedMakespan int
	// DistributedValves and DedicatedValves compare valve budgets.
	DistributedValves, DedicatedValves int
	// ExecRatio and ValveRatio are distributed/dedicated (< 1 means the
	// distributed design wins).
	ExecRatio, ValveRatio float64
}

// CompareDedicated runs the dedicated-storage baseline on this result.
func (r *Result) CompareDedicated() (*DedicatedComparison, error) {
	c, err := r.inner.CompareDedicated()
	if err != nil {
		return nil, err
	}
	return &DedicatedComparison{
		DistributedMakespan: c.DistributedMakespan,
		DedicatedMakespan:   c.DedicatedMakespan,
		DistributedValves:   c.DistributedValves,
		DedicatedValves:     c.DedicatedValves,
		ExecRatio:           c.ExecRatio,
		ValveRatio:          c.ValveRatio,
	}, nil
}
