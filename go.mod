module flowsyn

go 1.24
