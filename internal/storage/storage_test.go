package storage

import (
	"testing"

	"flowsyn/internal/dedicated"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"":            Distributed,
		"distributed": Distributed,
		"channels":    Distributed,
		"Channel":     Distributed,
		"dedicated":   Dedicated,
		"unit":        Dedicated,
		"hybrid":      Hybrid,
		"cache":       Hybrid,
		" Hybrid ":    Hybrid,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("quantum"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

func TestParseEviction(t *testing.T) {
	cases := map[string]Eviction{
		"":                    LRU,
		"lru":                 LRU,
		"enf":                 EarliestNextFetch,
		"next-fetch":          EarliestNextFetch,
		"Earliest-Next-Fetch": EarliestNextFetch,
	}
	for in, want := range cases {
		got, err := ParseEviction(in)
		if err != nil || got != want {
			t.Errorf("ParseEviction(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseEviction("random"); err == nil {
		t.Error("ParseEviction accepted an unknown policy")
	}
}

func TestConfigKey(t *testing.T) {
	cases := []struct {
		cfg Config
		key string
	}{
		{Config{}, "distributed"},
		{Config{Policy: Dedicated}, "dedicated"},
		{Config{Policy: Hybrid}, "hybrid:2:lru"},
		{Config{Policy: Hybrid, CacheSlots: 1, Eviction: EarliestNextFetch}, "hybrid:1:earliest-next-fetch"},
		{Config{Policy: Hybrid, CacheSlots: 5}, "hybrid:5:lru"},
	}
	seen := map[string]bool{}
	for _, c := range cases {
		got := c.cfg.Key()
		if got != c.key {
			t.Errorf("Config%+v.Key() = %q, want %q", c.cfg, got, c.key)
		}
		seen[got] = true
	}
	// Keys discriminate: every distinct configuration must produce a
	// distinct cache-key spelling, or strategies would collide in the
	// service's schedule cache.
	if len(seen) != len(cases) {
		t.Errorf("%d configs produced only %d distinct keys", len(cases), len(seen))
	}
}

func TestConfigValidate(t *testing.T) {
	valid := []Config{
		{},
		{Policy: Dedicated},
		{Policy: Hybrid, CacheSlots: 3, Eviction: EarliestNextFetch},
	}
	for _, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("Config%+v.Validate() = %v, want nil", c, err)
		}
	}
	invalid := []Config{
		{Policy: Policy(7)},
		{Policy: Hybrid, CacheSlots: -1},
		{Eviction: Eviction(5)},
	}
	for _, c := range invalid {
		if err := c.Validate(); err == nil {
			t.Errorf("Config%+v.Validate() accepted an invalid config", c)
		}
	}
}

// TestStrategyContracts pins the per-policy surface both schedulers and the
// architecture stage rely on: serialization, slot bounds, unit usage, journey
// costs and valve accounting.
func TestStrategyContracts(t *testing.T) {
	const uc = 10
	cases := []struct {
		cfg        Config
		name       string
		serialized bool
		slots      int
		usesUnit   bool
		cost       int
	}{
		{Config{}, "distributed", false, -1, false, uc},
		{Config{Policy: Dedicated}, "dedicated", true, 0, true, 2 * uc},
		{Config{Policy: Hybrid}, "hybrid", true, DefaultCacheSlots, true, uc},
		{Config{Policy: Hybrid, CacheSlots: 4}, "hybrid", true, 4, true, uc},
	}
	for _, c := range cases {
		s := New(c.cfg)
		if s.Name() != c.name {
			t.Errorf("%s: Name() = %q", c.cfg.Key(), s.Name())
		}
		if s.Serialized() != c.serialized {
			t.Errorf("%s: Serialized() = %v, want %v", c.cfg.Key(), s.Serialized(), c.serialized)
		}
		if s.ChannelSlots() != c.slots {
			t.Errorf("%s: ChannelSlots() = %d, want %d", c.cfg.Key(), s.ChannelSlots(), c.slots)
		}
		if s.UsesUnit() != c.usesUnit {
			t.Errorf("%s: UsesUnit() = %v, want %v", c.cfg.Key(), s.UsesUnit(), c.usesUnit)
		}
		if got := s.StoreFetchCost(uc); got != c.cost {
			t.Errorf("%s: StoreFetchCost(%d) = %d, want %d", c.cfg.Key(), uc, got, c.cost)
		}
		if s.Config() != c.cfg {
			t.Errorf("%s: Config() does not round-trip", c.cfg.Key())
		}
		// Zero residents never instantiate a unit; positive cell counts
		// delegate to the shared mux-tree model for unit-backed strategies.
		if got := s.UnitValves(0); got != 0 {
			t.Errorf("%s: UnitValves(0) = %d, want 0", c.cfg.Key(), got)
		}
		want := 0
		if c.usesUnit {
			want = dedicated.UnitValves(4)
		}
		if got := s.UnitValves(4); got != want {
			t.Errorf("%s: UnitValves(4) = %d, want %d", c.cfg.Key(), got, want)
		}
	}
}

func TestEvictionNames(t *testing.T) {
	if got := New(Config{Policy: Hybrid, Eviction: EarliestNextFetch}).EvictionName(); got != "earliest-next-fetch" {
		t.Errorf("hybrid EvictionName() = %q", got)
	}
	if got := New(Config{Policy: Dedicated}).EvictionName(); got != "" {
		t.Errorf("dedicated EvictionName() = %q, want empty (nothing to evict)", got)
	}
}
