// Package storage is the pluggable storage-strategy subsystem: it answers
// the paper's "transport or store?" question three different ways and lets
// the rest of the pipeline synthesize each answer head to head.
//
//   - Distributed: the paper's own method — intermediate fluids wait in the
//     transportation channels around the devices; unlimited concurrent
//     segments, no extra valves beyond the network's own.
//   - Dedicated: the Fig. 1(c) baseline from Tseng & Li's "Storage and
//     Caching" companion paper — one storage unit with addressable cells
//     behind a single serialized port. Every stored fluid pays a full-u_c
//     store plus a full-u_c fetch through that port, and the unit charges a
//     mux-tree valve cost for its cells.
//   - Hybrid: a bounded set of channel segments acting as a cache in front
//     of the unit, with pluggable eviction (LRU or earliest-next-fetch);
//     overflow and evictions go to the unit.
//
// A Strategy implements sched.StorageModel, so both scheduling engines plan
// storage through it; architecture synthesis, verification and the bench
// matrix consume the same Strategy for placement, invariants and costs.
package storage

import (
	"fmt"
	"strings"

	"flowsyn/internal/dedicated"
	"flowsyn/internal/sched"
)

// Policy selects a storage strategy.
type Policy int

const (
	// Distributed is the paper's distributed channel storage (default).
	Distributed Policy = iota
	// Dedicated is a single storage unit behind a serialized port.
	Dedicated
	// Hybrid caches fluids in a bounded set of channel segments backed by
	// the dedicated unit.
	Hybrid
)

// String names the policy (also used in cache keys and CLI flags).
func (p Policy) String() string {
	switch p {
	case Dedicated:
		return "dedicated"
	case Hybrid:
		return "hybrid"
	default:
		return "distributed"
	}
}

// ParsePolicy converts a CLI/API spelling into a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "distributed", "channels", "channel":
		return Distributed, nil
	case "dedicated", "unit":
		return Dedicated, nil
	case "hybrid", "cache":
		return Hybrid, nil
	}
	return Distributed, fmt.Errorf("storage: unknown policy %q (want distributed, dedicated or hybrid)", s)
}

// Eviction selects which cached fluid the hybrid strategy demotes to the
// unit when its channel slots run out.
type Eviction int

const (
	// LRU demotes the resident that has been cached longest (earliest
	// departure from its producer).
	LRU Eviction = iota
	// EarliestNextFetch demotes the resident whose consumer fetches
	// soonest: it would leave the cache first anyway, so its stay in the
	// unit is the shortest possible.
	EarliestNextFetch
)

// String names the eviction policy.
func (e Eviction) String() string {
	if e == EarliestNextFetch {
		return "earliest-next-fetch"
	}
	return "lru"
}

// ParseEviction converts a CLI/API spelling into an Eviction.
func ParseEviction(s string) (Eviction, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "lru":
		return LRU, nil
	case "earliest-next-fetch", "enf", "next-fetch":
		return EarliestNextFetch, nil
	}
	return LRU, fmt.Errorf("storage: unknown eviction policy %q (want lru or earliest-next-fetch)", s)
}

// DefaultCacheSlots is the hybrid cache bound used when none is given.
const DefaultCacheSlots = 2

// Config selects and parameterizes a strategy. The zero value is the
// distributed strategy (today's behavior).
type Config struct {
	// Policy picks the strategy.
	Policy Policy
	// CacheSlots bounds the hybrid channel cache (ignored otherwise);
	// zero means DefaultCacheSlots.
	CacheSlots int
	// Eviction picks the hybrid cache's eviction policy.
	Eviction Eviction
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.Policy < Distributed || c.Policy > Hybrid {
		return fmt.Errorf("storage: unknown policy %d", c.Policy)
	}
	if c.CacheSlots < 0 {
		return fmt.Errorf("storage: negative cache slots %d", c.CacheSlots)
	}
	if c.Eviction < LRU || c.Eviction > EarliestNextFetch {
		return fmt.Errorf("storage: unknown eviction policy %d", c.Eviction)
	}
	return nil
}

// Key returns a short deterministic discriminator for cache keys: schedules
// under different strategies are different artifacts and must never collide
// in the service's schedule cache or the persistent store.
func (c Config) Key() string {
	switch c.Policy {
	case Dedicated:
		return "dedicated"
	case Hybrid:
		return fmt.Sprintf("hybrid:%d:%s", c.slots(), c.Eviction)
	default:
		return "distributed"
	}
}

func (c Config) slots() int {
	if c.CacheSlots == 0 {
		return DefaultCacheSlots
	}
	return c.CacheSlots
}

// Strategy is one storage policy, plugged into scheduling (via
// sched.StorageModel: candidate generation and per-instant occupancy
// accounting happen inside the engines through that interface), plus the
// cost-model surface the rest of the pipeline needs: store/fetch journey
// cost and valve-cost accounting.
type Strategy interface {
	sched.StorageModel

	// Config returns the configuration the strategy was built from.
	Config() Config
	// UsesUnit reports whether schedules under this strategy may route
	// fluids through the dedicated unit (and architectures must place one).
	UsesUnit() bool
	// StoreFetchCost returns the minimum seconds a stored fluid spends in
	// transit between producer and consumer under this strategy, given
	// transport time u_c: 2·u_c through the unit's port, u_c through a
	// channel segment.
	StoreFetchCost(transport int) int
	// UnitValves returns the valve cost of a dedicated unit holding the
	// given number of cells (0 when the strategy has no unit, or for zero
	// cells: no fluid ever resided, so no unit is instantiated).
	UnitValves(cells int) int
}

// New builds the strategy for a config. Invalid configs fall back to their
// nearest valid interpretation (callers wanting errors use Config.Validate).
func New(c Config) Strategy {
	switch c.Policy {
	case Dedicated:
		return dedicatedStrategy{cfg: c}
	case Hybrid:
		return hybridStrategy{cfg: c}
	default:
		return distributedStrategy{cfg: c}
	}
}

// distributedStrategy is the paper's distributed channel storage: unlimited
// channel slots, no unit, no extra valves. Its StorageModel keeps both
// engines on their historical bit-identical code path.
type distributedStrategy struct{ cfg Config }

func (distributedStrategy) Name() string              { return "distributed" }
func (distributedStrategy) Serialized() bool          { return false }
func (distributedStrategy) ChannelSlots() int         { return -1 }
func (distributedStrategy) EvictionName() string      { return "" }
func (s distributedStrategy) Config() Config          { return s.cfg }
func (distributedStrategy) UsesUnit() bool            { return false }
func (distributedStrategy) StoreFetchCost(uc int) int { return uc }
func (distributedStrategy) UnitValves(int) int        { return 0 }

// dedicatedStrategy stores every fluid in the dedicated unit: zero channel
// slots, all accesses serialized through the unit's port.
type dedicatedStrategy struct{ cfg Config }

func (dedicatedStrategy) Name() string              { return "dedicated" }
func (dedicatedStrategy) Serialized() bool          { return true }
func (dedicatedStrategy) ChannelSlots() int         { return 0 }
func (dedicatedStrategy) EvictionName() string      { return "" }
func (s dedicatedStrategy) Config() Config          { return s.cfg }
func (dedicatedStrategy) UsesUnit() bool            { return true }
func (dedicatedStrategy) StoreFetchCost(uc int) int { return 2 * uc }
func (dedicatedStrategy) UnitValves(cells int) int {
	if cells < 1 {
		return 0
	}
	return dedicated.UnitValves(cells)
}

// hybridStrategy caches fluids in a bounded set of channel segments and
// overflows (or evicts) into the dedicated unit.
type hybridStrategy struct{ cfg Config }

func (hybridStrategy) Name() string           { return "hybrid" }
func (hybridStrategy) Serialized() bool       { return true }
func (s hybridStrategy) ChannelSlots() int    { return s.cfg.slots() }
func (s hybridStrategy) EvictionName() string { return s.cfg.Eviction.String() }
func (s hybridStrategy) Config() Config       { return s.cfg }
func (hybridStrategy) UsesUnit() bool         { return true }
func (hybridStrategy) StoreFetchCost(uc int) int {
	// Best case a cache hit (one channel journey); the worst case pays the
	// unit's 2·u_c. Planning uses the optimistic bound; the schedulers
	// charge the real cost per placement.
	return uc
}
func (hybridStrategy) UnitValves(cells int) int {
	if cells < 1 {
		return 0
	}
	return dedicated.UnitValves(cells)
}
