package verify

import (
	"flowsyn/internal/arch"
	"flowsyn/internal/sched"
	"flowsyn/internal/sim"
)

// sameRoute reports whether two routes realize the same task over the same
// grid resources, path for path.
func sameRoute(a, b arch.Route) bool {
	if a.Task != b.Task || a.StorageEdge != b.StorageEdge {
		return false
	}
	eqN := func(x, y []arch.NodeID) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	eqE := func(x, y []arch.EdgeID) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eqN(a.OutNodes, b.OutNodes) && eqE(a.OutEdges, b.OutEdges) &&
		eqN(a.FetchNodes, b.FetchNodes) && eqE(a.FetchEdges, b.FetchEdges)
}

// routeSpanEnd returns the last instant a route occupies the grid.
func routeSpanEnd(r arch.Route) int {
	if r.Task.Kind == sched.Stored {
		return r.Task.FetchEnd
	}
	return r.Task.Arrive
}

// CheckRecovery replays a faulted execution end to end: the original plan up
// to the fault instant, the recovered plan from it. On top of the full
// invariant suite on the recovered result (Check + CheckSim), it re-derives
// the splice-point guarantees from first principles:
//
//   - the executed prefix (every operation started before the fault) is
//     preserved verbatim — same device, same window, zero re-executed work —
//     including the departure slots its input transports used;
//   - nothing re-planned starts before the fault instant;
//   - the failed resource is honored: no re-planned operation runs on a
//     failed device, no re-planned route touches a failed channel segment,
//     no re-planned cache sits on a degraded segment (prefix routes may —
//     they completed before the fault existed, which the span check below
//     re-confirms);
//   - the internal routes that fed the prefix are carried over verbatim and
//     ended strictly before the fault;
//   - devices stayed where they were (recovery cannot teleport hardware).
//
// orig/origArch describe the faulted execution, rec/recArch the recovered
// one. The returned report carries every violation found.
func CheckRecovery(orig *sched.Schedule, origArch *arch.Result, rec *sched.Schedule, recArch *arch.Result, fault sim.Fault) (*Report, error) {
	rep, _ := CheckAll(rec, recArch)

	g := orig.Graph
	if rec.Graph != g {
		rep.addf(InvRecovery, "recovered schedule is for a different graph")
		return rep, rep.Err()
	}
	t := fault.Time

	// Prefix preservation and suffix floor.
	prefix := make([]bool, len(orig.Assignments))
	for _, a := range orig.Assignments {
		name := g.Op(a.Op).Name
		ra := rec.Assignments[a.Op]
		if a.Start < t {
			prefix[a.Op] = true
			if ra != a {
				rep.addf(InvRecovery, "executed op %s re-planned: was d%d [%d,%d), now d%d [%d,%d)",
					name, a.Device, a.Start, a.End, ra.Device, ra.Start, ra.End)
			}
			continue
		}
		if ra.Start < t {
			rep.addf(InvRecovery, "re-planned op %s starts at %d, before the fault at %d",
				name, ra.Start, t)
		}
		if fault.Kind == sim.FaultDevice && ra.Device == fault.Device {
			rep.addf(InvRecovery, "re-planned op %s runs on failed device %d", name, fault.Device)
		}
	}
	for e, off := range orig.DepartOffsets {
		if prefix[e.Child] && rec.DepartOffset(e) != off {
			rep.addf(InvRecovery, "executed transport %s->%s changed departure slot: %d -> %d",
				g.Op(e.Parent).Name, g.Op(e.Child).Name, off, rec.DepartOffset(e))
		}
	}

	if origArch == nil || recArch == nil {
		return rep, rep.Err()
	}

	// Placement stability.
	if len(recArch.DevicePos) != len(origArch.DevicePos) {
		rep.addf(InvRecovery, "recovery changed the device count: %d -> %d",
			len(origArch.DevicePos), len(recArch.DevicePos))
	} else {
		for d, p := range origArch.DevicePos {
			if recArch.DevicePos[d] != p {
				rep.addf(InvRecovery, "recovery moved device %d: node %d -> %d",
					d, p, recArch.DevicePos[d])
			}
		}
	}

	// Executed internal routes carried over verbatim, and already drained
	// when the fault hit.
	recByTask := make(map[sched.Task]arch.Route, len(recArch.Routes))
	for _, r := range recArch.Routes {
		recByTask[r.Task] = r
	}
	preservedTasks := make(map[sched.Task]bool)
	for _, r := range origArch.Routes {
		if r.Task.IO != sched.Internal || !prefix[r.Task.Edge.Child] {
			continue
		}
		preservedTasks[r.Task] = true
		if end := routeSpanEnd(r); end > t {
			rep.addf(InvRecovery, "executed route for %s->%s still live at the fault (ends %d > %d)",
				g.Op(r.Task.Edge.Parent).Name, g.Op(r.Task.Edge.Child).Name, end, t)
		}
		rr, ok := recByTask[r.Task]
		if !ok {
			rep.addf(InvRecovery, "executed route for %s->%s missing from the recovered architecture",
				g.Op(r.Task.Edge.Parent).Name, g.Op(r.Task.Edge.Child).Name)
			continue
		}
		if !sameRoute(r, rr) {
			rep.addf(InvRecovery, "executed route for %s->%s re-routed",
				g.Op(r.Task.Edge.Parent).Name, g.Op(r.Task.Edge.Child).Name)
		}
	}

	// Fault masks on everything re-planned.
	for _, r := range recArch.Routes {
		if preservedTasks[r.Task] {
			continue
		}
		switch fault.Kind {
		case sim.FaultChannel:
			for _, e := range r.Edges() {
				if e == fault.Edge {
					rep.addf(InvRecovery, "re-planned route for %s->%s uses failed segment %d",
						g.Op(r.Task.Edge.Parent).Name, g.Op(r.Task.Edge.Child).Name, fault.Edge)
					break
				}
			}
		case sim.FaultStorage:
			if r.Task.Kind == sched.Stored && r.StorageEdge == fault.Edge {
				rep.addf(InvRecovery, "re-planned route for %s->%s caches on degraded segment %d",
					g.Op(r.Task.Edge.Parent).Name, g.Op(r.Task.Edge.Child).Name, fault.Edge)
			}
		}
	}

	return rep, rep.Err()
}
