package verify

import (
	"flowsyn/internal/arch"
	"flowsyn/internal/sched"
	"flowsyn/internal/sim"
)

// SegmentRole is the checker's classification of a channel segment at one
// instant. It mirrors sim.SegmentState for built segments, but is computed
// by a structurally different algorithm — the routes' task windows are
// flattened once into per-segment interval claims, which are then evaluated
// per instant — so drift in either implementation shows up as disagreement.
type SegmentRole int

const (
	// RoleIdle means the segment is built but carries nothing at the instant.
	RoleIdle SegmentRole = iota
	// RoleTransporting means a fluid moves through the segment.
	RoleTransporting
	// RoleCaching means the segment holds a stored fluid.
	RoleCaching
)

// String names the role.
func (r SegmentRole) String() string {
	switch r {
	case RoleTransporting:
		return "transporting"
	case RoleCaching:
		return "caching"
	default:
		return "idle"
	}
}

// roleWindow claims one segment for [start, end) in the given role.
type roleWindow struct {
	start, end int
	role       SegmentRole
}

// Accounting is the checker's per-instant view of a synthesized chip: every
// route's task windows flattened into per-segment interval claims, built
// once and evaluated at any instant.
type Accounting struct {
	edges   []arch.EdgeID
	windows map[arch.EdgeID][]roleWindow
	// caches holds every caching window, for the cached-fluid count.
	caches []roleWindow
	// unitCaches holds every unit-residency window (fluids waiting inside the
	// dedicated storage unit, off the grid), for the unit-resident count.
	unitCaches []roleWindow
	// horizon is the last instant anything can still be live on the chip:
	// the end of the latest claim (transports may outlive the makespan, e.g.
	// product unloading).
	horizon int
}

// NewAccounting flattens the architecture's routes into interval claims.
// Claims are recorded in route order, later routes after earlier ones, so
// evaluation resolves overlaps exactly like the simulator's route replay.
func NewAccounting(a *arch.Result) *Accounting {
	ac := &Accounting{
		edges:   a.UsedEdges,
		windows: make(map[arch.EdgeID][]roleWindow, len(a.UsedEdges)),
	}
	add := func(e arch.EdgeID, w roleWindow) {
		if w.start < w.end {
			ac.windows[e] = append(ac.windows[e], w)
			if w.end > ac.horizon {
				ac.horizon = w.end
			}
		}
	}
	for _, route := range a.Routes {
		t := route.Task
		if t.Kind == sched.Direct {
			for _, e := range route.OutEdges {
				add(e, roleWindow{t.Depart, t.Arrive, RoleTransporting})
			}
			continue
		}
		if t.Unit {
			// Unit-stored: two transport legs, residency inside the unit (off
			// the grid, so no segment ever shows RoleCaching for it).
			for _, e := range route.OutEdges {
				add(e, roleWindow{t.OutStart, t.OutEnd, RoleTransporting})
			}
			for _, e := range route.FetchEdges {
				add(e, roleWindow{t.FetchStart, t.FetchEnd, RoleTransporting})
			}
			if t.OutEnd < t.FetchStart {
				ac.unitCaches = append(ac.unitCaches, roleWindow{t.OutEnd, t.FetchStart, RoleCaching})
			}
			continue
		}
		for _, e := range route.OutEdges {
			add(e, roleWindow{t.OutStart, t.OutEnd, RoleTransporting})
		}
		add(route.StorageEdge, roleWindow{t.OutStart, t.OutEnd, RoleTransporting})
		add(route.StorageEdge, roleWindow{t.OutEnd, t.FetchStart, RoleCaching})
		if t.OutEnd < t.FetchStart {
			ac.caches = append(ac.caches, roleWindow{t.OutEnd, t.FetchStart, RoleCaching})
		}
		add(route.StorageEdge, roleWindow{t.FetchStart, t.FetchEnd, RoleTransporting})
		for _, e := range route.FetchEdges {
			add(e, roleWindow{t.FetchStart, t.FetchEnd, RoleTransporting})
		}
	}
	return ac
}

// At evaluates the claims at time t: the role of every built segment plus
// the number of cached fluids.
func (ac *Accounting) At(t int) (states map[arch.EdgeID]SegmentRole, cached int) {
	states = make(map[arch.EdgeID]SegmentRole, len(ac.edges))
	for _, e := range ac.edges {
		role := RoleIdle
		// Later claims win, mirroring the simulator's route-order replay;
		// on a valid chip the claims are disjoint anyway.
		for _, w := range ac.windows[e] {
			if t >= w.start && t < w.end {
				role = w.role
			}
		}
		states[e] = role
	}
	for _, w := range ac.caches {
		if t >= w.start && t < w.end {
			cached++
		}
	}
	return states, cached
}

// UnitAt returns the number of fluids resident in the dedicated storage unit
// at time t.
func (ac *Accounting) UnitAt(t int) int {
	n := 0
	for _, w := range ac.unitCaches {
		if t >= w.start && t < w.end {
			n++
		}
	}
	return n
}

// StatesAt recomputes the role of every built channel segment at time t,
// plus the number of cached fluids. One-shot convenience around Accounting.
func StatesAt(a *arch.Result, t int) (states map[arch.EdgeID]SegmentRole, cached int) {
	return NewAccounting(a).At(t)
}

// Horizon returns the last instant at which anything can still be live on
// the chip: the makespan, extended by transports that outlive it (e.g.
// product unloading).
func Horizon(s *sched.Schedule, a *arch.Result) int {
	h := s.Makespan
	if ah := NewAccounting(a).horizon; ah > h {
		h = ah
	}
	return h
}

// CheckSim replays the result through the execution simulator (internal/sim)
// and asserts that the simulator's snapshot agrees with the checker's
// interval accounting — segment by segment and cached-fluid count — at every
// instant from 0 through the horizon. The two sides read the same routed
// tasks but evaluate them with different algorithms (per-route window replay
// vs. flattened interval claims), so an off-by-one or semantic drift in
// either one surfaces as a sim-agreement violation.
func CheckSim(s *sched.Schedule, a *arch.Result) error {
	r := &Report{}
	simulator := sim.New(a, s)
	ac := NewAccounting(a)
	horizon := s.Makespan
	if ac.horizon > horizon {
		horizon = ac.horizon
	}
	for t := 0; t <= horizon; t++ {
		snap := simulator.At(t)
		states, cached := ac.At(t)
		if snap.CachedSamples != cached {
			r.addf(InvSimAgreement, "t=%d: simulator reports %d cached fluids, checker %d",
				t, snap.CachedSamples, cached)
		}
		if unit := ac.UnitAt(t); snap.UnitSamples != unit {
			r.addf(InvSimAgreement, "t=%d: simulator reports %d unit residents, checker %d",
				t, snap.UnitSamples, unit)
		}
		if len(snap.Segment) != len(states) {
			r.addf(InvSimAgreement, "t=%d: simulator tracks %d segments, checker %d",
				t, len(snap.Segment), len(states))
		}
		for e, role := range states {
			simState, ok := snap.Segment[e]
			if !ok {
				r.addf(InvSimAgreement, "t=%d: segment %d missing from the simulator snapshot", t, e)
				continue
			}
			if simState.String() != role.String() {
				r.addf(InvSimAgreement, "t=%d: segment %d is %v in the simulator but %v for the checker",
					t, e, simState, role)
			}
		}
		// A handful of disagreements pins the bug; a full horizon of them
		// would bury it.
		if len(r.Violations) > 20 {
			r.addf(InvSimAgreement, "stopping after %d disagreements (t=%d of %d)", len(r.Violations), t, horizon)
			break
		}
	}
	return r.Err()
}

// CheckAll runs the full verification: every structural invariant (Check)
// plus the simulator cross-check (CheckSim) when an architecture is present.
// Reported counts can be compared by the caller via the returned report.
func CheckAll(s *sched.Schedule, a *arch.Result) (*Report, error) {
	rep := Check(s, a)
	if err := rep.Err(); err != nil {
		return rep, err
	}
	if a != nil {
		if err := CheckSim(s, a); err != nil {
			if verr, ok := err.(*Error); ok {
				rep.Violations = append(rep.Violations, verr.Violations...)
			}
			return rep, err
		}
	}
	return rep, nil
}
