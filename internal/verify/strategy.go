package verify

import (
	"fmt"
	"sort"

	"flowsyn/internal/arch"
	"flowsyn/internal/sched"
)

// CheckStrategy re-derives the storage-strategy invariants of a schedule from
// first principles, given the storage model it was synthesized under:
//
//   - distributed: no fluid may touch the dedicated unit — no unit tasks, no
//     granted unit windows, zero port queueing;
//   - serialized strategies (dedicated, hybrid): port exclusivity — the unit's
//     single port serves one transport at a time, so every store and fetch
//     window is pairwise disjoint — and window legality: each store starts at
//     or after its producer ends, each fetch completes at or before its
//     consumer starts, and store precedes fetch by at least u_c (a demotion
//     into the unit is legal only under exactly these conditions, so this is
//     also the eviction-legality check);
//   - bounded channel cache (hybrid): at no instant do more fluids reside in
//     channel segments than the cache has slots;
//   - dedicated (zero slots): every stored fluid goes through the unit.
//
// Like the rest of this package it trusts no engine bookkeeping: the unit
// workload is re-derived from the schedule's tasks, not from UnitWindows.
func CheckStrategy(s *sched.Schedule, m sched.StorageModel) *Report {
	r := &Report{}
	if s == nil {
		r.addf(InvStorageStrategy, "no schedule to check")
		return r
	}
	r.checkStrategy(s, m)
	return r
}

func (r *Report) checkStrategy(s *sched.Schedule, m sched.StorageModel) {
	g := s.Graph
	distributed := m == nil || (!m.Serialized() && m.ChannelSlots() < 0)

	var unit, channel []sched.Task
	for _, t := range s.Tasks() {
		if t.Kind != sched.Stored {
			continue
		}
		if t.Unit {
			unit = append(unit, t)
		} else {
			channel = append(channel, t)
		}
	}

	if distributed {
		if len(unit) > 0 {
			r.addf(InvStorageStrategy, "distributed storage but %d task(s) routed through a dedicated unit", len(unit))
		}
		if len(s.UnitWindows) > 0 {
			r.addf(InvStorageStrategy, "distributed storage but %d unit window(s) granted", len(s.UnitWindows))
		}
		if s.UnitQueueDelay != 0 {
			r.addf(InvStorageStrategy, "distributed storage but %d s of port queue delay reported", s.UnitQueueDelay)
		}
		return
	}

	name := func(t sched.Task) string {
		return fmt.Sprintf("%s->%s", g.Op(t.Edge.Parent).Name, g.Op(t.Edge.Child).Name)
	}

	// Port exclusivity: every unit store and fetch transport holds the unit's
	// single port exclusively.
	type window struct {
		start, end int
		desc       string
	}
	var ports []window
	for _, t := range unit {
		ports = append(ports,
			window{t.OutStart, t.OutEnd, "store " + name(t)},
			window{t.FetchStart, t.FetchEnd, "fetch " + name(t)})
	}
	sort.Slice(ports, func(i, j int) bool {
		if ports[i].start != ports[j].start {
			return ports[i].start < ports[j].start
		}
		return ports[i].desc < ports[j].desc
	})
	for i := 1; i < len(ports); i++ {
		if ports[i].start < ports[i-1].end {
			r.addf(InvStorageStrategy, "unit port serves %s [%d,%d) and %s [%d,%d) simultaneously",
				ports[i-1].desc, ports[i-1].start, ports[i-1].end,
				ports[i].desc, ports[i].start, ports[i].end)
		}
	}

	// Window legality (also the eviction-legality condition: a fluid may be
	// demoted into the unit only when its full store and fetch fit between
	// producer end and consumer start).
	for _, t := range unit {
		p, c := s.Assignments[t.Edge.Parent], s.Assignments[t.Edge.Child]
		if t.OutStart < p.End {
			r.addf(InvStorageStrategy, "unit store %s begins at %d before its producer ends at %d",
				name(t), t.OutStart, p.End)
		}
		if t.OutEnd-t.OutStart != s.Transport || t.FetchEnd-t.FetchStart != s.Transport {
			r.addf(InvStorageStrategy, "unit task %s transports are not full u_c=%d: store [%d,%d), fetch [%d,%d)",
				name(t), s.Transport, t.OutStart, t.OutEnd, t.FetchStart, t.FetchEnd)
		}
		if t.FetchStart < t.OutEnd {
			r.addf(InvStorageStrategy, "unit task %s fetches at %d before its store completes at %d",
				name(t), t.FetchStart, t.OutEnd)
		}
		if t.FetchEnd > c.Start {
			r.addf(InvStorageStrategy, "unit fetch %s completes at %d after its consumer starts at %d",
				name(t), t.FetchEnd, c.Start)
		}
	}

	// Channel-cache capacity: a bounded cache may never hold more residents
	// than it has slots (dedicated storage has zero slots, so any
	// channel-cached fluid is a violation on its own).
	if slots := m.ChannelSlots(); slots >= 0 {
		if slots == 0 && len(channel) > 0 {
			r.addf(InvStorageStrategy, "dedicated storage but %d fluid(s) cached in channel segments", len(channel))
		}
		type event struct{ t, d int }
		var evs []event
		for _, t := range channel {
			if t.OutEnd < t.FetchStart {
				evs = append(evs, event{t.OutEnd, +1}, event{t.FetchStart, -1})
			}
		}
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].t != evs[j].t {
				return evs[i].t < evs[j].t
			}
			return evs[i].d < evs[j].d
		})
		cur, peak := 0, 0
		for _, e := range evs {
			cur += e.d
			if cur > peak {
				peak = cur
			}
		}
		if peak > slots {
			r.addf(InvStorageStrategy, "channel cache holds %d fluids at its peak but has only %d slot(s)", peak, slots)
		}
	}
}

// CheckAllStrategy runs the full verification (CheckAll) plus the
// storage-strategy invariants for the model the result was synthesized under.
// A nil model means distributed channel storage.
func CheckAllStrategy(s *sched.Schedule, a *arch.Result, m sched.StorageModel) (*Report, error) {
	rep, err := CheckAll(s, a)
	if err != nil {
		return rep, err
	}
	rep.checkStrategy(s, m)
	return rep, rep.Err()
}
