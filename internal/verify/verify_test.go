package verify_test

import (
	"strings"
	"testing"

	"flowsyn/internal/arch"
	"flowsyn/internal/assay"
	"flowsyn/internal/core"
	"flowsyn/internal/sched"
	"flowsyn/internal/seqgraph"
	"flowsyn/internal/verify"
)

// storageGraph is a four-operation assay whose schedule (below) produces two
// stored tasks with overlapping caching windows — the smallest interesting
// distributed-storage workload.
func storageGraph(t *testing.T) *seqgraph.Graph {
	t.Helper()
	g := seqgraph.New("store2")
	o1 := g.MustAddOperation("o1", seqgraph.Mix, 30, 2)
	o2 := g.MustAddOperation("o2", seqgraph.Mix, 30, 2)
	oL := g.MustAddOperation("oL", seqgraph.Mix, 150, 2)
	oM := g.MustAddOperation("oM", seqgraph.Mix, 30, 2)
	oC := g.MustAddOperation("oC", seqgraph.Mix, 30, 0)
	g.MustAddDependency(o1, oC)
	g.MustAddDependency(o2, oC)
	g.MustAddDependency(oL, oC)
	_ = oM // independent: it only occupies device 1 mid-run
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// storageSchedule hand-builds a valid schedule of storageGraph on two
// devices: o1's and o2's products are both cached in channel segments for
// ~150 s while oL blocks device 0 and oM blocks device 1.
func storageSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	g := storageGraph(t)
	s := &sched.Schedule{
		Graph:     g,
		Devices:   2,
		Transport: 10,
		Assignments: []sched.Assignment{
			{Op: 0, Device: 0, Start: 0, End: 30},    // o1
			{Op: 1, Device: 1, Start: 0, End: 30},    // o2
			{Op: 2, Device: 0, Start: 30, End: 180},  // oL
			{Op: 3, Device: 1, Start: 100, End: 130}, // oM
			{Op: 4, Device: 1, Start: 190, End: 220}, // oC
		},
		Makespan: 220,
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("hand-built schedule invalid: %v", err)
	}
	if got := s.StoreCount(); got != 2 {
		t.Fatalf("hand-built schedule has %d stored tasks, want 2", got)
	}
	return s
}

// synthesized routes the hand-built storage schedule on a 4x4 grid.
func synthesized(t *testing.T) (*sched.Schedule, *arch.Result) {
	t.Helper()
	s := storageSchedule(t)
	grid, err := arch.NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := arch.Synthesize(s, grid, arch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, a
}

// wantClass asserts that the report rejects the result with at least one
// violation of the given invariant class.
func wantClass(t *testing.T, rep *verify.Report, class string) {
	t.Helper()
	if len(rep.Violations) == 0 {
		t.Fatalf("checker accepted an invalid result, want %s violation", class)
	}
	for _, v := range rep.Violations {
		if v.Invariant == class {
			return
		}
	}
	t.Fatalf("no %s violation in %v", class, rep.Err())
}

func TestCheckAcceptsValidResult(t *testing.T) {
	s, a := synthesized(t)
	rep := verify.Check(s, a)
	if err := rep.Err(); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
	if rep.Makespan != 220 {
		t.Errorf("recomputed makespan %d, want 220", rep.Makespan)
	}
	if rep.Stored != 2 {
		t.Errorf("recomputed %d stored tasks, want 2", rep.Stored)
	}
	if rep.PeakStorage != 2 {
		t.Errorf("recomputed peak storage %d, want 2", rep.PeakStorage)
	}
	if rep.NumEdges != a.NumEdges || rep.NumValves != a.NumValves {
		t.Errorf("recomputed ne=%d nv=%d, architecture reports ne=%d nv=%d",
			rep.NumEdges, rep.NumValves, a.NumEdges, a.NumValves)
	}
	if err := verify.CheckSim(s, a); err != nil {
		t.Fatalf("simulator disagrees with checker on a valid result: %v", err)
	}
}

func TestCheckScheduleOnly(t *testing.T) {
	s := storageSchedule(t)
	if err := verify.Check(s, nil).Err(); err != nil {
		t.Fatalf("schedule-only check rejected a valid schedule: %v", err)
	}
}

func TestCheckRejectsNilSchedule(t *testing.T) {
	wantClass(t, verify.Check(nil, nil), verify.InvAssignment)
}

func TestCheckRejectsCorruptAssignment(t *testing.T) {
	s, a := synthesized(t)

	m := s.Clone()
	m.Assignments[0].Device = 99
	wantClass(t, verify.Check(m, a), verify.InvAssignment)

	m = s.Clone()
	m.Assignments[2].End += 7 // duration no longer matches the operation
	wantClass(t, verify.Check(m, a), verify.InvAssignment)

	m = s.Clone()
	m.Assignments[1].Op = 0 // table index inconsistent
	wantClass(t, verify.Check(m, a), verify.InvAssignment)

	m = s.Clone()
	m.Assignments[0].Start, m.Assignments[0].End = -5, 25
	wantClass(t, verify.Check(m, a), verify.InvAssignment)
}

func TestCheckRejectsPrecedenceViolation(t *testing.T) {
	s, a := synthesized(t)
	m := s.Clone()
	// oC consumes oL's product across devices; moving it to start before
	// oL's end plus the transport latency breaks precedence.
	m.Assignments[4].Start, m.Assignments[4].End = 185, 215
	m.Makespan = 215
	wantClass(t, verify.Check(m, a), verify.InvPrecedence)
}

func TestCheckRejectsDeviceOverlap(t *testing.T) {
	s, a := synthesized(t)
	m := s.Clone()
	// Move oM onto device 0, overlapping oL's execution window.
	m.Assignments[3].Device = 0
	wantClass(t, verify.Check(m, a), verify.InvDeviceExclusive)
}

func TestCheckRejectsWrongMakespan(t *testing.T) {
	s, a := synthesized(t)
	m := s.Clone()
	m.Makespan++
	wantClass(t, verify.Check(m, a), verify.InvMetrics)
}

func TestCheckRejectsBrokenTaskWindows(t *testing.T) {
	s, _ := synthesized(t)
	m := s.Clone()
	// A negative departure offset makes the derived task leave the device
	// before its producing operation has finished.
	m.DepartOffsets = map[seqgraph.Edge]int{{Parent: 0, Child: 4}: -1000}
	wantClass(t, verify.Check(m, nil), verify.InvTaskWindows)
}

func TestCheckRejectsMissingRoute(t *testing.T) {
	s, a := synthesized(t)
	mut := *a
	mut.Routes = a.Routes[:len(a.Routes)-1]
	wantClass(t, verify.Check(s, &mut), verify.InvRouteCover)
}

func TestCheckRejectsDetachedPath(t *testing.T) {
	s, a := synthesized(t)
	mut := *a
	mut.Routes = append([]arch.Route(nil), a.Routes...)
	for i, route := range mut.Routes {
		if len(route.OutEdges) == 0 {
			continue
		}
		r := route
		r.OutEdges = append([]arch.EdgeID(nil), route.OutEdges...)
		r.OutEdges[0] = (r.OutEdges[0] + 1) % arch.EdgeID(a.Grid.NumEdges())
		mut.Routes[i] = r
		break
	}
	wantClass(t, verify.Check(s, &mut), verify.InvRoutePath)
}

func TestCheckRejectsMissingStorageSegment(t *testing.T) {
	s, a := synthesized(t)
	mut := *a
	mut.Routes = append([]arch.Route(nil), a.Routes...)
	found := false
	for i, route := range mut.Routes {
		if route.Task.Kind == sched.Stored {
			r := route
			r.StorageEdge = -1
			mut.Routes[i] = r
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no stored route to mutate")
	}
	wantClass(t, verify.Check(s, &mut), verify.InvStorage)
}

func TestCheckRejectsSharedStorageSegment(t *testing.T) {
	s, a := synthesized(t)
	mut := *a
	mut.Routes = append([]arch.Route(nil), a.Routes...)
	// Force the second cached fluid onto the first one's storage segment:
	// their caching windows overlap, so the segment would hold two distinct
	// fluids at once.
	var storedIdx []int
	for i, route := range mut.Routes {
		if route.Task.Kind == sched.Stored {
			storedIdx = append(storedIdx, i)
		}
	}
	if len(storedIdx) < 2 {
		t.Fatalf("want 2 stored routes, got %d", len(storedIdx))
	}
	r := mut.Routes[storedIdx[1]]
	r.StorageEdge = mut.Routes[storedIdx[0]].StorageEdge
	mut.Routes[storedIdx[1]] = r
	wantClass(t, verify.Check(s, &mut), verify.InvChannelExclusive)
}

func TestCheckRejectsWrongMetrics(t *testing.T) {
	s, a := synthesized(t)

	mut := *a
	mut.NumEdges++
	wantClass(t, verify.Check(s, &mut), verify.InvMetrics)

	mut = *a
	mut.NumValves--
	wantClass(t, verify.Check(s, &mut), verify.InvMetrics)

	mut = *a
	mut.EdgeRatio += 0.25
	wantClass(t, verify.Check(s, &mut), verify.InvMetrics)

	mut = *a
	mut.UsedEdges = append(append([]arch.EdgeID(nil), a.UsedEdges...), arch.EdgeID(0))
	wantClass(t, verify.Check(s, &mut), verify.InvMetrics)
}

func TestErrorRendering(t *testing.T) {
	err := &verify.Error{Violations: []verify.Violation{
		{Invariant: verify.InvPrecedence, Detail: "x"},
		{Invariant: verify.InvMetrics, Detail: "y"},
	}}
	msg := err.Error()
	if !strings.Contains(msg, "2 invariant violation(s)") ||
		!strings.Contains(msg, verify.InvPrecedence) ||
		!strings.Contains(msg, verify.InvMetrics) {
		t.Errorf("unhelpful error message: %q", msg)
	}
}

func TestHorizonCoversUnloadTail(t *testing.T) {
	// With I/O modeled, the final product ships after the last operation
	// ends, so the verification horizon must extend past the makespan.
	b := assay.MustGet("IVD")
	res, err := core.Synthesize(b.Graph, core.Options{
		Devices:   b.Devices,
		Transport: b.Transport,
		GridRows:  b.GridRows,
		GridCols:  b.GridCols,
		ModelIO:   true,
		Engine:    core.Heuristic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h := verify.Horizon(res.Schedule, res.Architecture); h <= res.Schedule.Makespan {
		t.Errorf("horizon %d does not extend past makespan %d despite unload tasks", h, res.Schedule.Makespan)
	}
	if err := verify.CheckSim(res.Schedule, res.Architecture); err != nil {
		t.Fatal(err)
	}
}

func TestStatesAtMatchesLifecycle(t *testing.T) {
	_, a := synthesized(t)
	var stored *arch.Route
	for i := range a.Routes {
		if a.Routes[i].Task.Kind == sched.Stored {
			stored = &a.Routes[i]
			break
		}
	}
	if stored == nil {
		t.Fatal("no stored route")
	}
	tk := stored.Task
	mid := (tk.OutEnd + tk.FetchStart) / 2
	states, cached := verify.StatesAt(a, mid)
	if states[stored.StorageEdge] != verify.RoleCaching {
		t.Errorf("storage segment is %v mid-cache, want caching", states[stored.StorageEdge])
	}
	if cached == 0 {
		t.Error("no cached fluid counted mid-cache")
	}
	states, _ = verify.StatesAt(a, tk.OutStart)
	if len(stored.OutEdges) > 0 && states[stored.OutEdges[0]] != verify.RoleTransporting {
		t.Errorf("move-out segment is %v at departure, want transporting", states[stored.OutEdges[0]])
	}
}
