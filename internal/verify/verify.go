// Package verify is an independent, solver-agnostic checker for synthesis
// results. It re-derives the correctness of a scheduled-and-routed biochip
// from first principles — the paper's constraint system (Table 1 and Section
// 3.2 of "Transport or Store?", DAC 2017) — without trusting any bookkeeping
// of the engine that produced the result:
//
//   - precedence: every dependency edge is respected, including the
//     cross-device transport latency u_c;
//   - device exclusivity: no two operations bound to one device overlap;
//   - task windows: the transportation workload derived from the schedule is
//     internally consistent (move-out before caching before fetch, arrivals
//     aligned with consumer starts);
//   - route cover: the architecture realizes exactly the schedule's
//     transportation workload, task by task, between the right device nodes;
//   - route paths: every routed path is a connected walk on the grid whose
//     segments are all part of the built chip;
//   - storage: every cached fluid owns a storage segment for its whole
//     caching window, and no segment caches two fluids at once;
//   - channel exclusivity: no grid segment or switch carries two distinct
//     fluids in overlapping time windows (a segment never simultaneously
//     transports and caches different fluids);
//   - metrics: reported makespan, edge/valve counts and ratios match
//     recomputation from scratch.
//
// The checker deliberately re-implements this accounting instead of calling
// sched.Schedule.Validate or arch.Result.Validate, so that a bug shared by an
// engine and its own validation cannot hide. A companion cross-check,
// CheckSim, replays the result through the execution simulator
// (internal/sim) and asserts that the simulator's per-instant segment states
// agree with the checker's own accounting at every instant.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"flowsyn/internal/arch"
	"flowsyn/internal/sched"
)

// Invariant classes, used to label violations.
const (
	InvAssignment       = "assignment"
	InvPrecedence       = "precedence"
	InvDeviceExclusive  = "device-exclusivity"
	InvTaskWindows      = "task-windows"
	InvRouteCover       = "route-cover"
	InvRoutePath        = "route-path"
	InvStorage          = "storage"
	InvChannelExclusive = "channel-exclusivity"
	InvMetrics          = "metrics"
	InvSimAgreement     = "sim-agreement"
	InvRecovery         = "recovery"
	InvStorageStrategy  = "storage-strategy"
)

// Violation is one broken invariant.
type Violation struct {
	// Invariant is the Inv* class of the broken rule.
	Invariant string
	// Detail describes the specific failure.
	Detail string
}

// Error renders the violation.
func (v Violation) Error() string { return v.Invariant + ": " + v.Detail }

// Error aggregates every violation found by a check. It is the error type
// returned from Report.Err and the verify pipeline stage, so callers can
// distinguish "the result is wrong" from "synthesis failed" with errors.As.
type Error struct {
	// Violations lists every broken invariant, in detection order.
	Violations []Violation
}

// Error renders the first violations (all of them when few).
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %d invariant violation(s)", len(e.Violations))
	for i, v := range e.Violations {
		if i == 5 {
			fmt.Fprintf(&b, "; ... %d more", len(e.Violations)-i)
			break
		}
		b.WriteString("; ")
		b.WriteString(v.Error())
	}
	return b.String()
}

// Report is the outcome of a Check: the violations found plus the quantities
// the checker recomputed from first principles, for callers that want to
// compare them against an engine's reported metrics.
type Report struct {
	// Violations lists every broken invariant (empty for a correct result).
	Violations []Violation

	// Makespan is the recomputed t^E: the latest operation end time.
	Makespan int
	// Transports and Stored count the recomputed transportation workload
	// (internal tasks only, matching core's Binding summary).
	Transports, Stored int
	// PeakStorage is the recomputed maximum number of simultaneously cached
	// fluids (channel segments only; unit residents are counted separately).
	PeakStorage int
	// UnitStored counts the Stored tasks routed through the dedicated storage
	// unit; PeakUnit is the recomputed maximum number of simultaneous unit
	// residents (the cell count the unit's multiplexer must address).
	UnitStored, PeakUnit int
	// NumEdges and NumValves are the recomputed architecture metrics (zero
	// when no architecture was checked).
	NumEdges, NumValves int
}

// Err returns nil when the report holds no violation, and an *Error carrying
// all of them otherwise.
func (r *Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return &Error{Violations: r.Violations}
}

func (r *Report) addf(invariant, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// Check re-derives every invariant of a synthesis result from first
// principles. a may be nil, in which case only the schedule-level invariants
// are checked (useful for schedule-only engines and tests).
func Check(s *sched.Schedule, a *arch.Result) *Report {
	r := &Report{}
	if s == nil {
		r.addf(InvAssignment, "no schedule to check")
		return r
	}
	okSched := r.checkSchedule(s)
	// The transportation workload is only meaningful for a structurally sound
	// schedule; deriving tasks from a corrupt assignment table could panic.
	if okSched {
		r.checkTasks(s)
	}
	if a != nil && okSched {
		r.checkArchitecture(s, a)
	}
	return r
}

// checkSchedule verifies the scheduling-and-binding invariants (the paper's
// Table 1 constraints) and recomputes the makespan. It reports whether the
// assignment table is structurally sound.
func (r *Report) checkSchedule(s *sched.Schedule) bool {
	g := s.Graph
	if g == nil {
		r.addf(InvAssignment, "schedule has no graph")
		return false
	}
	if len(s.Assignments) != g.NumOps() {
		r.addf(InvAssignment, "%d assignments for %d operations", len(s.Assignments), g.NumOps())
		return false
	}
	if s.Devices < 1 {
		r.addf(InvAssignment, "schedule claims %d devices", s.Devices)
		return false
	}
	sound := true
	for i, a := range s.Assignments {
		if int(a.Op) != i {
			r.addf(InvAssignment, "assignment table corrupt at index %d (holds op %d)", i, a.Op)
			sound = false
			continue
		}
		op := g.Op(a.Op)
		if a.Device < 0 || a.Device >= s.Devices {
			r.addf(InvAssignment, "op %s bound to invalid device %d of %d", op.Name, a.Device, s.Devices)
			// Deriving the transportation workload would index devices out
			// of range.
			sound = false
		}
		if a.Start < 0 {
			r.addf(InvAssignment, "op %s starts at negative time %d", op.Name, a.Start)
		}
		if a.End-a.Start != op.Duration {
			r.addf(InvAssignment, "op %s has window [%d,%d) but duration %d", op.Name, a.Start, a.End, op.Duration)
		}
	}
	if !sound {
		return false
	}

	// Precedence with transport latency: a child on another device can start
	// only after the parent's product has travelled u_c seconds.
	for _, e := range g.Edges() {
		p, c := s.Assignments[e.Parent], s.Assignments[e.Child]
		need := 0
		if p.Device != c.Device {
			need = s.Transport
		}
		if c.Start < p.End+need {
			r.addf(InvPrecedence, "edge %s->%s: parent ends %d, child starts %d, need gap %d",
				g.Op(e.Parent).Name, g.Op(e.Child).Name, p.End, c.Start, need)
		}
	}

	// Device exclusivity: sweep each device's assignments by start time.
	perDevice := make([][]sched.Assignment, s.Devices)
	for _, a := range s.Assignments {
		if a.Device >= 0 && a.Device < s.Devices {
			perDevice[a.Device] = append(perDevice[a.Device], a)
		}
	}
	for d, list := range perDevice {
		sort.Slice(list, func(i, j int) bool { return list[i].Start < list[j].Start })
		for i := 1; i < len(list); i++ {
			if list[i].Start < list[i-1].End {
				r.addf(InvDeviceExclusive, "device %d runs %s and %s concurrently",
					d, g.Op(list[i-1].Op).Name, g.Op(list[i].Op).Name)
			}
		}
	}

	// Recompute the makespan and compare with the reported one.
	for _, a := range s.Assignments {
		if a.End > r.Makespan {
			r.Makespan = a.End
		}
	}
	if s.Makespan != r.Makespan {
		r.addf(InvMetrics, "reported makespan %d, recomputed %d", s.Makespan, r.Makespan)
	}
	return true
}

// checkTasks verifies the internal transportation workload derived from the
// schedule and recomputes the Transports/Stored/PeakStorage metrics.
func (r *Report) checkTasks(s *sched.Schedule) {
	g := s.Graph
	type cacheEvent struct{ t, delta int }
	var events, unitEvents []cacheEvent
	for _, t := range s.Tasks() {
		r.Transports++
		p, c := s.Assignments[t.Edge.Parent], s.Assignments[t.Edge.Child]
		name := fmt.Sprintf("%s->%s", g.Op(t.Edge.Parent).Name, g.Op(t.Edge.Child).Name)
		if t.From != p.Device || t.To != c.Device {
			r.addf(InvTaskWindows, "task %s travels %d->%d but ops are bound to %d->%d",
				name, t.From, t.To, p.Device, c.Device)
		}
		switch t.Kind {
		case sched.Direct:
			if t.Depart >= t.Arrive {
				r.addf(InvTaskWindows, "direct task %s has empty window [%d,%d)", name, t.Depart, t.Arrive)
			}
			if t.Depart < p.End-1 {
				// The departure may be clamped one second before the consumer
				// starts, but never earlier than just before the parent ends.
				r.addf(InvTaskWindows, "direct task %s departs at %d before its parent ends at %d",
					name, t.Depart, p.End)
			}
			if t.Arrive != c.Start {
				r.addf(InvTaskWindows, "direct task %s arrives at %d but its consumer starts at %d",
					name, t.Arrive, c.Start)
			}
			if t.Arrive-t.Depart > s.Transport {
				r.addf(InvTaskWindows, "direct task %s occupies its path %d s, longer than u_c=%d plus waiting at the consumer is not modeled",
					name, t.Arrive-t.Depart, s.Transport)
			}
		case sched.Stored:
			r.Stored++
			if !(t.OutStart <= t.OutEnd && t.OutEnd <= t.FetchStart && t.FetchStart <= t.FetchEnd) {
				r.addf(InvTaskWindows, "stored task %s has disordered windows out[%d,%d) cache[%d,%d) fetch[%d,%d)",
					name, t.OutStart, t.OutEnd, t.OutEnd, t.FetchStart, t.FetchStart, t.FetchEnd)
				continue
			}
			if t.OutStart < p.End-1 {
				r.addf(InvTaskWindows, "stored task %s moves out at %d before its parent ends at %d",
					name, t.OutStart, p.End)
			}
			if t.FetchEnd > c.Start {
				r.addf(InvTaskWindows, "stored task %s finishes fetching at %d after its consumer starts at %d",
					name, t.FetchEnd, c.Start)
			}
			if t.OutStart >= t.FetchEnd {
				r.addf(InvTaskWindows, "stored task %s has an empty live span [%d,%d)", name, t.OutStart, t.FetchEnd)
			}
			if t.Unit {
				// The fluid waits inside the dedicated unit, not in a channel:
				// it counts toward unit residency, not channel storage.
				r.UnitStored++
				unitEvents = append(unitEvents, cacheEvent{t.OutEnd, +1}, cacheEvent{t.FetchStart, -1})
				continue
			}
			events = append(events, cacheEvent{t.OutEnd, +1}, cacheEvent{t.FetchStart, -1})
		default:
			r.addf(InvTaskWindows, "task %s has unknown kind %d", name, t.Kind)
		}
	}

	// Peak storage demand, recomputed with an event sweep (fetches release
	// before stores claim at equal instants, as in the paper's accounting).
	peak := func(evs []cacheEvent) int {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].t != evs[j].t {
				return evs[i].t < evs[j].t
			}
			return evs[i].delta < evs[j].delta
		})
		cur, max := 0, 0
		for _, e := range evs {
			cur += e.delta
			if cur > max {
				max = cur
			}
		}
		return max
	}
	r.PeakStorage = peak(events)
	r.PeakUnit = peak(unitEvents)
}

// unitValves recomputes the mux-tree valve cost of a dedicated unit with the
// given cell count: two log₂-depth multiplexer trees at two valves per level
// plus the two port valves (re-implemented here, independent of
// internal/dedicated, per this package's philosophy).
func unitValves(cells int) int {
	if cells < 1 {
		return 0
	}
	if cells == 1 {
		return 2
	}
	levels := 0
	for n := 1; n < cells; n *= 2 {
		levels++
	}
	return 4*levels + 2
}

// checkArchitecture verifies that the routed architecture realizes exactly
// the schedule's transportation workload under the paper's exclusivity
// constraints, and recomputes the reported metrics.
func (r *Report) checkArchitecture(s *sched.Schedule, a *arch.Result) {
	grid := a.Grid
	if grid.Rows < 2 || grid.Cols < 2 {
		r.addf(InvMetrics, "degenerate %s grid", grid)
		return
	}

	// Device placement sanity: every device (and port) on a distinct node.
	wantPlaced := s.Devices + a.Ports
	if len(a.DevicePos) != wantPlaced {
		r.addf(InvRouteCover, "%d placed nodes for %d devices and %d ports", len(a.DevicePos), s.Devices, a.Ports)
		return
	}
	seenNode := make(map[arch.NodeID]int, len(a.DevicePos))
	for d, n := range a.DevicePos {
		if int(n) < 0 || int(n) >= grid.NumNodes() {
			r.addf(InvRouteCover, "device %d placed outside the %s grid (node %d)", d, grid, n)
			return
		}
		if prev, dup := seenNode[n]; dup {
			r.addf(InvRouteCover, "devices %d and %d share grid node %d", prev, d, n)
		}
		seenNode[n] = d
	}
	if a.StorageUnit >= 0 {
		if int(a.StorageUnit) >= grid.NumNodes() {
			r.addf(InvStorage, "storage unit placed outside the %s grid (node %d)", grid, a.StorageUnit)
			return
		}
		if d, dup := seenNode[a.StorageUnit]; dup {
			r.addf(InvStorage, "storage unit shares grid node %d with device %d", a.StorageUnit, d)
		}
	}

	// Route cover: the routes must realize the expected workload one-to-one,
	// in order, between the right device nodes.
	expected := arch.ExpectedTasks(s, a.Ports)
	if len(a.Routes) != len(expected) {
		r.addf(InvRouteCover, "%d routes for %d transportation tasks", len(a.Routes), len(expected))
		return
	}
	used := a.UsedEdgeSet()
	isDevice := make(map[arch.NodeID]bool, len(a.DevicePos)+1)
	for _, n := range a.DevicePos {
		isDevice[n] = true
	}
	if a.StorageUnit >= 0 {
		// The unit node is device-like: routes terminate at it and its
		// occupancy is governed by the unit's port windows, not switch claims.
		isDevice[a.StorageUnit] = true
	}

	// Claims gather every (resource, window, fluid) reservation for the
	// exclusivity sweep below.
	type claim struct {
		start, end int
		route      int
		caching    bool
	}
	edgeClaims := make(map[arch.EdgeID][]claim)
	nodeClaims := make(map[arch.NodeID][]claim)
	addEdgeClaim := func(e arch.EdgeID, c claim) {
		// Empty windows occupy nothing (a fetch leg has zero length when
		// u_c is 1, matching the router's own reservation rule).
		if c.start < c.end {
			edgeClaims[e] = append(edgeClaims[e], c)
		}
	}
	claimPath := func(route int, nodes []arch.NodeID, edges []arch.EdgeID, start, end int) {
		if start >= end {
			return
		}
		for _, e := range edges {
			edgeClaims[e] = append(edgeClaims[e], claim{start, end, route, false})
		}
		for _, n := range nodes {
			if !isDevice[n] {
				nodeClaims[n] = append(nodeClaims[n], claim{start, end, route, false})
			}
		}
	}
	checkPath := func(route int, what string, nodes []arch.NodeID, edges []arch.EdgeID) bool {
		if len(nodes) == 0 || len(nodes) != len(edges)+1 {
			r.addf(InvRoutePath, "route %d %s path has %d nodes for %d edges", route, what, len(nodes), len(edges))
			return false
		}
		for i, e := range edges {
			if grid.EdgeBetween(nodes[i], nodes[i+1]) != e {
				r.addf(InvRoutePath, "route %d %s path: edge %d does not join nodes %d and %d",
					route, what, e, nodes[i], nodes[i+1])
				return false
			}
			if !used[e] {
				r.addf(InvRoutePath, "route %d %s path uses segment %d that is not part of the chip", route, what, e)
				return false
			}
		}
		return true
	}

	for i, route := range a.Routes {
		t := route.Task
		if t != expected[i] {
			r.addf(InvRouteCover, "route %d realizes task %v, expected %v", i, t, expected[i])
			continue
		}
		src, dst := a.DevicePos[t.From], a.DevicePos[t.To]
		if t.Kind == sched.Direct {
			if route.StorageEdge != -1 {
				r.addf(InvRoutePath, "direct route %d carries storage segment %d", i, route.StorageEdge)
			}
			if len(route.FetchNodes) != 0 || len(route.FetchEdges) != 0 {
				r.addf(InvRoutePath, "direct route %d carries a fetch path", i)
			}
			if !checkPath(i, "transport", route.OutNodes, route.OutEdges) {
				continue
			}
			if route.OutNodes[0] != src || route.OutNodes[len(route.OutNodes)-1] != dst {
				r.addf(InvRouteCover, "route %d runs %d->%d, expected device nodes %d->%d",
					i, route.OutNodes[0], route.OutNodes[len(route.OutNodes)-1], src, dst)
			}
			claimPath(i, route.OutNodes, route.OutEdges, t.Depart, t.Arrive)
			continue
		}

		if t.Unit {
			// Unit-stored route: store leg into the unit node, residency off
			// the grid, fetch leg out of it. No storage segment may be claimed.
			if route.StorageEdge != -1 {
				r.addf(InvStorage, "unit route %d claims storage segment %d", i, route.StorageEdge)
			}
			if a.StorageUnit < 0 {
				r.addf(InvStorage, "route %d stores in the unit but the chip has no storage unit", i)
				continue
			}
			okOut := checkPath(i, "store", route.OutNodes, route.OutEdges)
			okFetch := checkPath(i, "fetch", route.FetchNodes, route.FetchEdges)
			if !okOut || !okFetch {
				continue
			}
			if route.OutNodes[0] != src {
				r.addf(InvRouteCover, "route %d stores from node %d, expected device node %d", i, route.OutNodes[0], src)
			}
			if end := route.OutNodes[len(route.OutNodes)-1]; end != a.StorageUnit {
				r.addf(InvStorage, "route %d store leg ends at node %d, not the storage unit %d", i, end, a.StorageUnit)
			}
			if route.FetchNodes[0] != a.StorageUnit {
				r.addf(InvStorage, "route %d fetch leg starts at node %d, not the storage unit %d",
					i, route.FetchNodes[0], a.StorageUnit)
			}
			if route.FetchNodes[len(route.FetchNodes)-1] != dst {
				r.addf(InvRouteCover, "route %d fetches to node %d, expected device node %d",
					i, route.FetchNodes[len(route.FetchNodes)-1], dst)
			}
			claimPath(i, route.OutNodes, route.OutEdges, t.OutStart, t.OutEnd)
			claimPath(i, route.FetchNodes, route.FetchEdges, t.FetchStart, t.FetchEnd)
			continue
		}

		// Stored route: move-out path, caching segment, fetch path.
		if route.StorageEdge < 0 || int(route.StorageEdge) >= grid.NumEdges() {
			r.addf(InvStorage, "stored route %d has no storage segment", i)
			continue
		}
		if !used[route.StorageEdge] {
			r.addf(InvStorage, "stored route %d caches on segment %d that is not part of the chip", i, route.StorageEdge)
		}
		okOut := checkPath(i, "move-out", route.OutNodes, route.OutEdges)
		okFetch := checkPath(i, "fetch", route.FetchNodes, route.FetchEdges)
		if !okOut || !okFetch {
			continue
		}
		if route.OutNodes[0] != src {
			r.addf(InvRouteCover, "route %d moves out from node %d, expected device node %d", i, route.OutNodes[0], src)
		}
		if route.FetchNodes[len(route.FetchNodes)-1] != dst {
			r.addf(InvRouteCover, "route %d fetches to node %d, expected device node %d",
				i, route.FetchNodes[len(route.FetchNodes)-1], dst)
		}
		u, v := grid.Endpoints(route.StorageEdge)
		if outEnd := route.OutNodes[len(route.OutNodes)-1]; outEnd != u && outEnd != v {
			r.addf(InvStorage, "route %d move-out ends at node %d, not an endpoint of storage segment %d",
				i, outEnd, route.StorageEdge)
		}
		if fetchStart := route.FetchNodes[0]; fetchStart != u && fetchStart != v {
			r.addf(InvStorage, "route %d fetch starts at node %d, not an endpoint of storage segment %d",
				i, fetchStart, route.StorageEdge)
		}
		claimPath(i, route.OutNodes, route.OutEdges, t.OutStart, t.OutEnd)
		claimPath(i, route.FetchNodes, route.FetchEdges, t.FetchStart, t.FetchEnd)
		// The storage segment is held for the whole live span: feeding,
		// caching, fetching. Its end switches stay usable by other paths
		// during the caching window (the paper's exception to constraint
		// (10)), which the claims model exactly by not claiming them.
		addEdgeClaim(route.StorageEdge, claim{t.OutStart, t.OutEnd, i, false})
		addEdgeClaim(route.StorageEdge, claim{t.OutEnd, t.FetchStart, i, true})
		addEdgeClaim(route.StorageEdge, claim{t.FetchStart, t.FetchEnd, i, false})
	}

	// Channel exclusivity: per resource, no two claims of distinct fluids may
	// overlap in time — a segment never simultaneously transports and caches
	// distinct fluids, and a switch never carries two fluids at once.
	sweep := func(kind string, id int, claims []claim) {
		sort.Slice(claims, func(x, y int) bool {
			if claims[x].start != claims[y].start {
				return claims[x].start < claims[y].start
			}
			return claims[x].route < claims[y].route
		})
		for x := 0; x < len(claims); x++ {
			for y := x + 1; y < len(claims); y++ {
				cx, cy := claims[x], claims[y]
				if cx.route == cy.route {
					continue
				}
				if cx.start < cy.end && cy.start < cx.end {
					rx, ry := "transport", "transport"
					if cx.caching {
						rx = "cache"
					}
					if cy.caching {
						ry = "cache"
					}
					r.addf(InvChannelExclusive,
						"%s %d carries fluids of routes %d (%s, [%d,%d)) and %d (%s, [%d,%d)) simultaneously",
						kind, id, cx.route, rx, cx.start, cx.end, cy.route, ry, cy.start, cy.end)
				}
			}
		}
	}
	edgeIDs := make([]int, 0, len(edgeClaims))
	for e := range edgeClaims {
		edgeIDs = append(edgeIDs, int(e))
	}
	sort.Ints(edgeIDs)
	for _, e := range edgeIDs {
		sweep("segment", e, edgeClaims[arch.EdgeID(e)])
	}
	nodeIDs := make([]int, 0, len(nodeClaims))
	for n := range nodeClaims {
		nodeIDs = append(nodeIDs, int(n))
	}
	sort.Ints(nodeIDs)
	for _, n := range nodeIDs {
		sweep("switch", n, nodeClaims[arch.NodeID(n)])
	}

	// Metrics: the built chip is exactly the union of segments the routes
	// touch, and the reported counts and ratios match recomputation.
	touched := make(map[arch.EdgeID]bool)
	for _, route := range a.Routes {
		for _, e := range route.Edges() {
			touched[e] = true
		}
	}
	if len(touched) != len(a.UsedEdges) {
		r.addf(InvMetrics, "chip keeps %d segments but routes touch %d", len(a.UsedEdges), len(touched))
	} else {
		for _, e := range a.UsedEdges {
			if !touched[e] {
				r.addf(InvMetrics, "chip keeps segment %d that no route touches", e)
			}
		}
	}
	r.NumEdges = len(touched)
	if a.NumEdges != r.NumEdges {
		r.addf(InvMetrics, "reported %d segments, recomputed %d", a.NumEdges, r.NumEdges)
	}

	// Valve count: one valve per used-segment endpoint terminating at a
	// switch or port; only endpoints inside true devices (and the storage
	// unit, whose internal valves are priced separately) carry no counted
	// valve (the paper's n_v accounting).
	trueDevice := make(map[arch.NodeID]bool, s.Devices+1)
	for _, n := range a.DevicePos[:len(a.DevicePos)-a.Ports] {
		trueDevice[n] = true
	}
	if a.StorageUnit >= 0 {
		trueDevice[a.StorageUnit] = true
	}
	countValves := func(edges []arch.EdgeID) int {
		n := 0
		for _, e := range edges {
			u, v := grid.Endpoints(e)
			if !trueDevice[u] {
				n++
			}
			if !trueDevice[v] {
				n++
			}
		}
		return n
	}
	r.NumValves = countValves(a.UsedEdges)
	if a.NumValves != r.NumValves {
		r.addf(InvMetrics, "reported %d valves, recomputed %d", a.NumValves, r.NumValves)
	}
	all := make([]arch.EdgeID, grid.NumEdges())
	for i := range all {
		all[i] = arch.EdgeID(i)
	}
	if want := ratio(r.NumEdges, grid.NumEdges()); !closeEnough(a.EdgeRatio, want) {
		r.addf(InvMetrics, "reported edge ratio %.4f, recomputed %.4f", a.EdgeRatio, want)
	}
	if totalValves := countValves(all); totalValves > 0 {
		if want := ratio(r.NumValves, totalValves); !closeEnough(a.ValveRatio, want) {
			r.addf(InvMetrics, "reported valve ratio %.4f, recomputed %.4f", a.ValveRatio, want)
		}
	}

	// Unit metrics: the reported cell count must match the recomputed peak
	// residency, and the unit's valve cost must follow the mux-tree formula.
	if r.UnitStored > 0 && a.StorageUnit < 0 {
		r.addf(InvStorage, "%d unit-stored tasks but no storage unit placed", r.UnitStored)
	}
	if a.StorageUnit >= 0 {
		if a.UnitCells != r.PeakUnit {
			r.addf(InvMetrics, "reported %d unit cells, recomputed %d", a.UnitCells, r.PeakUnit)
		}
		if want := unitValves(r.PeakUnit); a.UnitValves != want {
			r.addf(InvMetrics, "reported %d unit valves, recomputed %d", a.UnitValves, want)
		}
	}
}

func ratio(a, b int) float64 { return float64(a) / float64(b) }

func closeEnough(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
