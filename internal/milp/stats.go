package milp

import "time"

// PresolveStats summarizes what the root presolve pass removed from a model
// before the simplex ever saw it.
type PresolveStats struct {
	// FixedCols counts variables eliminated because presolve proved them
	// fixed (bounds collapsed, singleton equalities, propagation).
	FixedCols int
	// RemovedRows counts constraints dropped as redundant, constant, or
	// absorbed into variable bounds (singleton rows).
	RemovedRows int
	// TightenedBounds counts individual variable-bound improvements derived
	// by activity-based bound propagation.
	TightenedBounds int
}

// FactorStats reports basis-factorization kernel diagnostics, aggregated
// across every simplex state a solve used (one per branch-and-bound worker).
type FactorStats struct {
	// Kernel names the basis kernel: "dense" (explicit inverse with eta
	// updates) or "sparse-lu" (Markowitz LU with Forrest–Tomlin updates).
	Kernel string
	// Refactorizations counts from-scratch basis factorizations.
	Refactorizations int
	// Updates counts successful basis-change updates (eta or
	// Forrest–Tomlin).
	Updates int
	// UpdatesRejected counts updates the kernel refused for stability; each
	// forces a refactorization.
	UpdatesRejected int
	// FillRatio is the peak (L+U nonzeros)/(basis nonzeros) the sparse
	// kernel observed; 0 for the dense kernel, whose inverse is always full.
	FillRatio float64
}

// merge folds another kernel's counters into s (counters add, fill peaks).
func (s *FactorStats) merge(o FactorStats) {
	if s.Kernel == "" {
		s.Kernel = o.Kernel
	}
	s.Refactorizations += o.Refactorizations
	s.Updates += o.Updates
	s.UpdatesRejected += o.UpdatesRejected
	if o.FillRatio > s.FillRatio {
		s.FillRatio = o.FillRatio
	}
}

// SolveStats carries the solver diagnostics of one Solve/SolveLP call. It is
// threaded through the scheduling and architecture ILP layers up to the
// pipeline result so reports and CLIs can show how the solve went.
type SolveStats struct {
	// Nodes is the number of branch-and-bound nodes explored (MILP only).
	Nodes int
	// SimplexIters counts simplex pivots across all LP solves.
	SimplexIters int
	// WarmStarts counts node relaxations solved by warm-starting the parent
	// basis with a dual-simplex cleanup (including in-place dives).
	WarmStarts int
	// ColdStarts counts node relaxations that needed a from-scratch solve:
	// the root, and any node whose warm start failed numerically.
	ColdStarts int
	// Presolve reports the root presolve reductions.
	Presolve PresolveStats
	// Workers is the number of branch-and-bound workers used.
	Workers int
	// Gap is the relative MIP gap at termination:
	// |incumbent - bound| / max(1, |incumbent|). It is 0 for a proven
	// optimum and -1 when no bound information survived (e.g. no feasible
	// point, or the search aborted before any relaxation finished).
	Gap float64
	// Factor reports the basis-factorization kernel diagnostics: which
	// kernel ran, how often it refactorized, and how many eta /
	// Forrest–Tomlin updates it absorbed (and rejected) between refreshes.
	Factor FactorStats
	// PropagationTightenings counts integer-bound tightenings derived by
	// node-level bound propagation — the presolve reductions re-run after
	// each branch instead of at the root only.
	PropagationTightenings int
	// PropagationPrunes counts nodes proven integer-infeasible by
	// propagation alone, pruned before their LP relaxation was ever solved.
	PropagationPrunes int
	// Cuts reports the root cutting-plane loop: Gomory mixed-integer,
	// (lifted) cover, and conflict-clique cuts separated, rows finally
	// applied, and cuts retired by activity-based aging.
	Cuts CutStats
	// SeparationWall is the wall-clock time spent inside the root
	// separation block (all cut families, summed over rounds; when families
	// separate in parallel this is the per-round maximum, not the sum).
	SeparationWall time.Duration
	// PseudoCostInits counts reliability-initialization probes (truncated
	// strong branches) run to seed the pseudo-cost tables.
	PseudoCostInits int
	// HeuristicIncumbents counts improving incumbents installed by the node
	// heuristics (RINS and feasibility diving) rather than by the tree
	// search itself.
	HeuristicIncumbents int
	// LocalBranchingIncumbents counts improving incumbents found by the
	// local-branching sub-MIP (a Hamming-ball neighbourhood of the current
	// incumbent searched on a scratch simplex state).
	LocalBranchingIncumbents int
	// IncrementalPivots counts simplex pivots that priced incrementally
	// maintained reduced costs and basic values (O(nnz) per pivot);
	// FullPricingPivots counts the pivots that paid a from-scratch refresh
	// (loop entries, refactorizations, Bland fallbacks).
	IncrementalPivots int
	// FullPricingPivots counts pivots priced from a full recompute.
	FullPricingPivots int
	// ReducedCostFixings counts variable bounds tightened by reduced-cost
	// fixing against the incumbent cutoff at branch-and-bound nodes.
	ReducedCostFixings int
}

// WarmStartRate is the fraction of node relaxations served by a warm start,
// in [0, 1]. It returns 0 when no node LP was solved.
func (s SolveStats) WarmStartRate() float64 {
	tot := s.WarmStarts + s.ColdStarts
	if tot == 0 {
		return 0
	}
	return float64(s.WarmStarts) / float64(tot)
}
