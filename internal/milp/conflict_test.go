package milp

import (
	"context"
	"testing"
)

// hasEdge reports whether the conflict graph joins the two literal codes.
func (cg *conflictGraph) hasEdge(a, b int32) bool {
	ia, ok := cg.litID[a]
	if !ok {
		return false
	}
	ib, ok := cg.litID[b]
	if !ok {
		return false
	}
	return cg.adj[ia][ib>>6]&(1<<(uint(ib)&63)) != 0
}

// TestConflictGraphRowMined pins the row-mining rules on hand-built rows:
// a packing row conflicts its positive literals, an implication row
// complements the negative coefficient, an equality contributes both views,
// and a slack row (no pair exceeding the capacity) yields nothing.
func TestConflictGraphRowMined(t *testing.T) {
	m := NewModel()
	x := m.NewBinary("x")
	y := m.NewBinary("y")
	z := m.NewBinary("z")
	w := m.NewBinary("w")
	// pack: x + y <= 1 -> edge (x, y).
	m.AddLE("pack", *NewExpr(0).Add(x, 1).Add(y, 1), 1)
	// imp: x <= z, i.e. x - z <= 0 -> complement z -> edge (x, !z).
	m.AddLE("imp", *NewExpr(0).Add(x, 1).Add(z, -1), 0)
	// eq: y + z = 1 -> <= view gives (y, z); the negated >= view gives
	// (!y, !z).
	m.AddEQ("eq", *NewExpr(0).Add(y, 1).Add(z, 1), 1)
	// slack: no pair exceeds the capacity -> no edges.
	m.AddLE("slack", *NewExpr(0).Add(x, 1).Add(y, 1).Add(w, 1), 2)
	m.SetObjective(*NewExpr(0).Add(x, -1).Add(y, -1).Add(z, -1).Add(w, -1), Minimize)

	in, st := compile(m, true)
	if st != StatusUnknown {
		t.Fatalf("compile decided the model outright: %v", st)
	}
	cg := buildConflictGraph(in, nil)
	if cg == nil {
		t.Fatal("no conflict graph despite packing rows")
	}
	col := func(v Var) int32 { return int32(in.varCol[v.ID()]) }
	want := [][2]int32{
		{litCode(col(x), false), litCode(col(y), false)},
		{litCode(col(x), false), litCode(col(z), true)},
		{litCode(col(y), false), litCode(col(z), false)},
		{litCode(col(y), true), litCode(col(z), true)},
	}
	for _, e := range want {
		if !cg.hasEdge(e[0], e[1]) || !cg.hasEdge(e[1], e[0]) {
			t.Errorf("missing conflict edge between literal codes %d and %d", e[0], e[1])
		}
	}
	for _, e := range [][2]int32{
		{litCode(col(x), false), litCode(col(w), false)}, // slack row pair
		{litCode(col(y), false), litCode(col(w), false)},
		{litCode(col(x), false), litCode(col(z), false)}, // imp's positive pair
	} {
		if cg.hasEdge(e[0], e[1]) {
			t.Errorf("spurious conflict edge between literal codes %d and %d", e[0], e[1])
		}
	}
}

// TestConflictGraphCallerPairs pins the caller-declared conflict path: binary
// pairs (with negation flags) become edges, pairs touching a non-binary or
// degenerate column are dropped silently.
func TestConflictGraphCallerPairs(t *testing.T) {
	m := NewModel()
	a := m.NewBinary("a")
	b := m.NewBinary("b")
	c := m.NewContinuous("c", 0, 5)
	m.AddLE("cap", *NewExpr(0).Add(a, 1).Add(b, 1).Add(c, 1), 10)
	m.SetObjective(*NewExpr(0).Add(a, -1).Add(b, -1).Add(c, -1), Minimize)

	in, st := compile(m, true)
	if st != StatusUnknown {
		t.Fatalf("compile decided the model outright: %v", st)
	}
	cg := buildConflictGraph(in, [][2]ConflictLiteral{
		{{V: a}, {V: b, Neg: true}}, // kept
		{{V: a}, {V: c}},            // dropped: c is continuous
		{{V: a}, {V: a}},            // dropped: degenerate
	})
	if cg == nil {
		t.Fatal("no conflict graph despite a declared binary conflict")
	}
	if len(cg.lits) != 2 {
		t.Fatalf("graph interned %d literals, want 2", len(cg.lits))
	}
	ca := int32(in.varCol[a.ID()])
	cb := int32(in.varCol[b.ID()])
	if !cg.hasEdge(litCode(ca, false), litCode(cb, true)) {
		t.Error("declared conflict (a, !b) missing")
	}
	if cg.hasEdge(litCode(ca, false), litCode(cb, false)) {
		t.Error("spurious edge on the positive b literal")
	}
}

// TestConflictGraphNilWhenEdgeFree pins the no-edge fast path: a model whose
// rows admit every literal pair yields a nil graph so clique separation is
// skipped outright.
func TestConflictGraphNilWhenEdgeFree(t *testing.T) {
	m := NewModel()
	a := m.NewBinary("a")
	b := m.NewBinary("b")
	m.AddLE("cap", *NewExpr(0).Add(a, 1).Add(b, 1), 2)
	m.SetObjective(*NewExpr(0).Add(a, -1).Add(b, -1), Minimize)
	in, st := compile(m, true)
	if st != StatusUnknown {
		t.Fatalf("compile decided the model outright: %v", st)
	}
	if cg := buildConflictGraph(in, nil); cg != nil {
		t.Fatalf("graph with %d literals on an edge-free model, want nil", len(cg.lits))
	}
}

// TestCliqueCutsValidOnAllIntegerPoints mirrors
// TestRootCutsValidOnAllIntegerPoints for the clique family: a triangle of
// pairwise packing rows leaves the LP optimum at x0=x1=x2=1/2, which only the
// clique inequality x0+x1+x2 <= 1 cuts. Every cut row of the extended
// instance must survive every integer-feasible assignment.
func TestCliqueCutsValidOnAllIntegerPoints(t *testing.T) {
	m := NewModel()
	vars := make([]Var, 4)
	for i := range vars {
		vars[i] = m.NewBinary("x")
	}
	m.AddLE("p01", *NewExpr(0).Add(vars[0], 1).Add(vars[1], 1), 1)
	m.AddLE("p02", *NewExpr(0).Add(vars[0], 1).Add(vars[2], 1), 1)
	m.AddLE("p12", *NewExpr(0).Add(vars[1], 1).Add(vars[2], 1), 1)
	m.AddLE("k", *NewExpr(0).Add(vars[0], 2).Add(vars[3], 3), 4)
	obj := NewExpr(0)
	for _, v := range vars {
		obj.Add(v, -1)
	}
	m.SetObjective(*obj, Minimize)

	base, decided := compile(m, true)
	if decided != StatusUnknown {
		t.Fatalf("compile decided the model outright: %v", decided)
	}
	res := rootCutLoop(context.Background(), base, 1e-6, nil, 1)
	if res.status != StatusOptimal {
		t.Fatalf("root cut loop status = %v", res.status)
	}
	if res.stats.Clique == 0 {
		t.Fatal("no clique cut separated from the packing triangle")
	}
	if res.stats.Applied != res.in.m-base.m {
		t.Fatalf("Applied = %d but instance carries %d cut rows",
			res.stats.Applied, res.in.m-base.m)
	}

	in := res.in
	point := make([]float64, m.NumVars())
	for bits := 0; bits < 1<<4; bits++ {
		for i := range vars {
			point[vars[i].ID()] = float64(bits >> i & 1)
		}
		if ok, _ := checkFeasible(m, point, 1e-6); !ok {
			continue
		}
		for r := base.m; r < in.m; r++ {
			lhs := 0.0
			for p := in.rowPtr[r]; p < in.rowPtr[r+1]; p++ {
				j := int(in.rowCol[p])
				if j >= in.nStruct {
					t.Fatalf("cut row %d touches non-structural column %d", r, j)
				}
				lhs += in.rowVal[p] * point[in.colVar[j]]
			}
			if lhs > in.b[r]+1e-6 {
				t.Errorf("cut row %d cuts off integer-feasible point %04b: %g > %g",
					r, bits, lhs, in.b[r])
			}
		}
	}
}

// TestLiftedCoverValidOnAllIntegerPoints mirrors the same property for the
// lifted-cover family: on 3a+3b+3c+4d <= 8 the LP optimum (1, 1, 2/3, 0)
// yields the cover {a,b,c} and d lifts with gamma=1 (mu_1 = 3 <= 4 < 6 =
// mu_2), so a+b+c+d <= 2 must hold at every feasible assignment — d=1 leaves
// capacity for at most one cover member.
func TestLiftedCoverValidOnAllIntegerPoints(t *testing.T) {
	m := NewModel()
	vars := make([]Var, 4)
	for i := range vars {
		vars[i] = m.NewBinary("x")
	}
	m.AddLE("knap", *NewExpr(0).
		Add(vars[0], 3).Add(vars[1], 3).Add(vars[2], 3).Add(vars[3], 4), 8)
	obj := NewExpr(0)
	for i, c := range []float64{-3, -3, -2, -1} {
		obj.Add(vars[i], c)
	}
	m.SetObjective(*obj, Minimize)

	base, decided := compile(m, true)
	if decided != StatusUnknown {
		t.Fatalf("compile decided the model outright: %v", decided)
	}
	res := rootCutLoop(context.Background(), base, 1e-6, nil, 1)
	if res.status != StatusOptimal {
		t.Fatalf("root cut loop status = %v", res.status)
	}
	if res.stats.LiftedCover == 0 {
		t.Fatal("no lifted cover separated; the property test checked nothing")
	}

	in := res.in
	point := make([]float64, m.NumVars())
	for bits := 0; bits < 1<<4; bits++ {
		for i := range vars {
			point[vars[i].ID()] = float64(bits >> i & 1)
		}
		if ok, _ := checkFeasible(m, point, 1e-6); !ok {
			continue
		}
		for r := base.m; r < in.m; r++ {
			lhs := 0.0
			for p := in.rowPtr[r]; p < in.rowPtr[r+1]; p++ {
				j := int(in.rowCol[p])
				if j >= in.nStruct {
					t.Fatalf("cut row %d touches non-structural column %d", r, j)
				}
				lhs += in.rowVal[p] * point[in.colVar[j]]
			}
			if lhs > in.b[r]+1e-6 {
				t.Errorf("cut row %d cuts off integer-feasible point %04b: %g > %g",
					r, bits, lhs, in.b[r])
			}
		}
	}
}
