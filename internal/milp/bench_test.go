package milp

import (
	"fmt"
	"math/rand"
	"testing"
)

// schedLikeLP builds a disjunctive big-M scheduling model shaped like the
// paper's formulation (the dense-era stress profile): n jobs on k machines,
// start-time continuous variables, machine-difference and ordering binaries.
// relaxed=true drops integrality so the model benches the pure LP path.
func schedLikeLP(n, k int, relaxed bool) *Model {
	const horizon = 1000
	const bigM = 1100
	m := NewModel()
	r := rand.New(rand.NewSource(11))
	dur := make([]float64, n)
	ts := make([]Var, n)
	te := make([]Var, n)
	asg := make([][]Var, n)
	typ := Binary
	if relaxed {
		typ = Continuous
	}
	for i := 0; i < n; i++ {
		dur[i] = float64(10 + r.Intn(50))
		ts[i] = m.NewContinuous(fmt.Sprintf("ts%d", i), 0, horizon)
		te[i] = m.NewContinuous(fmt.Sprintf("te%d", i), 0, horizon)
		m.AddEQ(fmt.Sprintf("dur%d", i), *NewExpr(0).Add(te[i], 1).Add(ts[i], -1), dur[i])
		asg[i] = make([]Var, k)
		row := NewExpr(0)
		for d := 0; d < k; d++ {
			asg[i][d] = m.NewVar(fmt.Sprintf("a%d_%d", i, d), 0, 1, typ)
			row.Add(asg[i][d], 1)
		}
		m.AddEQ(fmt.Sprintf("uniq%d", i), *row, 1)
	}
	mk := m.NewContinuous("mk", 0, horizon)
	obj := NewExpr(0).Add(mk, 1)
	for i := 0; i < n; i++ {
		m.AddLE(fmt.Sprintf("mk%d", i), *NewExpr(0).Add(te[i], 1).Add(mk, -1), 0)
		for j := i + 1; j < n; j++ {
			y := m.NewVar(fmt.Sprintf("y%d_%d", i, j), 0, 1, typ)
			m.AddLE(fmt.Sprintf("o1_%d_%d", i, j),
				*NewExpr(0).Add(te[i], 1).Add(ts[j], -1).Add(y, bigM), bigM)
			m.AddLE(fmt.Sprintf("o2_%d_%d", i, j),
				*NewExpr(0).Add(te[j], 1).Add(ts[i], -1).Add(y, -bigM), 0)
		}
	}
	m.SetObjective(*obj, Minimize)
	return m
}

// BenchmarkSimplexSchedLP measures one cold LP solve of the scheduling-shaped
// relaxation at the sizes the dense-era solver was benchmarked on.
func BenchmarkSimplexSchedLP(b *testing.B) {
	for _, size := range []struct{ n, k int }{{6, 2}, {10, 3}, {14, 4}} {
		b.Run(fmt.Sprintf("n%d_k%d", size.n, size.k), func(b *testing.B) {
			m := schedLikeLP(size.n, size.k, true)
			var iters int
			for i := 0; i < b.N; i++ {
				sol, err := SolveLP(m)
				if err != nil || sol.Status != StatusOptimal {
					b.Fatalf("status %v err %v", sol.Status, err)
				}
				iters = sol.Iterations
			}
			b.ReportMetric(float64(iters), "pivots")
		})
	}
}

// BenchmarkWarmVsColdResolve measures the dual-simplex warm start against a
// from-scratch solve after a single bound change — the branch-and-bound
// child-node pattern.
func BenchmarkWarmVsColdResolve(b *testing.B) {
	m := schedLikeLP(10, 3, true)
	in, st := compile(m, false)
	if st == StatusInfeasible {
		b.Fatal("fixture infeasible")
	}
	base := newState(in)
	if st := base.solveCold(); st != StatusOptimal {
		b.Fatalf("cold solve: %v", st)
	}
	// The bound change to replay: halve the first structural column's range.
	col := 0
	newHi := (in.lo[col] + in.hi[col]) / 2

	b.Run("warm", func(b *testing.B) {
		s := newState(in)
		if st := s.solveCold(); st != StatusOptimal {
			b.Fatalf("cold solve: %v", st)
		}
		basic := append([]int32(nil), s.basic...)
		stat := append([]int8(nil), s.stat...)
		var pivots int
		for i := 0; i < b.N; i++ {
			copy(s.basic, basic)
			copy(s.stat, stat)
			for j := range s.pos {
				s.pos[j] = -1
			}
			for r, c := range s.basic {
				s.pos[c] = int32(r)
			}
			s.resetBounds()
			s.hi[col] = newHi
			s.iters = 0
			if st := s.solveWarm(); st != StatusOptimal && st != StatusInfeasible {
				b.Fatalf("warm: %v", st)
			}
			pivots = s.iters
		}
		b.ReportMetric(float64(pivots), "pivots")
	})
	b.Run("cold", func(b *testing.B) {
		s := newState(in)
		var pivots int
		for i := 0; i < b.N; i++ {
			s.resetBounds()
			s.hi[col] = newHi
			s.iters = 0
			if st := s.solveCold(); st != StatusOptimal && st != StatusInfeasible {
				b.Fatalf("cold: %v", st)
			}
			pivots = s.iters
		}
		b.ReportMetric(float64(pivots), "pivots")
	})
}

// BenchmarkBranchBoundNodeThroughput measures branch-and-bound node
// throughput (nodes explored per second) on a proof-resistant knapsack with a
// fixed node budget.
func BenchmarkBranchBoundNodeThroughput(b *testing.B) {
	const budget = 2000
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				m, inc := hardKnapsack(32)
				sol, err := Solve(m, SolveOptions{MaxNodes: budget, Incumbent: inc, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				nodes = sol.Nodes
			}
			b.ReportMetric(float64(nodes), "nodes_per_op")
			b.ReportMetric(float64(nodes)*float64(b.N)/b.Elapsed().Seconds(), "nodes/s")
		})
	}
}

// BenchmarkKernelIVDScale measures one cold LP solve of the
// scheduling-shaped relaxation at IVD scale (~1000 rows — the size the
// ROADMAP named as the dense kernel's binding cost) under each
// basis-factorization kernel. The sparse-LU rows are the ones the default
// crossover actually serves at this size.
func BenchmarkKernelIVDScale(b *testing.B) {
	for _, size := range []struct{ n, k int }{{20, 4}, {30, 5}} {
		m := schedLikeLP(size.n, size.k, true)
		in, st := compile(m, false)
		if st == StatusInfeasible {
			b.Fatal("fixture infeasible")
		}
		for _, kernel := range []struct {
			name string
			kk   kernelKind
		}{{"dense", kernelDense}, {"sparse-lu", kernelSparseLU}} {
			b.Run(fmt.Sprintf("rows=%d/%s", in.m, kernel.name), func(b *testing.B) {
				var pivots int
				for i := 0; i < b.N; i++ {
					s := newStateKernel(in, kernel.kk)
					if st := s.solveCold(); st != StatusOptimal {
						b.Fatalf("cold solve: %v", st)
					}
					pivots = s.iters
				}
				b.ReportMetric(float64(pivots), "pivots")
			})
		}
	}
}

// BenchmarkMILPSchedModel solves the full mixed-integer scheduling-shaped
// model end to end, the closest in-package proxy for the paper's PCR solve.
func BenchmarkMILPSchedModel(b *testing.B) {
	m := schedLikeLP(6, 2, false)
	var stats SolveStats
	for i := 0; i < b.N; i++ {
		sol, err := Solve(m, SolveOptions{})
		if err != nil || sol.Status != StatusOptimal {
			b.Fatalf("status %v err %v", sol.Status, err)
		}
		stats = sol.Stats
	}
	b.ReportMetric(float64(stats.Nodes), "nodes")
	b.ReportMetric(float64(stats.SimplexIters), "pivots")
	b.ReportMetric(stats.WarmStartRate(), "warm_rate")
}
