package milp

import (
	"strconv"
	"strings"
	"testing"
)

func TestWriteLP(t *testing.T) {
	m := NewModel()
	x := m.NewContinuous("x", 0, 4)
	y := m.NewBinary("pick y")
	z := m.NewInteger("z", -2, 9)
	m.AddLE("limit", *NewExpr(0).Add(x, 1).Add(y, 2), 6)
	m.AddGE("floor", *NewExpr(1).Add(z, 3), 2)
	m.SetObjective(*NewExpr(0).Add(x, 3).Add(y, 5).Add(z, -1), Maximize)

	var b strings.Builder
	if err := WriteLP(&b, m); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Maximize",
		"Subject To",
		"limit: 1 x + 2 pick_y <= 6",
		"floor: 3 z >= 1", // rhs folded: 2 - offset 1
		"Bounds",
		"0 <= x <= 4",
		"-2 <= z <= 9",
		"Binary",
		"pick_y",
		"General",
		"z",
		"End",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("LP output missing %q\n---\n%s", want, out)
		}
	}
}

func TestSanitizeLPName(t *testing.T) {
	cases := map[string]string{
		"abc":     "abc",
		"a b":     "a_b",
		"9lives":  "_9lives",
		"":        "_",
		"s(1,2)":  "s(1_2)",
		"tE":      "tE",
		"u[3->4]": "u_3__4_",
		"x.y_z":   "x.y_z",
	}
	for in, want := range cases {
		if got := sanitizeLPName(in); got != want {
			t.Errorf("sanitizeLPName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExprString(t *testing.T) {
	m := NewModel()
	a := m.NewContinuous("a", 0, 1)
	b := m.NewContinuous("b", 0, 1)
	e := NewExpr(5)
	e.Add(b, -2).Add(a, 3)
	got := e.String()
	if got != "3*x0 - 2*x1 + 5" {
		t.Errorf("String() = %q, want %q", got, "3*x0 - 2*x1 + 5")
	}
	var zero Expr
	if zero.String() != "0" {
		t.Errorf("zero expr String() = %q, want 0", zero.String())
	}
}

func TestExprAccumulate(t *testing.T) {
	m := NewModel()
	v := m.NewContinuous("v", 0, 1)
	e := NewExpr(0)
	for i := 0; i < 20; i++ { // crosses the small-expression threshold
		e.Add(v, 1)
	}
	if e.Coef(v) != 20 {
		t.Errorf("accumulated coef = %v, want 20", e.Coef(v))
	}
	if len(e.Terms()) != 1 {
		t.Errorf("terms = %d, want 1 (coalesced)", len(e.Terms()))
	}
}

func TestExprAddExprScaleEval(t *testing.T) {
	m := NewModel()
	a := m.NewContinuous("a", 0, 10)
	b := m.NewContinuous("b", 0, 10)
	e1 := *NewExpr(1).Add(a, 2)
	e2 := *NewExpr(2).Add(a, 1).Add(b, 4)
	e1.AddExpr(e2)
	e1.Scale(2)
	// e1 = 2*(3a + 4b + 3) = 6a + 8b + 6
	x := []float64{2, 1}
	if got := e1.Eval(x); got != 6*2+8*1+6 {
		t.Errorf("Eval = %v, want 26", got)
	}
	if e1.IsZero() {
		t.Error("IsZero on non-zero expr")
	}
	var z Expr
	if !z.IsZero() {
		t.Error("zero value expr should be zero")
	}
}

func TestModelStats(t *testing.T) {
	m := NewModel()
	m.NewBinary("b")
	m.NewInteger("i", 0, 5)
	m.NewContinuous("c", 0, 1)
	m.AddLE("", NewExpr(0).Clone(), 1)
	s := m.Stats()
	if s.Vars != 3 || s.Binaries != 1 || s.Integers != 1 || s.Continuous != 1 || s.Constraints != 1 {
		t.Errorf("unexpected stats: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestSumPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sum should panic on slice length mismatch")
		}
	}()
	m := NewModel()
	v := m.NewContinuous("v", 0, 1)
	Sum([]Var{v}, []float64{1, 2})
}

// TestWriteLPRoundTripPrecision pins the 'g'/17 round-trip coefficient
// formatting: an exported model must carry enough digits that parsing the
// text back yields bit-identical float64 values, so external solvers
// reproduce this solver's arithmetic exactly.
func TestWriteLPRoundTripPrecision(t *testing.T) {
	m := NewModel()
	x := m.NewContinuous("x", 0.1, 1.0/3)
	m.AddLE("c", *NewExpr(0).Add(x, 0.1), 123456.789000001)
	m.SetObjective(*NewExpr(0).Add(x, 1.0/3), Minimize)

	var b strings.Builder
	if err := WriteLP(&b, m); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"0.10000000000000001", // 0.1 exactly as stored
		"0.33333333333333331", // 1/3 exactly as stored
		"123456.78900000099",  // RHS with sub-%g digits preserved
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing round-trip literal %q in:\n%s", want, out)
		}
	}
	// Each emitted literal must parse back to the exact stored value.
	for lit, val := range map[string]float64{
		"0.10000000000000001": 0.1,
		"0.33333333333333331": 1.0 / 3,
		"123456.78900000099":  123456.789000001,
	} {
		got, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			t.Fatal(err)
		}
		if got != val {
			t.Errorf("literal %s parses to %v, want %v", lit, got, val)
		}
	}
}
