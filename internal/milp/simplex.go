package milp

import (
	"context"
	"fmt"
	"math"
)

// Status reports the outcome of a solve.
type Status int

const (
	// StatusUnknown means the solver has not produced a verdict.
	StatusUnknown Status = iota
	// StatusOptimal means an optimal solution was found (for MILP: proven).
	StatusOptimal
	// StatusInfeasible means the problem has no feasible point.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded in the optimization
	// direction.
	StatusUnbounded
	// StatusIterLimit means the simplex hit its iteration cap.
	StatusIterLimit
	// StatusTimeLimit means branch and bound hit its wall-clock limit; the
	// reported solution, if any, is the best incumbent (best-effort), as with
	// the paper's 30-minute Gurobi cap.
	StatusTimeLimit
	// StatusFeasible means a feasible (not necessarily optimal) solution is
	// available.
	StatusFeasible
	// StatusInterrupted means the caller's context was cancelled mid-solve;
	// the reported solution, if any, is the best incumbent found so far.
	StatusInterrupted

	// statusNumFail is the internal verdict for a numerical breakdown
	// (singular basis, vanishing pivot). Warm starts fall back to a cold
	// solve on it; a cold solve maps it to an error or an incomplete node.
	statusNumFail Status = -1
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	case StatusTimeLimit:
		return "time-limit"
	case StatusFeasible:
		return "feasible"
	case StatusInterrupted:
		return "interrupted"
	default:
		return "unknown"
	}
}

// Solution is the result of an LP or MILP solve.
type Solution struct {
	// Status is the solver verdict.
	Status Status
	// X holds one value per model variable, indexed by Var.ID. Nil unless a
	// feasible point was found.
	X []float64
	// Objective is the objective value at X in the model's original sense.
	Objective float64
	// Bound is the best proven bound on the objective (MILP only); equals
	// Objective when Status is StatusOptimal with a full proof (it can
	// trail by up to the requested SolveOptions.Gap when early gap stopping
	// pruned subtrees), and is NaN when the search stopped before any
	// subproblem bound survived.
	Bound float64
	// Nodes is the number of branch-and-bound nodes explored (MILP only);
	// mirrors Stats.Nodes.
	Nodes int
	// Iterations counts simplex pivots across all LP solves; mirrors
	// Stats.SimplexIters.
	Iterations int
	// Stats carries the full solver diagnostics (warm-start rate, presolve
	// reductions, MIP gap, worker count).
	Stats SolveStats
}

// Value returns the solution value of v.
func (s *Solution) Value(v Var) float64 {
	if s == nil || s.X == nil {
		return math.NaN()
	}
	return s.X[v.id]
}

// Feasible reports whether the solution carries a usable assignment.
func (s *Solution) Feasible() bool {
	return s != nil && s.X != nil &&
		(s.Status == StatusOptimal || s.Status == StatusFeasible ||
			s.Status == StatusTimeLimit || s.Status == StatusIterLimit ||
			s.Status == StatusInterrupted)
}

// Simplex tolerances.
const (
	pivotEps   = 1e-9
	feasEps    = 1e-7
	redCostEps = 1e-9
	// refactorEvery bounds the number of product-form (eta) updates applied
	// to the basis inverse before a fresh factorization, for numerical
	// hygiene.
	refactorEvery = 64
)

// Nonbasic / basic status of a column.
const (
	nbBasic int8 = iota
	nbLower      // nonbasic at its (finite) lower bound
	nbUpper      // nonbasic at its (finite) upper bound
	nbFree       // nonbasic free variable, parked at zero
)

// simplexState is one worker's in-place solver over an instance: working
// bounds (mutated by branch and bound), the current basis with a dense basis
// inverse maintained by eta updates and periodic refactorization, and scratch
// vectors. It implements a bounded-variable primal simplex (two-phase, no
// artificial columns) and a bounded-variable dual simplex used for warm
// starts after bound changes.
type simplexState struct {
	in     *instance
	lo, hi []float64 // working bounds, length n
	basic  []int32   // length m: column in basis row i
	pos    []int32   // length n: basis row of column, -1 when nonbasic
	stat   []int8    // length n

	binv      []float64 // m×m row-major basis inverse
	xB        []float64 // basic variable values
	y, d      []float64 // duals / reduced costs scratch
	w         []float64 // FTRAN result
	rowBuf    []float64
	cbBuf     []float64
	factorBuf []float64

	iters       int
	sinceFactor int
	ctx         context.Context
}

func newState(in *instance) *simplexState {
	s := &simplexState{
		in:        in,
		lo:        append([]float64(nil), in.lo...),
		hi:        append([]float64(nil), in.hi...),
		basic:     make([]int32, in.m),
		pos:       make([]int32, in.n),
		stat:      make([]int8, in.n),
		binv:      make([]float64, in.m*in.m),
		xB:        make([]float64, in.m),
		y:         make([]float64, in.m),
		d:         make([]float64, in.n),
		w:         make([]float64, in.m),
		rowBuf:    make([]float64, in.m),
		cbBuf:     make([]float64, in.m),
		factorBuf: make([]float64, in.m*in.m),
	}
	return s
}

// resetBounds restores the root bounds of the instance.
func (s *simplexState) resetBounds() {
	copy(s.lo, s.in.lo)
	copy(s.hi, s.in.hi)
}

// callLimit is the per-call pivot budget.
func (s *simplexState) callLimit() int {
	return 300*(s.in.m+s.in.n) + 1000
}

// aborted reports whether the solve context has fired. It is checked every
// pivot: a context Err read costs nanoseconds against the O(m²) pivot, and
// on large models a single pivot can take milliseconds, so coarser checks
// would make cancellation sluggish.
func (s *simplexState) aborted() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// nbValue is the current value of a nonbasic column.
func (s *simplexState) nbValue(j int) float64 {
	switch s.stat[j] {
	case nbLower:
		return s.lo[j]
	case nbUpper:
		return s.hi[j]
	default:
		return 0
	}
}

// computeXB refreshes the basic variable values from the current bounds and
// nonbasic statuses: x_B = B⁻¹(b − N·x_N).
func (s *simplexState) computeXB() {
	in := s.in
	m := in.m
	if m == 0 {
		return
	}
	r := s.rowBuf
	copy(r, in.b)
	for j := 0; j < in.n; j++ {
		if s.stat[j] == nbBasic {
			continue
		}
		xj := s.nbValue(j)
		if xj == 0 {
			continue
		}
		if j < in.nStruct {
			for p := in.colPtr[j]; p < in.colPtr[j+1]; p++ {
				r[in.rowIdx[p]] -= in.val[p] * xj
			}
		} else {
			r[j-in.nStruct] -= xj
		}
	}
	for i := 0; i < m; i++ {
		row := s.binv[i*m : (i+1)*m]
		v := 0.0
		for k, rk := range r {
			if rk != 0 {
				v += row[k] * rk
			}
		}
		s.xB[i] = v
	}
}

// ftran computes w = B⁻¹·A_j for column j.
func (s *simplexState) ftran(j int) {
	in := s.in
	m := in.m
	for i := range s.w {
		s.w[i] = 0
	}
	if m == 0 {
		return
	}
	if j >= in.nStruct {
		r := j - in.nStruct
		for i := 0; i < m; i++ {
			s.w[i] = s.binv[i*m+r]
		}
		return
	}
	for p := in.colPtr[j]; p < in.colPtr[j+1]; p++ {
		r, v := int(in.rowIdx[p]), in.val[p]
		for i := 0; i < m; i++ {
			s.w[i] += v * s.binv[i*m+r]
		}
	}
}

// computeDuals fills y = cBᵀ·B⁻¹ from per-row basic costs cb and the reduced
// cost d_j = cost(j) − y·A_j for every nonbasic column.
func (s *simplexState) computeDuals(cb []float64, cost func(int) float64) {
	in := s.in
	m := in.m
	for k := 0; k < m; k++ {
		s.y[k] = 0
	}
	for i := 0; i < m; i++ {
		cbi := cb[i]
		if cbi == 0 {
			continue
		}
		row := s.binv[i*m : (i+1)*m]
		for k, v := range row {
			if v != 0 {
				s.y[k] += cbi * v
			}
		}
	}
	for j := 0; j < in.n; j++ {
		if s.stat[j] == nbBasic {
			s.d[j] = 0
			continue
		}
		s.d[j] = cost(j) - in.colDot(s.y, j)
	}
}

func (s *simplexState) objCost(j int) float64 { return s.in.c[j] }

func zeroCost(int) float64 { return 0 }

// factorize rebuilds the dense basis inverse from the current basis by
// Gauss-Jordan elimination with partial pivoting. Returns false on a
// (numerically) singular basis.
func (s *simplexState) factorize() bool {
	in := s.in
	m := in.m
	s.sinceFactor = 0
	if m == 0 {
		return true
	}
	a := s.factorBuf
	for i := range a {
		a[i] = 0
	}
	for k := 0; k < m; k++ {
		j := int(s.basic[k])
		if j >= in.nStruct {
			a[(j-in.nStruct)*m+k] = 1
			continue
		}
		for p := in.colPtr[j]; p < in.colPtr[j+1]; p++ {
			a[int(in.rowIdx[p])*m+k] = in.val[p]
		}
	}
	binv := s.binv
	for i := range binv {
		binv[i] = 0
	}
	for i := 0; i < m; i++ {
		binv[i*m+i] = 1
	}
	for k := 0; k < m; k++ {
		// A full factorization is O(m³); honor cancellation mid-way on large
		// bases (the false return cascades into a prompt iteration-limit).
		if k&7 == 0 && s.aborted() {
			return false
		}
		// Partial pivoting over rows k..m-1 of column k.
		p, best := -1, 1e-10
		for i := k; i < m; i++ {
			if v := math.Abs(a[i*m+k]); v > best {
				p, best = i, v
			}
		}
		if p < 0 {
			return false
		}
		if p != k {
			swapRows(a, m, p, k)
			swapRows(binv, m, p, k)
		}
		inv := 1 / a[k*m+k]
		scaleRow(a, m, k, inv)
		scaleRow(binv, m, k, inv)
		for i := 0; i < m; i++ {
			if i == k {
				continue
			}
			f := a[i*m+k]
			if f == 0 {
				continue
			}
			axpyRow(a, m, i, k, -f)
			axpyRow(binv, m, i, k, -f)
		}
	}
	return true
}

func swapRows(a []float64, m, i, j int) {
	ri, rj := a[i*m:(i+1)*m], a[j*m:(j+1)*m]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func scaleRow(a []float64, m, i int, f float64) {
	ri := a[i*m : (i+1)*m]
	for k := range ri {
		ri[k] *= f
	}
}

func axpyRow(a []float64, m, i, j int, f float64) {
	ri, rj := a[i*m:(i+1)*m], a[j*m:(j+1)*m]
	for k := range rj {
		if rj[k] != 0 {
			ri[k] += f * rj[k]
		}
	}
}

// etaUpdate applies the product-form update of the basis inverse for a pivot
// on basis row r with entering column q, where w = B⁻¹·A_q must already be in
// s.w. Returns false when the pivot element is numerically unusable.
func (s *simplexState) etaUpdate(r int) bool {
	m := s.in.m
	piv := s.w[r]
	if math.Abs(piv) < 1e-11 {
		return false
	}
	inv := 1 / piv
	rowR := s.binv[r*m : (r+1)*m]
	for k := range rowR {
		rowR[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == r {
			continue
		}
		f := s.w[i]
		if f == 0 {
			continue
		}
		rowI := s.binv[i*m : (i+1)*m]
		for k, v := range rowR {
			if v != 0 {
				rowI[k] -= f * v
			}
		}
	}
	return true
}

// pivot replaces basis row r with column q (w already FTRANed) and marks the
// leaving column nonbasic at leaveStat. Returns false on numerical failure.
func (s *simplexState) pivot(q, r int, leaveStat int8) bool {
	if !s.etaUpdate(r) {
		return false
	}
	old := int(s.basic[r])
	s.stat[old] = leaveStat
	s.pos[old] = -1
	s.basic[r] = int32(q)
	s.pos[q] = int32(r)
	s.stat[q] = nbBasic
	s.iters++
	s.sinceFactor++
	if s.sinceFactor >= refactorEvery {
		if !s.factorize() {
			return false
		}
	}
	return true
}

// priceEntering picks the entering column from the current reduced costs.
// Returns the column and the movement direction (+1 away from the lower
// bound, -1 away from the upper bound), or -1 when no candidate improves.
// Under Bland's rule the lowest-index eligible column is returned, which
// guarantees termination on degenerate models.
func (s *simplexState) priceEntering(bland bool) (int, float64) {
	bestJ, bestScore, bestDir := -1, redCostEps, 0.0
	for j := 0; j < s.in.n; j++ {
		var dir float64
		switch s.stat[j] {
		case nbLower:
			if s.d[j] < -redCostEps {
				dir = 1
			}
		case nbUpper:
			if s.d[j] > redCostEps {
				dir = -1
			}
		case nbFree:
			if s.d[j] < -redCostEps {
				dir = 1
			} else if s.d[j] > redCostEps {
				dir = -1
			}
		}
		if dir == 0 {
			continue
		}
		if bland {
			return j, dir
		}
		if sc := math.Abs(s.d[j]); sc > bestScore {
			bestJ, bestScore, bestDir = j, sc, dir
		}
	}
	return bestJ, bestDir
}

// primalRatio runs the bounded-variable ratio test for entering column q
// moving in direction dir (w already FTRANed). phase1 admits the composite
// phase-1 rules: an infeasible basic variable limits the step only at the
// bound it is converging to (first breakpoint). Returns the step, the leaving
// basis row (-1 for a bound flip of q itself), and the leaving column's new
// status.
func (s *simplexState) primalRatio(q int, dir float64, phase1, bland bool) (float64, int, int8) {
	t := math.Inf(1)
	leave, leaveStat := -1, int8(nbLower)
	if r := s.hi[q] - s.lo[q]; !math.IsInf(r, 1) {
		t = r // bound flip
	}
	better := func(ti float64, i int) bool {
		if ti < t-pivotEps {
			return true
		}
		if ti >= t+pivotEps || leave < 0 {
			return false
		}
		if bland {
			return s.basic[i] < s.basic[leave]
		}
		return math.Abs(s.w[i]) > math.Abs(s.w[leave])
	}
	for i := 0; i < s.in.m; i++ {
		wi := s.w[i]
		rate := -dir * wi // movement of x_B[i] per unit step of x_q
		if rate < pivotEps && rate > -pivotEps {
			continue
		}
		bcol := int(s.basic[i])
		x := s.xB[i]
		loB, hiB := s.lo[bcol], s.hi[bcol]
		var ti float64
		var st int8
		switch {
		case phase1 && x < loB-feasEps:
			// Below its lower bound: only a step that carries it up to lo
			// limits the move (first breakpoint; it becomes feasible there).
			if rate <= 0 {
				continue
			}
			ti, st = (loB-x)/rate, nbLower
		case phase1 && x > hiB+feasEps:
			if rate >= 0 {
				continue
			}
			ti, st = (x-hiB)/(-rate), nbUpper
		case rate > 0:
			if math.IsInf(hiB, 1) {
				continue
			}
			ti, st = (hiB-x)/rate, nbUpper
		default:
			if math.IsInf(loB, -1) {
				continue
			}
			ti, st = (x-loB)/(-rate), nbLower
		}
		if ti < 0 {
			ti = 0
		}
		if better(ti, i) {
			t, leave, leaveStat = ti, i, st
		}
	}
	return t, leave, leaveStat
}

// applyPrimalStep performs the chosen primal step: a bound flip of the
// entering column or a basis change. Returns false on numerical failure.
func (s *simplexState) applyPrimalStep(q, leave int, leaveStat int8) bool {
	if leave < 0 {
		if s.stat[q] == nbLower {
			s.stat[q] = nbUpper
		} else {
			s.stat[q] = nbLower
		}
		s.iters++
		return true
	}
	return s.pivot(q, leave, leaveStat)
}

// phase1Costs classifies the basic variables against their bounds, filling
// the composite phase-1 cost vector (-1 below lo, +1 above hi) and returning
// the number of infeasible basics.
func (s *simplexState) phase1Costs() int {
	nInf := 0
	for i := 0; i < s.in.m; i++ {
		bcol := int(s.basic[i])
		x := s.xB[i]
		switch {
		case x < s.lo[bcol]-feasEps:
			s.cbBuf[i] = -1
			nInf++
		case x > s.hi[bcol]+feasEps:
			s.cbBuf[i] = 1
			nInf++
		default:
			s.cbBuf[i] = 0
		}
	}
	return nInf
}

// primalPhase1 drives the basis to primal feasibility by minimizing the sum
// of bound violations with a composite cost vector. Returns StatusOptimal
// once feasible, StatusInfeasible at a phase-1 optimum with violations left,
// StatusIterLimit on the pivot budget or context, statusNumFail on numerical
// breakdown.
func (s *simplexState) primalPhase1() Status {
	start := s.iters
	limit := s.callLimit()
	blandAt := 4*(s.in.m+s.in.n) + 50
	for {
		if s.iters-start > limit || s.aborted() {
			return StatusIterLimit
		}
		s.computeXB()
		if s.phase1Costs() == 0 {
			return StatusOptimal
		}
		s.computeDuals(s.cbBuf, zeroCost)
		bland := s.iters-start > blandAt
		q, dir := s.priceEntering(bland)
		if q < 0 {
			return StatusInfeasible
		}
		s.ftran(q)
		t, leave, leaveStat := s.primalRatio(q, dir, true, bland)
		if math.IsInf(t, 1) {
			// The infeasibility sum is bounded below by zero, so an unbounded
			// improving ray is a numerical contradiction.
			return statusNumFail
		}
		if !s.applyPrimalStep(q, leave, leaveStat) {
			return statusNumFail
		}
	}
}

// primalPhase2 optimizes the real objective from a primal-feasible basis.
func (s *simplexState) primalPhase2() Status {
	start := s.iters
	limit := s.callLimit()
	blandAt := 4*(s.in.m+s.in.n) + 50
	for {
		if s.iters-start > limit || s.aborted() {
			return StatusIterLimit
		}
		s.computeXB()
		for i := 0; i < s.in.m; i++ {
			s.cbBuf[i] = s.in.c[s.basic[i]]
		}
		s.computeDuals(s.cbBuf, s.objCost)
		bland := s.iters-start > blandAt
		q, dir := s.priceEntering(bland)
		if q < 0 {
			return StatusOptimal
		}
		s.ftran(q)
		t, leave, leaveStat := s.primalRatio(q, dir, false, bland)
		if math.IsInf(t, 1) {
			return StatusUnbounded
		}
		if !s.applyPrimalStep(q, leave, leaveStat) {
			return statusNumFail
		}
	}
}

// dual runs the bounded-variable dual simplex from the current basis, which
// must be dual feasible (reduced costs consistent with the nonbasic
// statuses). It restores primal feasibility bound violation by bound
// violation; when none remains the basis is optimal. StatusInfeasible means
// the subproblem has no feasible point (the usual warm-start outcome for a
// pruned branch-and-bound child).
func (s *simplexState) dual() Status {
	in := s.in
	m := in.m
	start := s.iters
	limit := s.callLimit()
	blandAt := 4*(m+in.n) + 50
	for {
		if s.iters-start > limit || s.aborted() {
			return StatusIterLimit
		}
		s.computeXB()
		// Leaving row: the most violated basic variable.
		r, below := -1, false
		worst := feasEps
		for i := 0; i < m; i++ {
			bcol := int(s.basic[i])
			if v := s.lo[bcol] - s.xB[i]; v > worst {
				r, below, worst = i, true, v
			}
			if v := s.xB[i] - s.hi[bcol]; v > worst {
				r, below, worst = i, false, v
			}
		}
		if r < 0 {
			return StatusOptimal
		}
		for i := 0; i < m; i++ {
			s.cbBuf[i] = in.c[s.basic[i]]
		}
		s.computeDuals(s.cbBuf, s.objCost)
		rho := s.binv[r*m : (r+1)*m]
		bland := s.iters-start > blandAt
		// Entering column: the dual ratio test over columns that can move
		// x_B[r] toward its violated bound while keeping the reduced costs
		// dual feasible; the smallest |d/alpha| binds.
		q, bestTheta, bestAlpha := -1, 0.0, 0.0
		for j := 0; j < in.n; j++ {
			st := s.stat[j]
			if st == nbBasic {
				continue
			}
			alpha := in.colDot(rho, j)
			if math.Abs(alpha) < feasEps {
				continue
			}
			var ok bool
			if below {
				ok = (st == nbLower && alpha < 0) || (st == nbUpper && alpha > 0) || st == nbFree
			} else {
				ok = (st == nbLower && alpha > 0) || (st == nbUpper && alpha < 0) || st == nbFree
			}
			if !ok {
				continue
			}
			dj := s.d[j]
			switch st {
			case nbLower: // dual feasibility means dj >= 0; clamp drift
				if dj < 0 {
					dj = 0
				}
			case nbUpper:
				if dj > 0 {
					dj = 0
				}
			}
			theta := math.Abs(dj / alpha)
			switch {
			case q < 0 || theta < bestTheta-redCostEps:
				q, bestTheta, bestAlpha = j, theta, alpha
			case theta < bestTheta+redCostEps:
				if bland {
					if j < q {
						q, bestTheta, bestAlpha = j, theta, alpha
					}
				} else if math.Abs(alpha) > math.Abs(bestAlpha) {
					q, bestTheta, bestAlpha = j, theta, alpha
				}
			}
		}
		if q < 0 {
			return StatusInfeasible
		}
		s.ftran(q)
		if math.Abs(s.w[r]) < 1e-9 {
			return statusNumFail
		}
		leaveStat := int8(nbUpper)
		if below {
			leaveStat = nbLower
		}
		if !s.pivot(q, r, leaveStat) {
			return statusNumFail
		}
	}
}

// installSlackBasis resets the state to the all-slack basis with structural
// columns nonbasic. When byCost is true, finite bounds are chosen by the sign
// of the objective coefficient, which makes the slack basis dual feasible
// whenever possible; the return value reports whether it succeeded for every
// column. When false (or for columns where the cost-preferred bound is
// infinite), any finite bound is used.
func (s *simplexState) installSlackBasis(byCost bool) bool {
	in := s.in
	dualOK := true
	for j := 0; j < in.nStruct; j++ {
		cj := in.c[j]
		loF, hiF := !math.IsInf(s.lo[j], -1), !math.IsInf(s.hi[j], 1)
		switch {
		case byCost && cj > redCostEps:
			if loF {
				s.stat[j] = nbLower
			} else {
				dualOK = false
				s.stat[j] = pickBound(loF, hiF)
			}
		case byCost && cj < -redCostEps:
			if hiF {
				s.stat[j] = nbUpper
			} else {
				dualOK = false
				s.stat[j] = pickBound(loF, hiF)
			}
		default:
			s.stat[j] = pickBound(loF, hiF)
		}
		s.pos[j] = -1
	}
	m := in.m
	for i := 0; i < m; i++ {
		col := in.nStruct + i
		s.basic[i] = int32(col)
		s.stat[col] = nbBasic
		s.pos[col] = int32(i)
	}
	// The slack basis inverse is the identity.
	for i := range s.binv {
		s.binv[i] = 0
	}
	for i := 0; i < m; i++ {
		s.binv[i*m+i] = 1
	}
	s.sinceFactor = 0
	return dualOK
}

func pickBound(loF, hiF bool) int8 {
	switch {
	case loF:
		return nbLower
	case hiF:
		return nbUpper
	default:
		return nbFree
	}
}

// solveCold solves the LP from scratch: a dual simplex from the all-slack
// basis when that basis can be made dual feasible (the common case for the
// paper's fully-bounded formulations), otherwise a two-phase primal.
func (s *simplexState) solveCold() Status {
	if s.installSlackBasis(true) {
		st := s.dual()
		if st != statusNumFail {
			return st
		}
		// Numerical breakdown: retry with the primal path below.
	}
	s.installSlackBasis(false)
	if st := s.ctxStatus(s.primalPhase1()); st != StatusOptimal {
		return st
	}
	return s.ctxStatus(s.primalPhase2())
}

// ctxStatus converts a numerical-failure verdict caused by a mid-operation
// context abort (e.g. a cancelled factorization) into the iteration-limit
// verdict the abort classification expects.
func (s *simplexState) ctxStatus(st Status) Status {
	if st == statusNumFail && s.aborted() {
		return StatusIterLimit
	}
	return st
}

// solveWarm re-solves after bound changes from an inherited basis: refactor
// the basis inverse and clean up primal feasibility with the dual simplex.
// The caller falls back to solveCold when it reports statusNumFail.
func (s *simplexState) solveWarm() Status {
	if !s.factorize() {
		return statusNumFail
	}
	return s.dual()
}

// extract maps the current basic solution back to model-variable space,
// including presolve-fixed variables, clamping floating-point noise into the
// working bounds. computeXB must reflect the final basis (both simplex loops
// leave it fresh on StatusOptimal).
func (s *simplexState) extract() []float64 {
	in := s.in
	x := make([]float64, len(in.varCol))
	for v, col := range in.varCol {
		if col < 0 {
			x[v] = in.fixed[v]
			continue
		}
		var xv float64
		switch s.stat[col] {
		case nbBasic:
			xv = s.xB[s.pos[col]]
		case nbLower:
			xv = s.lo[col]
		case nbUpper:
			xv = s.hi[col]
		}
		if xv < s.lo[col] {
			xv = s.lo[col]
		}
		if xv > s.hi[col] {
			xv = s.hi[col]
		}
		x[v] = xv
	}
	return x
}

// SolveLP solves the LP relaxation of m (integrality dropped) with the
// sparse bounded-variable simplex. The returned solution is indexed by
// Var.ID.
func SolveLP(m *Model) (*Solution, error) {
	return solveLPContext(context.Background(), m)
}

// solveLPContext is SolveLP bounded by a context; once ctx is done the solve
// aborts with StatusIterLimit (callers classify the abort).
func solveLPContext(ctx context.Context, m *Model) (*Solution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	in, decided := compile(m, false)
	if decided == StatusInfeasible {
		return &Solution{Status: StatusInfeasible, Stats: SolveStats{Presolve: in.pre}}, nil
	}
	s := newState(in)
	s.ctx = ctx
	status := s.solveCold()
	sol := &Solution{
		Status:     status,
		Iterations: s.iters,
		Stats:      SolveStats{SimplexIters: s.iters, Presolve: in.pre, ColdStarts: 1, Workers: 1},
	}
	sol.Stats.Gap = -1
	switch status {
	case statusNumFail:
		return nil, fmt.Errorf("milp: simplex numerical failure (singular basis)")
	case StatusOptimal:
		sol.X = s.extract()
		obj, _ := m.Objective()
		sol.Objective = obj.Eval(sol.X)
		sol.Bound = sol.Objective
		sol.Stats.Gap = 0
	}
	return sol, nil
}
