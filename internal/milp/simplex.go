package milp

import (
	"context"
	"fmt"
	"math"
)

// Status reports the outcome of a solve.
type Status int

const (
	// StatusUnknown means the solver has not produced a verdict.
	StatusUnknown Status = iota
	// StatusOptimal means an optimal solution was found (for MILP: proven).
	StatusOptimal
	// StatusInfeasible means the problem has no feasible point.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded in the optimization
	// direction.
	StatusUnbounded
	// StatusIterLimit means the simplex hit its iteration cap.
	StatusIterLimit
	// StatusTimeLimit means branch and bound hit its wall-clock limit; the
	// reported solution, if any, is the best incumbent (best-effort), as with
	// the paper's 30-minute Gurobi cap.
	StatusTimeLimit
	// StatusFeasible means a feasible (not necessarily optimal) solution is
	// available.
	StatusFeasible
	// StatusInterrupted means the caller's context was cancelled mid-solve;
	// the reported solution, if any, is the best incumbent found so far.
	StatusInterrupted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	case StatusTimeLimit:
		return "time-limit"
	case StatusFeasible:
		return "feasible"
	case StatusInterrupted:
		return "interrupted"
	default:
		return "unknown"
	}
}

// Solution is the result of an LP or MILP solve.
type Solution struct {
	// Status is the solver verdict.
	Status Status
	// X holds one value per model variable, indexed by Var.ID. Nil unless a
	// feasible point was found.
	X []float64
	// Objective is the objective value at X in the model's original sense.
	Objective float64
	// Bound is the best proven bound on the objective (MILP only); equals
	// Objective when Status is StatusOptimal.
	Bound float64
	// Nodes is the number of branch-and-bound nodes explored (MILP only).
	Nodes int
	// Iterations counts simplex pivots across all LP solves.
	Iterations int
}

// Value returns the solution value of v.
func (s *Solution) Value(v Var) float64 {
	if s == nil || s.X == nil {
		return math.NaN()
	}
	return s.X[v.id]
}

// Feasible reports whether the solution carries a usable assignment.
func (s *Solution) Feasible() bool {
	return s != nil && s.X != nil &&
		(s.Status == StatusOptimal || s.Status == StatusFeasible ||
			s.Status == StatusTimeLimit || s.Status == StatusIterLimit ||
			s.Status == StatusInterrupted)
}

const (
	pivotEps    = 1e-9
	feasEps     = 1e-7
	redCostEps  = 1e-9
	artificialW = 1.0
)

// columnKind records how a structural simplex column maps back to a model
// variable.
type columnKind int

const (
	colShift  columnKind = iota // x = lo + y
	colMirror                   // x = hi - y
	colPlus                     // free split, positive part
	colMinus                    // free split, negative part
)

type column struct {
	varID int
	kind  columnKind
	shift float64 // lo (colShift) or hi (colMirror)
}

// lp is the standard-form problem: min c·y s.t. Ay = b (b >= 0), y >= 0.
// Columns 0..nStruct-1 are structural, then slacks/surplus, then artificials.
type lp struct {
	m, n    int // rows, total columns
	nStruct int
	nArt    int
	a       [][]float64
	b       []float64
	c       []float64 // phase-II cost over all columns
	cols    []column  // structural column metadata
	basis   []int
	iters   int
	maxIter int
	// ctx, when non-nil, aborts the solve with StatusIterLimit once the
	// context is done, so that branch and bound can honor its cancellation
	// and wall-clock budget even when a single relaxation is expensive.
	ctx context.Context
}

// buildLP converts a Model (relaxing integrality) into standard form.
// Returns nil with ok=false if a variable has lo > hi (trivially infeasible).
func buildLP(m *Model) (*lp, bool) {
	type rowSpec struct {
		coefs map[int]float64 // structural column -> coefficient
		rel   Relation
		rhs   float64
	}

	// Map model variables to structural columns.
	var cols []column
	colOf := make([][]int, len(m.vars)) // var -> its column ids (1 or 2)
	for j, d := range m.vars {
		if d.lo > d.hi+feasEps {
			return nil, false
		}
		switch {
		case !math.IsInf(d.lo, -1):
			colOf[j] = []int{len(cols)}
			cols = append(cols, column{varID: j, kind: colShift, shift: d.lo})
		case !math.IsInf(d.hi, 1):
			colOf[j] = []int{len(cols)}
			cols = append(cols, column{varID: j, kind: colMirror, shift: d.hi})
		default:
			colOf[j] = []int{len(cols), len(cols) + 1}
			cols = append(cols,
				column{varID: j, kind: colPlus},
				column{varID: j, kind: colMinus})
		}
	}
	nStruct := len(cols)

	// addTerm accumulates the standard-form coefficient of model var j with
	// original coefficient coef into row r, returning the constant correction
	// to subtract from the rhs.
	addTerm := func(r *rowSpec, j int, coef float64) float64 {
		var corr float64
		for _, cIdx := range colOf[j] {
			col := cols[cIdx]
			switch col.kind {
			case colShift:
				r.coefs[cIdx] += coef
				corr += coef * col.shift
			case colMirror:
				r.coefs[cIdx] -= coef
				corr += coef * col.shift
			case colPlus:
				r.coefs[cIdx] += coef
			case colMinus:
				r.coefs[cIdx] -= coef
			}
		}
		return corr
	}

	var rows []rowSpec
	newRow := func(rel Relation, rhs float64) *rowSpec {
		rows = append(rows, rowSpec{coefs: make(map[int]float64), rel: rel, rhs: rhs})
		return &rows[len(rows)-1]
	}

	// Model constraints.
	for i := range m.cons {
		con := &m.cons[i]
		r := newRow(con.Rel, con.RHS-con.Expr.Offset())
		for _, t := range con.Expr.Terms() {
			r.rhs -= addTerm(r, t.Var.id, t.Coef)
		}
	}
	// Finite-range bound rows: y <= hi - lo (shift) or y <= hi - lo (mirror).
	for cIdx, col := range cols {
		d := m.vars[col.varID]
		if col.kind == colShift && !math.IsInf(d.hi, 1) {
			r := newRow(LE, d.hi-d.lo)
			r.coefs[cIdx] = 1
		}
		if col.kind == colMirror && !math.IsInf(d.lo, -1) {
			// unreachable by construction (lo=-inf when mirrored), kept for
			// symmetry if construction rules change
			r := newRow(LE, d.hi-d.lo)
			r.coefs[cIdx] = 1
		}
	}

	// Normalize rhs >= 0.
	for i := range rows {
		if rows[i].rhs < 0 {
			for k := range rows[i].coefs {
				rows[i].coefs[k] = -rows[i].coefs[k]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].rel {
			case LE:
				rows[i].rel = GE
			case GE:
				rows[i].rel = LE
			}
		}
	}

	// Count auxiliary columns.
	nSlack, nArt := 0, 0
	for _, r := range rows {
		switch r.rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}

	nRows := len(rows)
	n := nStruct + nSlack + nArt
	p := &lp{
		m:       nRows,
		n:       n,
		nStruct: nStruct,
		nArt:    nArt,
		a:       make([][]float64, nRows),
		b:       make([]float64, nRows),
		c:       make([]float64, n),
		cols:    cols,
		basis:   make([]int, nRows),
		maxIter: 200*(nRows+n) + 2000,
	}
	for i := range p.a {
		p.a[i] = make([]float64, n)
	}

	slackAt := nStruct
	artAt := nStruct + nSlack
	for i, r := range rows {
		for k, v := range r.coefs {
			p.a[i][k] = v
		}
		p.b[i] = r.rhs
		switch r.rel {
		case LE:
			p.a[i][slackAt] = 1
			p.basis[i] = slackAt
			slackAt++
		case GE:
			p.a[i][slackAt] = -1
			slackAt++
			p.a[i][artAt] = 1
			p.basis[i] = artAt
			artAt++
		case EQ:
			p.a[i][artAt] = 1
			p.basis[i] = artAt
			artAt++
		}
	}

	// Phase-II costs over structural columns from the model objective,
	// negated for maximization.
	sign := 1.0
	if m.dir == Maximize {
		sign = -1
	}
	for _, t := range m.obj.Terms() {
		for _, cIdx := range colOf[t.Var.id] {
			col := cols[cIdx]
			switch col.kind {
			case colShift, colPlus:
				p.c[cIdx] += sign * t.Coef
			case colMirror, colMinus:
				p.c[cIdx] -= sign * t.Coef
			}
		}
	}
	return p, true
}

// price computes reduced costs d = c - c_B·T for cost vector cost and
// returns the entering column (or -1 if optimal). Artificial columns are
// barred when barArt is true. Bland's rule is used when bland is true.
func (p *lp) price(cost []float64, barArt, bland bool) int {
	// y = c_B (multipliers are implicit: tableau is kept reduced, so reduced
	// cost of column j is cost[j] - sum_i cost[basis[i]] * a[i][j]).
	cb := make([]float64, p.m)
	for i, bi := range p.basis {
		cb[i] = cost[bi]
	}
	best, bestJ := -redCostEps, -1
	artStart := p.n - p.nArt
	for j := 0; j < p.n; j++ {
		if barArt && j >= artStart {
			continue
		}
		d := cost[j]
		for i := 0; i < p.m; i++ {
			if cb[i] != 0 && p.a[i][j] != 0 {
				d -= cb[i] * p.a[i][j]
			}
		}
		if d < -redCostEps {
			if bland {
				return j
			}
			if d < best {
				best, bestJ = d, j
			}
		}
	}
	return bestJ
}

// pivotAt performs a Gauss-Jordan pivot on (row, j) and updates the basis.
func (p *lp) pivotAt(row, j int) {
	pv := p.a[row][j]
	inv := 1 / pv
	prow := p.a[row]
	for k := 0; k < p.n; k++ {
		prow[k] *= inv
	}
	p.b[row] *= inv
	prow[j] = 1 // exact
	for i := 0; i < p.m; i++ {
		if i == row {
			continue
		}
		f := p.a[i][j]
		if f == 0 {
			continue
		}
		arow := p.a[i]
		for k := 0; k < p.n; k++ {
			if prow[k] != 0 {
				arow[k] -= f * prow[k]
			}
		}
		arow[j] = 0
		p.b[i] -= f * p.b[row]
		if p.b[i] < 0 && p.b[i] > -feasEps {
			p.b[i] = 0
		}
	}
	p.basis[row] = j
	p.iters++
}

// pivot performs the ratio test on column j and pivots. Returns false if the
// column proves unboundedness.
func (p *lp) pivot(j int) bool {
	row := -1
	var ratio float64
	for i := 0; i < p.m; i++ {
		if p.a[i][j] > pivotEps {
			r := p.b[i] / p.a[i][j]
			if row == -1 || r < ratio-pivotEps ||
				(r < ratio+pivotEps && p.basis[i] < p.basis[row]) {
				row, ratio = i, r
			}
		}
	}
	if row == -1 {
		return false
	}
	p.pivotAt(row, j)
	return true
}

// driveOutArtificials pivots any artificial variable remaining basic at zero
// after phase I out of the basis. Rows that are all zero over non-artificial
// columns are redundant and left inert (their artificial can never turn
// positive because every eliminating coefficient in the row is zero).
func (p *lp) driveOutArtificials() {
	artStart := p.n - p.nArt
	for i := 0; i < p.m; i++ {
		if p.basis[i] < artStart {
			continue
		}
		for j := 0; j < artStart; j++ {
			if math.Abs(p.a[i][j]) > pivotEps {
				p.pivotAt(i, j)
				break
			}
		}
	}
}

// run optimizes the given cost vector. blandAfter switches to Bland's rule
// after that many iterations to break cycling.
func (p *lp) run(cost []float64, barArt bool) Status {
	blandAfter := 4 * (p.m + p.n)
	start := p.iters
	for {
		if p.iters-start > p.maxIter {
			return StatusIterLimit
		}
		if p.ctx != nil && p.iters%32 == 0 && p.ctx.Err() != nil {
			return StatusIterLimit
		}
		bland := p.iters-start > blandAfter
		j := p.price(cost, barArt, bland)
		if j < 0 {
			return StatusOptimal
		}
		if !p.pivot(j) {
			return StatusUnbounded
		}
	}
}

// objValue evaluates cost over the current basic solution.
func (p *lp) objValue(cost []float64) float64 {
	v := 0.0
	for i, bi := range p.basis {
		v += cost[bi] * p.b[i]
	}
	return v
}

// SolveLP solves the LP relaxation of m (integrality dropped) with a dense
// two-phase primal simplex. The returned solution is indexed by Var.ID.
func SolveLP(m *Model) (*Solution, error) {
	return solveLPContext(context.Background(), m)
}

// solveLPContext is SolveLP bounded by a context; once ctx is done the solve
// aborts with StatusIterLimit.
func solveLPContext(ctx context.Context, m *Model) (*Solution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	p, ok := buildLP(m)
	if !ok {
		return &Solution{Status: StatusInfeasible}, nil
	}
	p.ctx = ctx

	// Phase I: minimize sum of artificials.
	if p.nArt > 0 {
		phase1 := make([]float64, p.n)
		for j := p.n - p.nArt; j < p.n; j++ {
			phase1[j] = artificialW
		}
		st := p.run(phase1, false)
		if st == StatusIterLimit {
			return &Solution{Status: StatusIterLimit, Iterations: p.iters}, nil
		}
		if st == StatusUnbounded {
			// Phase I cannot be unbounded (costs >= 0, y >= 0); treat as
			// numerical failure.
			return nil, fmt.Errorf("milp: phase I reported unbounded (numerical failure)")
		}
		if p.objValue(phase1) > 1e-6 {
			return &Solution{Status: StatusInfeasible, Iterations: p.iters}, nil
		}
		p.driveOutArtificials()
	}

	// Phase II.
	st := p.run(p.c, true)
	switch st {
	case StatusIterLimit:
		return &Solution{Status: StatusIterLimit, Iterations: p.iters}, nil
	case StatusUnbounded:
		return &Solution{Status: StatusUnbounded, Iterations: p.iters}, nil
	}

	// Recover structural values.
	y := make([]float64, p.n)
	for i, bi := range p.basis {
		y[bi] = p.b[i]
	}
	x := make([]float64, len(m.vars))
	for j := range x {
		d := m.vars[j]
		if !math.IsInf(d.lo, -1) {
			x[j] = d.lo
		} else if !math.IsInf(d.hi, 1) {
			x[j] = d.hi
		}
	}
	for cIdx, col := range p.cols {
		switch col.kind {
		case colShift:
			x[col.varID] = col.shift + y[cIdx]
		case colMirror:
			x[col.varID] = col.shift - y[cIdx]
		case colPlus:
			x[col.varID] += y[cIdx]
		case colMinus:
			x[col.varID] -= y[cIdx]
		}
	}
	// Clamp tiny bound violations from floating point.
	for j := range x {
		d := m.vars[j]
		if x[j] < d.lo {
			x[j] = d.lo
		}
		if x[j] > d.hi {
			x[j] = d.hi
		}
	}

	obj := m.obj.Eval(x)
	return &Solution{
		Status:     StatusOptimal,
		X:          x,
		Objective:  obj,
		Bound:      obj,
		Iterations: p.iters,
	}, nil
}
