package milp

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// Status reports the outcome of a solve.
type Status int

const (
	// StatusUnknown means the solver has not produced a verdict.
	StatusUnknown Status = iota
	// StatusOptimal means an optimal solution was found (for MILP: proven).
	StatusOptimal
	// StatusInfeasible means the problem has no feasible point.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded in the optimization
	// direction.
	StatusUnbounded
	// StatusIterLimit means the simplex hit its iteration cap.
	StatusIterLimit
	// StatusTimeLimit means branch and bound hit its wall-clock limit; the
	// reported solution, if any, is the best incumbent (best-effort), as with
	// the paper's 30-minute Gurobi cap.
	StatusTimeLimit
	// StatusFeasible means a feasible (not necessarily optimal) solution is
	// available.
	StatusFeasible
	// StatusInterrupted means the caller's context was cancelled mid-solve;
	// the reported solution, if any, is the best incumbent found so far.
	StatusInterrupted

	// statusNumFail is the internal verdict for a numerical breakdown
	// (singular basis, vanishing pivot). Warm starts fall back to a cold
	// solve on it; a cold solve maps it to an error or an incomplete node.
	statusNumFail Status = -1
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	case StatusTimeLimit:
		return "time-limit"
	case StatusFeasible:
		return "feasible"
	case StatusInterrupted:
		return "interrupted"
	default:
		return "unknown"
	}
}

// Solution is the result of an LP or MILP solve.
type Solution struct {
	// Status is the solver verdict.
	Status Status
	// X holds one value per model variable, indexed by Var.ID. Nil unless a
	// feasible point was found.
	X []float64
	// Objective is the objective value at X in the model's original sense.
	Objective float64
	// Bound is the best proven bound on the objective (MILP only); equals
	// Objective when Status is StatusOptimal with a full proof (it can
	// trail by up to the requested SolveOptions.Gap when early gap stopping
	// pruned subtrees), and is NaN when the search stopped before any
	// subproblem bound survived.
	Bound float64
	// Nodes is the number of branch-and-bound nodes explored (MILP only);
	// mirrors Stats.Nodes.
	Nodes int
	// Iterations counts simplex pivots across all LP solves; mirrors
	// Stats.SimplexIters.
	Iterations int
	// Stats carries the full solver diagnostics (warm-start rate, presolve
	// reductions, MIP gap, worker count, factorization kernel, node
	// propagation).
	Stats SolveStats
}

// Value returns the solution value of v.
func (s *Solution) Value(v Var) float64 {
	if s == nil || s.X == nil {
		return math.NaN()
	}
	return s.X[v.id]
}

// Feasible reports whether the solution carries a usable assignment.
func (s *Solution) Feasible() bool {
	return s != nil && s.X != nil &&
		(s.Status == StatusOptimal || s.Status == StatusFeasible ||
			s.Status == StatusTimeLimit || s.Status == StatusIterLimit ||
			s.Status == StatusInterrupted)
}

// Simplex tolerances.
const (
	pivotEps   = 1e-9
	feasEps    = 1e-7
	redCostEps = 1e-9
	// refactorEvery bounds the number of basis updates (eta or
	// Forrest–Tomlin) applied before a fresh factorization, for numerical
	// hygiene and to keep the sparse kernel's eta file short.
	refactorEvery = 64
	// devexResetLimit is the reference-weight ceiling: when any devex weight
	// outgrows it, the reference framework is re-anchored at the current
	// basis (all weights back to 1), as Forrest–Goldfarb prescribe.
	devexResetLimit = 1e7
	// pertScale sizes the anti-degeneracy cost perturbation (see
	// instance.pert). Large against redCostEps so perturbed reduced costs
	// break ties decisively, small against real objective coefficients so
	// the exact cleanup after a perturbed run is a handful of pivots.
	pertScale = 1e-6
)

// Nonbasic / basic status of a column.
const (
	nbBasic int8 = iota
	nbLower      // nonbasic at its (finite) lower bound
	nbUpper      // nonbasic at its (finite) upper bound
	nbFree       // nonbasic free variable, parked at zero
)

// kernelKind selects the basis-factorization kernel of a simplexState.
type kernelKind int

const (
	// kernelAuto picks dense below sparseKernelMinRows rows, sparse LU above.
	kernelAuto kernelKind = iota
	// kernelDense forces the dense-inverse kernel.
	kernelDense
	// kernelSparseLU forces the sparse LU kernel.
	kernelSparseLU
)

// simplexState is one worker's in-place solver over an instance: working
// bounds (mutated by branch and bound), the current basis behind a pluggable
// basisFactorization kernel, and scratch vectors. It implements a
// bounded-variable primal simplex (two-phase, no artificial columns) and a
// bounded-variable dual simplex used for warm starts after bound changes,
// both priced by devex reference weights with a Bland fallback against
// cycling.
type simplexState struct {
	in     *instance
	lo, hi []float64 // working bounds, length n
	basic  []int32   // length m: column in basis row i
	pos    []int32   // length n: basis row of column, -1 when nonbasic
	stat   []int8    // length n

	fac basisFactorization

	xB     []float64 // basic variable values
	y, d   []float64 // duals / reduced costs scratch
	w      []float64 // FTRAN result
	rho    []float64 // BTRAN pivot row scratch
	rowBuf []float64
	cbBuf  []float64

	gamma []float64 // primal devex reference weights, length n
	rowW  []float64 // dual devex row weights, length m

	alphaBuf []float64 // pivot row α_rj over all columns, length n
	flipBuf  []float64 // bound-flip rhs accumulator, length m
	flipOut  []float64 // bound-flip FTRAN result, length m
	flipCand []int32   // BFRT breakpoint candidates, capacity n

	// pertOn layers the instance's anti-degeneracy cost perturbation onto
	// every cost lookup; the optimizing loops run perturbed, then switch it
	// off and finish to exact optimality before reporting StatusOptimal.
	pertOn bool

	// incrPivots counts pivots executed against incrementally maintained
	// basic values and reduced costs (O(nnz) per pivot); fullPivots counts
	// pivots that needed a from-scratch recompute first (loop entry, a
	// refactorization, or a perturbation switch). Merged into
	// SolveStats.IncrementalPivots / FullPricingPivots.
	incrPivots, fullPivots int

	iters int
	ctx   context.Context
}

func newState(in *instance) *simplexState {
	return newStateKernel(in, kernelAuto)
}

func newStateKernel(in *instance, kk kernelKind) *simplexState {
	s := &simplexState{
		in:       in,
		lo:       append([]float64(nil), in.lo...),
		hi:       append([]float64(nil), in.hi...),
		basic:    make([]int32, in.m),
		pos:      make([]int32, in.n),
		stat:     make([]int8, in.n),
		xB:       make([]float64, in.m),
		y:        make([]float64, in.m),
		d:        make([]float64, in.n),
		w:        make([]float64, in.m),
		rho:      make([]float64, in.m),
		rowBuf:   make([]float64, in.m),
		cbBuf:    make([]float64, in.m),
		gamma:    make([]float64, in.n),
		rowW:     make([]float64, in.m),
		alphaBuf: make([]float64, in.n),
		flipBuf:  make([]float64, in.m),
		flipOut:  make([]float64, in.m),
		flipCand: make([]int32, 0, in.n),
	}
	if kk == kernelAuto {
		if in.m >= sparseKernelMinRows {
			kk = kernelSparseLU
		} else {
			kk = kernelDense
		}
	}
	if kk == kernelSparseLU {
		s.fac = newLUFactor(in, s.basic, s.aborted)
	} else {
		s.fac = newDenseFactor(in, s.basic, s.aborted)
	}
	return s
}

// resetBounds restores the root bounds of the instance.
func (s *simplexState) resetBounds() {
	copy(s.lo, s.in.lo)
	copy(s.hi, s.in.hi)
}

// callLimit is the per-call pivot budget.
func (s *simplexState) callLimit() int {
	return 300*(s.in.m+s.in.n) + 1000
}

// warmLimit was the tight pivot budget of a warm-started dual repair, a
// stall guard against degenerate shuffling. The bound-flipping ratio test
// absorbs whole runs of boxed breakpoints in a single dual pivot, so warm
// repairs now get the full call budget and the cold-solve escape fires only
// on genuine numerical failure or budget exhaustion (solveRelax).
func (s *simplexState) warmLimit() int {
	return 0 // 0 = callLimit; kept as a named hook for the dive/warm paths
}

// aborted reports whether the solve context has fired. It is checked every
// pivot: a context Err read costs nanoseconds against the cost of a pivot,
// and on large models a single pivot can take milliseconds, so coarser
// checks would make cancellation sluggish.
func (s *simplexState) aborted() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// nbValue is the current value of a nonbasic column.
func (s *simplexState) nbValue(j int) float64 {
	switch s.stat[j] {
	case nbLower:
		return s.lo[j]
	case nbUpper:
		return s.hi[j]
	default:
		return 0
	}
}

// computeXB refreshes the basic variable values from the current bounds and
// nonbasic statuses: x_B = B⁻¹(b − N·x_N).
func (s *simplexState) computeXB() {
	in := s.in
	if in.m == 0 {
		return
	}
	r := s.rowBuf
	copy(r, in.b)
	for j := 0; j < in.n; j++ {
		if s.stat[j] == nbBasic {
			continue
		}
		xj := s.nbValue(j)
		if xj == 0 {
			continue
		}
		if j < in.nStruct {
			for p := in.colPtr[j]; p < in.colPtr[j+1]; p++ {
				r[in.rowIdx[p]] -= in.val[p] * xj
			}
		} else {
			r[j-in.nStruct] -= xj
		}
	}
	s.fac.ftranDense(r, s.xB)
}

// ftran computes w = B⁻¹·A_j for column j.
func (s *simplexState) ftran(j int) {
	s.fac.ftranColumn(j, s.w)
}

// computeDuals fills y = cBᵀ·B⁻¹ from per-row basic costs cb and the reduced
// cost d_j = cost(j) − y·A_j for every nonbasic column.
func (s *simplexState) computeDuals(cb []float64, cost func(int) float64) {
	in := s.in
	if in.m > 0 {
		s.fac.btranDense(cb, s.y)
	}
	for j := 0; j < in.n; j++ {
		if s.stat[j] == nbBasic {
			s.d[j] = 0
			continue
		}
		s.d[j] = cost(j) - in.colDot(s.y, j)
	}
}

func (s *simplexState) objCost(j int) float64 {
	if s.pertOn {
		return s.in.c[j] + s.in.pert[j]
	}
	return s.in.c[j]
}

func zeroCost(int) float64 { return 0 }

// devexReset re-anchors the primal reference framework at the current basis:
// every column's weight returns to 1.
func (s *simplexState) devexReset() {
	for j := range s.gamma {
		s.gamma[j] = 1
	}
}

// devexUpdatePrimal refreshes the primal devex weights after the choice of
// entering column q and leaving basis row r (s.w holds B⁻¹·A_q). Following
// Forrest–Goldfarb, every nonbasic column's weight rises to
// (α_rj/α_rq)²·γ_q when that exceeds its current weight, and the leaving
// column re-enters the nonbasic set with weight max(γ_q/α_rq², 1). Must run
// before the pivot mutates the basis. As a side effect the pivot row α_rj it
// computes is left in alphaBuf (with α_rq at index q, 0 on basic columns) so
// the caller's incremental reduced-cost update can reuse it for free.
func (s *simplexState) devexUpdatePrimal(q, r int) {
	alphaQ := s.w[r]
	if alphaQ == 0 {
		return
	}
	in := s.in
	gq := s.gamma[q]
	inv2 := 1 / (alphaQ * alphaQ)
	s.fac.btranRow(r, s.rho)
	maxW := 1.0
	for j := 0; j < in.n; j++ {
		if s.stat[j] == nbBasic || j == q {
			s.alphaBuf[j] = 0
			continue
		}
		aj := in.colDot(s.rho, j)
		s.alphaBuf[j] = aj
		if aj == 0 {
			continue
		}
		if cand := aj * aj * inv2 * gq; cand > s.gamma[j] {
			s.gamma[j] = cand
		}
		if s.gamma[j] > maxW {
			maxW = s.gamma[j]
		}
	}
	s.alphaBuf[q] = alphaQ
	gl := gq * inv2
	if gl < 1 {
		gl = 1
	}
	s.gamma[int(s.basic[r])] = gl
	s.gamma[q] = 1
	if maxW > devexResetLimit {
		s.devexReset()
	}
}

// devexUpdateDual refreshes the dual row weights after the pivot on basis
// row r with s.w = B⁻¹·A_q: the mirrored Forrest–Goldfarb update over rows.
func (s *simplexState) devexUpdateDual(r int) {
	wr := s.w[r]
	if wr == 0 {
		return
	}
	gr := s.rowW[r]
	inv2 := 1 / (wr * wr)
	maxW := 1.0
	for i := range s.rowW {
		if i == r {
			continue
		}
		wi := s.w[i]
		if wi == 0 {
			continue
		}
		if cand := wi * wi * inv2 * gr; cand > s.rowW[i] {
			s.rowW[i] = cand
		}
		if s.rowW[i] > maxW {
			maxW = s.rowW[i]
		}
	}
	gl := gr * inv2
	if gl < 1 {
		gl = 1
	}
	s.rowW[r] = gl
	if maxW > devexResetLimit {
		for i := range s.rowW {
			s.rowW[i] = 1
		}
	}
}

// pivot replaces basis row r with column q (w already FTRANed) and marks the
// leaving column nonbasic at leaveStat. A rejected kernel update (tiny eta
// pivot, unstable Forrest–Tomlin elimination) triggers one
// refactorize-recompute-retry round before giving up. Returns false on
// numerical failure.
func (s *simplexState) pivot(q, r int, leaveStat int8) bool {
	if !s.fac.update(r, s.w) {
		// Refresh the factorization of the pre-pivot basis, recompute the
		// entering column against it, and retry the update once.
		if !s.fac.refactorize() {
			return false
		}
		s.fac.ftranColumn(q, s.w)
		if !s.fac.update(r, s.w) {
			return false
		}
	}
	old := int(s.basic[r])
	s.stat[old] = leaveStat
	s.pos[old] = -1
	s.basic[r] = int32(q)
	s.pos[q] = int32(r)
	s.stat[q] = nbBasic
	s.iters++
	if s.fac.updates() >= refactorEvery {
		if !s.fac.refactorize() {
			return false
		}
	}
	return true
}

// priceEntering picks the entering column from the current reduced costs by
// devex pricing: the eligible column maximizing d_j²/γ_j against the
// reference weights. Returns the column and the movement direction (+1 away
// from the lower bound, -1 away from the upper bound), or -1 when no
// candidate improves. Under Bland's rule the lowest-index eligible column is
// returned instead, which guarantees termination on degenerate models.
func (s *simplexState) priceEntering(bland bool) (int, float64) {
	bestJ, bestScore, bestDir := -1, 0.0, 0.0
	for j := 0; j < s.in.n; j++ {
		var dir float64
		switch s.stat[j] {
		case nbLower:
			if s.d[j] < -redCostEps {
				dir = 1
			}
		case nbUpper:
			if s.d[j] > redCostEps {
				dir = -1
			}
		case nbFree:
			if s.d[j] < -redCostEps {
				dir = 1
			} else if s.d[j] > redCostEps {
				dir = -1
			}
		}
		if dir == 0 {
			continue
		}
		if bland {
			return j, dir
		}
		if sc := s.d[j] * s.d[j] / s.gamma[j]; sc > bestScore {
			bestJ, bestScore, bestDir = j, sc, dir
		}
	}
	return bestJ, bestDir
}

// primalRatio runs the bounded-variable ratio test for entering column q
// moving in direction dir (w already FTRANed). phase1 admits the composite
// phase-1 rules: an infeasible basic variable limits the step only at the
// bound it is converging to (first breakpoint). Returns the step, the leaving
// basis row (-1 for a bound flip of q itself), and the leaving column's new
// status.
func (s *simplexState) primalRatio(q int, dir float64, phase1, bland bool) (float64, int, int8) {
	t := math.Inf(1)
	leave, leaveStat := -1, int8(nbLower)
	if r := s.hi[q] - s.lo[q]; !math.IsInf(r, 1) {
		t = r // bound flip
	}
	better := func(ti float64, i int) bool {
		if ti < t-pivotEps {
			return true
		}
		if ti >= t+pivotEps || leave < 0 {
			return false
		}
		if bland {
			return s.basic[i] < s.basic[leave]
		}
		return math.Abs(s.w[i]) > math.Abs(s.w[leave])
	}
	for i := 0; i < s.in.m; i++ {
		wi := s.w[i]
		rate := -dir * wi // movement of x_B[i] per unit step of x_q
		if rate < pivotEps && rate > -pivotEps {
			continue
		}
		bcol := int(s.basic[i])
		x := s.xB[i]
		loB, hiB := s.lo[bcol], s.hi[bcol]
		var ti float64
		var st int8
		switch {
		case phase1 && x < loB-feasEps:
			// Below its lower bound: only a step that carries it up to lo
			// limits the move (first breakpoint; it becomes feasible there).
			if rate <= 0 {
				continue
			}
			ti, st = (loB-x)/rate, nbLower
		case phase1 && x > hiB+feasEps:
			if rate >= 0 {
				continue
			}
			ti, st = (x-hiB)/(-rate), nbUpper
		case rate > 0:
			if math.IsInf(hiB, 1) {
				continue
			}
			ti, st = (hiB-x)/rate, nbUpper
		default:
			if math.IsInf(loB, -1) {
				continue
			}
			ti, st = (x-loB)/(-rate), nbLower
		}
		if ti < 0 {
			ti = 0
		}
		if better(ti, i) {
			t, leave, leaveStat = ti, i, st
		}
	}
	return t, leave, leaveStat
}

// applyPrimalStep performs the chosen primal step: a bound flip of the
// entering column or a basis change with its devex weight maintenance.
// Returns false on numerical failure.
func (s *simplexState) applyPrimalStep(q, leave int, leaveStat int8, bland bool) bool {
	if leave < 0 {
		if s.stat[q] == nbLower {
			s.stat[q] = nbUpper
		} else {
			s.stat[q] = nbLower
		}
		s.iters++
		return true
	}
	if !bland {
		s.devexUpdatePrimal(q, leave)
	}
	return s.pivot(q, leave, leaveStat)
}

// phase1Costs classifies the basic variables against their bounds, filling
// the composite phase-1 cost vector (-1 below lo, +1 above hi) and returning
// the number of infeasible basics.
func (s *simplexState) phase1Costs() int {
	nInf := 0
	for i := 0; i < s.in.m; i++ {
		bcol := int(s.basic[i])
		x := s.xB[i]
		switch {
		case x < s.lo[bcol]-feasEps:
			s.cbBuf[i] = -1
			nInf++
		case x > s.hi[bcol]+feasEps:
			s.cbBuf[i] = 1
			nInf++
		default:
			s.cbBuf[i] = 0
		}
	}
	return nInf
}

// primalPhase1 drives the basis to primal feasibility by minimizing the sum
// of bound violations with a composite cost vector. Returns StatusOptimal
// once feasible, StatusInfeasible at a phase-1 optimum with violations left,
// StatusIterLimit on the pivot budget or context, statusNumFail on numerical
// breakdown.
func (s *simplexState) primalPhase1() Status {
	start := s.iters
	limit := s.callLimit()
	blandAt := 4*(s.in.m+s.in.n) + 50
	s.devexReset()
	for {
		if s.iters-start > limit || s.aborted() {
			return StatusIterLimit
		}
		s.computeXB()
		if s.phase1Costs() == 0 {
			return StatusOptimal
		}
		s.computeDuals(s.cbBuf, zeroCost)
		bland := s.iters-start > blandAt
		q, dir := s.priceEntering(bland)
		if q < 0 {
			return StatusInfeasible
		}
		s.ftran(q)
		t, leave, leaveStat := s.primalRatio(q, dir, true, bland)
		if math.IsInf(t, 1) {
			// The infeasibility sum is bounded below by zero, so an unbounded
			// improving ray is a numerical contradiction.
			return statusNumFail
		}
		if !s.applyPrimalStep(q, leave, leaveStat, bland) {
			return statusNumFail
		}
	}
}

// primalPhase2 optimizes the real objective from a primal-feasible basis.
// The loop prices the perturbed costs first; at the perturbed optimum it
// drops the perturbation and keeps iterating, so the basis it reports
// StatusOptimal from is exactly optimal for the true objective.
//
// Like dual, the loop maintains x_B and the reduced costs incrementally in
// O(nnz) per pivot — x_B along the FTRANed entering column, d along the
// pivot row that devexUpdatePrimal already computes for its weights — and
// falls back to a from-scratch refresh at loop entry, after a
// refactorization, under Bland's rule, and on the perturbation switch-off.
// Termination claims (optimality, unboundedness) are only ever made from
// freshly recomputed values.
func (s *simplexState) primalPhase2() Status {
	start := s.iters
	limit := s.callLimit()
	m := s.in.m
	blandAt := 4*(m+s.in.n) + 50
	s.devexReset()
	s.pertOn = true
	defer func() { s.pertOn = false }()
	refresh := true
	for {
		if s.iters-start > limit || s.aborted() {
			return StatusIterLimit
		}
		bland := s.iters-start > blandAt
		fresh := refresh || bland
		if fresh {
			s.computeXB()
			for i := 0; i < m; i++ {
				s.cbBuf[i] = s.objCost(int(s.basic[i]))
			}
			s.computeDuals(s.cbBuf, s.objCost)
			refresh = false
		}
		q, dir := s.priceEntering(bland)
		if q < 0 {
			if !fresh {
				// Incremental reduced costs claim optimality; certify against
				// a clean recompute before believing it.
				refresh = true
				continue
			}
			if !s.pertOn {
				return StatusOptimal
			}
			// Perturbed optimum reached: switch to the exact costs and let
			// the loop finish the (usually empty) remainder.
			s.pertOn = false
			refresh = true
			continue
		}
		s.ftran(q)
		t, leave, leaveStat := s.primalRatio(q, dir, false, bland)
		if math.IsInf(t, 1) {
			if !fresh {
				refresh = true
				continue
			}
			if s.pertOn {
				// A ray that only improves the perturbed objective is not
				// proof of unboundedness; re-examine with exact costs.
				s.pertOn = false
				refresh = true
				continue
			}
			return StatusUnbounded
		}
		if leave < 0 {
			// Bound flip of the entering column: x_B shifts along the column,
			// the reduced costs are untouched.
			for i := 0; i < m; i++ {
				s.xB[i] -= dir * t * s.w[i]
			}
			if s.stat[q] == nbLower {
				s.stat[q] = nbUpper
			} else {
				s.stat[q] = nbLower
			}
			s.iters++
			if fresh {
				s.fullPivots++
			} else {
				s.incrPivots++
			}
			continue
		}
		dq := s.d[q]
		vq := s.nbValue(q)
		bcol := int(s.basic[leave])
		incrD := !bland
		if incrD {
			s.devexUpdatePrimal(q, leave) // also fills alphaBuf with the pivot row
			incrD = s.alphaBuf[q] != 0
		}
		for i := 0; i < m; i++ {
			s.xB[i] -= dir * t * s.w[i]
		}
		if !s.pivot(q, leave, leaveStat) {
			return statusNumFail
		}
		s.xB[leave] = vq + dir*t
		if incrD {
			theta := dq / s.alphaBuf[q]
			for j := 0; j < s.in.n; j++ {
				if s.stat[j] == nbBasic || j == bcol {
					continue
				}
				s.d[j] -= theta * s.alphaBuf[j]
			}
			s.d[bcol] = -theta
			s.d[q] = 0
		} else {
			refresh = true
		}
		if fresh {
			s.fullPivots++
		} else {
			s.incrPivots++
		}
		// A refactorization inside pivot invalidates the incremental drift
		// budget; rebuild from the clean factors next round.
		if s.fac.updates() == 0 {
			refresh = true
		}
	}
}

// dual runs the bounded-variable dual simplex from the current basis, which
// must be dual feasible (reduced costs consistent with the nonbasic
// statuses). It restores primal feasibility bound violation by bound
// violation; when none remains the basis is optimal. The leaving row is
// picked by dual devex — the largest violation scaled by the row reference
// weights — which steers repeated warm starts away from the same degenerate
// rows. StatusInfeasible means the subproblem has no feasible point (the
// usual warm-start outcome for a pruned branch-and-bound child).
//
// Two perf structures distinguish it from a textbook loop. First, the
// entering choice is a bound-flipping ratio test (Maros' BFRT): boxed
// nonbasic columns whose breakpoints the dual step passes are flipped to
// their opposite bound inside a single pivot, absorbing runs of degenerate
// breakpoints that used to stall warm starts one zero-progress pivot at a
// time. Second, the basic values and reduced costs are maintained
// incrementally across pivots in O(nnz) — x_B by the pivot column, d by the
// pivot row — with a from-scratch refresh only at loop entry, after a
// refactorization, and on the perturbation switch-off.
func (s *simplexState) dual(budget int) Status {
	in := s.in
	m := in.m
	start := s.iters
	limit := budget
	if limit <= 0 {
		limit = s.callLimit()
	}
	blandAt := 4*(m+in.n) + 50
	for i := range s.rowW {
		s.rowW[i] = 1
	}
	s.pertOn = true
	defer func() { s.pertOn = false }()
	refresh := true
	for {
		if s.iters-start > limit || s.aborted() {
			return StatusIterLimit
		}
		fresh := refresh
		if refresh {
			s.computeXB()
			for i := 0; i < m; i++ {
				s.cbBuf[i] = s.objCost(int(s.basic[i]))
			}
			s.computeDuals(s.cbBuf, s.objCost)
			refresh = false
		}
		// Leaving row: the devex-scaled most violated basic variable.
		r, below := -1, false
		best := 0.0
		for i := 0; i < m; i++ {
			bcol := int(s.basic[i])
			if v := s.lo[bcol] - s.xB[i]; v > feasEps {
				if sc := v * v / s.rowW[i]; sc > best {
					r, below, best = i, true, sc
				}
			}
			if v := s.xB[i] - s.hi[bcol]; v > feasEps {
				if sc := v * v / s.rowW[i]; sc > best {
					r, below, best = i, false, sc
				}
			}
		}
		if r < 0 {
			if !fresh {
				// The incremental x_B says feasible; certify against a clean
				// recompute before leaving the dual loop.
				refresh = true
				continue
			}
			// Primal feasible. The trajectory priced perturbed costs, so the
			// vertex may be a hair off the exact optimum; the exact-cost
			// primal phase 2 certifies (and if needed finishes) it.
			s.pertOn = false
			return s.primalPhase2()
		}
		s.fac.btranRow(r, s.rho)
		bland := s.iters-start > blandAt
		// Pivot row over every column, shared by the ratio test, the reduced-
		// cost update and the flip decisions. One O(nnz) sweep.
		alpha := s.alphaBuf
		for j := 0; j < in.n; j++ {
			if s.stat[j] == nbBasic {
				alpha[j] = 0
				continue
			}
			alpha[j] = in.colDot(s.rho, j)
		}
		bcol := int(s.basic[r])
		delta := s.xB[r] - s.hi[bcol] // violation, positive magnitude below
		if below {
			delta = s.lo[bcol] - s.xB[r]
		}
		q, flips, st2 := s.dualRatioBFRT(below, delta, bland)
		if st2 != StatusOptimal {
			return st2 // infeasible (dual ray)
		}
		if len(flips) > 0 {
			s.applyBoundFlips(flips)
		}
		s.ftran(q)
		if math.Abs(s.w[r]) < 1e-9 {
			return statusNumFail
		}
		leaveStat := int8(nbUpper)
		if below {
			leaveStat = nbLower
		}
		if !bland {
			s.devexUpdateDual(r)
		}
		// Incremental basic-value update: the leaving variable travels to its
		// violated bound, everything else moves along B⁻¹·A_q.
		target := s.hi[bcol]
		if below {
			target = s.lo[bcol]
		}
		tq := (s.xB[r] - target) / s.w[r]
		vq := s.nbValue(q)
		theta := s.d[q] / alpha[q]
		for i := 0; i < m; i++ {
			s.xB[i] -= tq * s.w[i]
		}
		if !s.pivot(q, r, leaveStat) {
			return statusNumFail
		}
		s.xB[r] = vq + tq
		// Incremental reduced-cost update along the pivot row: one dual step
		// of size θ = d_q/α_rq. Flipped columns need no extra term — flips
		// leave the duals untouched.
		for j := 0; j < in.n; j++ {
			if s.stat[j] == nbBasic || j == bcol {
				continue
			}
			s.d[j] -= theta * alpha[j]
		}
		s.d[bcol] = -theta // tableau coefficient of the leaving column is 1
		s.d[q] = 0
		if fresh {
			s.fullPivots++
		} else {
			s.incrPivots++
		}
		// A periodic refactorization inside pivot resets the update counter;
		// refresh the incremental state against the clean factors.
		refresh = s.fac.updates() == 0
	}
}

// bndFlip records one bound-flipping ratio-test decision: nonbasic column
// col moves to its opposite bound, changing its value by delta.
type bndFlip struct {
	col   int32
	delta float64
}

// dualRatioBFRT runs the bound-flipping dual ratio test for a leaving row
// whose basic variable violates by delta (> 0): admissible breakpoints are
// sorted by dual ratio and consumed in order, flipping each boxed column
// whose full range still leaves violation to absorb, until one column
// becomes the entering variable. alphaBuf must hold the pivot row. Under
// Bland's rule no flips are taken and the lowest-index minimum-ratio column
// enters. Returns StatusInfeasible when the candidates run out with
// violation left (a dual ray: the subproblem has no feasible point).
func (s *simplexState) dualRatioBFRT(below bool, delta float64, bland bool) (int, []bndFlip, Status) {
	in := s.in
	alpha := s.alphaBuf
	cand := s.flipCand[:0]
	for j := 0; j < in.n; j++ {
		st := s.stat[j]
		if st == nbBasic {
			continue
		}
		a := alpha[j]
		if math.Abs(a) < feasEps {
			continue
		}
		var ok bool
		if below {
			ok = (st == nbLower && a < 0) || (st == nbUpper && a > 0) || st == nbFree
		} else {
			ok = (st == nbLower && a > 0) || (st == nbUpper && a < 0) || st == nbFree
		}
		if ok {
			cand = append(cand, int32(j))
		}
	}
	s.flipCand = cand // keep the grown backing array
	if len(cand) == 0 {
		return -1, nil, StatusInfeasible
	}
	ratio := func(j int32) float64 {
		dj := s.d[j]
		switch s.stat[j] {
		case nbLower: // dual feasibility means dj >= 0; clamp drift
			if dj < 0 {
				dj = 0
			}
		case nbUpper:
			if dj > 0 {
				dj = 0
			}
		}
		return math.Abs(dj / alpha[j])
	}
	if bland {
		// Plain Bland: minimum ratio, lowest index — guaranteed terminating,
		// no long steps.
		q := int32(-1)
		bestTheta := 0.0
		for _, j := range cand {
			th := ratio(j)
			switch {
			case q < 0 || th < bestTheta-redCostEps:
				q, bestTheta = j, th
			case th < bestTheta+redCostEps && j < q:
				q, bestTheta = j, th
			}
		}
		return int(q), nil, StatusOptimal
	}
	sort.Slice(cand, func(a, b int) bool {
		ta, tb := ratio(cand[a]), ratio(cand[b])
		if ta != tb {
			return ta < tb
		}
		// Equal ratios: prefer the larger pivot element for stability.
		return math.Abs(alpha[cand[a]]) > math.Abs(alpha[cand[b]])
	})
	var flips []bndFlip
	remaining := delta
	for idx, j := range cand {
		rng := s.hi[j] - s.lo[j]
		// Flip capacity: how much of the violation this column's full range
		// absorbs. The last candidate must enter (nothing left to flip to).
		cap_ := math.Abs(alpha[j]) * rng
		if idx == len(cand)-1 || math.IsInf(rng, 1) || cap_ >= remaining-feasEps {
			return int(j), flips, StatusOptimal
		}
		dj := rng
		if s.stat[j] == nbUpper {
			dj = -rng
		}
		flips = append(flips, bndFlip{col: j, delta: dj})
		remaining -= cap_
	}
	return -1, nil, StatusInfeasible // unreachable: loop always returns
}

// applyBoundFlips moves each flipped column to its opposite bound and
// repairs the basic values with a single batched FTRAN: x_B loses
// B⁻¹·(Σ A_j·Δ_j). Reduced costs are untouched — flips never change the
// duals.
func (s *simplexState) applyBoundFlips(flips []bndFlip) {
	in := s.in
	m := in.m
	rhs := s.flipBuf
	for i := range rhs[:m] {
		rhs[i] = 0
	}
	for _, f := range flips {
		j := int(f.col)
		if s.stat[j] == nbLower {
			s.stat[j] = nbUpper
		} else {
			s.stat[j] = nbLower
		}
		if j < in.nStruct {
			for p := in.colPtr[j]; p < in.colPtr[j+1]; p++ {
				rhs[in.rowIdx[p]] += in.val[p] * f.delta
			}
		} else {
			rhs[j-in.nStruct] += f.delta
		}
	}
	s.fac.ftranDense(rhs, s.flipOut)
	for i := 0; i < m; i++ {
		s.xB[i] -= s.flipOut[i]
	}
}

// installSlackBasis resets the state to the all-slack basis with structural
// columns nonbasic. When byCost is true, finite bounds are chosen by the sign
// of the objective coefficient, which makes the slack basis dual feasible
// whenever possible; the return value reports whether it succeeded for every
// column. When false (or for columns where the cost-preferred bound is
// infinite), any finite bound is used.
func (s *simplexState) installSlackBasis(byCost bool) bool {
	in := s.in
	dualOK := true
	for j := 0; j < in.nStruct; j++ {
		cj := in.c[j]
		loF, hiF := !math.IsInf(s.lo[j], -1), !math.IsInf(s.hi[j], 1)
		switch {
		case byCost && cj > redCostEps:
			if loF {
				s.stat[j] = nbLower
			} else {
				dualOK = false
				s.stat[j] = pickBound(loF, hiF)
			}
		case byCost && cj < -redCostEps:
			if hiF {
				s.stat[j] = nbUpper
			} else {
				dualOK = false
				s.stat[j] = pickBound(loF, hiF)
			}
		default:
			s.stat[j] = pickBound(loF, hiF)
		}
		s.pos[j] = -1
	}
	m := in.m
	for i := 0; i < m; i++ {
		col := in.nStruct + i
		s.basic[i] = int32(col)
		s.stat[col] = nbBasic
		s.pos[col] = int32(i)
	}
	s.fac.installIdentity()
	return dualOK
}

func pickBound(loF, hiF bool) int8 {
	switch {
	case loF:
		return nbLower
	case hiF:
		return nbUpper
	default:
		return nbFree
	}
}

// solveCold solves the LP from scratch: a dual simplex from the all-slack
// basis when that basis can be made dual feasible (the common case for the
// paper's fully-bounded formulations), otherwise a two-phase primal.
func (s *simplexState) solveCold() Status {
	if s.installSlackBasis(true) {
		st := s.dual(0)
		if st != statusNumFail {
			return st
		}
		// Numerical breakdown: retry with the primal path below.
	}
	s.installSlackBasis(false)
	if st := s.ctxStatus(s.primalPhase1()); st != StatusOptimal {
		return st
	}
	return s.ctxStatus(s.primalPhase2())
}

// ctxStatus converts a numerical-failure verdict caused by a mid-operation
// context abort (e.g. a cancelled factorization) into the iteration-limit
// verdict the abort classification expects.
func (s *simplexState) ctxStatus(st Status) Status {
	if st == statusNumFail && s.aborted() {
		return StatusIterLimit
	}
	return st
}

// solveWarm re-solves after bound changes from an inherited basis: refactor
// the basis and clean up primal feasibility with the dual simplex. The
// caller falls back to solveCold when it reports statusNumFail.
func (s *simplexState) solveWarm() Status {
	if !s.fac.refactorize() {
		return statusNumFail
	}
	return s.dual(s.warmLimit())
}

// extract maps the current basic solution back to model-variable space,
// including presolve-fixed variables, clamping floating-point noise into the
// working bounds. computeXB must reflect the final basis (both simplex loops
// leave it fresh on StatusOptimal).
func (s *simplexState) extract() []float64 {
	in := s.in
	x := make([]float64, len(in.varCol))
	for v, col := range in.varCol {
		if col < 0 {
			x[v] = in.fixed[v]
			continue
		}
		var xv float64
		switch s.stat[col] {
		case nbBasic:
			xv = s.xB[s.pos[col]]
		case nbLower:
			xv = s.lo[col]
		case nbUpper:
			xv = s.hi[col]
		}
		if xv < s.lo[col] {
			xv = s.lo[col]
		}
		if xv > s.hi[col] {
			xv = s.hi[col]
		}
		x[v] = xv
	}
	return x
}

// SolveLP solves the LP relaxation of m (integrality dropped) with the
// sparse bounded-variable simplex. The returned solution is indexed by
// Var.ID.
func SolveLP(m *Model) (*Solution, error) {
	return solveLPContext(context.Background(), m)
}

// solveLPContext is SolveLP bounded by a context; once ctx is done the solve
// aborts with StatusIterLimit (callers classify the abort).
func solveLPContext(ctx context.Context, m *Model) (*Solution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	in, decided := compile(m, false)
	if decided == StatusInfeasible {
		return &Solution{Status: StatusInfeasible, Stats: SolveStats{Presolve: in.pre}}, nil
	}
	s := newState(in)
	s.ctx = ctx
	status := s.solveCold()
	sol := &Solution{
		Status:     status,
		Iterations: s.iters,
		Stats: SolveStats{
			SimplexIters: s.iters,
			Presolve:     in.pre,
			ColdStarts:   1,
			Workers:      1,
			Factor:       s.fac.snapshot(),
		},
	}
	sol.Stats.Gap = -1
	switch status {
	case statusNumFail:
		return nil, fmt.Errorf("milp: simplex numerical failure (singular basis)")
	case StatusOptimal:
		sol.X = s.extract()
		obj, _ := m.Objective()
		sol.Objective = obj.Eval(sol.X)
		sol.Bound = sol.Objective
		sol.Stats.Gap = 0
	}
	return sol, nil
}
