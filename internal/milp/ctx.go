package milp

import (
	"context"
	"time"
)

// solveDeadline derives the solver's working context from the caller's
// context plus an optional wall-clock limit. A zero limit returns a plain
// cancellable child, so callers always get a uniform context/cancel pair.
// This is the single place the SolveOptions.TimeLimit contract is
// implemented; every solve entry point routes through it.
func solveDeadline(ctx context.Context, limit time.Duration) (context.Context, context.CancelFunc) {
	if limit > 0 {
		return context.WithTimeout(ctx, limit)
	}
	return context.WithCancel(ctx)
}

// abortStatus classifies a solver abort against the two contexts of a solve:
// the caller's ctx and the derived working context. A cancelled caller means
// the whole solve was interrupted (StatusInterrupted); otherwise an expired
// working context means the wall-clock budget ran out (StatusTimeLimit).
// StatusUnknown is returned when neither context has fired, i.e. the abort
// had some other cause.
func abortStatus(caller, solve context.Context) Status {
	if caller.Err() != nil {
		return StatusInterrupted
	}
	if solve.Err() != nil {
		return StatusTimeLimit
	}
	return StatusUnknown
}
