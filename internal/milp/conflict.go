package milp

import (
	"math"
	"sort"
)

// Conflict-graph parameters.
const (
	// conflictRowMax caps the entries of a row mined for pairwise conflicts:
	// a dense row yields quadratically many candidate edges, and long rows
	// are almost never packing-like anyway.
	conflictRowMax = 48
	// cliquePerRound bounds how many clique cuts one separation round emits.
	cliquePerRound = 16
	// conflictPairTol is the slack below which two complemented coefficients
	// exceed a row's capacity and therefore conflict.
	conflictPairTol = 1e-9
)

// ConflictLiteral names one binary literal of a conflict: the variable V
// itself, or its complement 1-V when Neg is set.
type ConflictLiteral struct {
	V   Var
	Neg bool
}

// conflictGraph is an undirected graph over binary-column literals in which
// an edge states that the two literals cannot both be 1 in any
// integer-feasible point. Literals are encoded as 2*col+negBit and mapped to
// dense ids; adjacency is a bitset so clique growth tests are O(1) per
// candidate. The graph is built once per solve from the base instance's rows
// plus the caller-declared conflicts and reused by every separation round.
type conflictGraph struct {
	lits  []int32         // dense id -> literal code (2*col + neg)
	litID map[int32]int32 // literal code -> dense id
	adj   [][]uint64      // adjacency bitsets, one row per dense id
	words int

	// Separation scratch, reused across rounds.
	val  []float64
	ord  []int32
	mask []uint64
	used []bool
}

// litCode packs a structural column and a negation flag into a literal code.
func litCode(col int32, neg bool) int32 {
	c := col << 1
	if neg {
		c |= 1
	}
	return c
}

// ensureLit interns a literal code, growing the adjacency lazily (bitset rows
// are (re)sized by finalize once all literals are known).
func (cg *conflictGraph) ensureLit(code int32) int32 {
	if id, ok := cg.litID[code]; ok {
		return id
	}
	id := int32(len(cg.lits))
	cg.lits = append(cg.lits, code)
	cg.litID[code] = id
	return id
}

// edge buffers one conflict edge during construction.
type conflictEdge struct{ a, b int32 }

// buildConflictGraph assembles the literal conflict graph of the base
// instance: the caller-declared conflict pairs (mapped through presolve's
// column renumbering; pairs touching an eliminated column are dropped) plus
// pairwise conflicts mined from the rows — for every <=-form view of a row
// over binary columns, two complemented coefficients whose sum exceeds the
// complemented right-hand side cannot both be at 1. Returns nil when no
// conflict exists (clique separation is then skipped outright).
func buildConflictGraph(in *instance, conflicts [][2]ConflictLiteral) *conflictGraph {
	cg := &conflictGraph{litID: make(map[int32]int32)}
	var edges []conflictEdge

	isBinary := func(col int32) bool {
		return in.intCol[col] && in.lo[col] == 0 && in.hi[col] == 1
	}
	addEdge := func(a, b int32) {
		if a == b {
			return
		}
		edges = append(edges, conflictEdge{cg.ensureLit(a), cg.ensureLit(b)})
	}

	for _, pair := range conflicts {
		ca := in.varCol[pair[0].V.id]
		cb := in.varCol[pair[1].V.id]
		if ca < 0 || cb < 0 || ca == cb {
			continue // presolve eliminated a side, or degenerate pair
		}
		if !isBinary(int32(ca)) || !isBinary(int32(cb)) {
			continue
		}
		addEdge(litCode(int32(ca), pair[0].Neg), litCode(int32(cb), pair[1].Neg))
	}

	// Row-derived conflicts. Each row yields up to two <=-form views
	// (the >= direction is negated; equalities contribute both).
	coef := make([]float64, 0, conflictRowMax)
	cols := make([]int32, 0, conflictRowMax)
	for i := 0; i < in.m; i++ {
		nn := int(in.rowPtr[i+1] - in.rowPtr[i])
		if nn < 2 || nn > conflictRowMax {
			continue
		}
		slack := in.nStruct + i
		le := in.lo[slack] == 0 && math.IsInf(in.hi[slack], 1)
		ge := math.IsInf(in.lo[slack], -1) && in.hi[slack] == 0
		eq := in.lo[slack] == 0 && in.hi[slack] == 0
		if !le && !ge && !eq {
			continue
		}
		binary := true
		for p := in.rowPtr[i]; p < in.rowPtr[i+1]; p++ {
			if !isBinary(in.rowCol[p]) {
				binary = false
				break
			}
		}
		if !binary {
			continue
		}
		for _, sign := range []float64{1, -1} {
			if sign > 0 && !(le || eq) {
				continue
			}
			if sign < 0 && !(ge || eq) {
				continue
			}
			// Complement negative coefficients: a<0 on x becomes -a on 1-x,
			// shifting the rhs. All complemented coefficients are positive, so
			// the minimum contribution of the unfixed rest is 0 and any pair
			// exceeding the rhs on its own is a genuine conflict.
			rhs := sign * in.b[i]
			coef = coef[:0]
			cols = cols[:0]
			for p := in.rowPtr[i]; p < in.rowPtr[i+1]; p++ {
				a := sign * in.rowVal[p]
				if a == 0 {
					continue
				}
				if a < 0 {
					rhs -= a
					coef = append(coef, -a)
					cols = append(cols, litCode(in.rowCol[p], true))
				} else {
					coef = append(coef, a)
					cols = append(cols, litCode(in.rowCol[p], false))
				}
			}
			for a := 0; a < len(coef); a++ {
				for b := a + 1; b < len(coef); b++ {
					if coef[a]+coef[b] > rhs+conflictPairTol {
						addEdge(cols[a], cols[b])
					}
				}
			}
		}
	}
	if len(edges) == 0 {
		return nil
	}

	n := len(cg.lits)
	cg.words = (n + 63) / 64
	cg.adj = make([][]uint64, n)
	flat := make([]uint64, n*cg.words)
	for i := range cg.adj {
		cg.adj[i] = flat[i*cg.words : (i+1)*cg.words]
	}
	for _, e := range edges {
		cg.adj[e.a][e.b>>6] |= 1 << (uint(e.b) & 63)
		cg.adj[e.b][e.a>>6] |= 1 << (uint(e.a) & 63)
	}
	cg.val = make([]float64, n)
	cg.ord = make([]int32, n)
	cg.mask = make([]uint64, cg.words)
	cg.used = make([]bool, n)
	return cg
}

// litValue is the LP value of a dense literal at the structural point x.
func (cg *conflictGraph) litValue(id int32, x []float64) float64 {
	code := cg.lits[id]
	v := x[code>>1]
	if code&1 == 1 {
		v = 1 - v
	}
	return math.Min(1, math.Max(0, v))
}

// separate finds violated clique cuts at the structural point x: for a
// clique K of pairwise-conflicting literals, sum over K of the literal
// values cannot exceed 1 at any integer-feasible point, so a fractional sum
// beyond 1 is cut off by
//
//	sum_pos x_j - sum_neg x_j <= 1 - #neg.
//
// Cliques are grown greedily from high-value seeds (values descending,
// literal code ascending on ties, so Workers=1 runs are byte-reproducible)
// and extended to maximality with every remaining compatible literal — the
// zero-value extension does not change the violation but strengthens the
// cut. At most cliquePerRound cuts are returned.
func (cg *conflictGraph) separate(x []float64) []*cutRow {
	n := len(cg.lits)
	for i := 0; i < n; i++ {
		cg.val[i] = cg.litValue(int32(i), x)
		cg.ord[i] = int32(i)
		cg.used[i] = false
	}
	sort.Slice(cg.ord, func(a, b int) bool {
		va, vb := cg.val[cg.ord[a]], cg.val[cg.ord[b]]
		if va != vb {
			return va > vb
		}
		return cg.lits[cg.ord[a]] < cg.lits[cg.ord[b]]
	})

	var cuts []*cutRow
	var clique []int32
	for _, seed := range cg.ord {
		if len(cuts) >= cliquePerRound {
			break
		}
		// A seed below the violation watershed cannot start a violated
		// clique: every later member has a value no larger than it.
		if cg.used[seed] || cg.val[seed] <= 0.5 {
			continue
		}
		clique = clique[:0]
		clique = append(clique, seed)
		copy(cg.mask, cg.adj[seed])
		sum := cg.val[seed]
		for _, cand := range cg.ord {
			if cand == seed || cg.mask[cand>>6]&(1<<(uint(cand)&63)) == 0 {
				continue
			}
			clique = append(clique, cand)
			sum += cg.val[cand]
			for w := 0; w < cg.words; w++ {
				cg.mask[w] &= cg.adj[cand][w]
			}
		}
		if len(clique) < 2 || sum <= 1+cutMinEfficacy {
			continue
		}
		cut := cg.cliqueCut(clique, x)
		if cut == nil {
			continue
		}
		for _, id := range clique {
			cg.used[id] = true
		}
		cuts = append(cuts, cut)
	}
	return cuts
}

// cliqueCut lowers a literal clique into a <=-form cutRow over structural
// columns, or nil when the cut fails the efficacy screen at x.
func (cg *conflictGraph) cliqueCut(clique []int32, x []float64) *cutRow {
	cut := &cutRow{rhs: 1}
	for _, id := range clique {
		code := cg.lits[id]
		col := code >> 1
		if code&1 == 1 {
			cut.cols = append(cut.cols, col)
			cut.coef = append(cut.coef, -1)
			cut.rhs--
		} else {
			cut.cols = append(cut.cols, col)
			cut.coef = append(cut.coef, 1)
		}
	}
	// Sort by column and merge a pos/neg pair on the same column (their sum
	// is constant 1); sameCut and extendWithCuts both expect sorted, unique
	// support.
	sort.Sort(&cutColSort{cut})
	w := 0
	for k := 0; k < len(cut.cols); k++ {
		if w > 0 && cut.cols[w-1] == cut.cols[k] {
			cut.coef[w-1] += cut.coef[k]
			continue
		}
		cut.cols[w] = cut.cols[k]
		cut.coef[w] = cut.coef[k]
		w++
	}
	cut.cols = cut.cols[:w]
	k := 0
	for i := 0; i < w; i++ {
		if cut.coef[i] == 0 {
			continue
		}
		cut.cols[k] = cut.cols[i]
		cut.coef[k] = cut.coef[i]
		k++
	}
	cut.cols = cut.cols[:k]
	cut.coef = cut.coef[:k]
	if len(cut.cols) < 2 {
		return nil
	}
	cut.norm = math.Sqrt(float64(len(cut.cols)))
	if cut.violation(x) < cutMinEfficacy*cut.norm {
		return nil
	}
	return cut
}

// cutColSort sorts a cutRow's parallel col/coef slices by column index.
type cutColSort struct{ c *cutRow }

func (s *cutColSort) Len() int           { return len(s.c.cols) }
func (s *cutColSort) Less(i, j int) bool { return s.c.cols[i] < s.c.cols[j] }
func (s *cutColSort) Swap(i, j int) {
	s.c.cols[i], s.c.cols[j] = s.c.cols[j], s.c.cols[i]
	s.c.coef[i], s.c.coef[j] = s.c.coef[j], s.c.coef[i]
}
