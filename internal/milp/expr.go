package milp

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Term is one coefficient–variable product inside a linear expression.
type Term struct {
	Var  Var
	Coef float64
}

// Expr is a linear expression: a sum of terms plus a constant offset.
// The zero value is the empty expression (constant 0) and is ready to use.
// Expressions keep at most one term per variable; adding a variable twice
// accumulates its coefficient.
type Expr struct {
	terms  []Term
	index  map[int]int // var id -> position in terms
	offset float64
}

// NewExpr returns an empty expression with the given constant offset. It
// returns a pointer so construction chains read naturally:
//
//	m.AddLE("c3", *milp.NewExpr(0).Add(x, 3).Add(y, 2), 18)
func NewExpr(offset float64) *Expr {
	return &Expr{offset: offset}
}

// Sum builds an expression as coef*var summed over equal-length slices.
// It panics if the slice lengths differ, since that is always a programming
// error at the call site.
func Sum(vars []Var, coefs []float64) Expr {
	if len(vars) != len(coefs) {
		panic(fmt.Sprintf("milp.Sum: %d vars but %d coefficients", len(vars), len(coefs)))
	}
	var e Expr
	for i, v := range vars {
		e.Add(v, coefs[i])
	}
	return e
}

// VarExpr returns the expression consisting of the single term 1*v.
func VarExpr(v Var) Expr {
	var e Expr
	e.Add(v, 1)
	return e
}

// ensureIndex builds the lookup map lazily; cheap expressions with 1-2 terms
// never allocate it.
func (e *Expr) ensureIndex() {
	if e.index != nil {
		return
	}
	e.index = make(map[int]int, len(e.terms))
	for i, t := range e.terms {
		e.index[t.Var.id] = i
	}
}

// Add accumulates coef*v into the expression and returns the receiver to
// allow chaining.
func (e *Expr) Add(v Var, coef float64) *Expr {
	if coef == 0 {
		return e
	}
	if len(e.terms) < 8 && e.index == nil {
		for i := range e.terms {
			if e.terms[i].Var.id == v.id {
				e.terms[i].Coef += coef
				return e
			}
		}
		e.terms = append(e.terms, Term{Var: v, Coef: coef})
		return e
	}
	e.ensureIndex()
	if i, ok := e.index[v.id]; ok {
		e.terms[i].Coef += coef
		return e
	}
	e.index[v.id] = len(e.terms)
	e.terms = append(e.terms, Term{Var: v, Coef: coef})
	return e
}

// AddConst adds a constant to the expression's offset.
func (e *Expr) AddConst(c float64) *Expr {
	e.offset += c
	return e
}

// AddExpr accumulates every term and the offset of other into e.
func (e *Expr) AddExpr(other Expr) *Expr {
	for _, t := range other.terms {
		e.Add(t.Var, t.Coef)
	}
	e.offset += other.offset
	return e
}

// Scale multiplies every coefficient and the offset by f.
func (e *Expr) Scale(f float64) *Expr {
	for i := range e.terms {
		e.terms[i].Coef *= f
	}
	e.offset *= f
	return e
}

// Terms exposes the term list. Callers must not mutate it.
func (e Expr) Terms() []Term { return e.terms }

// Offset returns the constant part of the expression.
func (e Expr) Offset() float64 { return e.offset }

// Coef returns the coefficient of v (0 if absent).
func (e Expr) Coef(v Var) float64 {
	for _, t := range e.terms {
		if t.Var.id == v.id {
			return t.Coef
		}
	}
	return 0
}

// Clone returns a deep copy of the expression.
func (e Expr) Clone() Expr {
	out := Expr{offset: e.offset}
	if len(e.terms) > 0 {
		out.terms = make([]Term, len(e.terms))
		copy(out.terms, e.terms)
	}
	return out
}

// Eval computes the value of the expression for the assignment x, which is
// indexed by variable id.
func (e Expr) Eval(x []float64) float64 {
	v := e.offset
	for _, t := range e.terms {
		v += t.Coef * x[t.Var.id]
	}
	return v
}

// IsZero reports whether the expression has no terms and no offset.
func (e Expr) IsZero() bool {
	if e.offset != 0 {
		return false
	}
	for _, t := range e.terms {
		if t.Coef != 0 {
			return false
		}
	}
	return true
}

// String renders the expression deterministically (terms sorted by variable
// id), e.g. "2*x0 - 1*x3 + 5".
func (e Expr) String() string {
	terms := make([]Term, len(e.terms))
	copy(terms, e.terms)
	sort.Slice(terms, func(i, j int) bool { return terms[i].Var.id < terms[j].Var.id })
	var b strings.Builder
	first := true
	for _, t := range terms {
		if t.Coef == 0 {
			continue
		}
		if first {
			if t.Coef < 0 {
				b.WriteString("-")
			}
			first = false
		} else if t.Coef < 0 {
			b.WriteString(" - ")
		} else {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%g*x%d", math.Abs(t.Coef), t.Var.id)
	}
	if e.offset != 0 || first {
		if first {
			fmt.Fprintf(&b, "%g", e.offset)
		} else if e.offset > 0 {
			fmt.Fprintf(&b, " + %g", e.offset)
		} else {
			fmt.Fprintf(&b, " - %g", -e.offset)
		}
	}
	return b.String()
}
