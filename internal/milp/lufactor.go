package milp

import "math"

// Sparse LU tuning constants.
const (
	// markowitzThreshold is the relative threshold-pivoting bound u: within a
	// candidate column, an entry qualifies as pivot only if its magnitude is
	// at least u times the column's largest, trading sparsity against element
	// growth (Markowitz 1957; Duff, Erisman & Reid).
	markowitzThreshold = 0.1
	// luPivotFloor is the absolute magnitude below which an entry never
	// pivots; matches the dense kernel's singularity floor.
	luPivotFloor = 1e-10
	// luPivotCols caps how many lowest-count candidate columns one Markowitz
	// search examines (Suhl & Suhl settle for 4); a full scan over every
	// active column runs only when none of them holds an eligible entry.
	luPivotCols = 4
	// ftRelTol rejects a Forrest–Tomlin update whose eliminated diagonal is
	// smaller than this times the spike's largest magnitude — the classic
	// stability escape hatch that forces a refactorization instead of
	// poisoning the factors.
	ftRelTol = 1e-9
)

// luFactor is the sparse kernel: B is held as P·L·U with permutations
// implied by the pivot-order arrays, L as a sequence of column eta
// operations over original row indices, and U as its off-diagonal nonzeros
// mirrored row- and column-wise (column ids are basis positions, row ids
// constraint rows; triangularity is relative to the pivot order, never the
// raw indices). Refactorization is a right-looking elimination with
// Markowitz-threshold pivoting; basis changes are absorbed by Forrest–Tomlin
// updates, which replace the leaving column of U with the entering spike,
// cyclically shift its pivot position to the end, and restore triangularity
// with one row eta — so between refactorizations every solve stays a pair of
// sparse triangular passes plus the accumulated etas.
type luFactor struct {
	in    *instance
	basic []int32 // shared with the owning simplexState
	abort func() bool
	m     int

	// L: eta operations in elimination order, work[lrow] -= lval·work[lpiv].
	lrow, lpiv []int32
	lval       []float64

	// U off-diagonal entries, mirrored; diag is keyed by column id.
	ucolInd [][]int32
	ucolVal [][]float64
	urowInd [][]int32
	urowVal [][]float64
	diag    []float64

	// Pivot order: position k eliminated row prow[k] against column pcol[k].
	prow, pcol     []int32
	posRow, posCol []int32

	// Forrest–Tomlin row etas, applied after L in update order:
	// work[retaRow] -= Σ retaVal·work[retaInd] over the eta's slice.
	retaRow []int32
	retaPtr []int32
	retaInd []int32
	retaVal []float64

	nUpdates int

	// spike caches the partial FTRAN (after L and the row etas, before the
	// U solve) of the column last passed to ftranColumn — exactly the
	// Forrest–Tomlin spike should that column enter the basis.
	spike   []float64
	spikeOK bool

	// solve scratch.
	work    []float64
	lastRow []float64 // dense FT elimination row, keyed by column id
	muInd   []int32
	muVal   []float64

	// refactorization working storage (reused across calls).
	fRowInd    [][]int32
	fRowVal    [][]float64
	fColRows   [][]int32
	fColCnt    []int32
	fRowActive []bool
	fColActive []bool
	fScratch   []float64
	fInPiv     []bool
	fVisited   []bool
	fCand      []int32

	st FactorStats
}

func newLUFactor(in *instance, basic []int32, abort func() bool) *luFactor {
	m := in.m
	f := &luFactor{
		in:    in,
		basic: basic,
		abort: abort,
		m:     m,

		ucolInd: make([][]int32, m),
		ucolVal: make([][]float64, m),
		urowInd: make([][]int32, m),
		urowVal: make([][]float64, m),
		diag:    make([]float64, m),
		prow:    make([]int32, m),
		pcol:    make([]int32, m),
		posRow:  make([]int32, m),
		posCol:  make([]int32, m),

		spike:   make([]float64, m),
		work:    make([]float64, m),
		lastRow: make([]float64, m),

		fRowInd:    make([][]int32, m),
		fRowVal:    make([][]float64, m),
		fColRows:   make([][]int32, m),
		fColCnt:    make([]int32, m),
		fRowActive: make([]bool, m),
		fColActive: make([]bool, m),
		fScratch:   make([]float64, m),
		fInPiv:     make([]bool, m),
		fVisited:   make([]bool, m),

		retaPtr: []int32{0},
		st:      FactorStats{Kernel: "sparse-lu"},
	}
	f.installIdentity()
	return f
}

func (f *luFactor) kind() string          { return "sparse-lu" }
func (f *luFactor) updates() int          { return f.nUpdates }
func (f *luFactor) snapshot() FactorStats { return f.st }

// resetFactors drops L, U and every pending eta.
func (f *luFactor) resetFactors() {
	f.lrow, f.lpiv, f.lval = f.lrow[:0], f.lpiv[:0], f.lval[:0]
	for c := 0; c < f.m; c++ {
		f.ucolInd[c] = f.ucolInd[c][:0]
		f.ucolVal[c] = f.ucolVal[c][:0]
		f.urowInd[c] = f.urowInd[c][:0]
		f.urowVal[c] = f.urowVal[c][:0]
	}
	f.retaRow = f.retaRow[:0]
	f.retaPtr = append(f.retaPtr[:0], 0)
	f.retaInd, f.retaVal = f.retaInd[:0], f.retaVal[:0]
	f.nUpdates = 0
	f.spikeOK = false
}

// installIdentity installs the trivial factorization of the all-slack basis:
// no L etas, a diagonal-only U, and the natural pivot order.
func (f *luFactor) installIdentity() {
	f.resetFactors()
	for k := 0; k < f.m; k++ {
		f.diag[k] = 1
		f.prow[k], f.pcol[k] = int32(k), int32(k)
		f.posRow[k], f.posCol[k] = int32(k), int32(k)
	}
}

// scatterColumn spreads instance column j into the row-indexed dense vector.
func (f *luFactor) scatterColumn(j int, out []float64) {
	in := f.in
	if j >= in.nStruct {
		out[j-in.nStruct] = 1
		return
	}
	for p := in.colPtr[j]; p < in.colPtr[j+1]; p++ {
		out[in.rowIdx[p]] = in.val[p]
	}
}

// applyL runs the L etas and the Forrest–Tomlin row etas over a row-indexed
// vector, completing the "lower" half of an FTRAN.
func (f *luFactor) applyL(w []float64) {
	for k := range f.lrow {
		if v := w[f.lpiv[k]]; v != 0 {
			w[f.lrow[k]] -= f.lval[k] * v
		}
	}
	for e := range f.retaRow {
		acc := 0.0
		for p := f.retaPtr[e]; p < f.retaPtr[e+1]; p++ {
			if v := w[f.retaInd[p]]; v != 0 {
				acc += f.retaVal[p] * v
			}
		}
		w[f.retaRow[e]] -= acc
	}
}

// solveU back-substitutes U over the row-indexed vector w, writing the
// result indexed by basis position into out. w is consumed.
func (f *luFactor) solveU(w, out []float64) {
	for k := f.m - 1; k >= 0; k-- {
		c := f.pcol[k]
		v := w[f.prow[k]] / f.diag[c]
		out[c] = v
		if v != 0 {
			ind, val := f.ucolInd[c], f.ucolVal[c]
			for idx, rr := range ind {
				w[rr] -= val[idx] * v
			}
		}
	}
}

func (f *luFactor) ftranColumn(j int, out []float64) {
	m := f.m
	if m == 0 {
		return
	}
	w := f.work
	for i := range w {
		w[i] = 0
	}
	f.scatterColumn(j, w)
	f.applyL(w)
	copy(f.spike, w)
	f.spikeOK = true
	f.solveU(w, out)
}

func (f *luFactor) ftranDense(rhs, out []float64) {
	if f.m == 0 {
		return
	}
	w := f.work
	copy(w, rhs[:f.m])
	f.applyL(w)
	f.solveU(w, out)
}

// btranInto solves Bᵀ·out = cb with cb read through the get callback (dense
// slice or unit vector), sharing the transposed-solve spine of btranDense
// and btranRow.
func (f *luFactor) btranInto(get func(c int32) float64, out []float64) {
	m := f.m
	if m == 0 {
		return
	}
	w := f.work
	// Uᵀ forward pass in pivot order: every off-diagonal entry of column c
	// lies at an earlier position, so its w value is final when read.
	for k := 0; k < m; k++ {
		c := f.pcol[k]
		acc := get(c)
		ind, val := f.ucolInd[c], f.ucolVal[c]
		for idx, rr := range ind {
			if v := w[rr]; v != 0 {
				acc -= val[idx] * v
			}
		}
		w[f.prow[k]] = acc / f.diag[c]
	}
	// Transposed row etas in reverse update order.
	for e := len(f.retaRow) - 1; e >= 0; e-- {
		if v := w[f.retaRow[e]]; v != 0 {
			for p := f.retaPtr[e]; p < f.retaPtr[e+1]; p++ {
				w[f.retaInd[p]] -= f.retaVal[p] * v
			}
		}
	}
	// Lᵀ in reverse elimination order.
	for k := len(f.lrow) - 1; k >= 0; k-- {
		if v := w[f.lrow[k]]; v != 0 {
			w[f.lpiv[k]] -= f.lval[k] * v
		}
	}
	copy(out[:m], w)
}

func (f *luFactor) btranDense(cb, out []float64) {
	f.btranInto(func(c int32) float64 { return cb[c] }, out)
}

func (f *luFactor) btranRow(r int, out []float64) {
	f.btranInto(func(c int32) float64 {
		if int(c) == r {
			return 1
		}
		return 0
	}, out)
}

// update absorbs the basis change that replaces basis position r with the
// column whose spike ftranColumn just cached. Following Forrest–Tomlin, the
// leaving column of U is replaced by the spike, its pivot position cycles to
// the end of the order, and the leaving pivot row — now the bottom row — is
// eliminated against the diagonals it crosses, yielding one row eta and the
// new bottom-right diagonal. The elimination is computed read-only first so
// a rejected update (vanishing diagonal) leaves the factors untouched for
// the caller's refactorize-and-retry path.
func (f *luFactor) update(r int, w []float64) bool {
	_ = w // the dense kernel pivots on w; FT consumes the cached spike
	if !f.spikeOK {
		return false
	}
	f.spikeOK = false
	m := f.m
	t := int(f.posCol[r])
	rr := int(f.prow[t])
	s := f.spike

	// Phase 1 (read-only): eliminate the displaced pivot row against the
	// shifted positions, collecting multipliers and the new diagonal.
	last := f.lastRow
	rInd, rVal := f.urowInd[rr], f.urowVal[rr]
	for idx, cc := range rInd {
		last[cc] = rVal[idx]
	}
	f.muInd, f.muVal = f.muInd[:0], f.muVal[:0]
	d := s[rr]
	smax := 0.0
	for _, v := range s {
		if av := math.Abs(v); av > smax {
			smax = av
		}
	}
	for k := t + 1; k < m; k++ {
		ck := f.pcol[k]
		piv := last[ck]
		last[ck] = 0
		if piv == 0 {
			continue
		}
		rk := f.prow[k]
		mu := piv / f.diag[ck]
		f.muInd = append(f.muInd, rk)
		f.muVal = append(f.muVal, mu)
		rI, rV := f.urowInd[rk], f.urowVal[rk]
		for idx, cc := range rI {
			last[cc] -= mu * rV[idx]
		}
		d -= mu * s[rk]
	}
	if math.Abs(d) < luPivotFloor || math.Abs(d) < ftRelTol*smax {
		// Unstable elimination: leave the (still valid) factors alone. The
		// lastRow scratch is already zero again — every surviving position
		// was visited and cleared above, and fills land on later positions.
		f.st.UpdatesRejected++
		return false
	}

	// Phase 2 (commit): drop the leaving column and the displaced row,
	// append the row eta, insert the spike column, and cycle the order.
	for _, rv := range f.ucolInd[r] {
		f.removeRowEntry(int(rv), int32(r))
	}
	f.ucolInd[r], f.ucolVal[r] = f.ucolInd[r][:0], f.ucolVal[r][:0]
	for _, cc := range f.urowInd[rr] {
		f.removeColEntry(cc, int32(rr))
	}
	f.urowInd[rr], f.urowVal[rr] = f.urowInd[rr][:0], f.urowVal[rr][:0]

	if len(f.muInd) > 0 {
		f.retaRow = append(f.retaRow, int32(rr))
		f.retaInd = append(f.retaInd, f.muInd...)
		f.retaVal = append(f.retaVal, f.muVal...)
		f.retaPtr = append(f.retaPtr, int32(len(f.retaInd)))
	}

	for i, v := range s {
		if v == 0 || i == rr {
			continue
		}
		f.ucolInd[r] = append(f.ucolInd[r], int32(i))
		f.ucolVal[r] = append(f.ucolVal[r], v)
		f.urowInd[i] = append(f.urowInd[i], int32(r))
		f.urowVal[i] = append(f.urowVal[i], v)
	}
	f.diag[r] = d

	for k := t; k < m-1; k++ {
		f.prow[k], f.pcol[k] = f.prow[k+1], f.pcol[k+1]
		f.posRow[f.prow[k]], f.posCol[f.pcol[k]] = int32(k), int32(k)
	}
	f.prow[m-1], f.pcol[m-1] = int32(rr), int32(r)
	f.posRow[rr], f.posCol[r] = int32(m-1), int32(m-1)

	f.nUpdates++
	f.st.Updates++
	return true
}

// removeRowEntry deletes column c from U row rw (swap-delete).
func (f *luFactor) removeRowEntry(rw int, c int32) {
	ind, val := f.urowInd[rw], f.urowVal[rw]
	for idx := range ind {
		if ind[idx] == c {
			last := len(ind) - 1
			ind[idx], val[idx] = ind[last], val[last]
			f.urowInd[rw], f.urowVal[rw] = ind[:last], val[:last]
			return
		}
	}
}

// removeColEntry deletes row rw from U column c (swap-delete).
func (f *luFactor) removeColEntry(c, rw int32) {
	ind, val := f.ucolInd[c], f.ucolVal[c]
	for idx := range ind {
		if ind[idx] == rw {
			last := len(ind) - 1
			ind[idx], val[idx] = ind[last], val[last]
			f.ucolInd[c], f.ucolVal[c] = ind[:last], val[:last]
			return
		}
	}
}

// refactorize runs the right-looking Markowitz-threshold elimination on the
// current basis. Returns false on a numerically singular basis or a
// mid-factorization abort.
func (f *luFactor) refactorize() bool {
	m := f.m
	f.resetFactors()
	f.st.Refactorizations++
	if m == 0 {
		return true
	}
	basisNnz := f.buildWorking()

	for k := 0; k < m; k++ {
		if k&15 == 0 && f.abort != nil && f.abort() {
			return false
		}
		pr, pc, pv, ok := f.selectPivot()
		if !ok {
			return false
		}
		f.eliminate(k, pr, pc, pv)
	}

	nnzLU := len(f.lval) + m
	for c := 0; c < m; c++ {
		nnzLU += len(f.ucolInd[c])
	}
	if basisNnz > 0 {
		if ratio := float64(nnzLU) / float64(basisNnz); ratio > f.st.FillRatio {
			f.st.FillRatio = ratio
		}
	}
	return true
}

// buildWorking assembles the active working matrix from the basis columns
// and returns its nonzero count.
func (f *luFactor) buildWorking() int {
	in := f.in
	m := f.m
	for i := 0; i < m; i++ {
		f.fRowInd[i] = f.fRowInd[i][:0]
		f.fRowVal[i] = f.fRowVal[i][:0]
		f.fColRows[i] = f.fColRows[i][:0]
		f.fColCnt[i] = 0
		f.fRowActive[i] = true
		f.fColActive[i] = true
	}
	nnz := 0
	add := func(rw int32, c int32, v float64) {
		f.fRowInd[rw] = append(f.fRowInd[rw], c)
		f.fRowVal[rw] = append(f.fRowVal[rw], v)
		f.fColRows[c] = append(f.fColRows[c], rw)
		f.fColCnt[c]++
		nnz++
	}
	for c := 0; c < m; c++ {
		j := int(f.basic[c])
		if j >= in.nStruct {
			add(int32(j-in.nStruct), int32(c), 1)
			continue
		}
		for p := in.colPtr[j]; p < in.colPtr[j+1]; p++ {
			add(in.rowIdx[p], int32(c), in.val[p])
		}
	}
	return nnz
}

// entryValue scans row rw for column c; explicit zeros count as present.
func (f *luFactor) entryValue(rw int32, c int32) float64 {
	ind := f.fRowInd[rw]
	for idx := range ind {
		if ind[idx] == c {
			return f.fRowVal[rw][idx]
		}
	}
	return 0
}

// selectPivot runs the Markowitz-threshold search: examine the lowest-count
// active columns (up to luPivotCols of them), admit entries within
// markowitzThreshold of their column's magnitude, and pick the admitted
// entry minimizing (rowCount−1)·(colCount−1), larger magnitude breaking
// ties. Falls back to a full column scan when the low-count columns offer
// nothing, and reports failure — a singular basis — when no column does.
func (f *luFactor) selectPivot() (int32, int32, float64, bool) {
	m := f.m
	// Gather the luPivotCols active columns with the smallest counts.
	f.fCand = f.fCand[:0]
	for c := 0; c < m; c++ {
		if !f.fColActive[c] {
			continue
		}
		if f.fColCnt[c] == 0 {
			return 0, 0, 0, false // structurally singular
		}
		cnt := f.fColCnt[c]
		pos := len(f.fCand)
		if pos < luPivotCols {
			f.fCand = append(f.fCand, int32(c))
		} else if cnt < f.fColCnt[f.fCand[luPivotCols-1]] {
			pos = luPivotCols - 1
			f.fCand[pos] = int32(c)
		} else {
			continue
		}
		for pos > 0 && f.fColCnt[f.fCand[pos]] < f.fColCnt[f.fCand[pos-1]] {
			f.fCand[pos], f.fCand[pos-1] = f.fCand[pos-1], f.fCand[pos]
			pos--
		}
	}
	if pr, pc, pv, ok := f.bestInColumns(f.fCand); ok {
		return pr, pc, pv, true
	}
	// Rare fallback: every low-count column was numerically hopeless; scan
	// all active columns before declaring the basis singular.
	f.fCand = f.fCand[:0]
	for c := 0; c < m; c++ {
		if f.fColActive[c] {
			f.fCand = append(f.fCand, int32(c))
		}
	}
	return f.bestInColumns(f.fCand)
}

// bestInColumns applies the threshold test and Markowitz cost over the given
// candidate columns.
func (f *luFactor) bestInColumns(cols []int32) (int32, int32, float64, bool) {
	bestRow, bestCol := int32(-1), int32(-1)
	bestVal := 0.0
	bestCost := math.Inf(1)
	for _, c := range cols {
		colMax := 0.0
		for _, rw := range f.fColRows[c] {
			if !f.fRowActive[rw] {
				continue
			}
			if av := math.Abs(f.entryValue(rw, c)); av > colMax {
				colMax = av
			}
		}
		if colMax < luPivotFloor {
			continue
		}
		thresh := markowitzThreshold * colMax
		if thresh < luPivotFloor {
			thresh = luPivotFloor
		}
		ccnt := float64(f.fColCnt[c] - 1)
		for _, rw := range f.fColRows[c] {
			if !f.fRowActive[rw] {
				continue
			}
			v := f.entryValue(rw, c)
			if math.Abs(v) < thresh {
				continue
			}
			cost := float64(len(f.fRowInd[rw])-1) * ccnt
			if cost < bestCost || (cost == bestCost && math.Abs(v) > math.Abs(bestVal)) {
				bestRow, bestCol, bestVal, bestCost = rw, c, v, cost
			}
		}
		if bestCost == 0 {
			break
		}
	}
	return bestRow, bestCol, bestVal, bestRow >= 0
}

// eliminate performs elimination step k on pivot (pr, pc) with value pv: the
// pivot row's remainder becomes U row k, and every other active row holding
// column pc is updated, recording its multiplier as an L eta.
func (f *luFactor) eliminate(k int, pr, pc int32, pv float64) {
	f.prow[k], f.pcol[k] = pr, pc
	f.posRow[pr], f.posCol[pc] = int32(k), int32(k)
	f.diag[pc] = pv

	// The pivot row's surviving entries are final U entries; spread them
	// into the scratch for the row updates below.
	rInd, rVal := f.fRowInd[pr], f.fRowVal[pr]
	for idx, cc := range rInd {
		if cc == pc {
			continue
		}
		v := rVal[idx]
		f.ucolInd[cc] = append(f.ucolInd[cc], pr)
		f.ucolVal[cc] = append(f.ucolVal[cc], v)
		f.urowInd[pr] = append(f.urowInd[pr], cc)
		f.urowVal[pr] = append(f.urowVal[pr], v)
		f.fColCnt[cc]--
		f.fScratch[cc] = v
		f.fInPiv[cc] = true
	}
	f.fRowActive[pr] = false
	f.fColActive[pc] = false

	for _, rw := range f.fColRows[pc] {
		if !f.fRowActive[rw] {
			continue
		}
		// Extract and remove this row's pivot-column entry.
		ind, val := f.fRowInd[rw], f.fRowVal[rw]
		vi := 0.0
		for idx := range ind {
			if ind[idx] == pc {
				vi = val[idx]
				last := len(ind) - 1
				ind[idx], val[idx] = ind[last], val[last]
				f.fRowInd[rw], f.fRowVal[rw] = ind[:last], val[:last]
				break
			}
		}
		if vi == 0 {
			continue // explicit zero from earlier cancellation
		}
		l := vi / pv
		f.lrow = append(f.lrow, rw)
		f.lpiv = append(f.lpiv, pr)
		f.lval = append(f.lval, l)
		// row rw -= l · (pivot row remainder), fills appended.
		ind, val = f.fRowInd[rw], f.fRowVal[rw]
		for idx, cc := range ind {
			if f.fInPiv[cc] {
				val[idx] -= l * f.fScratch[cc]
				f.fVisited[cc] = true
			}
		}
		for idx, cc := range f.urowInd[pr] {
			if f.fVisited[cc] {
				f.fVisited[cc] = false
				continue
			}
			fillV := -l * f.urowVal[pr][idx]
			f.fRowInd[rw] = append(f.fRowInd[rw], cc)
			f.fRowVal[rw] = append(f.fRowVal[rw], fillV)
			f.fColRows[cc] = append(f.fColRows[cc], rw)
			f.fColCnt[cc]++
		}
	}
	for _, cc := range f.urowInd[pr] {
		f.fInPiv[cc] = false
		f.fScratch[cc] = 0
	}
}
