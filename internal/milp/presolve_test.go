package milp

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestPresolveSingletonRowBecomesBound(t *testing.T) {
	// 3x <= 250 with x integer in [0,100] must become hi=83 and vanish.
	m := NewModel()
	x := m.NewInteger("x", 0, 100)
	m.AddLE("c", *NewExpr(0).Add(x, 3), 250)
	m.SetObjective(VarExpr(x), Maximize)

	in, st := compile(m, true)
	if st == StatusInfeasible {
		t.Fatal("presolve declared a feasible model infeasible")
	}
	if in.m != 0 {
		t.Errorf("rows after presolve = %d, want 0 (singleton absorbed)", in.m)
	}
	if in.pre.RemovedRows != 1 {
		t.Errorf("RemovedRows = %d, want 1", in.pre.RemovedRows)
	}
	if in.pre.TightenedBounds == 0 {
		t.Error("expected a tightened bound from the singleton row")
	}
	sol, err := Solve(m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || !almostEq(sol.Objective, 83, 1e-9) {
		t.Errorf("objective = %v (%v), want 83", sol.Objective, sol.Status)
	}
}

func TestPresolveFixesVariables(t *testing.T) {
	// x + y = 2 with binaries forces x = y = 1; the whole model presolves away.
	m := NewModel()
	x := m.NewBinary("x")
	y := m.NewBinary("y")
	m.AddEQ("both", *NewExpr(0).Add(x, 1).Add(y, 1), 2)
	m.SetObjective(*NewExpr(0).Add(x, 3).Add(y, 5), Minimize)

	in, st := compile(m, true)
	if st == StatusInfeasible {
		t.Fatal("feasible model declared infeasible")
	}
	if in.pre.FixedCols != 2 {
		t.Errorf("FixedCols = %d, want 2", in.pre.FixedCols)
	}
	sol, err := Solve(m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || !almostEq(sol.Objective, 8, 1e-9) {
		t.Errorf("objective = %v (%v), want 8", sol.Objective, sol.Status)
	}
	if !almostEq(sol.Value(x), 1, 1e-9) || !almostEq(sol.Value(y), 1, 1e-9) {
		t.Errorf("solution = (%v, %v), want (1, 1)", sol.Value(x), sol.Value(y))
	}
	if sol.Stats.Presolve.FixedCols != 2 {
		t.Errorf("Stats.Presolve.FixedCols = %d, want 2", sol.Stats.Presolve.FixedCols)
	}
}

func TestPresolveInfeasibleByPropagation(t *testing.T) {
	// x + y <= 1 with x >= 1 and y >= 1 (integers): propagation alone proves
	// infeasibility, so branch and bound must report it with zero nodes.
	m := NewModel()
	x := m.NewInteger("x", 1, 10)
	y := m.NewInteger("y", 1, 10)
	m.AddLE("cap", *NewExpr(0).Add(x, 1).Add(y, 1), 1)
	m.SetObjective(VarExpr(x), Minimize)

	sol, err := Solve(m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
	if sol.Stats.Nodes != 0 {
		t.Errorf("nodes = %d, want 0 (presolve should decide before search)", sol.Stats.Nodes)
	}
}

func TestPresolveIntegerRoundingInfeasible(t *testing.T) {
	// An integer variable confined to (0.3, 0.7) has no integral value.
	m := NewModel()
	x := m.NewInteger("x", 0.3, 0.7)
	m.SetObjective(VarExpr(x), Minimize)
	sol, err := Solve(m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
	// The pure LP relaxation of the same model is feasible: rounding must
	// only apply to the MILP path.
	lp, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Status != StatusOptimal || !almostEq(lp.Value(x), 0.3, 1e-9) {
		t.Errorf("LP relaxation = %v (%v), want x=0.3 optimal", lp.Value(x), lp.Status)
	}
}

func TestPresolveRedundantRowRemoved(t *testing.T) {
	// x + y <= 100 is implied by the bounds x,y in [0,10].
	m := NewModel()
	x := m.NewContinuous("x", 0, 10)
	y := m.NewContinuous("y", 0, 10)
	m.AddLE("loose", *NewExpr(0).Add(x, 1).Add(y, 1), 100)
	m.AddLE("tight", *NewExpr(0).Add(x, 1).Add(y, 1), 5)
	m.SetObjective(*NewExpr(0).Add(x, -1).Add(y, -1), Minimize) // max x+y

	in, st := compile(m, false)
	if st == StatusInfeasible {
		t.Fatal("feasible model declared infeasible")
	}
	if in.m != 1 {
		t.Errorf("rows after presolve = %d, want 1 (loose row dropped)", in.m)
	}
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || !almostEq(sol.Objective, -5, 1e-9) {
		t.Errorf("objective = %v (%v), want -5", sol.Objective, sol.Status)
	}
}

func TestPresolvePropagationChain(t *testing.T) {
	// A chain of equalities x1 = 1, x2 = x1 + 1, x3 = x2 + 1 collapses
	// completely by repeated substitution rounds.
	m := NewModel()
	x1 := m.NewContinuous("x1", 0, 100)
	x2 := m.NewContinuous("x2", 0, 100)
	x3 := m.NewContinuous("x3", 0, 100)
	m.AddEQ("e1", VarExpr(x1), 1)
	m.AddEQ("e2", *NewExpr(0).Add(x2, 1).Add(x1, -1), 1)
	m.AddEQ("e3", *NewExpr(0).Add(x3, 1).Add(x2, -1), 1)
	m.SetObjective(VarExpr(x3), Minimize)

	in, st := compile(m, false)
	if st == StatusInfeasible {
		t.Fatal("feasible model declared infeasible")
	}
	if in.nStruct != 0 || in.m != 0 {
		t.Errorf("instance %dx%d after presolve, want empty (full collapse)", in.m, in.nStruct)
	}
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || !almostEq(sol.Value(x3), 3, 1e-6) {
		t.Errorf("x3 = %v (%v), want 3", sol.Value(x3), sol.Status)
	}
}

func TestPresolveKeepsUnboundedColumns(t *testing.T) {
	// A variable outside every constraint with an unbounded improving
	// direction must stay in the LP so the simplex can prove unboundedness.
	m := NewModel()
	x := m.NewContinuous("x", 0, Inf)
	y := m.NewContinuous("y", 0, 1)
	m.AddLE("cy", VarExpr(y), 1)
	m.SetObjective(*NewExpr(0).Add(x, 1).Add(y, 1), Maximize)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveDeadlineHelper(t *testing.T) {
	// Zero limit: plain cancellable child of the caller.
	ctx, cancel := solveDeadline(t.Context(), 0)
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero limit must not set a deadline")
	}
	if st := abortStatus(t.Context(), ctx); st != StatusUnknown {
		t.Errorf("abortStatus with live contexts = %v, want unknown", st)
	}
	cancel()
	if st := abortStatus(t.Context(), ctx); st != StatusTimeLimit {
		t.Errorf("abortStatus with expired solve ctx = %v, want time-limit", st)
	}

	// Positive limit: deadline derived from the caller.
	ctx2, cancel2 := solveDeadline(t.Context(), time.Minute)
	defer cancel2()
	if _, ok := ctx2.Deadline(); !ok {
		t.Error("positive limit must set a deadline")
	}

	// A cancelled caller dominates the classification.
	caller, cancelCaller := context.WithCancel(context.Background())
	ctx3, cancel3 := solveDeadline(caller, time.Nanosecond)
	defer cancel3()
	cancelCaller()
	if st := abortStatus(caller, ctx3); st != StatusInterrupted {
		t.Errorf("abortStatus with cancelled caller = %v, want interrupted", st)
	}
}

func TestCompileBoundsNativeNoArtificials(t *testing.T) {
	// The compiled instance must carry exactly nStruct+m columns — bounds
	// are native, so no split free variables and no artificial columns.
	m := NewModel()
	x := m.NewContinuous("x", -5, 5)
	y := m.NewContinuous("y", math.Inf(-1), Inf) // free
	m.AddGE("g", *NewExpr(0).Add(x, 1).Add(y, 1), 1)
	m.AddEQ("e", *NewExpr(0).Add(x, 2).Add(y, -1), 0)
	m.SetObjective(*NewExpr(0).Add(x, 1).Add(y, 2), Minimize)

	in, st := compile(m, false)
	if st == StatusInfeasible {
		t.Fatal("feasible model declared infeasible")
	}
	if in.n != in.nStruct+in.m {
		t.Errorf("columns = %d, want nStruct+m = %d", in.n, in.nStruct+in.m)
	}
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	// x + y >= 1 and y = 2x meet at x = 1/3, y = 2/3: objective 1/3 + 4/3.
	if sol.Status != StatusOptimal || !almostEq(sol.Objective, 5.0/3, 1e-6) {
		t.Errorf("objective = %v (%v), want 5/3", sol.Objective, sol.Status)
	}
}
