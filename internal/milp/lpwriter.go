package milp

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteLP renders the model in CPLEX LP text format, which Gurobi and every
// mainstream solver can read. It exists for debugging and for exporting the
// exact formulations the paper solves, so a reader with a commercial solver
// can cross-check this repository's built-in solver.
func WriteLP(w io.Writer, m *Model) error {
	obj, sense := m.Objective()
	if sense == Maximize {
		if _, err := io.WriteString(w, "Maximize\n"); err != nil {
			return err
		}
	} else {
		if _, err := io.WriteString(w, "Minimize\n"); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, " obj: %s\n", lpExpr(m, obj)); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "Subject To\n"); err != nil {
		return err
	}
	for i := 0; i < m.NumConstraints(); i++ {
		c := m.Constraint(i)
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("c%d", i)
		}
		rhs := c.RHS - c.Expr.Offset()
		if _, err := fmt.Fprintf(w, " %s: %s %s %s\n",
			sanitizeLPName(name), lpExpr(m, withoutOffset(c.Expr)), c.Rel, lpFloat(rhs)); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "Bounds\n"); err != nil {
		return err
	}
	for i := 0; i < m.NumVars(); i++ {
		v := Var{id: i}
		lo, hi := m.Bounds(v)
		name := lpVarName(m, v)
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			fmt.Fprintf(w, " %s free\n", name)
		case math.IsInf(lo, -1):
			fmt.Fprintf(w, " -inf <= %s <= %s\n", name, lpFloat(hi))
		case math.IsInf(hi, 1):
			fmt.Fprintf(w, " %s >= %s\n", name, lpFloat(lo))
		default:
			fmt.Fprintf(w, " %s <= %s <= %s\n", lpFloat(lo), name, lpFloat(hi))
		}
	}
	var bins, gens []string
	for i := 0; i < m.NumVars(); i++ {
		v := Var{id: i}
		switch m.Type(v) {
		case Binary:
			bins = append(bins, lpVarName(m, v))
		case Integer:
			gens = append(gens, lpVarName(m, v))
		}
	}
	if len(bins) > 0 {
		fmt.Fprintf(w, "Binary\n %s\n", strings.Join(bins, " "))
	}
	if len(gens) > 0 {
		fmt.Fprintf(w, "General\n %s\n", strings.Join(gens, " "))
	}
	_, err := io.WriteString(w, "End\n")
	return err
}

func withoutOffset(e Expr) Expr {
	c := e.Clone()
	c.offset = 0
	return c
}

// lpFloat renders a coefficient, bound or right-hand side with full
// round-trip precision ('g', 17 significant digits), so a solver reading the
// exported file reproduces this solver's arithmetic bit for bit. The default
// %g formatting rounds to shortest-looking decimals and silently perturbs
// the model — exactly the class of drift the per-pair big-M formulation can
// no longer afford.
func lpFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 17, 64)
}

// lpVarName returns the variable's declared name, or a synthetic xN, made
// safe for the LP format.
func lpVarName(m *Model, v Var) string {
	name := m.VarName(v)
	if name == "" {
		return fmt.Sprintf("x%d", v.id)
	}
	return sanitizeLPName(name)
}

func sanitizeLPName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '(', r == ')':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	s := b.String()
	if s == "" {
		return "_"
	}
	if s[0] >= '0' && s[0] <= '9' {
		return "_" + s
	}
	return s
}

// lpExpr renders an expression deterministically by ascending variable id.
func lpExpr(m *Model, e Expr) string {
	ids := sortedVarIDs(e)
	var b strings.Builder
	first := true
	for _, id := range ids {
		v := Var{id: id}
		coef := e.Coef(v)
		if coef == 0 {
			continue
		}
		if first {
			if coef < 0 {
				b.WriteString("- ")
			}
			first = false
		} else if coef < 0 {
			b.WriteString(" - ")
		} else {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%s %s", lpFloat(math.Abs(coef)), lpVarName(m, v))
	}
	if first {
		b.WriteString("0")
	}
	if off := e.Offset(); off != 0 {
		if off > 0 {
			fmt.Fprintf(&b, " + %s", lpFloat(off))
		} else {
			fmt.Fprintf(&b, " - %s", lpFloat(-off))
		}
	}
	return b.String()
}
