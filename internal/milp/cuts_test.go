package milp

import (
	"context"
	"math"
	"testing"
)

// solveRootState compiles m and solves its LP relaxation cold, returning the
// instance and optimal simplex state.
func solveRootState(t *testing.T, m *Model) (*instance, *simplexState) {
	t.Helper()
	in, decided := compile(m, true)
	if decided != StatusUnknown {
		t.Fatalf("compile decided the model outright: %v", decided)
	}
	st := newState(in)
	if status := st.solveCold(); status != StatusOptimal {
		t.Fatalf("root relaxation status = %v, want optimal", status)
	}
	return in, st
}

// structPoint extracts the structural-column values of the state.
func structPoint(in *instance, st *simplexState) []float64 {
	x := make([]float64, in.nStruct)
	for j := range x {
		x[j] = st.colValue(j)
	}
	return x
}

// TestGomoryHandChecked derives the GMI cut of a hand-solved tableau. For
//
//	min -x-y  s.t.  2x+2y <= 3,  x,y binary
//
// the relaxation optimum sits on 2x+2y=3 with one binary basic at 1/2
// (bhat = 1/2, f0 = 1/2). The boxed nonbasic binary has tableau coefficient
// 1, so its shifted fractional part vanishes and it drops out; the slack
// (continuous, at lower bound 0) has tableau coefficient 1/2, giving
// gamma = (1/2)/f0 = 1 and the cut s >= 1/2. Substituting s = 3-2x-2y yields
// 2x+2y <= 5/2 — which cuts the vertex and is tight at both integer optima.
func TestGomoryHandChecked(t *testing.T) {
	m := NewModel()
	x := m.NewBinary("x")
	y := m.NewBinary("y")
	m.AddLE("cap", *NewExpr(0).Add(x, 2).Add(y, 2), 3)
	m.SetObjective(*NewExpr(0).Add(x, -1).Add(y, -1), Minimize)

	in, st := solveRootState(t, m)
	pt := structPoint(in, st)

	sep := newCutSeparator(in)
	var cut *cutRow
	for r := 0; r < in.m; r++ {
		if c := sep.gomoryFromRow(st, r, pt); c != nil {
			cut = c
			break
		}
	}
	if cut == nil {
		t.Fatal("no Gomory cut separated from the fractional row")
	}
	// Expect exactly 2x + 2y <= 2.5 (column order is sorted, both present).
	if len(cut.cols) != 2 {
		t.Fatalf("cut support = %v, want both structural columns", cut.cols)
	}
	for k, j := range cut.cols {
		if got := cut.coef[k]; math.Abs(got-2) > 1e-9 {
			t.Errorf("coef of column %d = %g, want 2", j, got)
		}
	}
	if math.Abs(cut.rhs-2.5) > 1e-9 {
		t.Errorf("rhs = %g, want 2.5", cut.rhs)
	}
	if v := cut.violation(pt); v < cutMinEfficacy {
		t.Errorf("cut does not cut off the LP vertex: violation %g", v)
	}
	// Both integer optima (1,0) and (0,1) must stay feasible — and tight.
	for _, p := range [][]float64{{1, 0}, {0, 1}, {0, 0}, {1, 1}} {
		feasible := 2*p[0]+2*p[1] <= 3
		viol := cut.violation(p)
		if feasible && viol > 1e-9 {
			t.Errorf("cut cuts off integer-feasible point %v by %g", p, viol)
		}
	}
}

// TestCoverHandChecked separates a cover cut from the knapsack
// 3a + 4b + 5c <= 6 at the fractional point (1, 0.9, 0): the greedy minimal
// cover is {a, b} (3+4 > 6), giving a + b <= 1, violated by 0.9. The
// non-cover column c (weight 5) lifts with gamma = 1 (mu_1 = 4 <= 5 < 7 =
// mu_2), strengthening the cut to a + b + c <= 1 — valid because c = 1
// leaves room for neither a nor b.
func TestCoverHandChecked(t *testing.T) {
	m := NewModel()
	a := m.NewBinary("a")
	b := m.NewBinary("b")
	c := m.NewBinary("c")
	m.AddLE("knap", *NewExpr(0).Add(a, 3).Add(b, 4).Add(c, 5), 6)
	m.SetObjective(*NewExpr(0).Add(a, -1).Add(b, -1).Add(c, -1), Minimize)

	in, decided := compile(m, true)
	if decided != StatusUnknown {
		t.Fatalf("compile decided the model outright: %v", decided)
	}
	sep := newCutSeparator(in)
	pt := make([]float64, in.nStruct)
	pt[in.varCol[a.ID()]] = 1
	pt[in.varCol[b.ID()]] = 0.9
	cut := sep.coverFromRow(0, pt)
	if cut == nil {
		t.Fatal("no cover cut separated")
	}
	if len(cut.cols) != 3 {
		t.Fatalf("cover support %v, want {a, b} plus lifted c", cut.cols)
	}
	for k := range cut.cols {
		if math.Abs(cut.coef[k]-1) > 1e-9 {
			t.Errorf("coef[%d] = %g, want 1", k, cut.coef[k])
		}
	}
	if math.Abs(cut.rhs-1) > 1e-9 {
		t.Errorf("rhs = %g, want 1", cut.rhs)
	}
	if !cut.lifted {
		t.Error("cut not marked lifted despite the lifted c coefficient")
	}
	// Validity on every feasible binary assignment of the knapsack.
	for bits := 0; bits < 8; bits++ {
		p := []float64{float64(bits & 1), float64(bits >> 1 & 1), float64(bits >> 2 & 1)}
		if 3*p[0]+4*p[1]+5*p[2] > 6 {
			continue
		}
		if cut.violation(p) > 1e-9 {
			t.Errorf("cover cut cuts off feasible point %v", p)
		}
	}
}

// TestCoverComplemented exercises the negative-coefficient complement path:
// 4a - 3b <= 2 complements b (y = 1-b) into 4a + 3y <= 5, whose cover
// {a, y} gives a + (1-b) <= 1, i.e. a - b <= 0. The point (0.95, 0.1)
// violates it; every feasible binary point satisfies it.
func TestCoverComplemented(t *testing.T) {
	m := NewModel()
	a := m.NewBinary("a")
	b := m.NewBinary("b")
	m.AddLE("knap", *NewExpr(0).Add(a, 4).Add(b, -3), 2)
	m.SetObjective(*NewExpr(0).Add(a, -1), Minimize)

	in, decided := compile(m, true)
	if decided != StatusUnknown {
		t.Fatalf("compile decided the model outright: %v", decided)
	}
	sep := newCutSeparator(in)
	pt := make([]float64, in.nStruct)
	pt[in.varCol[a.ID()]] = 0.95
	pt[in.varCol[b.ID()]] = 0.1
	cut := sep.coverFromRow(0, pt)
	if cut == nil {
		t.Fatal("no complemented cover cut separated")
	}
	for bits := 0; bits < 4; bits++ {
		p := []float64{float64(bits & 1), float64(bits >> 1 & 1)}
		if 4*p[0]-3*p[1] > 2 {
			continue
		}
		if cut.violation(p) > 1e-9 {
			t.Errorf("complemented cover cut cuts off feasible point %v", p)
		}
	}
	if cut.violation(pt) < cutMinEfficacy {
		t.Error("cut does not cut off the fractional point")
	}
}

// TestRootCutsValidOnAllIntegerPoints is the safety property of the whole
// root loop: every cut row the extended instance carries must be satisfied by
// every integer-feasible point of the model. The model mixes <=, >= and
// binary knapsacks so both separators fire; all 2^6 assignments are
// enumerated.
func TestRootCutsValidOnAllIntegerPoints(t *testing.T) {
	m := NewModel()
	vars := make([]Var, 6)
	for i := range vars {
		vars[i] = m.NewBinary("x")
	}
	m.AddLE("k1", *NewExpr(0).Add(vars[0], 3).Add(vars[1], 5).Add(vars[2], 7).Add(vars[3], 9), 12)
	m.AddLE("k2", *NewExpr(0).Add(vars[0], 4).Add(vars[1], 3).Add(vars[4], 6), 8)
	m.AddLE("k3", *NewExpr(0).Add(vars[2], 2).Add(vars[4], 2).Add(vars[5], 2), 3)
	m.AddGE("cov", *NewExpr(0).Add(vars[1], 1).Add(vars[3], 1).Add(vars[5], 1), 1)
	obj := NewExpr(0)
	for i, c := range []float64{-5, -4, -6, -3, -2, -1} {
		obj.Add(vars[i], c)
	}
	m.SetObjective(*obj, Minimize)

	base, decided := compile(m, true)
	if decided != StatusUnknown {
		t.Fatalf("compile decided the model outright: %v", decided)
	}
	res := rootCutLoop(context.Background(), base, 1e-6, nil, 1)
	if res.status != StatusOptimal {
		t.Fatalf("root cut loop status = %v", res.status)
	}
	if res.stats.Gomory+res.stats.Cover == 0 {
		t.Fatal("no cuts separated; the property test checked nothing")
	}
	if res.stats.Applied != res.in.m-base.m {
		t.Fatalf("Applied = %d but instance carries %d cut rows",
			res.stats.Applied, res.in.m-base.m)
	}

	in := res.in
	point := make([]float64, m.NumVars())
	for bits := 0; bits < 1<<6; bits++ {
		for i := range vars {
			point[vars[i].ID()] = float64(bits >> i & 1)
		}
		if ok, _ := checkFeasible(m, point, 1e-6); !ok {
			continue
		}
		// Check every cut row (rows beyond the base instance): the slack
		// bounds encode <= (slack in [0, inf)).
		for r := base.m; r < in.m; r++ {
			lhs := 0.0
			for p := in.rowPtr[r]; p < in.rowPtr[r+1]; p++ {
				j := int(in.rowCol[p])
				if j >= in.nStruct {
					t.Fatalf("cut row %d touches non-structural column %d", r, j)
				}
				v := point[in.colVar[j]]
				lhs += in.rowVal[p] * v
			}
			if lhs > in.b[r]+1e-6 {
				t.Errorf("cut row %d cuts off integer-feasible point %06b: %g > %g",
					r, bits, lhs, in.b[r])
			}
		}
	}
}
