package milp

import (
	"context"
	"math"
	"sort"
	"sync"
	"time"
)

// Root cutting-plane parameters.
const (
	// maxCutRounds caps the separate-apply-resolve loop at the root.
	maxCutRounds = 8
	// gmiPerRound / coverPerRound bound how many cuts of each family one
	// round may add, keeping the extended LP from bloating.
	gmiPerRound   = 24
	coverPerRound = 12
	// gmiMinFrac rejects Gomory source rows whose basic value is too close
	// to integral: the resulting cut is numerically worthless (f0 or 1-f0
	// in a denominator).
	gmiMinFrac = 0.01
	// cutMinEfficacy is the minimum violation-over-norm a cut must achieve
	// at the current relaxation vertex to enter the pool.
	cutMinEfficacy = 1e-4
	// cutMaxDynamism rejects cuts whose coefficient magnitudes span more
	// than this ratio — they destabilize the basis factorization.
	cutMaxDynamism = 1e7
	// cutAgeLimit drops a cut after this many consecutive resolve rounds
	// with positive slack (activity-based aging).
	cutAgeLimit = 2
	// cutBindEps is the slack magnitude under which a cut counts as active.
	cutBindEps = 1e-6
	// cutTailTol stops the round loop when the root bound improves by less
	// than this (relative) twice in a row.
	cutTailTol = 1e-6
)

// cutRow is one separated cut over structural columns, stored in
// less-or-equal form: coef·x <= rhs. Cuts are globally valid — they are
// satisfied by every integer-feasible point of the root relaxation, so every
// branch-and-bound node may carry them.
type cutRow struct {
	cols []int32
	coef []float64
	rhs  float64
	norm float64 // 2-norm of coef
	// idle counts consecutive resolve rounds with positive slack; the pool
	// retires the cut at cutAgeLimit.
	idle int
	// lifted marks a cover cut that carries at least one lifted non-cover
	// coefficient (for the LiftedCover counter).
	lifted bool
}

// violation returns coef·x - rhs at the structural point x (positive means
// the cut is violated).
func (c *cutRow) violation(x []float64) float64 {
	v := -c.rhs
	for k, j := range c.cols {
		v += c.coef[k] * x[j]
	}
	return v
}

// CutStats reports the root cutting-plane loop's work.
type CutStats struct {
	// Rounds is the number of separate-apply-resolve iterations run.
	Rounds int
	// Gomory and Cover count cuts separated per family (after violation and
	// numerical screening).
	Gomory int
	// Cover counts knapsack-cover cuts separated.
	Cover int
	// LiftedCover counts the subset of Cover cuts that carried at least one
	// sequence-independent lifted coefficient on a non-cover column.
	LiftedCover int
	// Clique counts conflict-graph clique cuts separated.
	Clique int
	// Applied is the number of cut rows the branch-and-bound instance
	// finally carried.
	Applied int
	// AgedOut counts cuts retired by activity-based aging: separated, slack
	// in later rounds, dropped again before the tree search.
	AgedOut int
}

// colValue returns the current value of column j in the simplex state.
func (s *simplexState) colValue(j int) float64 {
	if p := s.pos[j]; p >= 0 {
		return s.xB[p]
	}
	return s.nbValue(j)
}

// isIntegralBound reports whether v is integral within tolerance (infinite
// bounds are not).
func isIntegralBound(v float64) bool {
	if math.IsInf(v, 0) {
		return false
	}
	return math.Abs(v-math.Round(v)) <= 1e-9
}

// coverItem is one binary column of a row's knapsack view, complemented to a
// positive coefficient.
type coverItem struct {
	col  int32
	a    float64 // complemented coefficient, > 0
	z    float64 // complemented LP value in [0,1]
	comp bool
}

// cutSeparator owns the scratch buffers of one separation family. The
// buffers persist across root-cut rounds (retarget re-points the separator
// at an extended instance without reallocating: extendWithCuts preserves
// nStruct and base-row indexing, so every buffer stays correctly sized).
type cutSeparator struct {
	in    *instance
	dense []float64 // structural-column accumulator
	mark  []bool    // which dense entries are live
	live  []int32
	items []coverItem // cover-separation scratch
	mu    []float64   // lifting function: mu[h] = sum of h largest cover coefs
}

func newCutSeparator(in *instance) *cutSeparator {
	return &cutSeparator{
		in:    in,
		dense: make([]float64, in.nStruct),
		mark:  make([]bool, in.nStruct),
		live:  make([]int32, 0, in.nStruct),
	}
}

// retarget points the separator at an extended sibling of its instance.
func (cs *cutSeparator) retarget(in *instance) { cs.in = in }

func (cs *cutSeparator) add(j int32, v float64) {
	if !cs.mark[j] {
		cs.mark[j] = true
		cs.live = append(cs.live, j)
	}
	cs.dense[j] += v
}

func (cs *cutSeparator) reset() {
	for _, j := range cs.live {
		cs.dense[j] = 0
		cs.mark[j] = false
	}
	cs.live = cs.live[:0]
}

// harvest drains the accumulator into a cutRow in <=-form given the
// greater-or-equal right-hand side accumulated so far: dense·x >= rhsGE
// becomes (-dense)·x <= -rhsGE. Near-zero coefficients are dropped with a
// rhs correction that keeps the cut valid (the dropped term is bounded by
// its column range); cuts whose dropped term cannot be bounded keep the
// coefficient. Returns nil when the cut fails the numerical screens.
func (cs *cutSeparator) harvest(rhsGE float64, x []float64) *cutRow {
	in := cs.in
	sort.Slice(cs.live, func(a, b int) bool { return cs.live[a] < cs.live[b] })
	maxC := 0.0
	for _, j := range cs.live {
		if a := math.Abs(cs.dense[j]); a > maxC {
			maxC = a
		}
	}
	if maxC == 0 {
		return nil
	}
	dropTol := 1e-11 * math.Max(1, maxC)
	cut := &cutRow{rhs: -rhsGE}
	minC := math.Inf(1)
	for _, j := range cs.live {
		c := -cs.dense[j] // flip to <= form
		if math.Abs(c) <= dropTol {
			if c == 0 {
				continue
			}
			// Dropping c·x_j from a <= cut needs rhs += max(c·x_j) to stay
			// valid for every feasible x_j.
			lo, hi := in.lo[j], in.hi[j]
			worst := c * hi
			if c < 0 {
				worst = c * lo
			}
			if math.IsInf(worst, 0) || math.IsNaN(worst) {
				// Unbounded column: the term cannot be dropped safely.
				cut.cols = append(cut.cols, j)
				cut.coef = append(cut.coef, c)
				if a := math.Abs(c); a < minC {
					minC = a
				}
				continue
			}
			cut.rhs += worst
			continue
		}
		cut.cols = append(cut.cols, j)
		cut.coef = append(cut.coef, c)
		if a := math.Abs(c); a < minC {
			minC = a
		}
	}
	if len(cut.cols) == 0 {
		return nil
	}
	if maxC/minC > cutMaxDynamism {
		return nil
	}
	n2 := 0.0
	for _, c := range cut.coef {
		n2 += c * c
	}
	cut.norm = math.Sqrt(n2)
	if cut.violation(x) < cutMinEfficacy*cut.norm {
		return nil
	}
	return cut
}

// gomoryFromRow derives a Gomory mixed-integer cut from basis row r of the
// current (optimal) simplex state, or nil when the row does not yield a
// usable cut. The tableau row over the nonbasic shifted variables
// xi_j >= 0 (xi = x-l at lower bound, u-x at upper) reads
//
//	x_B(r) + sum_j abar_j·xi_j = bhat,   f0 = frac(bhat)
//
// and the GMI inequality sum_j gamma_j·xi_j >= f0 uses the fractional-part
// formula for integer xi and the sign-split formula for continuous xi.
// Slack columns are substituted back through their defining row so the cut
// lives purely on structural columns.
func (cs *cutSeparator) gomoryFromRow(st *simplexState, r int, x []float64) *cutRow {
	in := cs.in
	bcol := int(st.basic[r])
	if bcol >= in.nStruct || !in.intCol[bcol] {
		return nil
	}
	bhat := st.xB[r]
	f0 := bhat - math.Floor(bhat)
	if f0 < gmiMinFrac || f0 > 1-gmiMinFrac {
		return nil
	}
	st.fac.btranRow(r, st.rho)
	cs.reset()
	rhsGE := f0 // constants move to the right as terms substitute in
	for j := 0; j < in.n; j++ {
		if st.stat[j] == nbBasic {
			continue
		}
		alpha := in.colDot(st.rho, j)
		if math.Abs(alpha) <= 1e-11 {
			continue
		}
		atLower := st.stat[j] == nbLower
		if st.stat[j] == nbFree {
			return nil // no finite shift exists
		}
		var bound float64
		if atLower {
			bound = st.lo[j]
		} else {
			bound = st.hi[j]
		}
		if math.IsInf(bound, 0) {
			return nil
		}
		abar := alpha
		if !atLower {
			abar = -alpha
		}
		var gamma float64
		if j < in.nStruct && in.intCol[j] && isIntegralBound(bound) {
			fj := abar - math.Floor(abar)
			if fj <= f0 {
				gamma = fj / f0
			} else {
				gamma = (1 - fj) / (1 - f0)
			}
		} else {
			if abar >= 0 {
				gamma = abar / f0
			} else {
				gamma = -abar / (1 - f0)
			}
		}
		if gamma <= 1e-12 {
			continue
		}
		if j < in.nStruct {
			// gamma·(x_j - l) or gamma·(u - x_j).
			if atLower {
				cs.add(int32(j), gamma)
				rhsGE += gamma * bound
			} else {
				cs.add(int32(j), -gamma)
				rhsGE -= gamma * bound
			}
			continue
		}
		// Slack of row i: s_i = b_i - a_i·x. Substitute the shifted slack
		// back to structural columns.
		i := j - in.nStruct
		sign := gamma
		if atLower {
			sign = -gamma
		}
		for p := in.rowPtr[i]; p < in.rowPtr[i+1]; p++ {
			cs.add(in.rowCol[p], sign*in.rowVal[p])
		}
		if atLower {
			rhsGE += gamma*bound - gamma*in.b[i]
		} else {
			rhsGE += gamma*in.b[i] - gamma*bound
		}
	}
	return cs.harvest(rhsGE, x)
}

// coverFromRow separates a (lifted) knapsack-cover cut from base row i, or
// nil. The row's <= view (a >= row is negated; other relations are skipped)
// is relaxed to a pure-binary knapsack: a non-binary column contributes its
// minimum feasible amount, moved to the right-hand side (rows where that
// minimum is unbounded are skipped); negative binary coefficients are
// complemented (y = 1-x) to reach sum a_j·z_j <= b', a_j > 0. A greedy
// minimal cover C (sum exceeding b') yields sum_C z_j <= |C|-1, which is
// then strengthened sequence-independently: with mu_h the sum of the h
// largest cover coefficients (capped at Sigma_C), a non-cover item of
// weight a gets coefficient gamma = max{h : mu_h <= a}. Validity: take
// lifted items T and S ⊆ C feasible together. mu is subadditive
// (mu_{g+h} <= mu_g + mu_h), so sum_T a >= mu_G with G = sum_T gamma, and
// sum_S a >= Sigma_C - mu_{|C|-|S|}. If G + |S| >= |C| the knapsack load is
// >= mu_G + Sigma_C - mu_G = Sigma_C > b', a contradiction — so
// G + |S| <= |C|-1 holds at every integer point.
func (cs *cutSeparator) coverFromRow(i int, x []float64) *cutRow {
	in := cs.in
	slack := in.nStruct + i
	le := in.lo[slack] == 0 && math.IsInf(in.hi[slack], 1)
	ge := math.IsInf(in.lo[slack], -1) && in.hi[slack] == 0
	if !le && !ge {
		return nil // equalities and ranges are not knapsack views
	}
	sign := 1.0
	if ge {
		sign = -1
	}
	items := cs.items[:0]
	bprime := sign * in.b[i]
	for p := in.rowPtr[i]; p < in.rowPtr[i+1]; p++ {
		j := in.rowCol[p]
		a := sign * in.rowVal[p]
		if a == 0 {
			continue
		}
		if !in.intCol[j] || in.lo[j] != 0 || in.hi[j] != 1 {
			// Relax a non-binary column to its minimum feasible
			// contribution; the remaining binary knapsack stays valid.
			worst := a * in.lo[j]
			if alt := a * in.hi[j]; alt < worst {
				worst = alt
			}
			if math.IsInf(worst, 0) || math.IsNaN(worst) {
				cs.items = items
				return nil
			}
			bprime -= worst
			continue
		}
		z := math.Min(1, math.Max(0, x[j]))
		if a < 0 {
			bprime -= a // complement: a·x = -|a| + |a|·(1-x)
			items = append(items, coverItem{col: j, a: -a, z: 1 - z, comp: true})
		} else {
			items = append(items, coverItem{col: j, a: a, z: z, comp: false})
		}
	}
	cs.items = items
	if len(items) < 2 || bprime < 0 {
		return nil
	}
	total := 0.0
	for _, it := range items {
		total += it.a
	}
	if total <= bprime+1e-9 {
		return nil // row can never be covered
	}
	// Greedy minimal cover: cheapest (1-z)/a first, so the cover prefers
	// columns the relaxation already sets high.
	sort.Slice(items, func(a, b int) bool {
		return (1-items[a].z)/items[a].a < (1-items[b].z)/items[b].a
	})
	weight := 0.0
	size := 0
	for _, it := range items {
		weight += it.a
		size++
		if weight > bprime+1e-9 {
			break
		}
	}
	if weight <= bprime+1e-9 {
		return nil
	}
	// Shrink to a minimal cover, swapping removed members past the end so
	// they rejoin the lifting pool.
	for k := size - 1; k >= 0 && size > 1; k-- {
		if weight-items[k].a > bprime+1e-9 {
			weight -= items[k].a
			items[k], items[size-1] = items[size-1], items[k]
			size--
		}
	}
	cover := items[:size]
	// Lifting function mu over the cover (mu[h] = sum of h largest coefs,
	// mu[size] = Sigma_C covers items heavier than every cover member).
	cs.mu = append(cs.mu[:0], 0)
	sort.Slice(cover, func(a, b int) bool { return cover[a].a > cover[b].a })
	for _, it := range cover {
		cs.mu = append(cs.mu, cs.mu[len(cs.mu)-1]+it.a)
	}
	lhs := 0.0
	for _, it := range cover {
		lhs += it.z
	}
	// Lift every non-cover item with gamma = max{h : mu_h <= a}.
	cs.reset()
	rhs := float64(size - 1)
	lifted := false
	for _, it := range items[size:] {
		gamma := 0
		for h := 1; h < len(cs.mu); h++ {
			if cs.mu[h] <= it.a+1e-9 {
				gamma = h
			} else {
				break
			}
		}
		if gamma == 0 {
			continue
		}
		lifted = true
		lhs += float64(gamma) * it.z
		if it.comp {
			cs.add(it.col, -float64(gamma))
			rhs -= float64(gamma)
		} else {
			cs.add(it.col, float64(gamma))
		}
	}
	if lhs <= float64(size-1)+cutMinEfficacy {
		return nil // not violated
	}
	// sum_C z + sum gamma·z <= |C|-1, un-complemented: complemented members
	// contribute (1 - x_j).
	for _, it := range cover {
		if it.comp {
			cs.add(it.col, -1)
			rhs--
		} else {
			cs.add(it.col, 1)
		}
	}
	sort.Slice(cs.live, func(a, b int) bool { return cs.live[a] < cs.live[b] })
	cut := &cutRow{rhs: rhs, lifted: lifted}
	n2 := 0.0
	for _, j := range cs.live {
		cut.cols = append(cut.cols, j)
		cut.coef = append(cut.coef, cs.dense[j])
		n2 += cs.dense[j] * cs.dense[j]
	}
	cut.norm = math.Sqrt(n2)
	if cut.violation(x) < cutMinEfficacy*cut.norm {
		return nil
	}
	return cut
}

// sameCut reports whether two cuts have identical support and proportional
// coefficients (duplicate up to scaling).
func sameCut(a, b *cutRow) bool {
	if len(a.cols) != len(b.cols) {
		return false
	}
	dot := 0.0
	for k := range a.cols {
		if a.cols[k] != b.cols[k] {
			return false
		}
		dot += a.coef[k] * b.coef[k]
	}
	return math.Abs(dot) >= (1-1e-9)*a.norm*b.norm
}

// extendWithCuts builds a new immutable instance carrying base plus one <=
// row per cut. Structural columns and the base rows keep their indices (the
// slack of base row i stays at column nStruct+i), so branching decisions,
// propagation and variable extraction are oblivious to the cuts.
func extendWithCuts(base *instance, cuts []*cutRow) *instance {
	if len(cuts) == 0 {
		return base
	}
	m := base.m + len(cuts)
	n := base.nStruct + m
	in := &instance{
		m: m, nStruct: base.nStruct, n: n,
		b:      make([]float64, m),
		c:      make([]float64, n),
		lo:     make([]float64, n),
		hi:     make([]float64, n),
		intCol: base.intCol, colVar: base.colVar, varCol: base.varCol,
		fixed: base.fixed, flip: base.flip, pre: base.pre,
	}
	copy(in.b, base.b)
	copy(in.c, base.c[:base.nStruct])
	copy(in.lo, base.lo[:base.n])
	copy(in.hi, base.hi[:base.n])
	// Re-slot base slack bounds: base column nStruct+i keeps its index, the
	// copy above already placed them. Cut slacks encode <=.
	for k := range cuts {
		s := base.n + k
		in.lo[s], in.hi[s] = 0, math.Inf(1)
		in.b[base.m+k] = cuts[k].rhs
	}
	// CSC assembly: base entries plus cut entries, per column.
	count := make([]int32, base.nStruct+1)
	for j := 0; j < base.nStruct; j++ {
		count[j+1] = base.colPtr[j+1] - base.colPtr[j]
	}
	for _, c := range cuts {
		for _, j := range c.cols {
			count[j+1]++
		}
	}
	for j := 0; j < base.nStruct; j++ {
		count[j+1] += count[j]
	}
	nnz := count[base.nStruct]
	in.colPtr = count
	in.rowIdx = make([]int32, nnz)
	in.val = make([]float64, nnz)
	cursor := make([]int32, base.nStruct)
	copy(cursor, in.colPtr[:base.nStruct])
	for j := 0; j < base.nStruct; j++ {
		for p := base.colPtr[j]; p < base.colPtr[j+1]; p++ {
			q := cursor[j]
			in.rowIdx[q] = base.rowIdx[p]
			in.val[q] = base.val[p]
			cursor[j] = q + 1
		}
	}
	for k, c := range cuts {
		row := int32(base.m + k)
		for t, j := range c.cols {
			q := cursor[j]
			in.rowIdx[q] = row
			in.val[q] = c.coef[t]
			cursor[j] = q + 1
		}
	}
	in.pert = make([]float64, n)
	for j := range in.pert {
		xi := 0.5 + math.Mod(float64(j+1)*0.6180339887498949, 1)
		in.pert[j] = pertScale * xi * (1 + math.Abs(in.c[j]))
	}
	in.buildRows()
	return in
}

// cutLoopResult carries the outcome of the root cutting loop back to branch
// and bound: the (possibly extended) instance, a warm-start basis for the
// root node sized to it, and the counters.
type cutLoopResult struct {
	in      *instance
	basic   []int32
	stat    []int8
	stats   CutStats
	iters   int // simplex pivots spent cutting
	incr    int // of which incrementally priced
	full    int
	sepWall time.Duration // wall time inside the separation block
	status  Status
}

// addIters accumulates one simplex state's pivot counters into the result.
func (r *cutLoopResult) addIters(st *simplexState) {
	r.iters += st.iters
	r.incr += st.incrPivots
	r.full += st.fullPivots
}

// rootCutLoop runs the separate-apply-resolve loop at the root: solve the
// relaxation, derive Gomory mixed-integer cuts from the fractional basis
// rows, lifted cover cuts from the knapsack row views, and clique cuts from
// the conflict graph, screen them, extend the instance, and resolve, until
// no violated cut remains, the bound tails off, or the round cap hits.
// Aging retires cuts that go slack in later rounds. The three families
// separate concurrently when workers > 1 (the Gomory family owns the
// simplex state exclusively — btranRow mutates scratch — so parallelism is
// across families, never within one); each family keeps its own persistent
// scratch separator so rounds stay allocation-lean, and the merged
// candidate list is sorted deterministically before filtering so a
// Workers=1 run is byte-reproducible. The returned status is StatusOptimal
// when a usable relaxation optimum (and basis) is available; any other
// status means branch and bound should start from the base instance as if
// no cutting had run.
func rootCutLoop(ctx context.Context, base *instance, intTol float64, conflicts [][2]ConflictLiteral, workers int) cutLoopResult {
	res := cutLoopResult{in: base, status: StatusUnknown}
	st := newState(base)
	st.ctx = ctx
	status := st.solveCold()
	res.addIters(st)
	if status != StatusOptimal {
		res.status = status
		return res
	}
	res.status = StatusOptimal
	res.basic = append([]int32(nil), st.basic...)
	res.stat = append([]int8(nil), st.stat...)

	x := make([]float64, base.nStruct)
	structValues := func(s *simplexState) {
		for j := 0; j < base.nStruct; j++ {
			x[j] = s.colValue(j)
		}
	}
	lastObj := math.Inf(-1)
	tails := 0
	var pool []*cutRow // applied cuts, in instance row order
	cur := base

	// Persistent per-family separators and the conflict graph, built once
	// and reused every round (the gomory separator retargets to the current
	// extended instance; covers and cliques read the base rows only).
	sepG := newCutSeparator(base)
	sepC := newCutSeparator(base)
	graph := buildConflictGraph(base, conflicts)
	type scored struct {
		cut *cutRow
		eff float64
		src int // source base row, for deterministic tie-breaks
	}
	var gmi []scored
	var covers, cliques []*cutRow

	for round := 0; round < maxCutRounds; round++ {
		if ctx != nil && ctx.Err() != nil {
			break
		}
		structValues(st)
		fractional := false
		for j := 0; j < base.nStruct; j++ {
			if base.intCol[j] && math.Abs(x[j]-math.Round(x[j])) > intTol {
				fractional = true
				break
			}
		}
		if !fractional {
			break // root already integral; nothing to cut
		}
		// Separate the three families, concurrently when workers allow.
		// Each task owns its output slice and its scratch; st is touched by
		// the Gomory task alone.
		gmi = gmi[:0]
		covers = covers[:0]
		cliques = cliques[:0]
		gomoryTask := func() {
			sepG.retarget(cur)
			for r := 0; r < cur.m; r++ {
				if c := sepG.gomoryFromRow(st, r, x); c != nil {
					gmi = append(gmi, scored{c, c.violation(x) / c.norm, r})
				}
			}
		}
		coverTask := func() {
			for i := 0; i < base.m && len(covers) < coverPerRound; i++ {
				if c := sepC.coverFromRow(i, x); c != nil {
					covers = append(covers, c)
				}
			}
		}
		cliqueTask := func() {
			if graph != nil {
				cliques = graph.separate(x)
			}
		}
		sepStart := time.Now()
		if workers <= 1 {
			gomoryTask()
			coverTask()
			cliqueTask()
		} else {
			slots := workers
			if slots > 3 {
				slots = 3
			}
			sem := make(chan struct{}, slots)
			var wg sync.WaitGroup
			for _, task := range []func(){gomoryTask, coverTask, cliqueTask} {
				wg.Add(1)
				go func(f func()) {
					defer wg.Done()
					sem <- struct{}{}
					f()
					<-sem
				}(task)
			}
			wg.Wait()
		}
		res.sepWall += time.Since(sepStart)

		// Deterministic merge: gomory by (efficacy desc, source row asc),
		// covers already in base-row order, cliques by (efficacy desc,
		// lexicographic support asc).
		var fresh []*cutRow
		sort.Slice(gmi, func(a, b int) bool {
			if gmi[a].eff != gmi[b].eff {
				return gmi[a].eff > gmi[b].eff
			}
			return gmi[a].src < gmi[b].src
		})
		if len(gmi) > gmiPerRound {
			gmi = gmi[:gmiPerRound]
		}
		for _, s := range gmi {
			fresh = append(fresh, s.cut)
		}
		res.stats.Gomory += len(gmi)
		fresh = append(fresh, covers...)
		res.stats.Cover += len(covers)
		for _, c := range covers {
			if c.lifted {
				res.stats.LiftedCover++
			}
		}
		sort.Slice(cliques, func(a, b int) bool {
			ea := cliques[a].violation(x) / cliques[a].norm
			eb := cliques[b].violation(x) / cliques[b].norm
			if ea != eb {
				return ea > eb
			}
			ca, cb := cliques[a].cols, cliques[b].cols
			for k := 0; k < len(ca) && k < len(cb); k++ {
				if ca[k] != cb[k] {
					return ca[k] < cb[k]
				}
			}
			return len(ca) < len(cb)
		})
		fresh = append(fresh, cliques...)
		res.stats.Clique += len(cliques)
		// Dedup against the pool.
		w := 0
	dedup:
		for _, c := range fresh {
			for _, p := range pool {
				if sameCut(p, c) {
					continue dedup
				}
			}
			for k := 0; k < w; k++ {
				if sameCut(fresh[k], c) {
					continue dedup
				}
			}
			fresh[w] = c
			w++
		}
		fresh = fresh[:w]
		if len(fresh) == 0 {
			break
		}
		pool = append(pool, fresh...)
		res.stats.Rounds++

		cur = extendWithCuts(base, pool)
		st = newState(cur)
		st.ctx = ctx
		status = st.solveCold()
		res.addIters(st)
		if status != StatusOptimal {
			// Numerical trouble or abort on the extended LP: fall back to
			// the last instance that solved cleanly.
			return res
		}
		res.in = cur
		res.basic = append(res.basic[:0], st.basic...)
		res.stat = append(res.stat[:0], st.stat...)

		// Activity-based aging: cuts slack at the new vertex idle; retire
		// them after cutAgeLimit consecutive idle rounds.
		kept := pool[:0]
		aged := false
		for k, c := range pool {
			sv := st.colValue(base.nStruct + base.m + k)
			if math.Abs(sv) > cutBindEps {
				c.idle++
			} else {
				c.idle = 0
			}
			if c.idle >= cutAgeLimit {
				res.stats.AgedOut++
				aged = true
				continue
			}
			kept = append(kept, c)
		}
		pool = kept
		if aged {
			// The instance must match the pool exactly (slack positions);
			// rebuild without the retired rows before the next round.
			cur = extendWithCuts(base, pool)
			st = newState(cur)
			st.ctx = ctx
			status = st.solveCold()
			res.addIters(st)
			if status != StatusOptimal {
				return res
			}
			res.in = cur
			res.basic = append(res.basic[:0], st.basic...)
			res.stat = append(res.stat[:0], st.stat...)
		}

		// Tailing-off detection on the root bound (minimize sense).
		obj := 0.0
		for j := 0; j < cur.nStruct; j++ {
			obj += cur.c[j] * st.colValue(j)
		}
		if obj-lastObj <= cutTailTol*math.Max(1, math.Abs(obj)) {
			tails++
			if tails >= 2 {
				break
			}
		} else {
			tails = 0
		}
		lastObj = obj
	}
	res.stats.Applied = len(pool)
	return res
}
