package milp

import (
	"math"
	"sort"
)

// Local-branching parameters.
const (
	// lbRadius is the Hamming-ball radius around the incumbent: the sub-MIP
	// may flip at most this many binary columns.
	lbRadius = 10
	// lbMaxNodes caps the depth-first sub-MIP's node count.
	lbMaxNodes = 120
	// lbPivotBudget bounds the dual-simplex pivots of each sub-MIP resolve.
	lbPivotBudget = 600
)

// claimLocalBranchSlot reserves a local-branching run for this worker. A run
// triggers when the shared incumbent improved since the last attempt and no
// other worker is already inside one; the claim snapshots the incumbent and
// the cutoff under the lock.
func (w *bbWorker) claimLocalBranchSlot() (inc []float64, cutoff float64, ok bool) {
	sh := w.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.lbActive || sh.best == nil || sh.bestObj >= sh.lbLastObj-1e-9 {
		return nil, 0, false
	}
	sh.lbActive = true
	sh.lbLastObj = sh.bestObj
	return append([]float64(nil), sh.best...), sh.bestObj, true
}

// runLocalBranch searches the Hamming ball of radius lbRadius around the
// incumbent as a budgeted depth-first sub-MIP on a scratch simplex state.
// The ball constraint
//
//	sum_{inc_j = 0} x_j + sum_{inc_j = 1} (1 - x_j) <= lbRadius
//
// over the binary structural columns is NOT globally valid — it would cut
// off integer points outside the neighbourhood — so it lives only on a
// scratch instance built by extendWithCuts and is never merged into the
// global tree; every integral point the sub-MIP reaches is verified against
// the original model (the ball row is absent there, and ball-interior points
// are model-feasible iff they check out) before it becomes an incumbent. On
// any failure — infeasible ball, budget exhausted, nothing better inside —
// the worker simply falls back to the global tree.
func (w *bbWorker) runLocalBranch(inc []float64, cutoff float64) {
	sh := w.sh
	defer func() {
		sh.mu.Lock()
		sh.lbActive = false
		sh.mu.Unlock()
	}()

	in := w.in
	ball := &cutRow{}
	ones := 0
	binaries := 0
	for _, v := range w.intVars {
		col := in.varCol[v.id]
		if col < 0 || in.lo[col] != 0 || in.hi[col] != 1 {
			continue
		}
		binaries++
		if math.Round(inc[v.id]) >= 1 {
			ball.cols = append(ball.cols, int32(col))
			ball.coef = append(ball.coef, -1)
			ones++
		} else {
			ball.cols = append(ball.cols, int32(col))
			ball.coef = append(ball.coef, 1)
		}
	}
	if binaries <= 2*lbRadius {
		return // the ball is (nearly) the whole space; nothing local about it
	}
	ball.rhs = float64(lbRadius - ones)
	sort.Sort(&cutColSort{ball})
	ball.norm = math.Sqrt(float64(len(ball.cols)))

	ext := extendWithCuts(in, []*cutRow{ball})
	st := newState(ext)
	st.ctx = w.st.ctx

	type lbNode struct{ changes []bndChange }
	stack := []lbNode{{}}
	nodes := 0
	cold := true
	for len(stack) > 0 && nodes < lbMaxNodes {
		if st.ctx != nil && st.ctx.Err() != nil {
			break
		}
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		st.resetBounds()
		ok := true
		for _, ch := range node.changes {
			c := int(ch.col)
			nlo := math.Max(st.lo[c], ch.lo)
			nhi := math.Min(st.hi[c], ch.hi)
			if nlo > nhi {
				ok = false
				break
			}
			st.lo[c], st.hi[c] = nlo, nhi
		}
		if !ok {
			continue
		}
		if _, feas := propagateBounds(ext, st.lo, st.hi); !feas {
			continue
		}
		var status Status
		if cold {
			status = st.solveCold()
			cold = false
		} else {
			status = st.dual(lbPivotBudget)
			if status == statusNumFail {
				status = st.solveCold()
			}
		}
		if status != StatusOptimal {
			continue // infeasible, budget-limited or aborted: prune
		}
		x := st.extract()
		obj := w.dirSign * w.obj.Eval(x)
		if obj >= cutoff-1e-9 {
			continue // cannot improve the incumbent from here
		}
		// Most-fractional branching; integral points verify against the true
		// model (ball row excluded) and install through the shared incumbent.
		pick, pickDist := -1, -1.0
		var pickVal float64
		for _, v := range w.intVars {
			col := in.varCol[v.id]
			if col < 0 {
				continue
			}
			xv := st.colValue(col)
			f := math.Abs(xv - math.Round(xv))
			if f <= w.opts.IntFeasTol {
				continue
			}
			if d := math.Min(f, 1-f); d > pickDist {
				pickDist, pick, pickVal = d, col, xv
			}
		}
		if pick < 0 {
			xf := append([]float64(nil), x...)
			for _, v := range w.intVars {
				xf[v.id] = math.Round(xf[v.id])
			}
			if feasOK, objVal := checkFeasible(w.m, xf, w.opts.IntFeasTol); feasOK {
				lb := w.dirSign * objVal
				if w.foundIncumbent(xf, lb) {
					sh.mu.Lock()
					sh.lbFound++
					sh.mu.Unlock()
					if lb < cutoff {
						cutoff = lb
					}
				}
			}
			continue
		}
		fl, ce := math.Floor(pickVal), math.Ceil(pickVal)
		down := append(append([]bndChange(nil), node.changes...),
			bndChange{col: int32(pick), lo: math.Inf(-1), hi: fl})
		up := append(append([]bndChange(nil), node.changes...),
			bndChange{col: int32(pick), lo: ce, hi: math.Inf(1)})
		// Push the nearer side last so the DFS dives toward the relaxation.
		if pickVal-fl < ce-pickVal {
			stack = append(stack, lbNode{up}, lbNode{down})
		} else {
			stack = append(stack, lbNode{down}, lbNode{up})
		}
	}

	sh.mu.Lock()
	sh.lpIters += st.iters
	sh.incrPivots += st.incrPivots
	sh.fullPivots += st.fullPivots
	sh.factor.merge(st.fac.snapshot())
	sh.mu.Unlock()
}
