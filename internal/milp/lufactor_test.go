package milp

import (
	"math"
	"testing"
)

// Numerical stress cases for the sparse LU kernel: near-singular and
// ill-conditioned bases, the classic Beale cycling example under the devex
// pricing, and the refactorize-and-retry fallback when a Forrest–Tomlin
// update is rejected.

// denseInstance builds a bare instance whose structural columns are the
// given dense columns (plus the implicit slack identity), enough for
// kernel-level tests.
func denseInstance(cols [][]float64) *instance {
	m := len(cols[0])
	nStruct := len(cols)
	in := &instance{
		m:       m,
		nStruct: nStruct,
		n:       nStruct + m,
		b:       make([]float64, m),
		c:       make([]float64, nStruct+m),
		lo:      make([]float64, nStruct+m),
		hi:      make([]float64, nStruct+m),
		intCol:  make([]bool, nStruct),
		colPtr:  make([]int32, nStruct+1),
	}
	for j, col := range cols {
		for i, v := range col {
			if v != 0 {
				in.rowIdx = append(in.rowIdx, int32(i))
				in.val = append(in.val, v)
			}
		}
		in.colPtr[j+1] = int32(len(in.rowIdx))
	}
	return in
}

// applyBasis multiplies the basis matrix (columns basic of in) by x.
func applyBasis(in *instance, basic []int32, x []float64) []float64 {
	out := make([]float64, in.m)
	for pos, jj := range basic {
		j := int(jj)
		v := x[pos]
		if v == 0 {
			continue
		}
		if j >= in.nStruct {
			out[j-in.nStruct] += v
			continue
		}
		for p := in.colPtr[j]; p < in.colPtr[j+1]; p++ {
			out[in.rowIdx[p]] += in.val[p] * v
		}
	}
	return out
}

func structuralBasis(m int) []int32 {
	basic := make([]int32, m)
	for i := range basic {
		basic[i] = int32(i)
	}
	return basic
}

// TestLUSingularBasis: an exactly repeated column must fail factorization,
// just as the dense kernel's Gauss-Jordan does.
func TestLUSingularBasis(t *testing.T) {
	dup := []float64{1, 2, 3}
	in := denseInstance([][]float64{dup, {4, 5, 6}, dup})
	lu := newLUFactor(in, structuralBasis(3), nil)
	if lu.refactorize() {
		t.Fatal("sparse-lu factorized an exactly singular basis")
	}
	dense := newDenseFactor(in, structuralBasis(3), nil)
	if dense.refactorize() {
		t.Fatal("dense kernel factorized an exactly singular basis")
	}
}

// TestLUNearSingularBasis: columns differing below the pivot floor are
// numerically singular and must be rejected rather than poison the factors.
func TestLUNearSingularBasis(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3 + 1e-13}
	in := denseInstance([][]float64{a, {4, 5, 6}, b})
	lu := newLUFactor(in, structuralBasis(3), nil)
	if lu.refactorize() {
		t.Fatal("sparse-lu accepted a basis singular to working precision")
	}
}

// TestLUIllConditionedResidual factorizes an 8×8 Hilbert basis (condition
// number ~1e10) and checks the forward/backward solve residuals stay small —
// threshold pivoting must keep the elimination backward stable.
func TestLUIllConditionedResidual(t *testing.T) {
	const n = 8
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		cols[j] = make([]float64, n)
		for i := 0; i < n; i++ {
			cols[j][i] = 1 / float64(i+j+1)
		}
	}
	in := denseInstance(cols)
	basic := structuralBasis(n)
	lu := newLUFactor(in, basic, nil)
	if !lu.refactorize() {
		t.Fatal("refactorize failed on the Hilbert basis")
	}
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		lu.ftranColumn(j, x)
		bx := applyBasis(in, basic, x)
		for i := 0; i < n; i++ {
			want := cols[j][i]
			if math.Abs(bx[i]-want) > 1e-8*(1+math.Abs(want)) {
				t.Fatalf("ftran residual too large: col %d row %d: B·x=%v want %v", j, i, bx[i], want)
			}
		}
	}
}

// TestLUFTUpdateRejected drives a Forrest–Tomlin update into a vanishing
// eliminated diagonal (the spike misses the displaced pivot row entirely)
// and asserts the kernel rejects it while leaving the factors intact.
func TestLUFTUpdateRejected(t *testing.T) {
	in := denseInstance([][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}})
	lu := newLUFactor(in, structuralBasis(3), nil)
	if !lu.refactorize() {
		t.Fatal("refactorize failed on the identity basis")
	}
	w := make([]float64, 3)
	// Entering column e_0 replacing basis position 1: the elimination
	// diagonal is the spike's component on the displaced pivot row — zero.
	lu.ftranColumn(0, w)
	r := 1
	if lu.update(r, w) {
		t.Fatal("update accepted a zero elimination diagonal")
	}
	if got := lu.snapshot().UpdatesRejected; got != 1 {
		t.Fatalf("UpdatesRejected = %d, want 1", got)
	}
	// The factors must still answer for the untouched basis.
	for j := 0; j < 3; j++ {
		lu.ftranColumn(j, w)
		for i := 0; i < 3; i++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(w[i]-want) > 1e-12 {
				t.Fatalf("factors corrupted after rejected update: ftran(%d)[%d] = %v", j, i, w[i])
			}
		}
	}
}

// TestLUPivotRetryAfterRejectedUpdate exercises the solver-level fallback:
// when the kernel rejects an update, simplexState.pivot refactorizes the
// pre-pivot basis, recomputes the entering column, and retries.
func TestLUPivotRetryAfterRejectedUpdate(t *testing.T) {
	in, decided := compile(schedLikeLP(10, 3, true), false)
	if decided == StatusInfeasible {
		t.Fatal("fixture infeasible")
	}
	s := newStateKernel(in, kernelSparseLU)
	if st := s.solveCold(); st != StatusOptimal {
		t.Fatalf("cold solve: %v", st)
	}
	lu := s.fac.(*luFactor)
	// Pick any nonbasic column with a usable pivot row.
	q, r := -1, -1
	for j := 0; j < in.n && q < 0; j++ {
		if s.stat[j] == nbBasic {
			continue
		}
		s.ftran(j)
		for i := 0; i < in.m; i++ {
			if math.Abs(s.w[i]) > 0.5 {
				q, r = j, i
				break
			}
		}
	}
	if q < 0 {
		t.Fatal("no pivotable nonbasic column found")
	}
	s.ftran(q)
	refactsBefore := lu.snapshot().Refactorizations
	// Invalidate the cached spike so the first update attempt is rejected;
	// pivot must recover through its refactorize-and-retry path.
	lu.spikeOK = false
	if !s.pivot(q, r, nbLower) {
		t.Fatal("pivot failed to recover from a rejected update")
	}
	if got := lu.snapshot().Refactorizations; got != refactsBefore+1 {
		t.Fatalf("Refactorizations = %d, want %d (one retry refresh)", got, refactsBefore+1)
	}
	if int(s.basic[r]) != q {
		t.Fatalf("basis row %d holds %d after pivot, want %d", r, s.basic[r], q)
	}
}

// TestLUWarmStartFallbackOnSingularBasis checks the warm-start contract the
// branch-and-bound workers rely on: a singular inherited basis makes
// solveWarm report statusNumFail, and the subsequent cold solve recovers.
func TestLUWarmStartFallbackOnSingularBasis(t *testing.T) {
	in, decided := compile(schedLikeLP(10, 3, true), false)
	if decided == StatusInfeasible {
		t.Fatal("fixture infeasible")
	}
	s := newStateKernel(in, kernelSparseLU)
	if st := s.solveCold(); st != StatusOptimal {
		t.Fatalf("cold solve: %v", st)
	}
	// Corrupt the basis: duplicate one basic column over another slot.
	s.basic[1] = s.basic[0]
	if st := s.solveWarm(); st != statusNumFail {
		t.Fatalf("solveWarm on singular basis = %v, want numerical failure", st)
	}
	if st := s.solveCold(); st != StatusOptimal {
		t.Fatalf("cold-solve fallback: %v", st)
	}
}

// TestBealeCyclingTerminates solves Beale's classic cycling LP — the
// standard counterexample that loops forever under naive Dantzig pricing
// with careless tie-breaking — and expects the proven optimum −0.05. The
// devex pricing plus the Bland fallback must terminate on it.
func TestBealeCyclingTerminates(t *testing.T) {
	m := NewModel()
	x1 := m.NewContinuous("x1", 0, Inf)
	x2 := m.NewContinuous("x2", 0, Inf)
	x3 := m.NewContinuous("x3", 0, Inf)
	x4 := m.NewContinuous("x4", 0, Inf)
	m.AddLE("r1", *NewExpr(0).Add(x1, 0.25).Add(x2, -60).Add(x3, -1.0/25).Add(x4, 9), 0)
	m.AddLE("r2", *NewExpr(0).Add(x1, 0.5).Add(x2, -90).Add(x3, -1.0/50).Add(x4, 3), 0)
	m.AddLE("r3", VarExpr(x3), 1)
	m.SetObjective(*NewExpr(0).Add(x1, -0.75).Add(x2, 150).Add(x3, -0.02).Add(x4, 6), Minimize)

	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEq(sol.Objective, -0.05, 1e-9) {
		t.Errorf("objective = %v, want -0.05", sol.Objective)
	}
}
