package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLPSimpleMax(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
	// Classic Dantzig example: optimum 36 at (2, 6).
	m := NewModel()
	x := m.NewContinuous("x", 0, Inf)
	y := m.NewContinuous("y", 0, Inf)
	m.AddLE("c1", VarExpr(x), 4)
	m.AddLE("c2", *NewExpr(0).Add(y, 2), 12)
	m.AddLE("c3", *NewExpr(0).Add(x, 3).Add(y, 2), 18)
	m.SetObjective(*NewExpr(0).Add(x, 3).Add(y, 5), Maximize)

	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEq(sol.Objective, 36, 1e-6) {
		t.Errorf("objective = %v, want 36", sol.Objective)
	}
	if !almostEq(sol.Value(x), 2, 1e-6) || !almostEq(sol.Value(y), 6, 1e-6) {
		t.Errorf("solution = (%v, %v), want (2, 6)", sol.Value(x), sol.Value(y))
	}
}

func TestLPMinWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 1. Optimum at (9,1): 21.
	m := NewModel()
	x := m.NewContinuous("x", 2, Inf)
	y := m.NewContinuous("y", 1, Inf)
	m.AddGE("cover", *NewExpr(0).Add(x, 1).Add(y, 1), 10)
	m.SetObjective(*NewExpr(0).Add(x, 2).Add(y, 3), Minimize)

	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEq(sol.Objective, 21, 1e-6) {
		t.Errorf("objective = %v, want 21", sol.Objective)
	}
}

func TestLPEquality(t *testing.T) {
	// min x + y s.t. x + 2y = 8, x - y = 2  ->  x=4, y=2, obj 6.
	m := NewModel()
	x := m.NewContinuous("x", 0, Inf)
	y := m.NewContinuous("y", 0, Inf)
	m.AddEQ("e1", *NewExpr(0).Add(x, 1).Add(y, 2), 8)
	m.AddEQ("e2", *NewExpr(0).Add(x, 1).Add(y, -1), 2)
	m.SetObjective(*NewExpr(0).Add(x, 1).Add(y, 1), Minimize)

	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEq(sol.Value(x), 4, 1e-6) || !almostEq(sol.Value(y), 2, 1e-6) {
		t.Errorf("solution = (%v, %v), want (4, 2)", sol.Value(x), sol.Value(y))
	}
}

func TestLPInfeasible(t *testing.T) {
	m := NewModel()
	x := m.NewContinuous("x", 0, 5)
	m.AddGE("impossible", VarExpr(x), 10)
	m.SetObjective(VarExpr(x), Minimize)

	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestLPInfeasibleBounds(t *testing.T) {
	m := NewModel()
	x := m.NewContinuous("x", 5, 2) // reversed bounds
	m.SetObjective(VarExpr(x), Minimize)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible for reversed bounds", sol.Status)
	}
}

func TestLPUnbounded(t *testing.T) {
	m := NewModel()
	x := m.NewContinuous("x", 0, Inf)
	m.SetObjective(VarExpr(x), Maximize)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestLPFreeVariable(t *testing.T) {
	// min x s.t. x >= -7 expressed through a constraint on a free variable.
	m := NewModel()
	x := m.NewContinuous("x", math.Inf(-1), Inf)
	m.AddGE("lb", VarExpr(x), -7)
	m.SetObjective(VarExpr(x), Minimize)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEq(sol.Value(x), -7, 1e-6) {
		t.Errorf("x = %v, want -7", sol.Value(x))
	}
}

func TestLPNegativeUpperBoundOnly(t *testing.T) {
	// Variable with only an upper bound (mirrored column path).
	m := NewModel()
	x := m.NewContinuous("x", math.Inf(-1), -3)
	m.SetObjective(VarExpr(x), Maximize)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEq(sol.Value(x), -3, 1e-6) {
		t.Errorf("x = %v, want -3", sol.Value(x))
	}
}

func TestLPObjectiveOffset(t *testing.T) {
	m := NewModel()
	x := m.NewContinuous("x", 0, 10)
	obj := VarExpr(x)
	obj.AddConst(100)
	m.SetObjective(obj, Minimize)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sol.Objective, 100, 1e-6) {
		t.Errorf("objective = %v, want 100 (offset preserved)", sol.Objective)
	}
}

func TestLPDegenerateDiet(t *testing.T) {
	// A small diet-style LP with equality + inequalities and degenerate
	// vertices; optimum computed by hand: min 0.6a + 0.35b
	// s.t. 5a + 7b >= 8 ; 4a + 2b >= 15 ; a + b <= 10.
	m := NewModel()
	a := m.NewContinuous("a", 0, Inf)
	b := m.NewContinuous("b", 0, Inf)
	m.AddGE("protein", *NewExpr(0).Add(a, 5).Add(b, 7), 8)
	m.AddGE("iron", *NewExpr(0).Add(a, 4).Add(b, 2), 15)
	m.AddLE("mass", *NewExpr(0).Add(a, 1).Add(b, 1), 10)
	m.SetObjective(*NewExpr(0).Add(a, 0.6).Add(b, 0.35), Minimize)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	// Optimum is at a=3.75, b=0 with objective 2.25.
	if !almostEq(sol.Objective, 2.25, 1e-6) {
		t.Errorf("objective = %v, want 2.25", sol.Objective)
	}
}

// TestLPRandomFeasibleProperty generates LPs that are feasible by
// construction (constraints are satisfied by a known point) and checks that
// the simplex (a) declares them feasible and (b) returns a point satisfying
// every constraint with objective no worse than the known point.
func TestLPRandomFeasibleProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nVars := 2 + r.Intn(5)
		nCons := 1 + r.Intn(6)
		m := NewModel()
		vars := make([]Var, nVars)
		point := make([]float64, nVars)
		for i := range vars {
			vars[i] = m.NewContinuous("", 0, 20)
			point[i] = float64(r.Intn(10))
		}
		for c := 0; c < nCons; c++ {
			e := NewExpr(0)
			lhs := 0.0
			for i, v := range vars {
				coef := float64(r.Intn(7) - 3)
				e.Add(v, coef)
				lhs += coef * point[i]
			}
			// Make the constraint satisfied at `point` with slack.
			m.AddLE("", *e, lhs+float64(r.Intn(5)))
		}
		obj := NewExpr(0)
		for _, v := range vars {
			obj.Add(v, float64(r.Intn(5)))
		}
		m.SetObjective(*obj, Minimize)

		sol, err := SolveLP(m)
		if err != nil || sol.Status != StatusOptimal {
			return false
		}
		ok, _ := CheckFeasible(m, sol.X)
		if !ok {
			return false
		}
		objExpr, _ := m.Objective()
		return sol.Objective <= objExpr.Eval(point)+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
