package milp

import "math"

// sparseKernelMinRows is the row-count crossover above which newState picks
// the sparse LU kernel. Below it the dense inverse wins: its per-solve cost
// is a handful of tight O(m²) loops with no indirection, while the LU kernel
// pays list traversals per nonzero. Above it the O(m²) ftran/btran and the
// O(m³) refactorization dominate everything else the solver does — the
// ROADMAP's "binding cost above ~1000 rows" — and the sparse kernel takes
// over. Measured on the sched-shaped models (BenchmarkKernelIVDScale and the
// cold-solve sweep that produced this constant): dense and sparse break even
// near 55 rows, sparse is 3× faster at 80 rows and 16× at 960.
const sparseKernelMinRows = 64

// basisFactorization abstracts the linear algebra of the bounded-variable
// simplex: a factorization of the current basis matrix B answering the four
// solve queries the pivot loop needs, plus a rank-one basis-change update.
// Two kernels implement it — the dense basis inverse with product-form (eta)
// updates inherited from the PR 3 solver, and a sparse LU with
// Markowitz-threshold pivoting and Forrest–Tomlin updates that takes over
// above sparseKernelMinRows rows. The kernels are interchangeable: both
// answer every query to within the simplex tolerances, as the kernel
// equivalence harness (factor_equiv_test.go) asserts.
//
// Index conventions: the basis matrix column at basis position i is instance
// column basic[i]; "basis row" means that position. ftran results are
// indexed by basis position, btran results by constraint row (for the square
// dense inverse the two coincide, for the LU kernel they are kept distinct).
type basisFactorization interface {
	// refactorize rebuilds the factorization from the owner's current basis
	// (the basic slice shared at construction). It returns false on a
	// numerically singular basis or when the owner's context fired mid-way.
	refactorize() bool
	// installIdentity resets the factorization to the all-slack basis, whose
	// matrix is the identity; it never fails.
	installIdentity()
	// ftranColumn computes out = B⁻¹·A_j for instance column j, out indexed
	// by basis position. Kernels may cache the partial triangular solve for
	// a following update call on the same column.
	ftranColumn(j int, out []float64)
	// ftranDense solves B·out = rhs for a dense right-hand side indexed by
	// constraint row. rhs is left untouched.
	ftranDense(rhs, out []float64)
	// btranDense solves Bᵀ·out = cb — the dual vector y = c_Bᵀ·B⁻¹ — with cb
	// indexed by basis position and out by constraint row. cb is left
	// untouched.
	btranDense(cb, out []float64)
	// btranRow computes out = e_rᵀ·B⁻¹, row r of the basis inverse (the
	// pivot row ρ driving the dual ratio test and devex weight updates).
	btranRow(r int, out []float64)
	// update applies the basis change replacing basis position r with the
	// column last passed to ftranColumn, whose full FTRAN result is w. It
	// returns false when the update is numerically unacceptable; the caller
	// then refactorizes the pre-pivot basis and may retry once.
	update(r int, w []float64) bool
	// updates reports the number of updates applied since the last
	// refactorize/installIdentity, driving the periodic-refresh policy.
	updates() int
	// snapshot returns the cumulative kernel counters.
	snapshot() FactorStats
	// kind names the kernel ("dense" or "sparse-lu").
	kind() string
}

// denseFactor is the PR 3 kernel: an explicit m×m basis inverse rebuilt by
// Gauss-Jordan elimination and maintained between refactorizations with
// product-form (eta) updates. Simple and cache-friendly, it is the kernel of
// choice for the small models below the sparse crossover.
type denseFactor struct {
	in    *instance
	basic []int32 // shared with the owning simplexState
	abort func() bool

	binv      []float64 // m×m row-major basis inverse
	factorBuf []float64
	since     int

	st FactorStats
}

func newDenseFactor(in *instance, basic []int32, abort func() bool) *denseFactor {
	m := in.m
	return &denseFactor{
		in:        in,
		basic:     basic,
		abort:     abort,
		binv:      make([]float64, m*m),
		factorBuf: make([]float64, m*m),
		st:        FactorStats{Kernel: "dense"},
	}
}

func (f *denseFactor) kind() string          { return "dense" }
func (f *denseFactor) updates() int          { return f.since }
func (f *denseFactor) snapshot() FactorStats { return f.st }

// installIdentity resets the inverse to the identity (the all-slack basis).
func (f *denseFactor) installIdentity() {
	m := f.in.m
	for i := range f.binv {
		f.binv[i] = 0
	}
	for i := 0; i < m; i++ {
		f.binv[i*m+i] = 1
	}
	f.since = 0
}

// refactorize rebuilds the dense basis inverse from the current basis by
// Gauss-Jordan elimination with partial pivoting. Returns false on a
// (numerically) singular basis.
func (f *denseFactor) refactorize() bool {
	in := f.in
	m := in.m
	f.since = 0
	f.st.Refactorizations++
	if m == 0 {
		return true
	}
	a := f.factorBuf
	for i := range a {
		a[i] = 0
	}
	for k := 0; k < m; k++ {
		j := int(f.basic[k])
		if j >= in.nStruct {
			a[(j-in.nStruct)*m+k] = 1
			continue
		}
		for p := in.colPtr[j]; p < in.colPtr[j+1]; p++ {
			a[int(in.rowIdx[p])*m+k] = in.val[p]
		}
	}
	binv := f.binv
	for i := range binv {
		binv[i] = 0
	}
	for i := 0; i < m; i++ {
		binv[i*m+i] = 1
	}
	for k := 0; k < m; k++ {
		// A full factorization is O(m³); honor cancellation mid-way on large
		// bases (the false return cascades into a prompt iteration-limit).
		if k&7 == 0 && f.abort != nil && f.abort() {
			return false
		}
		// Partial pivoting over rows k..m-1 of column k.
		p, best := -1, 1e-10
		for i := k; i < m; i++ {
			if v := math.Abs(a[i*m+k]); v > best {
				p, best = i, v
			}
		}
		if p < 0 {
			return false
		}
		if p != k {
			swapRows(a, m, p, k)
			swapRows(binv, m, p, k)
		}
		inv := 1 / a[k*m+k]
		scaleRow(a, m, k, inv)
		scaleRow(binv, m, k, inv)
		for i := 0; i < m; i++ {
			if i == k {
				continue
			}
			fi := a[i*m+k]
			if fi == 0 {
				continue
			}
			axpyRow(a, m, i, k, -fi)
			axpyRow(binv, m, i, k, -fi)
		}
	}
	return true
}

func swapRows(a []float64, m, i, j int) {
	ri, rj := a[i*m:(i+1)*m], a[j*m:(j+1)*m]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func scaleRow(a []float64, m, i int, f float64) {
	ri := a[i*m : (i+1)*m]
	for k := range ri {
		ri[k] *= f
	}
}

func axpyRow(a []float64, m, i, j int, f float64) {
	ri, rj := a[i*m:(i+1)*m], a[j*m:(j+1)*m]
	for k := range rj {
		if rj[k] != 0 {
			ri[k] += f * rj[k]
		}
	}
}

// ftranColumn computes out = B⁻¹·A_j exploiting the sparsity of A_j: each
// nonzero pulls in one column of the inverse.
func (f *denseFactor) ftranColumn(j int, out []float64) {
	in := f.in
	m := in.m
	for i := range out[:m] {
		out[i] = 0
	}
	if m == 0 {
		return
	}
	if j >= in.nStruct {
		r := j - in.nStruct
		for i := 0; i < m; i++ {
			out[i] = f.binv[i*m+r]
		}
		return
	}
	for p := in.colPtr[j]; p < in.colPtr[j+1]; p++ {
		r, v := int(in.rowIdx[p]), in.val[p]
		for i := 0; i < m; i++ {
			out[i] += v * f.binv[i*m+r]
		}
	}
}

// ftranDense computes out = B⁻¹·rhs row by row, skipping zero rhs entries.
func (f *denseFactor) ftranDense(rhs, out []float64) {
	m := f.in.m
	for i := 0; i < m; i++ {
		row := f.binv[i*m : (i+1)*m]
		v := 0.0
		for k, rk := range rhs[:m] {
			if rk != 0 {
				v += row[k] * rk
			}
		}
		out[i] = v
	}
}

// btranDense computes out = cbᵀ·B⁻¹, accumulating one inverse row per
// nonzero of cb.
func (f *denseFactor) btranDense(cb, out []float64) {
	m := f.in.m
	for k := range out[:m] {
		out[k] = 0
	}
	for i := 0; i < m; i++ {
		cbi := cb[i]
		if cbi == 0 {
			continue
		}
		row := f.binv[i*m : (i+1)*m]
		for k, v := range row {
			if v != 0 {
				out[k] += cbi * v
			}
		}
	}
}

// btranRow copies row r of the inverse.
func (f *denseFactor) btranRow(r int, out []float64) {
	m := f.in.m
	copy(out[:m], f.binv[r*m:(r+1)*m])
}

// update applies the product-form (eta) update for a pivot on basis row r
// with w = B⁻¹·A_q. Returns false when the pivot element is numerically
// unusable.
func (f *denseFactor) update(r int, w []float64) bool {
	m := f.in.m
	piv := w[r]
	if math.Abs(piv) < 1e-11 {
		f.st.UpdatesRejected++
		return false
	}
	inv := 1 / piv
	rowR := f.binv[r*m : (r+1)*m]
	for k := range rowR {
		rowR[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == r {
			continue
		}
		fi := w[i]
		if fi == 0 {
			continue
		}
		rowI := f.binv[i*m : (i+1)*m]
		for k, v := range rowR {
			if v != 0 {
				rowI[k] -= fi * v
			}
		}
	}
	f.since++
	f.st.Updates++
	return true
}
