package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestMILPKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 5a + 6b + 4c <= 10, binary.
	// Best: a + c = 17 (weight 9); b + c = 20 (weight 10) -> optimum 20.
	m := NewModel()
	a := m.NewBinary("a")
	b := m.NewBinary("b")
	c := m.NewBinary("c")
	m.AddLE("cap", *NewExpr(0).Add(a, 5).Add(b, 6).Add(c, 4), 10)
	m.SetObjective(*NewExpr(0).Add(a, 10).Add(b, 13).Add(c, 7), Maximize)

	sol, err := Solve(m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEq(sol.Objective, 20, 1e-6) {
		t.Errorf("objective = %v, want 20", sol.Objective)
	}
	if !almostEq(sol.Value(b), 1, 1e-6) || !almostEq(sol.Value(c), 1, 1e-6) {
		t.Errorf("want b=c=1, got a=%v b=%v c=%v", sol.Value(a), sol.Value(b), sol.Value(c))
	}
}

func TestMILPIntegerRounding(t *testing.T) {
	// max x + y s.t. 2x + 2y <= 7, integer -> LP gives 3.5, MILP must give 3.
	m := NewModel()
	x := m.NewInteger("x", 0, 10)
	y := m.NewInteger("y", 0, 10)
	m.AddLE("c", *NewExpr(0).Add(x, 2).Add(y, 2), 7)
	m.SetObjective(*NewExpr(0).Add(x, 1).Add(y, 1), Maximize)

	sol, err := Solve(m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEq(sol.Objective, 3, 1e-6) {
		t.Errorf("objective = %v, want 3", sol.Objective)
	}
}

func TestMILPInfeasible(t *testing.T) {
	m := NewModel()
	x := m.NewBinary("x")
	y := m.NewBinary("y")
	m.AddGE("both", *NewExpr(0).Add(x, 1).Add(y, 1), 3) // impossible for binaries
	m.SetObjective(VarExpr(x), Minimize)
	sol, err := Solve(m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestMILPEqualityBinary(t *testing.T) {
	// Exactly one of four binaries, with distinct costs: pick the cheapest.
	m := NewModel()
	vars := make([]Var, 4)
	costs := []float64{7, 3, 9, 5}
	pick := NewExpr(0)
	obj := NewExpr(0)
	for i := range vars {
		vars[i] = m.NewBinary("")
		pick.Add(vars[i], 1)
		obj.Add(vars[i], costs[i])
	}
	m.AddEQ("one", *pick, 1)
	m.SetObjective(*obj, Minimize)
	sol, err := Solve(m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || !almostEq(sol.Objective, 3, 1e-6) {
		t.Fatalf("objective = %v (status %v), want 3", sol.Objective, sol.Status)
	}
	if !almostEq(sol.Value(vars[1]), 1, 1e-6) {
		t.Errorf("wrong variable picked: %v", sol.X)
	}
}

func TestMILPWarmStartIncumbent(t *testing.T) {
	// Supply the optimum as incumbent; solver must not return anything worse.
	m := NewModel()
	x := m.NewInteger("x", 0, 100)
	m.AddLE("c", *NewExpr(0).Add(x, 3), 250)
	m.SetObjective(VarExpr(x), Maximize)
	sol, err := Solve(m, SolveOptions{Incumbent: []float64{83}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || !almostEq(sol.Objective, 83, 1e-6) {
		t.Fatalf("objective = %v (status %v), want 83", sol.Objective, sol.Status)
	}
}

func TestMILPTimeLimitReturnsIncumbent(t *testing.T) {
	// With a zero-ish deadline and an incumbent, the solver must return the
	// incumbent as best effort.
	m := NewModel()
	n := 14
	cap := NewExpr(0)
	obj := NewExpr(0)
	r := rand.New(rand.NewSource(7))
	vars := make([]Var, n)
	inc := make([]float64, n)
	for i := 0; i < n; i++ {
		vars[i] = m.NewBinary("")
		cap.Add(vars[i], float64(1+r.Intn(9)))
		obj.Add(vars[i], float64(1+r.Intn(9)))
	}
	m.AddLE("cap", *cap, 20)
	m.SetObjective(*obj, Maximize)
	sol, err := Solve(m, SolveOptions{TimeLimit: time.Nanosecond, Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusTimeLimit {
		t.Fatalf("status = %v, want time-limit", sol.Status)
	}
	if sol.X == nil {
		t.Fatal("expected incumbent solution to be returned")
	}
}

// hardKnapsack builds a strongly-correlated knapsack (profits equal weights,
// even weights, odd capacity) whose optimality proof needs an exponential
// branch-and-bound tree — the LP bound stays half a unit above any integral
// solution — plus a trivially feasible all-zero incumbent.
func hardKnapsack(n int) (*Model, []float64) {
	m := NewModel()
	r := rand.New(rand.NewSource(42))
	capE := NewExpr(0)
	objE := NewExpr(0)
	total := 0.0
	for i := 0; i < n; i++ {
		w := float64(2 * (5 + r.Intn(45)))
		total += w
		v := m.NewBinary("")
		capE.Add(v, w)
		objE.Add(v, w)
	}
	capacity := math.Floor(total / 2)
	if math.Mod(capacity, 2) == 0 {
		capacity++
	}
	m.AddLE("cap", *capE, capacity)
	m.SetObjective(*objE, Maximize)
	return m, make([]float64, m.NumVars())
}

func TestMILPCancelledContextReturnsIncumbentPromptly(t *testing.T) {
	m, inc := hardKnapsack(40)
	ctx, cancel := context.WithCancel(context.Background())
	const after = 50 * time.Millisecond
	time.AfterFunc(after, cancel)

	start := time.Now()
	sol, err := SolveContext(ctx, m, SolveOptions{Incumbent: inc})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInterrupted {
		t.Fatalf("status = %v, want interrupted (solve finished in %v: instance too easy?)", sol.Status, elapsed)
	}
	if sol.X == nil {
		t.Fatal("expected the incumbent to be returned on cancellation")
	}
	// Cancellation must be honored promptly (the acceptance bar is ~100 ms;
	// allow slack for loaded CI machines).
	if overshoot := elapsed - after; overshoot > 400*time.Millisecond {
		t.Errorf("solve returned %v after cancellation, want ~100ms", overshoot)
	}
}

func TestMILPPreCancelledContext(t *testing.T) {
	m, _ := hardKnapsack(20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := SolveContext(ctx, m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInterrupted {
		t.Fatalf("status = %v, want interrupted", sol.Status)
	}
	if sol.X != nil {
		t.Error("no incumbent was supplied, yet a solution came back")
	}
}

func TestMILPBigMDisjunction(t *testing.T) {
	// Two jobs of length 5 and 4 on one machine, disjunctive big-M ordering:
	// makespan must be 9. This is exactly the non-overlap pattern used by the
	// scheduler (constraint (4) of the paper linearized with order binaries).
	const bigM = 1000
	m := NewModel()
	s1 := m.NewContinuous("s1", 0, bigM)
	s2 := m.NewContinuous("s2", 0, bigM)
	mk := m.NewContinuous("makespan", 0, bigM)
	y := m.NewBinary("y12") // 1 => job1 before job2
	// s1 + 5 <= s2 + M(1-y)
	m.AddLE("ord12", *NewExpr(5).Add(s1, 1).Add(s2, -1).Add(y, bigM), bigM)
	// s2 + 4 <= s1 + M*y
	m.AddLE("ord21", *NewExpr(4).Add(s2, 1).Add(s1, -1).Add(y, -bigM), 0)
	m.AddGE("mk1", *NewExpr(0).Add(mk, 1).Add(s1, -1), 5)
	m.AddGE("mk2", *NewExpr(0).Add(mk, 1).Add(s2, -1), 4)
	m.SetObjective(VarExpr(mk), Minimize)

	sol, err := Solve(m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEq(sol.Objective, 9, 1e-5) {
		t.Errorf("makespan = %v, want 9", sol.Objective)
	}
}

// TestMILPMatchesBruteForceProperty cross-checks branch and bound against
// exhaustive enumeration on random small binary knapsacks.
func TestMILPMatchesBruteForceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(5) // 3..7 binaries
		w := make([]float64, n)
		p := make([]float64, n)
		for i := range w {
			w[i] = float64(1 + r.Intn(9))
			p[i] = float64(1 + r.Intn(9))
		}
		capacity := float64(5 + r.Intn(15))

		m := NewModel()
		vars := make([]Var, n)
		capE := NewExpr(0)
		objE := NewExpr(0)
		for i := range vars {
			vars[i] = m.NewBinary("")
			capE.Add(vars[i], w[i])
			objE.Add(vars[i], p[i])
		}
		m.AddLE("cap", *capE, capacity)
		m.SetObjective(*objE, Maximize)
		sol, err := Solve(m, SolveOptions{})
		if err != nil || sol.Status != StatusOptimal {
			return false
		}

		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			wt, pf := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					wt += w[i]
					pf += p[i]
				}
			}
			if wt <= capacity && pf > best {
				best = pf
			}
		}
		return almostEq(sol.Objective, best, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMILPIntegerSolutionsAreIntegral checks the integrality post-condition
// on random mixed problems.
func TestMILPIntegerSolutionsAreIntegral(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewModel()
		n := 2 + r.Intn(4)
		vars := make([]Var, n)
		sum := NewExpr(0)
		for i := range vars {
			vars[i] = m.NewInteger("", 0, float64(3+r.Intn(5)))
			sum.Add(vars[i], float64(1+r.Intn(3)))
		}
		m.AddLE("s", *sum, float64(4+r.Intn(10)))
		obj := NewExpr(0)
		for _, v := range vars {
			obj.Add(v, 1+r.Float64())
		}
		m.SetObjective(*obj, Maximize)
		sol, err := Solve(m, SolveOptions{})
		if err != nil || !sol.Feasible() {
			return false
		}
		for _, v := range vars {
			x := sol.Value(v)
			if math.Abs(x-math.Round(x)) > 1e-6 {
				return false
			}
		}
		ok, _ := CheckFeasible(m, sol.X)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
