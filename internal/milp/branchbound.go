package milp

import (
	"container/heap"
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"
)

// SolveOptions configures the branch-and-bound MILP driver.
type SolveOptions struct {
	// TimeLimit caps wall-clock time. Zero means no limit. It is implemented
	// as a context.WithTimeout derived from the caller's context; when it
	// fires the best incumbent found so far is returned with StatusTimeLimit,
	// matching the paper's best-effort 30-minute solver cap.
	TimeLimit time.Duration
	// MaxNodes caps the number of branch-and-bound nodes. Zero means no cap.
	MaxNodes int
	// Gap is the relative optimality gap at which search stops early
	// (|incumbent - bound| <= Gap * max(1,|incumbent|)). Zero requires proof
	// of optimality.
	Gap float64
	// Incumbent, if non-nil, provides a known feasible assignment (indexed by
	// Var.ID) used as the initial upper bound (lower for Maximize). A warm
	// start from the heuristic scheduler prunes most of the tree.
	Incumbent []float64
	// IntFeasTol is the integrality tolerance; defaults to 1e-6.
	IntFeasTol float64
	// Logger, if non-nil, receives periodic progress lines.
	Logger func(format string, args ...any)
	// OnIncumbent, if non-nil, is invoked whenever the search installs an
	// improving integral incumbent — including the initial Incumbent warm
	// start — with a copy of the assignment (indexed by Var.ID), its
	// objective value in the model's sense, and the node count at that
	// moment. It is called synchronously from solver workers while internal
	// locks are held: implementations must be fast and must not call back
	// into the solver.
	OnIncumbent func(x []float64, objective float64, nodes int)
	// Workers bounds the parallel branch-and-bound worker pool. Zero selects
	// min(GOMAXPROCS, 8); one recovers a fully sequential search.
	Workers int
	// BranchPriority, if non-nil, ranks integer variables for branching: at
	// each node only the fractional candidates of the highest priority class
	// present compete on pseudo-cost scores. Higher values branch first. Use
	// it to steer the search toward "master" decisions (e.g. assignment
	// binaries that determine auxiliary indicators through propagation);
	// integrality and optimality are unaffected — only the tree shape changes.
	BranchPriority func(v Var) int
	// Conflicts declares pairs of binary literals that cannot both be 1 in
	// any integer-feasible point (domain knowledge the row structure alone
	// does not expose, e.g. must-overlap operation pairs). They seed the
	// root conflict graph, whose maximal-clique cuts tighten the relaxation;
	// pairs over non-binary or presolve-eliminated variables are ignored.
	// Declaring a pair that CAN jointly be 1 makes the clique cuts invalid
	// and may prune the true optimum.
	Conflicts [][2]ConflictLiteral
	// ObjIntegral asserts that every integer-feasible point of the model
	// attains an integral objective value (after continuous variables settle
	// at their objective-minimal positions) — e.g. integer objective
	// coefficients over integer variables, or a totally unimodular continuous
	// block with integral data. The solver then rounds every node relaxation
	// bound up to the next integer and strengthens the incumbent cutoff to
	// bestObj-1, which both prunes harder and lets reduced-cost fixing bite:
	// tiny fractional bound gaps become whole-unit proofs. Setting it on a
	// model where the assertion fails can prune the true optimum.
	ObjIntegral bool
}

// bbNode is one open subproblem: the bound changes accumulated from the root
// and the parent's optimal basis, from which the node's relaxation is
// warm-started with a dual-simplex cleanup.
type bbNode struct {
	seq     int64
	bound   float64 // parent relaxation value, minimize sense
	depth   int
	changes []bndChange
	basic   []int32 // parent basis snapshot (nil for the root: cold solve)
	stat    []int8

	// Branching pedigree for pseudo-cost learning: the structural column the
	// parent branched on to create this node (-1 for the root), the branch
	// direction, and the fractional distance the branch moved (f down,
	// 1-f up). The node's solved bound minus bound, scaled by bdist, is one
	// per-unit degradation observation for (bcol, bup).
	bcol  int32
	bup   bool
	bdist float64
}

// nodeHeap is a best-bound priority queue (ties broken by creation order so
// single-worker searches stay deterministic).
type nodeHeap []*bbNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// bbShared is the coordinator state shared by the worker pool.
type bbShared struct {
	mu   sync.Mutex
	cond *sync.Cond

	open        nodeHeap
	outstanding int
	seq         int64

	best    []float64
	bestObj float64 // minimize sense; +inf when no incumbent

	nodes, lpIters, warm, cold int

	// Worker-merged diagnostics: factorization kernel counters, the
	// node-level propagation tallies, and the incremental-vs-full pricing
	// pivot split (flushed once per worker at exit).
	factor                 FactorStats
	propTighten, propPrune int
	incrPivots, fullPivots int
	rcFixed                int

	// Pseudo-cost tables, one entry per structural column: summed per-unit
	// objective degradations and observation counts, split by branch
	// direction. Totals feed the uninitialized-column fallback average.
	pcDown, pcUp   []float64
	pcDownN, pcUpN []int32
	pcDownTot      float64
	pcUpTot        float64
	pcDownObs      int
	pcUpObs        int
	pcInits        int     // reliability-initialization probes run
	heurFound      int     // incumbents installed by node heuristics
	heurNext       int     // node count gating the next heuristic dive
	lbFound        int     // incumbents installed by local branching
	lbLastObj      float64 // bestObj at the last local-branching attempt
	lbActive       bool    // a worker currently holds the local-branching slot

	// lostLB is the smallest bound of any subtree dropped without a full
	// proof: pruned by the Gap option, or abandoned when the search stopped.
	// It caps the global dual bound alongside the open queue.
	lostLB float64

	nodeLimit     bool
	incomplete    bool
	rootUnbounded bool
	stopped       bool
}

func (sh *bbShared) wake() { sh.cond.Broadcast() }

// gapMetLocked reports whether a subtree with the given bound cannot improve
// the incumbent enough to be worth exploring. Callers hold sh.mu.
func (sh *bbShared) gapMetLocked(lb, gap float64) bool {
	if sh.best == nil {
		return false
	}
	if sh.bestObj-lb <= 1e-9 {
		return true
	}
	if gap > 0 && sh.bestObj-lb <= gap*math.Max(1, math.Abs(sh.bestObj)) {
		if lb < sh.lostLB {
			sh.lostLB = lb
		}
		return true
	}
	return false
}

// noteLostLocked records the bound of a subtree dropped without proof.
func (sh *bbShared) noteLostLocked(lb float64) {
	if lb < sh.lostLB {
		sh.lostLB = lb
	}
}

// Solve runs branch and bound on m. Continuous models are dispatched straight
// to the simplex. The returned solution is indexed by Var.ID.
func Solve(m *Model, opts SolveOptions) (*Solution, error) {
	return SolveContext(context.Background(), m, opts)
}

// SolveContext is Solve bounded by a context. Cancelling ctx mid-solve stops
// the search promptly (within a few simplex pivots, typically well under
// 100 ms) and returns the best incumbent with StatusInterrupted, or a
// solution with no assignment when none was found. opts.TimeLimit is layered
// on top of ctx as a derived context.WithTimeout.
//
// The search is a best-bound branch and bound over a compiled sparse LP:
// each popped node warm-starts from its parent's basis with a dual-simplex
// cleanup (cold primal solve only on numerical failure), then dives on one
// child in place — no refactorization, just a bound change — while the other
// child joins the shared queue. opts.Workers such workers run concurrently
// against a shared incumbent.
func SolveContext(ctx context.Context, m *Model, opts SolveOptions) (*Solution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	intVars := m.IntegerVars()
	solveCtx, cancel := solveDeadline(ctx, opts.TimeLimit)
	defer cancel()

	if len(intVars) == 0 {
		sol, err := solveLPContext(solveCtx, m)
		// The simplex reports any context abort as StatusIterLimit;
		// distinguish caller cancellation from the derived time limit.
		if err == nil && sol.Status == StatusIterLimit && solveCtx.Err() != nil {
			sol.Status = abortStatus(ctx, solveCtx)
		}
		return sol, err
	}

	if opts.IntFeasTol == 0 {
		opts.IntFeasTol = 1e-6
	}
	_, sense := m.Objective()
	dirSign := 1.0
	if sense == Maximize {
		dirSign = -1
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = min(runtime.GOMAXPROCS(0), 8)
	}

	sh := &bbShared{bestObj: math.Inf(1), lostLB: math.Inf(1), lbLastObj: math.Inf(1)}
	sh.cond = sync.NewCond(&sh.mu)
	if opts.Incumbent != nil {
		if ok, obj := checkFeasible(m, opts.Incumbent, opts.IntFeasTol); ok {
			sh.best = append([]float64(nil), opts.Incumbent...)
			sh.bestObj = dirSign * obj
			if opts.OnIncumbent != nil {
				opts.OnIncumbent(append([]float64(nil), sh.best...), obj, 0)
			}
		}
	}

	in, decided := compile(m, true)
	stats := SolveStats{Presolve: in.pre, Workers: workers, Gap: -1}
	if decided == StatusInfeasible {
		// Presolve proved the model empty before any search. A feasible user
		// incumbent contradicting that can only mean tolerance disagreement;
		// trust the incumbent over the proof.
		if sh.best != nil {
			return &Solution{Status: StatusFeasible, X: sh.best, Objective: dirSign * sh.bestObj,
				Bound: math.NaN(), Stats: stats}, nil
		}
		stats.Gap = 0
		return &Solution{Status: StatusInfeasible, Stats: stats}, nil
	}
	if solveCtx.Err() != nil {
		return finishAborted(abortStatus(ctx, solveCtx), sh, dirSign, stats), nil
	}

	// Root cutting planes: tighten the relaxation with Gomory mixed-integer,
	// lifted cover, and conflict-clique cuts before any branching. The cut
	// loop also hands back the root optimum's basis, so the root node
	// warm-starts like any other.
	cutRes := rootCutLoop(solveCtx, in, opts.IntFeasTol, opts.Conflicts, workers)
	in = cutRes.in
	stats.Cuts = cutRes.stats
	stats.SeparationWall = cutRes.sepWall
	sh.lpIters += cutRes.iters
	sh.incrPivots += cutRes.incr
	sh.fullPivots += cutRes.full
	if cutRes.status == StatusOptimal {
		// The cut loop cold-solved the root relaxation; the root node then
		// re-attaches to its basis as a warm start like any other node.
		sh.cold++
	}
	root := &bbNode{bound: math.Inf(-1), bcol: -1}
	if cutRes.basic != nil {
		root.basic, root.stat = cutRes.basic, cutRes.stat
	}

	sh.pcDown = make([]float64, in.nStruct)
	sh.pcUp = make([]float64, in.nStruct)
	sh.pcDownN = make([]int32, in.nStruct)
	sh.pcUpN = make([]int32, in.nStruct)

	sh.open = nodeHeap{root}
	obj, _ := m.Objective()

	// A context abort must also wake workers parked on the condition
	// variable; the watcher exits when the solve finishes (cancel above).
	go func() {
		<-solveCtx.Done()
		sh.mu.Lock()
		sh.stopped = true
		sh.wake()
		sh.mu.Unlock()
	}()

	// Branching priorities are fixed for the whole solve; resolve the
	// callback once so candidate filtering is an array lookup per node.
	var prio []int
	if opts.BranchPriority != nil {
		prio = make([]int, m.NumVars())
		for _, v := range intVars {
			prio[v.id] = opts.BranchPriority(v)
		}
	}

	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			w := &bbWorker{
				sh: sh, in: in, m: m, obj: obj, opts: opts,
				dirSign: dirSign, intVars: intVars, id: wid,
				st: newState(in), prio: prio,
			}
			w.st.ctx = solveCtx
			w.run()
		}(wid)
	}
	wg.Wait()

	sh.mu.Lock()
	defer sh.mu.Unlock()
	stats.Nodes = sh.nodes
	stats.SimplexIters = sh.lpIters
	stats.WarmStarts = sh.warm
	stats.ColdStarts = sh.cold
	stats.Factor = sh.factor
	stats.PropagationTightenings = sh.propTighten
	stats.PropagationPrunes = sh.propPrune
	stats.PseudoCostInits = sh.pcInits
	stats.HeuristicIncumbents = sh.heurFound
	stats.LocalBranchingIncumbents = sh.lbFound
	stats.IncrementalPivots = sh.incrPivots
	stats.FullPricingPivots = sh.fullPivots
	stats.ReducedCostFixings = sh.rcFixed

	if sh.rootUnbounded {
		return &Solution{Status: StatusUnbounded, Nodes: sh.nodes, Iterations: sh.lpIters, Stats: stats}, nil
	}

	cancelled := ctx.Err() != nil
	timedOut := !cancelled && solveCtx.Err() != nil
	drained := len(sh.open) == 0 && !sh.incomplete && !sh.nodeLimit

	// Global dual bound: the weakest of everything still open or dropped
	// without proof.
	globalLB := sh.lostLB
	for _, n := range sh.open {
		if n.bound < globalLB {
			globalLB = n.bound
		}
	}

	res := &Solution{Nodes: sh.nodes, Iterations: sh.lpIters, Stats: stats}
	switch {
	case sh.best != nil && drained:
		res.Status = StatusOptimal
		res.X = sh.best
		res.Objective = dirSign * sh.bestObj
		res.Bound = res.Objective
		res.Stats.Gap = 0
		if !math.IsInf(sh.lostLB, 1) {
			// Optimal only up to the requested gap: subtrees below the
			// incumbent were pruned unproven, so the honest dual bound is
			// theirs, not the incumbent's, and the residual gap is reported.
			res.Bound = dirSign * math.Min(sh.lostLB, sh.bestObj)
			res.Stats.Gap = relGap(sh.bestObj, sh.lostLB)
		}
	case sh.best != nil:
		switch {
		case cancelled:
			res.Status = StatusInterrupted
		case timedOut:
			res.Status = StatusTimeLimit
		case sh.nodeLimit:
			res.Status = StatusIterLimit
		default:
			res.Status = StatusFeasible
		}
		res.X = sh.best
		res.Objective = dirSign * sh.bestObj
		res.Bound = math.NaN()
		if !math.IsInf(globalLB, 0) {
			res.Bound = dirSign * globalLB
			res.Stats.Gap = relGap(sh.bestObj, globalLB)
		}
	case cancelled:
		res.Status = StatusInterrupted
	case timedOut || sh.incomplete:
		res.Status = StatusTimeLimit
	case sh.nodeLimit:
		res.Status = StatusIterLimit
	default:
		res.Status = StatusInfeasible
		res.Stats.Gap = 0
	}
	return res, nil
}

// relGap is the relative optimality gap between an incumbent and a dual
// bound, both in minimize sense.
func relGap(best, lb float64) float64 {
	g := (best - lb) / math.Max(1, math.Abs(best))
	if g < 0 {
		return 0
	}
	return g
}

// finishAborted builds the best-effort result for a solve whose context was
// already done before the search started.
func finishAborted(status Status, sh *bbShared, dirSign float64, stats SolveStats) *Solution {
	res := &Solution{Status: status, Stats: stats}
	if sh.best != nil {
		res.X = sh.best
		res.Objective = dirSign * sh.bestObj
		res.Bound = math.NaN()
	}
	return res
}

// bbWorker is one branch-and-bound worker: it pops best-bound nodes from the
// shared queue, solves them warm from the parent basis, and dives.
type bbWorker struct {
	sh      *bbShared
	in      *instance
	m       *Model
	obj     Expr
	opts    SolveOptions
	dirSign float64
	intVars []Var
	id      int
	st      *simplexState
	prio    []int // resolved BranchPriority by var id; nil when unset

	// heur is a second, lazily allocated simplex state the node heuristics
	// (RINS, feasibility diving) scribble on, so the worker's main state and
	// its live basis survive a dive untouched.
	heur *simplexState

	// Local propagation and reduced-cost-fixing tallies, merged into
	// bbShared at exit.
	propTighten, propPrune int
	rcFixed                int
}

func (w *bbWorker) run() {
	sh := w.sh
	defer func() {
		sh.mu.Lock()
		sh.factor.merge(w.st.fac.snapshot())
		sh.propTighten += w.propTighten
		sh.propPrune += w.propPrune
		sh.rcFixed += w.rcFixed
		sh.incrPivots += w.st.incrPivots
		sh.fullPivots += w.st.fullPivots
		if w.heur != nil {
			sh.factor.merge(w.heur.fac.snapshot())
			sh.incrPivots += w.heur.incrPivots
			sh.fullPivots += w.heur.fullPivots
		}
		sh.mu.Unlock()
	}()
	for {
		sh.mu.Lock()
		for {
			if sh.stopped || sh.nodeLimit || sh.rootUnbounded {
				sh.mu.Unlock()
				return
			}
			// Drop queued nodes the incumbent has since pruned.
			for len(sh.open) > 0 && sh.gapMetLocked(sh.open[0].bound, w.opts.Gap) {
				heap.Pop(&sh.open)
			}
			if len(sh.open) > 0 {
				break
			}
			if sh.outstanding == 0 {
				sh.wake()
				sh.mu.Unlock()
				return
			}
			sh.cond.Wait()
		}
		node := heap.Pop(&sh.open).(*bbNode)
		sh.outstanding++
		sh.mu.Unlock()

		w.processSubtree(node)

		sh.mu.Lock()
		sh.outstanding--
		if sh.outstanding == 0 && len(sh.open) == 0 {
			sh.wake()
		}
		sh.mu.Unlock()
	}
}

// applyChanges installs the node's bounds on the worker state. Returns false
// when a bound pair crossed (the node is trivially infeasible).
func (w *bbWorker) applyChanges(changes []bndChange) bool {
	w.st.resetBounds()
	for _, ch := range changes {
		c := int(ch.col)
		nlo := math.Max(w.st.lo[c], ch.lo)
		nhi := math.Min(w.st.hi[c], ch.hi)
		if nlo > nhi {
			return false
		}
		w.st.lo[c], w.st.hi[c] = nlo, nhi
	}
	return true
}

// solveRelax runs the given warm attempt and falls back to a from-scratch
// solve when it failed numerically or stalled on degeneracy while the clock
// is still running. The bool reports whether the warm start was used.
func (w *bbWorker) solveRelax(warmAttempt func() Status) (Status, bool) {
	st := warmAttempt()
	if st == statusNumFail || (st == StatusIterLimit && w.st.ctx.Err() == nil) {
		return w.st.solveCold(), false
	}
	return st, true
}

// processSubtree solves the popped node and dives down one child chain,
// pushing the sibling of every branching step onto the shared queue. Dive
// steps reuse the live basis and inverse — the child differs by one bound
// change, so the dual simplex continues in place without refactorization.
func (w *bbWorker) processSubtree(node *bbNode) {
	st := w.st
	if !w.applyChanges(node.changes) {
		return
	}
	// Node-level propagation: replay the presolve's activity-based bound
	// tightening under this node's branching decisions. The root (no
	// changes) was already propagated to a fixpoint at compile time.
	if len(node.changes) > 0 {
		n, ok := propagateBounds(w.in, st.lo, st.hi)
		w.propTighten += n
		if !ok {
			w.propPrune++
			return
		}
	}

	var status Status
	var warmed bool
	if node.basic != nil {
		copy(st.basic, node.basic)
		copy(st.stat, node.stat)
		for j := range st.pos {
			st.pos[j] = -1
		}
		for i, col := range st.basic {
			st.pos[col] = int32(i)
		}
		status, warmed = w.solveRelax(st.solveWarm)
	} else {
		status, warmed = st.solveCold(), false
	}

	depth := node.depth
	changes := node.changes
	curBound := node.bound
	bcol, bup, bdist := node.bcol, node.bup, node.bdist
	for {
		iters := st.iters
		st.iters = 0
		var x []float64
		lb := curBound
		if status == StatusOptimal {
			x = st.extract()
			lb = w.dirSign * w.obj.Eval(x)
			if w.opts.ObjIntegral {
				// Every attainable objective in this subtree is integral, so
				// the fractional relaxation bound rounds up for free.
				if r := math.Ceil(lb - 1e-6); r > lb {
					lb = r
				}
			}
			if bcol >= 0 {
				// The branch that created this node degraded the bound by
				// lb-curBound over a fractional distance of bdist: one
				// pseudo-cost observation.
				w.recordPseudo(bcol, bup, bdist, lb-curBound)
			}
		}
		if !w.accountNode(status, warmed, iters, depth, lb) {
			return
		}
		curBound = lb

		// Optimal relaxation: check integrality, otherwise branch and dive.
		cands := w.fracCandidates(x)
		if len(cands) == 0 {
			w.foundIncumbent(x, lb)
			return
		}

		// Reduced-cost fixing against the incumbent cutoff: the current basis
		// stays optimal (only far bounds move), the whole dive chain inherits
		// the tightened box, and propagation sees the stronger activities.
		w.rcFixed += w.rcFix(lb)

		// The sibling must warm-start from this node's optimal basis, and
		// reliability probes below pivot away from it — snapshot first.
		sibBasic := append([]int32(nil), st.basic...)
		sibStat := append([]int8(nil), st.stat...)

		// Periodic primal heuristics: RINS against the incumbent plus a
		// feasibility dive, run from this node's relaxation on the scratch
		// state.
		if w.claimHeuristicSlot() {
			w.runHeuristics(x)
		}

		// Local branching: whenever the incumbent has improved since the last
		// attempt, one worker searches its Hamming-ball neighbourhood as a
		// budgeted sub-MIP on a scratch state.
		if inc, cutoff, ok := w.claimLocalBranchSlot(); ok {
			w.runLocalBranch(inc, cutoff)
		}

		cands = w.filterPriority(cands)
		w.reliabilityProbes(cands, lb, depth)
		pick := w.selectBranch(cands)

		col := pick.col
		xv := pick.x
		fl, ce := math.Floor(xv), math.Ceil(xv)
		down := bndChange{col: col, lo: math.Inf(-1), hi: fl}
		up := bndChange{col: col, lo: ce, hi: math.Inf(1)}
		diveCh, pushCh := down, up
		diveUp, pushUp := false, true
		if xv-fl >= ce-xv {
			diveCh, pushCh = up, down
			diveUp, pushUp = true, false
		}
		diveDist, pushDist := xv-fl, ce-xv
		if diveUp {
			diveDist, pushDist = ce-xv, xv-fl
		}

		// The sibling gets a snapshot of this node's optimal basis to warm
		// start from; the dive child keeps the live basis and inverse.
		sib := &bbNode{
			bound:   lb,
			depth:   depth + 1,
			changes: append(append([]bndChange(nil), changes...), pushCh),
			basic:   sibBasic,
			stat:    sibStat,
			bcol:    col,
			bup:     pushUp,
			bdist:   pushDist,
		}
		sh := w.sh
		sh.mu.Lock()
		sh.seq++
		sib.seq = sh.seq
		heap.Push(&sh.open, sib)
		sh.cond.Signal()
		sh.mu.Unlock()

		changes = append(changes, diveCh)
		depth++
		bcol, bup, bdist = col, diveUp, diveDist
		c := int(diveCh.col)
		nlo := math.Max(st.lo[c], diveCh.lo)
		nhi := math.Min(st.hi[c], diveCh.hi)
		if nlo > nhi {
			return
		}
		st.lo[c], st.hi[c] = nlo, nhi
		// Propagate the dive bound change too; the dual warm start then
		// starts from every implied tightening at once.
		n, ok := propagateBounds(w.in, st.lo, st.hi)
		w.propTighten += n
		if !ok {
			w.propPrune++
			return
		}
		status, warmed = w.solveRelax(func() Status { return st.dual(st.warmLimit()) })
	}
}

// bbCand is one fractional branching candidate at a node.
type bbCand struct {
	v    Var
	col  int32
	x    float64 // relaxation value
	frac float64 // x - floor(x), in (0, 1)
}

// fracCandidates lists the integer columns fractional at x.
func (w *bbWorker) fracCandidates(x []float64) []bbCand {
	var cands []bbCand
	for _, v := range w.intVars {
		col := w.in.varCol[v.id]
		if col < 0 {
			continue
		}
		xv := x[v.id]
		f := xv - math.Floor(xv)
		if math.Min(f, 1-f) > w.opts.IntFeasTol {
			cands = append(cands, bbCand{v: v, col: int32(col), x: xv, frac: f})
		}
	}
	return cands
}

// filterPriority keeps only the highest BranchPriority class among the
// fractional candidates, so pseudo-cost scoring competes within that class.
func (w *bbWorker) filterPriority(cands []bbCand) []bbCand {
	if w.prio == nil || len(cands) < 2 {
		return cands
	}
	best := w.prio[cands[0].v.id]
	for _, c := range cands[1:] {
		if p := w.prio[c.v.id]; p > best {
			best = p
		}
	}
	kept := cands[:0]
	for _, c := range cands {
		if w.prio[c.v.id] == best {
			kept = append(kept, c)
		}
	}
	return kept
}

// recordPseudo books one pseudo-cost observation: branching col in the given
// direction over fractional distance dist degraded the relaxation bound by
// delta.
func (w *bbWorker) recordPseudo(col int32, up bool, dist, delta float64) {
	if dist < 1e-9 {
		return
	}
	if delta < 0 {
		delta = 0 // numerical noise; bounds cannot improve downward
	}
	perUnit := delta / dist
	sh := w.sh
	sh.mu.Lock()
	if up {
		sh.pcUp[col] += perUnit
		sh.pcUpN[col]++
		sh.pcUpTot += perUnit
		sh.pcUpObs++
	} else {
		sh.pcDown[col] += perUnit
		sh.pcDownN[col]++
		sh.pcDownTot += perUnit
		sh.pcDownObs++
	}
	sh.mu.Unlock()
}

// rcFix tightens the worker state's bounds by reduced-cost fixing. At a
// dual-feasible optimum with bound lb, any point of the subtree that improves
// on the incumbent cutoff can move a nonbasic column away from its bound by
// at most slack/|d_j|, where slack is the room between lb and the cutoff.
// Integer columns round that radius down, so binaries with a large reduced
// cost are fixed outright. Only the far bound of each nonbasic moves, so the
// current basis stays primal and dual feasible and no re-solve is needed;
// the dive chain and node propagation both inherit the tighter box. Returns
// the number of bounds tightened.
func (w *bbWorker) rcFix(lb float64) int {
	sh := w.sh
	sh.mu.Lock()
	best := sh.bestObj
	sh.mu.Unlock()
	if math.IsInf(best, 1) {
		return 0
	}
	cutoff := best - 1e-9
	if w.opts.ObjIntegral {
		cutoff = best - 1 + 1e-6
	}
	slack := cutoff - lb
	if slack < 0 {
		return 0
	}
	st := w.st
	fixed := 0
	for j, s := range st.stat {
		isInt := j < w.in.nStruct && w.in.intCol[j]
		switch s {
		case nbLower:
			d := st.d[j]
			if d <= redCostEps {
				continue
			}
			nhi := st.lo[j] + slack/d
			if isInt {
				nhi = st.lo[j] + math.Floor(slack/d+intRoundTol)
			}
			if nhi < st.hi[j]-1e-9 {
				st.hi[j] = nhi
				fixed++
			}
		case nbUpper:
			d := st.d[j]
			if d >= -redCostEps {
				continue
			}
			nlo := st.hi[j] - slack/(-d)
			if isInt {
				nlo = st.hi[j] - math.Floor(slack/(-d)+intRoundTol)
			}
			if nlo > st.lo[j]+1e-9 {
				st.lo[j] = nlo
				fixed++
			}
		}
	}
	return fixed
}

// Reliability-branching parameters.
const (
	// relProbeDepth limits reliability probes to nodes near the root, where
	// a bad branching choice costs the most.
	relProbeDepth = 2
	// relProbeCands caps probed candidates per node.
	relProbeCands = 4
	// relProbeBudget caps probes per solve (each candidate costs two).
	relProbeBudget = 96
	// probePivots is the dual-simplex budget of one strong-branching probe.
	probePivots = 30
)

// reliabilityProbes initializes pseudo-costs for unreliable candidates with
// truncated strong branching: bound the column as the branch would, run a
// few dual pivots, and book the observed degradation. Probes leave the
// working basis wherever they stop — dual feasibility does not depend on
// variable bounds, so the subsequent dive solve simply continues from there;
// only the bounds are restored.
func (w *bbWorker) reliabilityProbes(cands []bbCand, lb float64, depth int) {
	if depth > relProbeDepth {
		return
	}
	sh := w.sh
	var need []int
	sh.mu.Lock()
	if sh.pcInits < relProbeBudget {
		for k, c := range cands {
			if sh.pcDownN[c.col] == 0 || sh.pcUpN[c.col] == 0 {
				need = append(need, k)
			}
		}
	}
	sh.mu.Unlock()
	if len(need) == 0 {
		return
	}
	sort.Slice(need, func(a, b int) bool {
		da := math.Min(cands[need[a]].frac, 1-cands[need[a]].frac)
		db := math.Min(cands[need[b]].frac, 1-cands[need[b]].frac)
		if da != db {
			return da > db // most fractional first
		}
		return cands[need[a]].col < cands[need[b]].col
	})
	if len(need) > relProbeCands {
		need = need[:relProbeCands]
	}
	st := w.st
	for _, k := range need {
		c := cands[k]
		sh.mu.Lock()
		if sh.pcInits >= relProbeBudget || sh.stopped {
			sh.mu.Unlock()
			return
		}
		sh.pcInits += 2
		sh.mu.Unlock()
		col := int(c.col)
		savedLo, savedHi := st.lo[col], st.hi[col]
		st.hi[col] = math.Floor(c.x)
		if st.dual(probePivots) == StatusOptimal {
			px := st.extract()
			w.recordPseudo(c.col, false, c.frac, w.dirSign*w.obj.Eval(px)-lb)
		}
		st.lo[col], st.hi[col] = savedLo, savedHi
		st.lo[col] = math.Ceil(c.x)
		if st.dual(probePivots) == StatusOptimal {
			px := st.extract()
			w.recordPseudo(c.col, true, 1-c.frac, w.dirSign*w.obj.Eval(px)-lb)
		}
		st.lo[col], st.hi[col] = savedLo, savedHi
		if st.aborted() {
			return
		}
	}
}

// selectBranch scores the candidates with the pseudo-cost product rule —
// max(f_down·pc_down, eps) · max(f_up·pc_up, eps) — falling back to the
// direction's global average for unobserved columns, and returns the best.
func (w *bbWorker) selectBranch(cands []bbCand) bbCand {
	sh := w.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	avgDn, avgUp := 1.0, 1.0
	if sh.pcDownObs > 0 {
		avgDn = sh.pcDownTot / float64(sh.pcDownObs)
	}
	if sh.pcUpObs > 0 {
		avgUp = sh.pcUpTot / float64(sh.pcUpObs)
	}
	best, bestScore := cands[0], -1.0
	for _, c := range cands {
		ed, eu := avgDn, avgUp
		if n := sh.pcDownN[c.col]; n > 0 {
			ed = sh.pcDown[c.col] / float64(n)
		}
		if n := sh.pcUpN[c.col]; n > 0 {
			eu = sh.pcUp[c.col] / float64(n)
		}
		score := math.Max(c.frac*ed, 1e-6) * math.Max((1-c.frac)*eu, 1e-6)
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return best
}

// accountNode books one solved relaxation with the coordinator and decides
// whether the subtree continues (true = keep going). lb is the node's bound
// in minimize sense — the fresh relaxation value when status is optimal, the
// inherited parent bound otherwise — and is recorded as lost when the
// subtree is dropped without proof.
func (w *bbWorker) accountNode(status Status, warmed bool, iters, depth int, lb float64) bool {
	sh := w.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.nodes++
	sh.lpIters += iters
	if warmed {
		sh.warm++
	} else {
		sh.cold++
	}
	// The stop decision intentionally precedes the node-cap update: the node
	// that reaches MaxNodes was already solved, so its relaxation is used in
	// full (integrality check, incumbent) — only further nodes are cut off.
	stop := sh.stopped || sh.nodeLimit || sh.rootUnbounded
	if w.opts.MaxNodes > 0 && sh.nodes >= w.opts.MaxNodes && !sh.nodeLimit {
		sh.nodeLimit = true
		sh.wake()
	}

	switch status {
	case StatusOptimal:
		if stop {
			// The subtree still had work; its bound survives only as a cap
			// on the proof, and the search can no longer claim optimality.
			sh.incomplete = true
			sh.noteLostLocked(lb)
			return false
		}
		if sh.gapMetLocked(lb, w.opts.Gap) {
			return false
		}
		return true
	case StatusInfeasible:
		return false
	case StatusUnbounded:
		// An unbounded relaxation at the root means the MILP is unbounded or
		// infeasible; deeper in the tree we conservatively drop the subtree.
		if depth == 0 {
			sh.rootUnbounded = true
			sh.wake()
		}
		return false
	default:
		// Iteration-/deadline-limited or numerically failed relaxation: the
		// bound is unreliable, so this subtree stays unexplored.
		sh.incomplete = true
		sh.noteLostLocked(lb)
		return false
	}
}

// foundIncumbent installs an integral relaxation solution as the new
// incumbent if it improves on the shared best. Returns whether it did.
func (w *bbWorker) foundIncumbent(x []float64, lb float64) bool {
	// Round the integer coordinates exactly.
	for _, v := range w.intVars {
		x[v.id] = math.Round(x[v.id])
	}
	sh := w.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if lb < sh.bestObj-1e-9 {
		sh.bestObj = lb
		sh.best = x
		if w.opts.Logger != nil {
			w.opts.Logger("milp: incumbent %.6g at node %d", w.dirSign*lb, sh.nodes)
		}
		if w.opts.OnIncumbent != nil {
			w.opts.OnIncumbent(append([]float64(nil), x...), w.dirSign*lb, sh.nodes)
		}
		return true
	}
	return false
}

// checkFeasible verifies x against all constraints, bounds and integrality of
// m and returns the objective value on success.
func checkFeasible(m *Model, x []float64, intTol float64) (bool, float64) {
	if len(x) != m.NumVars() {
		return false, 0
	}
	for i := 0; i < m.NumVars(); i++ {
		v := Var{id: i}
		lo, hi := m.Bounds(v)
		if x[i] < lo-feasEps || x[i] > hi+feasEps {
			return false, 0
		}
		if m.Type(v) != Continuous && math.Abs(x[i]-math.Round(x[i])) > intTol {
			return false, 0
		}
	}
	for i := 0; i < m.NumConstraints(); i++ {
		c := m.Constraint(i)
		lhs := c.Expr.Eval(x)
		switch c.Rel {
		case LE:
			if lhs > c.RHS+feasEps {
				return false, 0
			}
		case GE:
			if lhs < c.RHS-feasEps {
				return false, 0
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > feasEps {
				return false, 0
			}
		}
	}
	obj, _ := m.Objective()
	return true, obj.Eval(x)
}

// CheckFeasible reports whether x satisfies every bound, integrality
// requirement and constraint of m, and returns the objective value when it
// does. It is exported for schedule validation and tests.
func CheckFeasible(m *Model, x []float64) (bool, float64) {
	return checkFeasible(m, x, 1e-6)
}
