package milp

import (
	"container/heap"
	"context"
	"math"
	"runtime"
	"sync"
	"time"
)

// SolveOptions configures the branch-and-bound MILP driver.
type SolveOptions struct {
	// TimeLimit caps wall-clock time. Zero means no limit. It is implemented
	// as a context.WithTimeout derived from the caller's context; when it
	// fires the best incumbent found so far is returned with StatusTimeLimit,
	// matching the paper's best-effort 30-minute solver cap.
	TimeLimit time.Duration
	// MaxNodes caps the number of branch-and-bound nodes. Zero means no cap.
	MaxNodes int
	// Gap is the relative optimality gap at which search stops early
	// (|incumbent - bound| <= Gap * max(1,|incumbent|)). Zero requires proof
	// of optimality.
	Gap float64
	// Incumbent, if non-nil, provides a known feasible assignment (indexed by
	// Var.ID) used as the initial upper bound (lower for Maximize). A warm
	// start from the heuristic scheduler prunes most of the tree.
	Incumbent []float64
	// IntFeasTol is the integrality tolerance; defaults to 1e-6.
	IntFeasTol float64
	// Logger, if non-nil, receives periodic progress lines.
	Logger func(format string, args ...any)
	// OnIncumbent, if non-nil, is invoked whenever the search installs an
	// improving integral incumbent — including the initial Incumbent warm
	// start — with a copy of the assignment (indexed by Var.ID), its
	// objective value in the model's sense, and the node count at that
	// moment. It is called synchronously from solver workers while internal
	// locks are held: implementations must be fast and must not call back
	// into the solver.
	OnIncumbent func(x []float64, objective float64, nodes int)
	// Workers bounds the parallel branch-and-bound worker pool. Zero selects
	// min(GOMAXPROCS, 8); one recovers a fully sequential search.
	Workers int
}

// bbNode is one open subproblem: the bound changes accumulated from the root
// and the parent's optimal basis, from which the node's relaxation is
// warm-started with a dual-simplex cleanup.
type bbNode struct {
	seq     int64
	bound   float64 // parent relaxation value, minimize sense
	depth   int
	changes []bndChange
	basic   []int32 // parent basis snapshot (nil for the root: cold solve)
	stat    []int8
}

// nodeHeap is a best-bound priority queue (ties broken by creation order so
// single-worker searches stay deterministic).
type nodeHeap []*bbNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// bbShared is the coordinator state shared by the worker pool.
type bbShared struct {
	mu   sync.Mutex
	cond *sync.Cond

	open        nodeHeap
	outstanding int
	seq         int64

	best    []float64
	bestObj float64 // minimize sense; +inf when no incumbent

	nodes, lpIters, warm, cold int

	// Worker-merged diagnostics: factorization kernel counters and the
	// node-level propagation tallies (flushed once per worker at exit).
	factor                 FactorStats
	propTighten, propPrune int

	// lostLB is the smallest bound of any subtree dropped without a full
	// proof: pruned by the Gap option, or abandoned when the search stopped.
	// It caps the global dual bound alongside the open queue.
	lostLB float64

	nodeLimit     bool
	incomplete    bool
	rootUnbounded bool
	stopped       bool
}

func (sh *bbShared) wake() { sh.cond.Broadcast() }

// gapMetLocked reports whether a subtree with the given bound cannot improve
// the incumbent enough to be worth exploring. Callers hold sh.mu.
func (sh *bbShared) gapMetLocked(lb, gap float64) bool {
	if sh.best == nil {
		return false
	}
	if sh.bestObj-lb <= 1e-9 {
		return true
	}
	if gap > 0 && sh.bestObj-lb <= gap*math.Max(1, math.Abs(sh.bestObj)) {
		if lb < sh.lostLB {
			sh.lostLB = lb
		}
		return true
	}
	return false
}

// noteLostLocked records the bound of a subtree dropped without proof.
func (sh *bbShared) noteLostLocked(lb float64) {
	if lb < sh.lostLB {
		sh.lostLB = lb
	}
}

// Solve runs branch and bound on m. Continuous models are dispatched straight
// to the simplex. The returned solution is indexed by Var.ID.
func Solve(m *Model, opts SolveOptions) (*Solution, error) {
	return SolveContext(context.Background(), m, opts)
}

// SolveContext is Solve bounded by a context. Cancelling ctx mid-solve stops
// the search promptly (within a few simplex pivots, typically well under
// 100 ms) and returns the best incumbent with StatusInterrupted, or a
// solution with no assignment when none was found. opts.TimeLimit is layered
// on top of ctx as a derived context.WithTimeout.
//
// The search is a best-bound branch and bound over a compiled sparse LP:
// each popped node warm-starts from its parent's basis with a dual-simplex
// cleanup (cold primal solve only on numerical failure), then dives on one
// child in place — no refactorization, just a bound change — while the other
// child joins the shared queue. opts.Workers such workers run concurrently
// against a shared incumbent.
func SolveContext(ctx context.Context, m *Model, opts SolveOptions) (*Solution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	intVars := m.IntegerVars()
	solveCtx, cancel := solveDeadline(ctx, opts.TimeLimit)
	defer cancel()

	if len(intVars) == 0 {
		sol, err := solveLPContext(solveCtx, m)
		// The simplex reports any context abort as StatusIterLimit;
		// distinguish caller cancellation from the derived time limit.
		if err == nil && sol.Status == StatusIterLimit && solveCtx.Err() != nil {
			sol.Status = abortStatus(ctx, solveCtx)
		}
		return sol, err
	}

	if opts.IntFeasTol == 0 {
		opts.IntFeasTol = 1e-6
	}
	_, sense := m.Objective()
	dirSign := 1.0
	if sense == Maximize {
		dirSign = -1
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = min(runtime.GOMAXPROCS(0), 8)
	}

	sh := &bbShared{bestObj: math.Inf(1), lostLB: math.Inf(1)}
	sh.cond = sync.NewCond(&sh.mu)
	if opts.Incumbent != nil {
		if ok, obj := checkFeasible(m, opts.Incumbent, opts.IntFeasTol); ok {
			sh.best = append([]float64(nil), opts.Incumbent...)
			sh.bestObj = dirSign * obj
			if opts.OnIncumbent != nil {
				opts.OnIncumbent(append([]float64(nil), sh.best...), obj, 0)
			}
		}
	}

	in, decided := compile(m, true)
	stats := SolveStats{Presolve: in.pre, Workers: workers, Gap: -1}
	if decided == StatusInfeasible {
		// Presolve proved the model empty before any search. A feasible user
		// incumbent contradicting that can only mean tolerance disagreement;
		// trust the incumbent over the proof.
		if sh.best != nil {
			return &Solution{Status: StatusFeasible, X: sh.best, Objective: dirSign * sh.bestObj,
				Bound: math.NaN(), Stats: stats}, nil
		}
		stats.Gap = 0
		return &Solution{Status: StatusInfeasible, Stats: stats}, nil
	}
	if solveCtx.Err() != nil {
		return finishAborted(abortStatus(ctx, solveCtx), sh, dirSign, stats), nil
	}

	sh.open = nodeHeap{{bound: math.Inf(-1)}}
	obj, _ := m.Objective()

	// A context abort must also wake workers parked on the condition
	// variable; the watcher exits when the solve finishes (cancel above).
	go func() {
		<-solveCtx.Done()
		sh.mu.Lock()
		sh.stopped = true
		sh.wake()
		sh.mu.Unlock()
	}()

	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			w := &bbWorker{
				sh: sh, in: in, m: m, obj: obj, opts: opts,
				dirSign: dirSign, intVars: intVars, id: wid,
				st: newState(in),
			}
			w.st.ctx = solveCtx
			w.run()
		}(wid)
	}
	wg.Wait()

	sh.mu.Lock()
	defer sh.mu.Unlock()
	stats.Nodes = sh.nodes
	stats.SimplexIters = sh.lpIters
	stats.WarmStarts = sh.warm
	stats.ColdStarts = sh.cold
	stats.Factor = sh.factor
	stats.PropagationTightenings = sh.propTighten
	stats.PropagationPrunes = sh.propPrune

	if sh.rootUnbounded {
		return &Solution{Status: StatusUnbounded, Nodes: sh.nodes, Iterations: sh.lpIters, Stats: stats}, nil
	}

	cancelled := ctx.Err() != nil
	timedOut := !cancelled && solveCtx.Err() != nil
	drained := len(sh.open) == 0 && !sh.incomplete && !sh.nodeLimit

	// Global dual bound: the weakest of everything still open or dropped
	// without proof.
	globalLB := sh.lostLB
	for _, n := range sh.open {
		if n.bound < globalLB {
			globalLB = n.bound
		}
	}

	res := &Solution{Nodes: sh.nodes, Iterations: sh.lpIters, Stats: stats}
	switch {
	case sh.best != nil && drained:
		res.Status = StatusOptimal
		res.X = sh.best
		res.Objective = dirSign * sh.bestObj
		res.Bound = res.Objective
		res.Stats.Gap = 0
		if !math.IsInf(sh.lostLB, 1) {
			// Optimal only up to the requested gap: subtrees below the
			// incumbent were pruned unproven, so the honest dual bound is
			// theirs, not the incumbent's, and the residual gap is reported.
			res.Bound = dirSign * math.Min(sh.lostLB, sh.bestObj)
			res.Stats.Gap = relGap(sh.bestObj, sh.lostLB)
		}
	case sh.best != nil:
		switch {
		case cancelled:
			res.Status = StatusInterrupted
		case timedOut:
			res.Status = StatusTimeLimit
		case sh.nodeLimit:
			res.Status = StatusIterLimit
		default:
			res.Status = StatusFeasible
		}
		res.X = sh.best
		res.Objective = dirSign * sh.bestObj
		res.Bound = math.NaN()
		if !math.IsInf(globalLB, 0) {
			res.Bound = dirSign * globalLB
			res.Stats.Gap = relGap(sh.bestObj, globalLB)
		}
	case cancelled:
		res.Status = StatusInterrupted
	case timedOut || sh.incomplete:
		res.Status = StatusTimeLimit
	case sh.nodeLimit:
		res.Status = StatusIterLimit
	default:
		res.Status = StatusInfeasible
		res.Stats.Gap = 0
	}
	return res, nil
}

// relGap is the relative optimality gap between an incumbent and a dual
// bound, both in minimize sense.
func relGap(best, lb float64) float64 {
	g := (best - lb) / math.Max(1, math.Abs(best))
	if g < 0 {
		return 0
	}
	return g
}

// finishAborted builds the best-effort result for a solve whose context was
// already done before the search started.
func finishAborted(status Status, sh *bbShared, dirSign float64, stats SolveStats) *Solution {
	res := &Solution{Status: status, Stats: stats}
	if sh.best != nil {
		res.X = sh.best
		res.Objective = dirSign * sh.bestObj
		res.Bound = math.NaN()
	}
	return res
}

// bbWorker is one branch-and-bound worker: it pops best-bound nodes from the
// shared queue, solves them warm from the parent basis, and dives.
type bbWorker struct {
	sh      *bbShared
	in      *instance
	m       *Model
	obj     Expr
	opts    SolveOptions
	dirSign float64
	intVars []Var
	id      int
	st      *simplexState

	// Local propagation tallies, merged into bbShared at exit.
	propTighten, propPrune int
}

func (w *bbWorker) run() {
	sh := w.sh
	defer func() {
		sh.mu.Lock()
		sh.factor.merge(w.st.fac.snapshot())
		sh.propTighten += w.propTighten
		sh.propPrune += w.propPrune
		sh.mu.Unlock()
	}()
	for {
		sh.mu.Lock()
		for {
			if sh.stopped || sh.nodeLimit || sh.rootUnbounded {
				sh.mu.Unlock()
				return
			}
			// Drop queued nodes the incumbent has since pruned.
			for len(sh.open) > 0 && sh.gapMetLocked(sh.open[0].bound, w.opts.Gap) {
				heap.Pop(&sh.open)
			}
			if len(sh.open) > 0 {
				break
			}
			if sh.outstanding == 0 {
				sh.wake()
				sh.mu.Unlock()
				return
			}
			sh.cond.Wait()
		}
		node := heap.Pop(&sh.open).(*bbNode)
		sh.outstanding++
		sh.mu.Unlock()

		w.processSubtree(node)

		sh.mu.Lock()
		sh.outstanding--
		if sh.outstanding == 0 && len(sh.open) == 0 {
			sh.wake()
		}
		sh.mu.Unlock()
	}
}

// applyChanges installs the node's bounds on the worker state. Returns false
// when a bound pair crossed (the node is trivially infeasible).
func (w *bbWorker) applyChanges(changes []bndChange) bool {
	w.st.resetBounds()
	for _, ch := range changes {
		c := int(ch.col)
		nlo := math.Max(w.st.lo[c], ch.lo)
		nhi := math.Min(w.st.hi[c], ch.hi)
		if nlo > nhi {
			return false
		}
		w.st.lo[c], w.st.hi[c] = nlo, nhi
	}
	return true
}

// solveRelax runs the given warm attempt and falls back to a from-scratch
// solve when it failed numerically or stalled on degeneracy while the clock
// is still running. The bool reports whether the warm start was used.
func (w *bbWorker) solveRelax(warmAttempt func() Status) (Status, bool) {
	st := warmAttempt()
	if st == statusNumFail || (st == StatusIterLimit && w.st.ctx.Err() == nil) {
		return w.st.solveCold(), false
	}
	return st, true
}

// processSubtree solves the popped node and dives down one child chain,
// pushing the sibling of every branching step onto the shared queue. Dive
// steps reuse the live basis and inverse — the child differs by one bound
// change, so the dual simplex continues in place without refactorization.
func (w *bbWorker) processSubtree(node *bbNode) {
	st := w.st
	if !w.applyChanges(node.changes) {
		return
	}
	// Node-level propagation: replay the presolve's activity-based bound
	// tightening under this node's branching decisions. The root (no
	// changes) was already propagated to a fixpoint at compile time.
	if len(node.changes) > 0 {
		n, ok := propagateBounds(w.in, st.lo, st.hi)
		w.propTighten += n
		if !ok {
			w.propPrune++
			return
		}
	}

	var status Status
	var warmed bool
	if node.basic != nil {
		copy(st.basic, node.basic)
		copy(st.stat, node.stat)
		for j := range st.pos {
			st.pos[j] = -1
		}
		for i, col := range st.basic {
			st.pos[col] = int32(i)
		}
		status, warmed = w.solveRelax(st.solveWarm)
	} else {
		status, warmed = st.solveCold(), false
	}

	depth := node.depth
	changes := node.changes
	curBound := node.bound
	for {
		iters := st.iters
		st.iters = 0
		var x []float64
		lb := curBound
		if status == StatusOptimal {
			x = st.extract()
			lb = w.dirSign * w.obj.Eval(x)
		}
		if !w.accountNode(status, warmed, iters, depth, lb) {
			return
		}
		curBound = lb

		// Optimal relaxation: check integrality, otherwise branch and dive.
		branchVar, frac := Var{id: -1}, 0.0
		for _, v := range w.intVars {
			f := math.Abs(x[v.id] - math.Round(x[v.id]))
			if f > w.opts.IntFeasTol && f > frac {
				frac, branchVar = f, v
			}
		}
		if branchVar.id == -1 {
			w.foundIncumbent(x, lb)
			return
		}

		col := int32(w.in.varCol[branchVar.id])
		xv := x[branchVar.id]
		fl, ce := math.Floor(xv), math.Ceil(xv)
		down := bndChange{col: col, lo: math.Inf(-1), hi: fl}
		up := bndChange{col: col, lo: ce, hi: math.Inf(1)}
		diveCh, pushCh := down, up
		if xv-fl >= ce-xv {
			diveCh, pushCh = up, down
		}

		// The sibling gets a snapshot of this node's optimal basis to warm
		// start from; the dive child keeps the live basis and inverse.
		sib := &bbNode{
			bound:   lb,
			depth:   depth + 1,
			changes: append(append([]bndChange(nil), changes...), pushCh),
			basic:   append([]int32(nil), st.basic...),
			stat:    append([]int8(nil), st.stat...),
		}
		sh := w.sh
		sh.mu.Lock()
		sh.seq++
		sib.seq = sh.seq
		heap.Push(&sh.open, sib)
		sh.cond.Signal()
		sh.mu.Unlock()

		changes = append(changes, diveCh)
		depth++
		c := int(diveCh.col)
		nlo := math.Max(st.lo[c], diveCh.lo)
		nhi := math.Min(st.hi[c], diveCh.hi)
		if nlo > nhi {
			return
		}
		st.lo[c], st.hi[c] = nlo, nhi
		// Propagate the dive bound change too; the dual warm start then
		// starts from every implied tightening at once.
		n, ok := propagateBounds(w.in, st.lo, st.hi)
		w.propTighten += n
		if !ok {
			w.propPrune++
			return
		}
		status, warmed = w.solveRelax(func() Status { return st.dual(st.warmLimit()) })
	}
}

// accountNode books one solved relaxation with the coordinator and decides
// whether the subtree continues (true = keep going). lb is the node's bound
// in minimize sense — the fresh relaxation value when status is optimal, the
// inherited parent bound otherwise — and is recorded as lost when the
// subtree is dropped without proof.
func (w *bbWorker) accountNode(status Status, warmed bool, iters, depth int, lb float64) bool {
	sh := w.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.nodes++
	sh.lpIters += iters
	if warmed {
		sh.warm++
	} else {
		sh.cold++
	}
	// The stop decision intentionally precedes the node-cap update: the node
	// that reaches MaxNodes was already solved, so its relaxation is used in
	// full (integrality check, incumbent) — only further nodes are cut off.
	stop := sh.stopped || sh.nodeLimit || sh.rootUnbounded
	if w.opts.MaxNodes > 0 && sh.nodes >= w.opts.MaxNodes && !sh.nodeLimit {
		sh.nodeLimit = true
		sh.wake()
	}

	switch status {
	case StatusOptimal:
		if stop {
			// The subtree still had work; its bound survives only as a cap
			// on the proof, and the search can no longer claim optimality.
			sh.incomplete = true
			sh.noteLostLocked(lb)
			return false
		}
		if sh.gapMetLocked(lb, w.opts.Gap) {
			return false
		}
		return true
	case StatusInfeasible:
		return false
	case StatusUnbounded:
		// An unbounded relaxation at the root means the MILP is unbounded or
		// infeasible; deeper in the tree we conservatively drop the subtree.
		if depth == 0 {
			sh.rootUnbounded = true
			sh.wake()
		}
		return false
	default:
		// Iteration-/deadline-limited or numerically failed relaxation: the
		// bound is unreliable, so this subtree stays unexplored.
		sh.incomplete = true
		sh.noteLostLocked(lb)
		return false
	}
}

// foundIncumbent installs an integral relaxation solution as the new
// incumbent if it improves on the shared best.
func (w *bbWorker) foundIncumbent(x []float64, lb float64) {
	// Round the integer coordinates exactly.
	for _, v := range w.intVars {
		x[v.id] = math.Round(x[v.id])
	}
	sh := w.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if lb < sh.bestObj-1e-9 {
		sh.bestObj = lb
		sh.best = x
		if w.opts.Logger != nil {
			w.opts.Logger("milp: incumbent %.6g at node %d", w.dirSign*lb, sh.nodes)
		}
		if w.opts.OnIncumbent != nil {
			w.opts.OnIncumbent(append([]float64(nil), x...), w.dirSign*lb, sh.nodes)
		}
	}
}

// checkFeasible verifies x against all constraints, bounds and integrality of
// m and returns the objective value on success.
func checkFeasible(m *Model, x []float64, intTol float64) (bool, float64) {
	if len(x) != m.NumVars() {
		return false, 0
	}
	for i := 0; i < m.NumVars(); i++ {
		v := Var{id: i}
		lo, hi := m.Bounds(v)
		if x[i] < lo-feasEps || x[i] > hi+feasEps {
			return false, 0
		}
		if m.Type(v) != Continuous && math.Abs(x[i]-math.Round(x[i])) > intTol {
			return false, 0
		}
	}
	for i := 0; i < m.NumConstraints(); i++ {
		c := m.Constraint(i)
		lhs := c.Expr.Eval(x)
		switch c.Rel {
		case LE:
			if lhs > c.RHS+feasEps {
				return false, 0
			}
		case GE:
			if lhs < c.RHS-feasEps {
				return false, 0
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > feasEps {
				return false, 0
			}
		}
	}
	obj, _ := m.Objective()
	return true, obj.Eval(x)
}

// CheckFeasible reports whether x satisfies every bound, integrality
// requirement and constraint of m, and returns the objective value when it
// does. It is exported for schedule validation and tests.
func CheckFeasible(m *Model, x []float64) (bool, float64) {
	return checkFeasible(m, x, 1e-6)
}
