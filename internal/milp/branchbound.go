package milp

import (
	"context"
	"math"
	"sort"
	"time"
)

// SolveOptions configures the branch-and-bound MILP driver.
type SolveOptions struct {
	// TimeLimit caps wall-clock time. Zero means no limit. It is implemented
	// as a context.WithTimeout derived from the caller's context; when it
	// fires the best incumbent found so far is returned with StatusTimeLimit,
	// matching the paper's best-effort 30-minute solver cap.
	TimeLimit time.Duration
	// MaxNodes caps the number of branch-and-bound nodes. Zero means no cap.
	MaxNodes int
	// Gap is the relative optimality gap at which search stops early
	// (|incumbent - bound| <= Gap * max(1,|incumbent|)). Zero requires proof
	// of optimality.
	Gap float64
	// Incumbent, if non-nil, provides a known feasible assignment (indexed by
	// Var.ID) used as the initial upper bound (lower for Maximize). A warm
	// start from the heuristic scheduler prunes most of the tree.
	Incumbent []float64
	// IntFeasTol is the integrality tolerance; defaults to 1e-6.
	IntFeasTol float64
	// Logger, if non-nil, receives periodic progress lines.
	Logger func(format string, args ...any)
}

type bbNode struct {
	bounds []bbBound // branching decisions from the root
	relax  float64   // parent relaxation value (in minimize sense)
	depth  int
}

type bbBound struct {
	v      Var
	lo, hi float64
}

// Solve runs branch and bound on m. Continuous models are dispatched straight
// to the simplex. The returned solution is indexed by Var.ID.
func Solve(m *Model, opts SolveOptions) (*Solution, error) {
	return SolveContext(context.Background(), m, opts)
}

// SolveContext is Solve bounded by a context. Cancelling ctx mid-solve stops
// the search promptly (within one node relaxation check, typically well under
// 100 ms) and returns the best incumbent with StatusInterrupted, or a
// solution with no assignment when none was found. opts.TimeLimit is layered
// on top of ctx as a derived context.WithTimeout.
func SolveContext(ctx context.Context, m *Model, opts SolveOptions) (*Solution, error) {
	intVars := m.IntegerVars()
	if len(intVars) == 0 {
		lpCtx := ctx
		if opts.TimeLimit > 0 {
			var cancel context.CancelFunc
			lpCtx, cancel = context.WithTimeout(ctx, opts.TimeLimit)
			defer cancel()
		}
		sol, err := solveLPContext(lpCtx, m)
		// The simplex reports any context abort as StatusIterLimit;
		// distinguish caller cancellation from the derived time limit.
		if err == nil && sol.Status == StatusIterLimit && lpCtx.Err() != nil {
			if ctx.Err() != nil {
				sol.Status = StatusInterrupted
			} else {
				sol.Status = StatusTimeLimit
			}
		}
		return sol, err
	}
	if opts.IntFeasTol == 0 {
		opts.IntFeasTol = 1e-6
	}
	_, sense := m.Objective()
	// Internally we minimize; flip for Maximize.
	dirSign := 1.0
	if sense == Maximize {
		dirSign = -1
	}
	toMin := func(obj float64) float64 { return dirSign * obj }

	// The wall-clock budget is a context derived from the caller's: a parent
	// cancellation and a time limit interrupt the search the same way, and
	// every node relaxation observes both.
	solveCtx := ctx
	if opts.TimeLimit > 0 {
		var cancel context.CancelFunc
		solveCtx, cancel = context.WithTimeout(ctx, opts.TimeLimit)
		defer cancel()
	}

	var (
		best       []float64
		bestObj    = math.Inf(1) // minimize sense
		nodes      int
		iters      int
		cancelled  bool // the caller's ctx was cancelled
		timedOut   bool
		nodeLimit  bool
		incomplete bool // some node relaxation was cut short
	)
	if opts.Incumbent != nil {
		if ok, obj := checkFeasible(m, opts.Incumbent, opts.IntFeasTol); ok {
			best = append([]float64(nil), opts.Incumbent...)
			bestObj = toMin(obj)
		}
	}

	// Save original bounds so we can restore after each node solve.
	origLo := make([]float64, m.NumVars())
	origHi := make([]float64, m.NumVars())
	for i := 0; i < m.NumVars(); i++ {
		v := Var{id: i}
		origLo[i], origHi[i] = m.Bounds(v)
	}
	restore := func() {
		for i := 0; i < m.NumVars(); i++ {
			m.SetBounds(Var{id: i}, origLo[i], origHi[i])
		}
	}
	defer restore()

	// DFS stack with best-first tie-breaking: nodes sorted by parent bound so
	// promising subtrees are explored first, while the stack keeps memory
	// linear in depth for pure DFS chains.
	stack := []bbNode{{relax: math.Inf(-1)}}
	gapMet := func(lb float64) bool {
		if best == nil {
			return false
		}
		if bestObj-lb <= 1e-9 {
			return true
		}
		if opts.Gap > 0 {
			return bestObj-lb <= opts.Gap*math.Max(1, math.Abs(bestObj))
		}
		return false
	}

	for len(stack) > 0 {
		if solveCtx.Err() != nil {
			if ctx.Err() != nil {
				cancelled = true
			} else {
				timedOut = true
			}
			break
		}
		if opts.MaxNodes > 0 && nodes >= opts.MaxNodes {
			nodeLimit = true
			break
		}
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		if gapMet(node.relax) {
			continue
		}

		// Apply node bounds.
		restore()
		feasBounds := true
		for _, b := range node.bounds {
			lo, hi := m.Bounds(b.v)
			nlo, nhi := math.Max(lo, b.lo), math.Min(hi, b.hi)
			if nlo > nhi {
				feasBounds = false
				break
			}
			m.SetBounds(b.v, nlo, nhi)
		}
		if !feasBounds {
			continue
		}

		sol, err := solveLPContext(solveCtx, m)
		if err != nil {
			return nil, err
		}
		iters += sol.Iterations
		if sol.Status == StatusInfeasible {
			continue
		}
		if sol.Status == StatusUnbounded {
			// An unbounded relaxation at the root means the MILP is unbounded
			// or infeasible; deeper in the tree we conservatively keep
			// exploring siblings.
			if node.depth == 0 {
				return &Solution{Status: StatusUnbounded, Nodes: nodes, Iterations: iters}, nil
			}
			continue
		}
		if sol.Status != StatusOptimal {
			// Iteration- or deadline-limited relaxation: the bound is
			// unreliable, so this subtree stays unexplored.
			incomplete = true
			continue
		}
		lb := toMin(sol.Objective)
		if gapMet(lb) {
			continue
		}

		// Find the most fractional integer variable.
		branchVar, frac := Var{id: -1}, 0.0
		for _, v := range intVars {
			x := sol.X[v.id]
			f := math.Abs(x - math.Round(x))
			if f > opts.IntFeasTol && f > frac {
				frac, branchVar = f, v
			}
		}
		if branchVar.id == -1 {
			// Integral solution.
			if lb < bestObj-1e-9 {
				bestObj = lb
				best = append([]float64(nil), sol.X...)
				// Round integer values exactly.
				for _, v := range intVars {
					best[v.id] = math.Round(best[v.id])
				}
				if opts.Logger != nil {
					opts.Logger("milp: incumbent %.6g at node %d", dirSign*bestObj, nodes)
				}
			}
			continue
		}

		x := sol.X[branchVar.id]
		fl, ce := math.Floor(x), math.Ceil(x)
		down := bbNode{
			bounds: append(append([]bbBound(nil), node.bounds...),
				bbBound{v: branchVar, lo: math.Inf(-1), hi: fl}),
			relax: lb,
			depth: node.depth + 1,
		}
		up := bbNode{
			bounds: append(append([]bbBound(nil), node.bounds...),
				bbBound{v: branchVar, lo: ce, hi: math.Inf(1)}),
			relax: lb,
			depth: node.depth + 1,
		}
		// Push the child whose bound direction matches the fractional part
		// last so it is explored first (simple pseudo-cost-free heuristic).
		if x-fl < ce-x {
			stack = append(stack, up, down)
		} else {
			stack = append(stack, down, up)
		}
		// Keep the stack loosely sorted: occasionally move the best-bound
		// node to the top to avoid stalling in a bad subtree.
		if nodes%64 == 0 && len(stack) > 2 {
			sort.SliceStable(stack, func(i, j int) bool { return stack[i].relax > stack[j].relax })
		}
	}

	// A context abort that lands on the last stack node escapes the
	// top-of-loop check (the aborted relaxation marks the search incomplete
	// and the loop exits on the empty stack), so classify it here. A search
	// that genuinely completed (no subtree dropped) keeps its verdict even
	// if the context expired a moment later.
	if incomplete && !cancelled && !timedOut && solveCtx.Err() != nil {
		if ctx.Err() != nil {
			cancelled = true
		} else {
			timedOut = true
		}
	}

	res := &Solution{Nodes: nodes, Iterations: iters}
	switch {
	case best != nil && !cancelled && !timedOut && !nodeLimit && !incomplete && len(stack) == 0:
		res.Status = StatusOptimal
		res.X = best
		res.Objective = dirSign * bestObj
		res.Bound = res.Objective
	case best != nil:
		if cancelled {
			res.Status = StatusInterrupted
		} else if timedOut {
			res.Status = StatusTimeLimit
		} else if nodeLimit {
			res.Status = StatusIterLimit
		} else {
			res.Status = StatusFeasible
		}
		res.X = best
		res.Objective = dirSign * bestObj
		res.Bound = math.NaN()
	case cancelled:
		res.Status = StatusInterrupted
	case timedOut || incomplete:
		res.Status = StatusTimeLimit
	case nodeLimit:
		res.Status = StatusIterLimit
	default:
		res.Status = StatusInfeasible
	}
	return res, nil
}

// checkFeasible verifies x against all constraints, bounds and integrality of
// m and returns the objective value on success.
func checkFeasible(m *Model, x []float64, intTol float64) (bool, float64) {
	if len(x) != m.NumVars() {
		return false, 0
	}
	for i := 0; i < m.NumVars(); i++ {
		v := Var{id: i}
		lo, hi := m.Bounds(v)
		if x[i] < lo-feasEps || x[i] > hi+feasEps {
			return false, 0
		}
		if m.Type(v) != Continuous && math.Abs(x[i]-math.Round(x[i])) > intTol {
			return false, 0
		}
	}
	for i := 0; i < m.NumConstraints(); i++ {
		c := m.Constraint(i)
		lhs := c.Expr.Eval(x)
		switch c.Rel {
		case LE:
			if lhs > c.RHS+feasEps {
				return false, 0
			}
		case GE:
			if lhs < c.RHS-feasEps {
				return false, 0
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > feasEps {
				return false, 0
			}
		}
	}
	obj, _ := m.Objective()
	return true, obj.Eval(x)
}

// CheckFeasible reports whether x satisfies every bound, integrality
// requirement and constraint of m, and returns the objective value when it
// does. It is exported for schedule validation and tests.
func CheckFeasible(m *Model, x []float64) (bool, float64) {
	return checkFeasible(m, x, 1e-6)
}
