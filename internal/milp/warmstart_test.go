package milp

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// buildBoundedLP returns a compiled instance and state for a small LP with
// every variable boxed, ready for warm-start experiments.
func buildBoundedLP(t *testing.T) (*Model, *instance, *simplexState) {
	t.Helper()
	m := NewModel()
	x := m.NewContinuous("x", 0, 10)
	y := m.NewContinuous("y", 0, 10)
	z := m.NewContinuous("z", 0, 10)
	m.AddLE("c1", *NewExpr(0).Add(x, 1).Add(y, 2).Add(z, 1), 14)
	m.AddLE("c2", *NewExpr(0).Add(x, 3).Add(y, 1), 15)
	m.AddGE("c3", *NewExpr(0).Add(x, 1).Add(y, 1).Add(z, 1), 4)
	m.SetObjective(*NewExpr(0).Add(x, -2).Add(y, -3).Add(z, -1), Minimize) // max 2x+3y+z
	in, st := compile(m, false)
	if st == StatusInfeasible {
		t.Fatal("feasible model declared infeasible")
	}
	s := newState(in)
	return m, in, s
}

// TestWarmStartAfterBoundTightening solves an LP cold, tightens a bound the
// optimum sits on, and re-solves warm from the same basis: the dual cleanup
// must agree with a from-scratch solve.
func TestWarmStartAfterBoundTightening(t *testing.T) {
	m, in, s := buildBoundedLP(t)
	if st := s.solveCold(); st != StatusOptimal {
		t.Fatalf("cold solve: %v", st)
	}
	coldObj := objOf(m, s)

	// Tighten the binding variable's upper bound and clean up warm.
	xCol := in.varCol[0]
	s.hi[xCol] = 2
	itersBefore := s.iters
	if st := s.solveWarm(); st != StatusOptimal {
		t.Fatalf("warm re-solve: %v", st)
	}
	warmIters := s.iters - itersBefore
	warmObj := objOf(m, s)

	// Cross-check against a cold solve of the modified instance.
	s2 := newState(in)
	s2.hi[xCol] = 2
	if st := s2.solveCold(); st != StatusOptimal {
		t.Fatalf("cold re-solve: %v", st)
	}
	if !almostEq(warmObj, objOf(m, s2), 1e-6) {
		t.Errorf("warm objective %v != cold objective %v", warmObj, objOf(m, s2))
	}
	if warmObj <= coldObj-1e-9 {
		t.Errorf("tightening a bound improved the objective: %v -> %v", coldObj, warmObj)
	}
	if warmIters > s2.iters {
		t.Logf("note: warm start used %d pivots vs cold %d", warmIters, s2.iters)
	}
}

// TestWarmStartFallbackOnSingularBasis loads a nonsense basis (a repeated
// column, hence singular) and checks the warm path reports numerical failure
// so branch and bound falls back to a cold solve — then verifies the
// fallback indeed recovers the optimum.
func TestWarmStartFallbackOnSingularBasis(t *testing.T) {
	m, _, s := buildBoundedLP(t)
	if st := s.solveCold(); st != StatusOptimal {
		t.Fatalf("cold solve: %v", st)
	}
	want := objOf(m, s)

	// Corrupt: make every basis row reference the same column.
	for i := range s.basic {
		s.basic[i] = s.basic[0]
	}
	if st := s.solveWarm(); st != statusNumFail {
		t.Fatalf("singular warm start = %v, want numerical failure", st)
	}
	if st := s.solveCold(); st != StatusOptimal {
		t.Fatalf("cold fallback: %v", st)
	}
	if got := objOf(m, s); !almostEq(got, want, 1e-6) {
		t.Errorf("fallback objective %v, want %v", got, want)
	}
}

func objOf(m *Model, s *simplexState) float64 {
	obj, _ := m.Objective()
	return obj.Eval(s.extract())
}

// TestMILPWarmStartStats checks that a real branch-and-bound run predominantly
// warm-starts its node relaxations.
func TestMILPWarmStartStats(t *testing.T) {
	m, _ := hardKnapsack(16)
	sol, err := Solve(m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	st := sol.Stats
	if st.Nodes == 0 || st.Nodes != sol.Nodes {
		t.Errorf("Stats.Nodes = %d (Solution.Nodes %d), want equal and > 0", st.Nodes, sol.Nodes)
	}
	if st.SimplexIters != sol.Iterations {
		t.Errorf("Stats.SimplexIters = %d != Iterations %d", st.SimplexIters, sol.Iterations)
	}
	if st.WarmStarts == 0 {
		t.Error("expected warm-started node relaxations")
	}
	if st.ColdStarts == 0 {
		t.Error("expected at least the root cold solve to be counted")
	}
	if rate := st.WarmStartRate(); rate < 0.5 {
		t.Errorf("warm-start rate %.2f, want >= 0.5 (diving should dominate)", rate)
	}
	if st.Gap != 0 {
		t.Errorf("gap = %v for a proven optimum, want 0", st.Gap)
	}
}

// TestLPBlandDegenerate solves Beale's classic cycling example, on which the
// plain Dantzig rule loops forever; the Bland fallback must terminate at the
// known optimum -1/20.
func TestLPBlandDegenerate(t *testing.T) {
	m := NewModel()
	x1 := m.NewContinuous("x1", 0, Inf)
	x2 := m.NewContinuous("x2", 0, Inf)
	x3 := m.NewContinuous("x3", 0, Inf)
	x4 := m.NewContinuous("x4", 0, Inf)
	m.AddLE("r1", *NewExpr(0).Add(x1, 0.25).Add(x2, -60).Add(x3, -1.0/25).Add(x4, 9), 0)
	m.AddLE("r2", *NewExpr(0).Add(x1, 0.5).Add(x2, -90).Add(x3, -1.0/50).Add(x4, 3), 0)
	m.AddLE("r3", VarExpr(x3), 1)
	m.SetObjective(*NewExpr(0).Add(x1, -0.75).Add(x2, 150).Add(x3, -1.0/50).Add(x4, 6), Minimize)

	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal (degenerate cycling guard)", sol.Status)
	}
	if !almostEq(sol.Objective, -0.05, 1e-9) {
		t.Errorf("objective = %v, want -0.05", sol.Objective)
	}
}

// TestMILPParallelWorkersRace exercises the shared-incumbent worker pool
// under the race detector: several concurrent Solves, each with a worker
// pool, must all agree with brute force.
func TestMILPParallelWorkersRace(t *testing.T) {
	var wg sync.WaitGroup
	for run := 0; run < 4; run++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			n := 8 + r.Intn(4)
			w := make([]float64, n)
			p := make([]float64, n)
			capE, objE := NewExpr(0), NewExpr(0)
			m := NewModel()
			for i := 0; i < n; i++ {
				w[i] = float64(1 + r.Intn(9))
				p[i] = float64(1 + r.Intn(9))
				v := m.NewBinary(fmt.Sprintf("v%d", i))
				capE.Add(v, w[i])
				objE.Add(v, p[i])
			}
			capacity := float64(5 + r.Intn(20))
			m.AddLE("cap", *capE, capacity)
			m.SetObjective(*objE, Maximize)

			sol, err := Solve(m, SolveOptions{Workers: 4})
			if err != nil {
				t.Errorf("seed %d: %v", seed, err)
				return
			}
			if sol.Status != StatusOptimal {
				t.Errorf("seed %d: status %v", seed, sol.Status)
				return
			}
			if sol.Stats.Workers != 4 {
				t.Errorf("seed %d: Stats.Workers = %d, want 4", seed, sol.Stats.Workers)
			}
			best := 0.0
			for mask := 0; mask < 1<<n; mask++ {
				wt, pf := 0.0, 0.0
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						wt += w[i]
						pf += p[i]
					}
				}
				if wt <= capacity && pf > best {
					best = pf
				}
			}
			if !almostEq(sol.Objective, best, 1e-6) {
				t.Errorf("seed %d: objective %v, want %v", seed, sol.Objective, best)
			}
		}(int64(run + 1))
	}
	wg.Wait()
}

// TestMILPSequentialDeterministic pins the single-worker search: same model,
// same trajectory, bit-identical node and pivot counts.
func TestMILPSequentialDeterministic(t *testing.T) {
	solveOnce := func() *Solution {
		m, _ := hardKnapsack(14)
		sol, err := Solve(m, SolveOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	a, b := solveOnce(), solveOnce()
	if a.Status != StatusOptimal || b.Status != StatusOptimal {
		t.Fatalf("statuses %v / %v, want optimal", a.Status, b.Status)
	}
	if a.Nodes != b.Nodes || a.Iterations != b.Iterations {
		t.Errorf("nondeterministic sequential search: %d/%d nodes, %d/%d pivots",
			a.Nodes, b.Nodes, a.Iterations, b.Iterations)
	}
	if math.Abs(a.Objective-b.Objective) > 1e-12 {
		t.Errorf("objective drifted: %v vs %v", a.Objective, b.Objective)
	}
}

// TestMILPMaxNodesKeepsLastRelaxation pins the node-cap semantics: the node
// that reaches MaxNodes was already solved, so its integral solution must be
// kept rather than discarded with the cap.
func TestMILPMaxNodesKeepsLastRelaxation(t *testing.T) {
	m := NewModel()
	x := m.NewInteger("x", 0, 10)
	y := m.NewInteger("y", 0, 10)
	// A second variable keeps presolve from deciding the model outright.
	m.AddLE("c", *NewExpr(0).Add(x, 1).Add(y, 1), 5)
	m.SetObjective(*NewExpr(0).Add(x, 1).Add(y, 1), Maximize)
	sol, err := Solve(m, SolveOptions{MaxNodes: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The root relaxation is integral (x+y=5), so one node suffices; the cap
	// must not erase its incumbent.
	if sol.X == nil {
		t.Fatalf("status %v with no solution; the capped node's relaxation was discarded", sol.Status)
	}
	if !almostEq(sol.Objective, 5, 1e-9) {
		t.Errorf("objective = %v, want 5", sol.Objective)
	}
}

// TestMILPGapOption verifies early stop at a relative gap still reports a
// bound and a gap measurement.
func TestMILPGapOption(t *testing.T) {
	m, inc := hardKnapsack(24)
	sol, err := Solve(m, SolveOptions{Gap: 0.5, Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() {
		t.Fatalf("status = %v with no assignment", sol.Status)
	}
	if g := sol.Stats.Gap; g < 0 || g > 0.5+1e-9 {
		t.Errorf("reported gap %v, want within [0, 0.5]", g)
	}
}
