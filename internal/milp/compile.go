package milp

import "math"

// Presolve and compilation tolerances.
const (
	// preViolTol is the constraint violation beyond which presolve declares
	// the model infeasible (scaled by the row's right-hand side).
	preViolTol = 1e-6
	// preRedTol is the slack margin required to drop a row as redundant.
	preRedTol = 1e-9
	// intRoundTol is the integrality rounding tolerance for integer bounds.
	intRoundTol = 1e-6
	// preMaxRounds caps the bound-propagation fixpoint iteration.
	preMaxRounds = 25
)

// bndChange is one branching decision: replace the bounds of a structural
// column. Branch and bound applies lists of these on top of the root bounds.
type bndChange struct {
	col    int32
	lo, hi float64
}

// instance is the compiled sparse LP the simplex operates on:
//
//	minimize  c·x   subject to   A·x + s = b,   lo <= (x, s) <= hi
//
// where x are the nStruct structural columns (model variables that survived
// presolve) and s are m slack columns, one per row. Slack bounds encode the
// row relation: [0, +inf) for <=, (-inf, 0] for >=, [0, 0] for =. The matrix
// A is stored column-major (CSC); slack columns are implicit unit vectors.
// Bounds are handled natively by the simplex, so no free-variable split and
// no artificial columns exist. The struct is immutable after compile; branch
// and bound workers keep their own bound arrays.
type instance struct {
	m       int // rows
	nStruct int // structural columns
	n       int // total columns = nStruct + m

	colPtr []int32
	rowIdx []int32
	val    []float64

	b  []float64
	c  []float64 // length n (slack costs are zero), minimize sense
	lo []float64 // length n, root bounds after presolve
	hi []float64

	intCol []bool // per structural column: integer-constrained?
	colVar []int  // structural column -> model variable id
	varCol []int  // model variable id -> structural column, -1 if eliminated
	fixed  []float64

	// Row-major mirror of the matrix (CSR over structural columns), built
	// only for MILP compiles: node-level bound propagation sweeps rows after
	// every branch. Nil for pure LP instances.
	rowPtr []int32
	rowCol []int32
	rowVal []float64

	// pert is a deterministic tiny cost perturbation, one entry per column,
	// layered onto c while a simplex loop runs and removed again before the
	// exact optimality cleanup. The paper's formulations are pathologically
	// dual degenerate — only the makespan and storage columns carry cost, so
	// nearly every reduced cost ties at zero and an unperturbed dual simplex
	// shuffles zero-progress pivots; distinct perturbed costs make every
	// dual step strictly improving.
	pert []float64

	flip float64 // +1 minimize, -1 maximize (already folded into c)
	pre  PresolveStats
}

// colDot returns y·A_j for column j (slack columns are unit vectors).
func (in *instance) colDot(y []float64, j int) float64 {
	if j >= in.nStruct {
		return y[j-in.nStruct]
	}
	v := 0.0
	for p := in.colPtr[j]; p < in.colPtr[j+1]; p++ {
		v += y[in.rowIdx[p]] * in.val[p]
	}
	return v
}

// preRow is one constraint during presolve; terms over model variable ids.
type preRow struct {
	cols []int
	coef []float64
	rel  Relation
	rhs  float64
	live bool
}

// compiler carries the presolve working state.
type compiler struct {
	m        *Model
	integral bool
	lo, hi   []float64
	isInt    []bool
	rows     []preRow
	fixedVal []float64
	isFixed  []bool
	pre      PresolveStats
	infeas   bool
	changed  bool
}

// compile lowers a validated model into a sparse instance, running presolve
// (bound propagation, redundant-row removal, fixed-variable elimination) on
// the way. When integral is true, Integer/Binary bounds are rounded and
// propagation may round implied bounds — valid for the MILP but not for the
// pure LP relaxation, which passes false.
//
// The returned status is StatusInfeasible when presolve proves the model
// empty (the instance still carries the presolve stats), StatusUnknown
// otherwise.
func compile(m *Model, integral bool) (*instance, Status) {
	nv := m.NumVars()
	co := &compiler{
		m:        m,
		integral: integral,
		lo:       make([]float64, nv),
		hi:       make([]float64, nv),
		isInt:    make([]bool, nv),
		fixedVal: make([]float64, nv),
		isFixed:  make([]bool, nv),
	}
	for j := 0; j < nv; j++ {
		v := Var{id: j}
		co.lo[j], co.hi[j] = m.Bounds(v)
		co.isInt[j] = integral && m.Type(v) != Continuous
		if co.isInt[j] {
			co.lo[j] = math.Ceil(co.lo[j] - intRoundTol)
			co.hi[j] = math.Floor(co.hi[j] + intRoundTol)
		}
		if co.lo[j] > co.hi[j]+feasEps {
			return &instance{pre: co.pre, flip: flipOf(m)}, StatusInfeasible
		}
	}

	co.rows = make([]preRow, 0, m.NumConstraints())
	for i := 0; i < m.NumConstraints(); i++ {
		c := m.Constraint(i)
		r := preRow{rel: c.Rel, rhs: c.RHS - c.Expr.Offset(), live: true}
		for _, t := range c.Expr.Terms() {
			if t.Coef == 0 {
				continue
			}
			r.cols = append(r.cols, t.Var.id)
			r.coef = append(r.coef, t.Coef)
		}
		co.rows = append(co.rows, r)
	}

	co.propagate()
	if co.infeas {
		return &instance{pre: co.pre, flip: flipOf(m)}, StatusInfeasible
	}
	in := co.build()
	if integral {
		in.buildRows()
	}
	return in, StatusUnknown
}

// buildRows derives the CSR mirror from the CSC matrix for the node-level
// propagator.
func (in *instance) buildRows() {
	nnz := int(in.colPtr[in.nStruct])
	in.rowPtr = make([]int32, in.m+1)
	in.rowCol = make([]int32, nnz)
	in.rowVal = make([]float64, nnz)
	for p := 0; p < nnz; p++ {
		in.rowPtr[in.rowIdx[p]+1]++
	}
	for i := 0; i < in.m; i++ {
		in.rowPtr[i+1] += in.rowPtr[i]
	}
	cursor := make([]int32, in.m)
	copy(cursor, in.rowPtr[:in.m])
	for j := 0; j < in.nStruct; j++ {
		for p := in.colPtr[j]; p < in.colPtr[j+1]; p++ {
			i := in.rowIdx[p]
			q := cursor[i]
			in.rowCol[q] = int32(j)
			in.rowVal[q] = in.val[p]
			cursor[i] = q + 1
		}
	}
}

func flipOf(m *Model) float64 {
	if _, dir := m.Objective(); dir == Maximize {
		return -1
	}
	return 1
}

// propagate runs activity-based bound propagation, redundancy elimination and
// fixed-variable substitution to a fixpoint (or the round cap).
func (co *compiler) propagate() {
	for round := 0; round < preMaxRounds; round++ {
		co.changed = false
		for ri := range co.rows {
			if co.infeas {
				return
			}
			co.visitRow(&co.rows[ri])
		}
		if co.infeas {
			return
		}
		// Collapse variables whose bounds met into fixed values.
		for j := range co.lo {
			if co.isFixed[j] || math.IsInf(co.lo[j], -1) || co.hi[j]-co.lo[j] > preRedTol {
				continue
			}
			v := (co.lo[j] + co.hi[j]) / 2
			if co.isInt[j] {
				r := math.Round(v)
				if math.Abs(r-v) > intRoundTol {
					co.infeas = true
					return
				}
				v = r
			}
			co.isFixed[j] = true
			co.fixedVal[j] = v
			co.pre.FixedCols++
			co.changed = true
		}
		if !co.changed {
			return
		}
	}
}

// visitRow substitutes fixed variables, checks feasibility/redundancy, and
// propagates implied bounds for one row.
func (co *compiler) visitRow(r *preRow) {
	if !r.live {
		return
	}
	// Fold fixed columns into the right-hand side.
	w := 0
	for k, j := range r.cols {
		if co.isFixed[j] {
			r.rhs -= r.coef[k] * co.fixedVal[j]
			co.changed = true
			continue
		}
		r.cols[w], r.coef[w] = j, r.coef[k]
		w++
	}
	r.cols, r.coef = r.cols[:w], r.coef[:w]

	tol := preViolTol * (1 + math.Abs(r.rhs))
	leLike := r.rel == LE || r.rel == EQ
	geLike := r.rel == GE || r.rel == EQ
	if len(r.cols) == 0 {
		// Constant row: verify 0 rel rhs and drop.
		if (leLike && 0 > r.rhs+tol) || (geLike && 0 < r.rhs-tol) {
			co.infeas = true
			return
		}
		r.live = false
		co.pre.RemovedRows++
		co.changed = true
		return
	}

	// Activity bounds with infinite-contribution counting.
	var minA, maxA float64
	minInf, maxInf := 0, 0
	for k, j := range r.cols {
		a := r.coef[k]
		l, h := co.lo[j], co.hi[j]
		if a < 0 {
			l, h = h, l // contribution bounds swap for negative coefficients
		}
		if math.IsInf(l, 0) {
			minInf++
		} else {
			minA += a * l
		}
		if math.IsInf(h, 0) {
			maxInf++
		} else {
			maxA += a * h
		}
	}

	if leLike && minInf == 0 && minA > r.rhs+tol {
		co.infeas = true
		return
	}
	if geLike && maxInf == 0 && maxA < r.rhs-tol {
		co.infeas = true
		return
	}
	redLE := !leLike || (maxInf == 0 && maxA <= r.rhs+preRedTol)
	redGE := !geLike || (minInf == 0 && minA >= r.rhs-preRedTol)
	if redLE && redGE {
		r.live = false
		co.pre.RemovedRows++
		co.changed = true
		return
	}

	// Implied bounds: for a·x <= rhs - (min activity of the rest), and the
	// mirrored form for >=.
	for k, j := range r.cols {
		a := r.coef[k]
		if leLike {
			if rest, ok := restActivity(minA, minInf, a, co.lo, co.hi, j, true); ok {
				implied := (r.rhs - rest) / a
				if a > 0 {
					co.tightenHi(j, implied)
				} else {
					co.tightenLo(j, implied)
				}
			}
		}
		if co.infeas {
			return
		}
		if geLike {
			if rest, ok := restActivity(maxA, maxInf, a, co.lo, co.hi, j, false); ok {
				implied := (r.rhs - rest) / a
				if a > 0 {
					co.tightenLo(j, implied)
				} else {
					co.tightenHi(j, implied)
				}
			}
		}
		if co.infeas {
			return
		}
	}
}

// restActivity returns the activity of the row excluding column j's own
// contribution, on the min side (wantMin) or max side. ok is false when an
// infinite contribution other than j's blocks the bound.
func restActivity(act float64, nInf int, a float64, lo, hi []float64, j int, wantMin bool) (float64, bool) {
	// Column j contributes a*lo (a>0, min side) etc.; pick the bound that
	// enters the requested activity side.
	b := lo[j]
	if (a < 0) == wantMin {
		b = hi[j]
	}
	if math.IsInf(b, 0) {
		// j is itself an infinite contributor: usable only if it is the sole one.
		return act, nInf == 1
	}
	if nInf != 0 {
		return 0, false
	}
	return act - a*b, true
}

func (co *compiler) tightenHi(j int, v float64) {
	if math.IsInf(v, 1) {
		return
	}
	if co.isInt[j] {
		v = math.Floor(v + intRoundTol)
	}
	// Require a meaningful improvement: implied bounds are exact in real
	// arithmetic but carry float noise, and noise-sized cuts are absorbed by
	// the simplex feasibility tolerance anyway.
	if v >= co.hi[j]-preRedTol*(1+math.Abs(co.hi[j])) {
		return
	}
	co.hi[j] = v
	co.pre.TightenedBounds++
	co.changed = true
	co.checkCross(j)
}

func (co *compiler) tightenLo(j int, v float64) {
	if math.IsInf(v, -1) {
		return
	}
	if co.isInt[j] {
		v = math.Ceil(v - intRoundTol)
	}
	if v <= co.lo[j]+preRedTol*(1+math.Abs(co.lo[j])) {
		return
	}
	co.lo[j] = v
	co.pre.TightenedBounds++
	co.changed = true
	co.checkCross(j)
}

func (co *compiler) checkCross(j int) {
	switch {
	case co.lo[j] > co.hi[j]+feasEps:
		co.infeas = true
	case co.lo[j] > co.hi[j]:
		co.hi[j] = co.lo[j] // collapse sub-tolerance crossings to a fixing
	}
}

// build assembles the sparse instance from the surviving rows and columns.
func (co *compiler) build() *instance {
	nv := len(co.lo)
	varCol := make([]int, nv)
	var colVar []int
	for j := 0; j < nv; j++ {
		if co.isFixed[j] {
			varCol[j] = -1
			continue
		}
		varCol[j] = len(colVar)
		colVar = append(colVar, j)
	}
	nStruct := len(colVar)

	var liveRows []int
	for ri := range co.rows {
		if co.rows[ri].live {
			liveRows = append(liveRows, ri)
		}
	}
	mRows := len(liveRows)

	in := &instance{
		m:       mRows,
		nStruct: nStruct,
		n:       nStruct + mRows,
		b:       make([]float64, mRows),
		c:       make([]float64, nStruct+mRows),
		lo:      make([]float64, nStruct+mRows),
		hi:      make([]float64, nStruct+mRows),
		intCol:  make([]bool, nStruct),
		colVar:  colVar,
		varCol:  varCol,
		fixed:   co.fixedVal,
		flip:    flipOf(co.m),
		pre:     co.pre,
	}
	for k, j := range colVar {
		in.lo[k], in.hi[k] = co.lo[j], co.hi[j]
		in.intCol[k] = co.isInt[j]
	}
	for i, ri := range liveRows {
		in.b[i] = co.rows[ri].rhs
		s := nStruct + i
		switch co.rows[ri].rel {
		case LE:
			in.lo[s], in.hi[s] = 0, math.Inf(1)
		case GE:
			in.lo[s], in.hi[s] = math.Inf(-1), 0
		case EQ:
			in.lo[s], in.hi[s] = 0, 0
		}
	}

	// CSC assembly: count entries per column, prefix-sum, then fill row by
	// row so each column's entries come out sorted by row index.
	count := make([]int32, nStruct+1)
	nnz := 0
	for _, ri := range liveRows {
		for _, j := range co.rows[ri].cols {
			count[varCol[j]+1]++
			nnz++
		}
	}
	for k := 0; k < nStruct; k++ {
		count[k+1] += count[k]
	}
	in.colPtr = count
	in.rowIdx = make([]int32, nnz)
	in.val = make([]float64, nnz)
	cursor := make([]int32, nStruct)
	for k := 0; k < nStruct; k++ {
		cursor[k] = in.colPtr[k]
	}
	for i, ri := range liveRows {
		r := &co.rows[ri]
		for k, j := range r.cols {
			col := varCol[j]
			p := cursor[col]
			in.rowIdx[p] = int32(i)
			in.val[p] = r.coef[k]
			cursor[col] = p + 1
		}
	}

	obj, _ := co.m.Objective()
	for _, t := range obj.Terms() {
		if col := varCol[t.Var.id]; col >= 0 {
			in.c[col] += in.flip * t.Coef
		}
	}
	in.pert = make([]float64, len(in.c))
	for j := range in.pert {
		// Golden-ratio hashing spreads the perturbations over [0.5, 1.5)
		// with no two columns alike, deterministically per column index.
		xi := 0.5 + math.Mod(float64(j+1)*0.6180339887498949, 1)
		in.pert[j] = pertScale * xi * (1 + math.Abs(in.c[j]))
	}
	return in
}
