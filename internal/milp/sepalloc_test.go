package milp

import (
	"testing"
)

// sepAllocsPerRoundRef is the checked-in allocations-per-round figure of one
// full separation sweep (Gomory + lifted cover + clique) on the
// scheduling-shaped fixture, measured with persistent separators. The
// remaining allocations are the returned cutRow values themselves; the
// scratch buffers (dense accumulator, cover items, lifting mu, conflict
// val/ord/mask) are reused across rounds. The smoke test fails when a change
// doubles the figure — the regression mode this guards is a separator that
// silently goes back to allocating its scratch per round.
const sepAllocsPerRoundRef = 228

// sepFixture builds the separation fixture: a solved root relaxation of the
// scheduling-shaped MILP plus persistent per-family separators and the
// conflict graph, exactly as rootCutLoop holds them across rounds.
func sepFixture(tb testing.TB) (*instance, *simplexState, *cutSeparator, *cutSeparator, *conflictGraph, []float64) {
	tb.Helper()
	m := schedLikeLP(8, 3, false)
	in, st := compile(m, true)
	if st != StatusUnknown {
		tb.Fatalf("compile decided the model outright: %v", st)
	}
	s := newState(in)
	if status := s.solveCold(); status != StatusOptimal {
		tb.Fatalf("root relaxation status = %v", status)
	}
	x := make([]float64, in.nStruct)
	for j := range x {
		x[j] = s.colValue(j)
	}
	sepG := newCutSeparator(in)
	sepC := newCutSeparator(in)
	graph := buildConflictGraph(in, nil)
	if graph == nil {
		tb.Fatal("fixture mined no conflict edges; the clique family is not exercised")
	}
	return in, s, sepG, sepC, graph, x
}

// separationRound runs one full separation sweep with the given persistent
// separators and returns the number of cuts produced. It mirrors the per-round
// work of rootCutLoop's three family tasks.
func separationRound(in *instance, s *simplexState, sepG, sepC *cutSeparator, graph *conflictGraph, x []float64) int {
	cuts := 0
	for r := 0; r < in.m; r++ {
		if c := sepG.gomoryFromRow(s, r, x); c != nil {
			cuts++
		}
	}
	covers := 0
	for i := 0; i < in.m && covers < coverPerRound; i++ {
		if c := sepC.coverFromRow(i, x); c != nil {
			covers++
		}
	}
	cuts += covers
	if graph != nil {
		cuts += len(graph.separate(x))
	}
	return cuts
}

// TestSeparationAllocsPerRound is the allocation smoke gate: one separation
// round with persistent separators must stay within 2x the checked-in
// figure. CI runs it on every push (see bench-smoke).
func TestSeparationAllocsPerRound(t *testing.T) {
	in, s, sepG, sepC, graph, x := sepFixture(t)
	if n := separationRound(in, s, sepG, sepC, graph, x); n == 0 {
		t.Fatal("fixture separated no cuts; the allocation figure is meaningless")
	}
	allocs := testing.AllocsPerRun(10, func() {
		separationRound(in, s, sepG, sepC, graph, x)
	})
	if allocs > 2*sepAllocsPerRoundRef {
		t.Errorf("separation round allocates %.0f objects, more than 2x the checked-in figure %d",
			allocs, sepAllocsPerRoundRef)
	}
}

// BenchmarkCutSeparationRound contrasts one separation round with persistent
// (reused) separators against fresh per-round separators — run with -benchmem
// to see the allocation drop the scratch reuse buys.
func BenchmarkCutSeparationRound(b *testing.B) {
	in, s, sepG, sepC, graph, x := sepFixture(b)
	b.Run("reused", func(b *testing.B) {
		b.ReportAllocs()
		var cuts int
		for i := 0; i < b.N; i++ {
			cuts = separationRound(in, s, sepG, sepC, graph, x)
		}
		b.ReportMetric(float64(cuts), "cuts")
	})
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		var cuts int
		for i := 0; i < b.N; i++ {
			g := newCutSeparator(in)
			c := newCutSeparator(in)
			cg := buildConflictGraph(in, nil)
			cuts = separationRound(in, s, g, c, cg, x)
		}
		b.ReportMetric(float64(cuts), "cuts")
	})
}
