package milp

import "math"

// Node-heuristic parameters.
const (
	// heurEvery spaces heuristic dives: one worker claims a dive every this
	// many branch-and-bound nodes (plus one at the root).
	heurEvery = 48
	// heurMaxRounds caps the fix-propagate-resolve rounds of one dive.
	heurMaxRounds = 40
	// heurPivotBudget bounds the dual-simplex pivots of each dive resolve.
	heurPivotBudget = 500
	// heurRoundTol is the fractionality under which a dive round bulk-fixes
	// a column to its nearest integer.
	heurRoundTol = 0.1
	// rinsAgreeTol is the tolerance under which the node relaxation agrees
	// with the incumbent, making the column a RINS fixing candidate.
	rinsAgreeTol = 1e-3
)

// claimHeuristicSlot reserves the next heuristic trigger for this worker:
// dives run at the root and then roughly every heurEvery nodes across the
// pool, never concurrently duplicated.
func (w *bbWorker) claimHeuristicSlot() bool {
	sh := w.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.nodes < sh.heurNext {
		return false
	}
	sh.heurNext = sh.nodes + heurEvery
	return true
}

// runHeuristics tries to improve the incumbent from the current node's
// relaxation: a RINS dive (fix the integer columns where relaxation and
// incumbent agree, then dive) when an incumbent exists, and a plain
// feasibility dive. Both run on the worker's scratch simplex state; the main
// state, its bounds and its live basis are untouched. x is the node
// relaxation solution indexed by model variable.
func (w *bbWorker) runHeuristics(x []float64) {
	if w.heur == nil {
		w.heur = newState(w.in)
		w.heur.ctx = w.st.ctx
	}
	sh := w.sh
	sh.mu.Lock()
	var inc []float64
	if sh.best != nil {
		inc = append([]float64(nil), sh.best...)
	}
	sh.mu.Unlock()
	if inc != nil {
		w.dive(x, inc)
	}
	w.dive(x, nil)
	iters := w.heur.iters
	w.heur.iters = 0
	sh.mu.Lock()
	sh.lpIters += iters
	sh.mu.Unlock()
}

// dive runs one feasibility dive on the scratch state, seeded from the main
// state's node bounds and optimal basis. With rins non-nil, integer columns
// whose relaxation value agrees with the incumbent are fixed first (the RINS
// neighborhood). Each round bulk-fixes every nearly integral column plus the
// single most integral fractional one, propagates, and repairs the basis
// with a budgeted dual solve; an integral point that verifies against the
// original model becomes an incumbent candidate.
func (w *bbWorker) dive(x, rins []float64) {
	h := w.heur
	st := w.st
	in := w.in
	copy(h.lo, st.lo)
	copy(h.hi, st.hi)
	copy(h.basic, st.basic)
	copy(h.stat, st.stat)
	for j := range h.pos {
		h.pos[j] = -1
	}
	for i, col := range h.basic {
		h.pos[col] = int32(i)
	}
	if rins != nil {
		fixed := 0
		for _, v := range w.intVars {
			col := in.varCol[v.id]
			if col < 0 {
				continue
			}
			rv := math.Round(rins[v.id])
			if math.Abs(x[v.id]-rv) > rinsAgreeTol {
				continue
			}
			if rv < h.lo[col]-feasEps || rv > h.hi[col]+feasEps {
				continue
			}
			h.lo[col], h.hi[col] = rv, rv
			fixed++
		}
		if fixed == 0 {
			return // no neighborhood; the plain dive covers this node
		}
	}
	if _, ok := propagateBounds(in, h.lo, h.hi); !ok {
		return
	}
	if !h.fac.refactorize() {
		return
	}
	status := h.dual(heurPivotBudget)
	for round := 0; round < heurMaxRounds; round++ {
		if status != StatusOptimal {
			return
		}
		nFrac := 0
		pick, pickFrac := -1, 2.0
		for _, v := range w.intVars {
			col := in.varCol[v.id]
			if col < 0 {
				continue
			}
			xv := h.colValue(col)
			f := math.Abs(xv - math.Round(xv))
			if f <= w.opts.IntFeasTol {
				continue
			}
			nFrac++
			if f < pickFrac {
				pickFrac, pick = f, col
			}
		}
		if nFrac == 0 {
			xf := h.extract()
			for _, v := range w.intVars {
				xf[v.id] = math.Round(xf[v.id])
			}
			// Verify against the true model, not the relaxation: dives round
			// aggressively and tolerances could conspire.
			if ok, obj := checkFeasible(w.m, xf, w.opts.IntFeasTol); ok {
				if w.foundIncumbent(xf, w.dirSign*obj) {
					sh := w.sh
					sh.mu.Lock()
					sh.heurFound++
					sh.mu.Unlock()
				}
			}
			return
		}
		changed := false
		for _, v := range w.intVars {
			col := in.varCol[v.id]
			if col < 0 {
				continue
			}
			xv := h.colValue(col)
			f := math.Abs(xv - math.Round(xv))
			if f <= w.opts.IntFeasTol {
				continue
			}
			if f <= heurRoundTol || col == pick {
				// Integer bounds are integral here, so the rounded value
				// stays inside [lo, hi].
				rv := math.Round(xv)
				h.lo[col], h.hi[col] = rv, rv
				changed = true
			}
		}
		if !changed {
			return
		}
		if _, ok := propagateBounds(in, h.lo, h.hi); !ok {
			return
		}
		status = h.dual(heurPivotBudget)
	}
}
