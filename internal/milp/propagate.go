package milp

import "math"

// nodePropRounds caps the per-node propagation sweeps. Branching changes one
// bound, so most of the fixpoint is reached in a sweep or two; the root
// presolve already ran the full preMaxRounds fixpoint.
const nodePropRounds = 3

// propagateBounds re-runs activity-based bound propagation on the compiled
// instance under the working bounds lo/hi (the root bounds plus a node's
// branching decisions), tightening integer-column bounds in place. It is the
// node-level counterpart of the root presolve: after each branch the new
// bound ripples through the rows instead of waiting for the simplex to
// discover its consequences one pivot at a time.
//
// The derived bounds use integrality rounding, so they are implied for every
// integer-feasible point of the subproblem but may cut LP-relaxation points;
// that keeps the node's relaxation bound valid for the subtree while making
// it strictly tighter. Returns the number of tightenings applied and ok =
// false when some row proves the subproblem has no integer-feasible point —
// the node can then be pruned without solving its relaxation at all.
func propagateBounds(in *instance, lo, hi []float64) (int, bool) {
	if in.rowPtr == nil || in.m == 0 {
		return 0, true
	}
	tightened := 0
	for round := 0; round < nodePropRounds; round++ {
		changed := false
		for i := 0; i < in.m; i++ {
			// The slack bounds encode the row relation (branching never
			// touches them): Σ a_ij·x_j must land in [b−hiS, b−loS].
			sCol := in.nStruct + i
			lb, ub := in.b[i]-hi[sCol], in.b[i]-lo[sCol]

			// Activity bounds with infinite-contribution counting.
			var minA, maxA float64
			minInf, maxInf := 0, 0
			for p := in.rowPtr[i]; p < in.rowPtr[i+1]; p++ {
				j, a := in.rowCol[p], in.rowVal[p]
				l, h := lo[j], hi[j]
				if a < 0 {
					l, h = h, l
				}
				if math.IsInf(l, 0) {
					minInf++
				} else {
					minA += a * l
				}
				if math.IsInf(h, 0) {
					maxInf++
				} else {
					maxA += a * h
				}
			}
			if minInf == 0 && !math.IsInf(ub, 1) && minA > ub+preViolTol*(1+math.Abs(ub)) {
				return tightened, false
			}
			if maxInf == 0 && !math.IsInf(lb, -1) && maxA < lb-preViolTol*(1+math.Abs(lb)) {
				return tightened, false
			}

			// Implied integer bounds from both row sides, mirroring the root
			// presolve's visitRow but rounding through integrality.
			for p := in.rowPtr[i]; p < in.rowPtr[i+1]; p++ {
				j, a := int(in.rowCol[p]), in.rowVal[p]
				if !in.intCol[j] {
					continue
				}
				if !math.IsInf(ub, 1) {
					if rest, ok := restActivity(minA, minInf, a, lo, hi, j, true); ok {
						implied := (ub - rest) / a
						var n int
						var feas bool
						if a > 0 {
							n, feas = tightenIntHi(lo, hi, j, implied)
						} else {
							n, feas = tightenIntLo(lo, hi, j, implied)
						}
						if !feas {
							return tightened, false
						}
						if n > 0 {
							tightened += n
							changed = true
						}
					}
				}
				if !math.IsInf(lb, -1) {
					if rest, ok := restActivity(maxA, maxInf, a, lo, hi, j, false); ok {
						implied := (lb - rest) / a
						var n int
						var feas bool
						if a > 0 {
							n, feas = tightenIntLo(lo, hi, j, implied)
						} else {
							n, feas = tightenIntHi(lo, hi, j, implied)
						}
						if !feas {
							return tightened, false
						}
						if n > 0 {
							tightened += n
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	return tightened, true
}

// tightenIntHi lowers hi[j] to floor(v) when that is a genuine improvement.
// Working bounds of integer columns are integral (root presolve rounded
// them, branching floors/ceils), so improvements come in whole steps and a
// half-unit margin separates signal from float noise. Returns the number of
// tightenings (0 or 1) and feasibility.
func tightenIntHi(lo, hi []float64, j int, v float64) (int, bool) {
	v = math.Floor(v + intRoundTol)
	if math.IsInf(v, 1) || v >= hi[j]-0.5 {
		return 0, true
	}
	if v < lo[j]-0.5 {
		return 0, false
	}
	hi[j] = v
	return 1, true
}

// tightenIntLo raises lo[j] to ceil(v); the mirror of tightenIntHi.
func tightenIntLo(lo, hi []float64, j int, v float64) (int, bool) {
	v = math.Ceil(v - intRoundTol)
	if math.IsInf(v, -1) || v <= lo[j]+0.5 {
		return 0, true
	}
	if v > hi[j]+0.5 {
		return 0, false
	}
	lo[j] = v
	return 1, true
}
