// Package milp provides a small, dependency-free linear-programming and
// mixed-integer-linear-programming toolkit.
//
// The paper this repository reproduces ("Transport or Store?", DAC 2017)
// solves its scheduling and architectural-synthesis formulations with Gurobi.
// This package is the stdlib-only substitute: a modeling layer (variables,
// linear expressions, constraints), a sparse bounded-variable revised
// simplex (primal and dual) over a presolved column-major instance, and a
// parallel best-bound branch-and-bound driver that warm-starts every child
// relaxation from its parent's basis, with a wall-clock time limit and
// best-effort incumbents mirroring the paper's 30-minute solver cap.
//
// The solver is exact on the small and medium instances used in tests and in
// the PCR experiments; larger instances fall back to time-limited
// best-effort search exactly as the paper reports for its larger assays.
// Solver diagnostics (nodes, pivots, warm-start rate, presolve reductions,
// MIP gap) are reported on every Solution via SolveStats.
package milp

import (
	"fmt"
	"math"
	"sort"
)

// VarType classifies a decision variable.
type VarType int

const (
	// Continuous variables take any real value within their bounds.
	Continuous VarType = iota
	// Integer variables are restricted to integral values within bounds.
	Integer
	// Binary variables are integer variables with bounds [0,1].
	Binary
)

// String returns a short human-readable name for the variable type.
func (t VarType) String() string {
	switch t {
	case Continuous:
		return "continuous"
	case Integer:
		return "integer"
	case Binary:
		return "binary"
	default:
		return fmt.Sprintf("VarType(%d)", int(t))
	}
}

// Sense selects between minimization and maximization objectives.
type Sense int

const (
	// Minimize seeks the smallest objective value.
	Minimize Sense = iota
	// Maximize seeks the largest objective value.
	Maximize
)

// String returns the textual direction of optimization.
func (s Sense) String() string {
	if s == Maximize {
		return "maximize"
	}
	return "minimize"
}

// Relation is the comparison operator of a linear constraint.
type Relation int

const (
	// LE is "less than or equal".
	LE Relation = iota
	// GE is "greater than or equal".
	GE
	// EQ is "equal".
	EQ
)

// String returns the operator as it would appear in an LP file.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Inf is the bound value used to denote an unbounded variable side.
var Inf = math.Inf(1)

// Var is an opaque handle to a decision variable in a Model.
type Var struct {
	id int
}

// ID returns the dense index of the variable inside its model. It is stable
// for the lifetime of the model and usable as a slice index.
func (v Var) ID() int { return v.id }

// varData stores the per-variable attributes held by a Model.
type varData struct {
	name string
	lo   float64
	hi   float64
	typ  VarType
}

// Constraint is one linear constraint: Expr Rel RHS.
type Constraint struct {
	// Name is an optional label used in diagnostics and LP output.
	Name string
	// Expr is the linear left-hand side.
	Expr Expr
	// Rel is the comparison operator.
	Rel Relation
	// RHS is the right-hand-side constant.
	RHS float64
}

// Model is a mutable MILP model: a set of typed, bounded variables, linear
// constraints, and one linear objective.
type Model struct {
	vars []varData
	cons []Constraint
	obj  Expr
	dir  Sense
}

// NewModel returns an empty minimization model.
func NewModel() *Model {
	return &Model{dir: Minimize}
}

// NumVars reports how many variables have been created.
func (m *Model) NumVars() int { return len(m.vars) }

// NumConstraints reports how many constraints have been added.
func (m *Model) NumConstraints() int { return len(m.cons) }

// NewVar adds a variable with the given name, bounds and type and returns its
// handle. Binary variables have their bounds clamped to [0,1]. A reversed
// bound pair (lo > hi) is allowed at creation time and reported as infeasible
// by the solver, matching common solver behaviour.
func (m *Model) NewVar(name string, lo, hi float64, typ VarType) Var {
	if typ == Binary {
		if lo < 0 {
			lo = 0
		}
		if hi > 1 {
			hi = 1
		}
	}
	m.vars = append(m.vars, varData{name: name, lo: lo, hi: hi, typ: typ})
	return Var{id: len(m.vars) - 1}
}

// NewBinary adds a {0,1} variable.
func (m *Model) NewBinary(name string) Var {
	return m.NewVar(name, 0, 1, Binary)
}

// NewInteger adds an integer variable with the given bounds.
func (m *Model) NewInteger(name string, lo, hi float64) Var {
	return m.NewVar(name, lo, hi, Integer)
}

// NewContinuous adds a continuous variable with the given bounds.
func (m *Model) NewContinuous(name string, lo, hi float64) Var {
	return m.NewVar(name, lo, hi, Continuous)
}

// VarName returns the name given to v at creation.
func (m *Model) VarName(v Var) string { return m.vars[v.id].name }

// Bounds returns the lower and upper bound of v.
func (m *Model) Bounds(v Var) (lo, hi float64) {
	d := m.vars[v.id]
	return d.lo, d.hi
}

// SetBounds replaces the bounds of v. It is used by branch and bound to
// branch without copying the whole model.
func (m *Model) SetBounds(v Var, lo, hi float64) {
	m.vars[v.id].lo = lo
	m.vars[v.id].hi = hi
}

// Type returns the variable type of v.
func (m *Model) Type(v Var) VarType { return m.vars[v.id].typ }

// AddConstraint appends expr rel rhs to the model and returns its index.
func (m *Model) AddConstraint(name string, expr Expr, rel Relation, rhs float64) int {
	m.cons = append(m.cons, Constraint{Name: name, Expr: expr.Clone(), Rel: rel, RHS: rhs})
	return len(m.cons) - 1
}

// AddLE adds expr <= rhs.
func (m *Model) AddLE(name string, expr Expr, rhs float64) int {
	return m.AddConstraint(name, expr, LE, rhs)
}

// AddGE adds expr >= rhs.
func (m *Model) AddGE(name string, expr Expr, rhs float64) int {
	return m.AddConstraint(name, expr, GE, rhs)
}

// AddEQ adds expr = rhs.
func (m *Model) AddEQ(name string, expr Expr, rhs float64) int {
	return m.AddConstraint(name, expr, EQ, rhs)
}

// Constraint returns the i-th constraint (read-only view).
func (m *Model) Constraint(i int) Constraint { return m.cons[i] }

// SetObjective installs the objective expression and direction.
func (m *Model) SetObjective(expr Expr, dir Sense) {
	m.obj = expr.Clone()
	m.dir = dir
}

// Objective returns the current objective expression and sense.
func (m *Model) Objective() (Expr, Sense) { return m.obj, m.dir }

// IntegerVars returns the handles of all Integer/Binary variables in id order.
func (m *Model) IntegerVars() []Var {
	var out []Var
	for i, d := range m.vars {
		if d.typ != Continuous {
			out = append(out, Var{id: i})
		}
	}
	return out
}

// Validate performs cheap sanity checks: variable ids in range, finite
// coefficients, and non-NaN bounds. It returns the first problem found.
func (m *Model) Validate() error {
	for i, d := range m.vars {
		if math.IsNaN(d.lo) || math.IsNaN(d.hi) {
			return fmt.Errorf("milp: variable %d (%s) has NaN bound", i, d.name)
		}
	}
	check := func(e Expr, what string) error {
		for _, t := range e.Terms() {
			if t.Var.id < 0 || t.Var.id >= len(m.vars) {
				return fmt.Errorf("milp: %s references unknown variable id %d", what, t.Var.id)
			}
			if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
				return fmt.Errorf("milp: %s has non-finite coefficient %v", what, t.Coef)
			}
		}
		return nil
	}
	if err := check(m.obj, "objective"); err != nil {
		return err
	}
	for i := range m.cons {
		c := &m.cons[i]
		if err := check(c.Expr, fmt.Sprintf("constraint %d (%s)", i, c.Name)); err != nil {
			return err
		}
		if math.IsNaN(c.RHS) {
			return fmt.Errorf("milp: constraint %d (%s) has NaN rhs", i, c.Name)
		}
	}
	return nil
}

// Stats summarizes a model for logs and reports.
type Stats struct {
	Vars        int
	Binaries    int
	Integers    int
	Continuous  int
	Constraints int
}

// Stats computes the size summary of the model.
func (m *Model) Stats() Stats {
	s := Stats{Vars: len(m.vars), Constraints: len(m.cons)}
	for _, d := range m.vars {
		switch d.typ {
		case Binary:
			s.Binaries++
		case Integer:
			s.Integers++
		default:
			s.Continuous++
		}
	}
	return s
}

// String renders the stats compactly, e.g. "12 vars (8 bin, 0 int), 30 cons".
func (s Stats) String() string {
	return fmt.Sprintf("%d vars (%d bin, %d int), %d cons",
		s.Vars, s.Binaries, s.Integers, s.Constraints)
}

// sortedVarIDs returns the ids appearing in e in ascending order; helper for
// deterministic output.
func sortedVarIDs(e Expr) []int {
	ids := make([]int, 0, len(e.Terms()))
	for _, t := range e.Terms() {
		ids = append(ids, t.Var.id)
	}
	sort.Ints(ids)
	return ids
}
