package milp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The kernel equivalence harness: the dense-inverse and sparse-LU kernels
// must be interchangeable behind the basisFactorization interface. Every
// test here runs both kernels side by side on the same bases — sched-shaped
// LPs and seeded random models — and asserts that ftran/btran answers agree
// to tight tolerance and full solves reach identical optimal objectives.

// equivTol is the agreement tolerance between kernels, scaled by magnitude.
const equivTol = 1e-9

func maxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

func assertVecsEqual(t *testing.T, what string, a, b []float64) {
	t.Helper()
	scale := 1 + math.Max(maxAbs(a), maxAbs(b))
	for i := range a {
		if math.Abs(a[i]-b[i]) > equivTol*scale {
			t.Fatalf("%s: kernels disagree at %d: dense %v vs sparse-lu %v (scale %g)",
				what, i, a[i], b[i], scale)
		}
	}
}

// randomFeasibleLP builds a seeded LP that is feasible by construction, large
// enough for a meaningful basis (structural columns plus slacks).
func randomFeasibleLP(seed int64, nVars, nCons int) *Model {
	r := rand.New(rand.NewSource(seed))
	m := NewModel()
	vars := make([]Var, nVars)
	point := make([]float64, nVars)
	for i := range vars {
		vars[i] = m.NewContinuous(fmt.Sprintf("v%d", i), 0, 50)
		point[i] = float64(r.Intn(20))
	}
	for c := 0; c < nCons; c++ {
		e := NewExpr(0)
		lhs := 0.0
		for i, v := range vars {
			if r.Intn(3) != 0 {
				continue // keep the matrix sparse
			}
			coef := float64(r.Intn(9) - 4)
			if coef == 0 {
				continue
			}
			e.Add(v, coef)
			lhs += coef * point[i]
		}
		m.AddLE(fmt.Sprintf("c%d", c), *e, lhs+float64(r.Intn(6)))
	}
	obj := NewExpr(0)
	for _, v := range vars {
		obj.Add(v, float64(r.Intn(7)-2))
	}
	m.SetObjective(*obj, Minimize)
	return m
}

// equivModels is the shared fixture set: the sched-shaped LPs at the sizes
// the paper's formulations compile to, plus seeded random sparse models.
func equivModels() map[string]*Model {
	return map[string]*Model{
		"sched_n6_k2":  schedLikeLP(6, 2, true),
		"sched_n10_k3": schedLikeLP(10, 3, true),
		"sched_n14_k4": schedLikeLP(14, 4, true),
		"rand_42":      randomFeasibleLP(42, 40, 60),
		"rand_7":       randomFeasibleLP(7, 30, 45),
	}
}

// solvedDenseState cold-solves the instance with the dense kernel, yielding
// a realistic (optimal) basis to compare factorizations on.
func solvedDenseState(t *testing.T, in *instance) *simplexState {
	t.Helper()
	s := newStateKernel(in, kernelDense)
	if st := s.solveCold(); st != StatusOptimal {
		t.Fatalf("dense cold solve: %v", st)
	}
	return s
}

// TestKernelEquivalenceFactorize refactorizes the dense kernel's optimal
// basis with the sparse LU kernel and compares every solve query the simplex
// issues: per-column FTRAN, dense FTRAN/BTRAN, and inverse rows.
func TestKernelEquivalenceFactorize(t *testing.T) {
	for name, model := range equivModels() {
		t.Run(name, func(t *testing.T) {
			in, decided := compile(model, false)
			if decided == StatusInfeasible {
				t.Fatal("fixture infeasible")
			}
			s := solvedDenseState(t, in)
			if !s.fac.refactorize() {
				t.Fatal("dense refactorize failed")
			}
			lu := newLUFactor(in, s.basic, nil)
			if !lu.refactorize() {
				t.Fatal("sparse-lu refactorize failed")
			}

			m := in.m
			wd, wl := make([]float64, m), make([]float64, m)
			for j := 0; j < in.n; j++ {
				s.fac.ftranColumn(j, wd)
				lu.ftranColumn(j, wl)
				assertVecsEqual(t, fmt.Sprintf("ftranColumn(%d)", j), wd, wl)
			}
			for r := 0; r < m; r++ {
				s.fac.btranRow(r, wd)
				lu.btranRow(r, wl)
				assertVecsEqual(t, fmt.Sprintf("btranRow(%d)", r), wd, wl)
			}
			rng := rand.New(rand.NewSource(99))
			cb := make([]float64, m)
			rhs := make([]float64, m)
			for trial := 0; trial < 5; trial++ {
				for i := range cb {
					cb[i] = float64(rng.Intn(21) - 10)
					rhs[i] = float64(rng.Intn(21) - 10)
				}
				s.fac.btranDense(cb, wd)
				lu.btranDense(cb, wl)
				assertVecsEqual(t, "btranDense", wd, wl)
				s.fac.ftranDense(rhs, wd)
				lu.ftranDense(rhs, wl)
				assertVecsEqual(t, "ftranDense", wd, wl)
			}
			if lu.snapshot().FillRatio <= 0 {
				t.Error("sparse-lu reported no fill ratio after refactorize")
			}
		})
	}
}

// TestKernelEquivalenceUpdates drives both kernels through the same sequence
// of basis changes — eta updates on the dense side, Forrest–Tomlin on the
// sparse side — re-checking agreement after every update.
func TestKernelEquivalenceUpdates(t *testing.T) {
	for name, model := range equivModels() {
		t.Run(name, func(t *testing.T) {
			in, decided := compile(model, false)
			if decided == StatusInfeasible {
				t.Fatal("fixture infeasible")
			}
			s := solvedDenseState(t, in)
			if !s.fac.refactorize() {
				t.Fatal("dense refactorize failed")
			}
			// Both kernels share one basis array so the replayed pivots stay
			// in lockstep by construction.
			lu := newLUFactor(in, s.basic, nil)
			if !lu.refactorize() {
				t.Fatal("sparse-lu refactorize failed")
			}

			m := in.m
			inBasis := make([]bool, in.n)
			for _, c := range s.basic {
				inBasis[c] = true
			}
			wd, wl := make([]float64, m), make([]float64, m)
			rng := rand.New(rand.NewSource(5))
			updates := 0
			for attempt := 0; attempt < 200 && updates < 25; attempt++ {
				q := rng.Intn(in.n)
				if inBasis[q] {
					continue
				}
				s.fac.ftranColumn(q, wd)
				lu.ftranColumn(q, wl)
				assertVecsEqual(t, fmt.Sprintf("ftranColumn(%d) pre-update", q), wd, wl)
				// Pivot on the largest-magnitude row for stability.
				r, best := -1, 1e-4
				for i := 0; i < m; i++ {
					if a := math.Abs(wd[i]); a > best {
						r, best = i, a
					}
				}
				if r < 0 {
					continue
				}
				if !s.fac.update(r, wd) {
					t.Fatalf("dense update rejected (pivot %g)", wd[r])
				}
				if !lu.update(r, wl) {
					t.Fatalf("sparse-lu update rejected (pivot %g)", wl[r])
				}
				inBasis[s.basic[r]] = false
				inBasis[q] = true
				s.basic[r] = int32(q)
				updates++

				for trial := 0; trial < 3; trial++ {
					j := rng.Intn(in.n)
					s.fac.ftranColumn(j, wd)
					lu.ftranColumn(j, wl)
					assertVecsEqual(t, fmt.Sprintf("ftranColumn(%d) after %d updates", j, updates), wd, wl)
					rr := rng.Intn(m)
					s.fac.btranRow(rr, wd)
					lu.btranRow(rr, wl)
					assertVecsEqual(t, fmt.Sprintf("btranRow(%d) after %d updates", rr, updates), wd, wl)
				}
			}
			if updates < 10 {
				t.Fatalf("only %d basis updates exercised", updates)
			}
			if got := lu.snapshot().Updates; got != updates {
				t.Errorf("sparse-lu counted %d updates, want %d", got, updates)
			}
		})
	}
}

// TestKernelEquivalenceFullSolve solves every fixture once per kernel and
// asserts the proven optimal objectives coincide.
func TestKernelEquivalenceFullSolve(t *testing.T) {
	for name, model := range equivModels() {
		t.Run(name, func(t *testing.T) {
			in, decided := compile(model, false)
			if decided == StatusInfeasible {
				t.Fatal("fixture infeasible")
			}
			objs := make(map[kernelKind]float64)
			for _, kk := range []kernelKind{kernelDense, kernelSparseLU} {
				s := newStateKernel(in, kk)
				if st := s.solveCold(); st != StatusOptimal {
					t.Fatalf("kernel %v: cold solve %v", kk, st)
				}
				x := s.extract()
				obj, _ := model.Objective()
				objs[kk] = obj.Eval(x)
			}
			if d := math.Abs(objs[kernelDense] - objs[kernelSparseLU]); d > 1e-6*(1+math.Abs(objs[kernelDense])) {
				t.Errorf("optimal objectives diverge: dense %v vs sparse-lu %v",
					objs[kernelDense], objs[kernelSparseLU])
			}
		})
	}
}

// TestKernelAutoCrossover pins the newState kernel choice to the row-count
// crossover.
func TestKernelAutoCrossover(t *testing.T) {
	small, decided := compile(schedLikeLP(6, 2, true), false)
	if decided == StatusInfeasible {
		t.Fatal("fixture infeasible")
	}
	if k := newState(small).fac.kind(); k != "dense" {
		t.Errorf("small model (%d rows) picked %q, want dense", small.m, k)
	}
	big, decided := compile(schedLikeLP(14, 4, true), false)
	if decided == StatusInfeasible {
		t.Fatal("fixture infeasible")
	}
	if big.m < sparseKernelMinRows {
		t.Fatalf("fixture too small for crossover: %d rows", big.m)
	}
	if k := newState(big).fac.kind(); k != "sparse-lu" {
		t.Errorf("large model (%d rows) picked %q, want sparse-lu", big.m, k)
	}
}
