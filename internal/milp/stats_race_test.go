package milp

import (
	"sync"
	"testing"
)

// TestMILPParallelStatsCoherent stress-tests the multi-worker aggregation of
// the cut-and-branch counters under the race detector: several concurrent
// Solves with a worker pool each, all on a model hard enough that cuts,
// reliability probes, heuristics and reduced-cost fixing all fire. Every
// worker tallies locally and merges under the shared mutex at exit; this test
// pins the invariants that aggregation must preserve regardless of
// interleaving.
func TestMILPParallelStatsCoherent(t *testing.T) {
	var wg sync.WaitGroup
	for run := 0; run < 2; run++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, _ := hardKnapsack(16)
			sol, err := Solve(m, SolveOptions{Workers: 4})
			if err != nil {
				t.Error(err)
				return
			}
			if sol.Status != StatusOptimal {
				t.Errorf("status = %v, want optimal", sol.Status)
				return
			}
			st := sol.Stats
			if st.Workers != 4 {
				t.Errorf("Workers = %d, want 4", st.Workers)
			}
			// Every node relaxation was either warm- or cold-started; the root
			// cut loop books one extra cold solve without a node when it ran
			// to optimality. A lost or double-counted merge breaks this.
			if got := st.WarmStarts + st.ColdStarts; got != st.Nodes && got != st.Nodes+1 {
				t.Errorf("warm %d + cold %d = %d, want nodes %d or nodes+1",
					st.WarmStarts, st.ColdStarts, got, st.Nodes)
			}
			// The pricing split partitions total pivots: nothing else
			// increments SimplexIters once the search runs.
			if got := st.IncrementalPivots + st.FullPricingPivots; got != st.SimplexIters {
				t.Errorf("incremental %d + full %d pivots != simplex iters %d",
					st.IncrementalPivots, st.FullPricingPivots, st.SimplexIters)
			}
			if st.Cuts.Applied > st.Cuts.Gomory+st.Cuts.Cover {
				t.Errorf("applied %d cuts but only %d+%d separated",
					st.Cuts.Applied, st.Cuts.Gomory, st.Cuts.Cover)
			}
			for name, v := range map[string]int{
				"PseudoCostInits":        st.PseudoCostInits,
				"HeuristicIncumbents":    st.HeuristicIncumbents,
				"ReducedCostFixings":     st.ReducedCostFixings,
				"PropagationTightenings": st.PropagationTightenings,
				"PropagationPrunes":      st.PropagationPrunes,
				"CutsAgedOut":            st.Cuts.AgedOut,
			} {
				if v < 0 {
					t.Errorf("%s = %d, want >= 0", name, v)
				}
			}
			// The hard knapsack needs real branching; reliability probes must
			// have initialized at least one pseudo-cost pair.
			if st.Nodes > 1 && st.PseudoCostInits == 0 {
				t.Error("no pseudo-cost reliability probes despite branching")
			}
		}()
	}
	wg.Wait()
}
