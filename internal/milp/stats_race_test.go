package milp

import (
	"reflect"
	"sync"
	"testing"
)

// TestMILPParallelStatsCoherent stress-tests the multi-worker aggregation of
// the cut-and-branch counters under the race detector: several concurrent
// Solves with a worker pool each, all on a model hard enough that cuts,
// reliability probes, heuristics and reduced-cost fixing all fire. Every
// worker tallies locally and merges under the shared mutex at exit; this test
// pins the invariants that aggregation must preserve regardless of
// interleaving.
func TestMILPParallelStatsCoherent(t *testing.T) {
	var wg sync.WaitGroup
	for run := 0; run < 2; run++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, _ := hardKnapsack(16)
			sol, err := Solve(m, SolveOptions{Workers: 4})
			if err != nil {
				t.Error(err)
				return
			}
			if sol.Status != StatusOptimal {
				t.Errorf("status = %v, want optimal", sol.Status)
				return
			}
			st := sol.Stats
			if st.Workers != 4 {
				t.Errorf("Workers = %d, want 4", st.Workers)
			}
			// Every node relaxation was either warm- or cold-started; the root
			// cut loop books one extra cold solve without a node when it ran
			// to optimality. A lost or double-counted merge breaks this.
			if got := st.WarmStarts + st.ColdStarts; got != st.Nodes && got != st.Nodes+1 {
				t.Errorf("warm %d + cold %d = %d, want nodes %d or nodes+1",
					st.WarmStarts, st.ColdStarts, got, st.Nodes)
			}
			// The pricing split partitions total pivots: nothing else
			// increments SimplexIters once the search runs.
			if got := st.IncrementalPivots + st.FullPricingPivots; got != st.SimplexIters {
				t.Errorf("incremental %d + full %d pivots != simplex iters %d",
					st.IncrementalPivots, st.FullPricingPivots, st.SimplexIters)
			}
			if st.Cuts.Applied > st.Cuts.Gomory+st.Cuts.Cover+st.Cuts.Clique {
				t.Errorf("applied %d cuts but only %d+%d+%d separated",
					st.Cuts.Applied, st.Cuts.Gomory, st.Cuts.Cover, st.Cuts.Clique)
			}
			// Lifted covers are the subset of cover cuts that carried a lifted
			// coefficient; they can never outnumber the covers themselves.
			if st.Cuts.LiftedCover > st.Cuts.Cover {
				t.Errorf("lifted covers %d > covers %d", st.Cuts.LiftedCover, st.Cuts.Cover)
			}
			if st.SeparationWall < 0 {
				t.Errorf("SeparationWall = %v, want >= 0", st.SeparationWall)
			}
			for name, v := range map[string]int{
				"PseudoCostInits":          st.PseudoCostInits,
				"HeuristicIncumbents":      st.HeuristicIncumbents,
				"LocalBranchingIncumbents": st.LocalBranchingIncumbents,
				"ReducedCostFixings":       st.ReducedCostFixings,
				"PropagationTightenings":   st.PropagationTightenings,
				"PropagationPrunes":        st.PropagationPrunes,
				"CutsAgedOut":              st.Cuts.AgedOut,
				"CliqueCuts":               st.Cuts.Clique,
				"LiftedCovers":             st.Cuts.LiftedCover,
			} {
				if v < 0 {
					t.Errorf("%s = %d, want >= 0", name, v)
				}
			}
			// The hard knapsack needs real branching; reliability probes must
			// have initialized at least one pseudo-cost pair.
			if st.Nodes > 1 && st.PseudoCostInits == 0 {
				t.Error("no pseudo-cost reliability probes despite branching")
			}
		}()
	}
	wg.Wait()
}

// TestMILPSequentialSeparationDeterministic pins the byte-reproducibility
// contract of a Workers=1 solve on a separation-rich model (the companion of
// TestMILPSequentialDeterministic's pure knapsack): two runs must walk the
// same tree and produce identical solutions and counters. The
// scheduling-shaped fixture exercises every separation family (its assignment
// equalities mine conflict edges, the big-M rows feed Gomory and cover
// separation), so the test guards the deterministic candidate ordering in the
// root cut loop — an unsorted merge shows up here as diverging node or cut
// counts.
func TestMILPSequentialSeparationDeterministic(t *testing.T) {
	solveOnce := func() (*Solution, SolveStats) {
		m := schedLikeLP(6, 2, false)
		sol, err := Solve(m, SolveOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("status = %v, want optimal", sol.Status)
		}
		st := sol.Stats
		// Wall-clock time is the one legitimately nondeterministic counter.
		st.SeparationWall = 0
		return sol, st
	}
	a, sa := solveOnce()
	b, sb := solveOnce()
	if a.Objective != b.Objective {
		t.Errorf("objective diverged: %v vs %v", a.Objective, b.Objective)
	}
	if !reflect.DeepEqual(a.X, b.X) {
		t.Errorf("solution vectors diverged:\n  %v\n  %v", a.X, b.X)
	}
	if !reflect.DeepEqual(sa, sb) {
		t.Errorf("stats diverged:\n  %+v\n  %+v", sa, sb)
	}
}
