package seqgraph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// jsonGraph is the on-disk JSON schema for assays. The format is stable and
// human-editable so users can define custom assays without writing Go.
type jsonGraph struct {
	Name       string      `json:"name"`
	Operations []jsonOp    `json:"operations"`
	Edges      [][2]string `json:"edges"`
}

type jsonOp struct {
	Name     string `json:"name"`
	Kind     string `json:"kind,omitempty"`
	Duration int    `json:"duration"`
	Inputs   int    `json:"inputs,omitempty"`
}

func kindFromString(s string) (OpKind, error) {
	switch strings.ToLower(s) {
	case "", "mix":
		return Mix, nil
	case "dilute":
		return Dilute, nil
	case "heat":
		return Heat, nil
	case "detect":
		return Detect, nil
	default:
		return 0, fmt.Errorf("seqgraph: unknown operation kind %q", s)
	}
}

// MarshalJSON renders the graph in the stable assay JSON schema, in
// canonical form: operations sorted by name and edges sorted by (parent,
// child) name pair. Two graphs describing the same assay therefore serialize
// to identical bytes regardless of the order their operations and edges were
// inserted — the property the content-addressed result cache keys on (see
// Fingerprint).
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.Name}
	for _, op := range g.ops {
		jg.Operations = append(jg.Operations, jsonOp{
			Name:     op.Name,
			Kind:     op.Kind.String(),
			Duration: op.Duration,
			Inputs:   op.Inputs,
		})
	}
	sort.SliceStable(jg.Operations, func(i, j int) bool {
		return jg.Operations[i].Name < jg.Operations[j].Name
	})
	for _, e := range g.edges {
		jg.Edges = append(jg.Edges, [2]string{g.ops[e.Parent].Name, g.ops[e.Child].Name})
	}
	sort.Slice(jg.Edges, func(i, j int) bool {
		if jg.Edges[i][0] != jg.Edges[j][0] {
			return jg.Edges[i][0] < jg.Edges[j][0]
		}
		return jg.Edges[i][1] < jg.Edges[j][1]
	})
	return json.MarshalIndent(jg, "", "  ")
}

// Fingerprint returns a content hash (hex-encoded SHA-256) of the graph's
// canonical JSON form: identical for the same assay regardless of
// op-insertion order, different for any structural change. It is the
// assay half of the service layer's cache keys.
//
// The JSON schema references operations by name, so graphs with duplicate
// operation names (expressible programmatically, not in JSON) would alias
// under the canonical form; those fall back to an ID-based digest that is
// insertion-order-dependent but never collides two distinct graphs.
func Fingerprint(g *Graph) string {
	names := make(map[string]struct{}, len(g.ops))
	unique := true
	for _, op := range g.ops {
		if _, dup := names[op.Name]; dup {
			unique = false
			break
		}
		names[op.Name] = struct{}{}
	}
	h := sha256.New()
	if unique {
		data, err := g.MarshalJSON()
		if err == nil {
			h.Write(data)
			return hex.EncodeToString(h.Sum(nil))
		}
		// fall through to the structural digest; MarshalJSON on a validated
		// graph cannot fail, but a wrong hash must never be possible.
	}
	// Structural digest over IDs: exact, but sensitive to insertion order.
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	io.WriteString(h, g.Name)
	writeInt(len(g.ops))
	for _, op := range g.ops {
		io.WriteString(h, op.Name)
		writeInt(int(op.Kind))
		writeInt(op.Duration)
		writeInt(op.Inputs)
	}
	writeInt(len(g.edges))
	for _, e := range g.edges {
		writeInt(int(e.Parent))
		writeInt(int(e.Child))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// UnmarshalJSON parses the assay JSON schema. Operation names must be unique
// because edges reference operations by name.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("seqgraph: parsing assay: %w", err)
	}
	fresh := New(jg.Name)
	byName := make(map[string]OpID, len(jg.Operations))
	for _, op := range jg.Operations {
		if _, dup := byName[op.Name]; dup {
			return fmt.Errorf("seqgraph: duplicate operation name %q", op.Name)
		}
		kind, err := kindFromString(op.Kind)
		if err != nil {
			return err
		}
		id, err := fresh.AddOperation(op.Name, kind, op.Duration, op.Inputs)
		if err != nil {
			return err
		}
		byName[op.Name] = id
	}
	for _, e := range jg.Edges {
		p, ok := byName[e[0]]
		if !ok {
			return fmt.Errorf("seqgraph: edge references unknown operation %q", e[0])
		}
		c, ok := byName[e[1]]
		if !ok {
			return fmt.Errorf("seqgraph: edge references unknown operation %q", e[1])
		}
		if err := fresh.AddDependency(p, c); err != nil {
			return err
		}
	}
	if err := fresh.Validate(); err != nil {
		return err
	}
	*g = *fresh
	return nil
}

// Read parses an assay from JSON.
func Read(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("seqgraph: reading assay: %w", err)
	}
	g := New("")
	if err := g.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return g, nil
}

// Write renders the assay as JSON.
func Write(w io.Writer, g *Graph) error {
	data, err := g.MarshalJSON()
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}

// WriteDOT renders the sequencing graph in Graphviz DOT format, laid out with
// operations as boxes and external inputs as small circles, matching the
// visual style of the paper's Fig. 2(a).
func WriteDOT(w io.Writer, g *Graph) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box];\n", g.Name)
	for _, op := range g.ops {
		fmt.Fprintf(&b, "  %q [label=\"%s\\n%s %ds\"];\n", op.Name, op.Name, op.Kind, op.Duration)
		for i := 0; i < op.Inputs; i++ {
			in := fmt.Sprintf("%s_in%d", op.Name, i)
			fmt.Fprintf(&b, "  %q [shape=circle,width=0.2,label=\"\"];\n  %q -> %q;\n", in, in, op.Name)
		}
	}
	edges := append([]Edge(nil), g.edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Parent != edges[j].Parent {
			return edges[i].Parent < edges[j].Parent
		}
		return edges[i].Child < edges[j].Child
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %q -> %q;\n", g.ops[e.Parent].Name, g.ops[e.Child].Name)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
