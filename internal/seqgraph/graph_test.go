package seqgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	a := g.MustAddOperation("a", Mix, 10, 2)
	b := g.MustAddOperation("b", Mix, 20, 0)
	c := g.MustAddOperation("c", Dilute, 30, 1)
	d := g.MustAddOperation("d", Detect, 5, 0)
	g.MustAddDependency(a, b)
	g.MustAddDependency(a, c)
	g.MustAddDependency(b, d)
	g.MustAddDependency(c, d)
	return g
}

func TestGraphBasics(t *testing.T) {
	g := diamond(t)
	if g.NumOps() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d ops, %d edges; want 4, 4", g.NumOps(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := g.Roots(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Roots = %v, want [0]", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Sinks = %v, want [3]", got)
	}
	if got := g.Children(0); len(got) != 2 {
		t.Errorf("Children(a) = %v, want 2 entries", got)
	}
	if got := g.Parents(3); len(got) != 2 {
		t.Errorf("Parents(d) = %v, want 2 entries", got)
	}
}

func TestAddOperationErrors(t *testing.T) {
	g := New("bad")
	if _, err := g.AddOperation("zero", Mix, 0, 0); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := g.AddOperation("neg", Mix, 10, -1); err == nil {
		t.Error("negative inputs accepted")
	}
}

func TestAddDependencyErrors(t *testing.T) {
	g := New("bad")
	a := g.MustAddOperation("a", Mix, 10, 0)
	if err := g.AddDependency(a, a); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddDependency(a, 99); err == nil {
		t.Error("unknown child accepted")
	}
	if err := g.AddDependency(-1, a); err == nil {
		t.Error("unknown parent accepted")
	}
	// Duplicate edges are ignored, not errors.
	b := g.MustAddOperation("b", Mix, 10, 0)
	if err := g.AddDependency(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDependency(a, b); err != nil {
		t.Fatalf("duplicate edge: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("duplicate edge stored: %d edges", g.NumEdges())
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New("cycle")
	a := g.MustAddOperation("a", Mix, 1, 0)
	b := g.MustAddOperation("b", Mix, 1, 0)
	c := g.MustAddOperation("c", Mix, 1, 0)
	g.MustAddDependency(a, b)
	g.MustAddDependency(b, c)
	g.MustAddDependency(c, a)
	if _, err := g.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted cyclic graph")
	}
}

func TestLevels(t *testing.T) {
	g := diamond(t)
	lv, n, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("levels = %d, want 3", n)
	}
	want := map[OpID]int{0: 0, 1: 1, 2: 1, 3: 2}
	for id, l := range want {
		if lv[id] != l {
			t.Errorf("level(%d) = %d, want %d", id, lv[id], l)
		}
	}
}

func TestCriticalPath(t *testing.T) {
	g := diamond(t)
	// Longest chain: a(10) -> c(30) -> d(5) with 2 transports of 7.
	got, err := g.CriticalPathLength(7)
	if err != nil {
		t.Fatal(err)
	}
	if want := 10 + 7 + 30 + 7 + 5; got != want {
		t.Errorf("critical path = %d, want %d", got, want)
	}
	if g.TotalWork() != 65 {
		t.Errorf("TotalWork = %d, want 65", g.TotalWork())
	}
}

func TestClone(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.MustAddOperation("extra", Mix, 1, 0)
	if g.NumOps() == c.NumOps() {
		t.Error("clone shares operation storage with original")
	}
	if g.String() == "" || c.String() == "" {
		t.Error("String should be non-empty")
	}
}

// randomDAG builds a graph whose edges always point from lower to higher ID,
// hence acyclic by construction.
func randomDAG(seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := New("rand")
	n := 2 + r.Intn(20)
	for i := 0; i < n; i++ {
		g.MustAddOperation("", Mix, 1+r.Intn(60), r.Intn(3))
	}
	for c := 1; c < n; c++ {
		for p := 0; p < c; p++ {
			if r.Intn(4) == 0 {
				g.MustAddDependency(OpID(p), OpID(c))
			}
		}
	}
	return g
}

// TestTopoOrderProperty: every edge of a random DAG goes forward in the
// returned topological order, and the order is a permutation of all ops.
func TestTopoOrderProperty(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomDAG(seed)
		order, err := g.TopoOrder()
		if err != nil || len(order) != g.NumOps() {
			return false
		}
		pos := make(map[OpID]int, len(order))
		for i, id := range order {
			if _, dup := pos[id]; dup {
				return false
			}
			pos[id] = i
		}
		for _, e := range g.Edges() {
			if pos[e.Parent] >= pos[e.Child] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestLevelsMonotoneProperty: a child's level is strictly greater than every
// parent's level.
func TestLevelsMonotoneProperty(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomDAG(seed)
		lv, _, err := g.Levels()
		if err != nil {
			return false
		}
		for _, e := range g.Edges() {
			if lv[e.Child] <= lv[e.Parent] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestCriticalPathBoundsProperty: max single duration <= critical path <=
// total work + edges*transport.
func TestCriticalPathBoundsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomDAG(seed)
		cp, err := g.CriticalPathLength(5)
		if err != nil {
			return false
		}
		maxDur := 0
		for _, op := range g.Operations() {
			if op.Duration > maxDur {
				maxDur = op.Duration
			}
		}
		return cp >= maxDur && cp <= g.TotalWork()+5*g.NumEdges()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
