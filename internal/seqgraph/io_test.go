package seqgraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != g.Name || back.NumOps() != g.NumOps() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %v vs %v", back, g)
	}
	for i := 0; i < g.NumOps(); i++ {
		a, b := g.Op(OpID(i)), back.Op(OpID(i))
		if a.Name != b.Name || a.Kind != b.Kind || a.Duration != b.Duration || a.Inputs != b.Inputs {
			t.Errorf("op %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"dup op":         `{"name":"x","operations":[{"name":"a","duration":5},{"name":"a","duration":5}]}`,
		"bad kind":       `{"name":"x","operations":[{"name":"a","kind":"teleport","duration":5}]}`,
		"zero duration":  `{"name":"x","operations":[{"name":"a","duration":0}]}`,
		"unknown parent": `{"name":"x","operations":[{"name":"a","duration":5}],"edges":[["zz","a"]]}`,
		"unknown child":  `{"name":"x","operations":[{"name":"a","duration":5}],"edges":[["a","zz"]]}`,
		"empty":          `{"name":"x","operations":[]}`,
		"cycle": `{"name":"x","operations":[{"name":"a","duration":5},{"name":"b","duration":5}],
			"edges":[["a","b"],["b","a"]]}`,
	}
	for label, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted invalid input", label)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`digraph "diamond"`, `"a" -> "b"`, `"c" -> "d"`, "a_in0"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[OpKind]string{Mix: "mix", Dilute: "dilute", Heat: "heat", Detect: "detect"} {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
		back, err := kindFromString(want)
		if err != nil || back != k {
			t.Errorf("kindFromString(%q) = %v, %v", want, back, err)
		}
	}
	if _, err := kindFromString("warp"); err == nil {
		t.Error("unknown kind accepted")
	}
	if k, err := kindFromString(""); err != nil || k != Mix {
		t.Error("empty kind should default to mix")
	}
}
