package seqgraph

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the *.golden.json files under testdata from current Write output")

// graphsEqual compares two graphs structurally by operation name: the
// canonical writer orders operations by name, so a round trip preserves the
// graph but not necessarily the insertion order (and with it the dense IDs).
func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.Name != b.Name {
		t.Errorf("name %q != %q", a.Name, b.Name)
	}
	if a.NumOps() != b.NumOps() {
		t.Fatalf("op count %d != %d", a.NumOps(), b.NumOps())
	}
	type opAttrs struct {
		kind             OpKind
		duration, inputs int
	}
	attrs := func(g *Graph) map[string]opAttrs {
		out := make(map[string]opAttrs, g.NumOps())
		for _, op := range g.Operations() {
			out[op.Name] = opAttrs{op.Kind, op.Duration, op.Inputs}
		}
		return out
	}
	aOps, bOps := attrs(a), attrs(b)
	for name, op := range aOps {
		if other, ok := bOps[name]; !ok {
			t.Errorf("op %q missing from second graph", name)
		} else if op != other {
			t.Errorf("op %q: %+v != %+v", name, op, other)
		}
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge count %d != %d", a.NumEdges(), b.NumEdges())
	}
	edgeSet := func(g *Graph) map[[2]string]bool {
		out := make(map[[2]string]bool, g.NumEdges())
		for _, e := range g.Edges() {
			out[[2]string{g.Op(e.Parent).Name, g.Op(e.Child).Name}] = true
		}
		return out
	}
	bEdges := edgeSet(b)
	for e := range edgeSet(a) {
		if !bEdges[e] {
			t.Errorf("edge %v missing from second graph", e)
		}
	}
}

// TestGoldenRoundTrip checks every fixture under testdata: parsing, writing
// and re-parsing must reproduce the same graph, and the written form must
// match its golden file byte for byte. Canonical fixtures are their own
// golden (Write(Read(f)) == f); non-canonical ones (different field order,
// omitted defaults, compact whitespace) carry a separate <name>.golden.json.
func TestGoldenRoundTrip(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no fixtures under testdata")
	}
	for _, path := range fixtures {
		if strings.HasSuffix(path, ".golden.json") {
			continue
		}
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			g, err := Read(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			var written bytes.Buffer
			if err := Write(&written, g); err != nil {
				t.Fatalf("write: %v", err)
			}
			again, err := Read(bytes.NewReader(written.Bytes()))
			if err != nil {
				t.Fatalf("re-parse of written form: %v", err)
			}
			graphsEqual(t, g, again)

			goldenPath := strings.TrimSuffix(path, ".json") + ".golden.json"
			if *updateGolden && !bytes.Equal(written.Bytes(), raw) {
				// Non-canonical fixture (insertion order, field order,
				// whitespace): record the canonical form as its golden.
				if err := os.WriteFile(goldenPath, written.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := os.Stat(goldenPath); os.IsNotExist(err) {
				goldenPath = path // canonical fixture: golden is the fixture itself
			}
			golden, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(written.Bytes(), golden) {
				t.Errorf("written form diverges from %s:\n--- got ---\n%s\n--- want ---\n%s",
					goldenPath, written.Bytes(), golden)
			}

			// Writing the re-parsed graph must be a fixed point.
			var twice bytes.Buffer
			if err := Write(&twice, again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(written.Bytes(), twice.Bytes()) {
				t.Error("Write is not a fixed point after one round trip")
			}
		})
	}
}
