package seqgraph

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the *.golden.json files under testdata from current Write output")

// graphsEqual compares two graphs structurally: name, operations in ID order
// (name, kind, duration, inputs) and edges in insertion order.
func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.Name != b.Name {
		t.Errorf("name %q != %q", a.Name, b.Name)
	}
	if a.NumOps() != b.NumOps() {
		t.Fatalf("op count %d != %d", a.NumOps(), b.NumOps())
	}
	for _, op := range a.Operations() {
		other := b.Op(op.ID)
		if op != other {
			t.Errorf("op %d: %+v != %+v", op.ID, op, other)
		}
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge count %d != %d", a.NumEdges(), b.NumEdges())
	}
	for i, e := range a.Edges() {
		if b.Edges()[i] != e {
			t.Errorf("edge %d: %v != %v", i, e, b.Edges()[i])
		}
	}
}

// TestGoldenRoundTrip checks every fixture under testdata: parsing, writing
// and re-parsing must reproduce the same graph, and the written form must
// match its golden file byte for byte. Canonical fixtures are their own
// golden (Write(Read(f)) == f); non-canonical ones (different field order,
// omitted defaults, compact whitespace) carry a separate <name>.golden.json.
func TestGoldenRoundTrip(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no fixtures under testdata")
	}
	for _, path := range fixtures {
		if strings.HasSuffix(path, ".golden.json") {
			continue
		}
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			g, err := Read(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			var written bytes.Buffer
			if err := Write(&written, g); err != nil {
				t.Fatalf("write: %v", err)
			}
			again, err := Read(bytes.NewReader(written.Bytes()))
			if err != nil {
				t.Fatalf("re-parse of written form: %v", err)
			}
			graphsEqual(t, g, again)

			goldenPath := strings.TrimSuffix(path, ".json") + ".golden.json"
			if _, err := os.Stat(goldenPath); os.IsNotExist(err) {
				goldenPath = path // canonical fixture: golden is the fixture itself
			}
			if *updateGolden && goldenPath != path {
				if err := os.WriteFile(goldenPath, written.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(written.Bytes(), golden) {
				t.Errorf("written form diverges from %s:\n--- got ---\n%s\n--- want ---\n%s",
					goldenPath, written.Bytes(), golden)
			}

			// Writing the re-parsed graph must be a fixed point.
			var twice bytes.Buffer
			if err := Write(&twice, again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(written.Bytes(), twice.Bytes()) {
				t.Error("Write is not a fixed point after one round trip")
			}
		})
	}
}
