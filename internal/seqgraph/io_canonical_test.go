package seqgraph

import (
	"bytes"
	"testing"
)

// shuffledPair builds the same diamond assay twice with different op- and
// edge-insertion orders.
func shuffledPair(t *testing.T) (*Graph, *Graph) {
	t.Helper()
	fwd := New("canon")
	fa := fwd.MustAddOperation("a", Mix, 30, 2)
	fb := fwd.MustAddOperation("b", Dilute, 20, 1)
	fc := fwd.MustAddOperation("c", Heat, 40, 0)
	fd := fwd.MustAddOperation("d", Detect, 10, 0)
	fwd.MustAddDependency(fa, fb)
	fwd.MustAddDependency(fa, fc)
	fwd.MustAddDependency(fb, fd)
	fwd.MustAddDependency(fc, fd)

	rev := New("canon")
	rd := rev.MustAddOperation("d", Detect, 10, 0)
	rc := rev.MustAddOperation("c", Heat, 40, 0)
	rb := rev.MustAddOperation("b", Dilute, 20, 1)
	ra := rev.MustAddOperation("a", Mix, 30, 2)
	rev.MustAddDependency(rc, rd)
	rev.MustAddDependency(rb, rd)
	rev.MustAddDependency(ra, rc)
	rev.MustAddDependency(ra, rb)
	return fwd, rev
}

// TestCanonicalWriteOrderIndependent is the cache-key property: the written
// JSON of a graph must not depend on the order its operations and edges were
// inserted.
func TestCanonicalWriteOrderIndependent(t *testing.T) {
	fwd, rev := shuffledPair(t)
	var a, b bytes.Buffer
	if err := Write(&a, fwd); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("canonical form depends on insertion order:\n--- fwd ---\n%s\n--- rev ---\n%s", a.Bytes(), b.Bytes())
	}

	// Round trip through the canonical form preserves the graph.
	back, err := Read(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, fwd, back)

	// And writing the round-tripped graph is a fixed point.
	var again bytes.Buffer
	if err := Write(&again, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), again.Bytes()) {
		t.Error("canonical write is not a fixed point")
	}
}

func TestFingerprintStability(t *testing.T) {
	fwd, rev := shuffledPair(t)
	if Fingerprint(fwd) != Fingerprint(rev) {
		t.Errorf("fingerprint depends on insertion order: %s vs %s", Fingerprint(fwd), Fingerprint(rev))
	}

	// Any structural change must move the hash.
	mutations := map[string]func() *Graph{
		"renamed op": func() *Graph {
			g := fwd.Clone()
			g.ops[0].Name = "a2"
			return g
		},
		"changed duration": func() *Graph {
			g := fwd.Clone()
			g.ops[1].Duration++
			return g
		},
		"changed kind": func() *Graph {
			g := fwd.Clone()
			g.ops[2].Kind = Mix
			return g
		},
		"changed inputs": func() *Graph {
			g := fwd.Clone()
			g.ops[0].Inputs++
			return g
		},
		"extra op": func() *Graph {
			g := fwd.Clone()
			g.MustAddOperation("e", Mix, 5, 0)
			return g
		},
		"extra edge": func() *Graph {
			g := fwd.Clone()
			g.MustAddDependency(0, 3)
			return g
		},
		"renamed assay": func() *Graph {
			g := fwd.Clone()
			g.Name = "other"
			return g
		},
	}
	base := Fingerprint(fwd)
	for label, mutate := range mutations {
		if Fingerprint(mutate()) == base {
			t.Errorf("%s: fingerprint unchanged", label)
		}
	}
}

// TestFingerprintDuplicateNames exercises the ID-based fallback: duplicate op
// names are unserializable by name, but two distinct graphs must still never
// share a fingerprint.
func TestFingerprintDuplicateNames(t *testing.T) {
	build := func(d1, d2 int) *Graph {
		g := New("dup")
		a := g.MustAddOperation("x", Mix, d1, 1)
		b := g.MustAddOperation("x", Mix, d2, 1)
		g.MustAddDependency(a, b)
		return g
	}
	if Fingerprint(build(10, 20)) == Fingerprint(build(10, 30)) {
		t.Error("distinct duplicate-name graphs share a fingerprint")
	}
	if Fingerprint(build(10, 20)) != Fingerprint(build(10, 20)) {
		t.Error("identical duplicate-name graphs disagree")
	}
}
