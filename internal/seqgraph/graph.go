// Package seqgraph models bioassay protocols as sequencing graphs: directed
// acyclic graphs whose nodes are fluidic operations (mixing, dilution,
// detection, ...) and whose edges carry intermediate fluid products from a
// parent operation to the child operation that consumes them.
//
// This is the input representation of the whole synthesis flow in the paper
// ("Transport or Store?", DAC 2017, Section 2): the sequencing graph defines
// operation dependencies, and different schedules of it yield different
// storage and transportation demand.
package seqgraph

import (
	"fmt"
	"sort"
)

// OpKind classifies an operation node. The paper's benchmarks are built from
// mixing operations fed by external inputs; other kinds appear in assay
// libraries and are carried through scheduling unchanged.
type OpKind int

const (
	// Mix merges two (or more) fluids inside a mixer device.
	Mix OpKind = iota
	// Dilute mixes a sample with buffer to reduce concentration.
	Dilute
	// Heat incubates a fluid at a device with a heater.
	Heat
	// Detect reads out a fluid at a detection site.
	Detect
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case Mix:
		return "mix"
	case Dilute:
		return "dilute"
	case Heat:
		return "heat"
	case Detect:
		return "detect"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// OpID identifies an operation inside one Graph. IDs are dense indices
// assigned in insertion order and usable as slice indices.
type OpID int

// Operation is one node of the sequencing graph.
type Operation struct {
	// ID is the dense node index.
	ID OpID
	// Name is a human-readable label (e.g. "o3").
	Name string
	// Kind is the operation class.
	Kind OpKind
	// Duration is the execution time of the operation in seconds on a
	// compatible device (u_i in the paper's Table 1).
	Duration int
	// Inputs counts external reagent/sample inputs feeding this operation in
	// addition to products of parent operations (the i1..i8 leaves of the
	// paper's Fig. 2 PCR graph).
	Inputs int
}

// Edge is a dependency (parent, child): the fluid produced by Parent is an
// input of Child. It corresponds to (o_i, o_j) ∈ E in the paper.
type Edge struct {
	Parent OpID
	Child  OpID
}

// Graph is a sequencing graph: a DAG of operations. The zero value is an
// empty graph ready for use.
type Graph struct {
	// Name labels the assay (e.g. "PCR").
	Name string

	ops   []Operation
	edges []Edge

	children map[OpID][]OpID
	parents  map[OpID][]OpID
}

// New returns an empty sequencing graph with the given assay name.
func New(name string) *Graph {
	return &Graph{
		Name:     name,
		children: make(map[OpID][]OpID),
		parents:  make(map[OpID][]OpID),
	}
}

// AddOperation appends an operation node and returns its ID. Duration must
// be positive; external input counts must be non-negative.
func (g *Graph) AddOperation(name string, kind OpKind, duration, inputs int) (OpID, error) {
	if duration <= 0 {
		return -1, fmt.Errorf("seqgraph: operation %q must have positive duration, got %d", name, duration)
	}
	if inputs < 0 {
		return -1, fmt.Errorf("seqgraph: operation %q has negative input count %d", name, inputs)
	}
	id := OpID(len(g.ops))
	g.ops = append(g.ops, Operation{ID: id, Name: name, Kind: kind, Duration: duration, Inputs: inputs})
	return id, nil
}

// MustAddOperation is AddOperation for programmatic graph construction where
// the arguments are compile-time constants; it panics on error.
func (g *Graph) MustAddOperation(name string, kind OpKind, duration, inputs int) OpID {
	id, err := g.AddOperation(name, kind, duration, inputs)
	if err != nil {
		panic(err)
	}
	return id
}

// AddDependency records that child consumes the product of parent.
// Self-loops and unknown IDs are rejected; duplicate edges are ignored.
func (g *Graph) AddDependency(parent, child OpID) error {
	if !g.valid(parent) || !g.valid(child) {
		return fmt.Errorf("seqgraph: dependency (%d -> %d) references unknown operation", parent, child)
	}
	if parent == child {
		return fmt.Errorf("seqgraph: operation %d cannot depend on itself", parent)
	}
	for _, c := range g.children[parent] {
		if c == child {
			return nil
		}
	}
	g.edges = append(g.edges, Edge{Parent: parent, Child: child})
	g.children[parent] = append(g.children[parent], child)
	g.parents[child] = append(g.parents[child], parent)
	return nil
}

// MustAddDependency panics on error; for literal graph construction.
func (g *Graph) MustAddDependency(parent, child OpID) {
	if err := g.AddDependency(parent, child); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(id OpID) bool { return id >= 0 && int(id) < len(g.ops) }

// NumOps returns |O|, the number of operations.
func (g *Graph) NumOps() int { return len(g.ops) }

// NumEdges returns |E|, the number of dependency edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Op returns the operation with the given ID.
func (g *Graph) Op(id OpID) Operation { return g.ops[id] }

// Operations returns all operations in ID order. Callers must not mutate the
// returned slice.
func (g *Graph) Operations() []Operation { return g.ops }

// Edges returns all dependency edges in insertion order. Callers must not
// mutate the returned slice.
func (g *Graph) Edges() []Edge { return g.edges }

// Children returns the operations that consume id's product, in insertion
// order.
func (g *Graph) Children(id OpID) []OpID { return g.children[id] }

// Parents returns the operations whose products id consumes.
func (g *Graph) Parents(id OpID) []OpID { return g.parents[id] }

// Roots returns all operations without parents, in ID order.
func (g *Graph) Roots() []OpID {
	var out []OpID
	for _, op := range g.ops {
		if len(g.parents[op.ID]) == 0 {
			out = append(out, op.ID)
		}
	}
	return out
}

// Sinks returns all operations without children, in ID order.
func (g *Graph) Sinks() []OpID {
	var out []OpID
	for _, op := range g.ops {
		if len(g.children[op.ID]) == 0 {
			out = append(out, op.ID)
		}
	}
	return out
}

// Validate checks structural invariants: at least one operation, acyclicity,
// and positive durations. It returns nil for a well-formed assay.
func (g *Graph) Validate() error {
	if len(g.ops) == 0 {
		return fmt.Errorf("seqgraph: assay %q has no operations", g.Name)
	}
	for _, op := range g.ops {
		if op.Duration <= 0 {
			return fmt.Errorf("seqgraph: operation %s has non-positive duration", op.Name)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological order of the operations (Kahn's algorithm,
// deterministic: ready nodes are processed in ascending ID order). It returns
// an error if the graph contains a cycle.
func (g *Graph) TopoOrder() ([]OpID, error) {
	indeg := make([]int, len(g.ops))
	for _, e := range g.edges {
		indeg[e.Child]++
	}
	var ready []OpID
	for id := range g.ops {
		if indeg[id] == 0 {
			ready = append(ready, OpID(id))
		}
	}
	var order []OpID
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, c := range g.children[n] {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if len(order) != len(g.ops) {
		return nil, fmt.Errorf("seqgraph: assay %q contains a dependency cycle", g.Name)
	}
	return order, nil
}

// Levels assigns each operation its ASAP level: roots are level 0 and every
// other operation is 1 + max(level of parents). The second return value is
// the number of levels.
func (g *Graph) Levels() (map[OpID]int, int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	lv := make(map[OpID]int, len(order))
	maxLv := 0
	for _, id := range order {
		l := 0
		for _, p := range g.parents[id] {
			if lv[p]+1 > l {
				l = lv[p] + 1
			}
		}
		lv[id] = l
		if l > maxLv {
			maxLv = l
		}
	}
	return lv, maxLv + 1, nil
}

// CriticalPathLength returns the length (sum of durations) of the longest
// dependency chain, plus transport seconds per edge traversed. It is a lower
// bound on any schedule's makespan with unlimited devices.
func (g *Graph) CriticalPathLength(transport int) (int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	finish := make(map[OpID]int, len(order))
	best := 0
	for _, id := range order {
		start := 0
		for _, p := range g.parents[id] {
			if t := finish[p] + transport; t > start {
				start = t
			}
		}
		finish[id] = start + g.ops[id].Duration
		if finish[id] > best {
			best = finish[id]
		}
	}
	return best, nil
}

// TotalWork returns the sum of all operation durations: a lower bound on
// makespan × devices.
func (g *Graph) TotalWork() int {
	w := 0
	for _, op := range g.ops {
		w += op.Duration
	}
	return w
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New(g.Name)
	out.ops = append([]Operation(nil), g.ops...)
	out.edges = append([]Edge(nil), g.edges...)
	for k, v := range g.children {
		out.children[k] = append([]OpID(nil), v...)
	}
	for k, v := range g.parents {
		out.parents[k] = append([]OpID(nil), v...)
	}
	return out
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("%s: %d ops, %d edges", g.Name, len(g.ops), len(g.edges))
}
