package sched

import (
	"sort"
	"testing"
)

// moFixture runs mustOverlapPairs on parallel window/duration arrays with an
// optional adjacency set (pairs i<j) and returns the detected pairs sorted.
func moFixture(tsLo, tsHi, dur []float64, adj [][2]int) [][2]int {
	norm := func(i, j int) [2]int {
		if i > j {
			return [2]int{j, i}
		}
		return [2]int{i, j}
	}
	adjacent := make(map[[2]int]bool, len(adj))
	for _, e := range adj {
		adjacent[norm(e[0], e[1])] = true
	}
	pairs := mustOverlapPairs(len(dur), tsLo, tsHi, dur, func(i, j int) bool {
		return adjacent[norm(i, j)]
	})
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	return pairs
}

func pairsEqual(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMustOverlapPairs pins the box-based must-overlap test on hand-built
// interval fixtures: op i surely runs within [tsLo_i + dur_i, tsHi_i + dur_i]
// ending no earlier than tsLo_i + dur_i and starting no later than tsHi_i, so
// two ops must overlap at every feasible point iff each one's earliest end
// lies strictly past the other's latest start.
func TestMustOverlapPairs(t *testing.T) {
	cases := []struct {
		name string
		tsLo []float64
		tsHi []float64
		dur  []float64
		adj  [][2]int
		want [][2]int
	}{
		{
			// Two tight windows forced on top of each other.
			name: "forced-pair",
			tsLo: []float64{0, 2},
			tsHi: []float64{0, 5},
			dur:  []float64{10, 10},
			want: [][2]int{{0, 1}},
		},
		{
			// Disjoint windows: op 1 may start long after op 0 must end.
			name: "disjoint-windows",
			tsLo: []float64{0, 20},
			tsHi: []float64{0, 30},
			dur:  []float64{10, 10},
			want: nil,
		},
		{
			// Three ops pinned to near-identical windows: every pair must
			// overlap — the clique fixture.
			name: "clique-of-three",
			tsLo: []float64{0, 1, 2},
			tsHi: []float64{2, 3, 4},
			dur:  []float64{20, 20, 20},
			want: [][2]int{{0, 1}, {0, 2}, {1, 2}},
		},
		{
			// A chain with slack: each window starts where the previous one
			// may still be running, but none is forced to — wide windows never
			// must-overlap.
			name: "chain-with-slack",
			tsLo: []float64{0, 0, 0},
			tsHi: []float64{100, 100, 100},
			dur:  []float64{10, 10, 10},
			want: nil,
		},
		{
			// Graph-adjacent pairs are excluded even when their boxes force an
			// overlap: the precedence rows already order them.
			name: "adjacency-excluded",
			tsLo: []float64{0, 2, 2},
			tsHi: []float64{0, 5, 5},
			dur:  []float64{10, 10, 10},
			adj:  [][2]int{{0, 1}},
			want: [][2]int{{0, 2}, {1, 2}},
		},
		{
			// Zero-duration ops (degenerate pins) never force an overlap.
			name: "zero-duration-excluded",
			tsLo: []float64{0, 2},
			tsHi: []float64{0, 5},
			dur:  []float64{0, 10},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := moFixture(tc.tsLo, tc.tsHi, tc.dur, tc.adj)
			if !pairsEqual(got, tc.want) {
				t.Errorf("mustOverlapPairs = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestMustOverlapBoundary pins the strict-inequality boundary: an earliest
// end exactly equal to the other op's latest start allows the back-to-back
// schedule, so the pair is NOT forced to overlap.
func TestMustOverlapBoundary(t *testing.T) {
	// ee_0 = 0+10 = 10 == ls_1 = 10: op 1 can start the instant op 0 ends.
	got := moFixture(
		[]float64{0, 8},
		[]float64{0, 10},
		[]float64{10, 10},
		nil,
	)
	if len(got) != 0 {
		t.Errorf("boundary pair reported as must-overlap: %v", got)
	}
	// Shrinking op 1's latest start below 10 forces the overlap.
	got = moFixture(
		[]float64{0, 8},
		[]float64{0, 9.5},
		[]float64{10, 10},
		nil,
	)
	if !pairsEqual(got, [][2]int{{0, 1}}) {
		t.Errorf("forced pair missed at the boundary: %v", got)
	}
}
