package sched

import (
	"sort"

	"flowsyn/internal/seqgraph"
)

// Compact pushes every operation as late as possible without changing the
// makespan, the per-device operation order, or any precedence slack that a
// consumer depends on. Delaying a producer shrinks the storage lifetime
// u_{i,j} = t^s_j − t^e_i of each of its products — this post-pass is the
// heuristic counterpart of the β·Σu term in the paper's objective (6), and
// it directly shortens channel-cache occupancy, freeing segments for
// transport.
//
// Bounds honoured when delaying an operation:
//
//   - every transported edge (op, c) keeps t^s_c ≥ t^e_op + offset + u_c;
//   - every direct-pass edge keeps t^s_c ≥ t^e_op;
//   - the next operation on the same device keeps its move-out gap
//     (t^s_next ≥ t^e_op + ⌈u_c/2⌉, or ≥ t^e_op for a direct pass);
//   - sink operations do not move (the makespan is preserved).
func Compact(s *Schedule) {
	g := s.Graph
	outLen := (s.Transport + 1) / 2

	// Device successor of every op.
	successor := make([]seqgraph.OpID, g.NumOps())
	for i := range successor {
		successor[i] = -1
	}
	for _, list := range s.byDevice() {
		for i := 0; i+1 < len(list); i++ {
			successor[list[i].Op] = list[i+1].Op
		}
	}

	transported := func(e seqgraph.Edge) bool {
		if s.DepartOffsets != nil {
			_, ok := s.DepartOffsets[e]
			return ok
		}
		return s.Assignments[e.Parent].Device != s.Assignments[e.Child].Device
	}

	// Process in descending end time so every consumer and successor is
	// final before its producers move.
	order := make([]seqgraph.OpID, g.NumOps())
	for i := range order {
		order[i] = seqgraph.OpID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := s.Assignments[order[a]].End, s.Assignments[order[b]].End
		if ea != eb {
			return ea > eb
		}
		return order[a] > order[b]
	})

	const inf = 1 << 30
	for _, op := range order {
		a := &s.Assignments[op]
		bound := inf
		isSink := len(g.Children(op)) == 0
		if isSink {
			continue
		}
		for _, c := range g.Children(op) {
			e := seqgraph.Edge{Parent: op, Child: c}
			ca := s.Assignments[c]
			if transported(e) {
				if v := ca.Start - s.Transport - s.DepartOffset(e); v < bound {
					bound = v
				}
			} else if ca.Start < bound {
				bound = ca.Start
			}
		}
		if next := successor[op]; next >= 0 {
			gap := outLen
			// A direct pass to the device successor needs no move-out gap.
			for _, c := range g.Children(op) {
				if c == next && !transported(seqgraph.Edge{Parent: op, Child: c}) {
					gap = 0
					break
				}
			}
			if v := s.Assignments[next].Start - gap; v < bound {
				bound = v
			}
		}
		if bound > a.End && bound < inf {
			dur := a.End - a.Start
			a.End = bound
			a.Start = bound - dur
		}
	}
	s.computeMakespan()
}
