package sched

import (
	"sort"

	"flowsyn/internal/seqgraph"
)

// StorageModel abstracts where intermediate fluids wait between producer and
// consumer. The scheduling engines consult it while placing operations, so a
// schedule is *optimized* under the chosen storage policy instead of being
// degraded after the fact:
//
//   - distributed channel storage (the paper's method): a nil model, or one
//     with unlimited channel slots and no serialized port — today's behavior;
//   - a dedicated storage unit (the paper's Fig. 1(c) baseline, Tseng & Li's
//     "Storage and Caching" companion): zero channel slots, every stored
//     fluid pays a full-u_c store and a full-u_c fetch through one port;
//   - a hybrid cache: a bounded set of channel segments in front of the unit,
//     overflowing (or evicting) into the unit under a pluggable policy.
//
// The concrete strategies live in internal/storage; sched only needs this
// minimal view (keeping the dependency pointing storage -> sched).
type StorageModel interface {
	// Name identifies the strategy ("distributed", "dedicated", "hybrid").
	Name() string
	// Serialized reports whether stored fluids funnel through the dedicated
	// unit's single port (dedicated and hybrid strategies).
	Serialized() bool
	// ChannelSlots returns how many channel segments may cache fluids
	// simultaneously: negative for unlimited (distributed), zero for none
	// (dedicated unit only), positive for the hybrid cache bound.
	ChannelSlots() int
	// EvictionName names the hybrid cache eviction policy ("lru" or
	// "earliest-next-fetch"); irrelevant for the other strategies.
	EvictionName() string
}

// UnitWindow records the port grants of one edge stored in the dedicated
// unit: the store transport occupies the port during
// [StoreStart, StoreStart+u_c) and the fetch during
// [FetchStart, FetchStart+u_c), with FetchStart >= StoreStart+u_c. The fluid
// resides in a unit cell between the two transports.
type UnitWindow struct {
	StoreStart, FetchStart int
}

// modelUsesUnit reports whether the model routes any storage through the
// dedicated unit (i.e. the scheduler must grant port windows).
func modelUsesUnit(m StorageModel) bool {
	return m != nil && m.Serialized()
}

// modelIsDistributed reports whether the model behaves exactly like the
// paper's distributed channel storage (the bit-identical fast path).
func modelIsDistributed(m StorageModel) bool {
	return m == nil || (!m.Serialized() && m.ChannelSlots() < 0)
}

// portTimeline books exclusive windows on the dedicated unit's single port.
// Windows are granted earliest-fit in booking order; ties between a store and
// a fetch requested at the same instant therefore serialize deterministically
// in the order the scheduler processes them.
type portTimeline struct {
	windows [][2]int
}

// grant books the earliest free window of the given length starting at or
// after t and returns its start. The result is independent of the internal
// window order (the scan restarts until no conflict remains).
func (l *portTimeline) grant(t, length int) int {
	if length <= 0 {
		return t
	}
	for {
		conflict := false
		for _, w := range l.windows {
			if t < w[1] && w[0] < t+length {
				conflict = true
				if w[1] > t {
					t = w[1]
				}
			}
		}
		if !conflict {
			l.windows = append(l.windows, [2]int{t, t + length})
			return t
		}
	}
}

// peekPair returns the store/fetch grants a stored edge departing at t would
// receive, without booking them. fetchFloor is the earliest instant the fetch
// may begin (the chamber-readiness bound; see storageState.fetchStartFloor).
func (l *portTimeline) peekPair(t, length, fetchFloor int) (gs, gf int) {
	scratch := portTimeline{windows: append([][2]int(nil), l.windows...)}
	gs = scratch.grant(t, length)
	gf = scratch.grant(max(gs+length, fetchFloor), length)
	return gs, gf
}

// channelResident is one committed fluid cached in a channel segment under
// the hybrid strategy. Its conservative residency window [depart, fetchStart)
// is a superset of the Tasks()-derived caching window, so capacity accounting
// here implies capacity feasibility of the derived workload. hint preserves
// the consumer-side readiness bound from planning time, so a later demotion
// into the unit keeps the chamber move-in legal.
type channelResident struct {
	edge       seqgraph.Edge
	depart     int
	fetchStart int
	hint       int
}

// storageState tracks the storage side of a schedule under construction: the
// unit's port timeline, the granted unit windows, the committed channel-cache
// residents and the total port queueing delay. A nil/distributed model keeps
// the state inert and the engines on their historical code path.
type storageState struct {
	model      StorageModel
	uc         int
	port       portTimeline
	windows    map[seqgraph.Edge]UnitWindow
	residents  []channelResident
	queueDelay int
}

func newStorageState(m StorageModel, transport int) *storageState {
	st := &storageState{model: m, uc: transport}
	if !modelIsDistributed(m) {
		st.windows = make(map[seqgraph.Edge]UnitWindow)
	}
	return st
}

// active reports whether storage decisions deviate from distributed
// channel storage.
func (st *storageState) active() bool { return st != nil && !modelIsDistributed(st.model) }

// seedUnit installs an already-granted unit window (a pinned recovery
// prefix), reserving its port time verbatim.
func (st *storageState) seedUnit(e seqgraph.Edge, w UnitWindow) {
	st.windows[e] = w
	st.port.windows = append(st.port.windows, [2]int{w.StoreStart, w.StoreStart + st.uc})
	st.port.windows = append(st.port.windows, [2]int{w.FetchStart, w.FetchStart + st.uc})
}

// channelFits reports whether adding a resident with window [from, to) keeps
// the committed channel occupancy within the model's slot bound at every
// instant.
func (st *storageState) channelFits(from, to int) bool {
	slots := st.model.ChannelSlots()
	if slots < 0 {
		return true
	}
	if slots == 0 {
		return false
	}
	// Peak concurrent residents over [from, to), plus the newcomer.
	type event struct{ t, d int }
	var evs []event
	for _, r := range st.residents {
		lo, hi := r.depart, r.fetchStart
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if lo < hi {
			evs = append(evs, event{lo, +1}, event{hi, -1})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].d < evs[j].d
	})
	cur := 0
	for _, e := range evs {
		cur += e.d
		if cur+1 > slots {
			return false
		}
	}
	return true
}

// demoteVictim tries to free a channel slot over [from, to) by moving one
// committed resident into the dedicated unit, chosen by the model's eviction
// policy: "lru" demotes the oldest resident (earliest departure),
// "earliest-next-fetch" the resident whose consumer fetches soonest (it
// would leave the cache first anyway, so its unit stay is shortest). A
// demotion is legal only when the port can serve the victim's full store and
// fetch before its already-committed consumer starts; illegal candidates are
// skipped in policy order. Reports whether a resident was demoted.
func (st *storageState) demoteVictim(from, to int) bool {
	var cands []int
	for i, r := range st.residents {
		if r.depart < to && from < r.fetchStart {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return false
	}
	lru := st.model.EvictionName() != "earliest-next-fetch"
	sort.Slice(cands, func(a, b int) bool {
		ra, rb := st.residents[cands[a]], st.residents[cands[b]]
		if lru {
			if ra.depart != rb.depart {
				return ra.depart < rb.depart
			}
		} else if ra.fetchStart != rb.fetchStart {
			return ra.fetchStart < rb.fetchStart
		}
		if ra.edge.Parent != rb.edge.Parent {
			return ra.edge.Parent < rb.edge.Parent
		}
		return ra.edge.Child < rb.edge.Child
	})
	for _, i := range cands {
		r := st.residents[i]
		gs, gf := st.port.peekPair(r.depart, st.uc, st.fetchStartFloor(r.depart, r.hint))
		if gf+st.uc > r.fetchStart {
			continue // cannot re-serve this fluid through the port in time
		}
		gs = st.port.grant(r.depart, st.uc)
		floor := st.fetchStartFloor(gs, r.hint)
		gf = st.port.grant(floor, st.uc)
		st.windows[r.edge] = UnitWindow{StoreStart: gs, FetchStart: gf}
		st.queueDelay += (gs - r.depart) + (gf - floor)
		st.residents = append(st.residents[:i], st.residents[i+1:]...)
		return true
	}
	return false
}

// parentPlan is the storage decision for one non-direct parent of the
// operation being placed. hint is the consumer-side readiness estimate the
// plan was made against (device free, flush applied).
type parentPlan struct {
	edge    seqgraph.Edge
	depart  int
	unit    bool
	arrival int
	hint    int
}

// fetchMoveIn is the chamber move-in length: the trailing portion of a fetch
// transport during which the fluid squeezes into the consumer chamber — the
// same per-fetch cost the distributed model charges at the consumer
// (fetchLen = u_c - outLen).
func (st *storageState) fetchMoveIn() int { return st.uc - (st.uc+1)/2 }

// fetchStartFloor returns the earliest instant a unit fetch may begin so its
// chamber move-in does not overlap the consumer chamber's previous occupancy:
// the fetch must not complete before hint (chamber ready) plus the move-in
// length. Without this floor a fetch could deliver its fluid into a chamber
// still running the previous reaction — and the dedicated strategy would
// dodge the move-in cost the distributed model pays per fetch.
func (st *storageState) fetchStartFloor(gs, hint int) int {
	return max(gs+st.uc, hint+st.fetchMoveIn()-st.uc)
}

// planParent decides how the fluid of edge e (departing at depart) reaches
// its consumer under the model, without mutating state: through a channel
// (arrival depart+u_c, one fetch slot at the consumer) or through the unit's
// port (arrival = fetch grant + u_c). startHint bounds the capacity window
// for the hybrid admission test.
func (st *storageState) planParent(e seqgraph.Edge, depart, startHint int) parentPlan {
	p := parentPlan{edge: e, depart: depart, hint: startHint}
	if !st.active() {
		p.arrival = depart + st.uc
		return p
	}
	to := startHint
	if to < depart+st.uc {
		to = depart + st.uc
	}
	if !st.model.Serialized() || st.channelFits(depart, to) {
		p.arrival = depart + st.uc
		return p
	}
	p.unit = true
	_, gf := st.port.peekPair(depart, st.uc, st.fetchStartFloor(depart, startHint))
	p.arrival = gf + st.uc
	return p
}

// commitParent finalizes one parent plan: unit plans book their port windows
// (re-granted now, so interleaved bookings stay consistent) and channel plans
// under a bounded cache first retry admission — evicting a resident into the
// unit when the policy finds a legal victim — before overflowing to the unit
// themselves. It returns the (possibly updated) plan; channel residents are
// registered later via commitResidents once the consumer's start is final.
func (st *storageState) commitParent(p parentPlan, startHint int) parentPlan {
	if !st.active() {
		return p
	}
	to := startHint
	if to < p.depart+st.uc {
		to = p.depart + st.uc
	}
	if !p.unit && st.model.Serialized() && st.model.ChannelSlots() >= 0 {
		for !st.channelFits(p.depart, to) {
			if !st.demoteVictim(p.depart, to) {
				p.unit = true
				break
			}
		}
	}
	if p.unit {
		gs := st.port.grant(p.depart, st.uc)
		floor := st.fetchStartFloor(gs, p.hint)
		gf := st.port.grant(floor, st.uc)
		st.windows[p.edge] = UnitWindow{StoreStart: gs, FetchStart: gf}
		st.queueDelay += (gs - p.depart) + (gf - floor)
		p.arrival = gf + st.uc
		return p
	}
	p.arrival = p.depart + st.uc
	return p
}

// pendingFits reports whether plan i, as a channel resident with window
// [depart, start), keeps the slot bound together with both the committed
// residents and the op's *other* still-channel plans — siblings occupy slots
// simultaneously, so checking each against the committed set alone would let
// an op with several stored parents overshoot the cache.
func (st *storageState) pendingFits(plans []parentPlan, i, start int) bool {
	saved := len(st.residents)
	for j := range plans {
		if j == i || plans[j].unit {
			continue
		}
		st.residents = append(st.residents, channelResident{
			edge: plans[j].edge, depart: plans[j].depart, fetchStart: start, hint: plans[j].hint,
		})
	}
	ok := st.channelFits(plans[i].depart, start)
	st.residents = st.residents[:saved]
	return ok
}

// commitResidents registers the committed channel-cached edges of one placed
// operation with their final residency windows, flipping any edge whose
// enlarged window no longer fits to the unit. It returns the possibly-raised
// consumer start (a flipped edge arrives at fetch-grant + u_c, which may land
// after the provisional start).
func (st *storageState) commitResidents(plans []parentPlan, start int) int {
	if !st.active() {
		return start
	}
	for again := true; again; {
		again = false
		for i := range plans {
			p := &plans[i]
			if p.unit || st.pendingFits(plans, i, start) {
				continue
			}
			if st.demoteVictim(p.depart, start) {
				again = true
				continue
			}
			gs := st.port.grant(p.depart, st.uc)
			floor := st.fetchStartFloor(gs, p.hint)
			gf := st.port.grant(floor, st.uc)
			st.windows[p.edge] = UnitWindow{StoreStart: gs, FetchStart: gf}
			st.queueDelay += (gs - p.depart) + (gf - floor)
			p.unit = true
			if gf+st.uc > start {
				start = gf + st.uc
			}
			again = true
		}
	}
	for _, p := range plans {
		if !p.unit {
			st.residents = append(st.residents, channelResident{edge: p.edge, depart: p.depart, fetchStart: start, hint: p.hint})
		}
	}
	return start
}

// install attaches the granted unit windows and accumulated queue delay to a
// finished schedule.
func (st *storageState) install(s *Schedule) {
	if !st.active() {
		return
	}
	if len(st.windows) > 0 {
		s.UnitWindows = st.windows
	}
	s.UnitQueueDelay = st.queueDelay
}
