package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flowsyn/internal/assay"
	"flowsyn/internal/seqgraph"
)

// manual builds a schedule by hand for task-extraction tests: op order on a
// single device, back-to-back except explicit gaps.
func manualPCR(t *testing.T, order []string, uc int) *Schedule {
	t.Helper()
	g := assay.PCR()
	byName := make(map[string]seqgraph.OpID)
	for _, op := range g.Operations() {
		byName[op.Name] = op.ID
	}
	s := &Schedule{Graph: g, Devices: 1, Transport: uc, Assignments: make([]Assignment, g.NumOps())}
	now := 0
	outLen := (uc + 1) / 2
	fetchLen := uc - outLen
	var last seqgraph.OpID = -1
	for _, name := range order {
		id := byName[name]
		start := now
		direct := false
		for _, p := range g.Parents(id) {
			if p == last {
				direct = true
			}
		}
		if last >= 0 && !direct {
			start += outLen
		}
		// Every parent except a direct-pass `last` needs a fetch slot.
		fetches := 0
		for _, p := range g.Parents(id) {
			if !(direct && p == last) {
				fetches++
			}
		}
		start += fetches * fetchLen
		for _, p := range g.Parents(id) {
			arr := s.Assignments[p].End
			if !(direct && p == last) {
				arr += uc
			}
			if arr > start {
				start = arr
			}
		}
		dur := g.Op(id).Duration
		s.Assignments[id] = Assignment{Op: id, Device: 0, Start: start, End: start + dur}
		now = start + dur
		last = id
	}
	s.computeMakespan()
	if err := s.Validate(); err != nil {
		t.Fatalf("manual schedule invalid: %v", err)
	}
	return s
}

// TestFig2StoreCounts reproduces the paper's Fig. 2: with one mixer, the
// order o1,o2,o3,o4,o6,o5,o7 needs four stores and capacity three, while
// o1,o2,o5,o3,o4,o6,o7 needs three stores and capacity two — and the second
// schedule is faster.
func TestFig2StoreCounts(t *testing.T) {
	const uc = 10
	b := manualPCR(t, []string{"o1", "o2", "o3", "o4", "o6", "o5", "o7"}, uc)
	c := manualPCR(t, []string{"o1", "o2", "o5", "o3", "o4", "o6", "o7"}, uc)

	if got := b.StoreCount(); got != 4 {
		t.Errorf("Fig 2(b) stores = %d, want 4", got)
	}
	if got := b.StorageCapacity(); got != 3 {
		t.Errorf("Fig 2(b) capacity = %d, want 3", got)
	}
	if got := c.StoreCount(); got != 3 {
		t.Errorf("Fig 2(c) stores = %d, want 3", got)
	}
	if got := c.StorageCapacity(); got != 2 {
		t.Errorf("Fig 2(c) capacity = %d, want 2", got)
	}
	if c.Makespan >= b.Makespan {
		t.Errorf("Fig 2(c) makespan %d should beat Fig 2(b) %d", c.Makespan, b.Makespan)
	}
}

// TestFig2ListSchedulerFindsGoodOrder: the storage-aware list scheduler on
// PCR with one mixer should find the Fig. 2(c)-quality order (3 stores,
// capacity 2), while the time-only scheduler needs more storage.
func TestFig2ListSchedulerFindsGoodOrder(t *testing.T) {
	g := assay.PCR()
	opt, err := ListSchedule(g, ListOptions{Devices: 1, Transport: 10, Mode: TimeAndStorage})
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.StoreCount(); got > 3 {
		t.Errorf("storage-aware stores = %d, want <= 3", got)
	}
	if got := opt.StorageCapacity(); got > 2 {
		t.Errorf("storage-aware capacity = %d, want <= 2", got)
	}
	base, err := ListSchedule(g, ListOptions{Devices: 1, Transport: 10, Mode: TimeOnly})
	if err != nil {
		t.Fatal(err)
	}
	if opt.StoreCount() > base.StoreCount() {
		t.Errorf("storage-aware mode (%d stores) should not need more stores than time-only (%d)",
			opt.StoreCount(), base.StoreCount())
	}
}

// fig4Graph builds the paper's Fig. 4 example: five operations where o2's
// result feeds o4 and o5, and o3's feeds o5.
func fig4Graph() *seqgraph.Graph {
	g := seqgraph.New("fig4")
	o1 := g.MustAddOperation("o1", seqgraph.Mix, 40, 2)
	o2 := g.MustAddOperation("o2", seqgraph.Mix, 40, 2)
	o3 := g.MustAddOperation("o3", seqgraph.Mix, 40, 2)
	o4 := g.MustAddOperation("o4", seqgraph.Mix, 40, 0)
	o5 := g.MustAddOperation("o5", seqgraph.Mix, 40, 0)
	g.MustAddDependency(o1, o4)
	g.MustAddDependency(o2, o4)
	g.MustAddDependency(o2, o5)
	g.MustAddDependency(o3, o5)
	return g
}

// TestFig4StorageReduction: on two devices the storage-aware scheduler must
// not exceed the time-only scheduler's storage time while keeping makespan
// comparable (the paper's Fig. 4(b) vs 4(c)).
func TestFig4StorageReduction(t *testing.T) {
	g := fig4Graph()
	withOpt, err := ListSchedule(g, ListOptions{Devices: 2, Transport: 10, Mode: TimeAndStorage})
	if err != nil {
		t.Fatal(err)
	}
	timeOnly, err := ListSchedule(g, ListOptions{Devices: 2, Transport: 10, Mode: TimeOnly})
	if err != nil {
		t.Fatal(err)
	}
	if withOpt.StorageTime() > timeOnly.StorageTime() {
		t.Errorf("storage-aware Σu = %d exceeds time-only Σu = %d",
			withOpt.StorageTime(), timeOnly.StorageTime())
	}
	// "The execution times of the assay with these two schedules are equal"
	// — allow a small slack rather than exact equality for the heuristic.
	if withOpt.Makespan > timeOnly.Makespan+2*10 {
		t.Errorf("storage-aware makespan %d much worse than time-only %d",
			withOpt.Makespan, timeOnly.Makespan)
	}
}

func TestListScheduleValidAcrossBenchmarks(t *testing.T) {
	for _, name := range assay.Names() {
		b := assay.MustGet(name)
		for _, mode := range []Mode{TimeAndStorage, TimeOnly} {
			s, err := ListSchedule(b.Graph, ListOptions{Devices: b.Devices, Transport: b.Transport, Mode: mode})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, mode, err)
			}
			if err := s.Validate(); err != nil {
				t.Errorf("%s/%v: %v", name, mode, err)
			}
			cp, _ := b.Graph.CriticalPathLength(0)
			if s.Makespan < cp {
				t.Errorf("%s/%v: makespan %d below critical path %d", name, mode, s.Makespan, cp)
			}
		}
	}
}

func TestListScheduleErrors(t *testing.T) {
	g := assay.PCR()
	if _, err := ListSchedule(g, ListOptions{Devices: 0, Transport: 10}); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := ListSchedule(g, ListOptions{Devices: 1, Transport: 0}); err == nil {
		t.Error("zero transport accepted")
	}
	bad := seqgraph.New("empty")
	if _, err := ListSchedule(bad, ListOptions{Devices: 1, Transport: 10}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestMoreDevicesNeverSlower(t *testing.T) {
	g := assay.MustGet("RA30").Graph
	prev := 1 << 30
	for d := 1; d <= 6; d++ {
		s, err := ListSchedule(g, ListOptions{Devices: d, Transport: 10, Mode: TimeAndStorage})
		if err != nil {
			t.Fatal(err)
		}
		// Not strictly monotone for list scheduling, but gross regressions
		// indicate a bug.
		if s.Makespan > prev+prev/4 {
			t.Errorf("makespan with %d devices (%d) much worse than with %d (%d)",
				d, s.Makespan, d-1, prev)
		}
		if s.Makespan < prev {
			prev = s.Makespan
		}
	}
}

func TestTasksExtraction(t *testing.T) {
	const uc = 10
	s := manualPCR(t, []string{"o1", "o2", "o5", "o3", "o4", "o6", "o7"}, uc)
	tasks := s.Tasks()
	// Fig 2(c): stored o1, o5, o3; direct transports for fetched parents
	// are part of the stored tasks; direct-pass edges produce no task.
	stored := 0
	for _, task := range tasks {
		switch task.Kind {
		case Stored:
			stored++
			if task.OutEnd-task.OutStart != (uc+1)/2 {
				t.Errorf("move-out length = %d, want %d", task.OutEnd-task.OutStart, (uc+1)/2)
			}
			if task.CacheDuration() <= 0 {
				t.Errorf("stored task with non-positive cache duration: %v", task)
			}
		case Direct:
			if task.Arrive <= task.Depart {
				t.Errorf("direct task with empty window: %v", task)
			}
		}
	}
	if stored != 3 {
		t.Errorf("stored tasks = %d, want 3", stored)
	}
	// Tasks are sorted by first movement.
	for i := 1; i < len(tasks); i++ {
		if tasks[i].startTime() < tasks[i-1].startTime() {
			t.Error("tasks not sorted by start time")
		}
	}
}

func TestCapacityProfileConsistent(t *testing.T) {
	s := manualPCR(t, []string{"o1", "o2", "o3", "o4", "o6", "o5", "o7"}, 10)
	prof := s.CapacityProfile()
	max := 0
	for _, v := range prof {
		if v > max {
			max = v
		}
	}
	if max != s.StorageCapacity() {
		t.Errorf("profile max %d != StorageCapacity %d", max, s.StorageCapacity())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := assay.PCR()
	s, err := ListSchedule(g, ListOptions{Devices: 2, Transport: 10, Mode: TimeAndStorage})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		label  string
		mutate func(*Schedule)
	}{
		{"bad device", func(s *Schedule) { s.Assignments[0].Device = 99 }},
		{"negative start", func(s *Schedule) { s.Assignments[0].Start = -5; s.Assignments[0].End = 35 }},
		{"wrong duration", func(s *Schedule) { s.Assignments[0].End = s.Assignments[0].Start + 1 }},
		{"precedence", func(s *Schedule) {
			// Move the sink before its parents.
			sink := g.Sinks()[0]
			d := g.Op(sink).Duration
			s.Assignments[sink].Start = 0
			s.Assignments[sink].End = d
		}},
	}
	for _, tc := range cases {
		clone := *s
		clone.Assignments = append([]Assignment(nil), s.Assignments...)
		tc.mutate(&clone)
		if err := clone.Validate(); err == nil {
			t.Errorf("%s: corruption not detected", tc.label)
		}
	}
}

// TestListScheduleProperty: random assays always produce valid schedules
// whose makespan is at least the critical path and at most total work plus
// all transport overheads.
func TestListScheduleProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(25)
		g := assay.Random(n, 1+r.Intn(4), seed)
		devices := 1 + r.Intn(4)
		uc := 1 + r.Intn(15)
		for _, mode := range []Mode{TimeAndStorage, TimeOnly} {
			s, err := ListSchedule(g, ListOptions{Devices: devices, Transport: uc, Mode: mode})
			if err != nil {
				return false
			}
			if s.Validate() != nil {
				return false
			}
			cp, _ := g.CriticalPathLength(0)
			ub := g.TotalWork() + (g.NumEdges()+n)*2*uc
			if s.Makespan < cp || s.Makespan > ub {
				return false
			}
			// Task extraction must cover every cross-device edge.
			tasks := s.Tasks()
			covered := make(map[seqgraph.Edge]bool, len(tasks))
			for _, task := range tasks {
				covered[task.Edge] = true
			}
			for _, e := range g.Edges() {
				if s.Device(e.Parent) != s.Device(e.Child) && !covered[e] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestStorageModeNoWorseOnAverage: across seeds, storage-aware scheduling
// must not increase the number of store operations in aggregate, and must
// keep total storage time within a small margin of the time-only baseline
// (the paper's Fig. 9 claim: comparable execution, fewer storage resources;
// RA30's slightly larger execution time there shows exact dominance is not
// expected of either engine).
func TestStorageModeNoWorseOnAverage(t *testing.T) {
	var optSum, baseSum, optStores, baseStores int
	for seed := int64(0); seed < 20; seed++ {
		g := assay.Random(20, 3, seed)
		opt, err := ListSchedule(g, ListOptions{Devices: 3, Transport: 10, Mode: TimeAndStorage})
		if err != nil {
			t.Fatal(err)
		}
		base, err := ListSchedule(g, ListOptions{Devices: 3, Transport: 10, Mode: TimeOnly})
		if err != nil {
			t.Fatal(err)
		}
		optSum += opt.StorageTime()
		baseSum += base.StorageTime()
		optStores += opt.StoreCount()
		baseStores += base.StoreCount()
	}
	if optStores > baseStores {
		t.Errorf("aggregate stores with optimization (%d) exceed baseline (%d)", optStores, baseStores)
	}
	if float64(optSum) > 1.15*float64(baseSum) {
		t.Errorf("aggregate storage time with optimization (%d) far exceeds baseline (%d)", optSum, baseSum)
	}
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	g := assay.Random(12, 3, 7)
	s, err := ListSchedule(g, ListOptions{Devices: 3, Transport: 10})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if c.Graph != s.Graph {
		t.Error("clone should share the graph")
	}
	if c.Makespan != s.Makespan || c.Devices != s.Devices || c.Transport != s.Transport {
		t.Error("clone differs in scalar fields")
	}
	if len(c.Assignments) != len(s.Assignments) {
		t.Fatal("clone differs in assignment count")
	}
	for i := range s.Assignments {
		if c.Assignments[i] != s.Assignments[i] {
			t.Fatalf("clone assignment %d differs", i)
		}
	}
	// Mutating the clone must not touch the original.
	c.Assignments[0].Start += 5
	if s.Assignments[0].Start == c.Assignments[0].Start {
		t.Error("clone shares its assignment slice with the original")
	}
	if len(s.DepartOffsets) > 0 {
		for e := range c.DepartOffsets {
			c.DepartOffsets[e] += 99
			if s.DepartOffsets[e] == c.DepartOffsets[e] {
				t.Error("clone shares its DepartOffsets map with the original")
			}
			break
		}
	}
}

func TestGanttAndString(t *testing.T) {
	s, err := ListSchedule(assay.PCR(), ListOptions{Devices: 2, Transport: 10, Mode: TimeAndStorage})
	if err != nil {
		t.Fatal(err)
	}
	if s.String() == "" || s.Gantt() == "" {
		t.Error("String/Gantt should be non-empty")
	}
}
