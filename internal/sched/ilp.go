package sched

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"flowsyn/internal/milp"
	"flowsyn/internal/seqgraph"
)

// MaxExactOps is the largest operation count for which the exact ILP is
// attempted; larger assays return the list-scheduler incumbent as the
// time-limit best effort (the paper's own solver capped out from RA30 on).
const MaxExactOps = 14

// ILPOptions configures the exact scheduling-and-binding formulation.
type ILPOptions struct {
	// Devices is |D|, the number of identical devices.
	Devices int
	// Transport is u_c in seconds.
	Transport int
	// Alpha and Beta weight makespan and storage time in the paper's
	// objective (6): minimize α·tE + β·Σ u_{i,j}. Zero values default to
	// α=100, β=1 (makespan-dominant, as in the paper). Set Beta to a
	// negative value to force pure makespan optimization (β = 0).
	Alpha, Beta float64
	// TimeLimit caps branch and bound, mirroring the paper's 30-minute
	// solver cap. Zero means 30 s (sensible for tests and examples).
	TimeLimit time.Duration
	// WarmStart seeds branch and bound with a list-scheduler incumbent.
	// Strongly recommended; enabled by Synthesize-level callers.
	WarmStart bool
}

// weights normalizes the objective weights of the paper's objective (6):
// zero values default to α=100, β=1 (makespan-dominant), and a negative Beta
// selects the pure-makespan baseline (β = 0). Shared by the ILP formulation
// and the portfolio's arm-selection score so both always agree.
func (o ILPOptions) weights() (alpha, beta float64) {
	alpha, beta = o.Alpha, o.Beta
	if alpha == 0 {
		alpha = 100
	}
	if beta == 0 {
		beta = 1
	} else if beta < 0 {
		beta = 0
	}
	return alpha, beta
}

// ILPInfo reports solver diagnostics alongside an ILP schedule.
type ILPInfo struct {
	// Status is the MILP solver verdict (optimal, time-limit, ...).
	Status milp.Status
	// Objective is α·tE + β·Σu at the returned schedule.
	Objective float64
	// Nodes and Iterations count branch-and-bound nodes and simplex pivots.
	Nodes, Iterations int
	// Runtime is the wall-clock solve time (the paper's t_s column).
	Runtime time.Duration
	// ModelStats summarizes the formulation size.
	ModelStats milp.Stats
	// Solver carries the full MILP solver diagnostics: warm-start rate,
	// presolve reductions, MIP gap, and worker count.
	Solver milp.SolveStats
	// Winner names the engine whose schedule was returned: "ilp" for the
	// exact solution, "list" for the list-scheduler incumbent (size cap,
	// solver fallback, or a portfolio race won by the heuristic arm).
	Winner string
}

// ILPSchedule builds and solves the paper's scheduling-and-binding ILP
// (Table 1, constraints (1)–(5), objective (6)) with the in-repo MILP
// solver and returns a valid schedule.
//
// Formulation notes: the disjunctive non-overlapping constraint (4) is
// linearized with order binaries y_{ij} and device-difference binaries
// diff_{ij} (big-M), and the storage terms u_{i,j} are lower-bounded by
// t^s_j − t^e_i whenever the edge crosses devices, exactly capturing the
// paper's Σ u_{i,j} over (o_i,o_j) ∈ E with d_i ≠ d_j. Device symmetry is
// broken by restricting operation i to devices 0..i.
//
// Solutions are reconstructed by re-timing the ILP's binding and per-device
// order with the exact transport semantics shared with the list scheduler,
// so the returned schedule always passes Validate.
func ILPSchedule(g *seqgraph.Graph, opts ILPOptions) (*Schedule, *ILPInfo, error) {
	return ILPScheduleContext(context.Background(), g, opts)
}

// ILPScheduleContext is ILPSchedule bounded by a context. The TimeLimit cap
// still yields the best-effort incumbent, but cancelling ctx aborts the whole
// solve and returns ctx.Err() promptly (the branch-and-bound loop observes
// cancellation within one node relaxation).
func ILPScheduleContext(ctx context.Context, g *seqgraph.Graph, opts ILPOptions) (*Schedule, *ILPInfo, error) {
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	if opts.Devices < 1 {
		return nil, nil, fmt.Errorf("sched: need at least one device, got %d", opts.Devices)
	}
	if opts.Transport < 1 {
		return nil, nil, fmt.Errorf("sched: transport time must be >= 1, got %d", opts.Transport)
	}
	alpha, beta := opts.weights()
	limit := opts.TimeLimit
	if limit == 0 {
		limit = 30 * time.Second
	}

	// Incumbent for warm start and horizon.
	incumbent, err := ListScheduleContext(ctx, g, ListOptions{
		Devices: opts.Devices, Transport: opts.Transport, Mode: TimeAndStorage,
	})
	if err != nil {
		return nil, nil, err
	}

	// The dense in-repo simplex handles the exact formulation up to roughly
	// IVD size (the paper's own Gurobi runs hit their 30-minute cap from
	// RA30 upward, Table 2 column t_s). Beyond that the list-scheduler
	// incumbent is returned directly as the best-effort result.
	if n := g.NumOps(); n > MaxExactOps {
		return incumbent, &ILPInfo{
			Status:    milp.StatusTimeLimit,
			Objective: alpha*float64(incumbent.Makespan) + beta*float64(incumbent.StorageTime()),
			Winner:    "list",
		}, nil
	}
	horizon := float64(incumbent.Makespan + opts.Transport*g.NumEdges() + 1)
	bigM := horizon + float64(opts.Transport)

	n := g.NumOps()
	m := milp.NewModel()

	// Variables.
	ts := make([]milp.Var, n)
	te := make([]milp.Var, n)
	assign := make([][]milp.Var, n) // assign[i][k] = s_{i,k}
	for i := 0; i < n; i++ {
		op := g.Op(seqgraph.OpID(i))
		ts[i] = m.NewContinuous(fmt.Sprintf("ts_%s", op.Name), 0, horizon)
		te[i] = m.NewContinuous(fmt.Sprintf("te_%s", op.Name), 0, horizon)
		assign[i] = make([]milp.Var, opts.Devices)
		for k := 0; k < opts.Devices; k++ {
			assign[i][k] = m.NewBinary(fmt.Sprintf("s_%s_d%d", op.Name, k))
		}
	}
	tE := m.NewContinuous("tE", 0, horizon)

	pairIdx := func(i, j int) (int, int) {
		if i > j {
			return j, i
		}
		return i, j
	}
	diff := make(map[[2]int]milp.Var)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			diff[[2]int{i, j}] = m.NewBinary(fmt.Sprintf("diff_%d_%d", i, j))
		}
	}

	// (1) Uniqueness + device symmetry breaking.
	for i := 0; i < n; i++ {
		e := milp.NewExpr(0)
		for k := 0; k < opts.Devices; k++ {
			e.Add(assign[i][k], 1)
		}
		m.AddEQ(fmt.Sprintf("uniq_%d", i), *e, 1)
		for k := i + 1; k < opts.Devices; k++ {
			m.AddEQ(fmt.Sprintf("sym_%d_%d", i, k), milp.VarExpr(assign[i][k]), 0)
		}
	}

	// (2) Duration: te_i = ts_i + u_i.
	for i := 0; i < n; i++ {
		dur := float64(g.Op(seqgraph.OpID(i)).Duration)
		m.AddEQ(fmt.Sprintf("dur_%d", i),
			*milp.NewExpr(0).Add(te[i], 1).Add(ts[i], -1), dur)
	}

	// diff_{ij} definition: diff >= |s_ik - s_jk| and diff <= 2 - s_ik - s_jk.
	// Iterated in pair order (not map order) so the constraint layout — and
	// with it the solver's pivot trajectory — is identical run to run.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := diff[[2]int{i, j}]
			for k := 0; k < opts.Devices; k++ {
				m.AddLE(fmt.Sprintf("dge1_%d_%d_%d", i, j, k),
					*milp.NewExpr(0).Add(assign[i][k], 1).Add(assign[j][k], -1).Add(d, -1), 0)
				m.AddLE(fmt.Sprintf("dge2_%d_%d_%d", i, j, k),
					*milp.NewExpr(0).Add(assign[j][k], 1).Add(assign[i][k], -1).Add(d, -1), 0)
				m.AddLE(fmt.Sprintf("dle_%d_%d_%d", i, j, k),
					*milp.NewExpr(0).Add(d, 1).Add(assign[i][k], 1).Add(assign[j][k], 1), 2)
			}
		}
	}

	// (3) Precedence with transport: ts_j - te_i >= uc·diff_{ij}, plus the
	// storage terms u_{i,j} >= (ts_j - te_i) - M(1 - diff_{ij}).
	storage := make([]milp.Var, 0, g.NumEdges())
	for _, e := range g.Edges() {
		i, j := int(e.Parent), int(e.Child)
		a, b := pairIdx(i, j)
		d := diff[[2]int{a, b}]
		m.AddGE(fmt.Sprintf("prec_%d_%d", i, j),
			*milp.NewExpr(0).Add(ts[j], 1).Add(te[i], -1).Add(d, -float64(opts.Transport)), 0)
		// u >= (ts_j - te_i) - M(1 - diff):
		// u - ts_j + te_i - M·diff >= -M.
		u := m.NewContinuous(fmt.Sprintf("u_%d_%d", i, j), 0, horizon)
		m.AddGE(fmt.Sprintf("stor_%d_%d", i, j),
			*milp.NewExpr(0).Add(u, 1).Add(ts[j], -1).Add(te[i], 1).Add(d, -bigM), -bigM)
		storage = append(storage, u)
	}

	// (4) Non-overlap on shared devices via order binaries.
	order := make(map[[2]int]milp.Var)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := diff[[2]int{i, j}]
			y := m.NewBinary(fmt.Sprintf("y_%d_%d", i, j))
			order[[2]int{i, j}] = y
			// te_i <= ts_j + M(1-y) + M·diff
			m.AddLE(fmt.Sprintf("no1_%d_%d", i, j),
				*milp.NewExpr(0).Add(te[i], 1).Add(ts[j], -1).Add(y, bigM).Add(d, -bigM), bigM)
			// te_j <= ts_i + M·y + M·diff
			m.AddLE(fmt.Sprintf("no2_%d_%d", i, j),
				*milp.NewExpr(0).Add(te[j], 1).Add(ts[i], -1).Add(y, -bigM).Add(d, -bigM), 0)
		}
	}

	// (5) Makespan.
	for i := 0; i < n; i++ {
		m.AddLE(fmt.Sprintf("mk_%d", i), *milp.NewExpr(0).Add(te[i], 1).Add(tE, -1), 0)
	}

	// Objective (6): α·tE + β·Σ u.
	obj := milp.NewExpr(0).Add(tE, alpha)
	for _, u := range storage {
		obj.Add(u, beta)
	}
	m.SetObjective(*obj, milp.Minimize)

	// Warm start from the list schedule.
	var warm []float64
	if opts.WarmStart {
		warm = buildWarmStart(m, g, incumbent, ts, te, assign, diff, order, storage, tE)
	}

	startT := time.Now()
	sol, err := milp.SolveContext(ctx, m, milp.SolveOptions{TimeLimit: limit, Incumbent: warm})
	if err != nil {
		return nil, nil, fmt.Errorf("sched: solving scheduling ILP: %w", err)
	}
	if err := ctx.Err(); err != nil {
		// The caller cancelled the whole synthesis: propagate instead of
		// falling back to the best-effort incumbent.
		return nil, nil, err
	}
	info := &ILPInfo{
		Status:     sol.Status,
		Nodes:      sol.Nodes,
		Iterations: sol.Iterations,
		Runtime:    time.Since(startT),
		ModelStats: m.Stats(),
		Solver:     sol.Stats,
		Winner:     "ilp",
	}
	if !sol.Feasible() {
		// Fall back to the list schedule (best effort), as the paper falls
		// back to the solver's best incumbent at the time limit.
		info.Objective = alpha*float64(incumbent.Makespan) + beta*float64(incumbent.StorageTime())
		info.Winner = "list"
		return incumbent, info, nil
	}
	info.Objective = sol.Objective

	schedule := reconstruct(g, opts, sol, ts, assign)
	if err := schedule.Validate(); err != nil {
		return nil, nil, fmt.Errorf("sched: ILP reconstruction invalid: %w", err)
	}
	// Keep whichever of {reconstructed, incumbent} scores better on the
	// paper's objective, since reconstruction re-times with the stricter
	// transport semantics.
	scoreRec := alpha*float64(schedule.Makespan) + beta*float64(schedule.StorageTime())
	scoreInc := alpha*float64(incumbent.Makespan) + beta*float64(incumbent.StorageTime())
	if scoreInc < scoreRec {
		info.Winner = "list"
		return incumbent, info, nil
	}
	return schedule, info, nil
}

// buildWarmStart converts the incumbent list schedule into a full variable
// assignment satisfying every big-M constraint of the model.
func buildWarmStart(m *milp.Model, g *seqgraph.Graph, inc *Schedule,
	ts, te []milp.Var, assign [][]milp.Var,
	diff, order map[[2]int]milp.Var, storage []milp.Var, tE milp.Var) []float64 {

	x := make([]float64, m.NumVars())
	n := g.NumOps()

	// Relabel devices by first use so the symmetry-breaking constraints
	// s_{i,k} = 0 for k > i hold.
	firstUse := make(map[int]int) // device -> first op id using it
	for i := 0; i < n; i++ {
		d := inc.Assignments[i].Device
		if _, seen := firstUse[d]; !seen {
			firstUse[d] = i
		}
	}
	olds := make([]int, 0, len(firstUse))
	for d := range firstUse {
		olds = append(olds, d)
	}
	sort.Slice(olds, func(a, b int) bool { return firstUse[olds[a]] < firstUse[olds[b]] })
	relabel := make(map[int]int, len(olds))
	for newIdx, old := range olds {
		relabel[old] = newIdx
	}
	dev := func(i int) int { return relabel[inc.Assignments[i].Device] }

	for i := 0; i < n; i++ {
		a := inc.Assignments[i]
		x[ts[i].ID()] = float64(a.Start)
		x[te[i].ID()] = float64(a.End)
		x[assign[i][dev(i)].ID()] = 1
	}
	x[tE.ID()] = float64(inc.Makespan)
	for key, d := range diff {
		i, j := key[0], key[1]
		if dev(i) != dev(j) {
			x[d.ID()] = 1
		}
	}
	for key, y := range order {
		i, j := key[0], key[1]
		if dev(i) == dev(j) {
			if inc.Assignments[i].End <= inc.Assignments[j].Start {
				x[y.ID()] = 1
			} // else y=0 encodes j before i
		}
	}
	for idx, e := range g.Edges() {
		i, j := int(e.Parent), int(e.Child)
		if dev(i) != dev(j) {
			gap := inc.Assignments[j].Start - inc.Assignments[i].End
			if gap > 0 {
				x[storage[idx].ID()] = float64(gap)
			}
		}
	}
	return x
}

// reconstruct re-times the ILP's binding and per-device order with the exact
// transport semantics (direct pass, flush, fetch slots) used by the list
// scheduler, guaranteeing a valid integral schedule.
func reconstruct(g *seqgraph.Graph, opts ILPOptions, sol *milp.Solution,
	ts []milp.Var, assign [][]milp.Var) *Schedule {

	n := g.NumOps()
	binding := make([]int, n)
	for i := 0; i < n; i++ {
		for k := 0; k < opts.Devices; k++ {
			if math.Round(sol.Value(assign[i][k])) == 1 {
				binding[i] = k
				break
			}
		}
	}
	// Global order by ILP start time (ties by ID), then greedy re-timing.
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		sa, sb := sol.Value(ts[ids[a]]), sol.Value(ts[ids[b]])
		if sa != sb {
			return sa < sb
		}
		return ids[a] < ids[b]
	})

	outLen := (opts.Transport + 1) / 2
	fetchLen := opts.Transport - outLen
	s := &Schedule{
		Graph:         g,
		Devices:       opts.Devices,
		Transport:     opts.Transport,
		Assignments:   make([]Assignment, n),
		DepartOffsets: make(map[seqgraph.Edge]int),
	}
	departCount := make([]int, n)
	deviceFree := make([]int, opts.Devices)
	lastOp := make([]seqgraph.OpID, opts.Devices)
	for d := range lastOp {
		lastOp[d] = -1
	}
	done := make([]bool, n)
	pending := append([]int(nil), ids...)
	for len(pending) > 0 {
		// Pick the first pending op whose parents are all placed (the ILP
		// order is topological on each device but the global order may
		// interleave; this keeps reconstruction safe).
		pick := -1
		for idx, op := range pending {
			ok := true
			for _, p := range g.Parents(seqgraph.OpID(op)) {
				if !done[p] {
					ok = false
					break
				}
			}
			if ok {
				pick = idx
				break
			}
		}
		op := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)

		k := binding[op]
		start := deviceFree[k]
		direct := seqgraph.OpID(-1)
		if lastOp[k] >= 0 {
			for _, p := range g.Parents(seqgraph.OpID(op)) {
				if p == lastOp[k] {
					direct = p
					break
				}
			}
			if direct < 0 {
				if v := s.Assignments[lastOp[k]].End + outLen; v > start {
					start = v
				}
			}
		}
		fetches, maxArr := 0, 0
		for _, p := range g.Parents(seqgraph.OpID(op)) {
			arr := s.Assignments[p].End
			if p != direct {
				arr += departCount[p]*opts.Transport + opts.Transport
				fetches++
			}
			if arr > maxArr {
				maxArr = arr
			}
		}
		start += fetches * fetchLen
		if maxArr > start {
			start = maxArr
		}
		dur := g.Op(seqgraph.OpID(op)).Duration
		s.Assignments[op] = Assignment{Op: seqgraph.OpID(op), Device: k, Start: start, End: start + dur}
		deviceFree[k] = start + dur
		for _, p := range g.Parents(seqgraph.OpID(op)) {
			if p == direct {
				continue
			}
			s.DepartOffsets[seqgraph.Edge{Parent: p, Child: seqgraph.OpID(op)}] = departCount[p] * opts.Transport
			departCount[p]++
		}
		lastOp[k] = seqgraph.OpID(op)
		done[op] = true
	}
	s.computeMakespan()
	Compact(s)
	return s
}
