package sched

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"flowsyn/internal/milp"
	"flowsyn/internal/seqgraph"
)

// MaxExactOps is the largest operation count for which the exact ILP is
// attempted; larger assays return the list-scheduler incumbent as the
// time-limit best effort (the paper's own solver capped out from RA30 on).
// The cap sat at 14 while the solver kept a dense basis inverse; the sparse
// LU kernel with Forrest–Tomlin updates, devex pricing, node-level bound
// propagation, and the tightened formulation below (time-window variable
// bounds, per-pair big-M, capacity and critical-path bounds on tE) pushed
// the exactly solvable range to 20 operations (BENCH_pr4.json). Turning the
// search into cut-and-branch — root Gomory/cover cutting planes, pseudo-cost
// branching with reliability initialization, incremental pricing with a
// bound-flipping dual ratio test, and RINS/diving node heuristics — lifted
// it to 30 (BENCH_pr6.json). The storage-side dual-bound program — fixed
// diff rows and conflict-graph clique cuts from must-overlap operation
// pairs, lifted cover cuts, and local branching around the incumbent —
// lifts it to 40; BENCH_pr8.json records the seeded random-DAG gap closure.
const MaxExactOps = 40

// ILPOptions configures the exact scheduling-and-binding formulation.
type ILPOptions struct {
	// Devices is |D|, the number of identical devices.
	Devices int
	// Transport is u_c in seconds.
	Transport int
	// Alpha and Beta weight makespan and storage time in the paper's
	// objective (6): minimize α·tE + β·Σ u_{i,j}. Zero values default to
	// α=100, β=1 (makespan-dominant, as in the paper). Set Beta to a
	// negative value to force pure makespan optimization (β = 0).
	Alpha, Beta float64
	// TimeLimit caps branch and bound, mirroring the paper's 30-minute
	// solver cap. Zero means 30 s (sensible for tests and examples).
	TimeLimit time.Duration
	// WarmStart seeds branch and bound with a list-scheduler incumbent.
	// Strongly recommended; enabled by Synthesize-level callers.
	WarmStart bool
	// Warm, if non-nil, is a prior schedule of this assay — possibly of an
	// edited version of it. Its device binding and per-device order are
	// re-timed on the current graph (RetimeLike) and the result, when it
	// beats the list-scheduler incumbent on the objective, seeds the solve
	// instead: the incremental re-synthesis hook of the service layer.
	Warm *Schedule
	// Progress, if non-nil, receives one event per improving incumbent the
	// exact solve installs (including the warm start). It is called
	// synchronously from solver workers; implementations must be fast and
	// non-blocking.
	Progress func(ProgressEvent)
	// Pin, if non-nil, freezes an executed prefix for online recovery: pinned
	// operations enter the formulation with fixed time boxes and assignment
	// rows, forbidden devices are excluded for everything else, and no
	// re-planned operation may start before the fault-detection instant.
	// Device symmetry breaking is disabled (pinned bindings already name
	// concrete devices) and reconstruction re-times only the suffix.
	Pin *Pin
	// Storage selects the storage strategy (nil = distributed channels).
	// The incumbent, the warm retimes and the reconstruction all run under
	// the model, so the returned schedule is strategy-feasible; for the
	// dedicated-unit strategy the formulation is additionally tightened
	// with the strategy's storage rows (doubled transport on cross-device
	// edges, a port-capacity bound on tE), so the exact solve optimizes
	// under port contention rather than relaxing it away.
	Storage StorageModel
}

// ProgressEvent reports one improving incumbent of the exact solve.
type ProgressEvent struct {
	// Makespan is the incumbent's model makespan tE in seconds.
	Makespan int
	// Objective is α·tE + β·Σu at the incumbent.
	Objective float64
	// Nodes counts the branch-and-bound nodes expanded when it was found
	// (0 for the initial warm start).
	Nodes int
}

// ObjectiveScore ranks a schedule under the paper's objective (6) with the
// default weights (α=100, β=1; β=0 under TimeOnly) — the single source of
// truth for every default-weight comparison: the heuristic-path warm-start
// race in core, the service layer, and tests.
func ObjectiveScore(s *Schedule, mode Mode) float64 {
	alpha, beta := ILPOptions{}.weights()
	if mode == TimeOnly {
		beta = 0
	}
	return alpha*float64(s.Makespan) + beta*float64(s.StorageTime())
}

// weights normalizes the objective weights of the paper's objective (6):
// zero values default to α=100, β=1 (makespan-dominant), and a negative Beta
// selects the pure-makespan baseline (β = 0). Shared by the ILP formulation
// and the portfolio's arm-selection score so both always agree.
func (o ILPOptions) weights() (alpha, beta float64) {
	alpha, beta = o.Alpha, o.Beta
	if alpha == 0 {
		alpha = 100
	}
	if beta == 0 {
		beta = 1
	} else if beta < 0 {
		beta = 0
	}
	return alpha, beta
}

// ILPInfo reports solver diagnostics alongside an ILP schedule.
type ILPInfo struct {
	// Status is the MILP solver verdict (optimal, time-limit, ...).
	Status milp.Status
	// Objective is α·tE + β·Σu at the returned schedule.
	Objective float64
	// Nodes and Iterations count branch-and-bound nodes and simplex pivots.
	Nodes, Iterations int
	// Runtime is the wall-clock solve time (the paper's t_s column).
	Runtime time.Duration
	// ModelStats summarizes the formulation size.
	ModelStats milp.Stats
	// Solver carries the full MILP solver diagnostics: warm-start rate,
	// presolve reductions, MIP gap, and worker count.
	Solver milp.SolveStats
	// Winner names the engine whose schedule was returned: "ilp" for the
	// exact solution, "list" for the list-scheduler incumbent (size cap,
	// solver fallback, or a portfolio race won by the heuristic arm).
	Winner string
}

// ILPSchedule builds and solves the paper's scheduling-and-binding ILP
// (Table 1, constraints (1)–(5), objective (6)) with the in-repo MILP
// solver and returns a valid schedule.
//
// Formulation notes: the disjunctive non-overlapping constraint (4) is
// linearized with order binaries y_{ij} and device-difference binaries
// diff_{ij} (big-M), and the storage terms u_{i,j} are lower-bounded by
// t^s_j − t^e_i whenever the edge crosses devices, exactly capturing the
// paper's Σ u_{i,j} over (o_i,o_j) ∈ E with d_i ≠ d_j. Device symmetry is
// broken by restricting operation i to devices 0..i.
//
// Solutions are reconstructed by re-timing the ILP's binding and per-device
// order with the exact transport semantics shared with the list scheduler,
// so the returned schedule always passes Validate.
func ILPSchedule(g *seqgraph.Graph, opts ILPOptions) (*Schedule, *ILPInfo, error) {
	return ILPScheduleContext(context.Background(), g, opts)
}

// ILPScheduleContext is ILPSchedule bounded by a context. The TimeLimit cap
// still yields the best-effort incumbent, but cancelling ctx aborts the whole
// solve and returns ctx.Err() promptly (the branch-and-bound loop observes
// cancellation within one node relaxation).
func ILPScheduleContext(ctx context.Context, g *seqgraph.Graph, opts ILPOptions) (*Schedule, *ILPInfo, error) {
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	if opts.Devices < 1 {
		return nil, nil, fmt.Errorf("sched: need at least one device, got %d", opts.Devices)
	}
	if opts.Transport < 1 {
		return nil, nil, fmt.Errorf("sched: transport time must be >= 1, got %d", opts.Transport)
	}
	alpha, beta := opts.weights()
	limit := opts.TimeLimit
	if limit == 0 {
		limit = 30 * time.Second
	}

	// Incumbent for warm start and horizon.
	incumbent, err := ListScheduleContext(ctx, g, ListOptions{
		Devices: opts.Devices, Transport: opts.Transport, Mode: TimeAndStorage, Pin: opts.Pin,
		Storage: opts.Storage,
	})
	if err != nil {
		return nil, nil, err
	}
	// Incremental re-synthesis: a prior schedule's binding and order,
	// re-timed on the (possibly edited) graph, replaces the list incumbent
	// when it scores better — the unchanged prefix of the assay then enters
	// the solve with its proven structure instead of a cold heuristic guess.
	// Under a pin the retime is prefix-preserving instead.
	score := func(s *Schedule) float64 {
		return alpha*float64(s.Makespan) + beta*float64(s.StorageTime())
	}
	if opts.Warm != nil {
		var ws *Schedule
		var werr error
		if opts.Pin != nil {
			ws, werr = RetimePinnedWith(g, opts.Warm, opts.Pin, opts.Devices, opts.Transport, opts.Storage)
		} else {
			ws, werr = RetimeLikeWith(g, opts.Warm, opts.Devices, opts.Transport, opts.Storage)
		}
		if werr == nil && score(ws) < score(incumbent) {
			incumbent = ws
		}
	}

	// The dense in-repo simplex handles the exact formulation up to roughly
	// IVD size (the paper's own Gurobi runs hit their 30-minute cap from
	// RA30 upward, Table 2 column t_s). Beyond that the list-scheduler
	// incumbent is returned directly as the best-effort result.
	if n := g.NumOps(); n > MaxExactOps {
		if opts.Progress != nil {
			opts.Progress(ProgressEvent{Makespan: incumbent.Makespan, Objective: score(incumbent)})
		}
		return incumbent, &ILPInfo{
			Status:    milp.StatusTimeLimit,
			Objective: score(incumbent),
			// No solve ran, so no dual bound exists: Gap -1 ("n/a"), not the
			// zero value's proven-optimum claim.
			Solver: milp.SolveStats{Gap: -1},
			Winner: "list",
		}, nil
	}
	sm := buildSchedModel(g, opts, incumbent, alpha, beta)

	solveOpts := milp.SolveOptions{TimeLimit: limit, Incumbent: sm.warm, Conflicts: sm.conflicts}
	// With integral objective weights the model's objective is integral at
	// every integer-feasible point: once the binaries are fixed, the
	// remaining ts/te/tE system is a difference-constraint (network) matrix
	// with integral data — the storage columns are singletons appended to it,
	// so the block stays totally unimodular and the continuous minimum lands
	// on an integral vertex. That lets the solver round node bounds up and
	// cut at incumbent-1, which is what turns near-optimal incumbents into
	// optimality proofs.
	if alpha == math.Trunc(alpha) && beta == math.Trunc(beta) {
		solveOpts.ObjIntegral = true
	}
	// Branch on the master decisions first: device assignments determine the
	// diff indicators through the dge/dle rows (node propagation fixes them
	// as soon as both endpoints' assignments settle), and diff in turn gates
	// storage and no-overlap. Ordering binaries resolve last — by then most
	// are already forced. This steers the dual bound toward the storage term,
	// which is exactly the part the LP relaxation underestimates.
	prio := make(map[int]int)
	for _, row := range sm.assign {
		for _, v := range row {
			prio[v.ID()] = 2
		}
	}
	for _, v := range sm.diff {
		prio[v.ID()] = 1
	}
	solveOpts.BranchPriority = func(v milp.Var) int { return prio[v.ID()] }
	if opts.Progress != nil {
		tEID := sm.tE.ID()
		progress := opts.Progress
		solveOpts.OnIncumbent = func(x []float64, obj float64, nodes int) {
			progress(ProgressEvent{Makespan: int(math.Round(x[tEID])), Objective: obj, Nodes: nodes})
		}
	}
	startT := time.Now()
	sol, err := milp.SolveContext(ctx, sm.m, solveOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("sched: solving scheduling ILP: %w", err)
	}
	if err := ctx.Err(); err != nil {
		// The caller cancelled the whole synthesis: propagate instead of
		// falling back to the best-effort incumbent.
		return nil, nil, err
	}
	info := &ILPInfo{
		Status:     sol.Status,
		Nodes:      sol.Nodes,
		Iterations: sol.Iterations,
		Runtime:    time.Since(startT),
		ModelStats: sm.m.Stats(),
		Solver:     sol.Stats,
		Winner:     "ilp",
	}
	if !sol.Feasible() {
		// Fall back to the list schedule (best effort), as the paper falls
		// back to the solver's best incumbent at the time limit.
		info.Objective = alpha*float64(incumbent.Makespan) + beta*float64(incumbent.StorageTime())
		info.Winner = "list"
		return incumbent, info, nil
	}
	info.Objective = sol.Objective

	schedule := reconstruct(g, opts, sol, sm.ts, sm.assign)
	if err := schedule.Validate(); err != nil {
		return nil, nil, fmt.Errorf("sched: ILP reconstruction invalid: %w", err)
	}
	// Keep whichever of {reconstructed, incumbent} scores better on the
	// paper's objective, since reconstruction re-times with the stricter
	// transport semantics.
	scoreRec := alpha*float64(schedule.Makespan) + beta*float64(schedule.StorageTime())
	scoreInc := alpha*float64(incumbent.Makespan) + beta*float64(incumbent.StorageTime())
	if scoreInc < scoreRec {
		info.Winner = "list"
		return incumbent, info, nil
	}
	return schedule, info, nil
}

// schedModel bundles the built scheduling-and-binding formulation with the
// variable handles reconstruction and the warm start need.
type schedModel struct {
	m       *milp.Model
	ts, te  []milp.Var
	assign  [][]milp.Var
	diff    map[[2]int]milp.Var
	order   map[[2]int]milp.Var
	storage []milp.Var
	tE      milp.Var
	warm    []float64
	// conflicts are binary-literal pairs that can never both hold, derived
	// from must-overlap operation pairs; they seed the solver's conflict
	// graph for clique separation.
	conflicts [][2]milp.ConflictLiteral
}

// buildSchedModel lowers the paper's Table 1 formulation — tightened with
// time-window variable bounds, per-pair big-M coefficients, and capacity /
// critical-path lower bounds on the makespan — into a MILP model, plus the
// incumbent-derived warm start when opts.WarmStart is set.
func buildSchedModel(g *seqgraph.Graph, opts ILPOptions, incumbent *Schedule, alpha, beta float64) *schedModel {
	// Optimality-preserving horizon: some optimal schedule scores no worse
	// than the incumbent, and α·tE never exceeds the full objective, so
	// tE ≤ (α·mk + β·storage)/α holds for at least one optimum. Clamping the
	// horizon there (instead of the old mk + transport·edges slack) excludes
	// only schedules provably no better than the incumbent — and every
	// big-M and ts/te window below scales with the horizon, so the clamp is
	// what keeps the LP relaxation tight enough for optimality proofs.
	horizon := float64(incumbent.Makespan) +
		math.Floor(beta*float64(incumbent.StorageTime())/alpha)

	n := g.NumOps()
	m := milp.NewModel()

	// Head/tail time windows from pure-duration longest paths: es_i is the
	// earliest start of operation i, tail_i the least remaining work from
	// its start to the end of the assay. They tighten the ts/te variable
	// boxes and shrink every big-M below to the pair it guards, which is
	// what lifts the LP relaxation from near-vacuous to useful — without
	// them the solver branched big-M disjunctions against a bound that never
	// moved (the old IVD time-limit failure mode).
	es, tail := timeWindows(g)
	// Two valid lower bounds on the makespan: the critical path, and the
	// device-capacity bound ⌈Σ durations / |D|⌉ (ops on one device never
	// overlap, so total work fits under |D|·tE).
	tELo := math.Ceil(float64(g.TotalWork()) / float64(opts.Devices))
	// Under a pin the plain capacity bound is nearly vacuous: forbidden
	// devices take no re-planned work, the executed prefix sits at fixed
	// times, and no free operation starts before the fault instant. Each
	// allowed device k first comes free at r_k = max(Time, last pinned end
	// on k) — every pinned interval starts before Time, so at most one spans
	// it — and the free work then packs serially per device, so some device
	// finishes no earlier than the average (Σ r_k + Σ free durations)/|A|.
	// This is what lets the recovery LP prove the suffix at the root instead
	// of grinding the generic bound up node by node.
	if opts.Pin != nil {
		allowed := 0
		avail := 0.0
		for k := 0; k < opts.Devices; k++ {
			if opts.Pin.Forbidden[k] {
				continue
			}
			allowed++
			r := float64(opts.Pin.Time)
			for _, a := range opts.Pin.Assignments {
				if a.Device == k && float64(a.End) > r {
					r = float64(a.End)
				}
			}
			avail += r
		}
		isPinned := opts.Pin.pinned(n)
		freeWork := 0.0
		for i := 0; i < n; i++ {
			if !isPinned[i] {
				freeWork += float64(g.Op(seqgraph.OpID(i)).Duration)
			}
		}
		if allowed > 0 && freeWork > 0 {
			if b := math.Ceil((avail + freeWork) / float64(allowed)); b > tELo {
				tELo = b
			}
		}
		// The schedule also never ends before the executed prefix does.
		for _, a := range opts.Pin.Assignments {
			if e := float64(a.End); e > tELo {
				tELo = e
			}
		}
	}
	for i := 0; i < n; i++ {
		if cp := es[i] + tail[i]; cp > tELo {
			tELo = cp
		}
	}

	// Pinned prefix: each pinned operation gets a degenerate [Start,Start]
	// time box and a fixed assignment row below; everything else is floored
	// at the fault-detection instant. Both tightenings stay inside the
	// formula boxes (a feasible prior schedule has es_i ≤ Start_i ≤
	// horizon − tail_i), so every big-M derived from the formula bounds
	// remains valid.
	var pinnedBy []*Assignment
	if opts.Pin != nil {
		pinnedBy = make([]*Assignment, n)
		for idx := range opts.Pin.Assignments {
			a := &opts.Pin.Assignments[idx]
			pinnedBy[a.Op] = a
		}
	}

	// Variables. The effective per-op time boxes (after pin degeneracy and
	// the fault-detection floor) are kept for must-overlap detection below.
	ts := make([]milp.Var, n)
	te := make([]milp.Var, n)
	tsLoA := make([]float64, n)
	tsHiA := make([]float64, n)
	durA := make([]float64, n)
	assign := make([][]milp.Var, n) // assign[i][k] = s_{i,k}
	for i := 0; i < n; i++ {
		op := g.Op(seqgraph.OpID(i))
		dur := float64(op.Duration)
		tsLo := es[i]
		tsHi := math.Max(es[i], horizon-tail[i])
		if pinnedBy != nil {
			if a := pinnedBy[i]; a != nil {
				tsLo, tsHi = float64(a.Start), float64(a.Start)
			} else if ft := float64(opts.Pin.Time); ft > tsLo {
				tsLo = ft
				if tsHi < tsLo {
					tsHi = tsLo
				}
			}
		}
		tsLoA[i], tsHiA[i], durA[i] = tsLo, tsHi, dur
		ts[i] = m.NewContinuous(fmt.Sprintf("ts_%s", op.Name), tsLo, tsHi)
		te[i] = m.NewContinuous(fmt.Sprintf("te_%s", op.Name), tsLo+dur, tsHi+dur)
		assign[i] = make([]milp.Var, opts.Devices)
		for k := 0; k < opts.Devices; k++ {
			assign[i][k] = m.NewBinary(fmt.Sprintf("s_%s_d%d", op.Name, k))
		}
	}
	tE := m.NewContinuous("tE", tELo, horizon)
	// Per-pair big-M coefficients from the effective time boxes: the smallest
	// constants that still deactivate their constraints. Under a pin the
	// effective boxes are far tighter than the formula windows (degenerate for
	// the executed prefix, floored at the fault instant for the suffix), and
	// since M only needs to cover the declared variable bounds, deriving it
	// from tsLoA/tsHiA is both valid and what keeps the recovery LP tight —
	// with formula-window Ms the pinned model branched ~1.8k nodes where the
	// unpinned one proves at the root. Without a pin the boxes coincide with
	// the formula windows, so unpinned models are bit-identical.
	teHi := func(i int) float64 {
		return tsHiA[i] + durA[i]
	}
	pairM := func(i, j int) float64 {
		// Bounds te_i − ts_j over the boxes: the M deactivating te_i ≤ ts_j.
		return math.Max(0, teHi(i)-tsLoA[j])
	}

	pairIdx := func(i, j int) (int, int) {
		if i > j {
			return j, i
		}
		return i, j
	}
	diff := make(map[[2]int]milp.Var)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			diff[[2]int{i, j}] = m.NewBinary(fmt.Sprintf("diff_%d_%d", i, j))
		}
	}

	// (1) Uniqueness + device symmetry breaking. Under a pin the symmetry
	// rows are dropped (the pinned bindings already name concrete devices,
	// and may legally violate the first-use numbering); pinned operations
	// get their device fixed outright and forbidden devices are closed to
	// the rest.
	for i := 0; i < n; i++ {
		e := milp.NewExpr(0)
		for k := 0; k < opts.Devices; k++ {
			e.Add(assign[i][k], 1)
		}
		m.AddEQ(fmt.Sprintf("uniq_%d", i), *e, 1)
		if pinnedBy == nil {
			for k := i + 1; k < opts.Devices; k++ {
				m.AddEQ(fmt.Sprintf("sym_%d_%d", i, k), milp.VarExpr(assign[i][k]), 0)
			}
			continue
		}
		if a := pinnedBy[i]; a != nil {
			m.AddEQ(fmt.Sprintf("pin_%d", i), milp.VarExpr(assign[i][a.Device]), 1)
			continue
		}
		for k := 0; k < opts.Devices; k++ {
			if opts.Pin.Forbidden[k] {
				m.AddEQ(fmt.Sprintf("forbid_%d_%d", i, k), milp.VarExpr(assign[i][k]), 0)
			}
		}
	}

	// (2) Duration: te_i = ts_i + u_i.
	for i := 0; i < n; i++ {
		dur := float64(g.Op(seqgraph.OpID(i)).Duration)
		m.AddEQ(fmt.Sprintf("dur_%d", i),
			*milp.NewExpr(0).Add(te[i], 1).Add(ts[i], -1), dur)
	}

	// diff_{ij} definition: diff >= |s_ik - s_jk| and diff <= 2 - s_ik - s_jk.
	// Iterated in pair order (not map order) so the constraint layout — and
	// with it the solver's pivot trajectory — is identical run to run.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := diff[[2]int{i, j}]
			for k := 0; k < opts.Devices; k++ {
				m.AddLE(fmt.Sprintf("dge1_%d_%d_%d", i, j, k),
					*milp.NewExpr(0).Add(assign[i][k], 1).Add(assign[j][k], -1).Add(d, -1), 0)
				m.AddLE(fmt.Sprintf("dge2_%d_%d_%d", i, j, k),
					*milp.NewExpr(0).Add(assign[j][k], 1).Add(assign[i][k], -1).Add(d, -1), 0)
				m.AddLE(fmt.Sprintf("dle_%d_%d_%d", i, j, k),
					*milp.NewExpr(0).Add(d, 1).Add(assign[i][k], 1).Add(assign[j][k], 1), 2)
			}
		}
	}

	// Must-overlap tightening: when two operations' effective time boxes
	// force their execution intervals to intersect in every feasible point
	// (earliest end beyond the other's latest start, both ways), they cannot
	// share a device — on a shared device dle forces diff = 0 and the no1/no2
	// disjunction then demands an impossible ordering. Fixing diff = 1
	// outright is therefore valid at every integer point, and the derived
	// conflict literals seed the solver's clique separation: per-device
	// assignment pairs (s_ik, s_jk), and for every third operation p the
	// complement pair (¬diff_pi, ¬diff_pj) — p co-located with both i and j
	// would co-locate i and j. Cliques of mutually-overlapping observers
	// force fractional assignments apart, which is what lets the
	// u ≥ u_c·diff storage floors reach the root dual bound.
	var conflicts [][2]milp.ConflictLiteral
	adjacent := make(map[[2]int]bool, g.NumEdges())
	for _, e := range g.Edges() {
		a, b := pairIdx(int(e.Parent), int(e.Child))
		adjacent[[2]int{a, b}] = true
	}
	mo := mustOverlapPairs(n, tsLoA, tsHiA, durA, func(i, j int) bool {
		a, b := pairIdx(i, j)
		return adjacent[[2]int{a, b}]
	})
	for _, pr := range mo {
		i, j := pr[0], pr[1]
		// Under a pin the executed prefix collapses to degenerate boxes, so
		// prefix operations that ran concurrently always must-overlap — but
		// their assignments are fixed by the pin rows, so the diff fixing and
		// conflict literals would only bulk up the recovery model (and its
		// conflict graph) without moving the dual bound. Keep the tightening
		// for the free suffix only.
		if pinnedBy != nil && (pinnedBy[i] != nil || pinnedBy[j] != nil) {
			continue
		}
		d := diff[[2]int{i, j}]
		m.AddEQ(fmt.Sprintf("mo_%d_%d", i, j), milp.VarExpr(d), 1)
		for k := 0; k < opts.Devices; k++ {
			conflicts = append(conflicts, [2]milp.ConflictLiteral{
				{V: assign[i][k]}, {V: assign[j][k]},
			})
		}
		for p := 0; p < n; p++ {
			if p == i || p == j {
				continue
			}
			a1, b1 := pairIdx(p, i)
			a2, b2 := pairIdx(p, j)
			conflicts = append(conflicts, [2]milp.ConflictLiteral{
				{V: diff[[2]int{a1, b1}], Neg: true},
				{V: diff[[2]int{a2, b2}], Neg: true},
			})
		}
	}

	// (3) Precedence with transport: ts_j - te_i >= uc·diff_{ij}, plus the
	// storage terms u_{i,j} >= (ts_j - te_i) - M(1 - diff_{ij}) with M the
	// largest gap the time windows admit for this edge.
	//
	// Strategy storage rows: under the dedicated-unit strategy every
	// cross-device fluid transits the unit — a full-u_c store through the
	// port plus a full-u_c fetch back out — so the cross-device gap
	// coefficient doubles, the storage floor doubles with it, and the
	// single port must fit all those 2·u_c access windows disjointly
	// within [0, tE]. These rows are generated through the strategy, which
	// is what makes the exact solve optimize under port contention instead
	// of relaxing it to free channel caching.
	edgeUC := float64(opts.Transport)
	dedicatedUnit := opts.Storage != nil && opts.Storage.Serialized() && opts.Storage.ChannelSlots() == 0
	if dedicatedUnit {
		edgeUC = 2 * float64(opts.Transport)
	}
	storage := make([]milp.Var, 0, g.NumEdges())
	for _, e := range g.Edges() {
		i, j := int(e.Parent), int(e.Child)
		a, b := pairIdx(i, j)
		d := diff[[2]int{a, b}]
		m.AddGE(fmt.Sprintf("prec_%d_%d", i, j),
			*milp.NewExpr(0).Add(ts[j], 1).Add(te[i], -1).Add(d, -edgeUC), 0)
		// u >= (ts_j - te_i) - M(1 - diff):
		// u - ts_j + te_i - M·diff >= -M.
		mS := math.Max(0, tsHiA[j]-(tsLoA[i]+durA[i]))
		u := m.NewContinuous(fmt.Sprintf("u_%d_%d", i, j), 0, mS)
		m.AddGE(fmt.Sprintf("stor_%d_%d", i, j),
			*milp.NewExpr(0).Add(u, 1).Add(ts[j], -1).Add(te[i], 1).Add(d, -mS), -mS)
		// Implied storage floor: a cross-device edge pays at least the
		// transport time (diff=1 forces ts_j-te_i >= uc, hence u >= uc; diff=0
		// asks nothing). The big-M above only activates at integral diff, so
		// without this row the relaxation parks diff fractional and streams
		// every sample for free — the storage term then never reaches the dual
		// bound and near-optimal incumbents stay unproven.
		m.AddGE(fmt.Sprintf("storlb_%d_%d", i, j),
			*milp.NewExpr(0).Add(u, 1).Add(d, -edgeUC), 0)
		storage = append(storage, u)
	}
	if dedicatedUnit && g.NumEdges() > 0 {
		// Port capacity: each cross-device edge's store+fetch occupy the
		// unit's only port for 2·u_c, all windows pairwise disjoint and
		// contained in [0, tE].
		pe := milp.NewExpr(0)
		for _, e := range g.Edges() {
			a, b := pairIdx(int(e.Parent), int(e.Child))
			pe.Add(diff[[2]int{a, b}], 2*float64(opts.Transport))
		}
		pe.Add(tE, -1)
		m.AddLE("port_cap", *pe, 0)
	}

	// (4) Non-overlap on shared devices via order binaries, each side guarded
	// by its own pair-tight M. Pairs whose order is already decided get no
	// binary and no disjunction at all: when j is a precedence descendant of i
	// the prec-row chain forces te_i ≤ ts_j at every point of the relaxation,
	// and when the effective boxes separate them (teHi(i) ≤ tsLo_j) the
	// variable bounds do — either way the pair cannot overlap and the big-M
	// disjunction would only hand the tree a free-to-branch binary. Under a
	// pin this is what keeps the recovery model small: every executed-prefix
	// pair and every prefix-vs-suffix pair across the fault instant is
	// box-decided.
	desc := make([][]uint64, n)
	words := (n + 63) / 64
	for i := range desc {
		desc[i] = make([]uint64, words)
	}
	topo, err := g.TopoOrder()
	if err != nil {
		// Validate ran before any caller; an error here means the graph
		// mutated mid-solve.
		panic(err)
	}
	for t := n - 1; t >= 0; t-- {
		i := int(topo[t])
		for _, c := range g.Children(seqgraph.OpID(i)) {
			desc[i][int(c)/64] |= 1 << (uint(c) % 64)
			for w := 0; w < words; w++ {
				desc[i][w] |= desc[int(c)][w]
			}
		}
	}
	ordered := func(i, j int) bool {
		return desc[i][j/64]&(1<<(uint(j)%64)) != 0 || teHi(i) <= tsLoA[j]+1e-9
	}
	order := make(map[[2]int]milp.Var)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ordered(i, j) || ordered(j, i) {
				continue
			}
			d := diff[[2]int{i, j}]
			y := m.NewBinary(fmt.Sprintf("y_%d_%d", i, j))
			order[[2]int{i, j}] = y
			mA, mB := pairM(i, j), pairM(j, i)
			// te_i <= ts_j + M(1-y) + M·diff
			m.AddLE(fmt.Sprintf("no1_%d_%d", i, j),
				*milp.NewExpr(0).Add(te[i], 1).Add(ts[j], -1).Add(y, mA).Add(d, -mA), mA)
			// te_j <= ts_i + M·y + M·diff
			m.AddLE(fmt.Sprintf("no2_%d_%d", i, j),
				*milp.NewExpr(0).Add(te[j], 1).Add(ts[i], -1).Add(y, -mB).Add(d, -mB), 0)
		}
	}

	// (5) Makespan.
	for i := 0; i < n; i++ {
		m.AddLE(fmt.Sprintf("mk_%d", i), *milp.NewExpr(0).Add(te[i], 1).Add(tE, -1), 0)
	}

	// Objective (6): α·tE + β·Σ u.
	obj := milp.NewExpr(0).Add(tE, alpha)
	for _, u := range storage {
		obj.Add(u, beta)
	}
	m.SetObjective(*obj, milp.Minimize)

	// Warm start: the list-scheduler incumbent, challenged by a greedy
	// critical-path-first schedule built directly on the model semantics.
	// The better (feasible) incumbent wins; a tight incumbent is what lets
	// branch and bound prove optimality early — when it matches the root
	// relaxation bound, the whole tree collapses at the root.
	var warm []float64
	if opts.WarmStart {
		if opts.Pin != nil {
			// The incumbent came from the pinned list scheduler: its binding
			// must enter verbatim (relabeling would break the pin rows, and
			// the symmetry rows relabeling serves are gone) and the greedy
			// challenger knows nothing about pins.
			warm = pinnedWarmStart(m, g, incumbent, ts, te, assign, diff, order, storage, tE)
		} else {
			warm = buildWarmStart(m, g, incumbent, ts, te, assign, diff, order, storage, tE)
			gs, ge, gdev, gmk := greedyModelSchedule(g, opts, tail)
			gx := warmVector(m, g, gs, ge, gdev, gmk, ts, te, assign, diff, order, storage, tE)
			if gok, gobj := milp.CheckFeasible(m, gx); gok {
				if wok, wobj := milp.CheckFeasible(m, warm); !wok || gobj < wobj {
					warm = gx
				}
			}
		}
	}

	return &schedModel{
		m: m, ts: ts, te: te, assign: assign,
		diff: diff, order: order, storage: storage, tE: tE, warm: warm,
		conflicts: conflicts,
	}
}

// mustOverlapPairs returns every pair (i, j), i < j, of operations whose
// effective time boxes force their execution intervals to intersect in every
// feasible point: with ee_i = tsLo_i + dur_i the earliest end and
// ls_i = tsHi_i the latest start, the pair must overlap iff
// ee_i > ls_j and ee_j > ls_i (then te_i ≥ ee_i > ls_j ≥ ts_j and
// symmetrically, so the open intervals [ts, te) intersect). Zero-duration
// operations never overlap anything; directly adjacent pairs (a precedence
// edge in either direction) are skipped — a feasible model orders them, and
// a box-forced overlap there would just mean the model is already
// infeasible. Box-derived ancestors beyond direct edges can never satisfy
// the test: a path from i to j gives tsLo_j ≥ ee_i, hence ls_j ≥ ee_i.
func mustOverlapPairs(n int, tsLo, tsHi, dur []float64, adjacent func(i, j int) bool) [][2]int {
	var pairs [][2]int
	for i := 0; i < n; i++ {
		if dur[i] <= 0 {
			continue
		}
		for j := i + 1; j < n; j++ {
			if dur[j] <= 0 || adjacent(i, j) {
				continue
			}
			if tsLo[i]+dur[i] > tsHi[j] && tsLo[j]+dur[j] > tsHi[i] {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	return pairs
}

// greedyModelSchedule list-schedules the assay directly on the ILP model's
// semantics: ready operations by longest tail first (LPT on independent
// operations), each onto the device reaching the earliest start, transport
// charged only across devices. Unlike the storage-aware list scheduler it
// ignores flush/fetch slots — the model has none — so it often reaches a
// strictly better model makespan (on IVD it finds the perfect device
// partition the paper's objective asks for).
func greedyModelSchedule(g *seqgraph.Graph, opts ILPOptions, tail []float64) (start, end, dev []int, mk int) {
	n := g.NumOps()
	start = make([]int, n)
	end = make([]int, n)
	rawDev := make([]int, n)
	done := make([]bool, n)
	indeg := make([]int, n)
	for i := range indeg {
		indeg[i] = len(g.Parents(seqgraph.OpID(i)))
	}
	devFree := make([]int, opts.Devices)
	for placed := 0; placed < n; placed++ {
		pick := -1
		for i := 0; i < n; i++ {
			if done[i] || indeg[i] > 0 {
				continue
			}
			if pick < 0 || tail[i] > tail[pick] {
				pick = i
			}
		}
		bestD, bestS := 0, int(^uint(0)>>1)
		for k := 0; k < opts.Devices; k++ {
			s := devFree[k]
			for _, p := range g.Parents(seqgraph.OpID(pick)) {
				arr := end[p]
				if rawDev[p] != k {
					arr += opts.Transport
				}
				if arr > s {
					s = arr
				}
			}
			if s < bestS {
				bestD, bestS = k, s
			}
		}
		rawDev[pick], start[pick] = bestD, bestS
		end[pick] = bestS + g.Op(seqgraph.OpID(pick)).Duration
		devFree[bestD] = end[pick]
		done[pick] = true
		if end[pick] > mk {
			mk = end[pick]
		}
		for _, c := range g.Children(seqgraph.OpID(pick)) {
			indeg[c]--
		}
	}
	return start, end, relabelByFirstUse(n, rawDev), mk
}

// relabelByFirstUse renames devices in order of their first-using operation
// id, which is exactly what the model's symmetry-breaking rows s_{i,k} = 0
// for k > i require: after relabeling, the device of operation i is at most
// the index of its first user, which is at most i.
func relabelByFirstUse(n int, rawDev []int) []int {
	firstUse := make(map[int]int) // device -> first op id using it
	for i := 0; i < n; i++ {
		if _, seen := firstUse[rawDev[i]]; !seen {
			firstUse[rawDev[i]] = i
		}
	}
	olds := make([]int, 0, len(firstUse))
	for d := range firstUse {
		olds = append(olds, d)
	}
	sort.Slice(olds, func(a, b int) bool { return firstUse[olds[a]] < firstUse[olds[b]] })
	relabel := make(map[int]int, len(olds))
	for newIdx, old := range olds {
		relabel[old] = newIdx
	}
	dev := make([]int, n)
	for i := 0; i < n; i++ {
		dev[i] = relabel[rawDev[i]]
	}
	return dev
}

// warmVector assembles a model-variable assignment from per-op integer times
// and a device binding already relabeled for the symmetry-breaking rows.
func warmVector(m *milp.Model, g *seqgraph.Graph, start, end, dev []int, mk int,
	ts, te []milp.Var, assign [][]milp.Var,
	diff, order map[[2]int]milp.Var, storage []milp.Var, tE milp.Var) []float64 {

	x := make([]float64, m.NumVars())
	n := g.NumOps()
	for i := 0; i < n; i++ {
		x[ts[i].ID()] = float64(start[i])
		x[te[i].ID()] = float64(end[i])
		x[assign[i][dev[i]].ID()] = 1
	}
	x[tE.ID()] = float64(mk)
	for key, d := range diff {
		i, j := key[0], key[1]
		if dev[i] != dev[j] {
			x[d.ID()] = 1
		}
	}
	for key, y := range order {
		i, j := key[0], key[1]
		if dev[i] == dev[j] && end[i] <= start[j] {
			x[y.ID()] = 1
		} // else y=0 encodes j before i
	}
	for idx, e := range g.Edges() {
		i, j := int(e.Parent), int(e.Child)
		if dev[i] != dev[j] {
			if gap := start[j] - end[i]; gap > 0 {
				x[storage[idx].ID()] = float64(gap)
			}
		}
	}
	return x
}

// timeWindows computes, per operation, the earliest start es (the longest
// pure-duration ancestor path) and the tail (the operation's duration plus
// the longest pure-duration descendant path). Both ignore transport, so they
// bound every feasible schedule of the ILP model. g must be a validated DAG.
func timeWindows(g *seqgraph.Graph) (es, tail []float64) {
	n := g.NumOps()
	es = make([]float64, n)
	tail = make([]float64, n)
	topo, err := g.TopoOrder()
	if err != nil {
		// Validate ran before any caller; an error here means the graph
		// mutated mid-solve, which nothing upstream permits.
		panic(fmt.Sprintf("sched: time windows on invalid graph: %v", err))
	}
	for _, id := range topo {
		for _, p := range g.Parents(id) {
			if v := es[p] + float64(g.Op(p).Duration); v > es[id] {
				es[id] = v
			}
		}
	}
	for k := len(topo) - 1; k >= 0; k-- {
		id := topo[k]
		tail[id] = float64(g.Op(id).Duration)
		for _, c := range g.Children(id) {
			if v := float64(g.Op(id).Duration) + tail[c]; v > tail[id] {
				tail[id] = v
			}
		}
	}
	return es, tail
}

// buildWarmStart converts the incumbent list schedule into a full variable
// assignment satisfying every big-M constraint of the model.
func buildWarmStart(m *milp.Model, g *seqgraph.Graph, inc *Schedule,
	ts, te []milp.Var, assign [][]milp.Var,
	diff, order map[[2]int]milp.Var, storage []milp.Var, tE milp.Var) []float64 {

	n := g.NumOps()
	start := make([]int, n)
	end := make([]int, n)
	rawDev := make([]int, n)
	for i := 0; i < n; i++ {
		a := inc.Assignments[i]
		start[i], end[i], rawDev[i] = a.Start, a.End, a.Device
	}
	return warmVector(m, g, start, end, relabelByFirstUse(n, rawDev), inc.Makespan,
		ts, te, assign, diff, order, storage, tE)
}

// pinnedWarmStart is buildWarmStart for a pinned model: the incumbent's
// binding enters verbatim (no first-use relabeling — the pin rows fix
// concrete devices and the symmetry rows are absent).
func pinnedWarmStart(m *milp.Model, g *seqgraph.Graph, inc *Schedule,
	ts, te []milp.Var, assign [][]milp.Var,
	diff, order map[[2]int]milp.Var, storage []milp.Var, tE milp.Var) []float64 {

	n := g.NumOps()
	start := make([]int, n)
	end := make([]int, n)
	dev := make([]int, n)
	for i := 0; i < n; i++ {
		a := inc.Assignments[i]
		start[i], end[i], dev[i] = a.Start, a.End, a.Device
	}
	return warmVector(m, g, start, end, dev, inc.Makespan,
		ts, te, assign, diff, order, storage, tE)
}

// reconstruct re-times the ILP's binding and per-device order with the exact
// transport semantics (direct pass, flush, fetch slots) used by the list
// scheduler, guaranteeing a valid integral schedule.
func reconstruct(g *seqgraph.Graph, opts ILPOptions, sol *milp.Solution,
	ts []milp.Var, assign [][]milp.Var) *Schedule {

	n := g.NumOps()
	binding := make([]int, n)
	for i := 0; i < n; i++ {
		for k := 0; k < opts.Devices; k++ {
			if math.Round(sol.Value(assign[i][k])) == 1 {
				binding[i] = k
				break
			}
		}
	}
	// Global order by ILP start time (ties by ID), then greedy re-timing.
	// Under a pin only the suffix is re-timed: the pinned prefix is seeded
	// verbatim, so its operations never enter the order.
	var isPinned []bool
	if opts.Pin != nil {
		isPinned = opts.Pin.pinned(n)
	}
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if isPinned != nil && isPinned[i] {
			continue
		}
		ids = append(ids, i)
	}
	sort.Slice(ids, func(a, b int) bool {
		sa, sb := sol.Value(ts[ids[a]]), sol.Value(ts[ids[b]])
		if sa != sb {
			return sa < sb
		}
		return ids[a] < ids[b]
	})
	return retimePinned(g, opts.Devices, opts.Transport, binding, ids, opts.Pin, opts.Storage)
}

// RetimeLike re-schedules g by reusing a prior schedule's device binding and
// execution order wherever an operation (matched by name) still exists: the
// unchanged part of an edited assay keeps its proven binding, while edited or
// new operations are appended after it, bound to a parent's device when one
// is known. Timing is re-derived from scratch with the exact transport
// semantics, so the result is valid for the current graph whatever was edited
// — durations, dependencies, additions and removals included.
//
// This is the incremental re-synthesis primitive: the service layer feeds the
// result back into the exact solve as a warm start (ILPOptions.Warm) or
// races it against the list scheduler for heuristic engines.
func RetimeLike(g *seqgraph.Graph, prior *Schedule, devices, transport int) (*Schedule, error) {
	return RetimeLikeWith(g, prior, devices, transport, nil)
}

// RetimeLikeWith is RetimeLike under a storage model: the re-derived timing
// routes stored fluids per the model, so the result is feasible for that
// strategy. A nil model is the distributed behavior.
func RetimeLikeWith(g *seqgraph.Graph, prior *Schedule, devices, transport int, storage StorageModel) (*Schedule, error) {
	if devices < 1 {
		return nil, fmt.Errorf("sched: need at least one device, got %d", devices)
	}
	if transport < 1 {
		return nil, fmt.Errorf("sched: transport time must be >= 1, got %d", transport)
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	priorByName := make(map[string]Assignment, len(prior.Assignments))
	for _, a := range prior.Assignments {
		priorByName[prior.Graph.Op(a.Op).Name] = a
	}
	n := g.NumOps()
	binding := make([]int, n)
	prio := make([]int, n)
	known := make([]bool, n)
	maxPrio := 0
	for i := 0; i < n; i++ {
		if pa, ok := priorByName[g.Op(seqgraph.OpID(i)).Name]; ok && pa.Device < devices {
			binding[i], prio[i], known[i] = pa.Device, pa.Start, true
			if pa.Start > maxPrio {
				maxPrio = pa.Start
			}
		}
	}
	// New or re-deviced operations: schedule after the reused prefix, on a
	// parent's device when one is bound (avoiding a gratuitous transport),
	// else spread round-robin.
	next := 0
	for _, id := range topo {
		i := int(id)
		if known[i] {
			continue
		}
		prio[i] = maxPrio + 1
		binding[i] = -1
		for _, p := range g.Parents(id) {
			if binding[p] >= 0 {
				binding[i] = binding[p]
				break
			}
		}
		if binding[i] < 0 {
			binding[i] = next % devices
			next++
		}
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		if prio[ids[a]] != prio[ids[b]] {
			return prio[ids[a]] < prio[ids[b]]
		}
		return ids[a] < ids[b]
	})
	s := retimeOrdered(g, devices, transport, binding, ids, storage)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sched: retimed schedule invalid: %w", err)
	}
	return s, nil
}

// retimeOrdered greedily re-times a complete device binding along a global
// priority order with the exact transport semantics (direct pass, flush,
// fetch slots) shared with the list scheduler. Operations are placed
// first-ready-first along ids, so any order is safe even when it interleaves
// devices non-topologically. It is the unpinned face of retimePinned.
func retimeOrdered(g *seqgraph.Graph, devices, transport int, binding []int, ids []int, storage StorageModel) *Schedule {
	return retimePinned(g, devices, transport, binding, ids, nil, storage)
}
