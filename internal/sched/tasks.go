package sched

import (
	"fmt"
	"sort"

	"flowsyn/internal/seqgraph"
)

// TaskKind distinguishes the two ways an intermediate fluid travels.
type TaskKind int

const (
	// Direct moves a fluid from the parent's device straight to the child's
	// device; the transportation path is occupied for the whole window.
	Direct TaskKind = iota
	// Stored moves the fluid out of the parent's device into a channel
	// segment, caches it there, and fetches it to the child's device later —
	// the paper's distributed channel storage (three sub-paths p_{r,1},
	// p_{r,2}, p_{r,3} of Section 3.2).
	Stored
)

// String names the task kind.
func (k TaskKind) String() string {
	if k == Stored {
		return "stored"
	}
	return "direct"
}

// IOKind marks chip-boundary transports (reagent loading, product shipping).
type IOKind int

const (
	// Internal tasks move intermediate fluids between devices.
	Internal IOKind = iota
	// Load brings external reagents/samples from the input port to a device
	// just before an operation starts.
	Load
	// Unload ships a final product from its device to the output port.
	Unload
)

// Task is one transportation requirement extracted from a schedule.
type Task struct {
	// Edge is the producing/consuming dependency (for Internal tasks). For
	// Load/Unload tasks both ends name the loaded/unloaded operation.
	Edge seqgraph.Edge
	// IO marks boundary transports.
	IO IOKind
	// From and To are the parent's and child's devices; for IO tasks one
	// side is the input/output port pseudo-device index chosen by the
	// caller.
	From, To int
	// Kind selects which window set below is meaningful.
	Kind TaskKind

	// Unit marks a Stored task whose fluid waits in the dedicated storage
	// unit instead of a channel segment (dedicated/hybrid strategies): the
	// store transport runs [OutStart, OutEnd), the fluid occupies a unit
	// cell during [OutEnd, FetchStart), and the fetch transport runs
	// [FetchStart, FetchEnd). Unit tasks claim no storage channel.
	Unit bool

	// Direct tasks: the path from From to To is live during [Depart, Arrive).
	Depart, Arrive int

	// Stored tasks: move-out [OutStart, OutEnd), caching [OutEnd,
	// FetchStart), fetch [FetchStart, FetchEnd).
	OutStart, OutEnd     int
	FetchStart, FetchEnd int
}

// CacheDuration returns how long the fluid sits in its storage segment
// (zero for direct tasks).
func (t Task) CacheDuration() int {
	if t.Kind != Stored {
		return 0
	}
	return t.FetchStart - t.OutEnd
}

// String renders the task for logs.
func (t Task) String() string {
	if t.Kind == Direct {
		return fmt.Sprintf("direct %d->%d [%d,%d)", t.From, t.To, t.Depart, t.Arrive)
	}
	where := "cache"
	if t.Unit {
		where = "unit"
	}
	return fmt.Sprintf("stored %d->%d out[%d,%d) %s[%d,%d) fetch[%d,%d)",
		t.From, t.To, t.OutStart, t.OutEnd, where, t.OutEnd, t.FetchStart, t.FetchStart, t.FetchEnd)
}

// Tasks derives all transportation requirements of the schedule.
//
// For every dependency edge (i, j):
//
//   - If both operations run on the same device and no other operation uses
//     that device between them, the fluid never leaves the device (the
//     "takes the result directly" case of the paper's Fig. 2) — no task.
//   - Otherwise, if the gap t^s_j − t^e_i is at most u_c, the fluid travels
//     directly (window [t^e_i, t^s_j)).
//   - Otherwise it is a Stored task: moved out right after the parent ends
//     (⌈u_c/2⌉), cached in a channel segment, and fetched just before the
//     child starts (u_c − ⌈u_c/2⌉). These are the store/fetch blocks in the
//     paper's Fig. 2(b)/(c).
//
// Tasks are returned ordered by the time their first movement starts.
func (s *Schedule) Tasks() []Task {
	g := s.Graph
	perDevice := s.byDevice()
	intervening := func(dev, from, to int) bool {
		for _, a := range perDevice[dev] {
			if a.Start >= from && a.Start < to {
				return true
			}
		}
		return false
	}

	outLen := (s.Transport + 1) / 2
	fetchLen := s.Transport - outLen

	// First pass: classify each transported edge and compute departures.
	var tasks []Task
	storedByChild := make(map[seqgraph.OpID][]int) // child -> task indices
	for _, e := range g.Edges() {
		p, c := s.Assignments[e.Parent], s.Assignments[e.Child]
		if w, ok := s.UnitWindows[e]; ok {
			// The scheduler routed this fluid through the dedicated unit:
			// its windows are the granted port transports, full u_c each —
			// no squeeze and no sibling staggering (the port timeline
			// already serializes every access).
			tasks = append(tasks, Task{
				Edge: e, From: p.Device, To: c.Device,
				Kind: Stored, Unit: true,
				OutStart: w.StoreStart, OutEnd: w.StoreStart + s.Transport,
				FetchStart: w.FetchStart, FetchEnd: w.FetchStart + s.Transport,
			})
			continue
		}
		sameDev := p.Device == c.Device
		if sameDev && !intervening(p.Device, p.End, c.Start) {
			continue // result stays inside the device
		}
		depart := p.End + s.DepartOffset(e)
		if depart > c.Start-1 {
			depart = c.Start - 1 // defensive clamp for hand-built schedules
		}
		gap := c.Start - depart
		t := Task{Edge: e, From: p.Device, To: c.Device}
		if !sameDev && gap <= s.Transport {
			t.Kind = Direct
			t.Depart, t.Arrive = depart, c.Start
		} else {
			// Same-device round trips are always Stored (the fluid must
			// leave the device and come back); squeeze the move windows if
			// the gap is tighter than a full u_c.
			o, f := outLen, fetchLen
			if gap < o+f {
				o = gap / 2
				f = gap - o
			}
			t.Kind = Stored
			t.OutStart, t.OutEnd = depart, depart+o
			t.FetchStart, t.FetchEnd = c.Start-f, c.Start
			storedByChild[e.Child] = append(storedByChild[e.Child], len(tasks))
		}
		tasks = append(tasks, t)
	}

	// Second pass: a consumer with several cached inputs fetches them one
	// after the other (its device admits one sample at a time), so sibling
	// fetch windows are staggered backward from the child's start.
	for _, idxs := range storedByChild {
		if len(idxs) < 2 {
			continue
		}
		sort.Slice(idxs, func(a, b int) bool {
			ta, tb := tasks[idxs[a]], tasks[idxs[b]]
			if ta.OutStart != tb.OutStart {
				return ta.OutStart < tb.OutStart
			}
			return ta.Edge.Parent < tb.Edge.Parent
		})
		// The last-departing sample fetches last (closest to the start).
		for rank, i := range idxs {
			t := &tasks[i]
			shift := (len(idxs) - 1 - rank) * fetchLen
			fe := t.FetchEnd - shift
			fs := fe - (t.FetchEnd - t.FetchStart)
			if fs < t.OutEnd {
				fs = t.OutEnd
			}
			if fs >= fe {
				fs = fe - 1
				if fs < t.OutStart {
					fs = t.OutStart
				}
				if t.OutEnd > fs {
					t.OutEnd = fs
				}
			}
			t.FetchStart, t.FetchEnd = fs, fe
		}
	}
	sort.SliceStable(tasks, func(i, j int) bool {
		si, sj := tasks[i].startTime(), tasks[j].startTime()
		if si != sj {
			return si < sj
		}
		return tasks[i].Edge.Parent < tasks[j].Edge.Parent
	})
	return tasks
}

func (t Task) startTime() int {
	if t.Kind == Direct {
		return t.Depart
	}
	return t.OutStart
}

// IOTasks derives the chip-boundary transports of the schedule: one Load per
// operation with external inputs (arriving in the last move-in slot before
// the operation starts) and one Unload per sink operation (departing right
// after it ends). inPort and outPort are the pseudo-device indices the
// caller assigned to the chip's input and output ports.
func (s *Schedule) IOTasks(inPort, outPort int) []Task {
	g := s.Graph
	outLen := (s.Transport + 1) / 2
	fetchLen := s.Transport - outLen
	var loads, unloads []Task
	for _, op := range g.Operations() {
		a := s.Assignments[op.ID]
		if op.Inputs > 0 {
			loads = append(loads, Task{
				Edge: seqgraph.Edge{Parent: op.ID, Child: op.ID},
				IO:   Load,
				From: inPort, To: a.Device,
				Kind:   Direct,
				Depart: a.Start - fetchLen, Arrive: a.Start,
			})
		}
		if len(g.Children(op.ID)) == 0 {
			unloads = append(unloads, Task{
				Edge: seqgraph.Edge{Parent: op.ID, Child: op.ID},
				IO:   Unload,
				From: a.Device, To: outPort,
				Kind:   Direct,
				Depart: a.End, Arrive: a.End + outLen,
			})
		}
	}

	// All loads share the single input port, so their windows are
	// serialized: a load whose window would overlap the next one's is
	// shifted earlier (the reagent simply arrives a little before its
	// operation needs it). Unloads shift later symmetrically.
	sort.SliceStable(loads, func(i, j int) bool {
		if loads[i].Arrive != loads[j].Arrive {
			return loads[i].Arrive < loads[j].Arrive
		}
		return loads[i].Edge.Parent < loads[j].Edge.Parent
	})
	for i := len(loads) - 2; i >= 0; i-- {
		if loads[i].Arrive > loads[i+1].Depart {
			loads[i].Arrive = loads[i+1].Depart
			loads[i].Depart = loads[i].Arrive - fetchLen
		}
	}
	// Clamp at time zero: the earliest loads may be squeezed.
	for i := range loads {
		if loads[i].Depart < 0 {
			loads[i].Depart = 0
		}
		if loads[i].Arrive <= loads[i].Depart {
			loads[i].Arrive = loads[i].Depart + 1
		}
	}
	sort.SliceStable(unloads, func(i, j int) bool {
		if unloads[i].Depart != unloads[j].Depart {
			return unloads[i].Depart < unloads[j].Depart
		}
		return unloads[i].Edge.Parent < unloads[j].Edge.Parent
	})
	for i := 1; i < len(unloads); i++ {
		if unloads[i].Depart < unloads[i-1].Arrive {
			unloads[i].Depart = unloads[i-1].Arrive
			unloads[i].Arrive = unloads[i].Depart + outLen
		}
	}

	tasks := append(loads, unloads...)
	sort.SliceStable(tasks, func(i, j int) bool {
		if tasks[i].Depart != tasks[j].Depart {
			return tasks[i].Depart < tasks[j].Depart
		}
		return tasks[i].Edge.Parent < tasks[j].Edge.Parent
	})
	return tasks
}

// StoreCount returns the number of Stored tasks — the "store operations" the
// paper counts in Fig. 2.
func (s *Schedule) StoreCount() int {
	n := 0
	for _, t := range s.Tasks() {
		if t.Kind == Stored {
			n++
		}
	}
	return n
}

// StorageCapacity returns the maximum number of fluids cached simultaneously:
// the required capacity of a storage system for this schedule (three for the
// paper's Fig. 2(b) schedule, two for Fig. 2(c)).
func (s *Schedule) StorageCapacity() int {
	type event struct {
		t, delta int
	}
	var evs []event
	for _, t := range s.Tasks() {
		if t.Kind != Stored {
			continue
		}
		evs = append(evs, event{t.OutEnd, +1}, event{t.FetchStart, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].delta < evs[j].delta // fetch before store at equal time
	})
	cur, max := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

// UnitCells returns the peak number of fluids resident in the dedicated
// storage unit simultaneously — the cell count its mux must address. Zero
// for distributed schedules and for strategy schedules that never stored.
func (s *Schedule) UnitCells() int {
	return s.storagePeak(func(t Task) bool { return t.Unit })
}

// ChannelPeak returns the peak number of fluids cached in channel segments
// simultaneously (excluding the dedicated unit) — the quantity a hybrid
// strategy's slot bound constrains.
func (s *Schedule) ChannelPeak() int {
	return s.storagePeak(func(t Task) bool { return !t.Unit })
}

func (s *Schedule) storagePeak(keep func(Task) bool) int {
	type event struct {
		t, delta int
	}
	var evs []event
	for _, t := range s.Tasks() {
		if t.Kind != Stored || !keep(t) {
			continue
		}
		evs = append(evs, event{t.OutEnd, +1}, event{t.FetchStart, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].delta < evs[j].delta
	})
	cur, max := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

// CapacityProfile returns the number of cached fluids at each second from 0
// to the makespan (inclusive); index t holds the count during [t, t+1).
func (s *Schedule) CapacityProfile() []int {
	prof := make([]int, s.Makespan+1)
	for _, t := range s.Tasks() {
		if t.Kind != Stored {
			continue
		}
		for x := t.OutEnd; x < t.FetchStart && x < len(prof); x++ {
			prof[x]++
		}
	}
	return prof
}
