package sched

import (
	"testing"

	"flowsyn/internal/assay"
)

func TestIOTasksCoverage(t *testing.T) {
	b := assay.MustGet("PCR")
	s, err := ListSchedule(b.Graph, ListOptions{Devices: 1, Transport: 10, Mode: TimeAndStorage})
	if err != nil {
		t.Fatal(err)
	}
	tasks := s.IOTasks(1, 2)
	loads, unloads := 0, 0
	for _, task := range tasks {
		switch task.IO {
		case Load:
			loads++
			if task.From != 1 {
				t.Errorf("load from %d, want input port 1", task.From)
			}
			a := s.Assignments[task.Edge.Child]
			if task.Arrive > a.Start {
				t.Errorf("load for %s arrives at %d after start %d",
					s.Graph.Op(task.Edge.Child).Name, task.Arrive, a.Start)
			}
		case Unload:
			unloads++
			if task.To != 2 {
				t.Errorf("unload to %d, want output port 2", task.To)
			}
			a := s.Assignments[task.Edge.Parent]
			if task.Depart < a.End {
				t.Errorf("unload for %s departs at %d before end %d",
					s.Graph.Op(task.Edge.Parent).Name, task.Depart, a.End)
			}
		default:
			t.Errorf("IOTasks returned an internal task: %v", task)
		}
	}
	// PCR: o1..o4 take external inputs; o7 is the only sink.
	if loads != 4 {
		t.Errorf("loads = %d, want 4", loads)
	}
	if unloads != 1 {
		t.Errorf("unloads = %d, want 1", unloads)
	}
}

func TestIOTasksLoadsSerialized(t *testing.T) {
	// IVD on two devices has simultaneous operation starts; loads through
	// the single input port must not overlap each other.
	b := assay.MustGet("IVD")
	s, err := ListSchedule(b.Graph, ListOptions{Devices: 2, Transport: 10, Mode: TimeAndStorage})
	if err != nil {
		t.Fatal(err)
	}
	tasks := s.IOTasks(2, 3)
	var loads, unloads []Task
	for _, task := range tasks {
		if task.IO == Load {
			loads = append(loads, task)
		} else {
			unloads = append(unloads, task)
		}
	}
	// Serialization cannot push loads before t=0, so operations that start
	// at the very beginning may legitimately load in parallel — but never
	// more than the port's spare channels (degree 3 minus one through
	// lane), and never after the clamp region.
	checkConcurrency := func(list []Task, label string) {
		for i := 0; i < len(list); i++ {
			over := 0
			for j := 0; j < len(list); j++ {
				if j == i {
					continue
				}
				a, b := list[i], list[j]
				if a.Depart < b.Arrive && b.Depart < a.Arrive {
					over++
					if a.Depart > 0 && b.Depart > 0 {
						t.Errorf("%s windows overlap after t=0: [%d,%d) and [%d,%d)",
							label, a.Depart, a.Arrive, b.Depart, b.Arrive)
					}
				}
			}
			if over > 2 {
				t.Errorf("%s window [%d,%d) overlaps %d others (> port capacity)",
					label, list[i].Depart, list[i].Arrive, over)
			}
		}
	}
	checkConcurrency(loads, "load")
	checkConcurrency(unloads, "unload")
	if len(loads) != 12 || len(unloads) != 12 {
		t.Errorf("IVD: %d loads, %d unloads; want 12 each", len(loads), len(unloads))
	}
	for _, task := range tasks {
		if task.Depart < 0 || task.Arrive <= task.Depart {
			t.Errorf("degenerate I/O window: %v", task)
		}
	}
}

func TestDepartOffsetsSerializeFanOut(t *testing.T) {
	// An op with several transported consumers must emit them at distinct,
	// transport-separated offsets.
	g := assay.Random(30, 5, 1)
	s, err := ListSchedule(g, ListOptions{Devices: 5, Transport: 10, Mode: TimeAndStorage})
	if err != nil {
		t.Fatal(err)
	}
	byParent := make(map[int][]int)
	for e, off := range s.DepartOffsets {
		byParent[int(e.Parent)] = append(byParent[int(e.Parent)], off)
		if off%s.Transport != 0 {
			t.Errorf("offset %d is not a multiple of u_c", off)
		}
	}
	for p, offs := range byParent {
		seen := map[int]bool{}
		for _, off := range offs {
			if seen[off] {
				t.Errorf("parent %d has two departures at offset %d", p, off)
			}
			seen[off] = true
		}
	}
}

func TestTaskStringAndKind(t *testing.T) {
	if Direct.String() != "direct" || Stored.String() != "stored" {
		t.Error("TaskKind strings wrong")
	}
	d := Task{Kind: Direct, From: 0, To: 1, Depart: 5, Arrive: 15}
	if d.String() == "" || d.CacheDuration() != 0 {
		t.Error("direct task rendering/cache wrong")
	}
	st := Task{Kind: Stored, OutStart: 0, OutEnd: 5, FetchStart: 50, FetchEnd: 55}
	if st.CacheDuration() != 45 {
		t.Errorf("cache duration = %d, want 45", st.CacheDuration())
	}
	if st.String() == "" {
		t.Error("stored task rendering empty")
	}
}
