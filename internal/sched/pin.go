package sched

import (
	"fmt"
	"sort"

	"flowsyn/internal/seqgraph"
)

// Pin freezes the executed prefix of a running assay for online recovery:
// operations already started keep their exact devices and time windows, the
// departure slots their inputs used are kept verbatim, no re-planned work may
// start before the fault-detection instant, and forbidden (failed) devices
// accept no new operations. Both scheduling engines honor a Pin — the list
// scheduler and the MILP formulation — so recovery keeps the full engine
// portfolio.
type Pin struct {
	// Time is the fault-detection instant: no re-planned operation starts,
	// and no re-planned sample departs its producer, before it.
	Time int
	// Assignments fixes the executed operations verbatim. The set must be
	// ancestor-closed (every parent of a pinned operation is pinned) — true
	// by construction for any prefix cut at a start-time threshold, since
	// parents start before their children.
	Assignments []Assignment
	// DepartOffsets preserves the departure slots of edges into pinned
	// consumers: those transports completed before Time, so re-deriving the
	// schedule's task set must reproduce them byte-identically.
	DepartOffsets map[seqgraph.Edge]int
	// UnitWindows preserves the dedicated-unit port grants of edges into
	// pinned consumers (dedicated/hybrid storage strategies): those
	// store/fetch transports completed before Time, so the re-planned
	// schedule reproduces them verbatim and keeps their port time reserved.
	UnitWindows map[seqgraph.Edge]UnitWindow
	// Forbidden marks devices that accept no re-planned operations (a failed
	// chamber). Pinned assignments on a forbidden device stay: the fault
	// cannot undo work the device already did.
	Forbidden map[int]bool
}

// pinned returns a per-op membership table for the pinned set.
func (p *Pin) pinned(n int) []bool {
	out := make([]bool, n)
	for _, a := range p.Assignments {
		if int(a.Op) >= 0 && int(a.Op) < n {
			out[a.Op] = true
		}
	}
	return out
}

// Validate checks the pin against the graph it will constrain.
func (p *Pin) Validate(g *seqgraph.Graph, devices int) error {
	if p.Time < 0 {
		return fmt.Errorf("sched: pin time %d is negative", p.Time)
	}
	n := g.NumOps()
	seen := make([]bool, n)
	for _, a := range p.Assignments {
		if int(a.Op) < 0 || int(a.Op) >= n {
			return fmt.Errorf("sched: pin names unknown op %d", a.Op)
		}
		op := g.Op(a.Op)
		if seen[a.Op] {
			return fmt.Errorf("sched: op %s pinned twice", op.Name)
		}
		seen[a.Op] = true
		if a.Device < 0 || a.Device >= devices {
			return fmt.Errorf("sched: op %s pinned to invalid device %d", op.Name, a.Device)
		}
		if a.Start < 0 || a.Start >= p.Time {
			return fmt.Errorf("sched: op %s pinned at start %d outside executed prefix [0,%d)",
				op.Name, a.Start, p.Time)
		}
		if a.End-a.Start != op.Duration {
			return fmt.Errorf("sched: op %s pinned with window %d..%d but duration %d",
				op.Name, a.Start, a.End, op.Duration)
		}
	}
	for _, e := range g.Edges() {
		if seen[e.Child] && !seen[e.Parent] {
			return fmt.Errorf("sched: pin not ancestor-closed: %s pinned but parent %s is not",
				g.Op(e.Child).Name, g.Op(e.Parent).Name)
		}
	}
	for e := range p.DepartOffsets {
		if int(e.Parent) < 0 || int(e.Parent) >= n || int(e.Child) < 0 || int(e.Child) >= n {
			return fmt.Errorf("sched: pin departure offset on unknown edge %d->%d", e.Parent, e.Child)
		}
		if !seen[e.Child] {
			return fmt.Errorf("sched: pin departure offset on edge %s->%s whose consumer is not pinned",
				g.Op(e.Parent).Name, g.Op(e.Child).Name)
		}
	}
	for e := range p.UnitWindows {
		if int(e.Parent) < 0 || int(e.Parent) >= n || int(e.Child) < 0 || int(e.Child) >= n {
			return fmt.Errorf("sched: pin unit window on unknown edge %d->%d", e.Parent, e.Child)
		}
		if !seen[e.Child] {
			return fmt.Errorf("sched: pin unit window on edge %s->%s whose consumer is not pinned",
				g.Op(e.Parent).Name, g.Op(e.Child).Name)
		}
	}
	free := 0
	for k := 0; k < devices; k++ {
		if !p.Forbidden[k] {
			free++
		}
	}
	if free == 0 {
		return fmt.Errorf("sched: pin forbids all %d devices", devices)
	}
	return nil
}

// seed installs the pinned prefix into a schedule under construction and
// initializes the scheduler state around it: done flags, per-device frontiers
// (free time and last-executed op), and the next departure instant per pinned
// producer — floored at the pin time, since any re-planned sample leaves its
// device only after the fault was detected.
func (p *Pin) seed(s *Schedule, done []bool, nextDepart, deviceFree []int, lastOp []seqgraph.OpID, transport int) {
	lastStart := make([]int, len(deviceFree))
	for d := range lastStart {
		lastStart[d] = -1
	}
	for _, a := range p.Assignments {
		s.Assignments[a.Op] = a
		done[a.Op] = true
		nextDepart[a.Op] = a.End
		if a.End > deviceFree[a.Device] {
			deviceFree[a.Device] = a.End
		}
		if a.Start > lastStart[a.Device] {
			lastStart[a.Device] = a.Start
			lastOp[a.Device] = a.Op
		}
	}
	for e, off := range p.DepartOffsets {
		s.DepartOffsets[e] = off
		// The slot after this preserved departure completes.
		if v := s.Assignments[e.Parent].End + off + transport; v > nextDepart[e.Parent] {
			nextDepart[e.Parent] = v
		}
	}
	for _, a := range p.Assignments {
		if nextDepart[a.Op] < p.Time {
			nextDepart[a.Op] = p.Time
		}
	}
}

// RetimePinned re-times a prior schedule of g around a pinned prefix: pinned
// operations keep their windows and devices verbatim, every other operation
// keeps its prior device (unless that device is now forbidden — then it moves
// to a parent's allowed device, or round-robin over the allowed set) and its
// prior relative order, with timing re-derived from scratch under the exact
// transport semantics. This is the recovery counterpart of RetimeLike: the
// prior plan's proven structure survives the fault wherever it legally can.
func RetimePinned(g *seqgraph.Graph, prior *Schedule, pin *Pin, devices, transport int) (*Schedule, error) {
	return RetimePinnedWith(g, prior, pin, devices, transport, nil)
}

// RetimePinnedWith is RetimePinned under a storage model: the re-derived
// timing routes stored fluids per the model (unit port grants, bounded
// channel cache), so the result is feasible for that strategy. A nil model
// is the distributed behavior.
func RetimePinnedWith(g *seqgraph.Graph, prior *Schedule, pin *Pin, devices, transport int, storage StorageModel) (*Schedule, error) {
	if devices < 1 {
		return nil, fmt.Errorf("sched: need at least one device, got %d", devices)
	}
	if transport < 1 {
		return nil, fmt.Errorf("sched: transport time must be >= 1, got %d", transport)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := pin.Validate(g, devices); err != nil {
		return nil, err
	}
	n := g.NumOps()
	if len(prior.Assignments) != n {
		return nil, fmt.Errorf("sched: prior schedule has %d assignments for %d operations",
			len(prior.Assignments), n)
	}
	var allowed []int
	for k := 0; k < devices; k++ {
		if !pin.Forbidden[k] {
			allowed = append(allowed, k)
		}
	}
	isPinned := pin.pinned(n)
	binding := make([]int, n)
	var ids []int
	next := 0
	for i := 0; i < n; i++ {
		if isPinned[i] {
			binding[i] = prior.Assignments[i].Device
			continue
		}
		ids = append(ids, i)
		d := prior.Assignments[i].Device
		if d >= 0 && d < devices && !pin.Forbidden[d] {
			binding[i] = d
			continue
		}
		// Evicted from a failed device: prefer a parent's surviving device
		// (saves a transport), else spread over the allowed set.
		binding[i] = -1
		for _, p := range g.Parents(seqgraph.OpID(i)) {
			pd := prior.Assignments[p].Device
			if pd >= 0 && pd < devices && !pin.Forbidden[pd] {
				binding[i] = pd
				break
			}
		}
		if binding[i] < 0 {
			binding[i] = allowed[next%len(allowed)]
			next++
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		sa, sb := prior.Assignments[ids[a]].Start, prior.Assignments[ids[b]].Start
		if sa != sb {
			return sa < sb
		}
		return ids[a] < ids[b]
	})
	s := retimePinned(g, devices, transport, binding, ids, pin, storage)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sched: pinned retime invalid: %w", err)
	}
	return s, nil
}

// retimePinned greedily re-times a complete device binding along a global
// priority order with the exact transport semantics (direct pass, flush,
// fetch slots) shared with the list scheduler. Operations are placed
// first-ready-first along ids, so any order is safe even when it interleaves
// devices non-topologically. With a non-nil pin, the pinned prefix is
// installed verbatim first, ids must cover exactly the unpinned operations,
// and every placement (and departure) is floored at the pin time. With a
// non-distributed storage model, stored fluids are routed per the model
// (unit port grants, bounded channel cache) so the result is
// strategy-feasible — this is what makes ILP reconstruction and warm-start
// retiming honor the strategy.
func retimePinned(g *seqgraph.Graph, devices, transport int, binding []int, ids []int, pin *Pin, storage StorageModel) *Schedule {
	n := g.NumOps()
	outLen := (transport + 1) / 2
	fetchLen := transport - outLen
	s := &Schedule{
		Graph:         g,
		Devices:       devices,
		Transport:     transport,
		Assignments:   make([]Assignment, n),
		DepartOffsets: make(map[seqgraph.Edge]int),
	}
	// nextDepart[p] is the absolute instant the next sub-sample may leave p's
	// device: p's end, then one move-out slot later per transported consumer
	// already placed (the serialized fan-out the paper's channel exclusivity
	// forces). The recorded offset is nextDepart − end, which reduces to the
	// classic k·u_c ladder when nothing is pinned.
	nextDepart := make([]int, n)
	deviceFree := make([]int, devices)
	lastOp := make([]seqgraph.OpID, devices)
	for d := range lastOp {
		lastOp[d] = -1
	}
	done := make([]bool, n)
	st := newStorageState(storage, transport)
	floor := 0
	if pin != nil {
		floor = pin.Time
		pin.seed(s, done, nextDepart, deviceFree, lastOp, transport)
		if st.active() {
			for e, w := range pin.UnitWindows {
				st.seedUnit(e, w)
			}
		}
	}
	pending := append([]int(nil), ids...)
	for len(pending) > 0 {
		// Pick the first pending op whose parents are all placed (the ILP
		// order is topological on each device but the global order may
		// interleave; this keeps reconstruction safe).
		pick := -1
		for idx, op := range pending {
			ok := true
			for _, p := range g.Parents(seqgraph.OpID(op)) {
				if !done[p] {
					ok = false
					break
				}
			}
			if ok {
				pick = idx
				break
			}
		}
		op := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)

		k := binding[op]
		start := deviceFree[k]
		direct := seqgraph.OpID(-1)
		if lastOp[k] >= 0 {
			for _, p := range g.Parents(seqgraph.OpID(op)) {
				if p == lastOp[k] {
					direct = p
					break
				}
			}
			if direct < 0 {
				if v := s.Assignments[lastOp[k]].End + outLen; v > start {
					start = v
				}
			}
		}
		if start < floor {
			start = floor
		}
		fetches, maxArr := 0, 0
		var plans []parentPlan
		for _, p := range g.Parents(seqgraph.OpID(op)) {
			arr := s.Assignments[p].End
			if p != direct {
				plan := st.planParent(seqgraph.Edge{Parent: p, Child: seqgraph.OpID(op)}, nextDepart[p], start)
				plan = st.commitParent(plan, start)
				arr = plan.arrival
				if !plan.unit {
					fetches++
				}
				plans = append(plans, plan)
			}
			if arr > maxArr {
				maxArr = arr
			}
		}
		start += fetches * fetchLen
		if maxArr > start {
			start = maxArr
		}
		start = st.commitResidents(plans, start)
		dur := g.Op(seqgraph.OpID(op)).Duration
		s.Assignments[op] = Assignment{Op: seqgraph.OpID(op), Device: k, Start: start, End: start + dur}
		deviceFree[k] = start + dur
		nextDepart[op] = start + dur
		for _, p := range g.Parents(seqgraph.OpID(op)) {
			if p == direct {
				continue
			}
			s.DepartOffsets[seqgraph.Edge{Parent: p, Child: seqgraph.OpID(op)}] = nextDepart[p] - s.Assignments[p].End
			nextDepart[p] += transport
		}
		lastOp[k] = seqgraph.OpID(op)
		done[op] = true
	}
	st.install(s)
	s.computeMakespan()
	if pin == nil && !st.active() {
		// Compacting would move pinned windows (or slide producers past
		// their granted unit store windows); recovery and strategy
		// schedules keep the greedy placement instead.
		Compact(s)
	}
	return s
}
