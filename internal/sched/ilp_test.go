package sched

import (
	"testing"
	"time"

	"flowsyn/internal/assay"
	"flowsyn/internal/milp"
	"flowsyn/internal/seqgraph"
)

// chain3 is a three-op pipeline: a -> b -> c.
func chain3() *seqgraph.Graph {
	g := seqgraph.New("chain3")
	a := g.MustAddOperation("a", seqgraph.Mix, 10, 2)
	b := g.MustAddOperation("b", seqgraph.Mix, 20, 0)
	c := g.MustAddOperation("c", seqgraph.Mix, 15, 0)
	g.MustAddDependency(a, b)
	g.MustAddDependency(b, c)
	return g
}

func TestILPChainOneDevice(t *testing.T) {
	g := chain3()
	s, info, err := ILPSchedule(g, ILPOptions{Devices: 1, Transport: 5, WarmStart: true, TimeLimit: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Pure chain on one device: direct passes, makespan = 45.
	if s.Makespan != 45 {
		t.Errorf("makespan = %d, want 45 (direct-pass chain)", s.Makespan)
	}
	if info.ModelStats.Vars == 0 {
		t.Error("missing model stats")
	}
}

func TestILPParallelTwoDevices(t *testing.T) {
	// Two independent ops of 30s: with two devices both run at t=0.
	g := seqgraph.New("par")
	g.MustAddOperation("a", seqgraph.Mix, 30, 2)
	g.MustAddOperation("b", seqgraph.Mix, 30, 2)
	s, _, err := ILPSchedule(g, ILPOptions{Devices: 2, Transport: 5, WarmStart: true, TimeLimit: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 30 {
		t.Errorf("makespan = %d, want 30", s.Makespan)
	}
	if s.Device(0) == s.Device(1) {
		t.Error("independent ops should use both devices")
	}
}

func TestILPRespectsNonOverlap(t *testing.T) {
	// Two independent ops, one device: must serialize, makespan >= 60.
	g := seqgraph.New("serial")
	g.MustAddOperation("a", seqgraph.Mix, 30, 2)
	g.MustAddOperation("b", seqgraph.Mix, 30, 2)
	s, _, err := ILPSchedule(g, ILPOptions{Devices: 1, Transport: 5, WarmStart: true, TimeLimit: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan < 60 {
		t.Errorf("makespan = %d, want >= 60 on a single device", s.Makespan)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestILPPCRSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("ILP on PCR is slow in -short mode")
	}
	g := assay.PCR()
	s, info, err := ILPSchedule(g, ILPOptions{
		Devices: 2, Transport: 10, WarmStart: true, TimeLimit: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Never worse than the warm-start incumbent.
	inc, err := ListSchedule(g, ListOptions{Devices: 2, Transport: 10, Mode: TimeAndStorage})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan > inc.Makespan {
		t.Errorf("ILP makespan %d worse than incumbent %d (status %v)",
			s.Makespan, inc.Makespan, info.Status)
	}
}

func TestILPTimeLimitFallsBack(t *testing.T) {
	g := assay.MustGet("RA30").Graph
	s, info, err := ILPSchedule(g, ILPOptions{
		Devices: 3, Transport: 10, WarmStart: true, TimeLimit: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if info.Status == milp.StatusOptimal {
		t.Logf("note: RA30 solved to optimality surprisingly fast (%v)", info.Runtime)
	}
}

func TestILPErrors(t *testing.T) {
	g := chain3()
	if _, _, err := ILPSchedule(g, ILPOptions{Devices: 0, Transport: 5}); err == nil {
		t.Error("zero devices accepted")
	}
	if _, _, err := ILPSchedule(g, ILPOptions{Devices: 1, Transport: 0}); err == nil {
		t.Error("zero transport accepted")
	}
}

func TestILPBetaZeroMode(t *testing.T) {
	g := chain3()
	s, _, err := ILPSchedule(g, ILPOptions{
		Devices: 2, Transport: 5, Beta: -1, WarmStart: true, TimeLimit: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

// TestILPIVDProvesOptimal pins the headline capability this solver
// generation added: the IVD benchmark (12 independent mixing operations on
// two devices) was a 20-second time-limit fallback with an 83% gap under the
// dense-kernel solver; with the sparse LU kernel, the tightened formulation
// and the greedy model warm start it must prove optimality at the root in
// well under a second.
func TestILPIVDProvesOptimal(t *testing.T) {
	b, err := assay.Get("IVD")
	if err != nil {
		t.Fatal(err)
	}
	s, info, err := ILPSchedule(b.Graph, ILPOptions{
		Devices: b.Devices, Transport: b.Transport,
		TimeLimit: 10 * time.Second, WarmStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != milp.StatusOptimal {
		t.Fatalf("status = %v (gap %.4f), want optimal", info.Status, info.Solver.Gap)
	}
	if info.Solver.Gap != 0 {
		t.Errorf("gap = %v, want 0 for a full proof", info.Solver.Gap)
	}
	// The model optimum is the perfect 270 s device partition; the realized
	// schedule pays the stricter flush semantics on top.
	if info.Objective != 27000 {
		t.Errorf("model objective = %v, want 27000 (tE = 270)", info.Objective)
	}
	if s.Makespan != 295 {
		t.Errorf("realized makespan = %d, want 295", s.Makespan)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

// TestMaxExactOpsRaised documents the raised exact-size cap; lowering it
// again is a regression the ROADMAP cares about.
func TestMaxExactOpsRaised(t *testing.T) {
	if MaxExactOps < 20 {
		t.Fatalf("MaxExactOps = %d, want >= 20", MaxExactOps)
	}
}
