package sched

import (
	"reflect"
	"sort"
	"testing"

	"flowsyn/internal/assay"
	"flowsyn/internal/seqgraph"
)

// testModel is a minimal StorageModel for scheduling tests; it mirrors the
// strategies internal/storage builds without importing that package (the
// import points the other way).
type testModel struct {
	name       string
	serialized bool
	slots      int
	evict      string
}

func (m testModel) Name() string         { return m.name }
func (m testModel) Serialized() bool     { return m.serialized }
func (m testModel) ChannelSlots() int    { return m.slots }
func (m testModel) EvictionName() string { return m.evict }

func dedicatedModel() testModel {
	return testModel{name: "dedicated", serialized: true, slots: 0}
}

func hybridModel(slots int, evict string) testModel {
	return testModel{name: "hybrid", serialized: true, slots: slots, evict: evict}
}

// TestListScheduleDedicatedValid: list schedules planned through the
// dedicated-unit model validate end to end — including the unit-window
// invariants (store after parent, fetch a full u_c after store, fetch
// complete before the consumer, all port windows pairwise disjoint).
func TestListScheduleDedicatedValid(t *testing.T) {
	for _, name := range assay.Names() {
		b := assay.MustGet(name)
		s, err := ListSchedule(b.Graph, ListOptions{
			Devices: b.Devices, Transport: b.Transport,
			Mode: TimeAndStorage, Storage: dedicatedModel(),
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if s.UnitQueueDelay < 0 {
			t.Errorf("%s: negative queue delay %d", name, s.UnitQueueDelay)
		}
		// A unit window on a same-device edge is only legitimate when the
		// fluid was displaced: some other operation must run on that device
		// between producer and consumer (otherwise direct hand-over needs no
		// storage at all, let alone the unit).
		for e := range s.UnitWindows {
			if s.Device(e.Parent) != s.Device(e.Child) {
				continue
			}
			d := s.Device(e.Parent)
			displaced := false
			for _, a := range s.Assignments {
				if a.Device == d && a.Op != e.Parent && a.Op != e.Child &&
					a.Start >= s.End(e.Parent) && a.End <= s.Start(e.Child) {
					displaced = true
					break
				}
			}
			if !displaced {
				t.Errorf("%s: unit window on same-device edge %d->%d with direct hand-over", name, e.Parent, e.Child)
			}
		}
	}
}

// TestDedicatedNeverBeatsDistributed: the unit only adds constraints — port
// serialization, full-u_c store and fetch journeys, the chamber-readiness
// floor — so the dedicated makespan must never beat the distributed one on
// the same assay. This is the paper's Fig. 10 direction, as a structural
// property of the list scheduler.
func TestDedicatedNeverBeatsDistributed(t *testing.T) {
	check := func(name string, g *seqgraph.Graph, devices, uc int) {
		dist, err := ListSchedule(g, ListOptions{Devices: devices, Transport: uc, Mode: TimeAndStorage})
		if err != nil {
			t.Fatalf("%s distributed: %v", name, err)
		}
		ded, err := ListSchedule(g, ListOptions{
			Devices: devices, Transport: uc, Mode: TimeAndStorage, Storage: dedicatedModel(),
		})
		if err != nil {
			t.Fatalf("%s dedicated: %v", name, err)
		}
		if ded.Makespan < dist.Makespan {
			t.Errorf("%s: dedicated makespan %d beats distributed %d — the unit should never win",
				name, ded.Makespan, dist.Makespan)
		}
	}
	for _, name := range assay.Names() {
		b := assay.MustGet(name)
		check(name, b.Graph, b.Devices, b.Transport)
	}
	for seed := int64(1); seed <= 20; seed++ {
		g := assay.Random(6+int(seed)%12, 3, seed)
		check(g.Name, g, 3, 10)
	}
}

// TestStrategyScheduleDeterministic: repeated plans through a serialized
// model are bit-identical — port grants, queue delays, windows and all.
func TestStrategyScheduleDeterministic(t *testing.T) {
	b := assay.MustGet("RA30")
	for _, m := range []testModel{dedicatedModel(), hybridModel(1, "lru"), hybridModel(2, "earliest-next-fetch")} {
		first, err := ListSchedule(b.Graph, ListOptions{
			Devices: b.Devices, Transport: b.Transport, Mode: TimeAndStorage, Storage: m,
		})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		second, err := ListSchedule(b.Graph, ListOptions{
			Devices: b.Devices, Transport: b.Transport, Mode: TimeAndStorage, Storage: m,
		})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("%s/%s: two plans of the same assay differ", m.name, m.evict)
		}
	}
}

// TestHybridSlotBound: with a single channel slot, at most one stored fluid
// may reside in the channels at any instant — everything else must have been
// demoted to the unit (visible as unit windows) or fetched out first.
func TestHybridSlotBound(t *testing.T) {
	for _, evict := range []string{"lru", "earliest-next-fetch"} {
		b := assay.MustGet("RA30")
		s, err := ListSchedule(b.Graph, ListOptions{
			Devices: b.Devices, Transport: b.Transport,
			Mode: TimeAndStorage, Storage: hybridModel(1, evict),
		})
		if err != nil {
			t.Fatalf("%s: %v", evict, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", evict, err)
		}
		// Channel residents: cross-device stored edges without a unit window,
		// occupying their channel from parent end to consumer start. An
		// event sweep over those intervals must never exceed the slot bound.
		type event struct{ t, delta int }
		var evs []event
		g := s.Graph
		for _, e := range g.Edges() {
			p, c := s.Assignments[e.Parent], s.Assignments[e.Child]
			if p.Device == c.Device {
				continue
			}
			if _, unit := s.UnitWindows[e]; unit {
				continue
			}
			if c.Start-p.End <= s.Transport {
				continue // pure transport, nothing lingers
			}
			evs = append(evs, event{p.End, +1}, event{c.Start, -1})
		}
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].t != evs[j].t {
				return evs[i].t < evs[j].t
			}
			return evs[i].delta < evs[j].delta // exits before entries at ties
		})
		cur, peak := 0, 0
		for _, e := range evs {
			cur += e.delta
			if cur > peak {
				peak = cur
			}
		}
		if peak > 1 {
			t.Errorf("%s: %d stored fluids resided in channels at once with a 1-slot cache", evict, peak)
		}
	}
}
