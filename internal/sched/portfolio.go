package sched

import (
	"context"

	"flowsyn/internal/seqgraph"
)

// PortfolioSchedule races the exact ILP against the storage-aware list
// scheduler in separate goroutines and returns whichever finished result
// scores better on the paper's objective (6), α·tE + β·Σu. It replaces the
// sequential try-ILP-then-fall-back flow of the Auto engine: the heuristic
// result is always available as soon as it finishes, and the ILP contributes
// whenever it beats it within its time limit.
//
// The returned ILPInfo always carries the ILP solver diagnostics, whichever
// arm won. The selection is deterministic: equal scores prefer the ILP
// schedule.
func PortfolioSchedule(ctx context.Context, g *seqgraph.Graph, opts ILPOptions) (*Schedule, *ILPInfo, error) {
	alpha, beta := opts.weights()
	mode := TimeAndStorage
	if beta == 0 {
		mode = TimeOnly
	}
	score := func(s *Schedule) float64 {
		return alpha*float64(s.Makespan) + beta*float64(s.StorageTime())
	}

	type ilpOut struct {
		s    *Schedule
		info *ILPInfo
		err  error
	}
	type listOut struct {
		s   *Schedule
		err error
	}
	// The ILP arm computes its own TimeAndStorage incumbent (it needs one
	// for the horizon and warm start before the solve can begin), so in
	// TimeAndStorage mode the list arm re-derives the same schedule. Sharing
	// it would serialize the arms; at portfolio sizes (NumOps <=
	// MaxExactOps) the duplicate list run costs microseconds against an ILP
	// solve bounded in seconds.
	ilpCh := make(chan ilpOut, 1)
	listCh := make(chan listOut, 1)
	go func() {
		s, info, err := ILPScheduleContext(ctx, g, opts)
		ilpCh <- ilpOut{s, info, err}
	}()
	go func() {
		s, err := ListScheduleContext(ctx, g, ListOptions{
			Devices: opts.Devices, Transport: opts.Transport, Mode: mode,
			Storage: opts.Storage,
		})
		listCh <- listOut{s, err}
	}()

	// Both arms are bounded — the ILP by its derived TimeLimit context, the
	// list scheduler by its per-operation cancellation check — so waiting for
	// both keeps the selection deterministic without an unbounded stall.
	ilp, list := <-ilpCh, <-listCh
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	// With the context alive, an arm failure is a genuine engine error (bad
	// options, solver failure) — propagate it rather than masking a
	// regression behind the surviving arm.
	if ilp.err != nil {
		return nil, nil, ilp.err
	}
	if list.err != nil {
		return nil, nil, list.err
	}
	if score(list.s) < score(ilp.s) {
		info := *ilp.info
		info.Winner = "list"
		return list.s, &info, nil
	}
	return ilp.s, ilp.info, nil
}
