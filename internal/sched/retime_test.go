package sched

import (
	"testing"
	"time"

	"flowsyn/internal/seqgraph"
)

// chainAssay builds a simple two-branch assay for retime tests.
func chainAssay(durA, durB int) *seqgraph.Graph {
	g := seqgraph.New("retime")
	a := g.MustAddOperation("a", seqgraph.Mix, durA, 2)
	b := g.MustAddOperation("b", seqgraph.Mix, durB, 1)
	c := g.MustAddOperation("c", seqgraph.Mix, 40, 1)
	d := g.MustAddOperation("d", seqgraph.Detect, 15, 0)
	g.MustAddDependency(a, b)
	g.MustAddDependency(a, c)
	g.MustAddDependency(b, d)
	g.MustAddDependency(c, d)
	return g
}

func TestRetimeLikeReusesBinding(t *testing.T) {
	g := chainAssay(30, 20)
	prior, err := ListSchedule(g, ListOptions{Devices: 2, Transport: 10})
	if err != nil {
		t.Fatal(err)
	}

	// Same graph: the retimed schedule must be valid and keep the binding.
	same, err := RetimeLike(g, prior, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range same.Assignments {
		if same.Assignments[i].Device != prior.Assignments[i].Device {
			t.Errorf("op %d rebound %d -> %d on the unedited graph",
				i, prior.Assignments[i].Device, same.Assignments[i].Device)
		}
	}

	// Edited durations: still valid, binding reused for matching names.
	edited := chainAssay(55, 20)
	re, err := RetimeLike(edited, prior, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range re.Assignments {
		if re.Assignments[i].Device != prior.Assignments[i].Device {
			t.Errorf("op %d lost its prior binding after a duration edit", i)
		}
	}

	// New operation: appended, on some valid device, schedule still valid.
	grown := chainAssay(30, 20)
	e := grown.MustAddOperation("e", seqgraph.Heat, 25, 0)
	grown.MustAddDependency(3, e)
	re2, err := RetimeLike(grown, prior, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := re2.Validate(); err != nil {
		t.Fatal(err)
	}

	// Fewer devices than the prior schedule used: bindings above the budget
	// are reassigned, result still valid.
	shrunk, err := RetimeLike(g, prior, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Devices != 1 {
		t.Errorf("devices = %d, want 1", shrunk.Devices)
	}

	if _, err := RetimeLike(g, prior, 0, 10); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := RetimeLike(g, prior, 2, 0); err == nil {
		t.Error("zero transport accepted")
	}
}

// TestILPWarmSeedsSolve solves an assay, perturbs it, and re-solves with the
// prior schedule as the Warm hook: the result must stay optimal (identical to
// a cold solve) and valid.
func TestILPWarmSeedsSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("exact solve in -short mode")
	}
	g := chainAssay(30, 20)
	opts := ILPOptions{Devices: 2, Transport: 10, WarmStart: true, TimeLimit: 10 * time.Second}
	prior, _, err := ILPSchedule(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	edited := chainAssay(45, 20)
	cold, coldInfo, err := ILPSchedule(edited, opts)
	if err != nil {
		t.Fatal(err)
	}
	warmOpts := opts
	warmOpts.Warm = prior
	warm, warmInfo, err := ILPSchedule(edited, warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Validate(); err != nil {
		t.Fatal(err)
	}
	if warm.Makespan != cold.Makespan {
		t.Errorf("warm-started makespan %d != cold %d (status %v vs %v)",
			warm.Makespan, cold.Makespan, warmInfo.Status, coldInfo.Status)
	}
}

// TestILPProgressEvents checks the incumbent hook fires with plausible data.
func TestILPProgressEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("exact solve in -short mode")
	}
	g := chainAssay(30, 20)
	var events []ProgressEvent
	_, _, err := ILPSchedule(g, ILPOptions{
		Devices: 2, Transport: 10, WarmStart: true, TimeLimit: 10 * time.Second,
		Progress: func(e ProgressEvent) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events from an exact solve")
	}
	for _, e := range events {
		if e.Makespan <= 0 {
			t.Errorf("event without makespan: %+v", e)
		}
	}
	// Incumbents only improve: objectives are non-increasing.
	for i := 1; i < len(events); i++ {
		if events[i].Objective > events[i-1].Objective+1e-6 {
			t.Errorf("incumbent %d worsened: %.3f after %.3f", i, events[i].Objective, events[i-1].Objective)
		}
	}
}
