package sched

import (
	"strings"
	"testing"

	"flowsyn/internal/assay"
	"flowsyn/internal/milp"
	"flowsyn/internal/seqgraph"
)

// TestSchedulingModelLPExport builds the paper's scheduling ILP for PCR and
// exports it in LP format, so that a reader with a commercial solver can
// cross-check the in-repo solver on the exact same formulation.
func TestSchedulingModelLPExport(t *testing.T) {
	g := assay.PCR()
	m := milp.NewModel()
	// Rebuild a small slice of the formulation by hand: per-op time
	// variables and the makespan, just enough to verify the export pipeline
	// on realistic names.
	tE := m.NewContinuous("tE", 0, 1e4)
	for _, op := range g.Operations() {
		ts := m.NewContinuous("ts_"+op.Name, 0, 1e4)
		te := m.NewContinuous("te_"+op.Name, 0, 1e4)
		m.AddEQ("dur_"+op.Name, *milp.NewExpr(0).Add(te, 1).Add(ts, -1), float64(op.Duration))
		m.AddLE("mk_"+op.Name, *milp.NewExpr(0).Add(te, 1).Add(tE, -1), 0)
	}
	m.SetObjective(milp.VarExpr(tE), milp.Minimize)

	var b strings.Builder
	if err := milp.WriteLP(&b, m); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Minimize", "dur_o1", "mk_o7", "tE", "End"} {
		if !strings.Contains(out, want) {
			t.Errorf("LP export missing %q", want)
		}
	}

	// And the full ILP must still solve this toy model to the critical path.
	sol, err := milp.Solve(m, milp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != milp.StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.Objective < float64(g.Op(seqgraph.OpID(0)).Duration) {
		t.Errorf("makespan %v below a single op duration", sol.Objective)
	}
}
