// Package sched implements scheduling and binding of bioassay sequencing
// graphs onto a limited set of devices, with storage minimization — Section
// 3.1 of "Transport or Store?" (DAC 2017).
//
// Two engines produce schedules:
//
//   - an exact ILP per the paper's Table 1 and objective (6), solved with the
//     in-repo branch-and-bound solver (internal/milp), time-limited exactly
//     like the paper's 30-minute Gurobi runs; and
//   - a storage-aware list scheduler that serves as warm start, as the
//     scalable engine for the larger benchmarks, and as the β=0 baseline for
//     the paper's Fig. 9 comparison.
//
// A Schedule also knows how to extract its transportation and storage tasks
// (direct transports and store/cache/fetch triples), which drive
// architectural synthesis (internal/arch) and the dedicated-storage baseline
// (internal/dedicated).
package sched

import (
	"fmt"
	"sort"

	"flowsyn/internal/seqgraph"
)

// Assignment places one operation on a device in a time window.
type Assignment struct {
	// Op is the operation this assignment schedules.
	Op seqgraph.OpID
	// Device is the index of the executing device in [0, Devices).
	Device int
	// Start and End delimit execution: End = Start + duration (t^s_i and
	// t^e_i in the paper).
	Start, End int
}

// Schedule is a complete scheduling-and-binding result for one assay.
type Schedule struct {
	// Graph is the scheduled assay.
	Graph *seqgraph.Graph
	// Devices is the number of devices available (|D|).
	Devices int
	// Transport is u_c, the pure device-to-device transport time in seconds.
	Transport int
	// Assignments is indexed by OpID.
	Assignments []Assignment
	// Makespan is t^E, the latest ending time over all operations.
	Makespan int
	// DepartOffsets serializes fan-out: when one operation's product feeds
	// several consumers, the sub-samples leave the device one move-out slot
	// apart rather than simultaneously (a device has few ports and the
	// channels around it are exclusive). The map holds, per transported
	// edge, the departure delay in seconds after the parent's end; missing
	// edges depart immediately. Populated by the schedulers.
	DepartOffsets map[seqgraph.Edge]int
	// UnitWindows holds, per edge stored in the dedicated storage unit, the
	// granted port windows (dedicated and hybrid storage strategies; empty
	// for distributed channel storage). Populated by the schedulers when a
	// StorageModel routes fluids through the unit.
	UnitWindows map[seqgraph.Edge]UnitWindow
	// UnitQueueDelay is the total time fluids waited for the dedicated
	// unit's port beyond their earliest possible store/fetch instants — the
	// contention cost the distributed strategy avoids by construction.
	UnitQueueDelay int
}

// DepartOffset returns the departure delay of edge e after its parent ends.
func (s *Schedule) DepartOffset(e seqgraph.Edge) int {
	if s.DepartOffsets == nil {
		return 0
	}
	return s.DepartOffsets[e]
}

// Start returns the scheduled start of op.
func (s *Schedule) Start(op seqgraph.OpID) int { return s.Assignments[op].Start }

// End returns the scheduled end of op.
func (s *Schedule) End(op seqgraph.OpID) int { return s.Assignments[op].End }

// Device returns the device executing op.
func (s *Schedule) Device(op seqgraph.OpID) int { return s.Assignments[op].Device }

// computeMakespan refreshes Makespan from the assignments.
func (s *Schedule) computeMakespan() {
	m := 0
	for _, a := range s.Assignments {
		if a.End > m {
			m = a.End
		}
	}
	s.Makespan = m
}

// byDevice returns, per device, its assignments sorted by start time.
func (s *Schedule) byDevice() [][]Assignment {
	out := make([][]Assignment, s.Devices)
	for _, a := range s.Assignments {
		out[a.Device] = append(out[a.Device], a)
	}
	for d := range out {
		sort.Slice(out[d], func(i, j int) bool { return out[d][i].Start < out[d][j].Start })
	}
	return out
}

// Validate checks the schedule against the paper's constraints (Table 1):
// uniqueness (every op assigned to a valid device exactly once), duration,
// precedence with cross-device transport time, and per-device non-overlap.
func (s *Schedule) Validate() error {
	g := s.Graph
	if len(s.Assignments) != g.NumOps() {
		return fmt.Errorf("sched: %d assignments for %d operations", len(s.Assignments), g.NumOps())
	}
	for _, a := range s.Assignments {
		op := g.Op(a.Op)
		if a.Device < 0 || a.Device >= s.Devices {
			return fmt.Errorf("sched: op %s bound to invalid device %d", op.Name, a.Device)
		}
		if a.Start < 0 {
			return fmt.Errorf("sched: op %s starts at negative time %d", op.Name, a.Start)
		}
		if a.End-a.Start != op.Duration {
			return fmt.Errorf("sched: op %s has window %d..%d but duration %d",
				op.Name, a.Start, a.End, op.Duration)
		}
		if int(a.Op) >= len(s.Assignments) || s.Assignments[a.Op].Op != a.Op {
			return fmt.Errorf("sched: assignment table corrupt at op %s", op.Name)
		}
	}
	for _, e := range g.Edges() {
		p, c := s.Assignments[e.Parent], s.Assignments[e.Child]
		need := 0
		if p.Device != c.Device {
			need = s.Transport
		}
		if c.Start < p.End+need {
			return fmt.Errorf("sched: precedence violated on edge %s->%s: parent ends %d, child starts %d (need gap %d)",
				g.Op(e.Parent).Name, g.Op(e.Child).Name, p.End, c.Start, need)
		}
	}
	for d, list := range s.byDevice() {
		for i := 1; i < len(list); i++ {
			if list[i].Start < list[i-1].End {
				return fmt.Errorf("sched: device %d executes %s and %s concurrently",
					d, g.Op(list[i-1].Op).Name, g.Op(list[i].Op).Name)
			}
		}
	}
	if err := s.validateUnitWindows(); err != nil {
		return err
	}
	return nil
}

// validateUnitWindows checks the dedicated-unit side of the schedule: every
// unit-stored edge's store must start after its parent ends, its fetch must
// fit a full transport before the consumer starts with a full store transport
// before it, and all port windows must be pairwise disjoint (one port).
func (s *Schedule) validateUnitWindows() error {
	if len(s.UnitWindows) == 0 {
		return nil
	}
	g := s.Graph
	uc := s.Transport
	var wins [][2]int
	for e, w := range s.UnitWindows {
		if int(e.Parent) >= len(s.Assignments) || int(e.Child) >= len(s.Assignments) {
			return fmt.Errorf("sched: unit window on unknown edge %d->%d", e.Parent, e.Child)
		}
		p, c := s.Assignments[e.Parent], s.Assignments[e.Child]
		if w.StoreStart < p.End {
			return fmt.Errorf("sched: unit store of %s->%s starts %d before parent ends %d",
				g.Op(e.Parent).Name, g.Op(e.Child).Name, w.StoreStart, p.End)
		}
		if w.FetchStart < w.StoreStart+uc {
			return fmt.Errorf("sched: unit fetch of %s->%s at %d overlaps its store at %d (u_c %d)",
				g.Op(e.Parent).Name, g.Op(e.Child).Name, w.FetchStart, w.StoreStart, uc)
		}
		if w.FetchStart+uc > c.Start {
			return fmt.Errorf("sched: unit fetch of %s->%s ends %d after child starts %d",
				g.Op(e.Parent).Name, g.Op(e.Child).Name, w.FetchStart+uc, c.Start)
		}
		wins = append(wins, [2]int{w.StoreStart, w.StoreStart + uc}, [2]int{w.FetchStart, w.FetchStart + uc})
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i][0] < wins[j][0] })
	for i := 1; i < len(wins); i++ {
		if wins[i][0] < wins[i-1][1] {
			return fmt.Errorf("sched: unit port windows [%d,%d) and [%d,%d) overlap",
				wins[i-1][0], wins[i-1][1], wins[i][0], wins[i][1])
		}
	}
	return nil
}

// StorageTime returns Σ u_{i,j} over cross-device edges: the storage term of
// the paper's objective (6), with u_{i,j} = t^s_j − t^e_i.
func (s *Schedule) StorageTime() int {
	total := 0
	for _, e := range s.Graph.Edges() {
		p, c := s.Assignments[e.Parent], s.Assignments[e.Child]
		if p.Device != c.Device {
			total += c.Start - p.End
		}
	}
	return total
}

// Clone returns a deep copy of the schedule (the underlying graph is shared:
// schedules never mutate their graph). Useful for what-if edits, e.g. the
// mutation tests of internal/verify.
func (s *Schedule) Clone() *Schedule {
	out := &Schedule{
		Graph:          s.Graph,
		Devices:        s.Devices,
		Transport:      s.Transport,
		Assignments:    append([]Assignment(nil), s.Assignments...),
		Makespan:       s.Makespan,
		UnitQueueDelay: s.UnitQueueDelay,
	}
	if s.DepartOffsets != nil {
		out.DepartOffsets = make(map[seqgraph.Edge]int, len(s.DepartOffsets))
		for e, d := range s.DepartOffsets {
			out.DepartOffsets[e] = d
		}
	}
	if s.UnitWindows != nil {
		out.UnitWindows = make(map[seqgraph.Edge]UnitWindow, len(s.UnitWindows))
		for e, w := range s.UnitWindows {
			out.UnitWindows[e] = w
		}
	}
	return out
}

// String summarizes the schedule.
func (s *Schedule) String() string {
	return fmt.Sprintf("schedule of %s on %d devices: makespan %d", s.Graph.Name, s.Devices, s.Makespan)
}

// Gantt renders a per-device text timeline, useful in examples and debugging.
func (s *Schedule) Gantt() string {
	var b []byte
	for d, list := range s.byDevice() {
		b = append(b, fmt.Sprintf("d%d:", d+1)...)
		for _, a := range list {
			b = append(b, fmt.Sprintf(" %s[%d,%d)", s.Graph.Op(a.Op).Name, a.Start, a.End)...)
		}
		b = append(b, '\n')
	}
	return string(b)
}
