package sched

import (
	"context"
	"fmt"
	"sort"

	"flowsyn/internal/seqgraph"
)

// Mode selects the scheduling objective, matching the two configurations the
// paper compares in Fig. 9.
type Mode int

const (
	// TimeAndStorage is the paper's objective (6) with β > 0: minimize
	// makespan while keeping intermediate fluids stored as briefly as
	// possible (schedule children soon after their parents).
	TimeAndStorage Mode = iota
	// TimeOnly is the β = 0 baseline: minimize makespan alone.
	TimeOnly
)

// String names the mode.
func (m Mode) String() string {
	if m == TimeOnly {
		return "time-only"
	}
	return "time+storage"
}

// ListOptions configures the list scheduler.
type ListOptions struct {
	// Devices is the number of identical devices available (must be >= 1).
	Devices int
	// Transport is u_c in seconds (must be >= 1).
	Transport int
	// Mode selects the optimization objective.
	Mode Mode
	// Pin, if non-nil, freezes an executed prefix for online recovery:
	// pinned operations keep their windows, devices and departure slots
	// verbatim, forbidden devices accept nothing new, and no re-planned
	// operation starts (or sample departs) before the fault instant.
	Pin *Pin
	// Storage selects where intermediate fluids wait (nil = the paper's
	// distributed channel storage, bit-identical to the historical
	// behavior). Dedicated/hybrid models route stored fluids through a
	// port-serialized storage unit, and the scheduler optimizes placements
	// under that contention instead of degrading a distributed schedule
	// after the fact.
	Storage StorageModel
}

// ListSchedule builds a schedule with a storage-aware list scheduler.
//
// Operations are kept in a ready list (all parents scheduled) and picked by:
//
//   - TimeAndStorage: the operation whose parents finished most recently
//     first (a depth-first tendency that consumes intermediate products
//     while they are fresh — this reproduces the paper's Fig. 2(c) order for
//     PCR), tie-broken by critical-path priority;
//   - TimeOnly: classic highest-level-first (critical-path priority), which
//     tends breadth-first and parks many intermediates in storage — the
//     paper's Fig. 2(b) order.
//
// Device timing models the paper's transport semantics: a result consumed by
// the immediately-next operation on the same device passes directly (no
// cost); otherwise the device is blocked for the move-out time after the
// producer ends, cross-device arrivals take u_c, and each cached input
// requires a fetch slot immediately before the consumer starts.
func ListSchedule(g *seqgraph.Graph, opts ListOptions) (*Schedule, error) {
	return ListScheduleContext(context.Background(), g, opts)
}

// ListScheduleContext is ListSchedule bounded by a context: cancellation is
// observed once per scheduled operation, so even very large assays abort
// promptly with ctx.Err().
func ListScheduleContext(ctx context.Context, g *seqgraph.Graph, opts ListOptions) (*Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opts.Devices < 1 {
		return nil, fmt.Errorf("sched: need at least one device, got %d", opts.Devices)
	}
	if opts.Transport < 1 {
		return nil, fmt.Errorf("sched: transport time must be >= 1, got %d", opts.Transport)
	}

	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	// Downstream critical path (including own duration and transport hops).
	prio := make([]int, g.NumOps())
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0
		for _, c := range g.Children(id) {
			if v := prio[c] + opts.Transport; v > best {
				best = v
			}
		}
		prio[id] = best + g.Op(id).Duration
	}

	outLen := (opts.Transport + 1) / 2
	fetchLen := opts.Transport - outLen

	s := &Schedule{
		Graph:         g,
		Devices:       opts.Devices,
		Transport:     opts.Transport,
		Assignments:   make([]Assignment, g.NumOps()),
		DepartOffsets: make(map[seqgraph.Edge]int),
	}
	// nextDepart[p] is the absolute instant the next sub-sample may leave
	// p's device: p's end, then one move-out slot later per transported
	// consumer already placed. The recorded offset is nextDepart − end,
	// which reduces to the classic k·u_c ladder when nothing is pinned.
	nextDepart := make([]int, g.NumOps())
	scheduled := make([]bool, g.NumOps())

	deviceFree := make([]int, opts.Devices)
	lastOp := make([]seqgraph.OpID, opts.Devices)
	for d := range lastOp {
		lastOp[d] = -1
	}

	st := newStorageState(opts.Storage, opts.Transport)

	floor, pinnedCount := 0, 0
	if opts.Pin != nil {
		if err := opts.Pin.Validate(g, opts.Devices); err != nil {
			return nil, err
		}
		floor = opts.Pin.Time
		pinnedCount = len(opts.Pin.Assignments)
		opts.Pin.seed(s, scheduled, nextDepart, deviceFree, lastOp, opts.Transport)
		if st.active() {
			for e, w := range opts.Pin.UnitWindows {
				st.seedUnit(e, w)
			}
		}
	}

	remainingParents := make([]int, g.NumOps())
	for _, e := range g.Edges() {
		if !scheduled[e.Parent] {
			remainingParents[e.Child]++
		}
	}
	var ready []seqgraph.OpID
	for id := range scheduled {
		if !scheduled[id] && remainingParents[id] == 0 {
			ready = append(ready, seqgraph.OpID(id))
		}
	}

	// place computes the earliest start of op on device k and the number of
	// cached inputs that need a fetch slot there. With commit set it also
	// books the storage-side state (unit port windows, channel residents)
	// under the storage model; estimates only peek. For the distributed
	// model both paths reduce to the historical arithmetic.
	place := func(op seqgraph.OpID, k int, commit bool) (start, fetches int) {
		start = deviceFree[k]
		last := lastOp[k]
		directPassParent := seqgraph.OpID(-1)
		if last >= 0 {
			for _, p := range g.Parents(op) {
				if p == last {
					directPassParent = p
					break
				}
			}
			if directPassParent < 0 {
				// The previous result must be flushed out of the device.
				if v := s.Assignments[last].End + outLen; v > start {
					start = v
				}
			}
		}
		if start < floor {
			// Recovery: nothing re-planned starts before the fault instant.
			start = floor
		}
		maxArrival := 0
		var plans []parentPlan
		for _, p := range g.Parents(op) {
			pa := s.Assignments[p]
			arrival := pa.End
			if p != directPassParent {
				// The sub-sample departs after the parent's earlier
				// consumers (serialized fan-out), then travels u_c — or, on
				// the unit path, waits for the port's store+fetch grants.
				plan := st.planParent(seqgraph.Edge{Parent: p, Child: op}, nextDepart[p], start)
				if commit {
					plan = st.commitParent(plan, start)
				}
				arrival = plan.arrival
				if !plan.unit {
					fetches++
				}
				if commit {
					plans = append(plans, plan)
				}
			}
			if arrival > maxArrival {
				maxArrival = arrival
			}
		}
		start += fetches * fetchLen
		if maxArrival > start {
			start = maxArrival
		}
		if commit {
			start = st.commitResidents(plans, start)
		}
		return start, fetches
	}

	freshness := func(op seqgraph.OpID) int {
		f := -1
		for _, p := range g.Parents(op) {
			if e := s.Assignments[p].End; e > f {
				f = e
			}
		}
		return f
	}

	for scheduledCount := pinnedCount; scheduledCount < g.NumOps(); scheduledCount++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if len(ready) == 0 {
			return nil, fmt.Errorf("sched: internal error: no ready operations with %d unscheduled",
				g.NumOps()-scheduledCount)
		}
		// Pick the next operation.
		sort.Slice(ready, func(i, j int) bool {
			a, b := ready[i], ready[j]
			if opts.Mode == TimeAndStorage {
				fa, fb := freshness(a), freshness(b)
				if fa != fb {
					return fa > fb // freshest parents first
				}
			}
			if prio[a] != prio[b] {
				return prio[a] > prio[b]
			}
			return a < b
		})
		op := ready[0]
		ready = ready[1:]

		// Pick its device. In storage mode a device that avoids transports
		// (direct pass from a parent) is worth a modest start-time delay:
		// every avoided fetch removes a store/fetch pair and its channel
		// occupancy, which is exactly the trade the paper's objective (6)
		// encodes with β.
		bestDev, bestScore := -1, 0
		for k := 0; k < opts.Devices; k++ {
			if opts.Pin != nil && opts.Pin.Forbidden[k] {
				continue
			}
			est, fe := place(op, k, false)
			score := est
			if opts.Mode == TimeAndStorage {
				score = est + fe*opts.Transport
			}
			if bestDev == -1 || score < bestScore {
				bestDev, bestScore = k, score
			}
		}
		bestStart, _ := place(op, bestDev, true)

		dur := g.Op(op).Duration
		s.Assignments[op] = Assignment{Op: op, Device: bestDev, Start: bestStart, End: bestStart + dur}
		scheduled[op] = true
		deviceFree[bestDev] = bestStart + dur
		nextDepart[op] = bestStart + dur
		// Record this op's departure slots from its parents.
		directPass := seqgraph.OpID(-1)
		if last := lastOp[bestDev]; last >= 0 {
			for _, p := range g.Parents(op) {
				if p == last {
					directPass = p
					break
				}
			}
		}
		for _, p := range g.Parents(op) {
			if p == directPass {
				continue
			}
			s.DepartOffsets[seqgraph.Edge{Parent: p, Child: op}] = nextDepart[p] - s.Assignments[p].End
			nextDepart[p] += opts.Transport
		}
		lastOp[bestDev] = op
		for _, c := range g.Children(op) {
			remainingParents[c]--
			if remainingParents[c] == 0 {
				ready = append(ready, c)
			}
		}
	}

	st.install(s)
	s.computeMakespan()
	// Push operations late to shrink storage lifetimes (the heuristic
	// counterpart of the paper's β·Σu objective term). Compacting would move
	// pinned windows, so recovery schedules keep the greedy placement.
	// Strategy schedules keep theirs too: delaying a producer would slide
	// past its already-granted unit store window.
	if opts.Pin == nil && !st.active() {
		Compact(s)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sched: list scheduler produced invalid schedule: %w", err)
	}
	return s, nil
}
