package sched

import (
	"context"
	"errors"
	"testing"
	"time"

	"flowsyn/internal/assay"
)

func TestPortfolioNeverWorseThanHeuristic(t *testing.T) {
	g := assay.PCR()
	opts := ILPOptions{Devices: 2, Transport: 10, WarmStart: true, TimeLimit: 2 * time.Second}
	s, info, err := PortfolioSchedule(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if info == nil {
		t.Error("portfolio ran the ILP arm but reported no diagnostics")
	}
	list, err := ListSchedule(g, ListOptions{Devices: 2, Transport: 10, Mode: TimeAndStorage})
	if err != nil {
		t.Fatal(err)
	}
	score := func(s *Schedule) int { return 100*s.Makespan + s.StorageTime() }
	if score(s) > score(list) {
		t.Errorf("portfolio score %d worse than pure heuristic %d", score(s), score(list))
	}
}

func TestPortfolioDeterministicPick(t *testing.T) {
	// The chain instance solves to optimality instantly in both arms, so
	// repeated races must pick the identical schedule.
	g := chain3()
	opts := ILPOptions{Devices: 1, Transport: 5, WarmStart: true, TimeLimit: 5 * time.Second}
	first, _, err := PortfolioSchedule(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s, _, err := PortfolioSchedule(context.Background(), g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan != first.Makespan || s.StorageTime() != first.StorageTime() {
			t.Fatalf("run %d picked (tE=%d, Σu=%d), first run picked (tE=%d, Σu=%d)",
				i, s.Makespan, s.StorageTime(), first.Makespan, first.StorageTime())
		}
	}
}

func TestPortfolioCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := PortfolioSchedule(ctx, assay.PCR(), ILPOptions{
		Devices: 2, Transport: 10, TimeLimit: time.Minute,
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
