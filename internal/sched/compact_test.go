package sched

import (
	"testing"
	"testing/quick"

	"flowsyn/internal/assay"
)

func TestCompactPreservesValidityAndMakespan(t *testing.T) {
	for _, name := range assay.Names() {
		b := assay.MustGet(name)
		s, err := ListSchedule(b.Graph, ListOptions{
			Devices: b.Devices, Transport: b.Transport, Mode: TimeAndStorage,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// ListSchedule already compacts; compacting again must be a fixpoint
		// for makespan and must stay valid.
		before := s.Makespan
		beforeStorage := s.StorageTime()
		Compact(s)
		if err := s.Validate(); err != nil {
			t.Errorf("%s: compacted schedule invalid: %v", name, err)
		}
		if s.Makespan != before {
			t.Errorf("%s: compaction changed makespan %d -> %d", name, before, s.Makespan)
		}
		if s.StorageTime() > beforeStorage {
			t.Errorf("%s: compaction increased storage time %d -> %d", name, beforeStorage, s.StorageTime())
		}
	}
}

func TestCompactShrinksStorage(t *testing.T) {
	// Build an artificial schedule with a huge idle gap: a -> b on one
	// device, b scheduled far after a; compaction must pull a toward b.
	g := assay.PCR()
	s, err := ListSchedule(g, ListOptions{Devices: 2, Transport: 10, Mode: TimeOnly})
	if err != nil {
		t.Fatal(err)
	}
	// Manually open a gap: delay every op by its index * 50, keeping order.
	// (Validation may fail for arbitrary surgery, so instead verify on the
	// scheduler's own output that no producer can move later.)
	Compact(s)
	for _, e := range g.Edges() {
		p, c := s.Assignments[e.Parent], s.Assignments[e.Child]
		if s.Device(e.Parent) != s.Device(e.Child) {
			slack := c.Start - p.End - s.Transport - s.DepartOffset(e)
			if slack < 0 {
				t.Errorf("edge %v: negative slack %d", e, slack)
			}
		}
	}
}

// TestCompactProperty: on random assays, compaction preserves validity and
// never increases makespan or storage time.
func TestCompactProperty(t *testing.T) {
	prop := func(seed int64) bool {
		g := assay.Random(5+int(seed%17+17)%17, 4, seed)
		for _, mode := range []Mode{TimeAndStorage, TimeOnly} {
			s, err := ListSchedule(g, ListOptions{Devices: 3, Transport: 8, Mode: mode})
			if err != nil {
				return false
			}
			mk, st := s.Makespan, s.StorageTime()
			Compact(s)
			if s.Validate() != nil || s.Makespan > mk || s.StorageTime() > st {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
