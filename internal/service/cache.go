package service

import (
	"container/list"
	"fmt"

	"flowsyn/internal/core"
)

// lruCache is a bounded map with least-recently-used eviction. It is not
// concurrency-safe; the Solver guards it with its mutex.
type lruCache struct {
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type lruItem struct {
	key string
	val any
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

func (c *lruCache) get(key string) (any, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruItem).val, true
}

func (c *lruCache) put(key string, val any) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruItem).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruItem{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruItem).key)
	}
}

func (c *lruCache) len() int { return c.order.Len() }

// scheduleKey identifies a scheduling-and-binding solve: the canonical assay
// fingerprint plus exactly the options the schedule depends on. Grid,
// placement, IO modeling, physical rules and verification are deliberately
// absent — that independence is what lets a grid sweep share one schedule.
// opts must be normalized (core.Options.Normalized) so defaults key
// identically to their explicit values.
func scheduleKey(fingerprint string, opts core.Options) string {
	return fmt.Sprintf("sched|%s|d%d|u%d|m%d|e%d|tl%d|st:%s",
		fingerprint, opts.Devices, opts.Transport, opts.Mode, opts.Engine, opts.ILPTimeLimit,
		opts.Storage.Key())
}

// resultKey identifies a complete synthesis: the schedule key plus every
// option the later stages consume.
func resultKey(fingerprint string, opts core.Options) string {
	return fmt.Sprintf("%s|g%dx%d|pl%d|io%t|v%t|ph%d.%d.%d",
		scheduleKey(fingerprint, opts),
		opts.GridRows, opts.GridCols, opts.Placement, opts.ModelIO, opts.Verify,
		opts.Phys.Pitch, opts.Phys.DeviceSize, opts.Phys.SampleLen)
}
