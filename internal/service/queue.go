package service

import (
	"container/heap"
	"time"
)

// admitQueue is the priority admission queue replacing the old FIFO channel:
// jobs are served highest priority class first, earliest deadline next
// (deadline-less jobs sort after any deadline), submission order last — so a
// latency-sensitive tenant's work overtakes bulk traffic without starving it
// (equal-priority bulk jobs still run strictly FIFO).
//
// It is a plain container/heap under the Solver mutex; Submit pushes,
// workers pop under the same lock that guards admission quotas.
type admitQueue struct {
	items []*Ticket
}

func (q *admitQueue) Len() int { return len(q.items) }

func (q *admitQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	ad, bd := a.deadline, b.deadline
	switch {
	case ad.IsZero() && !bd.IsZero():
		return false
	case !ad.IsZero() && bd.IsZero():
		return true
	case !ad.Equal(bd):
		return ad.Before(bd)
	}
	return a.id < b.id
}

func (q *admitQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *admitQueue) Push(x any) { q.items = append(q.items, x.(*Ticket)) }

func (q *admitQueue) Pop() any {
	old := q.items
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return t
}

func (q *admitQueue) push(t *Ticket) { heap.Push(q, t) }

func (q *admitQueue) pop() *Ticket { return heap.Pop(q).(*Ticket) }

// expired reports whether t should be evicted instead of run: it outlived
// the queue TTL, or its caller-set deadline has already passed.
func (t *Ticket) expired(now time.Time, ttl time.Duration) bool {
	if ttl > 0 && now.Sub(t.submitted) > ttl {
		return true
	}
	return !t.deadline.IsZero() && now.After(t.deadline)
}
