package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"flowsyn/internal/assay"
	"flowsyn/internal/core"
	"flowsyn/internal/seqgraph"
)

// pcrJob returns a PCR synthesis job with the Table 2 options and the
// heuristic engine (fast and fully deterministic for cache assertions).
func pcrJob(t *testing.T) Job {
	t.Helper()
	b, err := assay.Get("PCR")
	if err != nil {
		t.Fatal(err)
	}
	return Job{
		Graph: b.Graph,
		Options: core.Options{
			Devices:   b.Devices,
			Transport: b.Transport,
			GridRows:  b.GridRows,
			GridCols:  b.GridCols,
			ModelIO:   b.ModelIO,
			Engine:    core.Heuristic,
		},
	}
}

func mustWait(t *testing.T, tk *Ticket) *core.Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := tk.Wait(ctx)
	if err != nil {
		t.Fatalf("job %s: %v", tk.Name, err)
	}
	return res
}

func TestSolverCacheAccounting(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	job := pcrJob(t)

	first := mustWait(t, submitOK(t, s, job))
	if first.Service == nil || first.Service.CacheHit {
		t.Fatalf("first solve should be a cache miss, metrics %+v", first.Service)
	}
	second := mustWait(t, submitOK(t, s, job))
	if second.Service == nil || !second.Service.CacheHit {
		t.Fatalf("second identical solve should hit the result cache, metrics %+v", second.Service)
	}
	if first.Schedule.Makespan != second.Schedule.Makespan {
		t.Errorf("cached makespan %d != cold %d", second.Schedule.Makespan, first.Schedule.Makespan)
	}

	// Same assay on a larger grid: full-result miss, schedule hit.
	grid := job
	grid.Options.GridRows, grid.Options.GridCols = 6, 6
	third := mustWait(t, submitOK(t, s, grid))
	if third.Service.CacheHit {
		t.Error("different grid must not hit the full-result cache")
	}
	if !third.Service.ScheduleCacheHit {
		t.Errorf("different grid should reuse the cached schedule, metrics %+v", third.Service)
	}

	st := s.Stats()
	if st.Submitted != 3 || st.Completed != 3 || st.Failed != 0 {
		t.Errorf("job counters: %+v", st)
	}
	if st.ResultHits != 1 || st.ResultMisses != 2 {
		t.Errorf("result cache counters: %+v", st)
	}
	if st.ScheduleSolves != 1 || st.ScheduleHits != 1 {
		t.Errorf("schedule cache counters: %+v", st)
	}
}

func submitOK(t *testing.T, s *Solver, job Job) *Ticket {
	t.Helper()
	tk, err := s.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

// TestGridSweepSolvesOnce is the acceptance property: a grid exploration
// performs one schedule solve however many grid points it visits.
func TestGridSweepSolvesOnce(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	job := pcrJob(t)

	const points = 5
	tickets := make([]*Ticket, 0, points)
	for size := 4; size < 4+points; size++ {
		j := job
		j.Name = fmt.Sprintf("PCR@%dx%d", size, size)
		j.Options.GridRows, j.Options.GridCols = size, size
		tickets = append(tickets, submitOK(t, s, j))
	}
	for _, tk := range tickets {
		mustWait(t, tk)
	}
	st := s.Stats()
	if st.ScheduleSolves >= points {
		t.Errorf("grid sweep ran %d schedule solves for %d points; caching bought nothing", st.ScheduleSolves, points)
	}
	if st.ScheduleHits == 0 {
		t.Error("grid sweep reported no schedule-cache hits")
	}
	if st.ScheduleSolves+st.ScheduleHits+st.ResultHits < points {
		t.Errorf("accounting hole: %d solves + %d sched hits + %d result hits < %d jobs", st.ScheduleSolves, st.ScheduleHits, st.ResultHits, points)
	}
}

// TestConcurrentSubmit hammers one solver from many goroutines with a mix of
// identical and distinct jobs; run under -race this is the session-safety
// test.
func TestConcurrentSubmit(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	base := pcrJob(t)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j := base
			j.Name = fmt.Sprintf("job-%d", i)
			// Half the goroutines share a grid (identical jobs, exercising
			// coalescing), half get distinct grids (schedule sharing).
			if i%2 == 0 {
				j.Options.GridRows, j.Options.GridCols = 5, 5
			} else {
				j.Options.GridRows, j.Options.GridCols = 5+i, 5+i
			}
			tk, err := s.Submit(context.Background(), j)
			if err != nil {
				errs <- err
				return
			}
			if _, err := tk.Wait(context.Background()); err != nil {
				errs <- fmt.Errorf("%s: %w", j.Name, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if st.Completed != goroutines {
		t.Errorf("completed %d of %d", st.Completed, goroutines)
	}
	if st.ScheduleSolves >= goroutines {
		t.Errorf("no schedule sharing across %d concurrent jobs (%d solves)", goroutines, st.ScheduleSolves)
	}
}

// TestProgressStreamOrdering checks the event protocol: seq strictly
// increasing, queued→started first, stage brackets properly nested in
// pipeline order, exactly one terminal event, terminal last.
func TestProgressStreamOrdering(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	job := pcrJob(t)
	job.Options.Engine = core.ExactILP
	job.Options.ILPTimeLimit = 30 * time.Second
	tk := submitOK(t, s, job)

	var events []Event
	for e := range tk.Events() {
		events = append(events, e)
	}
	mustWait(t, tk)

	if len(events) < 4 {
		t.Fatalf("only %d events: %+v", len(events), events)
	}
	if events[0].Kind != EventQueued {
		t.Errorf("first event %q, want queued", events[0].Kind)
	}
	if events[1].Kind != EventStarted {
		t.Errorf("second event %q, want started", events[1].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != EventDone {
		t.Errorf("last event %q, want done", last.Kind)
	}
	if last.Makespan <= 0 {
		t.Errorf("done event carries no makespan: %+v", last)
	}

	sawIncumbent, sawSolver := false, false
	var stageStack []string
	var stagesSeen []string
	for i, e := range events {
		if i > 0 && e.Seq <= events[i-1].Seq {
			t.Errorf("event %d: seq %d not increasing after %d", i, e.Seq, events[i-1].Seq)
		}
		switch e.Kind {
		case EventStageStart:
			stageStack = append(stageStack, e.Stage)
			stagesSeen = append(stagesSeen, e.Stage)
		case EventStageEnd:
			if len(stageStack) == 0 || stageStack[len(stageStack)-1] != e.Stage {
				t.Errorf("stage-end %q without matching start (stack %v)", e.Stage, stageStack)
			} else {
				stageStack = stageStack[:len(stageStack)-1]
			}
		case EventIncumbent:
			sawIncumbent = true
			if e.Makespan <= 0 {
				t.Errorf("incumbent event without makespan: %+v", e)
			}
		case EventSolver:
			sawSolver = true
			// The solver summary is emitted inside the schedule stage.
			if len(stageStack) != 1 || stageStack[0] != core.StageSchedule {
				t.Errorf("solver event outside the schedule stage (stack %v)", stageStack)
			}
			if e.Makespan <= 0 || e.Gap < -1 {
				t.Errorf("implausible solver summary: %+v", e)
			}
		case EventDone, EventFailed:
			if i != len(events)-1 {
				t.Errorf("terminal event at position %d of %d", i, len(events))
			}
		}
	}
	if len(stageStack) != 0 {
		t.Errorf("unclosed stages: %v", stageStack)
	}
	wantStages := []string{core.StageSchedule, core.StageBind, core.StageArch, core.StagePhys}
	if len(stagesSeen) != len(wantStages) {
		t.Fatalf("stages %v, want %v", stagesSeen, wantStages)
	}
	for i := range wantStages {
		if stagesSeen[i] != wantStages[i] {
			t.Errorf("stage %d = %q, want %q", i, stagesSeen[i], wantStages[i])
		}
	}
	if !sawIncumbent {
		t.Error("exact solve emitted no incumbent event")
	}
	if !sawSolver {
		t.Error("exact solve emitted no solver summary event")
	}
}

// editedPCR returns the PCR graph with one mixing duration stretched and one
// extra operation appended — a realistic local edit.
func editedPCR(t *testing.T) *seqgraph.Graph {
	t.Helper()
	b, err := assay.Get("PCR")
	if err != nil {
		t.Fatal(err)
	}
	g := b.Graph.Clone()
	ops := g.Operations()
	// Stretch the first operation's duration.
	gg := seqgraph.New(g.Name)
	ids := make(map[seqgraph.OpID]seqgraph.OpID, len(ops))
	for _, op := range ops {
		dur := op.Duration
		if op.ID == 0 {
			dur += 15
		}
		ids[op.ID] = gg.MustAddOperation(op.Name, op.Kind, dur, op.Inputs)
	}
	for _, e := range g.Edges() {
		gg.MustAddDependency(ids[e.Parent], ids[e.Child])
	}
	// Append a detection step consuming the final product.
	sinks := g.Sinks()
	det := gg.MustAddOperation("detect_final", seqgraph.Detect, 12, 0)
	gg.MustAddDependency(ids[sinks[len(sinks)-1]], det)
	return gg
}

// TestResynthesizeMatchesColdSolve edits PCR and checks the incremental
// re-synthesis returns a result exactly as good as solving the edited assay
// from scratch, while reporting the reused prefix.
func TestResynthesizeMatchesColdSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("exact solve in -short mode")
	}
	s := New(Config{Workers: 2})
	defer s.Close()

	job := pcrJob(t)
	job.Options.Engine = core.ExactILP
	job.Options.ILPTimeLimit = 30 * time.Second
	prior := submitOK(t, s, job)
	mustWait(t, prior)

	edited := job
	edited.Graph = editedPCR(t)
	warm, err := s.Resynthesize(context.Background(), prior, edited)
	if err != nil {
		t.Fatal(err)
	}
	warmRes := mustWait(t, warm)
	if warmRes.Service.ReusedOps == 0 {
		t.Errorf("resynthesis reports no reused operations: %+v", warmRes.Service)
	}
	if warmRes.Service.EditedOps == 0 {
		t.Errorf("resynthesis reports no edited operations: %+v", warmRes.Service)
	}

	// Cold-solve the edited assay in a fresh session for comparison.
	cold := New(Config{Workers: 1})
	defer cold.Close()
	coldRes := mustWait(t, submitOK(t, cold, edited))

	if warmRes.Schedule.Makespan != coldRes.Schedule.Makespan {
		t.Errorf("resynthesized makespan %d != cold makespan %d",
			warmRes.Schedule.Makespan, coldRes.Schedule.Makespan)
	}
	if err := warmRes.Verify(); err != nil {
		t.Errorf("resynthesized result fails verification: %v", err)
	}
}

// TestResynthesizeIdenticalAssayHitsCache re-submits the unedited assay.
func TestResynthesizeIdenticalAssayHitsCache(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	prior := submitOK(t, s, pcrJob(t))
	mustWait(t, prior)

	same := pcrJob(t)
	tk, err := s.Resynthesize(context.Background(), prior, same)
	if err != nil {
		t.Fatal(err)
	}
	res := mustWait(t, tk)
	if !res.Service.CacheHit {
		t.Errorf("identical resynthesis should be a pure cache hit: %+v", res.Service)
	}
	if res.Service.EditedOps != 0 {
		t.Errorf("identical assay reports %d edited ops", res.Service.EditedOps)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(context.Background(), Job{}); err == nil {
		t.Error("nil graph accepted")
	}
	bad := pcrJob(t)
	bad.Options.Devices = 0
	if _, err := s.Submit(context.Background(), bad); err == nil {
		t.Error("zero devices accepted")
	}
	hooked := pcrJob(t)
	hooked.Options.Progress = func(core.ProgressEvent) {}
	if _, err := s.Submit(context.Background(), hooked); err == nil {
		t.Error("caller-owned Progress hook accepted")
	}
}

func TestSubmitAfterCloseAndQueueFull(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	job := pcrJob(t)
	// Block the single worker with a cancellable job, then fill the queue.
	ctx, cancel := context.WithCancel(context.Background())
	first, err := s.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	var overflow bool
	var tickets []*Ticket
	for i := 0; i < 50; i++ {
		j := job
		j.Options.GridRows = 4 + i%3
		tk, err := s.Submit(context.Background(), j)
		if err == ErrQueueFull {
			overflow = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	if !overflow {
		t.Error("bounded queue never reported ErrQueueFull")
	}
	cancel()
	for _, tk := range tickets {
		tk.Wait(context.Background())
	}
	first.Wait(context.Background())
	s.Close()
	if _, err := s.Submit(context.Background(), job); err != ErrClosed {
		t.Errorf("submit after close: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestCancelledJobFails(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tk, err := s.Submit(ctx, pcrJob(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err == nil {
		t.Error("cancelled job reported success")
	}
	st := s.Stats()
	if st.Failed != 1 {
		t.Errorf("failed counter %d, want 1", st.Failed)
	}
}

func TestTicketResultPending(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	tk := submitOK(t, s, pcrJob(t))
	if _, err := tk.Result(); err != nil && err != ErrPending {
		t.Errorf("pending result error: %v", err)
	}
	mustWait(t, tk)
	if _, err := tk.Result(); err != nil {
		t.Errorf("finished result error: %v", err)
	}
	if tk.Metrics().Events == 0 {
		t.Error("finished ticket reports no events")
	}
	if tk.ID() == 0 {
		t.Error("ticket has no id")
	}
}

func TestDiffGraphs(t *testing.T) {
	b, err := assay.Get("PCR")
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffGraphs(b.Graph, b.Graph); !d.Identical() {
		t.Errorf("self-diff not identical: %+v", d)
	}
	d := DiffGraphs(b.Graph, editedPCR(t))
	if d.Identical() {
		t.Error("edit not detected")
	}
	if d.Added != 1 {
		t.Errorf("added = %d, want 1 (detect_final)", d.Added)
	}
	if d.Changed == 0 {
		t.Error("duration change not detected")
	}
	if d.Unchanged == 0 {
		t.Error("no unchanged prefix found")
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", 1)
	c.put("b", 2)
	c.get("a") // refresh a; b becomes the eviction candidate
	c.put("c", 3)
	if _, ok := c.get("b"); ok {
		t.Error("lru kept the least recently used entry")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("lru evicted the refreshed entry")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	c.put("a", 9)
	if v, _ := c.get("a"); v != 9 {
		t.Error("put did not overwrite")
	}
}

func TestCachingDisabled(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: -1})
	defer s.Close()
	job := pcrJob(t)
	mustWait(t, submitOK(t, s, job))
	res := mustWait(t, submitOK(t, s, job))
	if res.Service.CacheHit || res.Service.ScheduleCacheHit {
		t.Errorf("cache disabled but hit reported: %+v", res.Service)
	}
	if st := s.Stats(); st.ResultHits != 0 || st.ScheduleHits != 0 {
		t.Errorf("cache disabled but counters moved: %+v", st)
	}
}
