package service

import (
	"sort"
	"strconv"
	"strings"

	"flowsyn/internal/seqgraph"
)

// GraphDiff summarizes how an edited assay differs from its prior version,
// matching operations by name.
type GraphDiff struct {
	// Unchanged counts operations present in both versions with identical
	// attributes (kind, duration, inputs) and identical parent sets — the
	// prefix whose prior binding an incremental re-synthesis can reuse.
	Unchanged int
	// Changed counts operations present in both versions whose attributes
	// or parent sets differ.
	Changed int
	// Added and Removed count operations present in only one version.
	Added, Removed int
	// EdgeDelta counts dependency edges present in exactly one version.
	EdgeDelta int
}

// Identical reports a structurally unchanged assay.
func (d GraphDiff) Identical() bool {
	return d.Changed == 0 && d.Added == 0 && d.Removed == 0 && d.EdgeDelta == 0
}

// opShape is the per-operation comparison key of DiffGraphs.
type opShape struct {
	kind             seqgraph.OpKind
	duration, inputs int
	parents          string // sorted parent names, newline-joined
}

func shapes(g *seqgraph.Graph) map[string]opShape {
	out := make(map[string]opShape, g.NumOps())
	for _, op := range g.Operations() {
		names := make([]string, 0, len(g.Parents(op.ID)))
		for _, p := range g.Parents(op.ID) {
			names = append(names, g.Op(p).Name)
		}
		sort.Strings(names)
		out[op.Name] = opShape{
			kind: op.Kind, duration: op.Duration, inputs: op.Inputs,
			parents: strings.Join(names, "\n"),
		}
	}
	return out
}

// uniqueNames reports whether every operation name in g is distinct — the
// precondition for name-based matching (mirrors the duplicate detection of
// seqgraph.Fingerprint).
func uniqueNames(g *seqgraph.Graph) bool {
	seen := make(map[string]struct{}, g.NumOps())
	for _, op := range g.Operations() {
		if _, dup := seen[op.Name]; dup {
			return false
		}
		seen[op.Name] = struct{}{}
	}
	return true
}

// DiffGraphs compares two assay versions, matching operations by name. Names
// are not required to be unique by the graph builder; when either version
// repeats a name, name-based matching is ambiguous (shapes would silently
// collapse the duplicates onto one key), so the diff falls back to matching
// operations by ID — exact for the common append-only edit, conservative
// otherwise.
func DiffGraphs(old, edited *seqgraph.Graph) GraphDiff {
	if !uniqueNames(old) || !uniqueNames(edited) {
		return diffByID(old, edited)
	}
	var d GraphDiff
	oldShapes, newShapes := shapes(old), shapes(edited)
	for name, ns := range newShapes {
		os, ok := oldShapes[name]
		switch {
		case !ok:
			d.Added++
		case os == ns:
			d.Unchanged++
		default:
			d.Changed++
		}
	}
	for name := range oldShapes {
		if _, ok := newShapes[name]; !ok {
			d.Removed++
		}
	}
	edgeSet := func(g *seqgraph.Graph) map[[2]string]bool {
		out := make(map[[2]string]bool, g.NumEdges())
		for _, e := range g.Edges() {
			out[[2]string{g.Op(e.Parent).Name, g.Op(e.Child).Name}] = true
		}
		return out
	}
	oldEdges, newEdges := edgeSet(old), edgeSet(edited)
	for e := range newEdges {
		if !oldEdges[e] {
			d.EdgeDelta++
		}
	}
	for e := range oldEdges {
		if !newEdges[e] {
			d.EdgeDelta++
		}
	}
	return d
}

// diffByID is the duplicate-name fallback of DiffGraphs: operations are
// matched positionally by ID, parent sets compared as ID sets.
func diffByID(old, edited *seqgraph.Graph) GraphDiff {
	var d GraphDiff
	shapeAt := func(g *seqgraph.Graph, id seqgraph.OpID) opShape {
		parents := make([]string, 0, len(g.Parents(id)))
		for _, p := range g.Parents(id) {
			parents = append(parents, strconv.Itoa(int(p)))
		}
		sort.Strings(parents)
		op := g.Op(id)
		return opShape{
			kind: op.Kind, duration: op.Duration, inputs: op.Inputs,
			parents: strings.Join(parents, "\n"),
		}
	}
	common := old.NumOps()
	if edited.NumOps() < common {
		common = edited.NumOps()
	}
	for id := 0; id < common; id++ {
		if shapeAt(old, seqgraph.OpID(id)) == shapeAt(edited, seqgraph.OpID(id)) {
			d.Unchanged++
		} else {
			d.Changed++
		}
	}
	d.Added = edited.NumOps() - common
	d.Removed = old.NumOps() - common
	edgeSet := func(g *seqgraph.Graph) map[seqgraph.Edge]bool {
		out := make(map[seqgraph.Edge]bool, g.NumEdges())
		for _, e := range g.Edges() {
			out[e] = true
		}
		return out
	}
	oldEdges, newEdges := edgeSet(old), edgeSet(edited)
	for e := range newEdges {
		if !oldEdges[e] {
			d.EdgeDelta++
		}
	}
	for e := range oldEdges {
		if !newEdges[e] {
			d.EdgeDelta++
		}
	}
	return d
}
