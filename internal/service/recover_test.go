package service

import (
	"context"
	"testing"

	"flowsyn/internal/seqgraph"
	"flowsyn/internal/sim"
)

func TestSolverRecover(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	job := pcrJob(t)
	job.Options.Verify = true

	prior := submitOK(t, s, job)
	priorRes := mustWait(t, prior)

	fault := sim.Fault{Kind: sim.FaultStorage, Time: priorRes.Schedule.Makespan / 2,
		Edge: priorRes.Architecture.UsedEdges[0]}
	tk, err := s.Recover(context.Background(), prior, fault)
	if err != nil {
		t.Fatal(err)
	}
	rec := mustWait(t, tk)
	if rec.Recovery == nil {
		t.Fatal("recovered result has no recovery metrics")
	}
	if rec.Recovery.Fault != fault {
		t.Errorf("Recovery.Fault = %v, want %v", rec.Recovery.Fault, fault)
	}
	if !rec.Verified {
		t.Error("recovery with Verify set not marked verified")
	}
	if rec.Service == nil || rec.Service.CacheHit || rec.Service.ScheduleCacheHit {
		t.Errorf("recovery must bypass the caches, metrics %+v", rec.Service)
	}

	// A second identical recovery still bypasses both caches, and an
	// ordinary re-submission of the assay is not served a spliced plan.
	tk2, err := s.Recover(context.Background(), prior, fault)
	if err != nil {
		t.Fatal(err)
	}
	rec2 := mustWait(t, tk2)
	if rec2.Service.CacheHit || rec2.Service.ScheduleCacheHit {
		t.Errorf("repeated recovery hit a cache, metrics %+v", rec2.Service)
	}
	plain := mustWait(t, submitOK(t, s, job))
	if plain.Recovery != nil {
		t.Error("ordinary synthesis served a recovery result")
	}
}

func TestSolverRecoverValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Recover(context.Background(), nil, sim.Fault{}); err == nil {
		t.Error("nil prior accepted")
	}
	pending := submitOK(t, s, pcrJob(t))
	res := mustWait(t, pending)
	if _, err := s.Recover(context.Background(), pending, sim.Fault{Kind: sim.FaultDevice, Time: -1}); err == nil {
		t.Error("invalid fault accepted")
	}
	if _, err := s.Recover(context.Background(), pending, sim.Fault{
		Kind: sim.FaultChannel, Time: res.Schedule.Makespan, Edge: 1 << 20}); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestDiffGraphsDuplicateNames(t *testing.T) {
	build := func(extra bool) *seqgraph.Graph {
		g := seqgraph.New("dups")
		a := g.MustAddOperation("mix", seqgraph.Mix, 10, 2)
		b := g.MustAddOperation("mix", seqgraph.Mix, 20, 2) // duplicate name
		g.MustAddDependency(a, b)
		if extra {
			c := g.MustAddOperation("detect", seqgraph.Detect, 5, 0)
			g.MustAddDependency(b, c)
		}
		return g
	}
	old, edited := build(false), build(true)

	// Name-based matching would collapse both "mix" operations onto one key
	// and report a phantom change; the ID fallback sees the append-only edit.
	d := DiffGraphs(old, edited)
	if d.Unchanged != 2 || d.Changed != 0 || d.Added != 1 || d.Removed != 0 {
		t.Errorf("diff = %+v, want 2 unchanged, 1 added", d)
	}
	if d.EdgeDelta != 1 {
		t.Errorf("EdgeDelta = %d, want 1", d.EdgeDelta)
	}
	if !DiffGraphs(old, old).Identical() {
		t.Error("identical duplicate-name graphs not reported identical")
	}

	// Unique names keep the richer name-based matching (reordering IDs is
	// not a change there).
	u1 := seqgraph.New("u1")
	x := u1.MustAddOperation("a", seqgraph.Mix, 10, 2)
	y := u1.MustAddOperation("b", seqgraph.Mix, 20, 2)
	u1.MustAddDependency(x, y)
	u2 := seqgraph.New("u2")
	y2 := u2.MustAddOperation("b", seqgraph.Mix, 20, 2)
	x2 := u2.MustAddOperation("a", seqgraph.Mix, 10, 2)
	u2.MustAddDependency(x2, y2)
	if d := DiffGraphs(u1, u2); !d.Identical() {
		t.Errorf("ID-reordered unique-name graphs diffed as %+v", d)
	}
}
