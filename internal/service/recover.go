package service

import (
	"context"
	"errors"
	"fmt"

	"flowsyn/internal/core"
	"flowsyn/internal/sim"
)

// recoverReq marks a ticket as an online-recovery job: re-synthesize the
// suffix of prior's interrupted execution around the injected fault.
type recoverReq struct {
	prior *core.Result
	fault sim.Fault
}

// Recover submits a fault-tolerant online re-synthesis of a finished prior
// job: the fault is injected into its execution at fault.Time, everything the
// chip had completed or in flight is frozen, and only the suffix is
// re-planned on the masked chip (core.RecoverContext). The prior ticket must
// have completed successfully.
//
// Recovery jobs deliberately bypass both the full-result and the schedule
// cache in each direction: the fault instant and the executed prefix are
// not part of the cache keys, and a spliced plan must never be served to (or
// from) an ordinary synthesis of the same assay. Each recovery is a fresh
// solve; the engine, objective and verification settings are inherited from
// the prior job, while the chip itself (devices, transport, grid, I/O model)
// is pinned to the interrupted execution.
func (s *Solver) Recover(ctx context.Context, prior *Ticket, fault sim.Fault) (*Ticket, error) {
	if prior == nil {
		return nil, errors.New("service: recover needs a prior ticket")
	}
	res, err := prior.Result()
	if err != nil {
		return nil, fmt.Errorf("service: recover from unfinished or failed job: %w", err)
	}
	// Validate the fault at submission so a malformed request fails here,
	// not inside a worker.
	if err := fault.Validate(res.Schedule, res.Architecture); err != nil {
		return nil, err
	}
	job := Job{Name: prior.Name, Graph: prior.graph, Options: prior.opts}
	return s.submit(ctx, job, nil, core.ServiceMetrics{}, &recoverReq{prior: res, fault: fault})
}
