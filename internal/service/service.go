// Package service implements long-lived synthesis solver sessions on top of
// the core pipeline: a bounded worker pool serving submitted jobs, a
// content-addressed full-result cache and a schedule cache keyed by the
// canonical assay fingerprint (internal/seqgraph.Fingerprint) plus the
// semantic synthesis options, single-flight deduplication of identical
// in-flight solves, per-job progress event streams, and incremental
// re-synthesis of edited assays via the scheduler's warm-start hook.
//
// The schedule cache is what makes design-space exploration cheap: the
// expensive scheduling-and-binding solve depends only on the assay and the
// device/transport/engine options, not on the connection grid, so a grid
// sweep over one assay re-solves the MILP exactly once and re-runs only the
// architectural and physical stages per grid size.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"flowsyn/internal/core"
	"flowsyn/internal/sched"
	"flowsyn/internal/seqgraph"
)

// Errors returned by Submit and ticket accessors.
var (
	// ErrClosed reports a Submit to a solver that has been closed.
	ErrClosed = errors.New("service: solver closed")
	// ErrQueueFull reports that the bounded submit queue is at capacity;
	// the caller should retry later (backpressure, not failure).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrPending reports a Result call on a ticket that has not finished.
	ErrPending = errors.New("service: job still pending")
)

// Config sizes a Solver session.
type Config struct {
	// Workers is the synthesis worker pool size; 0 or negative selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the submit queue; Submit returns ErrQueueFull when
	// it is exceeded. 0 selects 256.
	QueueDepth int
	// CacheEntries bounds each of the result and schedule LRU caches.
	// 0 selects 512; negative disables caching entirely.
	CacheEntries int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	return c
}

// Job is one synthesis request: an assay graph plus the synthesis options.
type Job struct {
	// Name labels the job in results and events; defaults to the assay name.
	Name string
	// Graph is the assay to synthesize.
	Graph *seqgraph.Graph
	// Options configures the pipeline. Progress and Warm are owned by the
	// solver and must be left nil; the per-ticket event stream and
	// Resynthesize provide those capabilities in session mode.
	Options core.Options
}

// Stats is a snapshot of a solver session's counters.
type Stats struct {
	// Submitted, Completed and Failed count jobs over the session lifetime.
	Submitted, Completed, Failed int64
	// ResultHits and ResultMisses count full-result cache lookups; a hit
	// serves the finished chip with no pipeline stage running.
	ResultHits, ResultMisses int64
	// ScheduleHits counts schedule-cache hits (bind/arch/phys re-ran on a
	// cached schedule); ScheduleSolves counts schedule solves that actually
	// executed an engine — the "full solves" a grid sweep avoids.
	ScheduleHits, ScheduleSolves int64
	// Coalesced counts jobs served by waiting on an identical in-flight
	// solve instead of starting their own (also counted in ResultHits or
	// ScheduleHits).
	Coalesced int64
	// InFlight and Queued describe the instantaneous pool state.
	InFlight, Queued int
	// EventsDropped counts progress events discarded because a ticket's
	// subscriber fell behind its buffered stream.
	EventsDropped int64
}

// flight is one in-flight solve other workers with the same key wait on.
type flight struct {
	done  chan struct{}
	res   *core.Result // result-key flights
	sched *schedEntry  // schedule-key flights
	err   error
}

// schedEntry is a cached scheduling-and-binding solution.
type schedEntry struct {
	s    *sched.Schedule
	info *sched.ILPInfo
}

// Solver is a long-lived synthesis session. Create one with New, submit jobs
// with Submit (or Resynthesize), and Close it to drain.
type Solver struct {
	cfg   Config
	queue chan *Ticket
	wg    sync.WaitGroup

	mu           sync.Mutex
	closed       bool
	nextID       uint64
	stats        Stats
	results      *lruCache
	scheds       *lruCache
	resultFlight map[string]*flight
	schedFlight  map[string]*flight
}

// New starts a solver session with cfg's worker pool and caches.
func New(cfg Config) *Solver {
	cfg = cfg.withDefaults()
	s := &Solver{
		cfg:          cfg,
		queue:        make(chan *Ticket, cfg.QueueDepth),
		resultFlight: make(map[string]*flight),
		schedFlight:  make(map[string]*flight),
	}
	if cfg.CacheEntries > 0 {
		s.results = newLRUCache(cfg.CacheEntries)
		s.scheds = newLRUCache(cfg.CacheEntries)
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for t := range s.queue {
				s.runTicket(t)
			}
		}()
	}
	return s
}

// Submit validates and enqueues a job, returning its ticket immediately. The
// job runs under ctx: cancelling it aborts the job (queued or mid-solve) with
// ctx's error. Submit itself never blocks — a full queue returns
// ErrQueueFull.
func (s *Solver) Submit(ctx context.Context, job Job) (*Ticket, error) {
	return s.submit(ctx, job, nil, core.ServiceMetrics{}, nil)
}

// Resynthesize submits an edited assay as an incremental re-synthesis of a
// finished prior job: the prior schedule's binding seeds the new solve
// through the scheduler's warm-start hook, and the unchanged part of the
// assay keeps its proven structure. The prior ticket must have completed
// successfully; options are inherited from the prior job unless the edited
// job overrides them (zero Options means inherit).
func (s *Solver) Resynthesize(ctx context.Context, prior *Ticket, job Job) (*Ticket, error) {
	if prior == nil {
		return nil, errors.New("service: resynthesize needs a prior ticket")
	}
	res, err := prior.Result()
	if err != nil {
		return nil, fmt.Errorf("service: resynthesize from unfinished or failed job: %w", err)
	}
	if job.Graph == nil {
		return nil, errors.New("service: resynthesize needs an edited assay")
	}
	if job.Options.Devices == 0 {
		// Zero options inherit the prior job's configuration.
		job.Options = prior.opts
	}
	if job.Name == "" {
		job.Name = prior.Name
	}
	d := DiffGraphs(prior.graph, job.Graph)
	metrics := core.ServiceMetrics{
		ReusedOps: d.Unchanged,
		EditedOps: d.Changed + d.Added + d.Removed,
	}
	return s.submit(ctx, job, res.Schedule, metrics, nil)
}

func (s *Solver) submit(ctx context.Context, job Job, warm *sched.Schedule, metrics core.ServiceMetrics, rec *recoverReq) (*Ticket, error) {
	if job.Graph == nil {
		return nil, errors.New("service: job has no assay graph")
	}
	if err := job.Graph.Validate(); err != nil {
		return nil, err
	}
	if job.Options.Progress != nil || job.Options.Warm != nil {
		return nil, errors.New("service: job options must leave Progress and Warm nil (owned by the solver)")
	}
	opts, err := job.Options.Normalized()
	if err != nil {
		return nil, err
	}
	if job.Name == "" {
		job.Name = job.Graph.Name
	}
	fp := seqgraph.Fingerprint(job.Graph)
	t := &Ticket{
		Name:      job.Name,
		ctx:       ctx,
		graph:     job.Graph,
		opts:      opts,
		warm:      warm,
		rec:       rec,
		schedKey:  scheduleKey(fp, opts),
		resultKey: resultKey(fp, opts),
		metrics:   metrics,
		submitted: time.Now(),
		events:    make(chan Event, eventBuffer),
		done:      make(chan struct{}),
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.nextID++
	t.id = s.nextID
	select {
	case s.queue <- t:
	default:
		return nil, ErrQueueFull
	}
	s.stats.Submitted++
	t.emit(Event{Kind: EventQueued})
	return t, nil
}

// Close stops accepting jobs, drains the queue (every queued job still runs
// to completion under its own context), and waits for the workers to exit.
// Closing twice is a no-op.
func (s *Solver) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Stats returns a snapshot of the session counters.
func (s *Solver) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Queued = len(s.queue)
	return st
}

// runTicket executes one job inside a worker.
func (s *Solver) runTicket(t *Ticket) {
	s.mu.Lock()
	s.stats.InFlight++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.stats.InFlight--
		s.mu.Unlock()
	}()

	t.metrics.QueueWait = time.Since(t.submitted)
	t.emit(Event{Kind: EventStarted})
	if err := t.ctx.Err(); err != nil {
		s.fail(t, err)
		return
	}
	start := time.Now()
	res, err := s.resolve(t)
	t.metrics.Runtime = time.Since(start)
	if err != nil {
		s.fail(t, err)
		return
	}
	s.mu.Lock()
	s.stats.Completed++
	s.mu.Unlock()
	t.finish(res)
	// Count drops after the terminal event: its delivery may evict one last
	// buffered event. The worker is the ticket's only mutator, so this read
	// is safe; the session counter is monotonic either way.
	s.mu.Lock()
	s.stats.EventsDropped += int64(t.droppedEvents)
	s.mu.Unlock()
}

func (s *Solver) fail(t *Ticket, err error) {
	s.mu.Lock()
	s.stats.Failed++
	s.mu.Unlock()
	t.fail(err)
	s.mu.Lock()
	s.stats.EventsDropped += int64(t.droppedEvents)
	s.mu.Unlock()
}

// resolve serves the job from the full-result cache, an identical in-flight
// solve, or a fresh pipeline run, in that order.
func (s *Solver) resolve(t *Ticket) (*core.Result, error) {
	// Recovery jobs never touch the caches: their plan depends on the fault
	// and the executed prefix, neither of which is part of the cache keys.
	if s.results == nil || t.rec != nil {
		return s.solve(t)
	}
	for {
		s.mu.Lock()
		if v, ok := s.results.get(t.resultKey); ok {
			s.stats.ResultHits++
			s.mu.Unlock()
			t.metrics.CacheHit = true
			t.emit(Event{Kind: EventCacheHit})
			return copyResult(v.(*core.Result)), nil
		}
		if fl, ok := s.resultFlight[t.resultKey]; ok {
			s.mu.Unlock()
			select {
			case <-fl.done:
			case <-t.ctx.Done():
				return nil, t.ctx.Err()
			}
			if fl.err != nil {
				// A leader aborted by its own caller (or failed) settles
				// nothing for this job: retry, becoming the leader if the
				// slot is still free.
				continue
			}
			s.mu.Lock()
			s.stats.ResultHits++
			s.stats.Coalesced++
			s.mu.Unlock()
			t.metrics.CacheHit, t.metrics.Coalesced = true, true
			t.emit(Event{Kind: EventCacheHit})
			return copyResult(fl.res), nil
		}
		fl := &flight{done: make(chan struct{})}
		s.resultFlight[t.resultKey] = fl
		s.stats.ResultMisses++
		s.mu.Unlock()

		res, err := s.solve(t)
		s.mu.Lock()
		delete(s.resultFlight, t.resultKey)
		if err == nil {
			s.results.put(t.resultKey, res)
		}
		fl.res, fl.err = res, err
		s.mu.Unlock()
		close(fl.done)
		if err != nil {
			return nil, err
		}
		return copyResult(res), nil
	}
}

// solve runs the pipeline, serving the schedule stage from the schedule
// cache (or an identical in-flight schedule solve) when possible.
func (s *Solver) solve(t *Ticket) (*core.Result, error) {
	opts := t.opts
	opts.Warm = t.warm
	opts.Progress = t.emitCore
	if t.rec != nil {
		// Online recovery: the prior result supplies the warm start and the
		// chip parameters internally, and the schedule cache is bypassed (a
		// pinned suffix solve is not a solve of the bare assay).
		opts.Warm = nil
		return core.RecoverContext(t.ctx, opts, t.rec.prior, t.rec.fault)
	}
	if s.scheds == nil {
		return core.SynthesizeContext(t.ctx, t.graph, opts)
	}
	for {
		s.mu.Lock()
		if v, ok := s.scheds.get(t.schedKey); ok {
			s.stats.ScheduleHits++
			s.mu.Unlock()
			t.metrics.ScheduleCacheHit = true
			se := v.(*schedEntry)
			return core.SynthesizeWithSchedule(t.ctx, t.graph, opts, se.s.Clone(), se.info)
		}
		if fl, ok := s.schedFlight[t.schedKey]; ok {
			s.mu.Unlock()
			select {
			case <-fl.done:
			case <-t.ctx.Done():
				return nil, t.ctx.Err()
			}
			if fl.err != nil {
				// The leader may have failed in a stage this job does not
				// share (its grid, not the schedule): retry independently.
				continue
			}
			s.mu.Lock()
			s.stats.ScheduleHits++
			s.stats.Coalesced++
			s.mu.Unlock()
			t.metrics.ScheduleCacheHit, t.metrics.Coalesced = true, true
			return core.SynthesizeWithSchedule(t.ctx, t.graph, opts, fl.sched.s.Clone(), fl.sched.info)
		}
		fl := &flight{done: make(chan struct{})}
		s.schedFlight[t.schedKey] = fl
		s.stats.ScheduleSolves++
		s.mu.Unlock()

		res, err := core.SynthesizeContext(t.ctx, t.graph, opts)
		s.mu.Lock()
		delete(s.schedFlight, t.schedKey)
		if err == nil {
			fl.sched = &schedEntry{s: res.Schedule.Clone(), info: res.SchedInfo}
			s.scheds.put(t.schedKey, fl.sched)
		}
		fl.err = err
		s.mu.Unlock()
		close(fl.done)
		return res, err
	}
}

// copyResult returns a shallow per-caller copy of a cached result so
// mutating accessors (Verify's Verified flag, the Service metrics) never
// race across jobs sharing one cache entry. The schedule, architecture and
// layout are immutable after synthesis and stay shared.
func copyResult(res *core.Result) *core.Result {
	cp := *res
	cp.Service = nil
	return &cp
}
