// Package service implements long-lived synthesis solver sessions on top of
// the core pipeline: a bounded worker pool behind a priority- and
// tenant-aware admission queue, a content-addressed full-result cache and a
// schedule cache keyed by the canonical assay fingerprint
// (internal/seqgraph.Fingerprint) plus the semantic synthesis options,
// single-flight deduplication of identical in-flight solves, an optional
// persistent store tier shared across replicas (internal/store) with
// cross-replica single-flight leases, per-job progress event streams, and
// incremental re-synthesis of edited assays via the scheduler's warm-start
// hook.
//
// The schedule cache is what makes design-space exploration cheap: the
// expensive scheduling-and-binding solve depends only on the assay and the
// device/transport/engine options, not on the connection grid, so a grid
// sweep over one assay re-solves the MILP exactly once and re-runs only the
// architectural and physical stages per grid size. The persistent tier
// extends the same economics across process restarts and replica fleets: it
// write-through-backs the schedule cache, and a replica that misses both
// in-memory caches either loads the fleet's prior solve or takes the
// fleet-wide lease and becomes the one replica solving that key cold.
package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"flowsyn/internal/core"
	"flowsyn/internal/sched"
	"flowsyn/internal/seqgraph"
	"flowsyn/internal/store"
)

// Errors returned by Submit and ticket accessors.
var (
	// ErrClosed reports a Submit to a solver that has been closed.
	ErrClosed = errors.New("service: solver closed")
	// ErrQueueFull reports that the bounded submit queue is at capacity;
	// the caller should retry later (backpressure, not failure).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrTenantQuota reports that the submitting tenant has reached its
	// per-tenant queued-job quota; other tenants' capacity is unaffected.
	ErrTenantQuota = errors.New("service: tenant queue quota exceeded")
	// ErrExpired reports a queued job evicted before it ran: it outlived
	// the queue TTL, or its deadline passed while it waited.
	ErrExpired = errors.New("service: job expired in queue")
	// ErrPending reports a Result call on a ticket that has not finished.
	ErrPending = errors.New("service: job still pending")
)

// Config sizes a Solver session.
type Config struct {
	// Workers is the synthesis worker pool size; 0 or negative selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the admission queue; Submit returns ErrQueueFull
	// when it is exceeded. 0 selects 256.
	QueueDepth int
	// CacheEntries bounds each of the result and schedule LRU caches.
	// 0 selects 512; negative disables caching entirely, including the
	// persistent tier consult (an explicitly cache-less session never
	// serves stale work, even from a shared store).
	CacheEntries int
	// Store, if non-nil, is the persistent artifact store shared by the
	// replica fleet: the schedule cache writes through to it, cold lookups
	// consult it before solving, and cross-replica single-flight leases
	// are taken on it. A nil Store degrades to local-only single-flight.
	Store store.Store
	// JobTTL evicts jobs that sit queued longer than this (failed with
	// ErrExpired when a worker finally reaches them). 0 disables.
	JobTTL time.Duration
	// TenantQueue caps the queued jobs of any single tenant; Submit
	// returns ErrTenantQuota beyond it. 0 disables per-tenant quotas.
	TenantQueue int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	return c
}

// Job is one synthesis request: an assay graph plus the synthesis options.
type Job struct {
	// Name labels the job in results and events; defaults to the assay name.
	Name string
	// Graph is the assay to synthesize.
	Graph *seqgraph.Graph
	// Options configures the pipeline. Progress and Warm are owned by the
	// solver and must be left nil; the per-ticket event stream and
	// Resynthesize provide those capabilities in session mode.
	Options core.Options
	// Tenant attributes the job to a client for quotas and admission
	// accounting; empty means the anonymous default tenant.
	Tenant string
	// Priority orders admission: higher classes are served first, equal
	// classes by earliest Deadline, then FIFO. 0 is the normal class;
	// negative classes yield to all normal traffic.
	Priority int
	// Deadline, if set, orders the job within its priority class
	// (earliest first) and evicts it (ErrExpired) if it is still queued
	// when the deadline passes.
	Deadline time.Time
}

// TenantStats counts one tenant's admission outcomes.
type TenantStats struct {
	// Admitted counts accepted submissions; RejectedQuota and RejectedFull
	// count submissions refused by the per-tenant quota and the global
	// queue bound respectively.
	Admitted, RejectedQuota, RejectedFull int64
	// Completed, Failed and Expired count terminal outcomes.
	Completed, Failed, Expired int64
	// Queued is the tenant's instantaneous queued-job count.
	Queued int
}

// WallBucketsMS are the solve-wall histogram bucket upper bounds in
// milliseconds; the last bucket of a Histogram is the overflow (+Inf).
var WallBucketsMS = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram is a fixed-bucket latency histogram (bounds WallBucketsMS plus
// overflow). It is a value type: Stats snapshots copy it wholesale.
type Histogram struct {
	// Counts holds one non-cumulative count per WallBucketsMS bound, plus
	// the overflow bucket last.
	Counts [14]int64
	// SumMS and Count aggregate all observations.
	SumMS float64
	Count int64
}

func (h *Histogram) observe(ms float64) {
	h.Count++
	h.SumMS += ms
	for i, b := range WallBucketsMS {
		if ms <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(WallBucketsMS)]++
}

// Stats is a snapshot of a solver session's counters.
type Stats struct {
	// Submitted, Completed and Failed count jobs over the session lifetime;
	// Expired counts jobs evicted from the queue (TTL or deadline), a
	// subset of Failed.
	Submitted, Completed, Failed, Expired int64
	// ResultHits and ResultMisses count full-result cache lookups; a hit
	// serves the finished chip with no pipeline stage running.
	ResultHits, ResultMisses int64
	// ScheduleHits counts schedule-cache hits (bind/arch/phys re-ran on a
	// cached schedule); ScheduleSolves counts schedule solves that actually
	// executed an engine — the "cold solves" a fleet minimizes.
	ScheduleHits, ScheduleSolves int64
	// StoreHits counts schedules loaded from the persistent tier (another
	// replica's — or a previous life's — solve reused); StorePuts counts
	// write-throughs, StoreErrors failed store operations (each degrades
	// to a local solve, never a job failure).
	StoreHits, StorePuts, StoreErrors int64
	// LeaseWaits counts jobs that waited on another replica's
	// single-flight lease; LeaseWaitTotal accumulates that waiting time.
	LeaseWaits     int64
	LeaseWaitTotal time.Duration
	// Coalesced counts jobs served by waiting on an identical in-flight
	// solve instead of starting their own (also counted in ResultHits or
	// ScheduleHits).
	Coalesced int64
	// InFlight and Queued describe the instantaneous pool state.
	InFlight, Queued int
	// EventsDropped counts progress events discarded because a ticket's
	// subscriber fell behind its buffered stream.
	EventsDropped int64
	// ColdWall observes the wall time of jobs that ran a scheduling engine
	// (or a recovery splice); WarmWall those served from any warm tier
	// (result cache, schedule cache, store, coalesced flight).
	ColdWall, WarmWall Histogram
	// Tenants snapshots per-tenant admission counters, keyed by tenant
	// name ("" is the anonymous default tenant).
	Tenants map[string]TenantStats
}

// flight is one in-flight solve other workers with the same key wait on.
type flight struct {
	done  chan struct{}
	res   *core.Result // result-key flights
	sched *schedEntry  // schedule-key flights
	err   error
}

// schedEntry is a cached scheduling-and-binding solution.
type schedEntry struct {
	s    *sched.Schedule
	info *sched.ILPInfo
	// storage echoes the strategy discriminator (storage.Config.Key()) the
	// schedule was solved under; persisted with the entry.
	storage string
}

// leasePollInterval is how often a replica waiting on another replica's
// single-flight lease re-checks the store for the published entry.
const leasePollInterval = 5 * time.Millisecond

// Solver is a long-lived synthesis session. Create one with New, submit jobs
// with Submit (or Resynthesize), and Close it to drain.
type Solver struct {
	cfg   Config
	store store.Store
	owner string
	wg    sync.WaitGroup

	mu           sync.Mutex
	cond         *sync.Cond
	queue        admitQueue
	closed       bool
	nextID       uint64
	stats        Stats
	tenants      map[string]*TenantStats
	results      *lruCache
	scheds       *lruCache
	resultFlight map[string]*flight
	schedFlight  map[string]*flight
}

// New starts a solver session with cfg's worker pool and caches.
func New(cfg Config) *Solver {
	cfg = cfg.withDefaults()
	host, _ := os.Hostname()
	s := &Solver{
		cfg:          cfg,
		store:        cfg.Store,
		owner:        fmt.Sprintf("%s/%d", host, os.Getpid()),
		tenants:      make(map[string]*TenantStats),
		resultFlight: make(map[string]*flight),
		schedFlight:  make(map[string]*flight),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.CacheEntries > 0 {
		s.results = newLRUCache(cfg.CacheEntries)
		s.scheds = newLRUCache(cfg.CacheEntries)
	} else {
		// An explicitly cache-less session does not consult the shared
		// store either; see Config.CacheEntries.
		s.store = nil
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.worker()
		}()
	}
	return s
}

// Submit validates and enqueues a job, returning its ticket immediately. The
// job runs under ctx: cancelling it aborts the job (queued or mid-solve) with
// ctx's error. Submit itself never blocks — a full queue returns ErrQueueFull
// and a tenant over its quota ErrTenantQuota.
func (s *Solver) Submit(ctx context.Context, job Job) (*Ticket, error) {
	return s.submit(ctx, job, nil, core.ServiceMetrics{}, nil)
}

// Resynthesize submits an edited assay as an incremental re-synthesis of a
// finished prior job: the prior schedule's binding seeds the new solve
// through the scheduler's warm-start hook, and the unchanged part of the
// assay keeps its proven structure. The prior ticket must have completed
// successfully; options are inherited from the prior job unless the edited
// job overrides them (zero Options means inherit).
func (s *Solver) Resynthesize(ctx context.Context, prior *Ticket, job Job) (*Ticket, error) {
	if prior == nil {
		return nil, errors.New("service: resynthesize needs a prior ticket")
	}
	res, err := prior.Result()
	if err != nil {
		return nil, fmt.Errorf("service: resynthesize from unfinished or failed job: %w", err)
	}
	if job.Graph == nil {
		return nil, errors.New("service: resynthesize needs an edited assay")
	}
	if job.Options.Devices == 0 {
		// Zero options inherit the prior job's configuration.
		job.Options = prior.opts
	}
	if job.Name == "" {
		job.Name = prior.Name
	}
	if job.Tenant == "" {
		job.Tenant = prior.tenant
	}
	d := DiffGraphs(prior.graph, job.Graph)
	metrics := core.ServiceMetrics{
		ReusedOps: d.Unchanged,
		EditedOps: d.Changed + d.Added + d.Removed,
	}
	return s.submit(ctx, job, res.Schedule, metrics, nil)
}

func (s *Solver) submit(ctx context.Context, job Job, warm *sched.Schedule, metrics core.ServiceMetrics, rec *recoverReq) (*Ticket, error) {
	if job.Graph == nil {
		return nil, errors.New("service: job has no assay graph")
	}
	if err := job.Graph.Validate(); err != nil {
		return nil, err
	}
	if job.Options.Progress != nil || job.Options.Warm != nil {
		return nil, errors.New("service: job options must leave Progress and Warm nil (owned by the solver)")
	}
	opts, err := job.Options.Normalized()
	if err != nil {
		return nil, err
	}
	if job.Name == "" {
		job.Name = job.Graph.Name
	}
	fp := seqgraph.Fingerprint(job.Graph)
	t := &Ticket{
		Name:      job.Name,
		ctx:       ctx,
		graph:     job.Graph,
		opts:      opts,
		warm:      warm,
		rec:       rec,
		tenant:    job.Tenant,
		priority:  job.Priority,
		deadline:  job.Deadline,
		storeOK:   !hasDuplicateNames(job.Graph),
		schedKey:  scheduleKey(fp, opts),
		resultKey: resultKey(fp, opts),
		metrics:   metrics,
		submitted: time.Now(),
		events:    make(chan Event, eventBuffer),
		done:      make(chan struct{}),
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	ts := s.tenant(job.Tenant)
	if s.queue.Len() >= s.cfg.QueueDepth {
		ts.RejectedFull++
		return nil, ErrQueueFull
	}
	if s.cfg.TenantQueue > 0 && ts.Queued >= s.cfg.TenantQueue {
		ts.RejectedQuota++
		return nil, ErrTenantQuota
	}
	s.nextID++
	t.id = s.nextID
	s.queue.push(t)
	ts.Queued++
	ts.Admitted++
	s.stats.Submitted++
	t.emit(Event{Kind: EventQueued})
	s.cond.Signal()
	return t, nil
}

// tenant returns the (lazily created) counter record of one tenant; the
// caller holds s.mu.
func (s *Solver) tenant(name string) *TenantStats {
	ts, ok := s.tenants[name]
	if !ok {
		ts = &TenantStats{}
		s.tenants[name] = ts
	}
	return ts
}

// Close stops accepting jobs, drains the queue (every queued job still runs
// to completion under its own context), and waits for the workers to exit.
// Closing twice is a no-op.
func (s *Solver) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Stats returns a snapshot of the session counters.
func (s *Solver) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Queued = s.queue.Len()
	st.Tenants = make(map[string]TenantStats, len(s.tenants))
	for name, ts := range s.tenants {
		st.Tenants[name] = *ts
	}
	return st
}

// worker pops admitted jobs in priority order until the solver closes and
// the queue drains.
func (s *Solver) worker() {
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.queue.Len() == 0 {
			s.mu.Unlock()
			return
		}
		t := s.queue.pop()
		ts := s.tenant(t.tenant)
		ts.Queued--
		if t.expired(time.Now(), s.cfg.JobTTL) {
			s.stats.Expired++
			ts.Expired++
			s.mu.Unlock()
			s.fail(t, fmt.Errorf("%w (queued %s)", ErrExpired, time.Since(t.submitted).Round(time.Millisecond)))
			continue
		}
		s.stats.InFlight++
		s.mu.Unlock()
		s.runTicket(t)
		s.mu.Lock()
		s.stats.InFlight--
		s.mu.Unlock()
	}
}

// runTicket executes one job inside a worker.
func (s *Solver) runTicket(t *Ticket) {
	t.metrics.QueueWait = time.Since(t.submitted)
	t.emit(Event{Kind: EventStarted})
	if err := t.ctx.Err(); err != nil {
		s.fail(t, err)
		return
	}
	start := time.Now()
	res, err := s.resolve(t)
	t.metrics.Runtime = time.Since(start)
	if err != nil {
		s.fail(t, err)
		return
	}
	warm := t.metrics.CacheHit || t.metrics.ScheduleCacheHit || t.metrics.StoreHit
	s.mu.Lock()
	s.stats.Completed++
	s.tenant(t.tenant).Completed++
	ms := float64(t.metrics.Runtime.Microseconds()) / 1e3
	if warm {
		s.stats.WarmWall.observe(ms)
	} else {
		s.stats.ColdWall.observe(ms)
	}
	s.mu.Unlock()
	t.finish(res)
	// Count drops after the terminal event: its delivery may evict one last
	// buffered event. The worker is the ticket's only mutator, so this read
	// is safe; the session counter is monotonic either way.
	s.mu.Lock()
	s.stats.EventsDropped += int64(t.droppedEvents)
	s.mu.Unlock()
}

func (s *Solver) fail(t *Ticket, err error) {
	s.mu.Lock()
	s.stats.Failed++
	s.tenant(t.tenant).Failed++
	s.mu.Unlock()
	t.fail(err)
	s.mu.Lock()
	s.stats.EventsDropped += int64(t.droppedEvents)
	s.mu.Unlock()
}

// resolve serves the job from the full-result cache, an identical in-flight
// solve, or a fresh pipeline run, in that order.
func (s *Solver) resolve(t *Ticket) (*core.Result, error) {
	// Recovery jobs never touch the caches: their plan depends on the fault
	// and the executed prefix, neither of which is part of the cache keys.
	if s.results == nil || t.rec != nil {
		return s.solve(t)
	}
	for {
		s.mu.Lock()
		if v, ok := s.results.get(t.resultKey); ok {
			s.stats.ResultHits++
			s.mu.Unlock()
			t.metrics.CacheHit = true
			t.emit(Event{Kind: EventCacheHit})
			return copyResult(v.(*core.Result)), nil
		}
		if fl, ok := s.resultFlight[t.resultKey]; ok {
			s.mu.Unlock()
			select {
			case <-fl.done:
			case <-t.ctx.Done():
				return nil, t.ctx.Err()
			}
			if fl.err != nil {
				// A leader aborted by its own caller (or failed) settles
				// nothing for this job: retry, becoming the leader if the
				// slot is still free.
				continue
			}
			s.mu.Lock()
			s.stats.ResultHits++
			s.stats.Coalesced++
			s.mu.Unlock()
			t.metrics.CacheHit, t.metrics.Coalesced = true, true
			t.emit(Event{Kind: EventCacheHit})
			return copyResult(fl.res), nil
		}
		fl := &flight{done: make(chan struct{})}
		s.resultFlight[t.resultKey] = fl
		s.stats.ResultMisses++
		s.mu.Unlock()

		res, err := s.solve(t)
		s.mu.Lock()
		delete(s.resultFlight, t.resultKey)
		if err == nil {
			s.results.put(t.resultKey, res)
		}
		fl.res, fl.err = res, err
		s.mu.Unlock()
		close(fl.done)
		if err != nil {
			return nil, err
		}
		return copyResult(res), nil
	}
}

// solve runs the pipeline, serving the schedule stage from the schedule
// cache, an identical in-flight schedule solve, or the fleet's persistent
// store when possible.
func (s *Solver) solve(t *Ticket) (*core.Result, error) {
	opts := t.opts
	opts.Warm = t.warm
	opts.Progress = t.emitCore
	if t.rec != nil {
		// Online recovery: the prior result supplies the warm start and the
		// chip parameters internally, and the schedule cache is bypassed (a
		// pinned suffix solve is not a solve of the bare assay).
		opts.Warm = nil
		return core.RecoverContext(t.ctx, opts, t.rec.prior, t.rec.fault)
	}
	if s.scheds == nil {
		return core.SynthesizeContext(t.ctx, t.graph, opts)
	}
	for {
		s.mu.Lock()
		if v, ok := s.scheds.get(t.schedKey); ok {
			s.stats.ScheduleHits++
			s.mu.Unlock()
			t.metrics.ScheduleCacheHit = true
			se := v.(*schedEntry)
			return core.SynthesizeWithSchedule(t.ctx, t.graph, opts, se.s.Clone(), se.info)
		}
		if fl, ok := s.schedFlight[t.schedKey]; ok {
			s.mu.Unlock()
			select {
			case <-fl.done:
			case <-t.ctx.Done():
				return nil, t.ctx.Err()
			}
			if fl.err != nil {
				// The leader may have failed in a stage this job does not
				// share (its grid, not the schedule): retry independently.
				continue
			}
			s.mu.Lock()
			s.stats.ScheduleHits++
			s.stats.Coalesced++
			s.mu.Unlock()
			t.metrics.ScheduleCacheHit, t.metrics.Coalesced = true, true
			return core.SynthesizeWithSchedule(t.ctx, t.graph, opts, fl.sched.s.Clone(), fl.sched.info)
		}
		fl := &flight{done: make(chan struct{})}
		s.schedFlight[t.schedKey] = fl
		s.mu.Unlock()

		res, se, err := s.obtainSchedule(t, opts)
		s.mu.Lock()
		delete(s.schedFlight, t.schedKey)
		if err == nil {
			fl.sched = se
			s.scheds.put(t.schedKey, se)
		}
		fl.err = err
		s.mu.Unlock()
		close(fl.done)
		return res, err
	}
}

// obtainSchedule produces the schedule entry for t's key as the local
// single-flight leader: from the persistent store if another replica (or a
// previous life of this one) already solved it, otherwise by running the
// engine under the fleet-wide lease and writing the solution through. Store
// trouble of any kind degrades to a local solve.
func (s *Solver) obtainSchedule(t *Ticket, opts core.Options) (*core.Result, *schedEntry, error) {
	if s.store == nil || !t.storeOK {
		return s.engineSolve(t, opts)
	}
	var waitStart time.Time
	for {
		if se, ok := s.storeGet(t); ok {
			s.settleLeaseWait(t, waitStart)
			t.metrics.StoreHit = true
			t.emit(Event{Kind: EventStoreHit})
			res, err := core.SynthesizeWithSchedule(t.ctx, t.graph, opts, se.s.Clone(), se.info)
			return res, se, err
		}
		lease, err := s.store.Claim(t.schedKey, s.owner)
		if err == nil {
			// Won the fleet-wide claim. Re-check the entry: a racer may have
			// published between our miss and the claim.
			if se, ok := s.storeGet(t); ok {
				lease.Release()
				s.settleLeaseWait(t, waitStart)
				t.metrics.StoreHit = true
				t.emit(Event{Kind: EventStoreHit})
				res, rerr := core.SynthesizeWithSchedule(t.ctx, t.graph, opts, se.s.Clone(), se.info)
				return res, se, rerr
			}
			s.settleLeaseWait(t, waitStart)
			res, se, serr := s.engineSolve(t, opts)
			if serr == nil {
				s.storePut(t.schedKey, se)
			}
			lease.Release()
			return res, se, serr
		}
		if !errors.Is(err, store.ErrLeaseHeld) {
			// Backend broken (permissions, disk full, network): solve
			// locally, count the degradation, keep serving.
			s.mu.Lock()
			s.stats.StoreErrors++
			s.mu.Unlock()
			s.settleLeaseWait(t, waitStart)
			return s.engineSolve(t, opts)
		}
		// Another replica holds the lease: wait for its entry to land (or
		// its lease to expire, making the key claimable above).
		if waitStart.IsZero() {
			waitStart = time.Now()
			s.mu.Lock()
			s.stats.LeaseWaits++
			s.mu.Unlock()
		}
		select {
		case <-t.ctx.Done():
			s.settleLeaseWait(t, waitStart)
			return nil, nil, t.ctx.Err()
		case <-time.After(leasePollInterval):
		}
	}
}

// settleLeaseWait accounts the time t spent waiting on a foreign lease.
func (s *Solver) settleLeaseWait(t *Ticket, waitStart time.Time) {
	if waitStart.IsZero() {
		return
	}
	wait := time.Since(waitStart)
	t.metrics.LeaseWait += wait
	s.mu.Lock()
	s.stats.LeaseWaitTotal += wait
	s.mu.Unlock()
}

// storeGet loads and decodes t's schedule entry from the persistent tier.
func (s *Solver) storeGet(t *Ticket) (*schedEntry, bool) {
	payload, err := s.store.Get(t.schedKey)
	if err != nil {
		return nil, false
	}
	se, err := decodeSchedEntry(payload, t.graph)
	if err != nil {
		// Damaged or incompatible entry: a miss, re-solved and re-published.
		return nil, false
	}
	s.mu.Lock()
	s.stats.StoreHits++
	s.mu.Unlock()
	return se, true
}

// storePut writes a solved schedule through to the persistent tier.
func (s *Solver) storePut(key string, se *schedEntry) {
	payload, err := encodeSchedEntry(se)
	if err == nil {
		err = s.store.Put(key, payload)
	}
	s.mu.Lock()
	if err != nil {
		s.stats.StoreErrors++
	} else {
		s.stats.StorePuts++
	}
	s.mu.Unlock()
}

// engineSolve runs the full cold pipeline — the one path that executes a
// scheduling engine.
func (s *Solver) engineSolve(t *Ticket, opts core.Options) (*core.Result, *schedEntry, error) {
	s.mu.Lock()
	s.stats.ScheduleSolves++
	s.mu.Unlock()
	res, err := core.SynthesizeContext(t.ctx, t.graph, opts)
	if err != nil {
		return nil, nil, err
	}
	return res, &schedEntry{s: res.Schedule.Clone(), info: res.SchedInfo, storage: opts.Storage.Key()}, nil
}

// copyResult returns a shallow per-caller copy of a cached result so
// mutating accessors (Verify's Verified flag, the Service metrics) never
// race across jobs sharing one cache entry. The schedule, architecture and
// layout are immutable after synthesis and stay shared.
func copyResult(res *core.Result) *core.Result {
	cp := *res
	cp.Service = nil
	return &cp
}
