package service

import (
	"context"
	"time"

	"flowsyn/internal/core"
	"flowsyn/internal/sched"
	"flowsyn/internal/seqgraph"
)

// eventBuffer is the per-ticket progress stream capacity; events beyond a
// slow subscriber's buffer are dropped (and counted) rather than stalling a
// solver worker.
const eventBuffer = 256

// Event kinds of a ticket's progress stream, in the order they can occur.
const (
	// EventQueued is emitted once at submission.
	EventQueued = "queued"
	// EventStarted is emitted when a worker picks the job up.
	EventStarted = "started"
	// EventCacheHit is emitted when the finished result is served from the
	// full-result cache or a coalesced in-flight solve.
	EventCacheHit = "cache-hit"
	// EventStoreHit is emitted when the schedule is loaded from the fleet's
	// persistent store instead of being solved here.
	EventStoreHit = "store-hit"
	// EventStageStart and EventStageEnd bracket each pipeline stage.
	EventStageStart = core.EventStageStart
	EventStageEnd   = core.EventStageEnd
	// EventIncumbent reports an improving incumbent of the exact solve:
	// its makespan, objective and branch-and-bound node count.
	EventIncumbent = core.EventIncumbent
	// EventSolver summarizes a finished exact solve, including the final
	// MIP gap.
	EventSolver = core.EventSolver
	// EventDone and EventFailed terminate the stream.
	EventDone   = "done"
	EventFailed = "failed"
)

// Event is one observation in a ticket's progress stream.
type Event struct {
	// Seq numbers the events of one ticket from 1, monotonically; gaps mark
	// events dropped past a slow subscriber.
	Seq int
	// Kind is one of the Event* constants.
	Kind string
	// Time stamps the emission.
	Time time.Time
	// Stage names the pipeline stage (stage and incumbent events).
	Stage string
	// Duration is the stage wall-clock time (EventStageEnd only).
	Duration time.Duration
	// Makespan, Objective and Nodes describe an incumbent (EventIncumbent),
	// a finished solve (EventSolver), or the final result's makespan
	// (EventDone).
	Makespan  int
	Objective float64
	Nodes     int
	// Gap is the relative MIP gap at termination (EventSolver only).
	Gap float64
	// Err carries the failure message (EventFailed only).
	Err string
}

// Ticket is a handle to one submitted job: wait on it, read its result, and
// stream its progress events.
type Ticket struct {
	// Name labels the job (defaulted to the assay name).
	Name string

	id        uint64
	ctx       context.Context
	graph     *seqgraph.Graph
	opts      core.Options
	warm      *sched.Schedule
	rec       *recoverReq
	tenant    string
	priority  int
	deadline  time.Time
	storeOK   bool
	schedKey  string
	resultKey string
	submitted time.Time

	// metrics and droppedEvents are mutated only by the owning worker (and
	// Submit, strictly before the ticket enters the queue).
	metrics       core.ServiceMetrics
	droppedEvents int
	seq           int

	events chan Event
	done   chan struct{}
	res    *core.Result
	err    error
}

// ID returns the session-unique job id.
func (t *Ticket) ID() uint64 { return t.id }

// Done returns a channel closed when the job has finished (or failed).
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the job finishes or ctx is cancelled, then returns the
// result. The job itself keeps running under its submission context when the
// waiter's ctx ends first.
func (t *Ticket) Wait(ctx context.Context) (*core.Result, error) {
	select {
	case <-t.done:
		return t.res, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result returns the finished result without blocking; ErrPending while the
// job is still queued or running.
func (t *Ticket) Result() (*core.Result, error) {
	select {
	case <-t.done:
		return t.res, t.err
	default:
		return nil, ErrPending
	}
}

// Events returns the job's progress stream. The channel is buffered and
// closed after the terminal done/failed event; a subscriber that falls more
// than the buffer behind loses intermediate events (visible as Seq gaps),
// never the terminal one.
func (t *Ticket) Events() <-chan Event { return t.events }

// emit appends one event to the stream, stamping sequence and time. Called
// only from the owning worker (or Submit before enqueueing), so sequencing
// needs no lock. Non-terminal events are dropped when the buffer is full.
func (t *Ticket) emit(e Event) {
	t.seq++
	e.Seq = t.seq
	e.Time = time.Now()
	terminal := e.Kind == EventDone || e.Kind == EventFailed
	if terminal {
		// Guarantee room for the terminal event by evicting the oldest
		// buffered one if needed.
		for {
			select {
			case t.events <- e:
				return
			default:
				select {
				case <-t.events:
					t.droppedEvents++
				default:
				}
			}
		}
	}
	select {
	case t.events <- e:
	default:
		t.droppedEvents++
	}
}

// emitCore adapts a core pipeline progress event into the stream.
func (t *Ticket) emitCore(e core.ProgressEvent) {
	t.emit(Event{
		Kind:      e.Kind,
		Stage:     e.Stage,
		Duration:  e.Duration,
		Makespan:  e.Makespan,
		Objective: e.Objective,
		Nodes:     e.Nodes,
		Gap:       e.Gap,
	})
}

// finish installs the successful result and closes the ticket.
func (t *Ticket) finish(res *core.Result) {
	t.metrics.Events = t.seq + 1 // including the done event
	t.metrics.Dropped = t.droppedEvents
	m := t.metrics
	res.Service = &m
	t.res = res
	t.emit(Event{Kind: EventDone, Makespan: res.Schedule.Makespan})
	close(t.events)
	close(t.done)
}

// fail installs the error and closes the ticket.
func (t *Ticket) fail(err error) {
	t.err = err
	t.emit(Event{Kind: EventFailed, Err: err.Error()})
	close(t.events)
	close(t.done)
}

// Metrics returns the job's service metrics; valid once Done is closed.
func (t *Ticket) Metrics() core.ServiceMetrics {
	select {
	case <-t.done:
		return t.metrics
	default:
		return core.ServiceMetrics{}
	}
}
