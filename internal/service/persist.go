package service

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"flowsyn/internal/milp"
	"flowsyn/internal/sched"
	"flowsyn/internal/seqgraph"
)

// The persistent store tier keeps the expensive solve artifact — the
// scheduling-and-binding solution — under the semantic schedule key, so a
// fleet of replicas (and every restart) pays each cold engine solve exactly
// once. Schedules are serialized by operation *name*, not OpID: two replicas
// can build the same canonical assay with different insertion orders, and the
// fingerprint guarantees name-level identity, not ID-level. Graphs with
// duplicate operation names fall outside that guarantee and skip the store.

// schedPayload is the persisted form of one schedule-cache entry.
type schedPayload struct {
	Assay     string         `json:"assay"`
	Devices   int            `json:"devices"`
	Transport int            `json:"transport"`
	Makespan  int            `json:"makespan"`
	Ops       []opAssignment `json:"ops"`
	Departs   []departEntry  `json:"departs,omitempty"`
	// Storage is the strategy discriminator (storage.Config.Key()) the
	// schedule was solved under; UnitWindows and QueueDelay carry the
	// dedicated-unit port grants for serialized strategies. The store key
	// already separates strategies, so Storage here is a defensive echo.
	Storage     string            `json:"storage,omitempty"`
	UnitWindows []unitWindowEntry `json:"unit_windows,omitempty"`
	QueueDelay  int               `json:"queue_delay,omitempty"`
	Info        *infoPayload      `json:"info,omitempty"`
}

// opAssignment places one operation, referenced by name.
type opAssignment struct {
	Op     string `json:"op"`
	Device int    `json:"device"`
	Start  int    `json:"start"`
	End    int    `json:"end"`
}

// departEntry is one fan-out departure offset, referenced by edge names.
type departEntry struct {
	Parent string `json:"parent"`
	Child  string `json:"child"`
	Offset int    `json:"offset"`
}

// unitWindowEntry is one dedicated-unit port grant, referenced by edge names.
type unitWindowEntry struct {
	Parent string `json:"parent"`
	Child  string `json:"child"`
	Store  int    `json:"store"`
	Fetch  int    `json:"fetch"`
}

// infoPayload preserves the headline solver diagnostics of the original
// solve. The full milp.SolveStats (pivot counts, cut families, kernel
// internals) describe the machine that solved, not the artifact, and are
// deliberately dropped.
type infoPayload struct {
	Status     int     `json:"status"`
	Objective  float64 `json:"objective"`
	Nodes      int     `json:"nodes"`
	Iterations int     `json:"iterations"`
	RuntimeUS  int64   `json:"runtime_us"`
	Winner     string  `json:"winner"`
}

// hasDuplicateNames reports whether the graph's op names alias; such graphs
// cannot round-trip through the name-keyed payload and skip the store.
func hasDuplicateNames(g *seqgraph.Graph) bool {
	seen := make(map[string]struct{}, g.NumOps())
	for _, op := range g.Operations() {
		if _, dup := seen[op.Name]; dup {
			return true
		}
		seen[op.Name] = struct{}{}
	}
	return false
}

// encodeSchedEntry serializes a schedule-cache entry for the store. The
// emission is deterministic (ops in OpID order, departs sorted by edge name)
// so identical solves publish identical bytes.
func encodeSchedEntry(se *schedEntry) ([]byte, error) {
	s := se.s
	g := s.Graph
	p := schedPayload{
		Assay:     g.Name,
		Devices:   s.Devices,
		Transport: s.Transport,
		Makespan:  s.Makespan,
		Ops:       make([]opAssignment, 0, len(s.Assignments)),
	}
	for _, a := range s.Assignments {
		p.Ops = append(p.Ops, opAssignment{
			Op: g.Op(a.Op).Name, Device: a.Device, Start: a.Start, End: a.End,
		})
	}
	for e, off := range s.DepartOffsets {
		p.Departs = append(p.Departs, departEntry{
			Parent: g.Op(e.Parent).Name, Child: g.Op(e.Child).Name, Offset: off,
		})
	}
	sort.Slice(p.Departs, func(i, j int) bool {
		if p.Departs[i].Parent != p.Departs[j].Parent {
			return p.Departs[i].Parent < p.Departs[j].Parent
		}
		return p.Departs[i].Child < p.Departs[j].Child
	})
	p.Storage = se.storage
	p.QueueDelay = s.UnitQueueDelay
	for e, w := range s.UnitWindows {
		p.UnitWindows = append(p.UnitWindows, unitWindowEntry{
			Parent: g.Op(e.Parent).Name, Child: g.Op(e.Child).Name,
			Store: w.StoreStart, Fetch: w.FetchStart,
		})
	}
	sort.Slice(p.UnitWindows, func(i, j int) bool {
		if p.UnitWindows[i].Parent != p.UnitWindows[j].Parent {
			return p.UnitWindows[i].Parent < p.UnitWindows[j].Parent
		}
		return p.UnitWindows[i].Child < p.UnitWindows[j].Child
	})
	if info := se.info; info != nil {
		p.Info = &infoPayload{
			Status:     int(info.Status),
			Objective:  info.Objective,
			Nodes:      info.Nodes,
			Iterations: info.Iterations,
			RuntimeUS:  info.Runtime.Microseconds(),
			Winner:     info.Winner,
		}
	}
	return json.Marshal(p)
}

// decodeSchedEntry rebuilds a schedule-cache entry against the submitting
// job's own graph. Any inconsistency — unknown or missing op names, window
// or precedence violations — fails the decode, and the caller treats the
// entry as a miss and re-solves; a damaged store can cost work, never
// correctness.
func decodeSchedEntry(payload []byte, g *seqgraph.Graph) (*schedEntry, error) {
	var p schedPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, err
	}
	if len(p.Ops) != g.NumOps() {
		return nil, fmt.Errorf("service: stored schedule has %d ops, assay has %d", len(p.Ops), g.NumOps())
	}
	byName := make(map[string]seqgraph.OpID, g.NumOps())
	for _, op := range g.Operations() {
		byName[op.Name] = op.ID
	}
	s := &sched.Schedule{
		Graph:       g,
		Devices:     p.Devices,
		Transport:   p.Transport,
		Makespan:    p.Makespan,
		Assignments: make([]sched.Assignment, g.NumOps()),
	}
	seen := make(map[seqgraph.OpID]bool, g.NumOps())
	for _, oa := range p.Ops {
		id, ok := byName[oa.Op]
		if !ok {
			return nil, fmt.Errorf("service: stored schedule names unknown op %q", oa.Op)
		}
		if seen[id] {
			return nil, fmt.Errorf("service: stored schedule assigns op %q twice", oa.Op)
		}
		seen[id] = true
		s.Assignments[id] = sched.Assignment{Op: id, Device: oa.Device, Start: oa.Start, End: oa.End}
	}
	if len(p.Departs) > 0 {
		s.DepartOffsets = make(map[seqgraph.Edge]int, len(p.Departs))
		for _, d := range p.Departs {
			pid, pok := byName[d.Parent]
			cid, cok := byName[d.Child]
			if !pok || !cok {
				return nil, fmt.Errorf("service: stored schedule departs unknown edge %s->%s", d.Parent, d.Child)
			}
			s.DepartOffsets[seqgraph.Edge{Parent: pid, Child: cid}] = d.Offset
		}
	}
	if len(p.UnitWindows) > 0 {
		s.UnitWindows = make(map[seqgraph.Edge]sched.UnitWindow, len(p.UnitWindows))
		for _, w := range p.UnitWindows {
			pid, pok := byName[w.Parent]
			cid, cok := byName[w.Child]
			if !pok || !cok {
				return nil, fmt.Errorf("service: stored schedule grants unit window on unknown edge %s->%s", w.Parent, w.Child)
			}
			s.UnitWindows[seqgraph.Edge{Parent: pid, Child: cid}] = sched.UnitWindow{StoreStart: w.Store, FetchStart: w.Fetch}
		}
	}
	s.UnitQueueDelay = p.QueueDelay
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("service: stored schedule invalid for this assay: %w", err)
	}
	se := &schedEntry{s: s, storage: p.Storage}
	if p.Info != nil {
		se.info = &sched.ILPInfo{
			Status:     milp.Status(p.Info.Status),
			Objective:  p.Info.Objective,
			Nodes:      p.Info.Nodes,
			Iterations: p.Info.Iterations,
			Runtime:    time.Duration(p.Info.RuntimeUS) * time.Microsecond,
			Winner:     p.Info.Winner,
		}
	}
	return se, nil
}
