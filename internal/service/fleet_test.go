package service

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"flowsyn/internal/seqgraph"
	"flowsyn/internal/store"
)

func openFleetStore(t *testing.T, dir string) *store.Disk {
	t.Helper()
	d, err := store.OpenDisk(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFleetSolvesOnce is the distributed acceptance property: N replicas
// sharing one persistent store perform exactly one cold engine solve per
// unique (assay, options) key fleet-wide — every other replica serves the
// key from the store.
func TestFleetSolvesOnce(t *testing.T) {
	dir := t.TempDir()
	job := pcrJob(t)

	const replicas = 3
	solvers := make([]*Solver, replicas)
	for i := range solvers {
		solvers[i] = New(Config{Workers: 2, Store: openFleetStore(t, dir)})
	}
	defer func() {
		for _, s := range solvers {
			s.Close()
		}
	}()

	// Run the key through every replica sequentially: the first solves cold,
	// the rest must load the published schedule.
	var makespans []int
	for _, s := range solvers {
		res := mustWait(t, submitOK(t, s, job))
		makespans = append(makespans, res.Schedule.Makespan)
	}
	for i, m := range makespans {
		if m != makespans[0] {
			t.Fatalf("replica %d makespan %d != replica 0 makespan %d", i, m, makespans[0])
		}
	}

	var solves, storeHits, puts int64
	for _, s := range solvers {
		st := s.Stats()
		solves += st.ScheduleSolves
		storeHits += st.StoreHits
		puts += st.StorePuts
	}
	if solves != 1 {
		t.Errorf("fleet performed %d cold solves for one unique key, want exactly 1", solves)
	}
	if storeHits != replicas-1 {
		t.Errorf("store hits: got %d want %d", storeHits, replicas-1)
	}
	if puts != 1 {
		t.Errorf("store puts: got %d want 1", puts)
	}
}

// TestFleetConcurrentReplicas races replicas on one cold key: the store
// lease must serialize them so only one engine solve runs fleet-wide.
func TestFleetConcurrentReplicas(t *testing.T) {
	dir := t.TempDir()
	job := pcrJob(t)

	const replicas = 4
	solvers := make([]*Solver, replicas)
	for i := range solvers {
		solvers[i] = New(Config{Workers: 1, Store: openFleetStore(t, dir)})
	}
	defer func() {
		for _, s := range solvers {
			s.Close()
		}
	}()

	tickets := make([]*Ticket, replicas)
	for i, s := range solvers {
		tickets[i] = submitOK(t, s, job)
	}
	base := mustWait(t, tickets[0])
	for _, tk := range tickets[1:] {
		res := mustWait(t, tk)
		if res.Schedule.Makespan != base.Schedule.Makespan {
			t.Fatalf("racing replicas disagree on makespan: %d vs %d",
				res.Schedule.Makespan, base.Schedule.Makespan)
		}
	}

	var solves int64
	for _, s := range solvers {
		solves += s.Stats().ScheduleSolves
	}
	if solves != 1 {
		t.Errorf("racing fleet performed %d cold solves, want exactly 1", solves)
	}
}

// TestRestartStartsWarm: a fresh session over a populated store serves its
// first job without an engine solve.
func TestRestartStartsWarm(t *testing.T) {
	dir := t.TempDir()
	job := pcrJob(t)

	s1 := New(Config{Workers: 1, Store: openFleetStore(t, dir)})
	cold := mustWait(t, submitOK(t, s1, job))
	s1.Close()

	s2 := New(Config{Workers: 1, Store: openFleetStore(t, dir)})
	defer s2.Close()
	warm := mustWait(t, submitOK(t, s2, job))
	if !warm.Service.StoreHit {
		t.Fatalf("restarted session should serve from the store, metrics %+v", warm.Service)
	}
	if warm.Schedule.Makespan != cold.Schedule.Makespan {
		t.Errorf("store-served makespan %d != cold %d", warm.Schedule.Makespan, cold.Schedule.Makespan)
	}
	if st := s2.Stats(); st.ScheduleSolves != 0 || st.StoreHits != 1 {
		t.Errorf("restarted session counters: %+v", st)
	}
}

// TestCorruptStoreEntryResolves: a damaged store entry is a miss — the job
// re-solves and republishes instead of failing or serving garbage.
func TestCorruptStoreEntryResolves(t *testing.T) {
	dir := t.TempDir()
	job := pcrJob(t)

	s1 := New(Config{Workers: 1, Store: openFleetStore(t, dir)})
	cold := mustWait(t, submitOK(t, s1, job))
	s1.Close()

	// Vandalize every entry file in the store.
	damaged := 0
	if err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		damaged++
		return os.WriteFile(path, []byte("{torn"), 0o644)
	}); err != nil {
		t.Fatal(err)
	}
	if damaged == 0 {
		t.Fatal("no store entries written by the cold solve")
	}

	s2 := New(Config{Workers: 1, Store: openFleetStore(t, dir)})
	defer s2.Close()
	res := mustWait(t, submitOK(t, s2, job))
	if res.Service.StoreHit {
		t.Error("corrupt entry must not serve as a store hit")
	}
	if res.Schedule.Makespan != cold.Schedule.Makespan {
		t.Errorf("re-solved makespan %d != original %d", res.Schedule.Makespan, cold.Schedule.Makespan)
	}
	st := s2.Stats()
	if st.ScheduleSolves != 1 {
		t.Errorf("damaged store should force exactly one re-solve, got %d", st.ScheduleSolves)
	}
	if st.StorePuts != 1 {
		t.Errorf("re-solve should republish the entry, puts %d", st.StorePuts)
	}
}

// TestSchedPayloadRoundTrip: encode/decode preserves the schedule and the
// headline solver diagnostics, rebuilt against the job's own graph.
func TestSchedPayloadRoundTrip(t *testing.T) {
	job := pcrJob(t)
	s := New(Config{Workers: 1, CacheEntries: -1})
	res := mustWait(t, submitOK(t, s, job))
	s.Close()

	se := &schedEntry{s: res.Schedule, info: res.SchedInfo}
	payload, err := encodeSchedEntry(se)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSchedEntry(payload, job.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if got.s.Makespan != res.Schedule.Makespan {
		t.Errorf("makespan: got %d want %d", got.s.Makespan, res.Schedule.Makespan)
	}
	if got.s.Devices != res.Schedule.Devices || got.s.Transport != res.Schedule.Transport {
		t.Errorf("chip params: got d%d u%d want d%d u%d",
			got.s.Devices, got.s.Transport, res.Schedule.Devices, res.Schedule.Transport)
	}
	for id, a := range got.s.Assignments {
		if want := res.Schedule.Assignments[id]; a != want {
			t.Errorf("op %d assignment: got %+v want %+v", id, a, want)
		}
	}
	if len(got.s.DepartOffsets) != len(res.Schedule.DepartOffsets) {
		t.Errorf("departs: got %d want %d", len(got.s.DepartOffsets), len(res.Schedule.DepartOffsets))
	}
	if res.SchedInfo != nil {
		if got.info == nil {
			t.Fatal("solver info lost in round trip")
		}
		if got.info.Status != res.SchedInfo.Status || got.info.Winner != res.SchedInfo.Winner {
			t.Errorf("info: got %+v want %+v", got.info, res.SchedInfo)
		}
	}
}

// TestSchedPayloadRejectsWrongGraph: decoding against a graph the payload
// was not solved for must fail, not mis-assign operations.
func TestSchedPayloadRejectsWrongGraph(t *testing.T) {
	job := pcrJob(t)
	s := New(Config{Workers: 1, CacheEntries: -1})
	res := mustWait(t, submitOK(t, s, job))
	s.Close()

	payload, err := encodeSchedEntry(&schedEntry{s: res.Schedule, info: res.SchedInfo})
	if err != nil {
		t.Fatal(err)
	}
	other := seqgraph.New("other")
	other.MustAddOperation("alone", seqgraph.Mix, 3, 2)
	if _, err := decodeSchedEntry(payload, other); err == nil {
		t.Fatal("decode against a foreign graph must fail")
	}
}

// TestDuplicateNameGraphSkipsStore: graphs whose op names alias cannot
// round-trip through the name-keyed payload and must bypass the store
// (still solving correctly).
func TestDuplicateNameGraphSkipsStore(t *testing.T) {
	g := seqgraph.New("dup")
	a := g.MustAddOperation("op", seqgraph.Mix, 3, 2)
	b := g.MustAddOperation("op", seqgraph.Mix, 4, 2)
	g.MustAddDependency(a, b)
	if !hasDuplicateNames(g) {
		t.Fatal("graph with aliased names not detected")
	}

	s := New(Config{Workers: 1, Store: openFleetStore(t, t.TempDir())})
	defer s.Close()
	res := mustWait(t, submitOK(t, s, Job{Graph: g, Options: pcrJob(t).Options}))
	if res.Schedule == nil {
		t.Fatal("dup-name assay failed to solve")
	}
	if st := s.Stats(); st.StorePuts != 0 || st.StoreHits != 0 {
		t.Errorf("dup-name graph must bypass the store: %+v", st)
	}
}

// gateStore is a test double whose cold path blocks: while the gate is
// closed, Get misses and Claim reports a foreign lease, so any job reaching
// the store spins (cancellably) in the lease-wait loop. It gives the
// admission tests a deterministic way to occupy a worker for as long as
// they need.
type gateStore struct {
	mu      sync.Mutex
	open    bool
	entries map[string][]byte
}

type gateLease struct{}

func (gateLease) Release() {}

func newGateStore() *gateStore { return &gateStore{entries: map[string][]byte{}} }

func (g *gateStore) unblock() {
	g.mu.Lock()
	g.open = true
	g.mu.Unlock()
}

func (g *gateStore) Get(key string) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if payload, ok := g.entries[key]; ok && g.open {
		return payload, nil
	}
	return nil, store.ErrNotFound
}

func (g *gateStore) Put(key string, payload []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.entries[key] = payload
	return nil
}

func (g *gateStore) Claim(key, owner string) (store.Lease, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.open {
		return nil, store.ErrLeaseHeld
	}
	return gateLease{}, nil
}

func (g *gateStore) Close() error { return nil }

// blockWorker submits a job that parks in the gate's lease-wait loop,
// occupying one worker until the gate opens (or ctx is cancelled), and waits
// until the worker has actually picked it up.
func blockWorker(t *testing.T, s *Solver, ctx context.Context) *Ticket {
	t.Helper()
	tk, err := s.Submit(ctx, pcrJob(t))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocker job never picked up")
		}
		time.Sleep(time.Millisecond)
	}
	return tk
}

// TestPriorityOrdering: with the single worker parked, queued jobs start in
// priority order — highest class first, FIFO within a class, negative
// classes last.
func TestPriorityOrdering(t *testing.T) {
	gate := newGateStore()
	s := New(Config{Workers: 1, Store: gate})
	defer s.Close()

	blockCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocker := blockWorker(t, s, blockCtx)

	jobs := []struct {
		name string
		prio int
	}{
		{"bulk-1", 0},
		{"bulk-2", 0},
		{"urgent", 5},
		{"background", -5},
	}
	tickets := make([]*Ticket, len(jobs))
	for i, j := range jobs {
		job := pcrJob(t)
		job.Name = j.name
		job.Priority = j.prio
		// Distinct transport time per job: distinct cache keys, so the jobs
		// run independently instead of coalescing on one flight.
		job.Options.Transport = 11 + i
		tickets[i] = submitOK(t, s, job)
	}

	gate.unblock()
	mustWait(t, blocker)
	started := map[string]time.Time{}
	for _, tk := range tickets {
		mustWait(t, tk)
		for e := range tk.Events() {
			if e.Kind == EventStarted {
				started[tk.Name] = e.Time
			}
		}
	}
	order := []string{"urgent", "bulk-1", "bulk-2", "background"}
	for i := 0; i+1 < len(order); i++ {
		a, b := order[i], order[i+1]
		if !started[a].Before(started[b]) {
			t.Fatalf("%s (started %v) should run before %s (started %v)",
				a, started[a], b, started[b])
		}
	}
}

// TestTenantQuota: one tenant saturating its quota is refused while another
// tenant still submits freely.
func TestTenantQuota(t *testing.T) {
	gate := newGateStore()
	s := New(Config{Workers: 1, TenantQueue: 2, Store: gate})
	defer s.Close()

	blockCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocker := blockWorker(t, s, blockCtx)

	greedy := pcrJob(t)
	greedy.Tenant = "greedy"
	var accepted []*Ticket
	for i := 0; i < 2; i++ {
		job := greedy
		job.Options.Transport = 11 + i
		tk, err := s.Submit(context.Background(), job)
		if err != nil {
			t.Fatalf("submit %d within quota: %v", i, err)
		}
		accepted = append(accepted, tk)
	}
	if _, err := s.Submit(context.Background(), greedy); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("over-quota submit: want ErrTenantQuota, got %v", err)
	}

	polite := pcrJob(t)
	polite.Tenant = "polite"
	pt, err := s.Submit(context.Background(), polite)
	if err != nil {
		t.Fatalf("other tenant should be unaffected: %v", err)
	}

	gate.unblock()
	mustWait(t, blocker)
	for _, tk := range accepted {
		mustWait(t, tk)
	}
	mustWait(t, pt)

	st := s.Stats()
	g := st.Tenants["greedy"]
	if g.Admitted != 2 || g.RejectedQuota != 1 || g.Queued != 0 {
		t.Errorf("greedy tenant counters: %+v", g)
	}
	if p := st.Tenants["polite"]; p.Admitted != 1 || p.RejectedQuota != 0 {
		t.Errorf("polite tenant counters: %+v", p)
	}
	if g.Completed != 2 {
		t.Errorf("greedy completions: %+v", g)
	}
}

// TestJobTTLEviction: jobs stuck in the queue past the TTL are evicted with
// ErrExpired instead of running.
func TestJobTTLEviction(t *testing.T) {
	gate := newGateStore()
	s := New(Config{Workers: 1, JobTTL: 30 * time.Millisecond, Store: gate})
	defer s.Close()

	blockCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocker := blockWorker(t, s, blockCtx)

	late := pcrJob(t)
	late.Options.Transport = 11
	lateTk := submitOK(t, s, late)
	time.Sleep(60 * time.Millisecond) // let the TTL pass while queued

	gate.unblock()
	mustWait(t, blocker)
	if _, err := lateTk.Wait(context.Background()); !errors.Is(err, ErrExpired) {
		t.Fatalf("stale job: want ErrExpired, got %v", err)
	}
	st := s.Stats()
	if st.Expired != 1 {
		t.Errorf("expired counter: got %d want 1", st.Expired)
	}
	if st.Tenants[""].Expired != 1 {
		t.Errorf("tenant expired counter: %+v", st.Tenants[""])
	}
}

// TestDeadlineEviction: a queued job whose deadline passes is evicted, and
// the blocker itself (no deadline) still completes.
func TestDeadlineEviction(t *testing.T) {
	gate := newGateStore()
	s := New(Config{Workers: 1, Store: gate})
	defer s.Close()

	blockCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocker := blockWorker(t, s, blockCtx)

	job := pcrJob(t)
	job.Options.Transport = 11
	job.Deadline = time.Now().Add(20 * time.Millisecond)
	late := submitOK(t, s, job)
	time.Sleep(50 * time.Millisecond)

	gate.unblock()
	mustWait(t, blocker)
	if _, err := late.Wait(context.Background()); !errors.Is(err, ErrExpired) {
		t.Fatalf("deadline-passed job: want ErrExpired, got %v", err)
	}
}

// TestLeaseWaitCancellable: a job parked on a foreign lease honors its
// context instead of spinning forever.
func TestLeaseWaitCancellable(t *testing.T) {
	gate := newGateStore() // never opened: the lease is "held" forever
	s := New(Config{Workers: 1, Store: gate})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	tk := blockWorker(t, s, ctx)
	cancel()
	if _, err := tk.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("parked job: want context.Canceled, got %v", err)
	}
	st := s.Stats()
	if st.LeaseWaits != 1 {
		t.Errorf("lease-wait counter: got %d want 1", st.LeaseWaits)
	}
	if st.LeaseWaitTotal <= 0 {
		t.Errorf("lease wait total not accounted: %v", st.LeaseWaitTotal)
	}
}

// TestWallHistograms: cold and warm serves land in their histograms.
func TestWallHistograms(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	job := pcrJob(t)
	mustWait(t, submitOK(t, s, job))
	mustWait(t, submitOK(t, s, job))

	st := s.Stats()
	if st.ColdWall.Count != 1 {
		t.Errorf("cold histogram count: got %d want 1", st.ColdWall.Count)
	}
	if st.WarmWall.Count != 1 {
		t.Errorf("warm histogram count: got %d want 1", st.WarmWall.Count)
	}
	var coldBuckets int64
	for _, c := range st.ColdWall.Counts {
		coldBuckets += c
	}
	if coldBuckets != st.ColdWall.Count {
		t.Errorf("cold histogram buckets sum %d != count %d", coldBuckets, st.ColdWall.Count)
	}
}
