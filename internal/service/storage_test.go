package service

import (
	"testing"

	"flowsyn/internal/storage"
)

// dedicatedPCRJob is pcrJob solved under the dedicated-unit strategy.
func dedicatedPCRJob(t *testing.T) Job {
	t.Helper()
	job := pcrJob(t)
	job.Options.Storage = storage.Config{Policy: storage.Dedicated}
	return job
}

// TestStrategyMissesDistributedCache is the satellite fix this PR guards: a
// resubmission that differs only in storage strategy must NOT be served from
// the distributed entry — the strategy is part of the schedule's identity.
func TestStrategyMissesDistributedCache(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	dist := mustWait(t, submitOK(t, s, pcrJob(t)))
	ded := mustWait(t, submitOK(t, s, dedicatedPCRJob(t)))
	if st := s.Stats(); st.ScheduleSolves != 2 {
		t.Errorf("two strategies performed %d schedule solves, want 2 (cache key must separate them)",
			st.ScheduleSolves)
	}
	if len(dist.Schedule.UnitWindows) != 0 {
		t.Errorf("distributed schedule carries %d unit windows", len(dist.Schedule.UnitWindows))
	}
	if len(ded.Schedule.UnitWindows) == 0 {
		t.Error("dedicated PCR schedule carries no unit windows — the strategy did not reach the engine")
	}
}

// TestStoreKeySeparatesStrategies: two sessions over one persistent store,
// solving the same assay under different strategies, must publish two store
// entries and never serve one strategy's schedule for the other.
func TestStoreKeySeparatesStrategies(t *testing.T) {
	dir := t.TempDir()

	s1 := New(Config{Workers: 1, Store: openFleetStore(t, dir)})
	dist := mustWait(t, submitOK(t, s1, pcrJob(t)))
	s1.Close()

	s2 := New(Config{Workers: 1, Store: openFleetStore(t, dir)})
	defer s2.Close()
	ded := mustWait(t, submitOK(t, s2, dedicatedPCRJob(t)))
	if ded.Service.StoreHit {
		t.Error("dedicated submission was wrongly served from the distributed store entry")
	}
	if st := s2.Stats(); st.ScheduleSolves != 1 {
		t.Errorf("dedicated solve over a distributed-only store ran %d solves, want 1", st.ScheduleSolves)
	}
	if ded.Schedule.Makespan < dist.Schedule.Makespan {
		t.Errorf("dedicated makespan %d beats distributed %d", ded.Schedule.Makespan, dist.Schedule.Makespan)
	}

	// A third session resubmitting the dedicated job must now hit the store
	// and get the unit windows back intact.
	s3 := New(Config{Workers: 1, Store: openFleetStore(t, dir)})
	defer s3.Close()
	warm := mustWait(t, submitOK(t, s3, dedicatedPCRJob(t)))
	if !warm.Service.StoreHit {
		t.Fatal("dedicated resubmission missed the store")
	}
	if len(warm.Schedule.UnitWindows) != len(ded.Schedule.UnitWindows) {
		t.Errorf("store round-trip lost unit windows: got %d want %d",
			len(warm.Schedule.UnitWindows), len(ded.Schedule.UnitWindows))
	}
	for e, w := range ded.Schedule.UnitWindows {
		if got := warm.Schedule.UnitWindows[e]; got != w {
			t.Errorf("edge %d->%d window round-trip: got %+v want %+v", e.Parent, e.Child, got, w)
		}
	}
	if warm.Schedule.UnitQueueDelay != ded.Schedule.UnitQueueDelay {
		t.Errorf("queue delay round-trip: got %d want %d",
			warm.Schedule.UnitQueueDelay, ded.Schedule.UnitQueueDelay)
	}
}

// TestSchedPayloadRoundTripStrategy: the serialized-strategy payload fields
// (storage echo, unit windows, queue delay) survive encode/decode.
func TestSchedPayloadRoundTripStrategy(t *testing.T) {
	job := dedicatedPCRJob(t)
	s := New(Config{Workers: 1, CacheEntries: -1})
	res := mustWait(t, submitOK(t, s, job))
	s.Close()

	se := &schedEntry{s: res.Schedule, storage: job.Options.Storage.Key()}
	payload, err := encodeSchedEntry(se)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSchedEntry(payload, job.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if got.storage != "dedicated" {
		t.Errorf("storage echo: got %q want %q", got.storage, "dedicated")
	}
	if len(got.s.UnitWindows) != len(res.Schedule.UnitWindows) {
		t.Fatalf("unit windows: got %d want %d", len(got.s.UnitWindows), len(res.Schedule.UnitWindows))
	}
	for e, w := range res.Schedule.UnitWindows {
		if got.s.UnitWindows[e] != w {
			t.Errorf("edge %d->%d: got %+v want %+v", e.Parent, e.Child, got.s.UnitWindows[e], w)
		}
	}
	if got.s.UnitQueueDelay != res.Schedule.UnitQueueDelay {
		t.Errorf("queue delay: got %d want %d", got.s.UnitQueueDelay, res.Schedule.UnitQueueDelay)
	}
}
