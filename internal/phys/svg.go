package phys

import (
	"fmt"
	"strings"
)

// SVG renders the compressed physical layout as a standalone SVG document:
// device footprints, switch positions, and channel wires (storage-capable
// wires drawn thicker, with a zigzag glyph marking inserted bends).
func (d *Design) SVG() string {
	const scale = 12
	const margin = 24
	w := d.Compressed.W*scale + 2*margin
	h := d.Compressed.H*scale + 2*margin
	px := func(v int) int { return margin + v*scale }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white" stroke="#444"/>`, w, h)
	fmt.Fprintf(&b,
		`<text x="%d" y="16" font-size="12" font-family="monospace">compressed layout %s (after synthesis %s, with devices %s)</text>`,
		margin, d.Compressed, d.AfterSynthesis, d.AfterDevices)

	for _, wire := range d.Wires {
		width := 2
		color := "#777"
		if wire.Storage {
			width = 4
			color = "#e07b1f"
		}
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="%d"/>`,
			px(wire.From.X), px(wire.From.Y), px(wire.To.X), px(wire.To.Y), color, width)
		if wire.Bends > 0 {
			mx := (px(wire.From.X) + px(wire.To.X)) / 2
			my := (px(wire.From.Y) + px(wire.To.Y)) / 2
			fmt.Fprintf(&b,
				`<text x="%d" y="%d" font-size="10" font-family="monospace" fill="%s">~%d</text>`,
				mx, my-4, color, wire.Bends)
		}
	}
	for _, r := range d.Devices {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#cfe8cf" stroke="black"/>`,
			px(r.Min.X), px(r.Min.Y), (r.Max.X-r.Min.X)*scale, (r.Max.Y-r.Min.Y)*scale)
	}
	for _, p := range d.SwitchPoints {
		fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="4" fill="white" stroke="black"/>`, px(p.X), px(p.Y))
	}
	b.WriteString(`</svg>`)
	return b.String()
}
