// Package phys generates a compact physical design from a synthesized chip
// architecture — Section 3.3 of "Transport or Store?" (DAC 2017).
//
// The flow mirrors the paper's Fig. 7: the planar connection graph from
// architectural synthesis is (a) scaled by the minimum channel pitch (the
// paper's d_r dimensions), (b) expanded to make room for the inserted
// devices, which are much larger than switches (d_e), and (c) iteratively
// compressed toward the upper-right corner by collapsing unused rows and
// columns and shrinking gaps to their minimum legal widths, with bends
// inserted on channel segments whose length would otherwise fall below the
// minimum storage length (d_p, the final physical design).
package phys

import (
	"fmt"
	"sort"
	"time"

	"flowsyn/internal/arch"
)

// Options sets the physical design rules. Zero values take the defaults
// noted on each field.
type Options struct {
	// Pitch is the minimum channel distance in layout units (default 5),
	// the scaling unit of the paper's physical design step.
	Pitch int
	// DeviceSize is the side length of a (square) device in layout units
	// (default 3); devices are larger than switches and force expansion.
	DeviceSize int
	// SampleLen is the channel length needed to cache one fluid sample
	// (default 5); storage segments shorter than this after compression
	// receive bends to restore their length.
	SampleLen int
}

func (o *Options) defaults() {
	if o.Pitch == 0 {
		o.Pitch = 5
	}
	if o.DeviceSize == 0 {
		o.DeviceSize = 3
	}
	if o.SampleLen == 0 {
		o.SampleLen = 5
	}
}

// Dim is a width×height pair in layout units.
type Dim struct {
	W, H int
}

// String renders like the paper's Table 2 ("15x10").
func (d Dim) String() string { return fmt.Sprintf("%dx%d", d.W, d.H) }

// Area returns W*H.
func (d Dim) Area() int { return d.W * d.H }

// Point is a layout coordinate.
type Point struct {
	X, Y int
}

// Rect is an axis-aligned rectangle (device footprint).
type Rect struct {
	Min, Max Point
}

// Wire is the physical realization of one channel segment: a polyline
// between two layout points, with Bends counting the zigzags inserted to
// keep Length >= the minimum storage length.
type Wire struct {
	// Edge is the grid edge this wire realizes.
	Edge arch.EdgeID
	// From and To are the endpoint coordinates in the compressed layout.
	From, To Point
	// Length is the wire's routed length including bends.
	Length int
	// Bends counts inserted zigzags (each adds two corners).
	Bends int
	// Storage marks wires that cache fluids and therefore must hold a whole
	// sample.
	Storage bool
}

// Design is the complete physical-design result.
type Design struct {
	// AfterSynthesis (d_r), AfterDevices (d_e) and Compressed (d_p) are the
	// chip dimensions after each stage, as in Table 2.
	AfterSynthesis, AfterDevices, Compressed Dim
	// Devices holds each device's footprint in the compressed layout.
	Devices []Rect
	// SwitchPoints holds each switch's position in the compressed layout.
	SwitchPoints []Point
	// Wires holds the physical channel segments.
	Wires []Wire
	// TotalBends counts all inserted bends.
	TotalBends int
	// Runtime is the wall-clock design time (t_p in Table 2).
	Runtime time.Duration
}

// Design computes the physical design of a synthesized architecture.
func Compute(res *arch.Result, opts Options) (*Design, error) {
	start := time.Now()
	opts.defaults()
	if res == nil || len(res.DevicePos) == 0 {
		return nil, fmt.Errorf("phys: empty architecture")
	}

	grid := res.Grid
	// Used rows and columns: those containing a device or a used-edge
	// endpoint.
	usedRow := make(map[int]bool)
	usedCol := make(map[int]bool)
	deviceRow := make(map[int]bool)
	deviceCol := make(map[int]bool)
	markNode := func(n arch.NodeID) {
		r, c := grid.Coords(n)
		usedRow[r] = true
		usedCol[c] = true
	}
	for _, p := range res.DevicePos {
		markNode(p)
		r, c := grid.Coords(p)
		deviceRow[r] = true
		deviceCol[c] = true
	}
	for _, e := range res.UsedEdges {
		u, v := grid.Endpoints(e)
		markNode(u)
		markNode(v)
	}

	rows := sortedKeys(usedRow)
	cols := sortedKeys(usedCol)
	if len(rows) == 0 || len(cols) == 0 {
		return nil, fmt.Errorf("phys: architecture uses no grid nodes")
	}

	// d_r: raw scaled span of the used region.
	dr := Dim{
		W: (cols[len(cols)-1] - cols[0]) * opts.Pitch,
		H: (rows[len(rows)-1] - rows[0]) * opts.Pitch,
	}
	if dr.W == 0 {
		dr.W = opts.Pitch
	}
	if dr.H == 0 {
		dr.H = opts.Pitch
	}

	// d_e: device insertion expands every row/column that hosts a device by
	// the device's extra size over a switch.
	extra := opts.DeviceSize - 1
	de := Dim{
		W: dr.W + extra*len(sortedKeys(deviceCol)),
		H: dr.H + extra*len(sortedKeys(deviceRow)),
	}

	// d_p: iterative compression. Unused rows/columns are dropped (they are
	// not in rows/cols already); adjacent used rows/columns are pulled
	// together to their minimum legal gap: device rows/cols keep room for
	// the device body, switch-only ones keep one channel pitch between
	// channels (half the routing pitch).
	gapFor := func(aDev, bDev bool) int {
		switch {
		case aDev && bDev:
			return opts.DeviceSize + 2
		case aDev || bDev:
			return opts.DeviceSize + 1
		default:
			return 2
		}
	}
	xOf := make(map[int]int, len(cols))
	x := 1
	for i, c := range cols {
		if i > 0 {
			x += gapFor(deviceCol[cols[i-1]], deviceCol[c])
		}
		xOf[c] = x
	}
	yOf := make(map[int]int, len(rows))
	y := 1
	for i, r := range rows {
		if i > 0 {
			y += gapFor(deviceRow[rows[i-1]], deviceRow[r])
		}
		yOf[r] = y
	}
	dp := Dim{W: x + 1, H: y + 1}
	// Compression never beats the physically-required area but must not
	// exceed the expanded layout.
	if dp.W > de.W {
		dp.W = de.W
	}
	if dp.H > de.H {
		dp.H = de.H
	}

	d := &Design{
		AfterSynthesis: dr,
		AfterDevices:   de,
		Compressed:     dp,
	}

	// Final coordinates.
	pos := func(n arch.NodeID) Point {
		r, c := grid.Coords(n)
		return Point{X: xOf[c], Y: yOf[r]}
	}
	half := opts.DeviceSize / 2
	for _, p := range res.DevicePos {
		at := pos(p)
		d.Devices = append(d.Devices, Rect{
			Min: Point{at.X - half, at.Y - half},
			Max: Point{at.X + half, at.Y + half},
		})
	}
	for _, sw := range res.Switches() {
		d.SwitchPoints = append(d.SwitchPoints, pos(sw))
	}

	// Wires: storage segments must keep SampleLen of channel; shorter spans
	// get bends (each bend adds 2 units of length).
	storageEdges := make(map[arch.EdgeID]bool)
	for _, route := range res.Routes {
		if route.StorageEdge >= 0 {
			storageEdges[route.StorageEdge] = true
		}
	}
	for _, e := range res.UsedEdges {
		u, v := grid.Endpoints(e)
		pu, pv := pos(u), pos(v)
		length := abs(pu.X-pv.X) + abs(pu.Y-pv.Y)
		w := Wire{Edge: e, From: pu, To: pv, Length: length, Storage: storageEdges[e]}
		if w.Storage && length < opts.SampleLen {
			need := opts.SampleLen - length
			w.Bends = (need + 1) / 2
			w.Length = length + 2*w.Bends
		}
		d.TotalBends += w.Bends
		d.Wires = append(d.Wires, w)
	}

	d.Runtime = time.Since(start)
	return d, nil
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
