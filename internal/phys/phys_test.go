package phys

import (
	"strings"
	"testing"
	"testing/quick"

	"flowsyn/internal/arch"
	"flowsyn/internal/assay"
	"flowsyn/internal/sched"
)

func designFor(t *testing.T, name string) (*Design, *arch.Result) {
	t.Helper()
	b := assay.MustGet(name)
	s, err := sched.ListSchedule(b.Graph, sched.ListOptions{
		Devices: b.Devices, Transport: b.Transport, Mode: sched.TimeAndStorage,
	})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := arch.NewGrid(b.GridRows, b.GridCols)
	if err != nil {
		t.Fatal(err)
	}
	res, err := arch.Synthesize(s, grid, arch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d, res
}

func TestDesignAllBenchmarks(t *testing.T) {
	for _, name := range assay.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			d, res := designFor(t, name)
			// Stage ordering as in Table 2: insertion grows the layout,
			// compression shrinks it back below the expanded size.
			if d.AfterDevices.W < d.AfterSynthesis.W || d.AfterDevices.H < d.AfterSynthesis.H {
				t.Errorf("device insertion shrank the chip: %v -> %v", d.AfterSynthesis, d.AfterDevices)
			}
			if d.Compressed.W > d.AfterDevices.W || d.Compressed.H > d.AfterDevices.H {
				t.Errorf("compression grew the chip: %v -> %v", d.AfterDevices, d.Compressed)
			}
			if d.Compressed.Area() <= 0 {
				t.Error("empty compressed layout")
			}
			if len(d.Devices) != len(res.DevicePos) {
				t.Errorf("device footprints = %d, want %d", len(d.Devices), len(res.DevicePos))
			}
			if len(d.Wires) != res.NumEdges {
				t.Errorf("wires = %d, want %d", len(d.Wires), res.NumEdges)
			}
		})
	}
}

func TestStorageWiresKeepSampleLength(t *testing.T) {
	d, _ := designFor(t, "RA30")
	opts := Options{}
	opts.defaults()
	for _, w := range d.Wires {
		if w.Storage && w.Length < opts.SampleLen {
			t.Errorf("storage wire %d has length %d < sample length %d", w.Edge, w.Length, opts.SampleLen)
		}
		if w.Bends > 0 && !w.Storage {
			t.Errorf("non-storage wire %d got bends", w.Edge)
		}
	}
}

func TestDevicesDoNotOverlap(t *testing.T) {
	for _, name := range []string{"RA30", "RA100"} {
		d, _ := designFor(t, name)
		for i := 0; i < len(d.Devices); i++ {
			for j := i + 1; j < len(d.Devices); j++ {
				a, b := d.Devices[i], d.Devices[j]
				if a.Min.X < b.Max.X && b.Min.X < a.Max.X &&
					a.Min.Y < b.Max.Y && b.Min.Y < a.Max.Y {
					t.Errorf("%s: devices %d and %d overlap: %+v %+v", name, i, j, a, b)
				}
			}
		}
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil, Options{}); err == nil {
		t.Error("nil architecture accepted")
	}
	if _, err := Compute(&arch.Result{}, Options{}); err == nil {
		t.Error("empty architecture accepted")
	}
}

func TestDimString(t *testing.T) {
	d := Dim{W: 15, H: 10}
	if d.String() != "15x10" {
		t.Errorf("String = %q, want 15x10", d.String())
	}
	if d.Area() != 150 {
		t.Errorf("Area = %d, want 150", d.Area())
	}
}

// TestDesignProperty: physical design on random assays keeps the stage
// ordering invariants.
func TestDesignProperty(t *testing.T) {
	prop := func(seed int64) bool {
		g := assay.Random(6+int(seed%9+9)%9, 3, seed)
		s, err := sched.ListSchedule(g, sched.ListOptions{Devices: 3, Transport: 10, Mode: sched.TimeAndStorage})
		if err != nil {
			return false
		}
		grid, _ := arch.NewGrid(4, 4)
		res, err := arch.Synthesize(s, grid, arch.Options{})
		if err != nil {
			return false
		}
		d, err := Compute(res, Options{})
		if err != nil {
			return false
		}
		return d.AfterDevices.W >= d.AfterSynthesis.W &&
			d.AfterDevices.H >= d.AfterSynthesis.H &&
			d.Compressed.W <= d.AfterDevices.W &&
			d.Compressed.H <= d.AfterDevices.H &&
			d.Compressed.Area() > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLayoutSVG(t *testing.T) {
	d, _ := designFor(t, "RA30")
	svg := d.SVG()
	for _, want := range []string{"<svg", "</svg>", "<rect", "<line", "compressed layout"} {
		if !strings.Contains(svg, want) {
			t.Errorf("layout SVG missing %q", want)
		}
	}
}
